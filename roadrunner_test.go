package roadrunner_test

import (
	"bytes"
	"testing"

	rr "roadrunner"
)

// TestPublicAPIQuickstart exercises the façade exactly as the README's
// quick-start does.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := rr.SmallConfig()
	cfg.Seed = 123
	strat, err := rr.NewFederatedAveraging(rr.FedAvgConfig{
		Rounds:           3,
		VehiclesPerRound: 3,
		RoundDuration:    30,
		ServerOverhead:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := rr.NewExperiment(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy <= 0 || res.FinalAccuracy > 1 {
		t.Fatalf("final accuracy = %v", res.FinalAccuracy)
	}
	if res.Metrics.Counter(rr.CounterRounds) != 3 {
		t.Fatalf("rounds = %v", res.Metrics.Counter(rr.CounterRounds))
	}
	if res.Comm["v2c"].MessagesSent == 0 {
		t.Fatal("no traffic")
	}
	if s := res.Metrics.Series(rr.SeriesDistinctContributors); s == nil || s.Len() == 0 {
		t.Fatal("provenance series missing")
	}
}

// TestPublicAPITraces exercises trace generation and the CSV round trip
// through the façade.
func TestPublicAPITraces(t *testing.T) {
	grid := rr.SmallConfig().Grid
	fleet := rr.SmallConfig().Fleet
	fleet.Vehicles = 5
	fleet.Horizon = 600
	traces, err := rr.GenerateTraces(grid, fleet, 42)
	if err != nil {
		t.Fatal(err)
	}
	if traces.NumVehicles() != 5 {
		t.Fatalf("vehicles = %d", traces.NumVehicles())
	}
	var buf bytes.Buffer
	if err := rr.WriteTracesCSV(&buf, traces); err != nil {
		t.Fatal(err)
	}
	got, err := rr.ReadTracesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVehicles() != 5 || got.Horizon != traces.Horizon {
		t.Fatal("trace round trip lost data")
	}
}

// TestPublicAPICustomStrategy verifies a user-defined strategy can be built
// purely against the façade (the examples/custom pattern).
func TestPublicAPICustomStrategy(t *testing.T) {
	cs := &countingStrategy{}
	cfg := rr.SmallConfig()
	cfg.Horizon = 100
	exp, err := rr.NewExperiment(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(); err != nil {
		t.Fatal(err)
	}
	if !cs.started {
		t.Fatal("custom strategy Start never ran")
	}
	if !cs.stoppedSelf {
		t.Fatal("custom strategy timer never fired")
	}
}

// countingStrategy is a minimal façade-only custom strategy.
type countingStrategy struct {
	rr.BaseStrategy
	started     bool
	stoppedSelf bool
}

func (c *countingStrategy) Name() string { return "counting" }

func (c *countingStrategy) Start(env rr.Env) error {
	c.started = true
	return env.After(10, func() {
		c.stoppedSelf = true
		env.Stop()
	})
}
