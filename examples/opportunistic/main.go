// Opportunistic: a scaled-down rendition of the paper's Figure 4 — vanilla
// FL (BASE) versus the OPP strategy, which forwards the global model to
// encountered vehicles over free V2X, at the identical V2C budget.
//
//	go run ./examples/opportunistic
package main

import (
	"fmt"
	"log"

	rr "roadrunner"
)

const rounds = 10

func main() {
	base := runOne("BASE", mustFedAvg())
	opp := runOne("OPP", mustOpp())

	fmt.Println("\n== BASE vs OPP at equal V2C budget ==")
	fmt.Printf("%-22s %10s %10s\n", "metric", "BASE", "OPP")
	fmt.Printf("%-22s %10.0f %10.0f\n", "run end [s]", float64(base.End), float64(opp.End))
	fmt.Printf("%-22s %10.3f %10.3f\n", "final accuracy", base.FinalAccuracy, opp.FinalAccuracy)
	fmt.Printf("%-22s %10d %10d\n", "V2C messages",
		base.Comm["v2c"].MessagesSent, opp.Comm["v2c"].MessagesSent)
	fmt.Printf("%-22s %10.2f %10.2f\n", "V2X MB (free)",
		float64(base.Comm["v2x"].BytesDelivered)/1e6, float64(opp.Comm["v2x"].BytesDelivered)/1e6)

	if ex := opp.Metrics.Series(rr.SeriesRoundExchanges); ex != nil {
		fmt.Println("\nV2X exchanges per OPP round:")
		for i, p := range ex.Points {
			bar := ""
			for j := 0; j < int(p.Value); j++ {
				bar += "▇"
			}
			fmt.Printf("round %2d: %2.0f %s\n", i+1, p.Value, bar)
		}
		fmt.Printf("average: %.1f extra contributions per round at zero V2C cost\n", ex.Mean())
	}
}

func runOne(name string, strat rr.Strategy) *rr.Result {
	cfg := rr.SmallConfig()
	cfg.Seed = 7
	exp, err := rr.NewExperiment(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: simulated %.0f s in %v, final accuracy %.3f\n",
		name, float64(res.End), res.Wall, res.FinalAccuracy)
	return res
}

func mustFedAvg() rr.Strategy {
	s, err := rr.NewFederatedAveraging(rr.FedAvgConfig{
		Rounds:           rounds,
		VehiclesPerRound: 4,
		RoundDuration:    30,
		ServerOverhead:   10,
	})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func mustOpp() rr.Strategy {
	s, err := rr.NewOpportunistic(rr.OppConfig{
		Rounds:          rounds,
		Reporters:       4,
		RoundDuration:   150,
		ServerOverhead:  10,
		ExchangeTimeout: 45,
	})
	if err != nil {
		log.Fatal(err)
	}
	return s
}
