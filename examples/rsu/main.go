// RSU: learning collected entirely by road-side units. The paper's
// Figure 1 shows RSUs as V2X-reachable, wire-backed actors; this strategy
// makes them permanent collection points — vehicles never touch metered
// V2C at all.
//
//	go run ./examples/rsu
package main

import (
	"fmt"
	"log"

	rr "roadrunner"
)

func main() {
	cfg := rr.SmallConfig()
	cfg.Seed = 9
	cfg.RSUCount = 6 // place six RSUs at random intersections

	strat, err := rr.NewRSUAssisted(rr.RSUAssistedConfig{
		Rounds:          10,
		RoundDuration:   150,
		ServerOverhead:  10,
		ExchangeTimeout: 45,
	})
	if err != nil {
		log.Fatal(err)
	}

	exp, err := rr.NewExperiment(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rsu-assisted: %.0f simulated seconds in %v wall time\n\n",
		float64(res.End), res.Wall)
	if ex := res.Metrics.Series(rr.SeriesRoundExchanges); ex != nil {
		fmt.Println("vehicle models collected per round (across 6 RSUs):")
		for i, p := range ex.Points {
			bar := ""
			for j := 0; j < int(p.Value); j++ {
				bar += "▇"
			}
			fmt.Printf("round %2d: %2.0f %s\n", i+1, p.Value, bar)
		}
	}
	fmt.Printf("\nfinal accuracy:  %.3f\n", res.FinalAccuracy)
	fmt.Printf("V2C traffic:     %d messages — the metered channel is never used\n",
		res.Comm["v2c"].MessagesSent)
	fmt.Printf("V2X traffic:     %.2f MB (vehicle-RSU exchanges)\n",
		float64(res.Comm["v2x"].BytesDelivered)/1e6)
	fmt.Printf("wired backhaul:  %.2f MB (RSU-cloud)\n",
		float64(res.Comm["wired"].BytesDelivered)/1e6)
}
