// Tradeoffs: the analyst workflow the paper positions the framework around
// (§5.2: "the ability ... of quantifying trade-offs between metrics such as
// data volumes, accuracy and duration, is crucial for an analyst to make
// informed decisions about a learning strategy"). Four strategies run on
// the identical VCPS, and the program prints their cost/time/accuracy
// trade-off table.
//
//	go run ./examples/tradeoffs
package main

import (
	"fmt"
	"log"

	rr "roadrunner"
)

func main() {
	strategies := []struct {
		name  string
		build func() (rr.Strategy, error)
	}{
		{"centralized", func() (rr.Strategy, error) {
			return rr.NewCentralized(rr.CentralizedConfig{
				Rounds: 6, RoundDuration: 120, UploadCheckInterval: 30, ServerEpochs: 1,
			})
		}},
		{"fedavg", func() (rr.Strategy, error) {
			return rr.NewFederatedAveraging(rr.FedAvgConfig{
				Rounds: 12, VehiclesPerRound: 4, RoundDuration: 30, ServerOverhead: 10,
			})
		}},
		{"opportunistic", func() (rr.Strategy, error) {
			return rr.NewOpportunistic(rr.OppConfig{
				Rounds: 12, Reporters: 4, RoundDuration: 150,
				ServerOverhead: 10, ExchangeTimeout: 45,
			})
		}},
		{"hybrid", func() (rr.Strategy, error) {
			return rr.NewHybrid(rr.HybridConfig{
				Gossip: rr.GossipConfig{
					Duration: 2000, ExchangeCooldown: 45, EvalInterval: 400, EvalSample: 6,
				},
				SyncInterval: 500, SyncVehicles: 3,
			})
		}},
	}

	fmt.Printf("%-14s %9s %9s %9s %9s %9s\n",
		"strategy", "acc", "end[s]", "v2c MB", "v2x MB", "compute[s]")
	for _, s := range strategies {
		strat, err := s.build()
		if err != nil {
			log.Fatal(err)
		}
		cfg := rr.SmallConfig()
		cfg.Seed = 11
		exp, err := rr.NewExperiment(cfg, strat)
		if err != nil {
			log.Fatal(err)
		}
		res, err := exp.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.3f %9.0f %9.2f %9.2f %9.0f\n",
			s.name,
			res.FinalAccuracy,
			float64(res.End),
			float64(res.Comm["v2c"].BytesDelivered)/1e6,
			float64(res.Comm["v2x"].BytesDelivered)/1e6,
			res.Metrics.Counter("vehicle_compute_seconds"))
	}
	fmt.Println("\nReading the table: centralized buys accuracy with raw-data upload")
	fmt.Println("volume (cellular cost, privacy exposure); fedavg trades volume for")
	fmt.Println("rounds; opportunistic converts free V2X encounters into extra")
	fmt.Println("contributions; hybrid anchors cheap gossip with rare V2C syncs.")
}
