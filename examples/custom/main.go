// Custom: writing a new learning strategy against the public API — the
// extensibility the paper's requirement 5 demands ("the flexible
// implementation and parametrization of learning strategies to allow for
// easy experimentation and iteration").
//
// The strategy implemented here, "eager FL", is a deliberately simple
// variant: instead of holding retrained models until a round timer expires,
// vehicles upload them the moment training finishes, and the server folds
// each arriving model into the global one immediately (a streaming
// FedAvg with a decaying server-side mixing weight).
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	rr "roadrunner"
)

// eagerFL implements rr.Strategy. It embeds rr.BaseStrategy so it only has
// to override the callbacks it uses.
type eagerFL struct {
	rr.BaseStrategy

	waves    int
	perWave  int
	interval rr.Duration
	wave     int
	uploaded int
}

func (s *eagerFL) Name() string { return "eager-fl" }

func (s *eagerFL) Start(env rr.Env) error {
	if env.Model(env.Server()) == nil {
		return fmt.Errorf("eager-fl: no initial server model")
	}
	s.startWave(env)
	return nil
}

func (s *eagerFL) startWave(env rr.Env) {
	if s.wave >= s.waves {
		env.Stop()
		return
	}
	s.wave++
	global := env.Model(env.Server())
	sent := 0
	for _, v := range env.Vehicles() {
		if sent == s.perWave {
			break
		}
		if !env.IsOn(v) || env.IsBusy(v) {
			continue
		}
		p := rr.Payload{Tag: "global", Round: s.wave, Model: global}
		if _, err := env.Send(env.Server(), v, rr.KindV2C, p); err != nil {
			continue
		}
		sent++
	}
	if err := env.After(s.interval, func() { s.startWave(env) }); err != nil {
		env.Stop()
	}
}

func (s *eagerFL) OnDeliver(env rr.Env, msg *rr.CommMessage, p rr.Payload) {
	switch p.Tag {
	case "global":
		// Vehicle side: retrain immediately.
		if err := env.Train(msg.To, p.Model); err != nil {
			env.Logf("eager-fl: train on %v: %v", msg.To, err)
		}
	case "update":
		// Server side: streaming aggregation. The arriving model is mixed
		// into the global model with weight data/(data + K), so early
		// updates move the model a lot and later ones refine it.
		global := env.Model(env.Server())
		const inertia = 300 // pseudo-count of samples already absorbed
		merged, err := env.Aggregate(
			[]*rr.ModelSnapshot{global, p.Model},
			[]float64{inertia, p.DataAmount},
		)
		if err != nil {
			env.Logf("eager-fl: aggregate: %v", err)
			return
		}
		env.SetModel(env.Server(), merged)
		s.uploaded++
		if acc, err := env.TestAccuracy(merged); err == nil {
			if err := env.Metrics().Record(rr.SeriesAccuracy, env.Now(), acc); err != nil {
				env.Logf("eager-fl: metrics: %v", err)
			}
		}
	}
}

func (s *eagerFL) OnTrainDone(env rr.Env, id rr.AgentID, trained *rr.ModelSnapshot, loss float64) {
	p := rr.Payload{
		Tag:        "update",
		Model:      trained,
		DataAmount: float64(env.DataAmount(id)),
	}
	if _, err := env.Send(id, env.Server(), rr.KindV2C, p); err != nil {
		env.Logf("eager-fl: upload from %v: %v", id, err)
	}
}

func main() {
	cfg := rr.SmallConfig()
	cfg.Seed = 5

	strat := &eagerFL{waves: 15, perWave: 4, interval: 45}
	exp, err := rr.NewExperiment(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("eager-fl: %d model uploads absorbed over %.0f simulated seconds\n\n",
		strat.uploaded, float64(res.End))
	if acc := res.Metrics.Series(rr.SeriesAccuracy); acc != nil {
		step := acc.Len() / 15
		if step == 0 {
			step = 1
		}
		for i := 0; i < acc.Len(); i += step {
			p := acc.Points[i]
			bar := ""
			for j := 0; j < int(p.Value*40); j++ {
				bar += "▇"
			}
			fmt.Printf("t=%5.0f  %.3f %s\n", float64(p.T), p.Value, bar)
		}
	}
	fmt.Printf("\nfinal accuracy: %.3f\n", res.FinalAccuracy)
}
