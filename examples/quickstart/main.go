// Quickstart: run Federated Averaging on a laptop-scale VCPS and print the
// global model's accuracy curve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rr "roadrunner"
)

func main() {
	// SmallConfig is a 24-vehicle fleet on a compact urban grid, learning
	// a 6-class task from 30 skewed samples per vehicle.
	cfg := rr.SmallConfig()
	cfg.Seed = 42

	// BASE-style FL: the server contacts 4 vehicles per 30 s round.
	strat, err := rr.NewFederatedAveraging(rr.FedAvgConfig{
		Rounds:           12,
		VehiclesPerRound: 4,
		RoundDuration:    30,
		ServerOverhead:   10,
	})
	if err != nil {
		log.Fatal(err)
	}

	exp, err := rr.NewExperiment(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %0.f s in %v wall time (%d events)\n\n",
		float64(res.End), res.Wall, res.EventsProcessed)
	fmt.Println("round  t[s]   accuracy")
	if acc := res.Metrics.Series(rr.SeriesAccuracy); acc != nil {
		for i, p := range acc.Points {
			bar := ""
			for j := 0; j < int(p.Value*40); j++ {
				bar += "▇"
			}
			fmt.Printf("%5d  %5.0f  %.3f %s\n", i+1, float64(p.T), p.Value, bar)
		}
	}
	fmt.Printf("\nfinal accuracy: %.3f\n", res.FinalAccuracy)
	fmt.Printf("V2C delivered:  %.2f MB over %d messages\n",
		float64(res.Comm["v2c"].BytesDelivered)/1e6, res.Comm["v2c"].MessagesDelivered)
}
