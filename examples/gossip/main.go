// Gossip: fully decentralized learning — no cloud server involvement, no
// cellular cost. Vehicles train local models and merge them pairwise over
// V2X whenever their trajectories cross.
//
//	go run ./examples/gossip
package main

import (
	"fmt"
	"log"

	rr "roadrunner"
)

func main() {
	cfg := rr.SmallConfig()
	cfg.Seed = 3

	strat, err := rr.NewGossip(rr.GossipConfig{
		Duration:         2400, // 40 simulated minutes
		ExchangeCooldown: 45,
		EvalInterval:     240,
		EvalSample:       6,
	})
	if err != nil {
		log.Fatal(err)
	}

	exp, err := rr.NewExperiment(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gossip run: %.0f simulated seconds in %v wall time\n\n",
		float64(res.End), res.Wall)
	fmt.Println("fleet mean accuracy (sampled vehicle models):")
	if acc := res.Metrics.Series(rr.SeriesAccuracy); acc != nil {
		for _, p := range acc.Points {
			bar := ""
			for j := 0; j < int(p.Value*40); j++ {
				bar += "▇"
			}
			fmt.Printf("t=%5.0f  %.3f %s\n", float64(p.T), p.Value, bar)
		}
	}
	fmt.Printf("\ntraining tasks run:  %.0f\n", res.Metrics.Counter(rr.CounterTrainTasks))
	fmt.Printf("V2C traffic:         %d messages (gossip needs none)\n", res.Comm["v2c"].MessagesSent)
	fmt.Printf("V2X model exchanges: %d messages, %.2f MB\n",
		res.Comm["v2x"].MessagesDelivered, float64(res.Comm["v2x"].BytesDelivered)/1e6)
}
