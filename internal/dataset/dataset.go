// Package dataset is Roadrunner's data-preprocessing module (paper §4): it
// provides the data residing on each simulated agent. It generates a
// synthetic multi-class image dataset and splits it into per-agent subsets
// "according to a predefined distribution", plus a test set for the
// simulated cloud server.
//
// Substitution note: the paper trains on CIFAR-10 (60 000 32x32 color
// images, 10 classes). This package generates a statistically learnable
// stand-in — each class is a smooth random prototype image, and samples are
// brightness-scaled, translated, noisy variants — with the same 10-class
// structure and the paper's "highly skewed distribution of classes in which
// every vehicle holds 80 samples". What the evaluation depends on is not
// the pixels but the learning dynamics: accuracy grows with aggregated
// contributions, and skewed local distributions hurt models trained on few
// vehicles. Both are preserved (and tested) here.
package dataset

import (
	"fmt"
	"math"

	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

// Config describes the synthetic image distribution.
type Config struct {
	// Classes is the number of classes (the paper's task has 10).
	Classes int `json:"classes"`
	// H, W, C are the image dimensions (channel-major layout, C planes of
	// H x W), matching internal/ml's convolution layout.
	H int `json:"h"`
	W int `json:"w"`
	C int `json:"c"`
	// NoiseStd is the per-pixel Gaussian noise added to every sample.
	NoiseStd float64 `json:"noise_std"`
	// MaxShift is the maximum translation (pixels, each axis, wrapping)
	// applied per sample.
	MaxShift int `json:"max_shift"`
	// Components is the number of sinusoidal components per prototype
	// channel; more components make classes harder to separate.
	Components int `json:"components"`
}

// DefaultConfig is the evaluation dataset: 10 classes of 16x16 RGB images
// (a compute-scaled stand-in for CIFAR-10's 32x32).
func DefaultConfig() Config {
	return Config{Classes: 10, H: 16, W: 16, C: 3, NoiseStd: 1.5, MaxShift: 3, Components: 4}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("dataset: need at least 2 classes, got %d", c.Classes)
	case c.H <= 0 || c.W <= 0 || c.C <= 0:
		return fmt.Errorf("dataset: invalid image shape %dx%dx%d", c.H, c.W, c.C)
	case c.NoiseStd < 0:
		return fmt.Errorf("dataset: negative noise std %v", c.NoiseStd)
	case c.MaxShift < 0 || c.MaxShift >= c.H || c.MaxShift >= c.W:
		return fmt.Errorf("dataset: max shift %d out of range for %dx%d images", c.MaxShift, c.H, c.W)
	case c.Components <= 0:
		return fmt.Errorf("dataset: non-positive component count %d", c.Components)
	default:
		return nil
	}
}

// Dim returns the flat feature dimension.
func (c Config) Dim() int { return c.H * c.W * c.C }

// Generator draws samples from the synthetic distribution. Prototypes are
// fixed at construction; the generator is safe for concurrent Sample calls
// only if each caller supplies its own RNG.
type Generator struct {
	cfg    Config
	protos [][]float32 // per class, flat C*H*W
}

// NewGenerator constructs class prototypes from rng.
func NewGenerator(cfg Config, rng *sim.RNG) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("dataset: nil rng")
	}
	g := &Generator{cfg: cfg, protos: make([][]float32, cfg.Classes)}
	for class := range g.protos {
		g.protos[class] = g.makePrototype(rng)
	}
	return g, nil
}

// makePrototype builds one class's base image: per channel, a sum of
// low-frequency sinusoids, normalized to zero mean and unit variance so
// classes differ in structure rather than overall energy.
func (g *Generator) makePrototype(rng *sim.RNG) []float32 {
	cfg := g.cfg
	p := make([]float32, cfg.Dim())
	for ch := 0; ch < cfg.C; ch++ {
		plane := p[ch*cfg.H*cfg.W : (ch+1)*cfg.H*cfg.W]
		for comp := 0; comp < cfg.Components; comp++ {
			amp := rng.Range(0.5, 1.0)
			fx := rng.Range(0.5, 2.5) / float64(cfg.W)
			fy := rng.Range(0.5, 2.5) / float64(cfg.H)
			phase := rng.Range(0, 2*math.Pi)
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					v := amp * math.Sin(2*math.Pi*(fx*float64(x)+fy*float64(y))+phase)
					plane[y*cfg.W+x] += float32(v)
				}
			}
		}
		normalize(plane)
	}
	return p
}

func normalize(plane []float32) {
	var mean float64
	for _, v := range plane {
		mean += float64(v)
	}
	mean /= float64(len(plane))
	var variance float64
	for _, v := range plane {
		d := float64(v) - mean
		variance += d * d
	}
	variance /= float64(len(plane))
	std := math.Sqrt(variance)
	if std < 1e-9 {
		std = 1
	}
	for i := range plane {
		plane[i] = float32((float64(plane[i]) - mean) / std)
	}
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Sample draws one example of the given class: the prototype, cyclically
// shifted, brightness-scaled, with Gaussian pixel noise.
func (g *Generator) Sample(class int, rng *sim.RNG) (ml.Example, error) {
	if class < 0 || class >= g.cfg.Classes {
		return ml.Example{}, fmt.Errorf("dataset: class %d outside [0,%d)", class, g.cfg.Classes)
	}
	if rng == nil {
		return ml.Example{}, fmt.Errorf("dataset: nil rng")
	}
	cfg := g.cfg
	proto := g.protos[class]
	x := make([]float32, cfg.Dim())
	dx, dy := 0, 0
	if cfg.MaxShift > 0 {
		dx = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		dy = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
	}
	brightness := float32(rng.Range(0.8, 1.2))
	for ch := 0; ch < cfg.C; ch++ {
		base := ch * cfg.H * cfg.W
		for y := 0; y < cfg.H; y++ {
			sy := mod(y+dy, cfg.H)
			for xx := 0; xx < cfg.W; xx++ {
				sx := mod(xx+dx, cfg.W)
				v := proto[base+sy*cfg.W+sx]*brightness + float32(rng.NormFloat64()*cfg.NoiseStd)
				x[base+y*cfg.W+xx] = v
			}
		}
	}
	return ml.Example{X: x, Label: class}, nil
}

// Balanced draws n examples with labels cycling through the classes
// (so counts per class differ by at most one).
func (g *Generator) Balanced(n int, rng *sim.RNG) ([]ml.Example, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: non-positive sample count %d", n)
	}
	out := make([]ml.Example, n)
	for i := range out {
		ex, err := g.Sample(i%g.cfg.Classes, rng)
		if err != nil {
			return nil, err
		}
		out[i] = ex
	}
	return out, nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// ClassHistogram counts labels in examples; the slice has classes entries.
func ClassHistogram(examples []ml.Example, classes int) []int {
	h := make([]int, classes)
	for _, ex := range examples {
		if ex.Label >= 0 && ex.Label < classes {
			h[ex.Label]++
		}
	}
	return h
}
