package dataset

import (
	"fmt"
	"math"
	"sort"

	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

// Scheme selects how a data pool is distributed over agents — the paper's
// "split the dataset into n subsets according to a predefined distribution"
// (§4). The evaluation (§5.2) uses a highly skewed per-vehicle class
// distribution; the ablation benches sweep across all three schemes.
type Scheme int

const (
	// SchemeIID assigns every agent a uniformly random subset, so local
	// class distributions match the global one.
	SchemeIID Scheme = iota + 1
	// SchemeShards sorts the pool by label, cuts it into contiguous
	// shards, and deals ShardsPerAgent shards to each agent (McMahan et
	// al.'s pathological non-IID split). One or two shards per agent
	// yields the paper's "highly skewed distribution of classes ...
	// to emulate the real-world scenario of highly personalized data".
	SchemeShards
	// SchemeDirichlet draws each agent's class proportions from a
	// symmetric Dirichlet(alpha); small alpha means high skew.
	SchemeDirichlet
)

// String returns the lower-case scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeIID:
		return "iid"
	case SchemeShards:
		return "shards"
	case SchemeDirichlet:
		return "dirichlet"
	default:
		return fmt.Sprintf("unknown(%d)", int(s))
	}
}

// PartitionConfig parameterizes a split.
type PartitionConfig struct {
	Scheme Scheme `json:"scheme"`
	// PerAgent is the number of samples each agent receives (the paper's
	// experiment: 80).
	PerAgent int `json:"per_agent"`
	// ShardsPerAgent applies to SchemeShards (the paper-style skew uses 2).
	ShardsPerAgent int `json:"shards_per_agent,omitempty"`
	// Alpha applies to SchemeDirichlet.
	Alpha float64 `json:"alpha,omitempty"`
}

// DefaultPartitionConfig mirrors the paper's evaluation: 80 samples per
// vehicle, highly skewed (two label shards each).
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{Scheme: SchemeShards, PerAgent: 80, ShardsPerAgent: 2}
}

// Validate reports whether the configuration is usable.
func (c PartitionConfig) Validate() error {
	if c.PerAgent <= 0 {
		return fmt.Errorf("dataset: non-positive per-agent sample count %d", c.PerAgent)
	}
	switch c.Scheme {
	case SchemeIID:
		return nil
	case SchemeShards:
		if c.ShardsPerAgent <= 0 {
			return fmt.Errorf("dataset: shards scheme needs positive shards per agent, got %d", c.ShardsPerAgent)
		}
		if c.PerAgent%c.ShardsPerAgent != 0 {
			return fmt.Errorf("dataset: per-agent count %d not divisible by %d shards", c.PerAgent, c.ShardsPerAgent)
		}
		return nil
	case SchemeDirichlet:
		if c.Alpha <= 0 {
			return fmt.Errorf("dataset: dirichlet scheme needs positive alpha, got %v", c.Alpha)
		}
		return nil
	default:
		return fmt.Errorf("dataset: unknown scheme %d", int(c.Scheme))
	}
}

// Partition splits pool into agents subsets of cfg.PerAgent samples each.
// The pool must hold at least agents*cfg.PerAgent examples. Examples are
// not duplicated across agents.
func Partition(pool []ml.Example, agents int, cfg PartitionConfig, rng *sim.RNG) ([][]ml.Example, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if agents <= 0 {
		return nil, fmt.Errorf("dataset: non-positive agent count %d", agents)
	}
	if rng == nil {
		return nil, fmt.Errorf("dataset: nil rng")
	}
	need := agents * cfg.PerAgent
	if len(pool) < need {
		return nil, fmt.Errorf("dataset: pool of %d samples cannot supply %d agents x %d", len(pool), agents, cfg.PerAgent)
	}
	switch cfg.Scheme {
	case SchemeIID:
		return partitionIID(pool, agents, cfg.PerAgent, rng), nil
	case SchemeShards:
		return partitionShards(pool, agents, cfg.PerAgent, cfg.ShardsPerAgent, rng), nil
	case SchemeDirichlet:
		return partitionDirichlet(pool, agents, cfg.PerAgent, cfg.Alpha, rng)
	default:
		return nil, fmt.Errorf("dataset: unknown scheme %d", int(cfg.Scheme))
	}
}

func partitionIID(pool []ml.Example, agents, perAgent int, rng *sim.RNG) [][]ml.Example {
	perm := rng.Perm(len(pool))
	out := make([][]ml.Example, agents)
	k := 0
	for a := 0; a < agents; a++ {
		subset := make([]ml.Example, perAgent)
		for i := range subset {
			subset[i] = pool[perm[k]]
			k++
		}
		out[a] = subset
	}
	return out
}

func partitionShards(pool []ml.Example, agents, perAgent, shardsPerAgent int, rng *sim.RNG) [][]ml.Example {
	// Stable sort by label, then slice into equal shards and deal a random
	// shardsPerAgent of them to each agent.
	sorted := make([]ml.Example, len(pool))
	copy(sorted, pool)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })

	shardSize := perAgent / shardsPerAgent
	numShards := agents * shardsPerAgent
	shardOrder := rng.Perm(numShards)
	out := make([][]ml.Example, agents)
	k := 0
	for a := 0; a < agents; a++ {
		subset := make([]ml.Example, 0, perAgent)
		for s := 0; s < shardsPerAgent; s++ {
			shard := shardOrder[k]
			k++
			start := shard * shardSize
			subset = append(subset, sorted[start:start+shardSize]...)
		}
		out[a] = subset
	}
	return out
}

func partitionDirichlet(pool []ml.Example, agents, perAgent int, alpha float64, rng *sim.RNG) ([][]ml.Example, error) {
	// Group pool indices by label, shuffled within each class.
	byClass := map[int][]int{}
	var classes []int
	for i, ex := range pool {
		if _, ok := byClass[ex.Label]; !ok {
			classes = append(classes, ex.Label)
		}
		byClass[ex.Label] = append(byClass[ex.Label], i)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	cursor := map[int]int{}

	out := make([][]ml.Example, agents)
	for a := 0; a < agents; a++ {
		props := dirichlet(rng, len(classes), alpha)
		subset := make([]ml.Example, 0, perAgent)
		// Draw target counts per class, then fill, falling back to any
		// class with remaining samples when one runs dry.
		for ci, c := range classes {
			want := int(props[ci]*float64(perAgent) + 0.5)
			for n := 0; n < want && len(subset) < perAgent; n++ {
				idx := byClass[c]
				if cursor[c] >= len(idx) {
					break
				}
				subset = append(subset, pool[idx[cursor[c]]])
				cursor[c]++
			}
		}
		for len(subset) < perAgent {
			grew := false
			for _, c := range classes {
				idx := byClass[c]
				if cursor[c] < len(idx) {
					subset = append(subset, pool[idx[cursor[c]]])
					cursor[c]++
					grew = true
					if len(subset) == perAgent {
						break
					}
				}
			}
			if !grew {
				return nil, fmt.Errorf("dataset: dirichlet partition exhausted the pool at agent %d", a)
			}
		}
		out[a] = subset
	}
	return out, nil
}

// dirichlet draws a symmetric Dirichlet(alpha) vector of length k via
// normalized Gamma(alpha, 1) draws (Marsaglia-Tsang is overkill here; for
// the alphas used in experiments a sum of exponential-based draws via the
// Johnk/Best approach suffices — implemented as Gamma through rejection).
func dirichlet(rng *sim.RNG, k int, alpha float64) []float64 {
	out := make([]float64, k)
	var sum float64
	for i := range out {
		g := gammaDraw(rng, alpha)
		out[i] = g
		sum += g
	}
	if sum <= 0 {
		// Degenerate: fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaDraw samples Gamma(shape, 1) using Marsaglia-Tsang for shape >= 1
// and the boost transform for shape < 1.
func gammaDraw(rng *sim.RNG, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
