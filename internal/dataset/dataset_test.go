package dataset

import (
	"math"
	"testing"

	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

func smallConfig() Config {
	return Config{Classes: 4, H: 8, W: 8, C: 2, NoiseStd: 0.4, MaxShift: 1, Components: 3}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Classes = 1 },
		func(c *Config) { c.H = 0 },
		func(c *Config) { c.W = -1 },
		func(c *Config) { c.C = 0 },
		func(c *Config) { c.NoiseStd = -0.1 },
		func(c *Config) { c.MaxShift = -1 },
		func(c *Config) { c.MaxShift = c.H },
		func(c *Config) { c.Components = 0 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{}, sim.NewRNG(1)); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewGenerator(smallConfig(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestSampleShapeAndLabel(t *testing.T) {
	g, err := NewGenerator(smallConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	for class := 0; class < 4; class++ {
		ex, err := g.Sample(class, rng)
		if err != nil {
			t.Fatalf("Sample(%d): %v", class, err)
		}
		if len(ex.X) != g.Config().Dim() {
			t.Fatalf("sample dim = %d, want %d", len(ex.X), g.Config().Dim())
		}
		if ex.Label != class {
			t.Fatalf("label = %d, want %d", ex.Label, class)
		}
		for i, v := range ex.X {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("pixel %d is %v", i, v)
			}
		}
	}
	if _, err := g.Sample(-1, rng); err == nil {
		t.Fatal("negative class accepted")
	}
	if _, err := g.Sample(4, rng); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if _, err := g.Sample(0, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestSamplesVaryWithinClass(t *testing.T) {
	g, err := NewGenerator(smallConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	a, err := g.Sample(0, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Sample(0, rng)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X {
		if a.X[i] != b.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two draws of the same class are identical; noise/augmentation missing")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() ml.Example {
		g, err := NewGenerator(smallConfig(), sim.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		ex, err := g.Sample(2, sim.NewRNG(6))
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}
	a, b := mk(), mk()
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("identically seeded generators produced different samples")
		}
	}
}

func TestBalancedCounts(t *testing.T) {
	g, err := NewGenerator(smallConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := g.Balanced(42, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	hist := ClassHistogram(pool, 4)
	// 42 = 4*10 + 2: classes 0,1 get 11, classes 2,3 get 10.
	want := []int{11, 11, 10, 10}
	for c, n := range hist {
		if n != want[c] {
			t.Fatalf("class %d count = %d, want %d (hist %v)", c, n, want[c], hist)
		}
	}
	if _, err := g.Balanced(0, sim.NewRNG(2)); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestClassesAreLearnable(t *testing.T) {
	// A central MLP must comfortably separate the synthetic classes —
	// this is the property that makes accuracy metrics meaningful.
	cfg := smallConfig()
	g, err := NewGenerator(cfg, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(12)
	train, err := g.Balanced(400, rng)
	if err != nil {
		t.Fatal(err)
	}
	test, err := g.Balanced(200, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := ml.NewNetwork(ml.MLPSpec(cfg.Dim(), []int{32}, cfg.Classes), rng.Fork("init"))
	if err != nil {
		t.Fatal(err)
	}
	tc := ml.TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.03, Momentum: 0.9}
	if _, err := net.Train(train, tc, rng.Fork("train")); err != nil {
		t.Fatal(err)
	}
	acc, _, err := net.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Fatalf("central accuracy = %v, want >= 0.7 (chance = 0.25)", acc)
	}
}

func TestPartitionConfigValidate(t *testing.T) {
	if err := DefaultPartitionConfig().Validate(); err != nil {
		t.Fatalf("default partition config invalid: %v", err)
	}
	bad := []PartitionConfig{
		{Scheme: SchemeIID, PerAgent: 0},
		{Scheme: SchemeShards, PerAgent: 80, ShardsPerAgent: 0},
		{Scheme: SchemeShards, PerAgent: 80, ShardsPerAgent: 3},
		{Scheme: SchemeDirichlet, PerAgent: 80, Alpha: 0},
		{Scheme: Scheme(99), PerAgent: 80},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad partition config %d validated", i)
		}
	}
}

func makePool(t *testing.T, n int) []ml.Example {
	t.Helper()
	g, err := NewGenerator(smallConfig(), sim.NewRNG(20))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := g.Balanced(n, sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestPartitionIIDBalanced(t *testing.T) {
	pool := makePool(t, 800)
	parts, err := Partition(pool, 8, PartitionConfig{Scheme: SchemeIID, PerAgent: 40}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 8 {
		t.Fatalf("got %d parts", len(parts))
	}
	for a, p := range parts {
		if len(p) != 40 {
			t.Fatalf("agent %d got %d samples", a, len(p))
		}
		hist := ClassHistogram(p, 4)
		for c, n := range hist {
			if n == 0 {
				t.Fatalf("agent %d has zero samples of class %d under IID: %v", a, c, hist)
			}
		}
	}
}

func TestPartitionShardsSkewed(t *testing.T) {
	pool := makePool(t, 800)
	parts, err := Partition(pool, 10, PartitionConfig{Scheme: SchemeShards, PerAgent: 80, ShardsPerAgent: 2}, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for a, p := range parts {
		if len(p) != 80 {
			t.Fatalf("agent %d got %d samples", a, len(p))
		}
		hist := ClassHistogram(p, 4)
		nonzero := 0
		for _, n := range hist {
			if n > 0 {
				nonzero++
			}
		}
		// Two shards can span at most 3 classes (if a shard straddles a
		// class boundary); high skew means far fewer than all 4.
		if nonzero > 3 {
			t.Fatalf("agent %d sees %d classes (%v); shards split is not skewed", a, nonzero, hist)
		}
	}
}

func TestPartitionNoDuplication(t *testing.T) {
	pool := makePool(t, 400)
	for _, scheme := range []PartitionConfig{
		{Scheme: SchemeIID, PerAgent: 40},
		{Scheme: SchemeShards, PerAgent: 40, ShardsPerAgent: 2},
		{Scheme: SchemeDirichlet, PerAgent: 40, Alpha: 0.5},
	} {
		parts, err := Partition(pool, 10, scheme, sim.NewRNG(3))
		if err != nil {
			t.Fatalf("%v: %v", scheme.Scheme, err)
		}
		seen := map[*float32]bool{} // identity via backing-array pointer
		total := 0
		for _, p := range parts {
			for _, ex := range p {
				key := &ex.X[0]
				if seen[key] {
					t.Fatalf("%v: sample duplicated across agents", scheme.Scheme)
				}
				seen[key] = true
				total++
			}
		}
		if total != 400 {
			t.Fatalf("%v: distributed %d samples, want 400", scheme.Scheme, total)
		}
	}
}

func TestPartitionDirichletSkewVariesWithAlpha(t *testing.T) {
	pool := makePool(t, 2000)
	maxFrac := func(alpha float64) float64 {
		parts, err := Partition(pool, 10, PartitionConfig{Scheme: SchemeDirichlet, PerAgent: 100, Alpha: alpha}, sim.NewRNG(4))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range parts {
			hist := ClassHistogram(p, 4)
			best := 0
			for _, n := range hist {
				if n > best {
					best = n
				}
			}
			sum += float64(best) / float64(len(p))
		}
		return sum / float64(len(parts))
	}
	lowAlpha := maxFrac(0.1) // highly skewed
	highAlpha := maxFrac(50) // nearly uniform
	if lowAlpha <= highAlpha {
		t.Fatalf("dominant-class fraction: alpha=0.1 gives %v, alpha=50 gives %v; want skew to grow as alpha shrinks",
			lowAlpha, highAlpha)
	}
	if highAlpha > 0.5 {
		t.Fatalf("alpha=50 dominant-class fraction = %v, want near 1/classes", highAlpha)
	}
}

func TestPartitionValidatesInputs(t *testing.T) {
	pool := makePool(t, 100)
	good := PartitionConfig{Scheme: SchemeIID, PerAgent: 10}
	if _, err := Partition(pool, 0, good, sim.NewRNG(1)); err == nil {
		t.Fatal("zero agents accepted")
	}
	if _, err := Partition(pool, 5, good, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := Partition(pool, 11, good, sim.NewRNG(1)); err == nil {
		t.Fatal("undersized pool accepted")
	}
	if _, err := Partition(pool, 2, PartitionConfig{}, sim.NewRNG(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	pool := makePool(t, 400)
	cfg := PartitionConfig{Scheme: SchemeShards, PerAgent: 40, ShardsPerAgent: 2}
	a, err := Partition(pool, 10, cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(pool, 10, cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for ai := range a {
		for i := range a[ai] {
			if a[ai][i].Label != b[ai][i].Label {
				t.Fatal("identically seeded partitions differ")
			}
		}
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeIID: "iid", SchemeShards: "shards", SchemeDirichlet: "dirichlet",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Scheme(0).String() != "unknown(0)" {
		t.Errorf("Scheme(0).String() = %q", Scheme(0).String())
	}
}

func TestClassHistogramIgnoresOutOfRange(t *testing.T) {
	h := ClassHistogram([]ml.Example{{Label: 0}, {Label: 5}, {Label: -1}}, 2)
	if h[0] != 1 || h[1] != 0 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestGammaDrawPositive(t *testing.T) {
	rng := sim.NewRNG(31)
	for _, shape := range []float64{0.1, 0.5, 1, 2, 10} {
		for i := 0; i < 200; i++ {
			if g := gammaDraw(rng, shape); g < 0 || math.IsNaN(g) {
				t.Fatalf("gammaDraw(%v) = %v", shape, g)
			}
		}
	}
}

func TestGammaDrawMean(t *testing.T) {
	// Gamma(shape, 1) has mean = shape.
	rng := sim.NewRNG(32)
	const n = 20000
	for _, shape := range []float64{0.5, 2} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += gammaDraw(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Fatalf("gamma mean for shape %v = %v", shape, mean)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := sim.NewRNG(33)
	for _, alpha := range []float64{0.1, 1, 10} {
		v := dirichlet(rng, 6, alpha)
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative dirichlet component %v", x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dirichlet sums to %v", sum)
		}
	}
}
