package textplot

import (
	"strings"
	"testing"
)

func TestLineRendersAllSeries(t *testing.T) {
	out := Line([]Series{
		{Name: "base", Points: []Point{{0, 0}, {10, 0.3}}},
		{Name: "opp", Points: []Point{{0, 0}, {10, 0.5}}},
	}, 40, 10)
	if !strings.Contains(out, "base") || !strings.Contains(out, "opp") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("series glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "0.500") {
		t.Fatalf("y-axis max missing:\n%s", out)
	}
}

func TestLineEmpty(t *testing.T) {
	if out := Line(nil, 40, 10); out != "(no data)\n" {
		t.Fatalf("empty Line = %q", out)
	}
	if out := Line([]Series{{Name: "x"}}, 40, 10); out != "(no data)\n" {
		t.Fatalf("pointless Line = %q", out)
	}
}

func TestLineConstantSeries(t *testing.T) {
	out := Line([]Series{{Name: "c", Points: []Point{{0, 1}, {5, 1}}}}, 20, 8)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("degenerate ranges leaked:\n%s", out)
	}
}

func TestLineClampsTinyDimensions(t *testing.T) {
	out := Line([]Series{{Name: "x", Points: []Point{{0, 0}, {1, 1}}}}, 1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{1, 4}, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 bars, got %d:\n%s", len(lines), out)
	}
	if strings.Count(lines[1], "█") != 8 {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if strings.Count(lines[0], "█") != 2 {
		t.Fatalf("1/4 bar wrong length:\n%s", out)
	}
}

func TestBarsZeroAndMismatch(t *testing.T) {
	if out := Bars([]string{"a"}, []float64{1, 2}, 8); out != "(no data)\n" {
		t.Fatalf("mismatch = %q", out)
	}
	out := Bars([]string{"a"}, []float64{0}, 8)
	if strings.Contains(out, "█") {
		t.Fatalf("zero value rendered a bar: %q", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"x", "1"}, {"longer", "22"}})
	if !strings.Contains(out, "name") || !strings.Contains(out, "longer") {
		t.Fatalf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]float64{0, 1, 1, 2, 9}, 3, 10)
	if !strings.Contains(out, "[") {
		t.Fatalf("bin labels missing:\n%s", out)
	}
	if out == "(no data)\n" {
		t.Fatal("histogram empty")
	}
	if Histogram(nil, 3, 10) != "(no data)\n" {
		t.Fatal("empty histogram not flagged")
	}
	// Constant values must not divide by zero.
	if out := Histogram([]float64{5, 5, 5}, 2, 10); strings.Contains(out, "NaN") {
		t.Fatalf("constant histogram broken:\n%s", out)
	}
}
