// Package textplot renders small ASCII charts for terminal output of
// experiment results — line charts for accuracy-over-time curves and bar
// charts for per-round counts (the two elements of the paper's Figure 4).
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// seriesGlyphs mark successive series in a line chart.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Line renders the series as an ASCII line chart of the given interior
// width and height (both at least 8). Each series gets a distinct glyph,
// listed in the legend below the chart.
func Line(series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	nonEmpty := 0
	for _, s := range series {
		if len(s.Points) > 0 {
			nonEmpty++
		}
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if nonEmpty == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = glyph
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%10.3f ┤", maxY)
	b.Write(grid[0])
	b.WriteByte('\n')
	for r := 1; r < height-1; r++ {
		b.WriteString(strings.Repeat(" ", 11))
		b.WriteString("│")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10.3f ┤", minY)
	b.Write(grid[height-1])
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", 12))
	b.WriteString(strings.Repeat("─", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%12s%-*.0f%*.0f\n", "", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}

// Bars renders labeled values as a horizontal bar chart scaled to width.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(values) == 0 {
		return "(no data)\n"
	}
	if width < 8 {
		width = 8
	}
	maxV := math.Inf(-1)
	for _, v := range values {
		maxV = math.Max(maxV, v)
	}
	if maxV <= 0 {
		maxV = 1
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if v > 0 && n == 0 {
			n = 1
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s │%s %.2f\n", labelWidth, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}

// Table renders rows as a fixed-width table with a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("─", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Histogram summarizes values into the given number of equal-width bins
// and renders them as bars labeled with bin ranges.
func Histogram(values []float64, bins, width int) string {
	if len(values) == 0 || bins <= 0 {
		return "(no data)\n"
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]float64, bins)
	labels := make([]string, bins)
	binWidth := (hi - lo) / float64(bins)
	for _, v := range values {
		idx := int((v - lo) / binWidth)
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	for i := range labels {
		labels[i] = fmt.Sprintf("[%.1f,%.1f)", lo+float64(i)*binWidth, lo+float64(i+1)*binWidth)
	}
	return Bars(labels, counts, width)
}
