package strategy

import (
	"fmt"
	"sort"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
)

// OppConfig parameterizes the paper's OPP strategy (§5.2): FL extended with
// opportunistic V2X forwarding. The default mirrors the evaluation: the
// same V2C budget as BASE (5 reporters x 75 rounds) but 200 s rounds that
// give reporters time to collect contributions from encountered vehicles.
type OppConfig struct {
	// Rounds is the number of rounds (the fixed V2C budget).
	Rounds int `json:"rounds"`
	// Reporters is the number of reporter vehicles contacted per round
	// over V2C (R in the paper; each V2C connection is "spent" on one).
	Reporters int `json:"reporters"`
	// RoundDuration is the round timer (200 s in the evaluation, long
	// enough for V2X exchanges to happen).
	RoundDuration sim.Duration `json:"round_duration_s"`
	// ServerOverhead is the fixed per-round server-side time; see
	// FedAvgConfig.ServerOverhead for the calibration.
	ServerOverhead sim.Duration `json:"server_overhead_s"`
	// ExchangeTimeout bounds how long a reporter waits for a non-reporter
	// to return a retrained model before freeing the exchange slot.
	ExchangeTimeout sim.Duration `json:"exchange_timeout_s"`
}

// DefaultOppConfig is the paper's OPP configuration.
func DefaultOppConfig() OppConfig {
	return OppConfig{
		Rounds:          75,
		Reporters:       5,
		RoundDuration:   200,
		ServerOverhead:  17.893,
		ExchangeTimeout: 60,
	}
}

// Validate reports whether the configuration is usable.
func (c OppConfig) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("strategy: non-positive round count %d", c.Rounds)
	case c.Reporters <= 0:
		return fmt.Errorf("strategy: non-positive reporter count %d", c.Reporters)
	case c.RoundDuration <= 0:
		return fmt.Errorf("strategy: non-positive round duration %v", c.RoundDuration)
	case c.ServerOverhead < 0:
		return fmt.Errorf("strategy: negative server overhead %v", c.ServerOverhead)
	case c.ExchangeTimeout <= 0:
		return fmt.Errorf("strategy: non-positive exchange timeout %v", c.ExchangeTimeout)
	default:
		return nil
	}
}

// reporterState tracks one reporter's progress within a round.
type reporterState struct {
	global      *ml.Snapshot  // the w received from the server, forwarded to peers
	agg         *ml.Snapshot  // intermediate aggregate (own retrain ⊕ peer models)
	weight      float64       // accumulated data amount behind agg
	sources     []sim.AgentID // vehicles folded into agg (provenance)
	retrainDone bool
	contacted   map[sim.AgentID]bool // peers offered this round
	pendingPeer sim.AgentID          // peer with an exchange in flight (NoAgent if none)
	exchanges   int                  // successful V2X model collections
	exchSpan    trace.SpanID         // trace span of the in-flight exchange (0 if none)
}

// servingState tracks a non-reporter retraining a forwarded model.
type servingState struct {
	reporter sim.AgentID
	round    int
}

// Opportunistic implements the paper's OPP strategy. Because Federated
// Averaging is associative (see ml.FedAvg), each reporter plays the role of
// a cloud server for the vehicles in its vicinity: it forwards the global
// model w over V2X, collects retrained models, and pre-aggregates them with
// its own before uploading a single model (plus the summed data amount)
// over V2C — multiplying model contributions without additional cellular
// connections.
type Opportunistic struct {
	Base
	cfg OppConfig

	round      int
	roundStart sim.Time
	roundEnded bool
	roundSpan  trace.SpanID
	reporters  map[sim.AgentID]*reporterState
	serving    map[sim.AgentID]servingState
	awaiting   int
	collected  []*ml.Snapshot
	weights    []float64
	contribs   int
	provenance map[sim.AgentID]bool
}

var _ Strategy = (*Opportunistic)(nil)

// NewOpportunistic returns the OPP strategy.
func NewOpportunistic(cfg OppConfig) (*Opportunistic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Opportunistic{cfg: cfg}, nil
}

// Name implements Strategy.
func (o *Opportunistic) Name() string { return "opportunistic" }

// Config returns the strategy's configuration.
func (o *Opportunistic) Config() OppConfig { return o.cfg }

// Start implements Strategy.
func (o *Opportunistic) Start(env Env) error {
	if env.Model(env.Server()) == nil {
		return fmt.Errorf("strategy: opportunistic: server has no initial model")
	}
	o.provenance = make(map[sim.AgentID]bool)
	o.startRound(env)
	return nil
}

func (o *Opportunistic) startRound(env Env) {
	if o.round >= o.cfg.Rounds {
		env.Logf("opp: %d rounds complete at %v", o.round, env.Now())
		env.Stop()
		return
	}
	o.round++
	o.roundStart = env.Now()
	o.roundEnded = false
	o.reporters = make(map[sim.AgentID]*reporterState, o.cfg.Reporters)
	o.serving = make(map[sim.AgentID]servingState)
	o.awaiting = 0
	o.collected = o.collected[:0]
	o.weights = o.weights[:0]
	o.contribs = 0

	// See FederatedAveraging.startRound: the round span scopes every
	// transfer, train, eval, and exchange the round causes.
	tr := env.Tracer()
	o.roundSpan = tr.BeginRoot(trace.KindRound, "round")
	tr.AttrInt(o.roundSpan, "round", int64(o.round))
	tr.Attr(o.roundSpan, "strategy", "opportunistic")
	tr.SetScope(o.roundSpan)

	global := env.Model(env.Server())
	for _, v := range pickOnVehicles(env, o.cfg.Reporters) {
		p := Payload{Tag: tagGlobal, Round: o.round, Model: global}
		if _, err := env.Send(env.Server(), v, comm.KindV2C, p); err != nil {
			env.Logf("opp: round %d: send global to %v: %v", o.round, v, err)
			continue
		}
		o.reporters[v] = &reporterState{
			global:      global,
			contacted:   make(map[sim.AgentID]bool),
			pendingPeer: sim.NoAgent,
		}
	}
	round := o.round
	if err := env.After(o.cfg.RoundDuration, func() { o.endRound(env, round) }); err != nil {
		env.Logf("opp: schedule round end: %v", err)
		env.Stop()
	}
}

// OnDeliver implements Strategy.
func (o *Opportunistic) OnDeliver(env Env, msg *comm.Message, p Payload) {
	switch p.Tag {
	case tagGlobal:
		// Reporter receives w from the server: retrain it locally.
		st, ok := o.reporters[msg.To]
		if !ok || p.Round != o.round || o.roundEnded {
			return
		}
		if err := env.Train(msg.To, p.Model); err != nil {
			env.Logf("opp: round %d: reporter %v train: %v", o.round, msg.To, err)
		}
		_ = st
	case tagOffer:
		o.handleOffer(env, msg, p)
	case tagRetrained:
		o.handleRetrained(env, msg, p)
	case tagDecline:
		if st, ok := o.reporters[msg.To]; ok && p.Round == o.round && st.pendingPeer == msg.From {
			st.pendingPeer = sim.NoAgent
			env.Tracer().EndWith(st.exchSpan, "status", "declined")
			st.exchSpan = 0
			o.tryExchanges(env, msg.To, st)
		}
	case tagUpdate:
		if msg.To != env.Server() || p.Round != o.round {
			return
		}
		o.awaiting--
		o.collected = append(o.collected, p.Model)
		o.weights = append(o.weights, p.DataAmount)
		if p.Contributions > 0 {
			o.contribs += p.Contributions
		} else {
			o.contribs++
		}
		for _, v := range p.Provenance {
			o.provenance[v] = true
		}
		o.maybeAggregate(env)
	}
}

// handleOffer runs on a non-reporter receiving a forwarded global model.
func (o *Opportunistic) handleOffer(env Env, msg *comm.Message, p Payload) {
	v := msg.To
	if p.Round != o.round || o.roundEnded || o.reporters[v] != nil {
		o.decline(env, v, msg.From, p.Round)
		return
	}
	if _, busy := o.serving[v]; busy || env.IsBusy(v) || env.DataAmount(v) == 0 {
		o.decline(env, v, msg.From, p.Round)
		return
	}
	if err := env.Train(v, p.Model); err != nil {
		o.decline(env, v, msg.From, p.Round)
		return
	}
	o.serving[v] = servingState{reporter: msg.From, round: p.Round}
}

func (o *Opportunistic) decline(env Env, from, to sim.AgentID, round int) {
	p := Payload{Tag: tagDecline, Round: round}
	if _, err := env.Send(from, to, comm.KindV2X, p); err != nil {
		// Reporter's exchange timeout will free the slot.
		env.Logf("opp: decline %v -> %v: %v", from, to, err)
	}
}

// handleRetrained runs on a reporter receiving a peer's retrained model:
// the intermediate aggregation step of Figure 3.
func (o *Opportunistic) handleRetrained(env Env, msg *comm.Message, p Payload) {
	st, ok := o.reporters[msg.To]
	if !ok || p.Round != o.round {
		return
	}
	if st.pendingPeer == msg.From {
		st.pendingPeer = sim.NoAgent
		env.Tracer().EndWith(st.exchSpan, "status", "collected")
		st.exchSpan = 0
	}
	if !st.retrainDone {
		// Own retraining unfinished (should not happen: offers are only
		// sent after retrainDone); fold the peer model in directly.
		st.agg = p.Model
		st.weight = p.DataAmount
		st.exchanges++
		return
	}
	agg, err := env.Aggregate([]*ml.Snapshot{st.agg, p.Model}, []float64{st.weight, p.DataAmount})
	if err != nil {
		env.Logf("opp: round %d: reporter %v aggregate: %v", o.round, msg.To, err)
		return
	}
	st.agg = agg
	st.weight += p.DataAmount
	st.sources = append(st.sources, msg.From)
	st.exchanges++
	if !o.roundEnded {
		o.tryExchanges(env, msg.To, st)
	}
}

// OnSendFailed implements Strategy.
func (o *Opportunistic) OnSendFailed(env Env, msg *comm.Message, p Payload, reason error) {
	switch p.Tag {
	case tagGlobal:
		env.Logf("opp: round %d: global to %v failed: %v", p.Round, msg.To, reason)
	case tagOffer:
		if st, ok := o.reporters[msg.From]; ok && p.Round == o.round && st.pendingPeer == msg.To {
			st.pendingPeer = sim.NoAgent
			env.Tracer().EndWith(st.exchSpan, "status", "offer-failed")
			st.exchSpan = 0
			if !o.roundEnded {
				o.tryExchanges(env, msg.From, st)
			}
		}
	case tagRetrained:
		// Peer left range or reporter gone: the retrained model is
		// discarded (paper: "Else, discard w").
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
	case tagUpdate:
		if p.Round != o.round {
			return
		}
		o.awaiting--
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
		o.maybeAggregate(env)
	}
}

// OnTrainDone implements Strategy.
func (o *Opportunistic) OnTrainDone(env Env, id sim.AgentID, trained *ml.Snapshot, loss float64) {
	if st, ok := o.reporters[id]; ok {
		if st.retrainDone {
			return
		}
		st.retrainDone = true
		// The reporter's own retrain joins the aggregate with its local
		// data amount. Peer models collected before this point (possible
		// only in degenerate schedules) were stored in agg already.
		own := pendingUpdate{model: trained, weight: float64(env.DataAmount(id))}
		st.sources = append(st.sources, id)
		if st.agg == nil {
			st.agg = own.model
			st.weight = own.weight
		} else {
			agg, err := env.Aggregate([]*ml.Snapshot{st.agg, own.model}, []float64{st.weight, own.weight})
			if err == nil {
				st.agg = agg
				st.weight += own.weight
			}
		}
		if !o.roundEnded {
			o.tryExchanges(env, id, st)
		}
		return
	}
	if sv, ok := o.serving[id]; ok {
		delete(o.serving, id)
		if sv.round != o.round || o.roundEnded {
			env.Metrics().Add(metrics.CounterDiscardedModels, 1)
			return
		}
		// Send the retrained model back "if reporter is still in range.
		// Else, discard w."
		p := Payload{Tag: tagRetrained, Round: sv.round, Model: trained, DataAmount: float64(env.DataAmount(id))}
		if _, err := env.Send(id, sv.reporter, comm.KindV2X, p); err != nil {
			env.Metrics().Add(metrics.CounterDiscardedModels, 1)
		}
	}
}

// OnTrainAborted implements Strategy.
func (o *Opportunistic) OnTrainAborted(env Env, id sim.AgentID) {
	if _, ok := o.serving[id]; ok {
		delete(o.serving, id)
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
	}
}

// OnEncounter implements Strategy.
func (o *Opportunistic) OnEncounter(env Env, a, b sim.AgentID) {
	if o.roundEnded {
		return
	}
	o.maybeOffer(env, a, b)
	o.maybeOffer(env, b, a)
}

// tryExchanges scans a reporter's current neighborhood for fresh peers
// (encounters that began while the reporter was busy training would
// otherwise be missed).
func (o *Opportunistic) tryExchanges(env Env, r sim.AgentID, st *reporterState) {
	if st.pendingPeer != sim.NoAgent || !st.retrainDone {
		return
	}
	for _, peer := range env.Neighbors(r) {
		o.maybeOffer(env, r, peer)
		if st.pendingPeer != sim.NoAgent {
			return
		}
	}
}

// maybeOffer forwards the global model from reporter r to peer over V2X if
// all of OPP's preconditions hold.
func (o *Opportunistic) maybeOffer(env Env, r, peer sim.AgentID) {
	st, ok := o.reporters[r]
	if !ok || !st.retrainDone || st.pendingPeer != sim.NoAgent {
		return
	}
	if o.reporters[peer] != nil { // reporters don't pair with each other
		return
	}
	if st.contacted[peer] || env.Kind(peer) != sim.KindVehicle {
		return
	}
	if !env.IsOn(r) || !env.IsOn(peer) || env.IsBusy(peer) {
		return
	}
	p := Payload{Tag: tagOffer, Round: o.round, Model: st.global}
	if _, err := env.Send(r, peer, comm.KindV2X, p); err != nil {
		return
	}
	st.contacted[peer] = true
	st.pendingPeer = peer
	// The exchange span covers the whole offer -> retrained/decline/timeout
	// conversation and nests under the round via the tracer scope.
	tr := env.Tracer()
	st.exchSpan = tr.Begin(trace.KindEncounterExchange, "exchange")
	tr.AttrUint(st.exchSpan, "reporter", uint64(r))
	tr.AttrUint(st.exchSpan, "peer", uint64(peer))
	round := o.round
	if err := env.After(o.cfg.ExchangeTimeout, func() {
		if round == o.round && st.pendingPeer == peer {
			st.pendingPeer = sim.NoAgent
			env.Tracer().EndWith(st.exchSpan, "status", "timeout")
			st.exchSpan = 0
			if !o.roundEnded {
				o.tryExchanges(env, r, st)
			}
		}
	}); err != nil {
		env.Logf("opp: schedule exchange timeout: %v", err)
	}
}

func (o *Opportunistic) endRound(env Env, round int) {
	if round != o.round || o.roundEnded {
		return
	}
	o.roundEnded = true

	exchanges := 0
	reporterIDs := make([]sim.AgentID, 0, len(o.reporters))
	for r := range o.reporters {
		reporterIDs = append(reporterIDs, r)
	}
	sort.Slice(reporterIDs, func(i, j int) bool { return reporterIDs[i] < reporterIDs[j] })
	for _, r := range reporterIDs {
		st := o.reporters[r]
		exchanges += st.exchanges
		if !st.retrainDone || st.agg == nil {
			continue
		}
		if !env.IsOn(r) {
			// Reporter turned off before the round ended: everything it
			// collected is discarded (the churn cost the paper calls out).
			env.Metrics().Add(metrics.CounterDiscardedModels, 1+float64(st.exchanges))
			continue
		}
		p := Payload{
			Tag:           tagUpdate,
			Round:         round,
			Model:         st.agg,
			DataAmount:    st.weight,
			Contributions: 1 + st.exchanges,
			Provenance:    st.sources,
		}
		if _, err := env.Send(r, env.Server(), comm.KindV2C, p); err != nil {
			env.Metrics().Add(metrics.CounterDiscardedModels, 1+float64(st.exchanges))
			continue
		}
		o.awaiting++
	}
	if err := env.Metrics().Record(metrics.SeriesRoundExchanges, env.Now(), float64(exchanges)); err != nil {
		env.Logf("metrics: %v", err)
	}
	o.maybeAggregate(env)
}

func (o *Opportunistic) maybeAggregate(env Env) {
	if !o.roundEnded || o.awaiting > 0 {
		return
	}
	tr := env.Tracer()
	if len(o.collected) > 0 {
		aggSpan := tr.Begin(trace.KindRound, "aggregate")
		tr.AttrInt(aggSpan, "models", int64(len(o.collected)))
		global, err := env.Aggregate(o.collected, o.weights)
		if err != nil {
			env.Logf("opp: round %d: aggregate: %v", o.round, err)
			tr.EndWith(aggSpan, "status", "error")
		} else {
			env.SetModel(env.Server(), global)
			tr.End(aggSpan)
		}
	}
	recordGlobalAccuracy(env, o.round, o.contribs)
	recordProvenance(env, len(o.provenance))
	tr.AttrInt(o.roundSpan, "collected", int64(len(o.collected)))
	tr.End(o.roundSpan)
	tr.SetScope(0)
	o.roundSpan = 0
	next := o.roundStart.Add(o.cfg.RoundDuration).Add(o.cfg.ServerOverhead)
	delay := next.Sub(env.Now())
	if delay < 0 {
		delay = 0
	}
	if err := env.After(delay, func() { o.startRound(env) }); err != nil {
		env.Logf("opp: schedule next round: %v", err)
		env.Stop()
	}
}
