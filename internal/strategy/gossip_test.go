package strategy

import (
	"testing"

	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

func newGossipUnderTest(t *testing.T) (*Gossip, *mockEnv) {
	t.Helper()
	s, err := NewGossip(GossipConfig{
		Duration:         1000,
		ExchangeCooldown: 60,
		EvalInterval:     100,
		EvalSample:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := newMockEnv(t, 4)
	return s, env
}

func TestGossipConfigValidate(t *testing.T) {
	if err := DefaultGossipConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []GossipConfig{
		{ExchangeCooldown: 1, EvalInterval: 1, EvalSample: 1},
		{Duration: 1, ExchangeCooldown: -1, EvalInterval: 1, EvalSample: 1},
		{Duration: 1, EvalInterval: 0, EvalSample: 1},
		{Duration: 1, EvalInterval: 1, EvalSample: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if _, err := NewGossip(GossipConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestGossipStartSeedsAndTrainsOnVehicles(t *testing.T) {
	s, env := newGossipUnderTest(t)
	env.on[env.vehicles[3]] = false
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, v := range env.vehicles {
		if env.models[v] == nil {
			t.Fatalf("vehicle %v not seeded with the initial model", v)
		}
	}
	training := env.trainingAgents()
	if len(training) != 3 {
		t.Fatalf("%d vehicles training at start, want 3 (one is off)", len(training))
	}
}

func TestGossipRequiresServerModel(t *testing.T) {
	s, env := newGossipUnderTest(t)
	delete(env.models, env.server)
	if err := s.Start(env); err == nil {
		t.Fatal("Start without initial model succeeded")
	}
}

func TestGossipEncounterExchangesModels(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	a, b := env.vehicles[0], env.vehicles[1]
	env.finishTraining(s, a, 11)
	env.finishTraining(s, b, 12)

	s.OnEncounter(env, a, b)
	gossips := env.sendsWith(tagGossip)
	if len(gossips) != 2 {
		t.Fatalf("%d gossip messages, want 2 (mutual)", len(gossips))
	}
	froms := map[sim.AgentID]bool{}
	for _, g := range gossips {
		froms[g.msg.From] = true
		if g.payload.DataAmount != 80 {
			t.Fatalf("gossip data amount = %v", g.payload.DataAmount)
		}
	}
	if !froms[a] || !froms[b] {
		t.Fatal("exchange not mutual")
	}
	// Delivery merges and retrains.
	before := env.models[gossips[0].msg.To]
	env.deliver(s, gossips[0])
	if env.models[gossips[0].msg.To] == before {
		t.Fatal("merge did not replace the receiver's model")
	}
	if got := env.trainingAgents(); !containsAgent(got, gossips[0].msg.To) {
		t.Fatalf("receiver not retraining after merge: %v", got)
	}
}

func TestGossipUntrainedVehiclesDoNotExchange(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	// Neither vehicle has finished its first local training.
	s.OnEncounter(env, env.vehicles[0], env.vehicles[1])
	if got := env.sendsWith(tagGossip); len(got) != 0 {
		t.Fatalf("untrained vehicles gossiped: %d messages", len(got))
	}
}

func TestGossipCooldownBlocksRapidExchanges(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	a, b, c := env.vehicles[0], env.vehicles[1], env.vehicles[2]
	for i, v := range []sim.AgentID{a, b, c} {
		env.finishTraining(s, v, uint64(30+i))
	}
	s.OnEncounter(env, a, b)
	if got := env.sendsWith(tagGossip); len(got) != 2 {
		t.Fatalf("first exchange produced %d messages", len(got))
	}
	for _, g := range env.sendsWith(tagGossip) {
		g.resolved = true // consume without delivering
	}
	// An immediate second encounter involving a must be suppressed.
	s.OnEncounter(env, a, c)
	if got := env.sendsWith(tagGossip); len(got) != 0 {
		t.Fatalf("cooldown violated: %d messages", len(got))
	}
	// After the cooldown, it goes through.
	env.advance(61)
	s.OnEncounter(env, a, c)
	if got := env.sendsWith(tagGossip); len(got) != 2 {
		t.Fatalf("post-cooldown exchange produced %d messages", len(got))
	}
}

func TestGossipBusyReceiverDefersRetrain(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	a, b := env.vehicles[0], env.vehicles[1]
	env.finishTraining(s, a, 41)
	env.finishTraining(s, b, 42)
	s.OnEncounter(env, a, b)
	gossips := env.sendsWith(tagGossip)
	var toA *sentMessage
	for _, g := range gossips {
		if g.msg.To == a {
			toA = g
		} else {
			g.resolved = true
		}
	}
	// a is busy with another retrain when the model arrives.
	env.busy[a] = true
	env.deliver(s, toA)
	if _, ok := s.pendingMerge[a]; !ok {
		t.Fatal("merge not deferred while busy")
	}
	// When the current training finishes, the deferred retrain starts.
	if err := env.TrainOnData(a, env.models[a], nil); err == nil {
		t.Fatal("mock should refuse training while busy")
	}
	env.busy[a] = false
	s.OnTrainDone(env, a, testSnapshot(t, 43), 0.1)
	if got := env.trainingAgents(); !containsAgent(got, a) {
		t.Fatalf("deferred retrain did not start: %v", got)
	}
}

func TestGossipEvalRecordsFleetAccuracy(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for i, v := range env.vehicles {
		env.finishTraining(s, v, uint64(50+i))
	}
	env.advance(100) // eval tick
	acc := env.rec.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() == 0 {
		t.Fatal("no fleet accuracy recorded")
	}
	if v, _ := acc.Last(); v.Value != 0.5 {
		t.Fatalf("accuracy = %v, want the mock's 0.5", v.Value)
	}
}

func TestGossipStopsAtDuration(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	env.advance(1000)
	if !env.stopped {
		t.Fatal("gossip did not stop at its configured duration")
	}
	// Encounters after the stop are ignored.
	a, b := env.vehicles[0], env.vehicles[1]
	s.OnEncounter(env, a, b)
	if got := env.sendsWith(tagGossip); len(got) != 0 {
		t.Fatal("gossip continued after stop")
	}
}

func TestGossipPowerOnStartsFirstTraining(t *testing.T) {
	s, env := newGossipUnderTest(t)
	v := env.vehicles[2]
	env.on[v] = false
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	if for0 := env.trainingAgents(); containsAgent(for0, v) {
		t.Fatal("off vehicle training")
	}
	env.on[v] = true
	s.OnPowerChange(env, v, true)
	if got := env.trainingAgents(); !containsAgent(got, v) {
		t.Fatalf("vehicle %v not training after power-on: %v", v, got)
	}
}

func containsAgent(ids []sim.AgentID, want sim.AgentID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func TestGossipName(t *testing.T) {
	s, _ := newGossipUnderTest(t)
	if s.Name() != "gossip" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Config().EvalSample != 4 {
		t.Fatal("Config roundtrip broken")
	}
}
