package strategy

import (
	"errors"
	"testing"

	"roadrunner/internal/metrics"
)

func newHybridUnderTest(t *testing.T) (*Hybrid, *mockEnv) {
	t.Helper()
	s, err := NewHybrid(HybridConfig{
		Gossip: GossipConfig{
			Duration:         2000,
			ExchangeCooldown: 60,
			EvalInterval:     500,
			EvalSample:       4,
		},
		SyncInterval: 100,
		SyncVehicles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := newMockEnv(t, 4)
	return s, env
}

func TestHybridConfigValidate(t *testing.T) {
	if err := DefaultHybridConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []HybridConfig{
		{Gossip: GossipConfig{}, SyncInterval: 1, SyncVehicles: 1},
		{Gossip: DefaultGossipConfig(), SyncVehicles: 1},
		{Gossip: DefaultGossipConfig(), SyncInterval: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestHybridSyncPullsAggregatesAndPushes(t *testing.T) {
	s, env := newHybridUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	// Vehicles finish initial local training so they hold models.
	for i, v := range env.vehicles {
		env.finishTraining(s, v, uint64(70+i))
	}
	before := env.models[env.server]

	env.advance(100) // first sync tick
	pulls := env.sendsWith(tagPullRequest)
	if len(pulls) != 2 {
		t.Fatalf("%d pull requests, want 2", len(pulls))
	}
	for _, p := range pulls {
		env.deliver(s, p)
	}
	replies := env.sendsWith(tagPullReply)
	if len(replies) != 2 {
		t.Fatalf("%d pull replies, want 2", len(replies))
	}
	for _, r := range replies {
		if r.payload.Model == nil || r.payload.DataAmount != 80 {
			t.Fatalf("bad pull reply payload: %+v", r.payload)
		}
		env.deliver(s, r)
	}
	if env.models[env.server] == before {
		t.Fatal("server model unchanged after sync aggregation")
	}
	acc := env.rec.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() == 0 {
		t.Fatal("no accuracy recorded at sync")
	}
	pushes := env.sendsWith(tagPush)
	if len(pushes) == 0 {
		t.Fatal("no models pushed back after sync")
	}
	pushed := pushes[0]
	env.deliver(s, pushed)
	if env.models[pushed.msg.To] != env.models[env.server] {
		t.Fatal("pushed model not adopted")
	}
}

func TestHybridSyncSurvivesFailures(t *testing.T) {
	s, env := newHybridUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for i, v := range env.vehicles {
		env.finishTraining(s, v, uint64(80+i))
	}
	env.advance(100)
	pulls := env.sendsWith(tagPullRequest)
	env.failSend(s, pulls[0], errors.New("gone"))
	env.deliver(s, pulls[1])
	replies := env.sendsWith(tagPullReply)
	if len(replies) != 1 {
		t.Fatalf("%d replies, want 1", len(replies))
	}
	env.deliver(s, replies[0])
	// Aggregation over the single surviving reply must still happen.
	if got := env.rec.Counter(metrics.CounterRounds); got != 1 {
		t.Fatalf("sync rounds = %v, want 1", got)
	}
}

func TestHybridGossipStillWorks(t *testing.T) {
	s, env := newHybridUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	a, b := env.vehicles[0], env.vehicles[1]
	env.finishTraining(s, a, 91)
	env.finishTraining(s, b, 92)
	s.OnEncounter(env, a, b)
	if got := env.sendsWith(tagGossip); len(got) != 2 {
		t.Fatalf("hybrid gossip exchange produced %d messages, want 2", len(got))
	}
}

func TestHybridName(t *testing.T) {
	s, _ := newHybridUnderTest(t)
	if s.Name() != "hybrid" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Config().SyncVehicles != 2 {
		t.Fatal("Config roundtrip broken")
	}
}

func TestPickOnVehiclesRespectsState(t *testing.T) {
	env := newMockEnv(t, 5)
	env.on[env.vehicles[0]] = false
	env.busy[env.vehicles[1]] = true
	picked := pickOnVehicles(env, 10)
	if len(picked) != 3 {
		t.Fatalf("picked %d vehicles, want 3 eligible", len(picked))
	}
	for _, v := range picked {
		if !env.on[v] || env.busy[v] {
			t.Fatalf("picked ineligible vehicle %v", v)
		}
	}
	if got := pickOnVehicles(env, 2); len(got) != 2 {
		t.Fatalf("cap not applied: %d", len(got))
	}
}
