package strategy

import (
	"fmt"

	"roadrunner/internal/comm"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

const tagData = "data"

// CentralizedConfig parameterizes classic centralized ML: vehicles upload
// raw sensed data over metered V2C and the cloud server trains the model —
// the status quo whose transmission-cost and privacy problems motivate the
// paper (§1). It is included as the cost baseline strategies are compared
// against.
type CentralizedConfig struct {
	// Rounds is the number of server training rounds.
	Rounds int `json:"rounds"`
	// RoundDuration is the time between server training passes; uploads
	// from newly available vehicles happen continuously.
	RoundDuration sim.Duration `json:"round_duration_s"`
	// UploadCheckInterval is how often vehicles that have not yet
	// uploaded are re-polled (vehicles that were off get another chance).
	UploadCheckInterval sim.Duration `json:"upload_check_interval_s"`
	// ServerEpochs is how many epochs the server trains per round over
	// all data received so far.
	ServerEpochs int `json:"server_epochs"`
}

// DefaultCentralizedConfig trains 20 server rounds two minutes apart.
func DefaultCentralizedConfig() CentralizedConfig {
	return CentralizedConfig{
		Rounds:              20,
		RoundDuration:       120,
		UploadCheckInterval: 30,
		ServerEpochs:        1,
	}
}

// Validate reports whether the configuration is usable.
func (c CentralizedConfig) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("strategy: non-positive round count %d", c.Rounds)
	case c.RoundDuration <= 0:
		return fmt.Errorf("strategy: non-positive round duration %v", c.RoundDuration)
	case c.UploadCheckInterval <= 0:
		return fmt.Errorf("strategy: non-positive upload check interval %v", c.UploadCheckInterval)
	case c.ServerEpochs <= 0:
		return fmt.Errorf("strategy: non-positive server epochs %d", c.ServerEpochs)
	default:
		return nil
	}
}

// Centralized implements the central-collection baseline: every vehicle
// ships its raw local dataset to the cloud once (retrying while off or
// unreachable), and the server periodically retrains the global model on
// everything received so far. The interesting output is the V2C byte
// volume relative to the model-exchange strategies.
type Centralized struct {
	Base
	cfg CentralizedConfig

	uploaded  map[sim.AgentID]bool
	inFlight  map[sim.AgentID]bool
	pool      []ml.Example
	round     int
	stopped   bool
	trainBusy bool
}

var _ Strategy = (*Centralized)(nil)

// NewCentralized returns the centralized-ML baseline strategy.
func NewCentralized(cfg CentralizedConfig) (*Centralized, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Centralized{cfg: cfg}, nil
}

// Name implements Strategy.
func (c *Centralized) Name() string { return "centralized" }

// Config returns the strategy's configuration.
func (c *Centralized) Config() CentralizedConfig { return c.cfg }

// Start implements Strategy.
func (c *Centralized) Start(env Env) error {
	if env.Model(env.Server()) == nil {
		return fmt.Errorf("strategy: centralized: server has no initial model")
	}
	c.uploaded = make(map[sim.AgentID]bool)
	c.inFlight = make(map[sim.AgentID]bool)
	c.pollUploads(env)
	if err := env.After(c.cfg.RoundDuration, func() { c.serverRound(env) }); err != nil {
		return fmt.Errorf("strategy: centralized: schedule round: %w", err)
	}
	return nil
}

// pollUploads asks every vehicle that has not yet shipped its data to do so
// now if it is reachable, then re-arms itself.
func (c *Centralized) pollUploads(env Env) {
	if c.stopped {
		return
	}
	for _, v := range env.Vehicles() {
		if c.uploaded[v] || c.inFlight[v] || !env.IsOn(v) {
			continue
		}
		data := env.LocalData(v)
		if len(data) == 0 {
			c.uploaded[v] = true // nothing to contribute
			continue
		}
		p := Payload{Tag: tagData, Data: data, DataAmount: float64(len(data))}
		if _, err := env.Send(v, env.Server(), comm.KindV2C, p); err != nil {
			continue // retry at the next poll
		}
		c.inFlight[v] = true
	}
	if err := env.After(c.cfg.UploadCheckInterval, func() { c.pollUploads(env) }); err != nil {
		env.Logf("centralized: schedule upload poll: %v", err)
	}
}

// OnDeliver implements Strategy.
func (c *Centralized) OnDeliver(env Env, msg *comm.Message, p Payload) {
	if p.Tag != tagData || msg.To != env.Server() {
		return
	}
	c.inFlight[msg.From] = false
	c.uploaded[msg.From] = true
	c.pool = append(c.pool, p.Data...)
}

// OnSendFailed implements Strategy.
func (c *Centralized) OnSendFailed(env Env, msg *comm.Message, p Payload, reason error) {
	if p.Tag != tagData {
		return
	}
	c.inFlight[msg.From] = false // retried at the next poll
}

func (c *Centralized) serverRound(env Env) {
	if c.stopped {
		return
	}
	c.round++
	if len(c.pool) > 0 && !c.trainBusy {
		model := env.Model(env.Server())
		if err := env.TrainOnData(env.Server(), model, c.pool); err != nil {
			env.Logf("centralized: round %d: server train: %v", c.round, err)
		} else {
			c.trainBusy = true
		}
	}
	if c.round >= c.cfg.Rounds {
		// Allow a trailing training task to finish before stopping.
		if err := env.After(c.cfg.RoundDuration, func() {
			c.stopped = true
			env.Stop()
		}); err != nil {
			env.Stop()
		}
		return
	}
	if err := env.After(c.cfg.RoundDuration, func() { c.serverRound(env) }); err != nil {
		env.Logf("centralized: schedule round: %v", err)
		env.Stop()
	}
}

// OnTrainDone implements Strategy.
func (c *Centralized) OnTrainDone(env Env, id sim.AgentID, trained *ml.Snapshot, loss float64) {
	if id != env.Server() {
		return
	}
	c.trainBusy = false
	env.SetModel(env.Server(), trained)
	recordGlobalAccuracy(env, c.round, len(c.pool))
}

// OnTrainAborted implements Strategy.
func (c *Centralized) OnTrainAborted(env Env, id sim.AgentID) {
	if id == env.Server() {
		c.trainBusy = false
	}
}
