package strategy

import (
	"errors"
	"testing"

	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
)

func newCentralizedUnderTest(t *testing.T) (*Centralized, *mockEnv) {
	t.Helper()
	s, err := NewCentralized(CentralizedConfig{
		Rounds:              2,
		RoundDuration:       100,
		UploadCheckInterval: 20,
		ServerEpochs:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := newMockEnv(t, 3)
	for _, v := range env.vehicles {
		env.local[v] = makeExamples(2)
		env.data[v] = 2
	}
	return s, env
}

func makeExamples(n int) []ml.Example {
	out := make([]ml.Example, n)
	for i := range out {
		out[i] = ml.Example{X: []float32{float32(i), 1}, Label: i % 2}
	}
	return out
}

func TestCentralizedConfigValidate(t *testing.T) {
	if err := DefaultCentralizedConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []CentralizedConfig{
		{RoundDuration: 1, UploadCheckInterval: 1, ServerEpochs: 1},
		{Rounds: 1, UploadCheckInterval: 1, ServerEpochs: 1},
		{Rounds: 1, RoundDuration: 1, ServerEpochs: 1},
		{Rounds: 1, RoundDuration: 1, UploadCheckInterval: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestCentralizedUploadsAllVehicleData(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	uploads := env.sendsWith(tagData)
	if len(uploads) != 3 {
		t.Fatalf("%d uploads, want 3", len(uploads))
	}
	for _, u := range uploads {
		if u.msg.To != env.server {
			t.Fatalf("upload addressed to %v", u.msg.To)
		}
		if len(u.payload.Data) != 2 {
			t.Fatalf("upload carries %d examples, want 2", len(u.payload.Data))
		}
		env.deliver(s, u)
	}
	// Server trains on the pooled data at the next round tick.
	env.advance(100)
	if got := env.trainingAgents(); len(got) != 1 || got[0] != env.server {
		t.Fatalf("server not training: %v", got)
	}
	if got := len(env.trains[0].examples); got != 6 {
		t.Fatalf("server training on %d examples, want pooled 6", got)
	}
}

func TestCentralizedRetriesOffVehicles(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	v := env.vehicles[0]
	env.on[v] = false
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	if got := env.sendsWith(tagData); len(got) != 2 {
		t.Fatalf("%d uploads with one vehicle off, want 2", len(got))
	}
	// The vehicle comes back; the next poll picks it up.
	env.on[v] = true
	env.advance(20)
	uploads := env.sendsWith(tagData)
	found := false
	for _, u := range uploads {
		if u.msg.From == v {
			found = true
		}
	}
	if !found {
		t.Fatal("returned vehicle never uploaded")
	}
}

func TestCentralizedRetriesFailedUploads(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	uploads := env.sendsWith(tagData)
	env.failSend(s, uploads[0], errors.New("coverage hole"))
	from := uploads[0].msg.From
	env.advance(20)
	retried := false
	for _, u := range env.sendsWith(tagData) {
		if u.msg.From == from {
			retried = true
		}
	}
	if !retried {
		t.Fatal("failed upload never retried")
	}
}

func TestCentralizedUploadsOnlyOnce(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, u := range env.sendsWith(tagData) {
		env.deliver(s, u)
	}
	env.advance(20)
	if got := env.sendsWith(tagData); len(got) != 0 {
		t.Fatalf("vehicles re-uploaded after successful delivery: %d", len(got))
	}
}

func TestCentralizedRecordsAccuracyAfterServerTraining(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, u := range env.sendsWith(tagData) {
		env.deliver(s, u)
	}
	env.advance(100)
	env.finishTraining(s, env.server, 61)
	acc := env.rec.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() != 1 {
		t.Fatalf("accuracy series = %v", acc)
	}
	if env.models[env.server] == nil {
		t.Fatal("server model missing after training")
	}
}

func TestCentralizedName(t *testing.T) {
	s, _ := newCentralizedUnderTest(t)
	if s.Name() != "centralized" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Config().Rounds != 2 {
		t.Fatal("Config roundtrip broken")
	}
}
