package strategy

import (
	"errors"
	"testing"

	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

func newFedAvgUnderTest(t *testing.T) (*FederatedAveraging, *mockEnv) {
	t.Helper()
	s, err := NewFederatedAveraging(FedAvgConfig{
		Rounds:           2,
		VehiclesPerRound: 3,
		RoundDuration:    30,
		ServerOverhead:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := newMockEnv(t, 6)
	return s, env
}

func TestFedAvgConfigValidate(t *testing.T) {
	if err := DefaultFedAvgConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []FedAvgConfig{
		{Rounds: 0, VehiclesPerRound: 5, RoundDuration: 30},
		{Rounds: 75, VehiclesPerRound: 0, RoundDuration: 30},
		{Rounds: 75, VehiclesPerRound: 5, RoundDuration: 0},
		{Rounds: 75, VehiclesPerRound: 5, RoundDuration: 30, ServerOverhead: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if _, err := NewFederatedAveraging(FedAvgConfig{}); err == nil {
		t.Fatal("NewFederatedAveraging accepted zero config")
	}
}

func TestFedAvgStartSendsGlobalModels(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatalf("Start: %v", err)
	}
	globals := env.sendsWith(tagGlobal)
	if len(globals) != 3 {
		t.Fatalf("sent %d global models, want 3", len(globals))
	}
	seen := map[sim.AgentID]bool{}
	for _, g := range globals {
		if g.msg.From != env.server {
			t.Fatalf("global sent from %v, want server", g.msg.From)
		}
		if g.payload.Model == nil {
			t.Fatal("global payload carries no model")
		}
		if g.payload.Round != 1 {
			t.Fatalf("round = %d, want 1", g.payload.Round)
		}
		if seen[g.msg.To] {
			t.Fatalf("vehicle %v selected twice", g.msg.To)
		}
		seen[g.msg.To] = true
	}
}

func TestFedAvgRequiresServerModel(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	delete(env.models, env.server)
	if err := s.Start(env); err == nil {
		t.Fatal("Start without a server model succeeded")
	}
}

func TestFedAvgFullRoundFlow(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	before := env.models[env.server]

	// Deliver the globals; each participant must start training.
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	training := env.trainingAgents()
	if len(training) != 3 {
		t.Fatalf("%d vehicles training, want 3", len(training))
	}
	// Trainings complete within the round.
	for i, v := range training {
		env.finishTraining(s, v, uint64(100+i))
	}
	// Round timer fires: updates must flow back.
	env.advance(30)
	updates := env.sendsWith(tagUpdate)
	if len(updates) != 3 {
		t.Fatalf("%d updates sent at round end, want 3", len(updates))
	}
	for _, u := range updates {
		if u.msg.To != env.server {
			t.Fatalf("update addressed to %v", u.msg.To)
		}
		if u.payload.DataAmount != 80 {
			t.Fatalf("update data amount = %v, want 80", u.payload.DataAmount)
		}
		env.deliver(s, u)
	}
	// Aggregation happened: new global model, accuracy recorded.
	if env.models[env.server] == before {
		t.Fatal("server model unchanged after aggregation")
	}
	acc := env.rec.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() != 1 {
		t.Fatalf("accuracy series = %v, want 1 point", acc)
	}
	if got := env.rec.Counter(metrics.CounterRounds); got != 1 {
		t.Fatalf("rounds counter = %v", got)
	}
	contrib := env.rec.Series(metrics.SeriesRoundContributions)
	if contrib == nil {
		t.Fatal("contributions not recorded")
	}
	if last, _ := contrib.Last(); last.Value != 3 {
		t.Fatalf("contributions = %v, want 3", last.Value)
	}
	// Next round must start after the server overhead.
	env.advance(41)
	if got := env.sendsWith(tagGlobal); len(got) != 3 {
		t.Fatalf("round 2 sent %d globals, want 3", len(got))
	}
}

func TestFedAvgLateTrainingIsDiscarded(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	globals := env.sendsWith(tagGlobal)
	env.deliver(s, globals[0])
	// The round ends while the vehicle is still training.
	env.advance(30)
	if got := env.sendsWith(tagUpdate); len(got) != 0 {
		t.Fatalf("updates sent despite unfinished training: %d", len(got))
	}
	// Training completes late: contribution lost.
	v := env.trainingAgents()[0]
	env.finishTraining(s, v, 50)
	if got := env.sendsWith(tagUpdate); len(got) != 0 {
		t.Fatal("late training still produced an update")
	}
	if env.rec.Counter(metrics.CounterDiscardedModels) != 1 {
		t.Fatalf("discarded counter = %v, want 1", env.rec.Counter(metrics.CounterDiscardedModels))
	}
}

func TestFedAvgKeepsModelWhenRoundEmpty(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	before := env.models[env.server]
	// The globals never reach anyone; the round just times out.
	for _, g := range env.sendsWith(tagGlobal) {
		env.failSend(s, g, errors.New("unreachable"))
	}
	env.advance(30)
	if env.models[env.server] != before {
		t.Fatal("server model replaced despite zero contributions")
	}
	// The strategy still proceeds to round 2.
	env.advance(40)
	globals := env.sendsWith(tagGlobal)
	if len(globals) != 3 {
		t.Fatalf("round 2 sent %d globals", len(globals))
	}
}

func TestFedAvgFailedReturnDoesNotWedgeRound(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	training := env.trainingAgents()
	for i, v := range training {
		env.finishTraining(s, v, uint64(200+i))
	}
	env.advance(30)
	updates := env.sendsWith(tagUpdate)
	// One return transfer fails mid-flight, the rest deliver.
	env.failSend(s, updates[0], errors.New("vehicle shut off"))
	env.deliver(s, updates[1])
	env.deliver(s, updates[2])

	if got := env.rec.Counter(metrics.CounterRounds); got != 1 {
		t.Fatalf("round did not complete after partial failure: rounds=%v", got)
	}
	contrib := env.rec.Series(metrics.SeriesRoundContributions)
	if last, _ := contrib.Last(); last.Value != 2 {
		t.Fatalf("contributions = %v, want 2", last.Value)
	}
	if env.rec.Counter(metrics.CounterDiscardedModels) != 1 {
		t.Fatal("failed return not counted as discarded")
	}
}

func TestFedAvgStopsAfterConfiguredRounds(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	env.advance(30) // round 1 empty
	env.advance(80) // round 2 starts at 40, ends at 70, next check at 80
	env.advance(130)
	if !env.stopped {
		t.Fatal("strategy did not stop after 2 rounds")
	}
}

func TestFedAvgSkipsOffVehicles(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	// Only two vehicles are on.
	for _, v := range env.vehicles[2:] {
		env.on[v] = false
	}
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	globals := env.sendsWith(tagGlobal)
	if len(globals) != 2 {
		t.Fatalf("sent %d globals with 2 vehicles on, want 2", len(globals))
	}
	for _, g := range globals {
		if !env.on[g.msg.To] {
			t.Fatalf("global sent to off vehicle %v", g.msg.To)
		}
	}
}

func TestFedAvgIgnoresStaleRoundMessages(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	globals := env.sendsWith(tagGlobal)
	// Round ends; round 2 begins.
	env.advance(41)
	// A round-1 global arrives very late at its vehicle: must be ignored.
	env.deliver(s, globals[0])
	for _, tc := range env.trains {
		if tc.id == globals[0].msg.To {
			t.Fatal("stale global model triggered training")
		}
	}
}

func TestFedAvgName(t *testing.T) {
	s, _ := newFedAvgUnderTest(t)
	if s.Name() != "fedavg" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Config().VehiclesPerRound != 3 {
		t.Fatalf("Config roundtrip broken")
	}
}

func TestFedAvgTracksProvenance(t *testing.T) {
	s, env := newFedAvgUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	var contributors []sim.AgentID
	for i, v := range env.trainingAgents() {
		env.finishTraining(s, v, uint64(300+i))
		contributors = append(contributors, v)
	}
	env.advance(30)
	for _, u := range env.sendsWith(tagUpdate) {
		if len(u.payload.Provenance) != 1 || u.payload.Provenance[0] != u.msg.From {
			t.Fatalf("update provenance = %v, want [%v]", u.payload.Provenance, u.msg.From)
		}
		env.deliver(s, u)
	}
	prov := env.rec.Series(metrics.SeriesDistinctContributors)
	if prov == nil || prov.Len() != 1 {
		t.Fatalf("provenance series = %v", prov)
	}
	if last, _ := prov.Last(); last.Value != float64(len(contributors)) {
		t.Fatalf("distinct contributors = %v, want %d", last.Value, len(contributors))
	}
}
