package strategy

import (
	"errors"
	"testing"

	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

func newOppUnderTest(t *testing.T) (*Opportunistic, *mockEnv) {
	t.Helper()
	s, err := NewOpportunistic(OppConfig{
		Rounds:          2,
		Reporters:       2,
		RoundDuration:   200,
		ServerOverhead:  10,
		ExchangeTimeout: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := newMockEnv(t, 6)
	return s, env
}

// startRoundWithReporters drives OPP to the state where both reporters have
// received and retrained the global model, returning their IDs.
func startRoundWithReporters(t *testing.T, s *Opportunistic, env *mockEnv) []sim.AgentID {
	t.Helper()
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	globals := env.sendsWith(tagGlobal)
	if len(globals) != 2 {
		t.Fatalf("sent %d globals, want 2 reporters", len(globals))
	}
	var reporters []sim.AgentID
	for _, g := range globals {
		reporters = append(reporters, g.msg.To)
		env.deliver(s, g)
	}
	for i, r := range reporters {
		env.finishTraining(s, r, uint64(10+i))
	}
	return reporters
}

func TestOppConfigValidate(t *testing.T) {
	if err := DefaultOppConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []OppConfig{
		{Reporters: 5, RoundDuration: 200, ExchangeTimeout: 60},
		{Rounds: 75, RoundDuration: 200, ExchangeTimeout: 60},
		{Rounds: 75, Reporters: 5, ExchangeTimeout: 60},
		{Rounds: 75, Reporters: 5, RoundDuration: 200},
		{Rounds: 75, Reporters: 5, RoundDuration: 200, ExchangeTimeout: 60, ServerOverhead: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if _, err := NewOpportunistic(OppConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestOppEncounterTriggersOffer(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	offers := env.sendsWith(tagOffer)
	if len(offers) != 1 {
		t.Fatalf("%d offers after encounter, want 1", len(offers))
	}
	if offers[0].msg.From != r || offers[0].msg.To != peer {
		t.Fatalf("offer %v -> %v, want %v -> %v", offers[0].msg.From, offers[0].msg.To, r, peer)
	}
	if offers[0].payload.Model == nil {
		t.Fatal("offer carries no model")
	}
}

func TestOppFullExchangeAggregatesPeerModel(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	offer := env.sendsWith(tagOffer)[0]
	env.deliver(s, offer)
	if got := env.trainingAgents(); len(got) != 1 || got[0] != peer {
		t.Fatalf("training agents after offer = %v, want [%v]", got, peer)
	}
	env.finishTraining(s, peer, 77)
	retrained := env.sendsWith(tagRetrained)
	if len(retrained) != 1 {
		t.Fatalf("%d retrained messages, want 1", len(retrained))
	}
	if retrained[0].msg.To != r {
		t.Fatalf("retrained sent to %v, want reporter %v", retrained[0].msg.To, r)
	}
	if retrained[0].payload.DataAmount != 80 {
		t.Fatalf("retrained data amount = %v", retrained[0].payload.DataAmount)
	}
	env.deliver(s, retrained[0])

	// The reporter's aggregate now carries both data amounts.
	st := s.reporters[r]
	if st.exchanges != 1 {
		t.Fatalf("exchanges = %d, want 1", st.exchanges)
	}
	if st.weight != 160 {
		t.Fatalf("aggregate weight = %v, want 160 (own 80 + peer 80)", st.weight)
	}

	// Round end: the update must carry contributions = 2.
	env.advance(200)
	updates := env.sendsWith(tagUpdate)
	if len(updates) != 2 {
		t.Fatalf("%d updates, want 2 reporters", len(updates))
	}
	for _, u := range updates {
		want := 1
		if u.msg.From == r {
			want = 2
		}
		if u.payload.Contributions != want {
			t.Fatalf("update from %v has contributions %d, want %d", u.msg.From, u.payload.Contributions, want)
		}
	}
	ex := env.rec.Series(metrics.SeriesRoundExchanges)
	if last, _ := ex.Last(); last.Value != 1 {
		t.Fatalf("round exchanges = %v, want 1", last.Value)
	}
}

func TestOppReportersDoNotPairWithEachOther(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	s.OnEncounter(env, reporters[0], reporters[1])
	if got := env.sendsWith(tagOffer); len(got) != 0 {
		t.Fatalf("reporters offered to each other: %d offers", len(got))
	}
}

func TestOppContactsEachPeerOncePerRound(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	offer := env.sendsWith(tagOffer)[0]
	env.deliver(s, offer)
	env.finishTraining(s, peer, 5)
	env.deliver(s, env.sendsWith(tagRetrained)[0])

	// Second encounter with the same peer in the same round: no new offer.
	s.OnEncounter(env, r, peer)
	if got := env.sendsWith(tagOffer); len(got) != 0 {
		t.Fatalf("peer re-contacted in the same round: %d offers", len(got))
	}
}

func TestOppBusyPeerDeclines(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	// The peer is idle when the offer is sent, but busy by the time it
	// arrives (e.g. another reporter got there first).
	s.OnEncounter(env, r, peer)
	offer := env.sendsWith(tagOffer)[0]
	env.busy[peer] = true
	env.deliver(s, offer)
	declines := env.sendsWith(tagDecline)
	if len(declines) != 1 {
		t.Fatalf("%d declines, want 1", len(declines))
	}
	env.deliver(s, declines[0])
	// The reporter's exchange slot must be free again.
	if s.reporters[r].pendingPeer != sim.NoAgent {
		t.Fatal("decline did not free the reporter's exchange slot")
	}
}

func TestOppOnlyOneOutstandingExchangePerReporter(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	var peers []sim.AgentID
	for _, v := range env.vehicles {
		if v != reporters[0] && v != reporters[1] {
			peers = append(peers, v)
		}
	}
	s.OnEncounter(env, r, peers[0])
	s.OnEncounter(env, r, peers[1])
	if got := env.sendsWith(tagOffer); len(got) != 1 {
		t.Fatalf("%d concurrent offers from one reporter, want 1", len(got))
	}
}

func TestOppExchangeTimeoutFreesSlot(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	if s.reporters[r].pendingPeer != peer {
		t.Fatal("exchange slot not claimed")
	}
	// Peer never answers; the timeout must clear the slot.
	env.advance(env.now.Add(61))
	if s.reporters[r].pendingPeer != sim.NoAgent {
		t.Fatal("exchange slot still held after timeout")
	}
}

func TestOppPeerOutOfRangeDiscardsModel(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	// The reporter drives away before the peer finishes: the V2X send of
	// the retrained model fails at call time.
	env.sendFail[r] = errors.New("out of range")
	env.finishTraining(s, peer, 9)
	if got := env.rec.Counter(metrics.CounterDiscardedModels); got != 1 {
		t.Fatalf("discarded = %v, want 1 (paper: 'Else, discard w')", got)
	}
	if s.reporters[r].exchanges != 0 {
		t.Fatal("failed exchange counted")
	}
}

func TestOppReporterOffAtRoundEndLosesCollected(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	env.finishTraining(s, peer, 3)
	env.deliver(s, env.sendsWith(tagRetrained)[0])

	// The reporter turns off before the round ends.
	env.on[r] = false
	env.advance(200)
	updates := env.sendsWith(tagUpdate)
	if len(updates) != 1 {
		t.Fatalf("%d updates, want 1 (only the surviving reporter)", len(updates))
	}
	if updates[0].msg.From == r {
		t.Fatal("powered-off reporter still uploaded")
	}
	// Own model + collected peer model were both lost.
	if got := env.rec.Counter(metrics.CounterDiscardedModels); got != 2 {
		t.Fatalf("discarded = %v, want 2", got)
	}
}

func TestOppServerAggregatesByDataAmount(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	before := env.models[env.server]
	env.advance(200)
	for _, u := range env.sendsWith(tagUpdate) {
		env.deliver(s, u)
	}
	if env.models[env.server] == before {
		t.Fatal("server model unchanged after round")
	}
	if got := env.rec.Counter(metrics.CounterRounds); got != 1 {
		t.Fatalf("rounds = %v", got)
	}
	contrib := env.rec.Series(metrics.SeriesRoundContributions)
	if last, _ := contrib.Last(); last.Value != 2 {
		t.Fatalf("contributions = %v, want 2 (both reporters, no peers)", last.Value)
	}
	_ = reporters
}

func TestOppStaleOfferDeclined(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)
	s.OnEncounter(env, r, peer)
	offer := env.sendsWith(tagOffer)[0]

	// Round ends before the offer lands.
	env.advance(200)
	env.deliver(s, offer)
	if got := env.trainingAgents(); len(got) != 0 {
		t.Fatalf("stale offer started training on %v", got)
	}
}

func TestOppTryExchangesScansNeighborsAfterRetrain(t *testing.T) {
	s, env := newOppUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	globals := env.sendsWith(tagGlobal)
	r := globals[0].msg.To
	// A peer is already in range while the reporter trains.
	peer := pickNonReporterFrom(env, globals)
	env.neighbor[r] = []sim.AgentID{peer}

	env.deliver(s, globals[0])
	env.finishTraining(s, r, 21)
	// Without a fresh OnEncounter, the reporter must still offer to the
	// neighbor discovered at retrain completion.
	offers := env.sendsWith(tagOffer)
	if len(offers) != 1 || offers[0].msg.To != peer {
		t.Fatalf("offers after retrain = %v, want one to %v", offers, peer)
	}
}

func TestOppName(t *testing.T) {
	s, _ := newOppUnderTest(t)
	if s.Name() != "opportunistic" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Config().Reporters != 2 {
		t.Fatal("Config roundtrip broken")
	}
}

func pickNonReporter(env *mockEnv, reporters []sim.AgentID) sim.AgentID {
	isReporter := map[sim.AgentID]bool{}
	for _, r := range reporters {
		isReporter[r] = true
	}
	for _, v := range env.vehicles {
		if !isReporter[v] {
			return v
		}
	}
	return sim.NoAgent
}

func pickNonReporterFrom(env *mockEnv, globals []*sentMessage) sim.AgentID {
	var reporters []sim.AgentID
	for _, g := range globals {
		reporters = append(reporters, g.msg.To)
	}
	return pickNonReporter(env, reporters)
}

func TestOppProvenanceIncludesPeers(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	env.finishTraining(s, peer, 71)
	env.deliver(s, env.sendsWith(tagRetrained)[0])
	env.advance(200)
	for _, u := range env.sendsWith(tagUpdate) {
		if u.msg.From == r {
			if len(u.payload.Provenance) != 2 {
				t.Fatalf("reporter provenance = %v, want reporter + peer", u.payload.Provenance)
			}
		}
		env.deliver(s, u)
	}
	prov := env.rec.Series(metrics.SeriesDistinctContributors)
	if prov == nil {
		t.Fatal("no provenance series")
	}
	if last, _ := prov.Last(); last.Value != 3 {
		t.Fatalf("distinct contributors = %v, want 3 (2 reporters + 1 peer)", last.Value)
	}
}
