package strategy

import (
	"errors"
	"testing"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

// This file exercises the failure-handling edges of every strategy: churn
// mid-training, V2X failures after acceptance, stale-round traffic, and
// the no-op Base embeddings.

func TestBaseStrategyCallbacksAreNoOps(t *testing.T) {
	env := newMockEnv(t, 1)
	var b Base
	// None of these may panic or mutate anything observable.
	b.OnDeliver(env, &comm.Message{}, Payload{})
	b.OnSendFailed(env, &comm.Message{}, Payload{}, errors.New("x"))
	b.OnTrainDone(env, 1, nil, 0)
	b.OnTrainAborted(env, 1)
	b.OnEncounter(env, 1, 2)
	b.OnPowerChange(env, 1, true)
	if len(env.sends) != 0 || len(env.trains) != 0 {
		t.Fatal("Base callbacks had side effects")
	}
}

func TestOppOfferSendFailureFreesSlot(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)

	s.OnEncounter(env, r, peer)
	offer := env.sendsWith(tagOffer)[0]
	if s.reporters[r].pendingPeer != peer {
		t.Fatal("slot not claimed")
	}
	// The offer dies in flight (peer left range).
	env.failSend(s, offer, comm.ErrOutOfRange)
	if s.reporters[r].pendingPeer != sim.NoAgent {
		t.Fatal("offer failure did not free the exchange slot")
	}
	// The reporter may immediately engage another neighbor.
	other := sim.NoAgent
	for _, v := range env.vehicles {
		if v != r && v != reporters[1] && v != peer {
			other = v
			break
		}
	}
	s.OnEncounter(env, r, other)
	if got := env.sendsWith(tagOffer); len(got) != 1 {
		t.Fatalf("reporter could not re-engage after failed offer: %d offers", len(got))
	}
}

func TestOppUpdateSendFailureCompletesRound(t *testing.T) {
	s, env := newOppUnderTest(t)
	startRoundWithReporters(t, s, env)
	env.advance(200)
	updates := env.sendsWith(tagUpdate)
	if len(updates) != 2 {
		t.Fatalf("%d updates", len(updates))
	}
	// Both uploads die in flight.
	env.failSend(s, updates[0], comm.ErrSenderOff)
	env.failSend(s, updates[1], comm.ErrDropped)
	if got := env.rec.Counter(metrics.CounterRounds); got != 1 {
		t.Fatalf("round wedged after update failures: rounds=%v", got)
	}
	if got := env.rec.Counter(metrics.CounterDiscardedModels); got != 2 {
		t.Fatalf("discarded = %v, want 2", got)
	}
	// Round 2 starts.
	env.advance(211)
	if got := env.sendsWith(tagGlobal); len(got) != 2 {
		t.Fatalf("round 2 globals = %d", len(got))
	}
}

func TestOppNonReporterAbortedMidTraining(t *testing.T) {
	s, env := newOppUnderTest(t)
	reporters := startRoundWithReporters(t, s, env)
	r := reporters[0]
	peer := pickNonReporter(env, reporters)
	s.OnEncounter(env, r, peer)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	// The driver turns the peer off mid-retrain.
	env.busy[peer] = false
	s.OnTrainAborted(env, peer)
	if got := env.rec.Counter(metrics.CounterDiscardedModels); got != 1 {
		t.Fatalf("discarded = %v, want 1", got)
	}
	if _, serving := s.serving[peer]; serving {
		t.Fatal("aborted peer still marked serving")
	}
}

func TestCentralizedServerAborted(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, u := range env.sendsWith(tagData) {
		env.deliver(s, u)
	}
	env.advance(100)
	if got := env.trainingAgents(); len(got) != 1 {
		t.Fatalf("server not training: %v", got)
	}
	// The server training is aborted (e.g. maintenance window).
	env.busy[env.server] = false
	env.trains = nil
	s.OnTrainAborted(env, env.server)
	// The next round must be able to start a fresh training.
	env.advance(200)
	if got := env.trainingAgents(); len(got) != 1 {
		t.Fatalf("server did not retrain after abort: %v", got)
	}
}

func TestCentralizedStopsAfterRounds(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	// Rounds at 100, 200; trailing stop 100 later.
	env.advance(450)
	if !env.stopped {
		t.Fatal("centralized did not stop after its rounds")
	}
}

func TestCentralizedSkipsVehiclesWithNoData(t *testing.T) {
	s, env := newCentralizedUnderTest(t)
	v := env.vehicles[0]
	env.local[v] = nil
	env.data[v] = 0
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, u := range env.sendsWith(tagData) {
		if u.msg.From == v {
			t.Fatal("dataless vehicle uploaded")
		}
	}
}

func TestGossipPowerChangeIgnoresNonVehicles(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	before := len(env.trains)
	s.OnPowerChange(env, env.server, true)
	if len(env.trains) != before {
		t.Fatal("server power change triggered vehicle training")
	}
}

func TestGossipRetrainedVehicleRetrainsAfterPowerCycle(t *testing.T) {
	s, env := newGossipUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	v := env.vehicles[0]
	env.finishTraining(s, v, 61)
	// Power cycle: the vehicle already trained once, so no fresh kick.
	before := countTrains(env, v)
	s.OnPowerChange(env, v, true)
	if countTrains(env, v) != before {
		t.Fatal("already-trained vehicle re-kicked on power-on")
	}
}

func countTrains(env *mockEnv, id sim.AgentID) int {
	n := 0
	for _, tc := range env.trains {
		if tc.id == id {
			n++
		}
	}
	return n
}

func TestHybridPushFailureHarmless(t *testing.T) {
	s, env := newHybridUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for i, v := range env.vehicles {
		env.finishTraining(s, v, uint64(120+i))
	}
	env.advance(100)
	for _, p := range env.sendsWith(tagPullRequest) {
		env.deliver(s, p)
	}
	for _, r := range env.sendsWith(tagPullReply) {
		env.deliver(s, r)
	}
	pushes := env.sendsWith(tagPush)
	if len(pushes) == 0 {
		t.Fatal("no pushes after sync")
	}
	target := pushes[0].msg.To
	modelBefore := env.models[target]
	env.failSend(s, pushes[0], comm.ErrReceiverOff)
	if env.models[target] != modelBefore {
		t.Fatal("failed push still replaced the vehicle's model")
	}
}

func TestHybridDelegatesChurnToGossip(t *testing.T) {
	s, env := newHybridUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	v := env.vehicles[0]
	// Abort the initial training via the hybrid's delegation.
	env.busy[v] = false
	env.trains = nil
	s.OnTrainAborted(env, v)
	// Power cycling the not-yet-trained vehicle re-kicks training through
	// the gossip layer.
	s.OnPowerChange(env, v, true)
	if countTrains(env, v) != 1 {
		t.Fatalf("hybrid power-change delegation broken: %d trainings", countTrains(env, v))
	}
}

func TestRSUAssistedOfferFailureFreesSlot(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	rsu := env.rsus[0]
	vehicle := env.vehicles[0]
	s.OnEncounter(env, rsu, vehicle)
	offer := env.sendsWith(tagOffer)[0]
	env.failSend(s, offer, comm.ErrOutOfRange)
	if s.rsus[rsu].pendingPeer != sim.NoAgent {
		t.Fatal("failed offer did not free the RSU's slot")
	}
}

func TestRSUAssistedBusyVehicleDeclines(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	rsu := env.rsus[0]
	vehicle := env.vehicles[0]
	s.OnEncounter(env, rsu, vehicle)
	offer := env.sendsWith(tagOffer)[0]
	env.busy[vehicle] = true
	env.deliver(s, offer)
	declines := env.sendsWith(tagDecline)
	if len(declines) != 1 {
		t.Fatalf("%d declines, want 1", len(declines))
	}
	env.deliver(s, declines[0])
	if s.rsus[rsu].pendingPeer != sim.NoAgent {
		t.Fatal("decline did not free the RSU slot")
	}
}

func TestRSUAssistedVehicleAbortedMidTraining(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	rsu := env.rsus[0]
	vehicle := env.vehicles[0]
	s.OnEncounter(env, rsu, vehicle)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	env.busy[vehicle] = false
	env.trains = nil
	s.OnTrainAborted(env, vehicle)
	if got := env.rec.Counter(metrics.CounterDiscardedModels); got != 1 {
		t.Fatalf("discarded = %v, want 1", got)
	}
}

func TestRSUAssistedRetrainedReturnFailureDiscards(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	rsu := env.rsus[0]
	vehicle := env.vehicles[0]
	s.OnEncounter(env, rsu, vehicle)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	env.finishTraining(s, vehicle, 81)
	retrained := env.sendsWith(tagRetrained)
	if len(retrained) != 1 {
		t.Fatalf("%d retrained", len(retrained))
	}
	env.failSend(s, retrained[0], comm.ErrOutOfRange)
	if got := env.rec.Counter(metrics.CounterDiscardedModels); got != 1 {
		t.Fatalf("discarded = %v", got)
	}
	if s.rsus[rsu].exchanges != 0 {
		t.Fatal("failed exchange counted")
	}
}

func TestRSUAssistedUpdateFailureDiscardsCollected(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	rsu := env.rsus[0]
	vehicle := env.vehicles[0]
	s.OnEncounter(env, rsu, vehicle)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	env.finishTraining(s, vehicle, 82)
	env.deliver(s, env.sendsWith(tagRetrained)[0])
	env.advance(200)
	updates := env.sendsWith(tagUpdate)
	if len(updates) != 1 {
		t.Fatalf("%d updates", len(updates))
	}
	env.failSend(s, updates[0], comm.ErrDropped)
	if got := env.rec.Counter(metrics.CounterRounds); got != 1 {
		t.Fatalf("round wedged: %v", got)
	}
	if got := env.rec.Counter(metrics.CounterDiscardedModels); got != 1 {
		t.Fatalf("discarded = %v", got)
	}
}

// snapshotHelperSanity guards the mock itself: distinct seeds produce
// distinct snapshots (otherwise aggregation tests are vacuous).
func TestMockSnapshotsDiffer(t *testing.T) {
	a := testSnapshot(t, 1)
	b := testSnapshot(t, 2)
	same := true
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("testSnapshot seeds do not differentiate weights")
	}
	var x ml.Snapshot = *a
	_ = x
}
