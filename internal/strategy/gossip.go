package strategy

import (
	"fmt"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

const tagGossip = "gossip"

// GossipConfig parameterizes Gossip Learning (the decentralized end of the
// paper's strategy spectrum, after Hegedűs et al. and the VCPS variant of
// Dinani et al.): no server, no rounds — vehicles train local models and
// merge them pairwise over V2X whenever they meet.
type GossipConfig struct {
	// Duration is how long the gossip process runs before the experiment
	// stops.
	Duration sim.Duration `json:"duration_s"`
	// ExchangeCooldown is the minimum time between a vehicle's successive
	// gossip exchanges, bounding radio and compute load.
	ExchangeCooldown sim.Duration `json:"exchange_cooldown_s"`
	// EvalInterval is how often the analyst-side accuracy metric is
	// sampled.
	EvalInterval sim.Duration `json:"eval_interval_s"`
	// EvalSample is how many powered-on vehicle models are averaged per
	// accuracy sample.
	EvalSample int `json:"eval_sample"`
}

// DefaultGossipConfig returns a 1-hour gossip run with 60 s cooldowns.
func DefaultGossipConfig() GossipConfig {
	return GossipConfig{
		Duration:         3600,
		ExchangeCooldown: 60,
		EvalInterval:     120,
		EvalSample:       8,
	}
}

// Validate reports whether the configuration is usable.
func (c GossipConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("strategy: non-positive gossip duration %v", c.Duration)
	case c.ExchangeCooldown < 0:
		return fmt.Errorf("strategy: negative exchange cooldown %v", c.ExchangeCooldown)
	case c.EvalInterval <= 0:
		return fmt.Errorf("strategy: non-positive eval interval %v", c.EvalInterval)
	case c.EvalSample <= 0:
		return fmt.Errorf("strategy: non-positive eval sample %d", c.EvalSample)
	default:
		return nil
	}
}

// Gossip implements gossip learning: on start (and whenever it turns on
// without a model) a vehicle trains its own local model; when two
// model-carrying vehicles meet, they exchange models over V2X and each
// merges the received model with its own via data-amount-weighted averaging
// followed by a local retrain — "each vehicle plays the role of a cloud
// server ... for all vehicles in its vicinity" without any V2C usage.
type Gossip struct {
	Base
	cfg GossipConfig

	lastExchange map[sim.AgentID]sim.Time
	// pendingMerge holds a received model waiting for the local HU to
	// free up; the newest received model wins.
	pendingMerge map[sim.AgentID]*Payload
	// trainedOnce marks vehicles whose initial local training completed.
	trainedOnce map[sim.AgentID]bool
	stopped     bool
}

var _ Strategy = (*Gossip)(nil)

// NewGossip returns the gossip-learning strategy.
func NewGossip(cfg GossipConfig) (*Gossip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Gossip{cfg: cfg}, nil
}

// Name implements Strategy.
func (g *Gossip) Name() string { return "gossip" }

// Config returns the strategy's configuration.
func (g *Gossip) Config() GossipConfig { return g.cfg }

// Start implements Strategy.
func (g *Gossip) Start(env Env) error {
	init := env.Model(env.Server())
	if init == nil {
		return fmt.Errorf("strategy: gossip: server has no initial model to seed vehicles")
	}
	g.lastExchange = make(map[sim.AgentID]sim.Time)
	g.pendingMerge = make(map[sim.AgentID]*Payload)
	g.trainedOnce = make(map[sim.AgentID]bool)
	for _, v := range env.Vehicles() {
		env.SetModel(v, init)
		if env.IsOn(v) {
			g.kickTraining(env, v)
		}
	}
	if err := env.After(g.cfg.EvalInterval, func() { g.evalTick(env) }); err != nil {
		return fmt.Errorf("strategy: gossip: schedule eval: %w", err)
	}
	if err := env.After(g.cfg.Duration, func() {
		g.stopped = true
		g.recordAccuracy(env)
		env.Stop()
	}); err != nil {
		return fmt.Errorf("strategy: gossip: schedule stop: %w", err)
	}
	return nil
}

func (g *Gossip) kickTraining(env Env, v sim.AgentID) {
	if env.IsBusy(v) || env.DataAmount(v) == 0 {
		return
	}
	if err := env.Train(v, env.Model(v)); err != nil {
		env.Logf("gossip: initial train on %v: %v", v, err)
	}
}

// OnPowerChange implements Strategy.
func (g *Gossip) OnPowerChange(env Env, id sim.AgentID, on bool) {
	if g.stopped || !on || env.Kind(id) != sim.KindVehicle {
		return
	}
	if !g.trainedOnce[id] {
		g.kickTraining(env, id)
	}
}

// OnEncounter implements Strategy.
func (g *Gossip) OnEncounter(env Env, a, b sim.AgentID) {
	if g.stopped {
		return
	}
	if env.Kind(a) != sim.KindVehicle || env.Kind(b) != sim.KindVehicle {
		return
	}
	now := env.Now()
	for _, v := range []sim.AgentID{a, b} {
		if last, ok := g.lastExchange[v]; ok && now.Sub(last) < g.cfg.ExchangeCooldown {
			return
		}
	}
	if !g.trainedOnce[a] || !g.trainedOnce[b] {
		return // nothing useful to gossip yet
	}
	// Mutual exchange.
	pa := Payload{Tag: tagGossip, Model: env.Model(a), DataAmount: float64(env.DataAmount(a))}
	pb := Payload{Tag: tagGossip, Model: env.Model(b), DataAmount: float64(env.DataAmount(b))}
	if pa.Model == nil || pb.Model == nil {
		return
	}
	if _, err := env.Send(a, b, comm.KindV2X, pa); err != nil {
		return
	}
	if _, err := env.Send(b, a, comm.KindV2X, pb); err != nil {
		return
	}
	g.lastExchange[a] = now
	g.lastExchange[b] = now
}

// OnDeliver implements Strategy.
func (g *Gossip) OnDeliver(env Env, msg *comm.Message, p Payload) {
	if g.stopped || p.Tag != tagGossip {
		return
	}
	v := msg.To
	own := env.Model(v)
	if own == nil {
		env.SetModel(v, p.Model)
		return
	}
	merged, err := env.Aggregate(
		[]*ml.Snapshot{own, p.Model},
		[]float64{float64(env.DataAmount(v)), p.DataAmount},
	)
	if err != nil {
		env.Logf("gossip: merge on %v: %v", v, err)
		return
	}
	env.SetModel(v, merged)
	if env.IsBusy(v) {
		// Retrain once the HU frees up; remember only the latest merge.
		pl := p
		g.pendingMerge[v] = &pl
		return
	}
	if err := env.Train(v, merged); err != nil {
		env.Logf("gossip: retrain on %v: %v", v, err)
	}
}

// OnTrainDone implements Strategy.
func (g *Gossip) OnTrainDone(env Env, id sim.AgentID, trained *ml.Snapshot, loss float64) {
	if env.Kind(id) != sim.KindVehicle {
		return
	}
	g.trainedOnce[id] = true
	env.SetModel(id, trained)
	if g.stopped {
		return
	}
	if _, ok := g.pendingMerge[id]; ok {
		delete(g.pendingMerge, id)
		if err := env.Train(id, env.Model(id)); err != nil {
			env.Logf("gossip: deferred retrain on %v: %v", id, err)
		}
	}
}

// OnTrainAborted implements Strategy.
func (g *Gossip) OnTrainAborted(env Env, id sim.AgentID) {
	delete(g.pendingMerge, id)
}

func (g *Gossip) evalTick(env Env) {
	if g.stopped {
		return
	}
	g.recordAccuracy(env)
	if err := env.After(g.cfg.EvalInterval, func() { g.evalTick(env) }); err != nil {
		env.Logf("gossip: schedule eval: %v", err)
	}
}

// recordAccuracy samples the fleet: the mean test accuracy of up to
// EvalSample random powered-on, trained vehicle models.
func (g *Gossip) recordAccuracy(env Env) {
	var candidates []sim.AgentID
	for _, v := range env.Vehicles() {
		if g.trainedOnce[v] && env.Model(v) != nil {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return
	}
	env.Rand().Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > g.cfg.EvalSample {
		candidates = candidates[:g.cfg.EvalSample]
	}
	sum := 0.0
	n := 0
	for _, v := range candidates {
		acc, err := env.TestAccuracy(env.Model(v))
		if err != nil {
			continue
		}
		sum += acc
		n++
	}
	if n == 0 {
		return
	}
	if err := env.Metrics().Record(metrics.SeriesAccuracy, env.Now(), sum/float64(n)); err != nil {
		env.Logf("metrics: %v", err)
	}
}
