package strategy

import (
	"fmt"
	"sort"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

// RSUAssistedConfig parameterizes the RSU-assisted strategy. The paper's
// Figure 1 shows road-side units as training-capable actors wired to the
// cloud and V2X-reachable by passing vehicles; this strategy is the
// natural learning scheme over them (an instance of the "possible next
// steps" the paper's conclusion invites): stationary RSUs play the OPP
// reporter role permanently, so the fleet is trained **without any
// metered V2C traffic at all** — model distribution and collection ride
// the wired backhaul, and vehicle contact is pure V2X.
type RSUAssistedConfig struct {
	// Rounds is the number of aggregation rounds.
	Rounds int `json:"rounds"`
	// RoundDuration is the collection window per round.
	RoundDuration sim.Duration `json:"round_duration_s"`
	// ServerOverhead is the fixed per-round server-side time (see
	// FedAvgConfig.ServerOverhead).
	ServerOverhead sim.Duration `json:"server_overhead_s"`
	// ExchangeTimeout bounds how long an RSU waits for a vehicle's
	// retrained model before freeing the exchange slot.
	ExchangeTimeout sim.Duration `json:"exchange_timeout_s"`
}

// DefaultRSUAssistedConfig mirrors OPP's round structure.
func DefaultRSUAssistedConfig() RSUAssistedConfig {
	return RSUAssistedConfig{
		Rounds:          75,
		RoundDuration:   200,
		ServerOverhead:  17.893,
		ExchangeTimeout: 60,
	}
}

// Validate reports whether the configuration is usable.
func (c RSUAssistedConfig) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("strategy: non-positive round count %d", c.Rounds)
	case c.RoundDuration <= 0:
		return fmt.Errorf("strategy: non-positive round duration %v", c.RoundDuration)
	case c.ServerOverhead < 0:
		return fmt.Errorf("strategy: negative server overhead %v", c.ServerOverhead)
	case c.ExchangeTimeout <= 0:
		return fmt.Errorf("strategy: non-positive exchange timeout %v", c.ExchangeTimeout)
	default:
		return nil
	}
}

// rsuState tracks one RSU's collection progress within a round.
type rsuState struct {
	global      *ml.Snapshot
	agg         *ml.Snapshot
	weight      float64
	exchanges   int
	contacted   map[sim.AgentID]bool
	pendingPeer sim.AgentID
}

// RSUAssisted implements FL where stationary road-side units collect the
// contributions: the server distributes the global model to every RSU over
// the wired backhaul, passing vehicles retrain it via V2X exchanges, RSUs
// pre-aggregate (Federated Averaging is associative), and at round end the
// aggregates return over the wire. Requires Config.RSUCount > 0.
type RSUAssisted struct {
	Base
	cfg RSUAssistedConfig

	round      int
	roundStart sim.Time
	roundEnded bool
	rsus       map[sim.AgentID]*rsuState
	serving    map[sim.AgentID]servingState
	awaiting   int
	collected  []*ml.Snapshot
	weights    []float64
	contribs   int
}

var _ Strategy = (*RSUAssisted)(nil)

// NewRSUAssisted returns the RSU-assisted strategy.
func NewRSUAssisted(cfg RSUAssistedConfig) (*RSUAssisted, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RSUAssisted{cfg: cfg}, nil
}

// Name implements Strategy.
func (r *RSUAssisted) Name() string { return "rsu-assisted" }

// Config returns the strategy's configuration.
func (r *RSUAssisted) Config() RSUAssistedConfig { return r.cfg }

// Start implements Strategy.
func (r *RSUAssisted) Start(env Env) error {
	if env.Model(env.Server()) == nil {
		return fmt.Errorf("strategy: rsu-assisted: server has no initial model")
	}
	if len(env.RSUs()) == 0 {
		return fmt.Errorf("strategy: rsu-assisted: experiment has no RSUs (set Config.RSUCount)")
	}
	r.startRound(env)
	return nil
}

func (r *RSUAssisted) startRound(env Env) {
	if r.round >= r.cfg.Rounds {
		env.Logf("rsu: %d rounds complete at %v", r.round, env.Now())
		env.Stop()
		return
	}
	r.round++
	r.roundStart = env.Now()
	r.roundEnded = false
	r.rsus = make(map[sim.AgentID]*rsuState, len(env.RSUs()))
	r.serving = make(map[sim.AgentID]servingState)
	r.awaiting = 0
	r.collected = r.collected[:0]
	r.weights = r.weights[:0]
	r.contribs = 0

	global := env.Model(env.Server())
	for _, rsu := range env.RSUs() {
		p := Payload{Tag: tagGlobal, Round: r.round, Model: global}
		if _, err := env.Send(env.Server(), rsu, comm.KindWired, p); err != nil {
			env.Logf("rsu: round %d: distribute to %v: %v", r.round, rsu, err)
			continue
		}
		r.rsus[rsu] = &rsuState{
			global:      global,
			contacted:   make(map[sim.AgentID]bool),
			pendingPeer: sim.NoAgent,
		}
	}
	round := r.round
	if err := env.After(r.cfg.RoundDuration, func() { r.endRound(env, round) }); err != nil {
		env.Logf("rsu: schedule round end: %v", err)
		env.Stop()
	}
}

// OnDeliver implements Strategy.
func (r *RSUAssisted) OnDeliver(env Env, msg *comm.Message, p Payload) {
	switch p.Tag {
	case tagGlobal:
		// The RSU now holds the round's model; engage vehicles already in
		// range.
		if st, ok := r.rsus[msg.To]; ok && p.Round == r.round && !r.roundEnded {
			r.tryVehicles(env, msg.To, st)
		}
	case tagOffer:
		r.handleOffer(env, msg, p)
	case tagRetrained:
		r.handleRetrained(env, msg, p)
	case tagDecline:
		if st, ok := r.rsus[msg.To]; ok && p.Round == r.round && st.pendingPeer == msg.From {
			st.pendingPeer = sim.NoAgent
			if !r.roundEnded {
				r.tryVehicles(env, msg.To, st)
			}
		}
	case tagUpdate:
		if msg.To != env.Server() || p.Round != r.round {
			return
		}
		r.awaiting--
		r.collected = append(r.collected, p.Model)
		r.weights = append(r.weights, p.DataAmount)
		if p.Contributions > 0 {
			r.contribs += p.Contributions
		}
		r.maybeAggregate(env)
	}
}

func (r *RSUAssisted) handleOffer(env Env, msg *comm.Message, p Payload) {
	v := msg.To
	if p.Round != r.round || r.roundEnded {
		r.decline(env, v, msg.From, p.Round)
		return
	}
	if _, busy := r.serving[v]; busy || env.IsBusy(v) || env.DataAmount(v) == 0 {
		r.decline(env, v, msg.From, p.Round)
		return
	}
	if err := env.Train(v, p.Model); err != nil {
		r.decline(env, v, msg.From, p.Round)
		return
	}
	r.serving[v] = servingState{reporter: msg.From, round: p.Round}
}

func (r *RSUAssisted) decline(env Env, from, to sim.AgentID, round int) {
	p := Payload{Tag: tagDecline, Round: round}
	if _, err := env.Send(from, to, comm.KindV2X, p); err != nil {
		env.Logf("rsu: decline %v -> %v: %v", from, to, err)
	}
}

func (r *RSUAssisted) handleRetrained(env Env, msg *comm.Message, p Payload) {
	st, ok := r.rsus[msg.To]
	if !ok || p.Round != r.round {
		return
	}
	if st.pendingPeer == msg.From {
		st.pendingPeer = sim.NoAgent
	}
	if st.agg == nil {
		st.agg = p.Model
		st.weight = p.DataAmount
	} else {
		agg, err := env.Aggregate([]*ml.Snapshot{st.agg, p.Model}, []float64{st.weight, p.DataAmount})
		if err != nil {
			env.Logf("rsu: round %d: aggregate at %v: %v", r.round, msg.To, err)
			return
		}
		st.agg = agg
		st.weight += p.DataAmount
	}
	st.exchanges++
	if !r.roundEnded {
		r.tryVehicles(env, msg.To, st)
	}
}

// OnSendFailed implements Strategy.
func (r *RSUAssisted) OnSendFailed(env Env, msg *comm.Message, p Payload, reason error) {
	switch p.Tag {
	case tagOffer:
		if st, ok := r.rsus[msg.From]; ok && p.Round == r.round && st.pendingPeer == msg.To {
			st.pendingPeer = sim.NoAgent
			if !r.roundEnded {
				r.tryVehicles(env, msg.From, st)
			}
		}
	case tagRetrained:
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
	case tagUpdate:
		if p.Round != r.round {
			return
		}
		r.awaiting--
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
		r.maybeAggregate(env)
	}
}

// OnTrainDone implements Strategy.
func (r *RSUAssisted) OnTrainDone(env Env, id sim.AgentID, trained *ml.Snapshot, loss float64) {
	sv, ok := r.serving[id]
	if !ok {
		return
	}
	delete(r.serving, id)
	if sv.round != r.round || r.roundEnded {
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
		return
	}
	p := Payload{Tag: tagRetrained, Round: sv.round, Model: trained, DataAmount: float64(env.DataAmount(id))}
	if _, err := env.Send(id, sv.reporter, comm.KindV2X, p); err != nil {
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
	}
}

// OnTrainAborted implements Strategy.
func (r *RSUAssisted) OnTrainAborted(env Env, id sim.AgentID) {
	if _, ok := r.serving[id]; ok {
		delete(r.serving, id)
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
	}
}

// OnEncounter implements Strategy.
func (r *RSUAssisted) OnEncounter(env Env, a, b sim.AgentID) {
	if r.roundEnded {
		return
	}
	r.maybeOffer(env, a, b)
	r.maybeOffer(env, b, a)
}

// tryVehicles scans an RSU's neighborhood for vehicles to engage.
func (r *RSUAssisted) tryVehicles(env Env, rsu sim.AgentID, st *rsuState) {
	if st.pendingPeer != sim.NoAgent {
		return
	}
	for _, peer := range env.Neighbors(rsu) {
		r.maybeOffer(env, rsu, peer)
		if st.pendingPeer != sim.NoAgent {
			return
		}
	}
}

func (r *RSUAssisted) maybeOffer(env Env, rsu, peer sim.AgentID) {
	st, ok := r.rsus[rsu]
	if !ok || st.pendingPeer != sim.NoAgent {
		return
	}
	if env.Kind(peer) != sim.KindVehicle || st.contacted[peer] {
		return
	}
	if !env.IsOn(rsu) || !env.IsOn(peer) || env.IsBusy(peer) {
		return
	}
	p := Payload{Tag: tagOffer, Round: r.round, Model: st.global}
	if _, err := env.Send(rsu, peer, comm.KindV2X, p); err != nil {
		return
	}
	st.contacted[peer] = true
	st.pendingPeer = peer
	round := r.round
	if err := env.After(r.cfg.ExchangeTimeout, func() {
		if round == r.round && st.pendingPeer == peer {
			st.pendingPeer = sim.NoAgent
			if !r.roundEnded {
				r.tryVehicles(env, rsu, st)
			}
		}
	}); err != nil {
		env.Logf("rsu: schedule exchange timeout: %v", err)
	}
}

func (r *RSUAssisted) endRound(env Env, round int) {
	if round != r.round || r.roundEnded {
		return
	}
	r.roundEnded = true

	exchanges := 0
	ids := make([]sim.AgentID, 0, len(r.rsus))
	for id := range r.rsus {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := r.rsus[id]
		exchanges += st.exchanges
		if st.agg == nil {
			continue
		}
		p := Payload{
			Tag:           tagUpdate,
			Round:         round,
			Model:         st.agg,
			DataAmount:    st.weight,
			Contributions: st.exchanges,
		}
		if _, err := env.Send(id, env.Server(), comm.KindWired, p); err != nil {
			env.Metrics().Add(metrics.CounterDiscardedModels, float64(st.exchanges))
			continue
		}
		r.awaiting++
	}
	if err := env.Metrics().Record(metrics.SeriesRoundExchanges, env.Now(), float64(exchanges)); err != nil {
		env.Logf("metrics: %v", err)
	}
	r.maybeAggregate(env)
}

func (r *RSUAssisted) maybeAggregate(env Env) {
	if !r.roundEnded || r.awaiting > 0 {
		return
	}
	if len(r.collected) > 0 {
		global, err := env.Aggregate(r.collected, r.weights)
		if err != nil {
			env.Logf("rsu: round %d: aggregate: %v", r.round, err)
		} else {
			env.SetModel(env.Server(), global)
		}
	}
	recordGlobalAccuracy(env, r.round, r.contribs)
	next := r.roundStart.Add(r.cfg.RoundDuration).Add(r.cfg.ServerOverhead)
	delay := next.Sub(env.Now())
	if delay < 0 {
		delay = 0
	}
	if err := env.After(delay, func() { r.startRound(env) }); err != nil {
		env.Logf("rsu: schedule next round: %v", err)
		env.Stop()
	}
}
