package strategy

import (
	"fmt"
	"sort"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
)

// Message tags shared by the server-driven strategies.
const (
	tagGlobal    = "global"    // server -> vehicle: current global model
	tagUpdate    = "update"    // vehicle -> server: retrained model + data amount
	tagOffer     = "offer"     // reporter -> non-reporter (V2X): forwarded global model
	tagRetrained = "retrained" // non-reporter -> reporter (V2X): retrained model
	tagDecline   = "decline"   // non-reporter -> reporter (V2X): cannot serve
)

// controlBytes is the wire size of a model-free control message.
const controlBytes = 256

// FedAvgConfig parameterizes the FL baseline (the paper's BASE: "we perform
// FL in the VCPS, contacting 5 vehicles each round over 75 rounds of 30
// seconds duration").
type FedAvgConfig struct {
	// Rounds is the number of federated rounds (the fixed V2C budget).
	Rounds int `json:"rounds"`
	// VehiclesPerRound is the number of vehicles contacted per round.
	VehiclesPerRound int `json:"vehicles_per_round"`
	// RoundDuration is the round timer: the window vehicles have to
	// receive and retrain the global model.
	RoundDuration sim.Duration `json:"round_duration_s"`
	// ServerOverhead is the fixed per-round server-side time for
	// collection, aggregation, evaluation, and scheduling. The paper's
	// reported totals (75 rounds; BASE ends at 3592 s with 30 s rounds,
	// OPP at 16342 s with 200 s rounds) both imply the same ≈17.9 s/round
	// overhead — the calibration reproduced here.
	ServerOverhead sim.Duration `json:"server_overhead_s"`
}

// DefaultFedAvgConfig is the paper's BASE configuration.
func DefaultFedAvgConfig() FedAvgConfig {
	return FedAvgConfig{
		Rounds:           75,
		VehiclesPerRound: 5,
		RoundDuration:    30,
		ServerOverhead:   17.893,
	}
}

// Validate reports whether the configuration is usable.
func (c FedAvgConfig) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("strategy: non-positive round count %d", c.Rounds)
	case c.VehiclesPerRound <= 0:
		return fmt.Errorf("strategy: non-positive vehicles per round %d", c.VehiclesPerRound)
	case c.RoundDuration <= 0:
		return fmt.Errorf("strategy: non-positive round duration %v", c.RoundDuration)
	case c.ServerOverhead < 0:
		return fmt.Errorf("strategy: negative server overhead %v", c.ServerOverhead)
	default:
		return nil
	}
}

// FederatedAveraging is vanilla FL over V2C (the paper's §3 strategy box):
// each round the server sends the global model to a random vehicle subset,
// each vehicle retrains on local data and returns its model at the round's
// end, and the server aggregates with Federated Averaging.
type FederatedAveraging struct {
	Base
	cfg FedAvgConfig

	round        int // 1-based; 0 before the first round
	roundStart   sim.Time
	roundEnded   bool
	roundSpan    trace.SpanID
	participants map[sim.AgentID]bool
	trained      map[sim.AgentID]pendingUpdate
	awaiting     int
	collected    []*ml.Snapshot
	weights      []float64
	provenance   map[sim.AgentID]bool // vehicles that ever contributed
}

type pendingUpdate struct {
	model  *ml.Snapshot
	weight float64
}

var _ Strategy = (*FederatedAveraging)(nil)

// NewFederatedAveraging returns the BASE strategy.
func NewFederatedAveraging(cfg FedAvgConfig) (*FederatedAveraging, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FederatedAveraging{cfg: cfg}, nil
}

// Name implements Strategy.
func (f *FederatedAveraging) Name() string { return "fedavg" }

// Config returns the strategy's configuration.
func (f *FederatedAveraging) Config() FedAvgConfig { return f.cfg }

// Start implements Strategy.
func (f *FederatedAveraging) Start(env Env) error {
	if env.Model(env.Server()) == nil {
		return fmt.Errorf("strategy: fedavg: server has no initial model")
	}
	f.provenance = make(map[sim.AgentID]bool)
	f.startRound(env)
	return nil
}

func (f *FederatedAveraging) startRound(env Env) {
	if f.round >= f.cfg.Rounds {
		env.Logf("fedavg: %d rounds complete at %v", f.round, env.Now())
		env.Stop()
		return
	}
	f.round++
	f.roundStart = env.Now()
	f.roundEnded = false
	f.participants = make(map[sim.AgentID]bool, f.cfg.VehiclesPerRound)
	f.trained = make(map[sim.AgentID]pendingUpdate)
	f.awaiting = 0
	f.collected = f.collected[:0]
	f.weights = f.weights[:0]

	// The round span scopes everything the round causes — transfers,
	// trains, evals emitted by the core nest under it automatically.
	tr := env.Tracer()
	f.roundSpan = tr.BeginRoot(trace.KindRound, "round")
	tr.AttrInt(f.roundSpan, "round", int64(f.round))
	tr.Attr(f.roundSpan, "strategy", "fedavg")
	tr.SetScope(f.roundSpan)

	global := env.Model(env.Server())
	for _, v := range pickOnVehicles(env, f.cfg.VehiclesPerRound) {
		p := Payload{Tag: tagGlobal, Round: f.round, Model: global}
		if _, err := env.Send(env.Server(), v, comm.KindV2C, p); err != nil {
			env.Logf("fedavg: round %d: send global to %v: %v", f.round, v, err)
			continue
		}
		f.participants[v] = true
	}
	round := f.round
	if err := env.After(f.cfg.RoundDuration, func() { f.endRound(env, round) }); err != nil {
		env.Logf("fedavg: schedule round end: %v", err)
		env.Stop()
	}
}

// OnDeliver implements Strategy.
func (f *FederatedAveraging) OnDeliver(env Env, msg *comm.Message, p Payload) {
	switch p.Tag {
	case tagGlobal:
		if p.Round != f.round || f.roundEnded || !f.participants[msg.To] {
			return // stale round or non-participant
		}
		if err := env.Train(msg.To, p.Model); err != nil {
			env.Logf("fedavg: round %d: train on %v: %v", f.round, msg.To, err)
		}
	case tagUpdate:
		if msg.To != env.Server() || p.Round != f.round {
			return
		}
		f.awaiting--
		f.collected = append(f.collected, p.Model)
		f.weights = append(f.weights, p.DataAmount)
		for _, v := range p.Provenance {
			f.provenance[v] = true
		}
		f.maybeAggregate(env)
	}
}

// OnSendFailed implements Strategy.
func (f *FederatedAveraging) OnSendFailed(env Env, msg *comm.Message, p Payload, reason error) {
	switch p.Tag {
	case tagGlobal:
		// The vehicle simply misses this round.
		env.Logf("fedavg: round %d: global to %v failed: %v", p.Round, msg.To, reason)
	case tagUpdate:
		if p.Round != f.round {
			return
		}
		f.awaiting--
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
		f.maybeAggregate(env)
	}
}

// OnTrainDone implements Strategy.
func (f *FederatedAveraging) OnTrainDone(env Env, id sim.AgentID, trained *ml.Snapshot, loss float64) {
	if !f.participants[id] {
		return
	}
	if f.roundEnded {
		// Finished too late; the contribution is lost (the paper's round
		// duration must cover transmission plus retraining).
		env.Metrics().Add(metrics.CounterDiscardedModels, 1)
		return
	}
	f.trained[id] = pendingUpdate{model: trained, weight: float64(env.DataAmount(id))}
}

func (f *FederatedAveraging) endRound(env Env, round int) {
	if round != f.round || f.roundEnded {
		return
	}
	f.roundEnded = true
	vehicles := make([]sim.AgentID, 0, len(f.trained))
	for v := range f.trained {
		vehicles = append(vehicles, v)
	}
	sort.Slice(vehicles, func(i, j int) bool { return vehicles[i] < vehicles[j] })
	for _, v := range vehicles {
		upd := f.trained[v]
		p := Payload{
			Tag:        tagUpdate,
			Round:      round,
			Model:      upd.model,
			DataAmount: upd.weight,
			Provenance: []sim.AgentID{v},
		}
		if _, err := env.Send(v, env.Server(), comm.KindV2C, p); err != nil {
			env.Metrics().Add(metrics.CounterDiscardedModels, 1)
			env.Logf("fedavg: round %d: return from %v: %v", round, v, err)
			continue
		}
		f.awaiting++
	}
	f.maybeAggregate(env)
}

func (f *FederatedAveraging) maybeAggregate(env Env) {
	if !f.roundEnded || f.awaiting > 0 {
		return
	}
	tr := env.Tracer()
	if len(f.collected) > 0 {
		// The aggregate phase is an instant child span of the round.
		aggSpan := tr.Begin(trace.KindRound, "aggregate")
		tr.AttrInt(aggSpan, "models", int64(len(f.collected)))
		global, err := env.Aggregate(f.collected, f.weights)
		if err != nil {
			env.Logf("fedavg: round %d: aggregate: %v", f.round, err)
			tr.EndWith(aggSpan, "status", "error")
		} else {
			env.SetModel(env.Server(), global)
			tr.End(aggSpan)
		}
	}
	recordGlobalAccuracy(env, f.round, len(f.collected))
	recordProvenance(env, len(f.provenance))
	tr.AttrInt(f.roundSpan, "collected", int64(len(f.collected)))
	tr.End(f.roundSpan)
	tr.SetScope(0)
	f.roundSpan = 0
	f.scheduleNextRound(env)
}

func (f *FederatedAveraging) scheduleNextRound(env Env) {
	next := f.roundStart.Add(f.cfg.RoundDuration).Add(f.cfg.ServerOverhead)
	delay := next.Sub(env.Now())
	if delay < 0 {
		delay = 0
	}
	if err := env.After(delay, func() { f.startRound(env) }); err != nil {
		env.Logf("fedavg: schedule next round: %v", err)
		env.Stop()
	}
}

// recordProvenance records how many distinct vehicles have contributed to
// the global model so far — the data-provenance metric of §3 req. 4.
func recordProvenance(env Env, distinct int) {
	if err := env.Metrics().Record(metrics.SeriesDistinctContributors, env.Now(), float64(distinct)); err != nil {
		env.Logf("metrics: %v", err)
	}
}

// recordGlobalAccuracy evaluates the server model on the held-out test set
// and records the round's accuracy and contribution count.
func recordGlobalAccuracy(env Env, round, contributions int) {
	rec := env.Metrics()
	rec.Add(metrics.CounterRounds, 1)
	if err := rec.Record(metrics.SeriesRoundContributions, env.Now(), float64(contributions)); err != nil {
		env.Logf("metrics: %v", err)
	}
	global := env.Model(env.Server())
	if global == nil {
		return
	}
	acc, err := env.TestAccuracy(global)
	if err != nil {
		env.Logf("accuracy eval failed in round %d: %v", round, err)
		return
	}
	if err := rec.Record(metrics.SeriesAccuracy, env.Now(), acc); err != nil {
		env.Logf("metrics: %v", err)
	}
}
