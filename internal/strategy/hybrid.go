package strategy

import (
	"fmt"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
)

const (
	tagPullRequest = "pull-request" // server -> vehicle: please send your model
	tagPullReply   = "pull-reply"   // vehicle -> server: current model
	tagPush        = "push"         // server -> vehicle: new global model
)

// HybridConfig parameterizes the gossip+FL hybrid — the kind of "hybrid
// approaches" requirement 5 demands the framework support. Vehicles gossip
// continuously over free V2X; every SyncInterval the server pulls a few
// models over V2C, aggregates them, and pushes the result back, anchoring
// the fleet to a shared global model at a fraction of FL's V2C cost.
type HybridConfig struct {
	// Gossip configures the underlying continuous gossip process.
	Gossip GossipConfig `json:"gossip"`
	// SyncInterval is the time between server pull/aggregate/push cycles.
	SyncInterval sim.Duration `json:"sync_interval_s"`
	// SyncVehicles is how many vehicles the server contacts per sync.
	SyncVehicles int `json:"sync_vehicles"`
}

// DefaultHybridConfig syncs 3 vehicles every 10 minutes over a 1-hour run.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		Gossip:       DefaultGossipConfig(),
		SyncInterval: 600,
		SyncVehicles: 3,
	}
}

// Validate reports whether the configuration is usable.
func (c HybridConfig) Validate() error {
	if err := c.Gossip.Validate(); err != nil {
		return err
	}
	switch {
	case c.SyncInterval <= 0:
		return fmt.Errorf("strategy: non-positive sync interval %v", c.SyncInterval)
	case c.SyncVehicles <= 0:
		return fmt.Errorf("strategy: non-positive sync vehicle count %d", c.SyncVehicles)
	default:
		return nil
	}
}

// Hybrid composes Gossip with a periodic FL-style synchronization.
type Hybrid struct {
	gossip *Gossip
	cfg    HybridConfig

	syncRound   int
	awaiting    int
	collected   []*ml.Snapshot
	weights     []float64
	syncPending bool
	stopped     bool
}

var _ Strategy = (*Hybrid)(nil)

// NewHybrid returns the hybrid strategy.
func NewHybrid(cfg HybridConfig) (*Hybrid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := NewGossip(cfg.Gossip)
	if err != nil {
		return nil, err
	}
	return &Hybrid{gossip: g, cfg: cfg}, nil
}

// Name implements Strategy.
func (h *Hybrid) Name() string { return "hybrid" }

// Config returns the strategy's configuration.
func (h *Hybrid) Config() HybridConfig { return h.cfg }

// Start implements Strategy.
func (h *Hybrid) Start(env Env) error {
	if err := h.gossip.Start(env); err != nil {
		return err
	}
	if err := env.After(h.cfg.SyncInterval, func() { h.syncTick(env) }); err != nil {
		return fmt.Errorf("strategy: hybrid: schedule sync: %w", err)
	}
	if err := env.After(h.cfg.Gossip.Duration, func() { h.stopped = true }); err != nil {
		return fmt.Errorf("strategy: hybrid: schedule stop: %w", err)
	}
	return nil
}

func (h *Hybrid) syncTick(env Env) {
	if h.stopped {
		return
	}
	if !h.syncPending {
		h.syncRound++
		h.awaiting = 0
		h.collected = h.collected[:0]
		h.weights = h.weights[:0]
		targets := pickOnVehicles(env, h.cfg.SyncVehicles)
		for _, v := range targets {
			if env.Model(v) == nil {
				continue
			}
			p := Payload{Tag: tagPullRequest, Round: h.syncRound}
			if _, err := env.Send(env.Server(), v, comm.KindV2C, p); err != nil {
				continue
			}
			h.awaiting++
		}
		if h.awaiting > 0 {
			h.syncPending = true
		}
	}
	if err := env.After(h.cfg.SyncInterval, func() { h.syncTick(env) }); err != nil {
		env.Logf("hybrid: schedule sync: %v", err)
	}
}

// OnDeliver implements Strategy.
func (h *Hybrid) OnDeliver(env Env, msg *comm.Message, p Payload) {
	switch p.Tag {
	case tagPullRequest:
		if p.Round != h.syncRound {
			return
		}
		v := msg.To
		m := env.Model(v)
		if m == nil {
			m = env.Model(env.Server())
		}
		reply := Payload{Tag: tagPullReply, Round: p.Round, Model: m, DataAmount: float64(env.DataAmount(v))}
		if _, err := env.Send(v, env.Server(), comm.KindV2C, reply); err != nil {
			env.Logf("hybrid: pull reply from %v: %v", v, err)
		}
	case tagPullReply:
		if msg.To != env.Server() || p.Round != h.syncRound || !h.syncPending {
			return
		}
		h.awaiting--
		h.collected = append(h.collected, p.Model)
		h.weights = append(h.weights, p.DataAmount)
		h.maybeSync(env)
	case tagPush:
		env.SetModel(msg.To, p.Model)
	default:
		h.gossip.OnDeliver(env, msg, p)
	}
}

// OnSendFailed implements Strategy.
func (h *Hybrid) OnSendFailed(env Env, msg *comm.Message, p Payload, reason error) {
	switch p.Tag {
	case tagPullRequest, tagPullReply:
		if p.Round != h.syncRound || !h.syncPending {
			return
		}
		h.awaiting--
		h.maybeSync(env)
	case tagPush:
		// Vehicle keeps its gossip model; no harm done.
	default:
		h.gossip.OnSendFailed(env, msg, p, reason)
	}
}

func (h *Hybrid) maybeSync(env Env) {
	if h.awaiting > 0 {
		return
	}
	h.syncPending = false
	if len(h.collected) == 0 {
		return
	}
	global, err := env.Aggregate(h.collected, h.weights)
	if err != nil {
		env.Logf("hybrid: aggregate: %v", err)
		return
	}
	env.SetModel(env.Server(), global)
	acc, err := env.TestAccuracy(global)
	if err == nil {
		if rerr := env.Metrics().Record(metrics.SeriesAccuracy, env.Now(), acc); rerr != nil {
			env.Logf("metrics: %v", rerr)
		}
	}
	env.Metrics().Add(metrics.CounterRounds, 1)
	// Push the anchored model back to reachable sampled vehicles.
	for _, v := range pickOnVehicles(env, h.cfg.SyncVehicles) {
		p := Payload{Tag: tagPush, Round: h.syncRound, Model: global}
		if _, err := env.Send(env.Server(), v, comm.KindV2C, p); err != nil {
			continue
		}
	}
}

// OnTrainDone implements Strategy.
func (h *Hybrid) OnTrainDone(env Env, id sim.AgentID, trained *ml.Snapshot, loss float64) {
	h.gossip.OnTrainDone(env, id, trained, loss)
}

// OnTrainAborted implements Strategy.
func (h *Hybrid) OnTrainAborted(env Env, id sim.AgentID) { h.gossip.OnTrainAborted(env, id) }

// OnEncounter implements Strategy.
func (h *Hybrid) OnEncounter(env Env, a, b sim.AgentID) { h.gossip.OnEncounter(env, a, b) }

// OnPowerChange implements Strategy.
func (h *Hybrid) OnPowerChange(env Env, id sim.AgentID, on bool) {
	h.gossip.OnPowerChange(env, id, on)
}
