// Package strategy contains Roadrunner's Learning Strategy Logic module
// (paper §4): "a set of rules ... defining how the agents react in which
// situation and thus encoding the learning strategy that is to be tested in
// a certain experiment run".
//
// A Strategy is pure logic over the framework API (Env): it observes events
// — message deliveries and failures, training completions, V2X encounters,
// ignition changes — and issues commands — send a model, train on local
// data, aggregate, record a metric, stop the experiment. It never touches
// positions, the event queue, or the clock directly; those belong to the
// core simulator. This is what makes strategies flexibly parameterizable
// and swappable (§3 requirement 5: "supporting centralized ML, FL, GL, as
// well as hybrid approaches" — all of those are implemented here, plus an
// RSU-assisted extension).
package strategy

import (
	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
)

// Payload is the strategy-level content of a transferred message. The
// communication module treats it as opaque; its wire size is derived from
// the model it carries (plus a fixed envelope).
type Payload struct {
	// Tag discriminates message purposes within a strategy (e.g. "global",
	// "retrained"). Tags are strategy-private.
	Tag string
	// Round is the strategy round the message belongs to; stale-round
	// messages are typically discarded on receipt.
	Round int
	// Model is the carried model, nil for control messages.
	Model *ml.Snapshot
	// DataAmount accompanies a retrained model: the number of local
	// samples it was trained on, used as its Federated-Averaging weight
	// (the dᵢ of the paper's Figure 3).
	DataAmount float64
	// Contributions counts the individual vehicle models folded into the
	// carried model (1 for a plain retrain; 1+N_R for a reporter's
	// intermediate aggregate). It feeds the paper's N = R·(N_R+1)
	// contribution accounting.
	Contributions int
	// Data carries raw examples for centralized-learning uploads; nil
	// otherwise. Its wire size is charged per example.
	Data []ml.Example
	// Provenance lists the vehicles whose data is folded into the carried
	// model, enabling the server-side data-provenance metric (paper §3
	// requirement 4).
	Provenance []sim.AgentID
}

// Env is the framework API a learning strategy programs against. It is
// implemented by the core simulator (internal/core); strategies receive it
// in every callback and must not retain it beyond the experiment run.
type Env interface {
	// Now returns the current simulated instant.
	Now() sim.Time
	// Rand returns the strategy's deterministic random stream.
	Rand() *sim.RNG

	// Server returns the cloud server's agent ID.
	Server() sim.AgentID
	// Vehicles returns all vehicle IDs in ID order.
	Vehicles() []sim.AgentID
	// RSUs returns all road-side-unit IDs in ID order.
	RSUs() []sim.AgentID
	// Kind returns the agent's kind.
	Kind(id sim.AgentID) sim.AgentKind
	// IsOn reports whether the agent is powered on.
	IsOn(id sim.AgentID) bool
	// IsBusy reports whether the agent's hardware unit is occupied.
	IsBusy(id sim.AgentID) bool
	// DataAmount returns the number of local training samples on the agent.
	DataAmount(id sim.AgentID) int
	// LocalData returns the agent's sensed dataset (shared slice; callers
	// must not mutate it). Strategies that ship raw data, like centralized
	// ML, read it here.
	LocalData(id sim.AgentID) []ml.Example

	// Model returns the agent's current model (nil if none assigned).
	Model(id sim.AgentID) *ml.Snapshot
	// SetModel assigns the agent's current model.
	SetModel(id sim.AgentID, m *ml.Snapshot)

	// Send starts an asynchronous transfer; completion surfaces through
	// OnDeliver or OnSendFailed. An error means the transfer could not
	// even start (endpoint off, out of V2X range).
	Send(from, to sim.AgentID, kind comm.Kind, p Payload) (comm.MsgID, error)
	// Train starts asynchronous local training of m on the agent's data;
	// completion surfaces through OnTrainDone (or OnTrainAborted if the
	// agent shuts off first). The agent is busy for the modelled duration.
	Train(id sim.AgentID, m *ml.Snapshot) error
	// TrainOnData is Train with an explicit example set, for agents that
	// train on received rather than sensed data (e.g. the cloud server in
	// centralized learning).
	TrainOnData(id sim.AgentID, m *ml.Snapshot, examples []ml.Example) error

	// Aggregate applies Federated Averaging with the given weights.
	Aggregate(models []*ml.Snapshot, weights []float64) (*ml.Snapshot, error)
	// TestAccuracy evaluates a model on the experiment's held-out test set.
	// This is an analyst-side measurement and consumes no simulated time.
	TestAccuracy(m *ml.Snapshot) (float64, error)

	// Neighbors returns the powered-on agents currently within V2X range
	// of id, in ID order.
	Neighbors(id sim.AgentID) []sim.AgentID
	// Reachable reports whether a send over kind would currently start.
	Reachable(from, to sim.AgentID, kind comm.Kind) bool

	// After schedules fn to run d from now.
	After(d sim.Duration, fn func()) error
	// Metrics returns the experiment's metric recorder.
	Metrics() *metrics.Recorder
	// Tracer returns the experiment's span tracer, nil (disabled, every
	// method a no-op) unless the run enables tracing. Strategies use it
	// to mark round and exchange phases; the core emits train, eval,
	// transfer, tick, and fault-window spans itself.
	Tracer() *trace.Tracer
	// Stop ends the experiment after the current event.
	Stop()
	// Logf emits a diagnostic line (discarded unless the experiment
	// enables logging).
	Logf(format string, args ...any)
}

// Strategy is one learning strategy's logic. The core simulator invokes the
// callbacks from the simulation goroutine; implementations need no locking
// but must not block.
type Strategy interface {
	// Name identifies the strategy in metrics and logs.
	Name() string
	// Start is invoked once at simulated time zero, after agents, data,
	// and the initial server model are in place.
	Start(env Env) error
	// OnDeliver is invoked when a transfer carrying p arrives at msg.To.
	OnDeliver(env Env, msg *comm.Message, p Payload)
	// OnSendFailed is invoked when a transfer fails after being accepted.
	OnSendFailed(env Env, msg *comm.Message, p Payload, reason error)
	// OnTrainDone is invoked when an agent finishes local training;
	// trained is the resulting model, loss the final-epoch training loss.
	OnTrainDone(env Env, id sim.AgentID, trained *ml.Snapshot, loss float64)
	// OnTrainAborted is invoked when the agent shut off mid-training.
	OnTrainAborted(env Env, id sim.AgentID)
	// OnEncounter is invoked when two agents come within V2X range of
	// each other (a < b; both powered on).
	OnEncounter(env Env, a, b sim.AgentID)
	// OnPowerChange is invoked on every agent ignition transition.
	OnPowerChange(env Env, id sim.AgentID, on bool)
}

// Base is a no-op Strategy for embedding: concrete strategies override the
// callbacks they care about.
type Base struct{}

// OnDeliver implements Strategy.
func (Base) OnDeliver(Env, *comm.Message, Payload) {}

// OnSendFailed implements Strategy.
func (Base) OnSendFailed(Env, *comm.Message, Payload, error) {}

// OnTrainDone implements Strategy.
func (Base) OnTrainDone(Env, sim.AgentID, *ml.Snapshot, float64) {}

// OnTrainAborted implements Strategy.
func (Base) OnTrainAborted(Env, sim.AgentID) {}

// OnEncounter implements Strategy.
func (Base) OnEncounter(Env, sim.AgentID, sim.AgentID) {}

// OnPowerChange implements Strategy.
func (Base) OnPowerChange(Env, sim.AgentID, bool) {}

// pickOnVehicles returns up to n distinct powered-on, non-busy vehicles,
// drawn uniformly at random. Used by server-driven strategies to select
// round participants.
func pickOnVehicles(env Env, n int) []sim.AgentID {
	var candidates []sim.AgentID
	for _, v := range env.Vehicles() {
		if env.IsOn(v) && !env.IsBusy(v) {
			candidates = append(candidates, v)
		}
	}
	env.Rand().Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > n {
		candidates = candidates[:n]
	}
	return candidates
}
