package strategy

import (
	"fmt"
	"sort"
	"testing"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
)

// mockEnv is a scripted strategy.Env for unit-testing strategy logic in
// isolation: sends and trainings are recorded instead of simulated, timers
// fire when the test advances the clock, and the test plays the role of
// the communication module by delivering or failing messages explicitly.
type mockEnv struct {
	t *testing.T

	now      sim.Time
	rng      *sim.RNG
	server   sim.AgentID
	vehicles []sim.AgentID
	rsus     []sim.AgentID
	on       map[sim.AgentID]bool
	busy     map[sim.AgentID]bool
	data     map[sim.AgentID]int
	local    map[sim.AgentID][]ml.Example
	models   map[sim.AgentID]*ml.Snapshot
	neighbor map[sim.AgentID][]sim.AgentID
	rec      *metrics.Recorder
	stopped  bool
	accuracy float64

	sends    []*sentMessage
	trains   []trainCall
	timers   []*timer
	nextMsg  comm.MsgID
	sendFail map[sim.AgentID]error // force Send() to fail at call time for this destination
}

type sentMessage struct {
	msg      *comm.Message
	payload  Payload
	resolved bool
}

type trainCall struct {
	id       sim.AgentID
	model    *ml.Snapshot
	examples []ml.Example
}

type timer struct {
	at    sim.Time
	fn    func()
	fired bool
}

var _ Env = (*mockEnv)(nil)

func newMockEnv(t *testing.T, vehicles int) *mockEnv {
	t.Helper()
	e := &mockEnv{
		t:        t,
		rng:      sim.NewRNG(1),
		server:   0,
		on:       map[sim.AgentID]bool{0: true},
		busy:     map[sim.AgentID]bool{},
		data:     map[sim.AgentID]int{},
		local:    map[sim.AgentID][]ml.Example{},
		models:   map[sim.AgentID]*ml.Snapshot{},
		neighbor: map[sim.AgentID][]sim.AgentID{},
		rec:      metrics.NewRecorder(),
		sendFail: map[sim.AgentID]error{},
		accuracy: 0.5,
	}
	for i := 1; i <= vehicles; i++ {
		id := sim.AgentID(i)
		e.vehicles = append(e.vehicles, id)
		e.on[id] = true
		e.data[id] = 80
	}
	e.models[e.server] = testSnapshot(t, 1)
	return e
}

func testSnapshot(t *testing.T, seed uint64) *ml.Snapshot {
	t.Helper()
	n, err := ml.NewNetwork(ml.MLPSpec(2, nil, 2), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return n.Snapshot()
}

func (e *mockEnv) Now() sim.Time           { return e.now }
func (e *mockEnv) Rand() *sim.RNG          { return e.rng }
func (e *mockEnv) Server() sim.AgentID     { return e.server }
func (e *mockEnv) Vehicles() []sim.AgentID { return e.vehicles }
func (e *mockEnv) RSUs() []sim.AgentID     { return e.rsus }

func (e *mockEnv) Kind(id sim.AgentID) sim.AgentKind {
	if id == e.server {
		return sim.KindCloudServer
	}
	for _, r := range e.rsus {
		if r == id {
			return sim.KindRSU
		}
	}
	return sim.KindVehicle
}

func (e *mockEnv) IsOn(id sim.AgentID) bool                { return e.on[id] }
func (e *mockEnv) IsBusy(id sim.AgentID) bool              { return e.busy[id] }
func (e *mockEnv) DataAmount(id sim.AgentID) int           { return e.data[id] }
func (e *mockEnv) LocalData(id sim.AgentID) []ml.Example   { return e.local[id] }
func (e *mockEnv) Model(id sim.AgentID) *ml.Snapshot       { return e.models[id] }
func (e *mockEnv) SetModel(id sim.AgentID, m *ml.Snapshot) { e.models[id] = m }

func (e *mockEnv) Send(from, to sim.AgentID, kind comm.Kind, p Payload) (comm.MsgID, error) {
	if !e.on[from] {
		return 0, comm.ErrSenderOff
	}
	if !e.on[to] {
		return 0, comm.ErrReceiverOff
	}
	if err := e.sendFail[to]; err != nil {
		return 0, err
	}
	e.nextMsg++
	e.sends = append(e.sends, &sentMessage{
		msg: &comm.Message{
			ID: e.nextMsg, From: from, To: to, Kind: kind, SentAt: e.now,
		},
		payload: p,
	})
	return e.nextMsg, nil
}

func (e *mockEnv) Train(id sim.AgentID, m *ml.Snapshot) error {
	return e.TrainOnData(id, m, e.local[id])
}

func (e *mockEnv) TrainOnData(id sim.AgentID, m *ml.Snapshot, examples []ml.Example) error {
	if !e.on[id] {
		return fmt.Errorf("mock: agent %v off", id)
	}
	if e.busy[id] {
		return fmt.Errorf("mock: agent %v busy", id)
	}
	e.busy[id] = true
	e.trains = append(e.trains, trainCall{id: id, model: m, examples: examples})
	return nil
}

func (e *mockEnv) Aggregate(models []*ml.Snapshot, weights []float64) (*ml.Snapshot, error) {
	return ml.FedAvg(models, weights)
}

func (e *mockEnv) TestAccuracy(m *ml.Snapshot) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("mock: nil model")
	}
	return e.accuracy, nil
}

func (e *mockEnv) Neighbors(id sim.AgentID) []sim.AgentID { return e.neighbor[id] }

func (e *mockEnv) Reachable(from, to sim.AgentID, kind comm.Kind) bool {
	return e.on[from] && e.on[to]
}

func (e *mockEnv) After(d sim.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("mock: negative delay")
	}
	e.timers = append(e.timers, &timer{at: e.now.Add(d), fn: fn})
	return nil
}

func (e *mockEnv) Metrics() *metrics.Recorder { return e.rec }

// Tracer returns nil: strategy unit tests run untraced, which doubles as
// coverage for the nil-receiver no-op contract at every call site.
func (e *mockEnv) Tracer() *trace.Tracer { return nil }

func (e *mockEnv) Stop()               { e.stopped = true }
func (e *mockEnv) Logf(string, ...any) {}

// advance moves the clock to t and fires due timers in time order.
func (e *mockEnv) advance(t sim.Time) {
	for {
		var next *timer
		for _, tm := range e.timers {
			if tm.fired || tm.at > t {
				continue
			}
			if next == nil || tm.at < next.at {
				next = tm
			}
		}
		if next == nil {
			break
		}
		e.now = next.at
		next.fired = true
		next.fn()
	}
	if t > e.now {
		e.now = t
	}
}

// sendsTo returns unresolved sends addressed to the given agent with the
// given tag, in send order.
func (e *mockEnv) sendsWith(tag string) []*sentMessage {
	var out []*sentMessage
	for _, s := range e.sends {
		if !s.resolved && s.payload.Tag == tag {
			out = append(out, s)
		}
	}
	return out
}

// deliver resolves a sent message as delivered, invoking the strategy.
func (e *mockEnv) deliver(s Strategy, m *sentMessage) {
	m.resolved = true
	s.OnDeliver(e, m.msg, m.payload)
}

// failSend resolves a sent message as failed.
func (e *mockEnv) failSend(s Strategy, m *sentMessage, reason error) {
	m.resolved = true
	s.OnSendFailed(e, m.msg, m.payload, reason)
}

// finishTraining completes the oldest outstanding training task of the
// agent, producing a distinct snapshot, and notifies the strategy.
func (e *mockEnv) finishTraining(s Strategy, id sim.AgentID, seed uint64) *ml.Snapshot {
	e.t.Helper()
	found := false
	for i, tc := range e.trains {
		if tc.id == id {
			e.trains = append(e.trains[:i], e.trains[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		e.t.Fatalf("no outstanding training on agent %v", id)
	}
	e.busy[id] = false
	trained := testSnapshot(e.t, seed)
	s.OnTrainDone(e, id, trained, 0.1)
	return trained
}

// trainingAgents lists agents with outstanding training, sorted.
func (e *mockEnv) trainingAgents() []sim.AgentID {
	var out []sim.AgentID
	for _, tc := range e.trains {
		out = append(out, tc.id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
