package strategy

import (
	"testing"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

func newRSUUnderTest(t *testing.T) (*RSUAssisted, *mockEnv) {
	t.Helper()
	s, err := NewRSUAssisted(RSUAssistedConfig{
		Rounds:          2,
		RoundDuration:   200,
		ServerOverhead:  10,
		ExchangeTimeout: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := newMockEnv(t, 4)
	// Two RSUs with IDs after the vehicles.
	for i := 0; i < 2; i++ {
		id := sim.AgentID(100 + i)
		env.rsus = append(env.rsus, id)
		env.on[id] = true
	}
	return s, env
}

func TestRSUAssistedConfigValidate(t *testing.T) {
	if err := DefaultRSUAssistedConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []RSUAssistedConfig{
		{RoundDuration: 1, ExchangeTimeout: 1},
		{Rounds: 1, ExchangeTimeout: 1},
		{Rounds: 1, RoundDuration: 1},
		{Rounds: 1, RoundDuration: 1, ExchangeTimeout: 1, ServerOverhead: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestRSUAssistedRequiresRSUs(t *testing.T) {
	s, env := newRSUUnderTest(t)
	env.rsus = nil
	if err := s.Start(env); err == nil {
		t.Fatal("Start without RSUs succeeded")
	}
}

func TestRSUAssistedDistributesOverWire(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	globals := env.sendsWith(tagGlobal)
	if len(globals) != 2 {
		t.Fatalf("%d wired distributions, want 2 RSUs", len(globals))
	}
	for _, g := range globals {
		if g.msg.Kind != comm.KindWired {
			t.Fatalf("distribution used %v, want wired backhaul", g.msg.Kind)
		}
	}
}

func TestRSUAssistedFullRoundUsesNoV2C(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	rsu := env.rsus[0]
	vehicle := env.vehicles[0]
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}

	// A vehicle drives past the RSU.
	s.OnEncounter(env, vehicle, rsu)
	offers := env.sendsWith(tagOffer)
	if len(offers) != 1 {
		t.Fatalf("%d offers after pass-by, want 1", len(offers))
	}
	if offers[0].msg.Kind != comm.KindV2X {
		t.Fatalf("offer over %v, want V2X", offers[0].msg.Kind)
	}
	env.deliver(s, offers[0])
	env.finishTraining(s, vehicle, 31)
	retrained := env.sendsWith(tagRetrained)
	if len(retrained) != 1 {
		t.Fatalf("%d retrained messages, want 1", len(retrained))
	}
	env.deliver(s, retrained[0])

	// Round end: RSU uploads its aggregate over the wire.
	env.advance(200)
	updates := env.sendsWith(tagUpdate)
	if len(updates) != 1 {
		t.Fatalf("%d updates, want 1 (only one RSU collected)", len(updates))
	}
	if updates[0].msg.Kind != comm.KindWired {
		t.Fatalf("update over %v, want wired", updates[0].msg.Kind)
	}
	if updates[0].payload.Contributions != 1 || updates[0].payload.DataAmount != 80 {
		t.Fatalf("update payload %+v", updates[0].payload)
	}
	before := env.models[env.server]
	env.deliver(s, updates[0])
	if env.models[env.server] == before {
		t.Fatal("server model unchanged")
	}
	// The entire round used zero V2C messages.
	for _, m := range env.sends {
		if m.msg.Kind == comm.KindV2C {
			t.Fatalf("V2C used: %+v", m.msg)
		}
	}
	if got := env.rec.Counter(metrics.CounterRounds); got != 1 {
		t.Fatalf("rounds = %v", got)
	}
}

func TestRSUAssistedEngagesNeighborsOnModelArrival(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	rsu := env.rsus[0]
	parked := env.vehicles[1]
	env.neighbor[rsu] = []sim.AgentID{parked}
	// When the global model reaches the RSU, the already-in-range vehicle
	// must be offered without a fresh encounter event.
	for _, g := range env.sendsWith(tagGlobal) {
		if g.msg.To == rsu {
			env.deliver(s, g)
		}
	}
	offers := env.sendsWith(tagOffer)
	if len(offers) != 1 || offers[0].msg.To != parked {
		t.Fatalf("offers = %v, want one to the parked vehicle", offers)
	}
}

func TestRSUAssistedEmptyRoundContinues(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	before := env.models[env.server]
	env.advance(200) // nobody passed by
	if env.models[env.server] != before {
		t.Fatal("model changed without contributions")
	}
	env.advance(211)
	if got := env.sendsWith(tagGlobal); len(got) != 2 {
		t.Fatalf("round 2 distributed %d models, want 2", len(got))
	}
}

func TestRSUAssistedVehiclesNotContactedTwice(t *testing.T) {
	s, env := newRSUUnderTest(t)
	if err := s.Start(env); err != nil {
		t.Fatal(err)
	}
	rsu := env.rsus[0]
	vehicle := env.vehicles[0]
	for _, g := range env.sendsWith(tagGlobal) {
		env.deliver(s, g)
	}
	s.OnEncounter(env, rsu, vehicle)
	env.deliver(s, env.sendsWith(tagOffer)[0])
	env.finishTraining(s, vehicle, 8)
	env.deliver(s, env.sendsWith(tagRetrained)[0])
	s.OnEncounter(env, rsu, vehicle)
	if got := env.sendsWith(tagOffer); len(got) != 0 {
		t.Fatalf("vehicle re-contacted: %d offers", len(got))
	}
}

func TestRSUAssistedName(t *testing.T) {
	s, _ := newRSUUnderTest(t)
	if s.Name() != "rsu-assisted" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Config().Rounds != 2 {
		t.Fatal("Config roundtrip broken")
	}
	if _, err := NewRSUAssisted(RSUAssistedConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
