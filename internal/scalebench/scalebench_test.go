package scalebench

import "testing"

// TestDeterminism pins the same-seed contract: two runs of one
// configuration agree on every stat, and a different seed disagrees on the
// checksum (or the checksum would be vacuous).
func TestDeterminism(t *testing.T) {
	cfg := Config{Vehicles: 150, Seed: 7, Horizon: 120}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Checksum == a.Checksum {
		t.Fatalf("checksum did not respond to seed change: %#x", c.Checksum)
	}
}

// TestNaiveEquivalence pins the load-bearing claim of the scaling
// benchmark: the tiled spatial index and the O(n²) reference compute the
// same pair sets tick for tick, so their speed difference is pure
// implementation, not workload drift.
func TestNaiveEquivalence(t *testing.T) {
	cfg := Config{Vehicles: 200, Seed: 11, Horizon: 90}
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Naive = true
	naive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Checksum != naive.Checksum {
		t.Fatalf("tiled checksum %#x != naive checksum %#x", fast.Checksum, naive.Checksum)
	}
	if fast.PairObservations != naive.PairObservations ||
		fast.EncounterBegins != naive.EncounterBegins ||
		fast.EncounterEnds != naive.EncounterEnds {
		t.Fatalf("pair accounting diverged: tiled %+v naive %+v", fast, naive)
	}
	if fast.PairObservations == 0 {
		t.Fatal("workload produced no pairs; the equivalence check is vacuous")
	}
}

// TestValidation rejects nonsense configurations.
func TestValidation(t *testing.T) {
	bad := []Config{
		{Vehicles: 0},
		{Vehicles: -5},
		{Vehicles: 10, Horizon: -1},
		{Vehicles: 10, RangeM: -3},
		{Vehicles: 10, DensityPerKm2: -1},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
}
