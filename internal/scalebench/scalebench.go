// Package scalebench drives the core simulator's megacity hot path — the
// discrete-event queue, trace replay, the tiled spatial index, and
// encounter tracking — at configurable fleet sizes, without the ML and
// communication stacks on top. It exists to answer one question with a
// number: how does per-simulated-second cost grow with fleet size?
//
// The workload is the paper's replay architecture in miniature. A
// deterministic synthetic fleet of random-waypoint traces (constant
// density: the city area grows with the fleet, as a real megacity does) is
// replayed through the same Replayer/SpatialIndex/EncounterTracker
// machinery core.Experiment uses, with a periodic encounter tick and a
// per-vehicle self-rescheduling beacon event keeping fleet-sized pending
// sets in the event queue. Everything derives from Config.Seed, and every
// run folds its observable behavior into a checksum, so two runs of the
// same configuration must agree bit for bit — including the naive
// reference mode, which computes the identical result with an O(n²) pair
// scan and per-tick index rebuild and exists as the scaling baseline to
// beat.
//
// Wall-clock timing deliberately lives with the caller (cmd/bench), not
// here: this package stays free of wall-clock reads so the determinism
// lint applies in full.
package scalebench

import (
	"fmt"
	"math"

	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// Config parameterizes one scaling point.
type Config struct {
	// Vehicles is the fleet size.
	Vehicles int
	// Seed determines the fleet and all of its motion.
	Seed uint64
	// Horizon is the simulated duration. Default 300 s.
	Horizon sim.Duration
	// TickEvery is the encounter-scan period. Default 5 s (the core
	// simulator's default tick).
	TickEvery sim.Duration
	// BeaconEvery is the per-vehicle event period: every vehicle keeps one
	// self-rescheduling event in the queue, so the pending set scales with
	// the fleet. Default 10 s.
	BeaconEvery sim.Duration
	// RangeM is the V2X range in meters, which is also the spatial index
	// cell size, matching core.Experiment. Default 400 m.
	RangeM float64
	// DensityPerKm2 is the fleet density; the square city's area is
	// Vehicles/DensityPerKm2, so density — and hence per-vehicle work — is
	// held constant across fleet sizes. Default 40 vehicles/km².
	DensityPerKm2 float64
	// Naive switches pair detection to the O(n²) brute-force scan with a
	// full per-tick index rebuild — the algorithmic shape the tiled index
	// replaced. Results (and the checksum) are identical by construction;
	// only the cost differs.
	Naive bool
}

func (c Config) withDefaults() Config {
	if c.Horizon == 0 {
		c.Horizon = sim.DurationSeconds(300)
	}
	if c.TickEvery == 0 {
		c.TickEvery = sim.DurationSeconds(5)
	}
	if c.BeaconEvery == 0 {
		c.BeaconEvery = sim.DurationSeconds(10)
	}
	if c.RangeM == 0 {
		c.RangeM = 400
	}
	if c.DensityPerKm2 == 0 {
		c.DensityPerKm2 = 40
	}
	return c
}

func (c Config) validate() error {
	if c.Vehicles <= 0 {
		return fmt.Errorf("scalebench: fleet size %d must be positive", c.Vehicles)
	}
	if c.Horizon <= 0 || !c.Horizon.IsValid() {
		return fmt.Errorf("scalebench: invalid horizon %v", c.Horizon)
	}
	if c.TickEvery <= 0 || !c.TickEvery.IsValid() {
		return fmt.Errorf("scalebench: invalid tick period %v", c.TickEvery)
	}
	if c.BeaconEvery <= 0 || !c.BeaconEvery.IsValid() {
		return fmt.Errorf("scalebench: invalid beacon period %v", c.BeaconEvery)
	}
	if c.RangeM <= 0 || math.IsNaN(c.RangeM) || math.IsInf(c.RangeM, 0) {
		return fmt.Errorf("scalebench: invalid range %v", c.RangeM)
	}
	if c.DensityPerKm2 <= 0 || math.IsNaN(c.DensityPerKm2) || math.IsInf(c.DensityPerKm2, 0) {
		return fmt.Errorf("scalebench: invalid density %v", c.DensityPerKm2)
	}
	return nil
}

// Stats are one scaling point's deterministic outputs. Everything here is a
// pure function of Config — wall-clock time is measured by the caller.
type Stats struct {
	Vehicles         int     `json:"vehicles"`
	SimSeconds       float64 `json:"sim_seconds"`
	AreaKm2          float64 `json:"area_km2"`
	Ticks            uint64  `json:"ticks"`
	Beacons          uint64  `json:"beacons"`
	EventsProcessed  uint64  `json:"events_processed"`
	PairObservations uint64  `json:"pair_observations"`
	EncounterBegins  uint64  `json:"encounter_begins"`
	EncounterEnds    uint64  `json:"encounter_ends"`
	Tiles            int     `json:"tiles"`
	OccupiedTiles    int     `json:"occupied_tiles"`
	MaxTileOccupancy int     `json:"max_tile_occupancy"`
	// Checksum folds every tick's pair set and power count, so identical
	// configurations must produce identical checksums — across runs and
	// across the naive/tiled implementations.
	Checksum uint64 `json:"checksum"`
}

// Run executes one scaling point and returns its deterministic stats.
func Run(cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ts, sideM, err := generateFleet(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := mobility.NewReplayer(ts)
	if err != nil {
		return nil, err
	}
	spatial, err := mobility.NewSpatialIndex(cfg.RangeM)
	if err != nil {
		return nil, err
	}
	if err := spatial.SetBounds(roadnet.Point{}, roadnet.Point{X: sideM, Y: sideM}); err != nil {
		return nil, err
	}
	spatial.Reset(cfg.Vehicles)

	engine := sim.NewEngine()
	tracker := mobility.NewEncounterTracker()
	cursor := rep.NewCursor()
	horizon := sim.Time(0).Add(cfg.Horizon)
	stats := &Stats{
		Vehicles:   cfg.Vehicles,
		SimSeconds: cfg.Horizon.Seconds(),
		AreaKm2:    sideM * sideM / 1e6,
		Checksum:   fnvOffset,
	}

	// Naive mode gathers positions into flat snapshots, rebuilding from
	// scratch each tick like the pre-tiling design did.
	var posBuf []roadnet.Point
	var actBuf []bool
	if cfg.Naive {
		posBuf = make([]roadnet.Point, cfg.Vehicles)
		actBuf = make([]bool, cfg.Vehicles)
	}

	var tick func()
	tick = func() {
		now := engine.Now()
		onCount := 0
		var pairs []mobility.Pair
		if cfg.Naive {
			for i := 0; i < cfg.Vehicles; i++ {
				pos, on, err := rep.At(i, now)
				if err != nil {
					on = false
				}
				posBuf[i], actBuf[i] = pos, on
				if on {
					onCount++
				}
			}
			pairs = mobility.BruteForcePairs(posBuf, actBuf, cfg.RangeM)
		} else {
			for i := 0; i < cfg.Vehicles; i++ {
				pos, on, err := rep.AtCursor(cursor, i, now)
				if err != nil {
					on = false
				}
				if err := spatial.Update(i, pos, on); err != nil {
					return
				}
				if on {
					onCount++
				}
			}
			pairs = spatial.PairsWithin(cfg.RangeM)
		}
		begins, ends := tracker.Update(pairs)
		stats.Ticks++
		stats.PairObservations += uint64(len(pairs))
		stats.EncounterBegins += uint64(len(begins))
		stats.EncounterEnds += uint64(len(ends))
		stats.Checksum = fold(stats.Checksum, uint64(onCount))
		stats.Checksum = fold(stats.Checksum, uint64(len(pairs)))
		for _, b := range begins {
			stats.Checksum = fold(stats.Checksum, uint64(b.A)<<32|uint64(uint32(b.B)))
		}
		if next := now.Add(cfg.TickEvery); next <= horizon {
			if _, err := engine.Schedule(next, tick); err != nil {
				return
			}
		}
	}
	if _, err := engine.Schedule(0, tick); err != nil {
		return nil, err
	}

	// One beacon chain per vehicle, phase-staggered across the period so
	// firings spread over simulated time the way real CAM beacons do.
	for i := 0; i < cfg.Vehicles; i++ {
		i := i
		phase := sim.Time(float64(cfg.BeaconEvery) * float64(i%97) / 97)
		var beacon func()
		beacon = func() {
			stats.Beacons++
			stats.Checksum = fold(stats.Checksum, uint64(i))
			if next := engine.Now().Add(cfg.BeaconEvery); next <= horizon {
				if _, err := engine.Schedule(next, beacon); err != nil {
					return
				}
			}
		}
		if _, err := engine.Schedule(phase, beacon); err != nil {
			return nil, err
		}
	}

	if err := engine.Run(horizon); err != nil {
		return nil, err
	}
	stats.EventsProcessed = engine.Processed()
	tiles, occupied, maxOcc := spatial.TileStats()
	stats.Tiles, stats.OccupiedTiles, stats.MaxTileOccupancy = tiles, occupied, int(maxOcc)
	return stats, nil
}

// generateFleet builds a random-waypoint trace per vehicle over a square
// city sized for constant density, with ignition churn: vehicles park
// (ignition off) between some trips. Everything derives from cfg.Seed.
func generateFleet(cfg Config) (*mobility.TraceSet, float64, error) {
	sideM := math.Sqrt(float64(cfg.Vehicles)/cfg.DensityPerKm2) * 1000
	horizon := sim.Time(0).Add(cfg.Horizon)
	root := sim.NewRNG(cfg.Seed).Fork("fleet")
	traces := make([]mobility.Trace, cfg.Vehicles)
	for i := range traces {
		rng := root.Fork("vehicle")
		pos := roadnet.Point{X: rng.Range(0, sideM), Y: rng.Range(0, sideM)}
		on := rng.Bool(0.9)
		samples := []mobility.Sample{{T: 0, Pos: pos, On: on}}
		t := sim.Time(0)
		for t < horizon {
			if !on {
				// Parked: dwell in place, then restart the ignition.
				t = t.Add(sim.DurationSeconds(rng.Range(10, 60)))
				on = true
				samples = append(samples, mobility.Sample{T: t, Pos: pos, On: true})
				continue
			}
			if rng.Bool(0.15) {
				// Park here: the off state holds until the dwell branch
				// above turns the vehicle back on.
				t = t.Add(sim.DurationSeconds(rng.Range(20, 90)))
				on = false
				samples = append(samples, mobility.Sample{T: t, Pos: pos, On: false})
				continue
			}
			target := roadnet.Point{X: rng.Range(0, sideM), Y: rng.Range(0, sideM)}
			speed := rng.Range(8, 20) // m/s: urban driving
			dur := pos.Dist(target) / speed
			if dur < 1 {
				dur = 1
			}
			t = t.Add(sim.DurationSeconds(dur))
			pos = target
			samples = append(samples, mobility.Sample{T: t, Pos: pos, On: true})
		}
		traces[i] = mobility.Trace{Vehicle: i, Samples: samples}
	}
	ts := &mobility.TraceSet{Traces: traces, Horizon: horizon}
	if err := ts.Validate(); err != nil {
		return nil, 0, err
	}
	return ts, sideM, nil
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fold mixes v into a running FNV-1a-style checksum.
func fold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}
