// Package repro contains the paper-reproduction harness: one entry point
// per table/figure of the evaluation (§5.2), plus the ablation sweeps the
// paper motivates verbally. cmd/figures renders these as CSV and terminal
// charts; bench_test.go wraps them as benchmarks; the shape tests assert
// the qualitative results (who wins, by roughly what factor).
//
// The experiment index lives in DESIGN.md; paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"

	"roadrunner/internal/core"
	"roadrunner/internal/dataset"
	"roadrunner/internal/faults"
	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
)

// Fig4Output bundles everything the paper's Figure 4 reports: accuracy
// curves for BASE and OPP, the per-round V2X exchange counts, the average
// exchange count, and the two run end times.
type Fig4Output struct {
	Base *core.Result
	Opp  *core.Result

	// BaseEnd and OppEnd are the instants the respective 75-round runs
	// completed (paper: 3592 s and 16342 s).
	BaseEnd sim.Time
	OppEnd  sim.Time
	// AvgExchanges is the mean V2X exchange count per OPP round (paper:
	// "just below 10").
	AvgExchanges float64
	// BaseAccuracy and OppAccuracy are late-run accuracies (mean of the
	// last few rounds, to smooth the noisy curves).
	BaseAccuracy float64
	OppAccuracy  float64
	// AccuracyGain is OppAccuracy/BaseAccuracy - 1 (paper: ≈ +50%).
	AccuracyGain float64
	// TimeRatio is OppEnd/BaseEnd (paper: ≈ 4.5x).
	TimeRatio float64
}

// Fig4 reproduces the paper's evaluation experiment: BASE (FL, 30 s rounds)
// versus OPP (200 s rounds with V2X forwarding) on the same environment,
// fleet, data distribution, and V2C budget. rounds scales the experiment
// (the paper uses 75); seed fixes all randomness.
func Fig4(rounds int, seed uint64) (*Fig4Output, error) {
	return Fig4Workers(rounds, seed, 0)
}

// Fig4Workers is Fig4 with the test-set evaluation worker count set:
// values above 1 enable the shard-deterministic parallel evaluator, which
// changes throughput but not a single recorded byte (0 or 1 = serial).
func Fig4Workers(rounds int, seed uint64, evalWorkers int) (*Fig4Output, error) {
	baseRes, err := fig4Base(rounds, seed, evalWorkers)
	if err != nil {
		return nil, err
	}
	oppRes, err := fig4Opp(rounds, seed, evalWorkers)
	if err != nil {
		return nil, err
	}

	out := &Fig4Output{
		Base:         baseRes,
		Opp:          oppRes,
		BaseEnd:      baseRes.End,
		OppEnd:       oppRes.End,
		BaseAccuracy: LateAccuracy(baseRes, 3),
		OppAccuracy:  LateAccuracy(oppRes, 3),
	}
	if ex := oppRes.Metrics.Series(metrics.SeriesRoundExchanges); ex != nil {
		out.AvgExchanges = ex.Mean()
	}
	if out.BaseAccuracy > 0 {
		out.AccuracyGain = out.OppAccuracy/out.BaseAccuracy - 1
	}
	if out.BaseEnd > 0 {
		out.TimeRatio = float64(out.OppEnd) / float64(out.BaseEnd)
	}
	return out, nil
}

// Fig4Base runs only the BASE (vanilla FL) side of Figure 4.
func Fig4Base(rounds int, seed uint64) (*core.Result, error) {
	return fig4Base(rounds, seed, 0)
}

func fig4Base(rounds int, seed uint64, evalWorkers int) (*core.Result, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("repro: non-positive round count %d", rounds)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.EvalWorkers = evalWorkers
	fa := strategy.DefaultFedAvgConfig()
	fa.Rounds = rounds
	s, err := strategy.NewFederatedAveraging(fa)
	if err != nil {
		return nil, err
	}
	res, err := run(cfg, s)
	if err != nil {
		return nil, fmt.Errorf("repro: fig4 BASE: %w", err)
	}
	return res, nil
}

// Fig4Opp runs only the OPP side of Figure 4.
func Fig4Opp(rounds int, seed uint64) (*core.Result, error) {
	return fig4Opp(rounds, seed, 0)
}

func fig4Opp(rounds int, seed uint64, evalWorkers int) (*core.Result, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("repro: non-positive round count %d", rounds)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.EvalWorkers = evalWorkers
	oc := strategy.DefaultOppConfig()
	oc.Rounds = rounds
	s, err := strategy.NewOpportunistic(oc)
	if err != nil {
		return nil, err
	}
	res, err := run(cfg, s)
	if err != nil {
		return nil, fmt.Errorf("repro: fig4 OPP: %w", err)
	}
	return res, nil
}

func run(cfg core.Config, s strategy.Strategy) (*core.Result, error) {
	exp, err := core.New(cfg, s)
	if err != nil {
		return nil, err
	}
	return exp.Run()
}

// LateAccuracy returns the mean of the last k accuracy points (the curves
// are noisy at high skew, so single-point finals are unstable).
func LateAccuracy(res *core.Result, k int) float64 {
	s := res.Metrics.Series(metrics.SeriesAccuracy)
	if s == nil || s.Len() == 0 {
		return 0
	}
	n := s.Len()
	if k > n {
		k = n
	}
	sum := 0.0
	for _, p := range s.Points[n-k:] {
		sum += p.Value
	}
	return sum / float64(k)
}

// Row is one parameter point of an ablation sweep.
type Row struct {
	Param        string  `json:"param"`
	FinalAcc     float64 `json:"final_acc"`
	AvgExchanges float64 `json:"avg_exchanges"`
	AvgContribs  float64 `json:"avg_contribs"`
	SimEnd       float64 `json:"sim_end_s"`
	V2CMB        float64 `json:"v2c_mb"`
	V2XMB        float64 `json:"v2x_mb"`
	Discarded    float64 `json:"discarded_models"`
}

func rowFrom(param string, res *core.Result) Row {
	r := Row{
		Param:     param,
		FinalAcc:  LateAccuracy(res, 3),
		SimEnd:    float64(res.End),
		V2CMB:     float64(res.Comm["v2c"].BytesDelivered) / 1e6,
		V2XMB:     float64(res.Comm["v2x"].BytesDelivered) / 1e6,
		Discarded: res.Metrics.Counter(metrics.CounterDiscardedModels),
	}
	if ex := res.Metrics.Series(metrics.SeriesRoundExchanges); ex != nil {
		r.AvgExchanges = ex.Mean()
	}
	if c := res.Metrics.Series(metrics.SeriesRoundContributions); c != nil {
		r.AvgContribs = c.Mean()
	}
	return r
}

// AblationRoundDuration sweeps OPP's round duration (paper §5.2: "a longer
// round duration will give more opportunities for local aggregation of
// weights ... [but] increase the duration of the whole learning process,
// and increase the probability that a reporter vehicle is turned off").
func AblationRoundDuration(rounds int, seed uint64, durations []sim.Duration) ([]Row, error) {
	var rows []Row
	for _, d := range durations {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		oc := strategy.DefaultOppConfig()
		oc.Rounds = rounds
		oc.RoundDuration = d
		s, err := strategy.NewOpportunistic(oc)
		if err != nil {
			return nil, err
		}
		res, err := run(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation A (duration %v): %w", d, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("%.0fs", float64(d)), res))
	}
	return rows, nil
}

// AblationReporters sweeps the per-round reporter count (the V2C budget
// knob; the paper cites McMahan et al.: more participants per round can
// raise accuracy, at proportional cellular cost).
func AblationReporters(rounds int, seed uint64, counts []int) ([]Row, error) {
	var rows []Row
	for _, r := range counts {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		oc := strategy.DefaultOppConfig()
		oc.Rounds = rounds
		oc.Reporters = r
		s, err := strategy.NewOpportunistic(oc)
		if err != nil {
			return nil, err
		}
		res, err := run(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation B (reporters %d): %w", r, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("R=%d", r), res))
	}
	return rows, nil
}

// AblationV2XRange sweeps the V2X radio range (the vehicle-density proxy;
// paper §5.2: OPP is "highly dependent on the density of vehicles").
func AblationV2XRange(rounds int, seed uint64, ranges []float64) ([]Row, error) {
	var rows []Row
	for _, rangeM := range ranges {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Comm.V2X.RangeM = rangeM
		oc := strategy.DefaultOppConfig()
		oc.Rounds = rounds
		s, err := strategy.NewOpportunistic(oc)
		if err != nil {
			return nil, err
		}
		res, err := run(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation C (range %v): %w", rangeM, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("%.0fm", rangeM), res))
	}
	return rows, nil
}

// SkewPoint pairs BASE and OPP results under one data distribution.
type SkewPoint struct {
	Param   string  `json:"param"`
	BaseAcc float64 `json:"base_acc"`
	OppAcc  float64 `json:"opp_acc"`
}

// AblationSkew sweeps the per-vehicle class skew for both strategies
// (the paper chooses "a highly skewed distribution ... to emulate the
// real-world scenario of highly personalized data"; this sweep shows what
// that choice costs FL and how extra contributions mitigate it).
func AblationSkew(rounds int, seed uint64, parts []dataset.PartitionConfig) ([]SkewPoint, error) {
	var rows []SkewPoint
	for _, pc := range parts {
		label := pc.Scheme.String()
		if pc.Scheme == dataset.SchemeShards {
			label = fmt.Sprintf("shards=%d", pc.ShardsPerAgent)
		}

		baseCfg := core.DefaultConfig()
		baseCfg.Seed = seed
		baseCfg.Partition = pc
		fa := strategy.DefaultFedAvgConfig()
		fa.Rounds = rounds
		fs, err := strategy.NewFederatedAveraging(fa)
		if err != nil {
			return nil, err
		}
		baseRes, err := run(baseCfg, fs)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation D BASE (%s): %w", label, err)
		}

		oppCfg := core.DefaultConfig()
		oppCfg.Seed = seed
		oppCfg.Partition = pc
		oc := strategy.DefaultOppConfig()
		oc.Rounds = rounds
		os, err := strategy.NewOpportunistic(oc)
		if err != nil {
			return nil, err
		}
		oppRes, err := run(oppCfg, os)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation D OPP (%s): %w", label, err)
		}
		rows = append(rows, SkewPoint{
			Param:   label,
			BaseAcc: LateAccuracy(baseRes, 3),
			OppAcc:  LateAccuracy(oppRes, 3),
		})
	}
	return rows, nil
}

// AblationChurn sweeps driver ignition churn (paper §5.2: a longer round
// increases "the probability that a reporter vehicle is turned off by the
// driver before a round ends, effectively discarding the models collected
// by this reporter").
func AblationChurn(rounds int, seed uint64, offProbs []float64) ([]Row, error) {
	var rows []Row
	for _, p := range offProbs {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Fleet.OffWhenParkedProb = p
		oc := strategy.DefaultOppConfig()
		oc.Rounds = rounds
		s, err := strategy.NewOpportunistic(oc)
		if err != nil {
			return nil, err
		}
		res, err := run(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation E (off prob %v): %w", p, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("p_off=%.1f", p), res))
	}
	return rows, nil
}

// DefaultSkewSweep is the ablation-D parameter set: pathological 1-shard
// skew, the paper's 2-shard skew, milder 5-shard, and IID.
func DefaultSkewSweep() []dataset.PartitionConfig {
	return []dataset.PartitionConfig{
		{Scheme: dataset.SchemeShards, PerAgent: 80, ShardsPerAgent: 1},
		{Scheme: dataset.SchemeShards, PerAgent: 80, ShardsPerAgent: 2},
		{Scheme: dataset.SchemeShards, PerAgent: 80, ShardsPerAgent: 5},
		{Scheme: dataset.SchemeIID, PerAgent: 80},
	}
}

// DefaultFaultSweep lists the scenarios ablation G runs: every named fault
// scenario except rsu-outage, since the paper's Figure-4 environment
// deploys no road-side units for an outage to hit.
func DefaultFaultSweep() []string {
	return []string{
		faults.ScenarioBlackout, faults.ScenarioBurstLoss,
		faults.ScenarioDegraded, faults.ScenarioChurnStorm, faults.ScenarioMixed,
	}
}

// FaultPoint is one (strategy, scenario) cell of the fault ablation.
type FaultPoint struct {
	Scenario string  `json:"scenario"`
	Strategy string  `json:"strategy"`
	FinalAcc float64 `json:"final_acc"`
	// Faults counts fault-attributed events (blackout failures, burst
	// drops, link kills, forced power-offs) recorded during the run.
	Faults float64 `json:"faults"`
	SimEnd float64 `json:"sim_end_s"`
	V2CMB  float64 `json:"v2c_mb"`
	V2XMB  float64 `json:"v2x_mb"`
}

// AblationFaults runs BASE and OPP fault-free and under every named fault
// scenario of internal/faults (the degradation axis the paper's framework
// motivates but its prototype never exercises: "communication may fail at
// any time", §3). Scenario windows are scaled to each strategy's own
// fault-free span, so the faults land inside the learning process for both
// the short BASE runs and the ~4.5x longer OPP runs.
func AblationFaults(rounds int, seed uint64, scenarios []string) ([]FaultPoint, error) {
	var points []FaultPoint
	cases := []struct {
		name string
		run  func(plan *faults.Plan) (*core.Result, error)
	}{
		{"BASE", func(plan *faults.Plan) (*core.Result, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Faults = plan
			fa := strategy.DefaultFedAvgConfig()
			fa.Rounds = rounds
			s, err := strategy.NewFederatedAveraging(fa)
			if err != nil {
				return nil, err
			}
			return run(cfg, s)
		}},
		{"OPP", func(plan *faults.Plan) (*core.Result, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Faults = plan
			oc := strategy.DefaultOppConfig()
			oc.Rounds = rounds
			s, err := strategy.NewOpportunistic(oc)
			if err != nil {
				return nil, err
			}
			return run(cfg, s)
		}},
	}
	for _, c := range cases {
		clean, err := c.run(nil)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation G %s fault-free: %w", c.name, err)
		}
		points = append(points, faultPoint("fault-free", c.name, clean))
		span := sim.Duration(clean.End)
		for _, sc := range scenarios {
			plan, err := faults.ScenarioPlan(sc, span)
			if err != nil {
				return nil, fmt.Errorf("repro: ablation G: %w", err)
			}
			res, err := c.run(&plan)
			if err != nil {
				return nil, fmt.Errorf("repro: ablation G %s/%s: %w", c.name, sc, err)
			}
			points = append(points, faultPoint(sc, c.name, res))
		}
	}
	return points, nil
}

func faultPoint(scenario, strategyName string, res *core.Result) FaultPoint {
	faultCount := res.Metrics.Counter(metrics.CounterFaultBlackoutFails) +
		res.Metrics.Counter(metrics.CounterFaultBurstDrops) +
		res.Metrics.Counter(metrics.CounterFaultLinkKills) +
		res.Metrics.Counter(metrics.CounterFaultForcedOff)
	return FaultPoint{
		Scenario: scenario,
		Strategy: strategyName,
		FinalAcc: LateAccuracy(res, 3),
		Faults:   faultCount,
		SimEnd:   float64(res.End),
		V2CMB:    float64(res.Comm["v2c"].BytesDelivered) / 1e6,
		V2XMB:    float64(res.Comm["v2x"].BytesDelivered) / 1e6,
	}
}

// AblationRSUCount sweeps the road-side-unit deployment density for the
// RSU-assisted strategy (an extension beyond the paper's prototype: its
// Figure 1 includes RSUs but the evaluation never exercises them). More
// RSUs mean more collection points — accuracy rises with deployment cost,
// while the metered V2C channel stays at zero.
func AblationRSUCount(rounds int, seed uint64, counts []int) ([]Row, error) {
	var rows []Row
	for _, n := range counts {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.RSUCount = n
		rc := strategy.DefaultRSUAssistedConfig()
		rc.Rounds = rounds
		s, err := strategy.NewRSUAssisted(rc)
		if err != nil {
			return nil, err
		}
		res, err := run(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation F (%d RSUs): %w", n, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("RSUs=%d", n), res))
	}
	return rows, nil
}
