package repro

import (
	"runtime"
	"testing"

	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
)

// TestRunParallelRace floods RunParallel with at least twice GOMAXPROCS
// jobs so the worker pool, the shared result slice, and each job's
// metrics recorder are exercised under real contention. Its assertions
// are deliberately light — the test exists for the race detector
// (make race / go test -race ./...), which fails the run on any unsynchronized
// access regardless of assertion outcomes.
func TestRunParallelRace(t *testing.T) {
	workers := 2 * runtime.GOMAXPROCS(0)
	n := workers + 2 // more jobs than workers: the feed channel blocks and hands off
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	jobs := SeedSweep("race", core.SmallConfig(), seeds, smallFedAvgFactory)

	results := RunParallel(workers, jobs)
	if len(results) != n {
		t.Fatalf("got %d results for %d jobs", len(results), n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, r.Name, r.Err)
		}
		if r.Result == nil {
			t.Fatalf("job %d (%s): missing result", i, r.Name)
		}
		if r.Result.Metrics.Counter(metrics.CounterRounds) <= 0 {
			t.Fatalf("job %d (%s): no rounds completed", i, r.Name)
		}
	}
}
