package repro

import (
	"fmt"

	"roadrunner/internal/campaign"
	"roadrunner/internal/core"
	"roadrunner/internal/strategy"
)

// Job is one experiment of a sweep: a configuration plus a strategy
// factory (strategies are stateful, so each run needs a fresh instance).
type Job struct {
	// Name labels the job in results.
	Name string
	// Config is the experiment configuration (including its seed).
	Config core.Config
	// NewStrategy constructs the job's strategy.
	NewStrategy func() (strategy.Strategy, error)
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Name   string
	Result *core.Result
	Err    error
}

// RunParallel executes independent experiments concurrently — the paper's
// stated future-work item ("increasing the parallelism of the simulation
// to speed up learning strategy development iterations"). Each experiment
// is fully self-contained (own engine, RNG streams, data, metrics), so
// parallelism is across runs, preserving each run's determinism exactly:
// a job's result is byte-identical whether the sweep runs on 1 worker or
// 16.
//
// The worker pool itself now lives in internal/campaign; this is a shim
// kept for the historical sweep API. Jobs carry opaque strategy factories
// that cannot be content-addressed, so they execute uncached and exactly
// once — declarative campaigns (campaign.Manifest) get caching and retry
// on top of the same pool.
//
// parallelism <= 0 selects GOMAXPROCS. Results are returned in job order.
func RunParallel(parallelism int, jobs []Job) []JobResult {
	tasks := make([]campaign.Task, len(jobs))
	for i, job := range jobs {
		job := job
		tasks[i] = campaign.Task{
			Name: job.Name,
			Run:  func() (*core.Result, error) { return runJob(job) },
		}
	}
	sched := campaign.NewScheduler(campaign.Options{Workers: parallelism, MaxAttempts: 1})
	results := make([]JobResult, len(jobs))
	for i, tr := range sched.Execute(tasks) {
		results[i] = JobResult{Name: tr.Name, Result: tr.Result, Err: tr.Err}
	}
	return results
}

func runJob(job Job) (*core.Result, error) {
	if job.NewStrategy == nil {
		return nil, fmt.Errorf("repro: job %q has no strategy factory", job.Name)
	}
	strat, err := job.NewStrategy()
	if err != nil {
		return nil, fmt.Errorf("repro: job %q: build strategy: %w", job.Name, err)
	}
	exp, err := core.New(job.Config, strat)
	if err != nil {
		return nil, fmt.Errorf("repro: job %q: %w", job.Name, err)
	}
	res, err := exp.Run()
	if err != nil {
		return nil, fmt.Errorf("repro: job %q: %w", job.Name, err)
	}
	return res, nil
}

// SeedSweep builds jobs replicating one configuration across seeds — the
// common "same strategy, N seeds" robustness sweep.
func SeedSweep(name string, cfg core.Config, seeds []uint64, factory func() (strategy.Strategy, error)) []Job {
	jobs := make([]Job, 0, len(seeds))
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		jobs = append(jobs, Job{
			Name:        fmt.Sprintf("%s/seed=%d", name, seed),
			Config:      c,
			NewStrategy: factory,
		})
	}
	return jobs
}
