package repro

import (
	"fmt"
	"runtime"
	"sync"

	"roadrunner/internal/core"
	"roadrunner/internal/strategy"
)

// Job is one experiment of a sweep: a configuration plus a strategy
// factory (strategies are stateful, so each run needs a fresh instance).
type Job struct {
	// Name labels the job in results.
	Name string
	// Config is the experiment configuration (including its seed).
	Config core.Config
	// NewStrategy constructs the job's strategy.
	NewStrategy func() (strategy.Strategy, error)
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Name   string
	Result *core.Result
	Err    error
}

// RunParallel executes independent experiments concurrently — the paper's
// stated future-work item ("increasing the parallelism of the simulation
// to speed up learning strategy development iterations"). Each experiment
// is fully self-contained (own engine, RNG streams, data, metrics), so
// parallelism is across runs, preserving each run's determinism exactly:
// a job's result is byte-identical whether the sweep runs on 1 worker or
// 16.
//
// parallelism <= 0 selects GOMAXPROCS. Results are returned in job order.
func RunParallel(parallelism int, jobs []Job) []JobResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				results[idx] = runJob(jobs[idx])
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

func runJob(job Job) JobResult {
	out := JobResult{Name: job.Name}
	if job.NewStrategy == nil {
		out.Err = fmt.Errorf("repro: job %q has no strategy factory", job.Name)
		return out
	}
	strat, err := job.NewStrategy()
	if err != nil {
		out.Err = fmt.Errorf("repro: job %q: build strategy: %w", job.Name, err)
		return out
	}
	exp, err := core.New(job.Config, strat)
	if err != nil {
		out.Err = fmt.Errorf("repro: job %q: %w", job.Name, err)
		return out
	}
	res, err := exp.Run()
	if err != nil {
		out.Err = fmt.Errorf("repro: job %q: %w", job.Name, err)
		return out
	}
	out.Result = res
	return out
}

// SeedSweep builds jobs replicating one configuration across seeds — the
// common "same strategy, N seeds" robustness sweep.
func SeedSweep(name string, cfg core.Config, seeds []uint64, factory func() (strategy.Strategy, error)) []Job {
	jobs := make([]Job, 0, len(seeds))
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		jobs = append(jobs, Job{
			Name:        fmt.Sprintf("%s/seed=%d", name, seed),
			Config:      c,
			NewStrategy: factory,
		})
	}
	return jobs
}
