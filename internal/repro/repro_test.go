package repro

import (
	"testing"

	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

// TestFigure4Shape asserts the qualitative content of the paper's Figure 4
// at reduced round count: OPP reaches higher accuracy than BASE at the same
// V2C budget, takes ~4.5x as long, and collects 0-20 (avg ~10) V2X
// exchanges per round.
func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment; skipped in -short mode")
	}
	const rounds = 12
	out, err := Fig4(rounds, 1)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}

	// Timing: the paper's totals imply round length = duration + 17.893 s
	// overhead; BASE 47.9 s/round, OPP 217.9 s/round, ratio 4.55.
	wantBaseEnd := float64(rounds) * 47.893
	if rel(float64(out.BaseEnd), wantBaseEnd) > 0.05 {
		t.Errorf("BASE end = %v, want ≈ %v", out.BaseEnd, wantBaseEnd)
	}
	wantRatio := 217.893 / 47.893
	if rel(out.TimeRatio, wantRatio) > 0.10 {
		t.Errorf("time ratio = %v, want ≈ %v (paper: 4.5x)", out.TimeRatio, wantRatio)
	}

	// Exchanges: 0-20 per round, average near 10.
	ex := out.Opp.Metrics.Series(metrics.SeriesRoundExchanges)
	if ex == nil || ex.Len() != rounds {
		t.Fatalf("exchange series missing or wrong length: %v", ex)
	}
	for _, p := range ex.Points {
		if p.Value < 0 || p.Value > 40 {
			t.Errorf("round exchange count %v outside plausible range", p.Value)
		}
	}
	if out.AvgExchanges < 3 || out.AvgExchanges > 25 {
		t.Errorf("avg exchanges = %v, want near the paper's ~10", out.AvgExchanges)
	}

	// Accuracy: OPP must beat BASE, both above chance (0.1).
	if out.OppAccuracy <= out.BaseAccuracy {
		t.Errorf("OPP accuracy %v not above BASE %v", out.OppAccuracy, out.BaseAccuracy)
	}
	if out.OppAccuracy < 0.12 {
		t.Errorf("OPP accuracy %v not above chance", out.OppAccuracy)
	}

	// V2C budget parity: same number of rounds and reporters means message
	// counts within churn slack.
	b, o := out.Base.Comm["v2c"].MessagesSent, out.Opp.Comm["v2c"].MessagesSent
	if o > b*3/2 || b > o*3/2 {
		t.Errorf("V2C budget mismatch: BASE %d msgs, OPP %d msgs", b, o)
	}
}

func rel(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got/want - 1
	if d < 0 {
		d = -d
	}
	return d
}

func TestFig4Validation(t *testing.T) {
	if _, err := Fig4(0, 1); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestAblationRoundDurationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment; skipped in -short mode")
	}
	rows, err := AblationRoundDuration(3, 1, []sim.Duration{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Longer rounds take more simulated time and gather at least as many
	// exchange opportunities on average.
	if rows[1].SimEnd <= rows[0].SimEnd {
		t.Errorf("400s rounds ended at %v, 50s at %v; want longer", rows[1].SimEnd, rows[0].SimEnd)
	}
	for _, r := range rows {
		if r.FinalAcc < 0 || r.FinalAcc > 1 {
			t.Errorf("%s: accuracy %v out of range", r.Param, r.FinalAcc)
		}
	}
}

func TestAblationChurnDiscardsGrowWithOffProb(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment; skipped in -short mode")
	}
	rows, err := AblationChurn(4, 1, []float64{0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Discarded < rows[0].Discarded {
		t.Errorf("high churn discarded %v models, low churn %v; want monotone",
			rows[1].Discarded, rows[0].Discarded)
	}
}

func TestLateAccuracyEmpty(t *testing.T) {
	out, err := Fig4(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := LateAccuracy(out.Base, 5); got < 0 || got > 1 {
		t.Fatalf("LateAccuracy = %v", got)
	}
}

func TestDefaultSkewSweep(t *testing.T) {
	sweep := DefaultSkewSweep()
	if len(sweep) != 4 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	for i, pc := range sweep {
		if err := pc.Validate(); err != nil {
			t.Errorf("sweep point %d invalid: %v", i, err)
		}
	}
}
