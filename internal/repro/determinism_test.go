package repro

import (
	"bytes"
	"testing"

	"roadrunner/internal/core"
)

// runOnce executes one small experiment and returns its canonical bytes.
func runOnce(t *testing.T, seed uint64) []byte {
	t.Helper()
	cfg := core.SmallConfig()
	cfg.Seed = seed
	strat, err := smallFedAvgFactory()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := core.New(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// firstDiff locates the first differing byte for a readable failure.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestSameSeedByteIdentical is the determinism regression test for paper
// requirement 6: identical (config, seed) must reproduce the experiment
// byte for byte. Any nondeterminism the roadlint analyzers guard against
// — a stray math/rand draw, wall-clock coupling, unsorted map iteration
// feeding simulation state — surfaces here as a byte mismatch.
func TestSameSeedByteIdentical(t *testing.T) {
	a := runOnce(t, 11)
	b := runOnce(t, 11)
	if !bytes.Equal(a, b) {
		i := firstDiff(a, b)
		t.Fatalf("same seed diverged at byte %d:\n...%q\nvs\n...%q",
			i, clip(a, i), clip(b, i))
	}
	if other := runOnce(t, 12); bytes.Equal(a, other) {
		t.Fatal("different seeds produced byte-identical results")
	}
}

// TestRunParallelWorkerCountInvariant re-runs one sweep under different
// worker counts and requires every job's canonical serialization to be
// byte-identical: parallelism is across runs and must never leak into
// any single run's results.
func TestRunParallelWorkerCountInvariant(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	canonical := func(workers int) [][]byte {
		jobs := SeedSweep("fedavg", core.SmallConfig(), seeds, smallFedAvgFactory)
		results := RunParallel(workers, jobs)
		out := make([][]byte, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %s: %v", workers, r.Name, r.Err)
			}
			b, err := r.Result.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}
	base := canonical(1)
	for _, workers := range []int{2, 4} {
		got := canonical(workers)
		for i := range base {
			if !bytes.Equal(base[i], got[i]) {
				d := firstDiff(base[i], got[i])
				t.Fatalf("seed %d differs between 1 and %d workers at byte %d:\n...%q\nvs\n...%q",
					seeds[i], workers, d, clip(base[i], d), clip(got[i], d))
			}
		}
	}
}

// clip returns a short window of b around offset i for error messages.
func clip(b []byte, i int) []byte {
	lo, hi := i-20, i+20
	if lo < 0 {
		lo = 0
	}
	if hi > len(b) {
		hi = len(b)
	}
	return b[lo:hi]
}
