package repro

import (
	"bytes"
	"runtime"
	"testing"

	"roadrunner/internal/core"
)

// runOnceEval executes one small experiment with the given evaluation
// worker count and returns its canonical bytes.
func runOnceEval(t *testing.T, seed uint64, evalWorkers int) []byte {
	t.Helper()
	cfg := core.SmallConfig()
	cfg.Seed = seed
	cfg.EvalWorkers = evalWorkers
	strat, err := smallFedAvgFactory()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := core.New(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelEvalMatchesSerial requires that turning on shard-parallel
// test-set evaluation changes nothing about an experiment's canonical
// result: recorded accuracies are integer ratios over a fixed shard grid,
// so EvalWorkers is a pure throughput knob.
func TestParallelEvalMatchesSerial(t *testing.T) {
	serial := runOnceEval(t, 11, 0)
	for _, workers := range []int{1, 2, 4} {
		got := runOnceEval(t, 11, workers)
		if !bytes.Equal(serial, got) {
			i := firstDiff(serial, got)
			t.Fatalf("EvalWorkers=%d diverged from serial at byte %d:\n...%q\nvs\n...%q",
				workers, i, clip(serial, i), clip(got, i))
		}
	}
}

// TestParallelEvalGOMAXPROCSInvariant runs the same seeded experiment with
// parallel evaluation enabled under GOMAXPROCS 1, 2, and 4 and requires
// byte-identical canonical results: the scheduler may interleave the
// evaluation goroutines any way it likes without touching the outcome.
func TestParallelEvalGOMAXPROCSInvariant(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var base []byte
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		got := runOnceEval(t, 13, 4)
		if base == nil {
			base = got
			continue
		}
		if !bytes.Equal(base, got) {
			i := firstDiff(base, got)
			t.Fatalf("GOMAXPROCS=%d diverged at byte %d:\n...%q\nvs\n...%q",
				procs, i, clip(base, i), clip(got, i))
		}
	}
}
