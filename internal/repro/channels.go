package repro

import (
	"bytes"
	"fmt"

	"roadrunner/internal/channel"
	"roadrunner/internal/core"
	"roadrunner/internal/strategy"
)

// ChannelPoint is one (strategy, channel-model) cell of ablation H.
type ChannelPoint struct {
	Model    string  `json:"model"`
	Strategy string  `json:"strategy"`
	FinalAcc float64 `json:"final_acc"`
	SimEnd   float64 `json:"sim_end_s"`
	V2CMB    float64 `json:"v2c_mb"`
	V2XMB    float64 `json:"v2x_mb"`
	// FailedMsgs counts failed transfers over the two radio kinds — the
	// visible cost of outage, fading, and fitted loss fractions.
	FailedMsgs float64 `json:"failed_msgs"`
}

// DefaultChannelSweep names ablation H's model axis in run order.
func DefaultChannelSweep() []string {
	return []string{channel.ModelAnalytic, channel.ModelRadio, channel.ModelRadioQueued, channel.ModelOracle}
}

// AblationChannels runs BASE and OPP under every channel model (ablation H:
// the channel-realism axis the paper's flat transfer-time model cannot
// express). The oracle column exercises the DRIVE-style pipeline end to
// end: the radio runs record channel traces, the traces round-trip through
// the canonical chantrace CSV, the fitter bins them into an indicator
// table, the table round-trips through the chantable CSV, and the oracle
// runs replay it. Everything derives from (rounds, seed), so the whole
// sweep is deterministic.
func AblationChannels(rounds int, seed uint64) ([]ChannelPoint, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("repro: non-positive round count %d", rounds)
	}
	cases := []struct {
		name string
		make func() (strategy.Strategy, error)
	}{
		{"BASE", func() (strategy.Strategy, error) {
			fa := strategy.DefaultFedAvgConfig()
			fa.Rounds = rounds
			return strategy.NewFederatedAveraging(fa)
		}},
		{"OPP", func() (strategy.Strategy, error) {
			oc := strategy.DefaultOppConfig()
			oc.Rounds = rounds
			return strategy.NewOpportunistic(oc)
		}},
	}
	runWith := func(mk func() (strategy.Strategy, error), ch *channel.Config, record bool) (*core.Result, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Comm.Channel = ch
		cfg.ChannelRecord = record
		s, err := mk()
		if err != nil {
			return nil, err
		}
		return run(cfg, s)
	}

	radio := &channel.Config{Model: channel.ModelRadio}
	radioQueued := &channel.Config{Model: channel.ModelRadioQueued}

	// Pass 1: the analytic baseline and the two synthetic radio stacks; the
	// radio runs double as the oracle's measurement campaign (BASE supplies
	// V2C samples, OPP adds V2X).
	results := make(map[string]map[string]*core.Result, len(cases))
	var samples []channel.Sample
	for _, c := range cases {
		results[c.name] = make(map[string]*core.Result, 4)
		analytic, err := runWith(c.make, nil, false)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation H %s/analytic: %w", c.name, err)
		}
		results[c.name][channel.ModelAnalytic] = analytic
		radioRes, err := runWith(c.make, radio, true)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation H %s/radio: %w", c.name, err)
		}
		results[c.name][channel.ModelRadio] = radioRes
		if radioRes.ChannelLog == nil || radioRes.ChannelLog.Len() == 0 {
			return nil, fmt.Errorf("repro: ablation H %s/radio recorded no channel samples", c.name)
		}
		samples = append(samples, radioRes.ChannelLog.Samples()...)
		rq, err := runWith(c.make, radioQueued, false)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation H %s/radio+queued: %w", c.name, err)
		}
		results[c.name][channel.ModelRadioQueued] = rq
	}

	// Fit the oracle, round-tripping both canonical CSV forms so the
	// ablation exercises the exact record → fit → replay pipeline a user
	// runs through files and cmd/chanfit.
	table, err := fitThroughCSV(samples)
	if err != nil {
		return nil, fmt.Errorf("repro: ablation H oracle fit: %w", err)
	}
	oracle := &channel.Config{
		Model:  channel.ModelOracle,
		Oracle: &channel.OracleConfig{Table: table.Bins},
	}

	// Pass 2: replay the fitted table under both strategies.
	for _, c := range cases {
		res, err := runWith(c.make, oracle, false)
		if err != nil {
			return nil, fmt.Errorf("repro: ablation H %s/oracle: %w", c.name, err)
		}
		results[c.name][channel.ModelOracle] = res
	}

	var points []ChannelPoint
	for _, c := range cases {
		for _, model := range DefaultChannelSweep() {
			res := results[c.name][model]
			points = append(points, ChannelPoint{
				Model:    model,
				Strategy: c.name,
				FinalAcc: LateAccuracy(res, 3),
				SimEnd:   float64(res.End),
				V2CMB:    float64(res.Comm["v2c"].BytesDelivered) / 1e6,
				V2XMB:    float64(res.Comm["v2x"].BytesDelivered) / 1e6,
				FailedMsgs: float64(res.Comm["v2c"].MessagesFailed) +
					float64(res.Comm["v2x"].MessagesFailed),
			})
		}
	}
	return points, nil
}

// Fig4Channel runs the Figure-4 workload (BASE + OPP) under the given
// channel model — the bench channel-variant point. A nil config is the
// analytic default, making this a strict generalization of Fig4Workers.
func Fig4Channel(rounds int, seed uint64, evalWorkers int, ch *channel.Config) (*Fig4Output, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("repro: non-positive round count %d", rounds)
	}
	runOne := func(name string, mk func() (strategy.Strategy, error)) (*core.Result, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.EvalWorkers = evalWorkers
		cfg.Comm.Channel = ch
		s, err := mk()
		if err != nil {
			return nil, err
		}
		res, err := run(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("repro: fig4 %s (channel): %w", name, err)
		}
		return res, nil
	}
	base, err := runOne("BASE", func() (strategy.Strategy, error) {
		fa := strategy.DefaultFedAvgConfig()
		fa.Rounds = rounds
		return strategy.NewFederatedAveraging(fa)
	})
	if err != nil {
		return nil, err
	}
	opp, err := runOne("OPP", func() (strategy.Strategy, error) {
		oc := strategy.DefaultOppConfig()
		oc.Rounds = rounds
		return strategy.NewOpportunistic(oc)
	})
	if err != nil {
		return nil, err
	}
	return &Fig4Output{
		Base:    base,
		Opp:     opp,
		BaseEnd: base.End,
		OppEnd:  opp.End,
	}, nil
}

// fitThroughCSV serializes samples as a chantrace CSV, re-parses it, fits
// the indicator table, serializes that as a chantable CSV, and re-parses it
// — proving in-process what the file-based record/fit/replay workflow does.
func fitThroughCSV(samples []channel.Sample) (*channel.Table, error) {
	var traceBuf bytes.Buffer
	if err := channel.WriteTrace(&traceBuf, samples); err != nil {
		return nil, err
	}
	parsed, err := channel.ParseTrace(&traceBuf)
	if err != nil {
		return nil, err
	}
	table, err := channel.Fit(parsed, channel.DefaultFitConfig())
	if err != nil {
		return nil, err
	}
	var tableBuf bytes.Buffer
	if err := channel.WriteTable(&tableBuf, table); err != nil {
		return nil, err
	}
	return channel.ParseTable(&tableBuf)
}
