package repro

import (
	"testing"

	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/strategy"
)

func smallFedAvgFactory() (strategy.Strategy, error) {
	return strategy.NewFederatedAveraging(strategy.FedAvgConfig{
		Rounds:           4,
		VehiclesPerRound: 3,
		RoundDuration:    30,
		ServerOverhead:   10,
	})
}

func TestRunParallelMatchesSerial(t *testing.T) {
	jobs := SeedSweep("fedavg", core.SmallConfig(), []uint64{1, 2, 3, 4}, smallFedAvgFactory)

	serial := RunParallel(1, jobs)
	parallel := RunParallel(4, jobs)

	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errors: serial=%v parallel=%v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Name != parallel[i].Name {
			t.Fatalf("job %d order scrambled: %q vs %q", i, serial[i].Name, parallel[i].Name)
		}
		sa := serial[i].Result.Metrics.Series(metrics.SeriesAccuracy)
		pa := parallel[i].Result.Metrics.Series(metrics.SeriesAccuracy)
		if sa.Len() != pa.Len() {
			t.Fatalf("job %d: series lengths differ", i)
		}
		for j := range sa.Points {
			if sa.Points[j] != pa.Points[j] {
				t.Fatalf("job %d point %d differs between serial and parallel execution", i, j)
			}
		}
		if serial[i].Result.Comm["v2c"] != parallel[i].Result.Comm["v2c"] {
			t.Fatalf("job %d: comm stats differ between serial and parallel", i)
		}
	}
}

func TestRunParallelDistinctSeedsDiffer(t *testing.T) {
	jobs := SeedSweep("fedavg", core.SmallConfig(), []uint64{1, 2}, smallFedAvgFactory)
	results := RunParallel(2, jobs)
	a, b := results[0].Result, results[1].Result
	if a == nil || b == nil {
		t.Fatal("missing results")
	}
	if a.FinalAccuracy == b.FinalAccuracy && a.Comm["v2c"] == b.Comm["v2c"] {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunParallelPropagatesErrors(t *testing.T) {
	jobs := []Job{
		{Name: "no-factory", Config: core.SmallConfig()},
		{Name: "bad-strategy", Config: core.SmallConfig(), NewStrategy: func() (strategy.Strategy, error) {
			return strategy.NewFederatedAveraging(strategy.FedAvgConfig{})
		}},
		{Name: "bad-config", Config: core.Config{}, NewStrategy: smallFedAvgFactory},
	}
	results := RunParallel(0, jobs)
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("job %d (%s): expected error", i, r.Name)
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	if got := RunParallel(4, nil); len(got) != 0 {
		t.Fatalf("RunParallel(nil) = %v", got)
	}
}

func TestSeedSweepNames(t *testing.T) {
	jobs := SeedSweep("x", core.SmallConfig(), []uint64{7, 8}, smallFedAvgFactory)
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if jobs[0].Name != "x/seed=7" || jobs[1].Name != "x/seed=8" {
		t.Fatalf("names = %q, %q", jobs[0].Name, jobs[1].Name)
	}
	if jobs[0].Config.Seed != 7 || jobs[1].Config.Seed != 8 {
		t.Fatal("seeds not applied")
	}
}
