package repro

import (
	"testing"

	"roadrunner/internal/channel"
)

// TestAblationChannelsShape runs the channel ablation at tiny scale and
// asserts the structural contract: one point per (strategy, model) cell in
// sweep order, the oracle column derived from the radio runs' recorded
// traces, and the whole sweep deterministic — a repeat at the same seed
// reproduces every point exactly (the record → fit → replay pipeline is
// part of the determinism surface, not just the runs).
func TestAblationChannelsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment; skipped in -short mode")
	}
	const rounds = 2
	points, err := AblationChannels(rounds, 1)
	if err != nil {
		t.Fatalf("AblationChannels: %v", err)
	}
	sweep := DefaultChannelSweep()
	if want := 2 * len(sweep); len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	for i, p := range points {
		wantModel := sweep[i%len(sweep)]
		wantStrat := "BASE"
		if i >= len(sweep) {
			wantStrat = "OPP"
		}
		if p.Model != wantModel || p.Strategy != wantStrat {
			t.Errorf("point %d is %s/%s, want %s/%s", i, p.Strategy, p.Model, wantStrat, wantModel)
		}
		if p.FinalAcc < 0 || p.FinalAcc > 1 {
			t.Errorf("%s/%s: accuracy %v out of range", p.Strategy, p.Model, p.FinalAcc)
		}
		if p.SimEnd <= 0 {
			t.Errorf("%s/%s: non-positive sim end %v", p.Strategy, p.Model, p.SimEnd)
		}
		if p.V2CMB < 0 || p.V2XMB < 0 || p.FailedMsgs < 0 {
			t.Errorf("%s/%s: negative traffic stats %+v", p.Strategy, p.Model, p)
		}
	}

	again, err := AblationChannels(rounds, 1)
	if err != nil {
		t.Fatalf("AblationChannels repeat: %v", err)
	}
	for i := range points {
		if points[i] != again[i] {
			t.Errorf("point %d not reproducible: %+v vs %+v", i, points[i], again[i])
		}
	}
}

func TestAblationChannelsValidation(t *testing.T) {
	if _, err := AblationChannels(0, 1); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestDefaultChannelSweep(t *testing.T) {
	sweep := DefaultChannelSweep()
	if len(sweep) != 4 || sweep[0] != channel.ModelAnalytic || sweep[3] != channel.ModelOracle {
		t.Fatalf("sweep = %v", sweep)
	}
}
