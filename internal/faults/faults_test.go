package faults

import (
	"errors"
	"testing"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// rig is a minimal experiment stand-in: an engine, a registry with one
// server, two vehicles and one RSU, a no-drop network, and a recorder.
type rig struct {
	engine   *sim.Engine
	registry *sim.Registry
	network  *comm.Network
	recorder *metrics.Recorder
	pos      map[sim.AgentID]roadnet.Point

	server, v1, v2, rsu sim.AgentID

	delivered int
	failures  []error
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		engine:   sim.NewEngine(),
		recorder: metrics.NewRecorder(),
		pos:      map[sim.AgentID]roadnet.Point{},
	}
	r.registry = sim.NewRegistry(r.engine)
	params := comm.DefaultParams()
	params.V2C.DropProb = 0
	params.V2X.DropProb = 0
	params.Wired.DropProb = 0
	position := func(id sim.AgentID) (roadnet.Point, bool) {
		p, ok := r.pos[id]
		return p, ok
	}
	net, err := comm.NewNetwork(r.engine, r.registry, params, position, sim.NewRNG(7))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	net.OnDeliver(func(*comm.Message) { r.delivered++ })
	net.OnFail(func(_ *comm.Message, reason error) { r.failures = append(r.failures, reason) })
	r.network = net

	add := func(kind sim.AgentKind) sim.AgentID {
		a := r.registry.Add(kind)
		if err := r.registry.SetPower(a.ID, true); err != nil {
			t.Fatalf("SetPower: %v", err)
		}
		return a.ID
	}
	r.server = add(sim.KindCloudServer)
	r.v1 = add(sim.KindVehicle)
	r.v2 = add(sim.KindVehicle)
	r.rsu = add(sim.KindRSU)
	r.pos[r.v1] = roadnet.Point{X: 10, Y: 10}
	r.pos[r.v2] = roadnet.Point{X: 50, Y: 10}
	r.pos[r.rsu] = roadnet.Point{X: 30, Y: 10}
	return r
}

func (r *rig) install(t *testing.T, plan Plan) *Injector {
	t.Helper()
	in, err := NewInjector(plan, Deps{
		Engine:   r.engine,
		Registry: r.registry,
		Network:  r.network,
		Recorder: r.recorder,
		Position: func(id sim.AgentID) (roadnet.Point, bool) { p, ok := r.pos[id]; return p, ok },
		RNG:      sim.NewRNG(11),
	})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := in.Install(); err != nil {
		t.Fatalf("Install: %v", err)
	}
	return in
}

func TestPolygonContains(t *testing.T) {
	square := Polygon{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}, {X: 0, Y: 100}}
	if !square.Contains(roadnet.Point{X: 50, Y: 50}) {
		t.Error("center not inside square")
	}
	if square.Contains(roadnet.Point{X: 150, Y: 50}) {
		t.Error("outside point reported inside")
	}
	if !Polygon(nil).Contains(roadnet.Point{X: 1e9, Y: -1e9}) {
		t.Error("nil polygon must contain everything")
	}
	if (Polygon{{X: 0, Y: 0}, {X: 1, Y: 1}}).Contains(roadnet.Point{X: 0.5, Y: 0.5}) {
		t.Error("degenerate 2-vertex polygon must contain nothing")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"blackout", Plan{V2CBlackouts: []Blackout{{Window: Window{Start: 0, End: 10}}}}, true},
		{"inverted window", Plan{V2CBlackouts: []Blackout{{Window: Window{Start: 10, End: 10}}}}, false},
		{"tiny region", Plan{V2CBlackouts: []Blackout{{Window: Window{Start: 0, End: 1}, Region: Polygon{{X: 0, Y: 0}}}}}, false},
		{"negative rsu", Plan{RSUOutages: []RSUOutage{{RSU: -1, Window: Window{Start: 0, End: 1}}}}, false},
		{"burst prob too high", Plan{V2XBurstLoss: []BurstLoss{{Window: Window{Start: 0, End: 1}, DropProb: 1.5}}}, false},
		{"ramp bad kind", Plan{BandwidthRamps: []BandwidthRamp{{Kind: 99, Window: Window{Start: 0, End: 1}, StartFactor: 1, EndFactor: 1}}}, false},
		{"ramp zero factor", Plan{BandwidthRamps: []BandwidthRamp{{Kind: comm.KindV2C, Window: Window{Start: 0, End: 1}, StartFactor: 0, EndFactor: 1}}}, false},
		{"storm zero prob", Plan{ChurnStorms: []ChurnStorm{{Window: Window{Start: 0, End: 1}}}}, false},
		{"kill negative", Plan{LinkKills: []LinkKill{{At: -1}}}, false},
		{"kill all kinds", Plan{LinkKills: []LinkKill{{At: 5}}}, true},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid plan accepted", tc.name)
		}
	}
}

func TestScenarioPlans(t *testing.T) {
	for _, name := range ScenarioNames() {
		plan, err := ScenarioPlan(name, 3600)
		if err != nil {
			t.Fatalf("ScenarioPlan(%q): %v", name, err)
		}
		if plan.Empty() {
			t.Errorf("scenario %q is empty", name)
		}
		if err := plan.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
	}
	if _, err := ScenarioPlan("no-such-scenario", 3600); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ScenarioPlan(ScenarioBlackout, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestBlackoutBlocksAndFailsInWindow(t *testing.T) {
	r := newRig(t)
	r.install(t, Plan{V2CBlackouts: []Blackout{{Window: Window{Start: 10, End: 20}}}})

	// A transfer sent just before the window whose delivery lands inside it
	// fails with ErrBlackout (time-correlated, not i.i.d.).
	if _, err := r.engine.Schedule(9.9, func() {
		// ~1 MB over 2000 KB/s lands ~0.55 s later, inside the window.
		if _, err := r.network.Send(r.v1, r.server, comm.KindV2C, 1_000_000, nil); err != nil {
			t.Errorf("pre-window send rejected: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// A send attempted inside the window is rejected outright.
	if _, err := r.engine.Schedule(15, func() {
		if _, err := r.network.Send(r.v1, r.server, comm.KindV2C, 1000, nil); !errors.Is(err, comm.ErrBlackout) {
			t.Errorf("in-window send error = %v, want ErrBlackout", err)
		}
		// V2X is unaffected by a V2C blackout.
		if _, err := r.network.Send(r.v1, r.v2, comm.KindV2X, 1000, nil); err != nil {
			t.Errorf("v2x send during v2c blackout: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// After the window everything is nominal again.
	if _, err := r.engine.Schedule(25, func() {
		if _, err := r.network.Send(r.v1, r.server, comm.KindV2C, 1000, nil); err != nil {
			t.Errorf("post-window send rejected: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	var blackouts int
	for _, reason := range r.failures {
		if errors.Is(reason, comm.ErrBlackout) {
			blackouts++
		}
	}
	if blackouts != 1 {
		t.Fatalf("blackout failures = %d (reasons %v), want 1", blackouts, r.failures)
	}
	if r.delivered != 2 {
		t.Fatalf("delivered = %d, want 2", r.delivered)
	}
}

func TestRegionScopedBlackout(t *testing.T) {
	r := newRig(t)
	deadZone := Polygon{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 20}, {X: 0, Y: 20}}
	r.install(t, Plan{V2CBlackouts: []Blackout{{Window: Window{Start: 0, End: 100}, Region: deadZone}}})

	if _, err := r.engine.Schedule(1, func() {
		// v1 at (10,10) is inside the dead zone; v2 at (50,10) is not.
		if _, err := r.network.Send(r.v1, r.server, comm.KindV2C, 1000, nil); !errors.Is(err, comm.ErrBlackout) {
			t.Errorf("in-region send error = %v, want ErrBlackout", err)
		}
		if _, err := r.network.Send(r.v2, r.server, comm.KindV2C, 1000, nil); err != nil {
			t.Errorf("out-of-region send rejected: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if r.delivered != 1 {
		t.Fatalf("delivered = %d, want 1", r.delivered)
	}
}

func TestBurstLossDropsV2X(t *testing.T) {
	r := newRig(t)
	r.install(t, Plan{V2XBurstLoss: []BurstLoss{{Window: Window{Start: 0, End: 100}, DropProb: 1}}})

	if _, err := r.engine.Schedule(1, func() {
		if _, err := r.network.Send(r.v1, r.v2, comm.KindV2X, 1000, nil); err != nil {
			t.Errorf("send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(r.failures) != 1 || !errors.Is(r.failures[0], comm.ErrBurstDropped) {
		t.Fatalf("failures = %v, want one ErrBurstDropped", r.failures)
	}
}

func TestBandwidthRampStretchesTransfers(t *testing.T) {
	r := newRig(t)
	// Constant 0.25 factor across the window: transfers take ~4x the
	// bandwidth-bound time.
	r.install(t, Plan{BandwidthRamps: []BandwidthRamp{{
		Kind: comm.KindV2C, Window: Window{Start: 0, End: 1000}, StartFactor: 0.25, EndFactor: 0.25,
	}}})

	var deliverAt sim.Time
	r.network.OnDeliver(func(m *comm.Message) { r.delivered++; deliverAt = m.DeliverAt })
	if _, err := r.engine.Schedule(1, func() {
		if _, err := r.network.Send(r.v1, r.server, comm.KindV2C, 2_000_000, nil); err != nil {
			t.Errorf("send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	// Nominal: 0.05 + 2e6/(2000*1000) = 1.05 s. Degraded: 0.05 + 4 s.
	want := sim.Time(1).Add(sim.Duration(0.05 + 4.0))
	if r.delivered != 1 || deliverAt != want {
		t.Fatalf("delivered=%d at %v, want 1 at %v", r.delivered, deliverAt, want)
	}
}

func TestRSUOutageTogglesPower(t *testing.T) {
	r := newRig(t)
	r.install(t, Plan{RSUOutages: []RSUOutage{{RSU: 0, Window: Window{Start: 10, End: 20}}}})

	check := func(at sim.Time, wantOn bool) {
		if _, err := r.engine.Schedule(at, func() {
			if got := r.registry.Get(r.rsu).On(); got != wantOn {
				t.Errorf("at %v: rsu on = %v, want %v", at, got, wantOn)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	check(5, true)
	check(15, false)
	check(25, true)
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got := r.recorder.Counter(metrics.CounterFaultForcedOff); got != 1 {
		t.Fatalf("forced-off counter = %v, want 1", got)
	}
	if s := r.recorder.Series(metrics.SeriesFaultsActive); s == nil || s.Len() != 2 {
		t.Fatalf("faults_active series missing or wrong length")
	}
}

func TestRSUOutageIndexValidatedAgainstDeployment(t *testing.T) {
	r := newRig(t)
	_, err := NewInjector(Plan{RSUOutages: []RSUOutage{{RSU: 3, Window: Window{Start: 1, End: 2}}}}, Deps{
		Engine: r.engine, Registry: r.registry, Network: r.network, Recorder: r.recorder,
	})
	if err == nil {
		t.Fatal("out-of-range RSU index accepted")
	}
}

func TestChurnStormForcesVehiclesOffAndBack(t *testing.T) {
	r := newRig(t)
	r.install(t, Plan{ChurnStorms: []ChurnStorm{{Window: Window{Start: 10, End: 20}, OffProb: 1}}})

	if _, err := r.engine.Schedule(15, func() {
		for _, v := range []sim.AgentID{r.v1, r.v2} {
			if r.registry.Get(v).On() {
				t.Errorf("vehicle %v still on mid-storm", v)
			}
		}
		// The server and RSU are not storm targets.
		if !r.registry.Get(r.server).On() || !r.registry.Get(r.rsu).On() {
			t.Error("non-vehicle agent powered off by churn storm")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engine.Schedule(25, func() {
		for _, v := range []sim.AgentID{r.v1, r.v2} {
			if !r.registry.Get(v).On() {
				t.Errorf("vehicle %v not restored after storm", v)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got := r.recorder.Counter(metrics.CounterFaultForcedOff); got != 2 {
		t.Fatalf("forced-off counter = %v, want 2", got)
	}
}

func TestLinkKillAbortsInFlight(t *testing.T) {
	r := newRig(t)
	r.install(t, Plan{LinkKills: []LinkKill{{At: 5, Kind: comm.KindV2C}}})

	if _, err := r.engine.Schedule(4.9, func() {
		// ~10 MB takes ~5 s: still in flight at the kill instant.
		if _, err := r.network.Send(r.v1, r.server, comm.KindV2C, 10_000_000, nil); err != nil {
			t.Errorf("send: %v", err)
		}
		// A V2X transfer in flight at the same instant survives a
		// kind-scoped kill.
		if _, err := r.network.Send(r.v1, r.v2, comm.KindV2X, 1_000_000, nil); err != nil {
			t.Errorf("v2x send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(r.failures) != 1 || !errors.Is(r.failures[0], ErrLinkKilled) {
		t.Fatalf("failures = %v, want one ErrLinkKilled", r.failures)
	}
	if r.delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (the V2X survivor)", r.delivered)
	}
	if got := r.recorder.Counter(metrics.CounterFaultLinkKills); got != 1 {
		t.Fatalf("link-kill counter = %v, want 1", got)
	}
}

func TestStatsConservationUnderFaults(t *testing.T) {
	r := newRig(t)
	r.install(t, Plan{
		V2CBlackouts: []Blackout{{Window: Window{Start: 10, End: 20}}},
		V2XBurstLoss: []BurstLoss{{Window: Window{Start: 0, End: 30}, DropProb: 0.5}},
		LinkKills:    []LinkKill{{At: 15}},
	})
	for i := 0; i < 30; i++ {
		at := sim.Time(float64(i))
		if _, err := r.engine.Schedule(at, func() {
			_, _ = r.network.Send(r.v1, r.server, comm.KindV2C, 500_000, nil)
			_, _ = r.network.Send(r.v1, r.v2, comm.KindV2X, 200_000, nil)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, k := range comm.Kinds() {
		s := r.network.StatsFor(k)
		if s.MessagesSent != s.MessagesDelivered+s.MessagesFailed {
			t.Errorf("%v: sent %d != delivered %d + failed %d", k, s.MessagesSent, s.MessagesDelivered, s.MessagesFailed)
		}
		if s.BytesDelivered > s.BytesAttempted {
			t.Errorf("%v: delivered bytes %d > attempted %d", k, s.BytesDelivered, s.BytesAttempted)
		}
	}
}
