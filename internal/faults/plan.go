// Package faults is Roadrunner's deterministic fault-injection substrate.
// The paper's framework demands that "communication may fail at any time"
// (§3), but a flat per-message drop probability cannot express what real
// vehicular deployments see: *time-correlated* degradation — coverage
// blackouts when fleets enter tunnels or dead zones, RSU outages, burst
// loss under interference, bandwidth collapse at cell edges, and churn
// storms when many drivers shut off at once (cf. DRIVE and Sliwa &
// Wietfeld's data-driven network-indicator simulation in PAPERS.md).
//
// A Plan declares those faults; an Injector compiles the plan into
// scheduled simulation events and a comm.ConditionsFunc, all driven by a
// sim.RNG forked from the experiment seed. A (config, seed, plan) triple
// therefore fully determines a run — the byte-identical reproducibility
// contract extends unchanged to faulted runs, which is what makes the
// strategy-conformance harness (internal/conformance) possible.
package faults

import (
	"fmt"

	"roadrunner/internal/comm"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// Window is a half-open simulated-time interval [Start, End) during which a
// fault is active.
type Window struct {
	Start sim.Time `json:"start_s"`
	End   sim.Time `json:"end_s"`
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.Start && t < w.End }

// Validate reports whether the window is usable.
func (w Window) Validate() error {
	if !w.Start.IsValid() || !w.End.IsValid() {
		return fmt.Errorf("faults: invalid window [%v, %v)", float64(w.Start), float64(w.End))
	}
	if w.Start < 0 || w.End <= w.Start {
		return fmt.Errorf("faults: empty or negative window [%v, %v)", float64(w.Start), float64(w.End))
	}
	return nil
}

// Polygon is a closed region on the simulation plane, given as its vertex
// ring (the closing edge from the last vertex back to the first is
// implicit). Regions localize coverage blackouts; a nil polygon means
// "everywhere".
type Polygon []roadnet.Point

// Contains reports whether p lies inside the polygon (even-odd rule). An
// empty polygon contains every point, matching the "everywhere" reading of
// an unset region.
func (poly Polygon) Contains(p roadnet.Point) bool {
	if len(poly) == 0 {
		return true
	}
	if len(poly) < 3 {
		return false
	}
	inside := false
	for i, j := 0, len(poly)-1; i < len(poly); j, i = i, i+1 {
		a, b := poly[i], poly[j]
		if (a.Y > p.Y) != (b.Y > p.Y) &&
			p.X < (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y)+a.X {
			inside = !inside
		}
	}
	return inside
}

// Blackout is a V2C coverage hole: inside Window, any V2C transfer whose
// vehicle endpoint is inside Region (nil = the whole plane) is blocked at
// send time and fails with comm.ErrBlackout at delivery time.
type Blackout struct {
	Window Window  `json:"window"`
	Region Polygon `json:"region,omitempty"`
}

// RSUOutage powers one road-side unit down for a window. RSU indexes the
// experiment's RSU list in creation order (0-based).
type RSUOutage struct {
	RSU    int    `json:"rsu"`
	Window Window `json:"window"`
}

// BurstLoss raises the V2X loss probability by DropProb inside Window,
// sampled per message on top of the channel's base drop probability.
type BurstLoss struct {
	Window   Window  `json:"window"`
	DropProb float64 `json:"drop_prob"`
}

// BandwidthRamp degrades one channel kind's effective bandwidth across a
// window: the rate factor interpolates linearly from StartFactor at
// Window.Start to EndFactor at Window.End. Factors are in (0, 1]; 1 means
// nominal bandwidth.
type BandwidthRamp struct {
	Kind        comm.Kind `json:"kind"`
	Window      Window    `json:"window"`
	StartFactor float64   `json:"start_factor"`
	EndFactor   float64   `json:"end_factor"`
}

// factorAt returns the interpolated rate factor at t (1 outside Window).
func (r BandwidthRamp) factorAt(t sim.Time) float64 {
	if !r.Window.Contains(t) {
		return 1
	}
	span := float64(r.Window.End - r.Window.Start)
	frac := float64(t-r.Window.Start) / span
	return r.StartFactor + (r.EndFactor-r.StartFactor)*frac
}

// ChurnStorm powers off a random OffProb-fraction of the powered-on
// vehicles at Window.Start (drawn from the fault RNG stream) and powers
// those victims back on at Window.End. Trace-driven ignition transitions
// keep applying during the storm, so a storm composes with natural churn
// rather than replacing it.
type ChurnStorm struct {
	Window  Window  `json:"window"`
	OffProb float64 `json:"off_prob"`
}

// LinkKill aborts, at instant At, every in-flight transfer of the given
// kind (0 = all kinds), failing it with comm.ErrDropped-independent
// reason ErrLinkKilled. It models hard handover failures and mid-flight
// link resets.
type LinkKill struct {
	At   sim.Time  `json:"at_s"`
	Kind comm.Kind `json:"kind,omitempty"`
}

// Plan is a declarative fault scenario. The zero value is the fault-free
// plan. Plans are pure data: JSON-serializable, comparable across runs,
// and compiled by the Injector only at experiment construction time.
type Plan struct {
	V2CBlackouts   []Blackout      `json:"v2c_blackouts,omitempty"`
	RSUOutages     []RSUOutage     `json:"rsu_outages,omitempty"`
	V2XBurstLoss   []BurstLoss     `json:"v2x_burst_loss,omitempty"`
	BandwidthRamps []BandwidthRamp `json:"bandwidth_ramps,omitempty"`
	ChurnStorms    []ChurnStorm    `json:"churn_storms,omitempty"`
	LinkKills      []LinkKill      `json:"link_kills,omitempty"`
}

// Empty reports whether the plan declares no faults at all.
func (p *Plan) Empty() bool {
	return len(p.V2CBlackouts) == 0 && len(p.RSUOutages) == 0 &&
		len(p.V2XBurstLoss) == 0 && len(p.BandwidthRamps) == 0 &&
		len(p.ChurnStorms) == 0 && len(p.LinkKills) == 0
}

// Validate reports whether the plan is usable. RSU indexes are validated
// against the experiment at injector construction time, since the plan
// alone does not know the deployment size.
func (p *Plan) Validate() error {
	for i, b := range p.V2CBlackouts {
		if err := b.Window.Validate(); err != nil {
			return fmt.Errorf("faults: v2c blackout %d: %w", i, err)
		}
		if n := len(b.Region); n > 0 && n < 3 {
			return fmt.Errorf("faults: v2c blackout %d: region needs >= 3 vertices, got %d", i, n)
		}
	}
	for i, o := range p.RSUOutages {
		if o.RSU < 0 {
			return fmt.Errorf("faults: rsu outage %d: negative rsu index %d", i, o.RSU)
		}
		if err := o.Window.Validate(); err != nil {
			return fmt.Errorf("faults: rsu outage %d: %w", i, err)
		}
	}
	for i, b := range p.V2XBurstLoss {
		if err := b.Window.Validate(); err != nil {
			return fmt.Errorf("faults: v2x burst loss %d: %w", i, err)
		}
		if b.DropProb <= 0 || b.DropProb > 1 {
			return fmt.Errorf("faults: v2x burst loss %d: drop probability %v outside (0, 1]", i, b.DropProb)
		}
	}
	for i, r := range p.BandwidthRamps {
		if !validKind(r.Kind) {
			return fmt.Errorf("faults: bandwidth ramp %d: unknown channel kind %d", i, int(r.Kind))
		}
		if err := r.Window.Validate(); err != nil {
			return fmt.Errorf("faults: bandwidth ramp %d: %w", i, err)
		}
		for _, f := range []float64{r.StartFactor, r.EndFactor} {
			if f <= 0 || f > 1 {
				return fmt.Errorf("faults: bandwidth ramp %d: factor %v outside (0, 1]", i, f)
			}
		}
	}
	for i, s := range p.ChurnStorms {
		if err := s.Window.Validate(); err != nil {
			return fmt.Errorf("faults: churn storm %d: %w", i, err)
		}
		if s.OffProb <= 0 || s.OffProb > 1 {
			return fmt.Errorf("faults: churn storm %d: off probability %v outside (0, 1]", i, s.OffProb)
		}
	}
	for i, k := range p.LinkKills {
		if !k.At.IsValid() || k.At < 0 {
			return fmt.Errorf("faults: link kill %d: invalid instant %v", i, float64(k.At))
		}
		if k.Kind != 0 && !validKind(k.Kind) {
			return fmt.Errorf("faults: link kill %d: unknown channel kind %d", i, int(k.Kind))
		}
	}
	return nil
}

// validKind reports whether k names one of the comm channel families.
func validKind(k comm.Kind) bool {
	switch k {
	case comm.KindV2C, comm.KindV2X, comm.KindWired:
		return true
	default:
		return false
	}
}
