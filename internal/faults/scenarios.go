package faults

import (
	"fmt"

	"roadrunner/internal/comm"
	"roadrunner/internal/sim"
)

// Named fault scenarios — the grid the conformance harness and the
// fault-ablation figure run every strategy against. Windows are placed as
// fractions of the run horizon so one scenario definition scales from test
// configs to the paper-scale experiment.
const (
	// ScenarioBlackout is a fleet-wide V2C coverage blackout over the
	// middle third of the run.
	ScenarioBlackout = "blackout"
	// ScenarioRSUOutage takes RSU 0 down for the middle half of the run
	// and kills its in-flight traffic at the outage onset.
	ScenarioRSUOutage = "rsu-outage"
	// ScenarioBurstLoss overlays two V2X burst-loss windows plus a
	// mid-burst link kill.
	ScenarioBurstLoss = "burst-loss"
	// ScenarioDegraded ramps V2C bandwidth down to 10% across the middle
	// of the run while V2X runs at half rate.
	ScenarioDegraded = "degraded"
	// ScenarioChurnStorm powers off half the running fleet shortly after
	// warm-up and a further quarter late in the run.
	ScenarioChurnStorm = "churn-storm"
	// ScenarioMixed composes blackout, burst loss, degradation, and a
	// churn storm — the worst plausible hour.
	ScenarioMixed = "mixed"
)

// ScenarioNames lists the named scenarios in their canonical order.
func ScenarioNames() []string {
	return []string{
		ScenarioBlackout, ScenarioRSUOutage, ScenarioBurstLoss,
		ScenarioDegraded, ScenarioChurnStorm, ScenarioMixed,
	}
}

// ScenarioPlan returns the named scenario's plan, scaled to a run of the
// given horizon.
func ScenarioPlan(name string, horizon sim.Duration) (Plan, error) {
	if horizon <= 0 {
		return Plan{}, fmt.Errorf("faults: scenario %q: non-positive horizon %v", name, float64(horizon))
	}
	at := func(frac float64) sim.Time { return sim.Time(float64(horizon) * frac) }
	win := func(lo, hi float64) Window { return Window{Start: at(lo), End: at(hi)} }
	switch name {
	case ScenarioBlackout:
		return Plan{
			V2CBlackouts: []Blackout{{Window: win(0.33, 0.66)}},
		}, nil
	case ScenarioRSUOutage:
		return Plan{
			RSUOutages: []RSUOutage{{RSU: 0, Window: win(0.25, 0.75)}},
			LinkKills:  []LinkKill{{At: at(0.25), Kind: comm.KindWired}},
		}, nil
	case ScenarioBurstLoss:
		return Plan{
			V2XBurstLoss: []BurstLoss{
				{Window: win(0.2, 0.45), DropProb: 0.5},
				{Window: win(0.6, 0.7), DropProb: 0.35},
			},
			LinkKills: []LinkKill{{At: at(0.3), Kind: comm.KindV2X}},
		}, nil
	case ScenarioDegraded:
		return Plan{
			BandwidthRamps: []BandwidthRamp{
				{Kind: comm.KindV2C, Window: win(0.2, 0.8), StartFactor: 1, EndFactor: 0.1},
				{Kind: comm.KindV2X, Window: win(0.2, 0.8), StartFactor: 0.5, EndFactor: 0.5},
			},
		}, nil
	case ScenarioChurnStorm:
		return Plan{
			ChurnStorms: []ChurnStorm{
				{Window: win(0.3, 0.5), OffProb: 0.5},
				{Window: win(0.65, 0.75), OffProb: 0.25},
			},
		}, nil
	case ScenarioMixed:
		return Plan{
			V2CBlackouts: []Blackout{{Window: win(0.4, 0.55)}},
			V2XBurstLoss: []BurstLoss{{Window: win(0.3, 0.6), DropProb: 0.3}},
			BandwidthRamps: []BandwidthRamp{
				{Kind: comm.KindV2C, Window: win(0.2, 0.9), StartFactor: 1, EndFactor: 0.25},
			},
			ChurnStorms: []ChurnStorm{{Window: win(0.5, 0.65), OffProb: 0.35}},
			LinkKills:   []LinkKill{{At: at(0.45)}},
		}, nil
	default:
		return Plan{}, fmt.Errorf("faults: unknown scenario %q", name)
	}
}
