package faults

import (
	"errors"
	"fmt"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
)

// ErrLinkKilled is the failure reason of transfers aborted by a scheduled
// LinkKill event.
var ErrLinkKilled = errors.New("faults: link killed mid-flight")

// Deps are the experiment-side handles the injector operates on. All of
// them live on the simulation goroutine; the injector adds no goroutines
// and no locks.
type Deps struct {
	Engine   *sim.Engine
	Registry *sim.Registry
	Network  *comm.Network
	Recorder *metrics.Recorder
	// Position resolves an agent's current position, for region-scoped
	// blackouts. Typically the same function the network uses.
	Position comm.PositionFunc
	// RNG drives every stochastic fault decision (churn-storm draws).
	// Fork it from the experiment seed so (config, seed, plan) fully
	// determines the run.
	RNG *sim.RNG
	// Tracer, when non-nil, receives a fault-window span per scheduled
	// activation. The tracer consumes no randomness and reads only the
	// virtual clock, so traced and untraced runs stay byte-identical.
	Tracer *trace.Tracer
}

// Injector compiles a Plan against one experiment: scheduled events for
// the discrete faults (RSU outages, churn storms, link kills, window
// boundaries) and a comm.Conditions view for the continuous ones
// (blackouts, burst loss, bandwidth ramps).
type Injector struct {
	plan Plan
	deps Deps

	vehicles []sim.AgentID
	rsus     []sim.AgentID
	active   int // currently open fault windows, exported as SeriesFaultsActive
}

// NewInjector validates the plan against the experiment (RSU indexes must
// exist) and builds the injector. Call Install to arm it.
func NewInjector(plan Plan, deps Deps) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if deps.Engine == nil || deps.Registry == nil || deps.Network == nil || deps.Recorder == nil {
		return nil, fmt.Errorf("faults: nil engine, registry, network, or recorder")
	}
	if deps.RNG == nil && len(plan.ChurnStorms) > 0 {
		return nil, fmt.Errorf("faults: churn storms need an RNG")
	}
	in := &Injector{
		plan:     plan,
		deps:     deps,
		vehicles: deps.Registry.OfKind(sim.KindVehicle),
		rsus:     deps.Registry.OfKind(sim.KindRSU),
	}
	for i, o := range plan.RSUOutages {
		if o.RSU >= len(in.rsus) {
			return nil, fmt.Errorf("faults: rsu outage %d: rsu index %d, deployment has %d", i, o.RSU, len(in.rsus))
		}
	}
	return in, nil
}

// Install arms the injector: it registers the conditions hook on the
// network and schedules every discrete fault event. Install must run
// before the experiment starts (all fault instants are still in the
// future).
func (in *Injector) Install() error {
	in.deps.Network.SetConditions(in.Conditions)
	for _, b := range in.plan.V2CBlackouts {
		if err := in.scheduleWindow("v2c-blackout", b.Window, nil, nil); err != nil {
			return err
		}
	}
	for _, b := range in.plan.V2XBurstLoss {
		if err := in.scheduleWindow("v2x-burst-loss", b.Window, nil, nil); err != nil {
			return err
		}
	}
	for _, r := range in.plan.BandwidthRamps {
		if err := in.scheduleWindow("bandwidth-ramp", r.Window, nil, nil); err != nil {
			return err
		}
	}
	for _, o := range in.plan.RSUOutages {
		rsu := in.rsus[o.RSU]
		if err := in.scheduleWindow("rsu-outage", o.Window,
			func() { in.setPower(rsu, false); in.deps.Recorder.Add(metrics.CounterFaultForcedOff, 1) },
			func() { in.setPower(rsu, true) },
		); err != nil {
			return err
		}
	}
	for _, s := range in.plan.ChurnStorms {
		s := s
		victims := &[]sim.AgentID{}
		if err := in.scheduleWindow("churn-storm", s.Window,
			func() { in.stormBegin(s, victims) },
			func() { in.stormEnd(victims) },
		); err != nil {
			return err
		}
	}
	for _, k := range in.plan.LinkKills {
		k := k
		if _, err := in.deps.Engine.Schedule(k.At, func() { in.kill(k) }); err != nil {
			return fmt.Errorf("faults: schedule link kill: %w", err)
		}
	}
	return nil
}

// scheduleWindow schedules the window's boundary events: the active-window
// gauge moves at both edges, a fault-window trace span opens and closes
// with them, and the optional callbacks run inside the same events. Edges
// are scheduled start-before-end at install time, so same-instant
// boundaries resolve deterministically by schedule order.
func (in *Injector) scheduleWindow(kind string, w Window, onStart, onEnd func()) error {
	// The span is root-level (not parented to whatever round happens to be
	// in scope): fault windows straddle round boundaries by design.
	var span trace.SpanID
	if _, err := in.deps.Engine.Schedule(w.Start, func() {
		span = in.deps.Tracer.BeginRoot(trace.KindFaultWindow, kind)
		in.active++
		in.recordActive()
		if onStart != nil {
			onStart()
		}
	}); err != nil {
		return fmt.Errorf("faults: schedule window start: %w", err)
	}
	if _, err := in.deps.Engine.Schedule(w.End, func() {
		in.active--
		in.recordActive()
		if onEnd != nil {
			onEnd()
		}
		in.deps.Tracer.End(span)
	}); err != nil {
		return fmt.Errorf("faults: schedule window end: %w", err)
	}
	return nil
}

func (in *Injector) recordActive() {
	_ = in.deps.Recorder.Record(metrics.SeriesFaultsActive, in.deps.Engine.Now(), float64(in.active))
}

func (in *Injector) setPower(id sim.AgentID, on bool) {
	_ = in.deps.Registry.SetPower(id, on)
}

// stormBegin draws the storm's victims — each powered-on vehicle falls
// with probability OffProb — and powers them off. The draw iterates
// vehicles in ID order so the RNG consumption sequence is reproducible.
func (in *Injector) stormBegin(s ChurnStorm, victims *[]sim.AgentID) {
	for _, v := range in.vehicles {
		a := in.deps.Registry.Get(v)
		if a == nil || !a.On() {
			continue
		}
		if !in.deps.RNG.Bool(s.OffProb) {
			continue
		}
		*victims = append(*victims, v)
		in.setPower(v, false)
		in.deps.Recorder.Add(metrics.CounterFaultForcedOff, 1)
	}
}

// stormEnd powers the storm's victims back on. Vehicles the trace turned
// back on mid-storm are untouched (SetPower is a no-op on non-transitions),
// and later trace transitions keep applying either way.
func (in *Injector) stormEnd(victims *[]sim.AgentID) {
	for _, v := range *victims {
		in.setPower(v, true)
	}
	*victims = (*victims)[:0]
}

// kill aborts the in-flight transfers the LinkKill selects. The instant
// span opens before FailInFlight so the transfers' failure closures
// order after the activation that doomed them.
func (in *Injector) kill(k LinkKill) {
	span := in.deps.Tracer.BeginRoot(trace.KindFaultWindow, "link-kill")
	pred := func(m *comm.Message) bool { return k.Kind == 0 || m.Kind == k.Kind }
	n := in.deps.Network.FailInFlight(pred, ErrLinkKilled)
	if n > 0 {
		in.deps.Recorder.Add(metrics.CounterFaultLinkKills, float64(n))
	}
	in.deps.Tracer.AttrInt(span, "killed", int64(n))
	in.deps.Tracer.End(span)
}

// Conditions implements comm.ConditionsFunc over the plan's continuous
// faults. It is pure over (plan, now, link, agent positions) — no RNG —
// so evaluating it never perturbs any random stream.
func (in *Injector) Conditions(now sim.Time, kind comm.Kind, from, to sim.AgentID) comm.Conditions {
	var cond comm.Conditions
	if kind == comm.KindV2C {
		for _, b := range in.plan.V2CBlackouts {
			if b.Window.Contains(now) && in.inRegion(b.Region, from, to) {
				cond.Blocked = true
				break
			}
		}
	}
	if kind == comm.KindV2X {
		keep := 1.0 // probability the message survives every open burst window
		for _, b := range in.plan.V2XBurstLoss {
			if b.Window.Contains(now) {
				keep *= 1 - b.DropProb
			}
		}
		cond.ExtraDropProb = 1 - keep
	}
	factor := 1.0
	for _, r := range in.plan.BandwidthRamps {
		if r.Kind == kind {
			factor *= r.factorAt(now)
		}
	}
	if factor < 1 {
		cond.RateFactor = factor
	}
	return cond
}

// inRegion reports whether the link's positioned endpoint (the vehicle
// side of a V2C transfer; the cloud has no position) is inside the
// region. Without a position resolver, region-scoped blackouts apply
// everywhere, matching a nil region.
func (in *Injector) inRegion(region Polygon, from, to sim.AgentID) bool {
	if len(region) == 0 || in.deps.Position == nil {
		return true
	}
	if pos, ok := in.deps.Position(from); ok {
		return region.Contains(pos)
	}
	if pos, ok := in.deps.Position(to); ok {
		return region.Contains(pos)
	}
	return true
}
