package roadnet

import (
	"fmt"

	"roadrunner/internal/sim"
)

// GridConfig parameterizes the synthetic urban road network used in place
// of the paper's proprietary Gothenburg GPS dataset. The generator produces
// a jittered Manhattan-style grid of two-way streets with periodic
// higher-speed arterials and a configurable fraction of missing segments,
// which together give trajectories the irregular, clustered encounter
// patterns that drive the paper's V2X-exchange statistics (Figure 4 bars).
type GridConfig struct {
	// Rows and Cols are the number of intersections along each axis.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Spacing is the block edge length in meters.
	Spacing float64 `json:"spacing_m"`
	// StreetSpeed is the free-flow speed of ordinary streets in m/s.
	StreetSpeed float64 `json:"street_speed_mps"`
	// ArterialSpeed is the free-flow speed of arterial roads in m/s.
	ArterialSpeed float64 `json:"arterial_speed_mps"`
	// ArterialEvery makes every k-th row and column an arterial; zero
	// disables arterials.
	ArterialEvery int `json:"arterial_every"`
	// Irregularity is the fraction of ordinary street segments the
	// generator attempts to remove (connectivity is always preserved).
	Irregularity float64 `json:"irregularity"`
	// Jitter displaces each intersection by up to this many meters in each
	// axis, breaking the perfect grid symmetry.
	Jitter float64 `json:"jitter_m"`
}

// DefaultGridConfig returns a Gothenburg-scale urban grid: a 20x20 network
// of 400 m blocks (an 7.6 km x 7.6 km downtown area), 30 km/h streets,
// 60 km/h arterials every 5th road, with mild irregularity.
func DefaultGridConfig() GridConfig {
	return GridConfig{
		Rows:          20,
		Cols:          20,
		Spacing:       400,
		StreetSpeed:   30.0 / 3.6,
		ArterialSpeed: 60.0 / 3.6,
		ArterialEvery: 5,
		Irregularity:  0.12,
		Jitter:        40,
	}
}

// Validate reports whether the configuration is usable.
func (c GridConfig) Validate() error {
	switch {
	case c.Rows < 2 || c.Cols < 2:
		return fmt.Errorf("roadnet: grid needs at least 2x2 intersections, got %dx%d", c.Rows, c.Cols)
	case c.Spacing <= 0:
		return fmt.Errorf("roadnet: non-positive spacing %v", c.Spacing)
	case c.StreetSpeed <= 0:
		return fmt.Errorf("roadnet: non-positive street speed %v", c.StreetSpeed)
	case c.ArterialEvery > 0 && c.ArterialSpeed <= 0:
		return fmt.Errorf("roadnet: non-positive arterial speed %v", c.ArterialSpeed)
	case c.Irregularity < 0 || c.Irregularity >= 1:
		return fmt.Errorf("roadnet: irregularity %v outside [0,1)", c.Irregularity)
	case c.Jitter < 0 || c.Jitter >= c.Spacing/2:
		return fmt.Errorf("roadnet: jitter %v must be in [0, spacing/2)", c.Jitter)
	default:
		return nil
	}
}

// Generate builds the road network described by c, drawing jitter and
// irregular removals from rng. The result is always connected.
func Generate(c GridConfig, rng *sim.RNG) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}

	g := &Graph{}
	ids := make([][]NodeID, c.Rows)
	for r := 0; r < c.Rows; r++ {
		ids[r] = make([]NodeID, c.Cols)
		for col := 0; col < c.Cols; col++ {
			p := Point{X: float64(col) * c.Spacing, Y: float64(r) * c.Spacing}
			if c.Jitter > 0 {
				p.X += rng.Range(-c.Jitter, c.Jitter)
				p.Y += rng.Range(-c.Jitter, c.Jitter)
			}
			ids[r][col] = g.AddNode(p)
		}
	}

	arterialLine := func(i int) bool {
		return c.ArterialEvery > 0 && i%c.ArterialEvery == 0
	}
	var roads []road
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			if col+1 < c.Cols { // horizontal segment, lies on row r
				sp, art := c.StreetSpeed, false
				if arterialLine(r) {
					sp, art = c.ArterialSpeed, true
				}
				roads = append(roads, road{ids[r][col], ids[r][col+1], sp, art})
			}
			if r+1 < c.Rows { // vertical segment, lies on column col
				sp, art := c.StreetSpeed, false
				if arterialLine(col) {
					sp, art = c.ArterialSpeed, true
				}
				roads = append(roads, road{ids[r][col], ids[r+1][col], sp, art})
			}
		}
	}

	// Attempt to remove a fraction of the ordinary streets while keeping
	// the (undirected) network connected. All roads are two-way, so
	// undirected connectivity implies strong connectivity of the graph.
	keep := make([]bool, len(roads))
	for i := range keep {
		keep[i] = true
	}
	if c.Irregularity > 0 {
		candidates := rng.Perm(len(roads))
		target := int(c.Irregularity * float64(len(roads)))
		removed := 0
		for _, i := range candidates {
			if removed >= target {
				break
			}
			if roads[i].arterial {
				continue
			}
			keep[i] = false
			if connectedWithout(g.NumNodes(), roads, keep) {
				removed++
			} else {
				keep[i] = true
			}
		}
	}

	for i, rd := range roads {
		if !keep[i] {
			continue
		}
		if err := g.AddRoad(rd.a, rd.b, rd.speed); err != nil {
			return nil, fmt.Errorf("roadnet: generate: %w", err)
		}
	}
	return g, nil
}

// road is a two-way candidate segment during grid generation.
type road struct {
	a, b     NodeID
	speed    float64
	arterial bool
}

// connectedWithout checks, via union-find over the kept roads, whether all
// nodes remain in one component.
func connectedWithout(numNodes int, roads []road, keep []bool) bool {
	parent := make([]int, numNodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	components := numNodes
	for i, rd := range roads {
		if !keep[i] {
			continue
		}
		ra, rb := find(int(rd.a)), find(int(rd.b))
		if ra != rb {
			parent[ra] = rb
			components--
		}
	}
	return components == 1
}
