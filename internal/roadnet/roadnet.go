// Package roadnet models the road network a vehicular fleet moves on: a
// directed graph of intersections and road segments with speed limits, plus
// shortest-path routing.
//
// The paper evaluates Roadrunner on a proprietary real-world GPS dataset of
// Gothenburg, Sweden, and notes that "vehicle spatial dynamics enter the
// Core Simulator statically, e.g. as a file of GPS traces ... but also of
// simulated data (pre-calculated with e.g. SUMO)". This package is the
// substrate for the latter path: together with internal/mobility it stands
// in for both the proprietary dataset and an external traffic simulator,
// producing trace files the core simulator replays.
package roadnet

import (
	"fmt"
	"math"
)

// NodeID identifies an intersection in a Graph. IDs are dense integers
// assigned in insertion order.
type NodeID int

// Point is a position on the simulation plane, in meters. The plane uses a
// local Cartesian frame (no geodesy): fine for a single urban area like the
// paper's Gothenburg scenario.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance in meters between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Lerp linearly interpolates from p to q; frac 0 yields p, 1 yields q.
func (p Point) Lerp(q Point, frac float64) Point {
	return Point{X: p.X + (q.X-p.X)*frac, Y: p.Y + (q.Y-p.Y)*frac}
}

// Node is an intersection.
type Node struct {
	ID  NodeID
	Pos Point
}

// Edge is a directed road segment between two intersections.
type Edge struct {
	From   NodeID
	To     NodeID
	Length float64 // meters, Euclidean between endpoints
	Speed  float64 // free-flow speed in m/s
}

// TravelTime returns the free-flow traversal time of the segment in seconds.
func (e Edge) TravelTime() float64 {
	if e.Speed <= 0 {
		return math.Inf(1)
	}
	return e.Length / e.Speed
}

// Graph is a directed road network. The zero value is an empty graph ready
// for use. Graph is not safe for concurrent mutation; concurrent reads are
// fine once construction is complete.
type Graph struct {
	nodes []Node
	adj   [][]Edge
	edges int
}

// AddNode inserts an intersection at p and returns its ID.
func (g *Graph) AddNode(p Point) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Pos: p})
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge inserts a one-way road from a to b with the given free-flow speed
// in m/s. The segment length is the Euclidean distance between endpoints.
func (g *Graph) AddEdge(from, to NodeID, speed float64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("roadnet: add edge: unknown node (%d -> %d)", from, to)
	}
	if from == to {
		return fmt.Errorf("roadnet: add edge: self-loop at node %d", from)
	}
	if speed <= 0 {
		return fmt.Errorf("roadnet: add edge: non-positive speed %v", speed)
	}
	length := g.nodes[from].Pos.Dist(g.nodes[to].Pos)
	g.adj[from] = append(g.adj[from], Edge{From: from, To: to, Length: length, Speed: speed})
	g.edges++
	return nil
}

// AddRoad inserts a two-way road (one edge in each direction).
func (g *Graph) AddRoad(a, b NodeID, speed float64) error {
	if err := g.AddEdge(a, b, speed); err != nil {
		return err
	}
	return g.AddEdge(b, a, speed)
}

// NumNodes returns the number of intersections.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed road segments.
func (g *Graph) NumEdges() int { return g.edges }

// Node returns the intersection with the given ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if !g.valid(id) {
		return Node{}, fmt.Errorf("roadnet: unknown node %d", id)
	}
	return g.nodes[id], nil
}

// Pos returns the position of node id; it panics on an unknown ID only via
// the zero value (callers constructing IDs from the graph itself are safe).
func (g *Graph) Pos(id NodeID) Point {
	if !g.valid(id) {
		return Point{}
	}
	return g.nodes[id].Pos
}

// OutEdges returns the road segments leaving node id. The returned slice is
// shared; callers must not mutate it.
func (g *Graph) OutEdges(id NodeID) []Edge {
	if !g.valid(id) {
		return nil
	}
	return g.adj[id]
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// Bounds returns the axis-aligned bounding box of all intersections, and
// ok=false for an empty graph. Vehicles move along segments between
// intersections, so the box bounds every reachable position — the natural
// extent for spatial indexing over the network.
func (g *Graph) Bounds() (min, max Point, ok bool) {
	if len(g.nodes) == 0 {
		return Point{}, Point{}, false
	}
	min, max = g.nodes[0].Pos, g.nodes[0].Pos
	for _, n := range g.nodes[1:] {
		if n.Pos.X < min.X {
			min.X = n.Pos.X
		}
		if n.Pos.X > max.X {
			max.X = n.Pos.X
		}
		if n.Pos.Y < min.Y {
			min.Y = n.Pos.Y
		}
		if n.Pos.Y > max.Y {
			max.Y = n.Pos.Y
		}
	}
	return min, max, true
}
