package roadnet

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"roadrunner/internal/sim"
)

// TestPathFinderMatchesGraphShortestPath drives one reused PathFinder
// through many random queries on the default grid and requires every route
// to equal the fresh-state Graph.ShortestPath result exactly — nodes,
// edges, and bitwise-identical length/time. This is the guard that the
// epoch-stamped scratch and typed heap change performance only.
func TestPathFinderMatchesGraphShortestPath(t *testing.T) {
	g, err := Generate(DefaultGridConfig(), sim.NewRNG(11))
	if err != nil {
		t.Fatalf("generate grid: %v", err)
	}
	pf := NewPathFinder(g)
	rng := sim.NewRNG(12)
	for q := 0; q < 300; q++ {
		from := NodeID(rng.Intn(g.NumNodes()))
		to := NodeID(rng.Intn(g.NumNodes()))
		got, gotErr := pf.ShortestPath(from, to)
		want, wantErr := g.ShortestPath(from, to)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("query %d (%d->%d): error mismatch: %v vs %v", q, from, to, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Edges, want.Edges) {
			t.Fatalf("query %d (%d->%d): route differs between reused and fresh finder", q, from, to)
		}
		if math.Float64bits(got.Length) != math.Float64bits(want.Length) ||
			math.Float64bits(got.Time) != math.Float64bits(want.Time) {
			t.Fatalf("query %d (%d->%d): length/time not bitwise equal: (%v,%v) vs (%v,%v)",
				q, from, to, got.Length, got.Time, want.Length, want.Time)
		}
	}
}

// TestPathFinderUnreachableAndInvalid checks the reused finder keeps the
// wrapper's error behaviour across consecutive failing and succeeding
// queries.
func TestPathFinderUnreachableAndInvalid(t *testing.T) {
	var g Graph
	a := g.AddNode(Point{X: 0, Y: 0})
	b := g.AddNode(Point{X: 100, Y: 0})
	c := g.AddNode(Point{X: 200, Y: 0})
	if err := g.AddEdge(a, b, 10); err != nil {
		t.Fatalf("add edge: %v", err)
	}
	pf := NewPathFinder(&g)

	if _, err := pf.ShortestPath(a, c); !errors.Is(err, ErrNoPath) {
		t.Fatalf("want ErrNoPath for unreachable node, got %v", err)
	}
	if _, err := pf.ShortestPath(a, NodeID(99)); err == nil {
		t.Fatalf("want error for unknown node")
	}
	route, err := pf.ShortestPath(a, b)
	if err != nil {
		t.Fatalf("reachable query after failures: %v", err)
	}
	if len(route.Edges) != 1 || route.Nodes[0] != a || route.Nodes[1] != b {
		t.Fatalf("unexpected route %+v", route)
	}
	if self, err := pf.ShortestPath(b, b); err != nil || len(self.Nodes) != 1 {
		t.Fatalf("self route: %+v, %v", self, err)
	}
}
