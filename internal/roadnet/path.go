package roadnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrNoPath is returned when the destination is unreachable from the origin.
var ErrNoPath = errors.New("roadnet: no path")

// Route is a shortest path through the network: the node sequence, the edge
// sequence connecting them, the total length in meters, and the free-flow
// travel time in seconds.
type Route struct {
	Nodes  []NodeID
	Edges  []Edge
	Length float64 // meters
	Time   float64 // seconds at free-flow speed
}

// ShortestPath computes the fastest route (by free-flow travel time) from
// origin to destination using Dijkstra's algorithm. A route from a node to
// itself is valid and has zero length.
func (g *Graph) ShortestPath(from, to NodeID) (Route, error) {
	if !g.valid(from) || !g.valid(to) {
		return Route{}, fmt.Errorf("roadnet: shortest path: unknown node (%d -> %d)", from, to)
	}
	if from == to {
		return Route{Nodes: []NodeID{from}}, nil
	}

	n := len(g.nodes)
	dist := make([]float64, n)
	prev := make([]int, n)     // predecessor node, -1 when unset
	prevEdge := make([]int, n) // index into adj[prev[v]] of the arriving edge
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
		prevEdge[i] = -1
	}
	dist[from] = 0

	pq := &nodeQueue{}
	heap.Push(pq, nodeDist{node: from, dist: 0})
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		u := cur.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == to {
			break
		}
		for ei, e := range g.adj[u] {
			v := e.To
			if settled[v] {
				continue
			}
			alt := dist[u] + e.TravelTime()
			if alt < dist[v] {
				dist[v] = alt
				prev[v] = int(u)
				prevEdge[v] = ei
				heap.Push(pq, nodeDist{node: v, dist: alt})
			}
		}
	}
	if math.IsInf(dist[to], 1) {
		return Route{}, fmt.Errorf("%w: %d -> %d", ErrNoPath, from, to)
	}

	// Reconstruct in reverse.
	var nodes []NodeID
	var edges []Edge
	length := 0.0
	for v := to; ; {
		nodes = append(nodes, v)
		p := prev[v]
		if p < 0 {
			break
		}
		e := g.adj[p][prevEdge[v]]
		edges = append(edges, e)
		length += e.Length
		v = NodeID(p)
	}
	reverseNodes(nodes)
	reverseEdges(edges)
	return Route{Nodes: nodes, Edges: edges, Length: length, Time: dist[to]}, nil
}

// Reachable reports whether to is reachable from from.
func (g *Graph) Reachable(from, to NodeID) bool {
	_, err := g.ShortestPath(from, to)
	return err == nil
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []Edge) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

type nodeDist struct {
	node NodeID
	dist float64
}

type nodeQueue []nodeDist

var _ heap.Interface = (*nodeQueue)(nil)

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(nodeDist)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
