package roadnet

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoPath is returned when the destination is unreachable from the origin.
var ErrNoPath = errors.New("roadnet: no path")

// Route is a shortest path through the network: the node sequence, the edge
// sequence connecting them, the total length in meters, and the free-flow
// travel time in seconds.
type Route struct {
	Nodes  []NodeID
	Edges  []Edge
	Length float64 // meters
	Time   float64 // seconds at free-flow speed
}

// ShortestPath computes the fastest route (by free-flow travel time) from
// origin to destination using Dijkstra's algorithm. A route from a node to
// itself is valid and has zero length.
//
// Each call allocates fresh search state, so concurrent calls on a
// constructed graph are safe. Loops that issue many queries against the
// same graph should use a PathFinder, which reuses that state.
func (g *Graph) ShortestPath(from, to NodeID) (Route, error) {
	return NewPathFinder(g).ShortestPath(from, to)
}

// Reachable reports whether to is reachable from from.
func (g *Graph) Reachable(from, to NodeID) bool {
	_, err := g.ShortestPath(from, to)
	return err == nil
}

// PathFinder runs Dijkstra queries against a fixed graph, reusing all
// search state across calls: the distance/predecessor arrays are
// epoch-stamped so a new query starts without an O(n) clear, and the
// priority queue is a typed binary heap that keeps the exact sibling
// comparison order of container/heap, so a PathFinder returns
// byte-identical routes to Graph.ShortestPath — including on ties.
//
// A PathFinder is not safe for concurrent use; concurrent searchers each
// need their own.
type PathFinder struct {
	g *Graph

	dist     []float64
	prev     []int32 // predecessor node, valid when stamp matches
	prevEdge []int32 // index into adj[prev[v]] of the arriving edge
	seen     []uint32
	settled  []uint32
	epoch    uint32

	pq []nodeDist
}

// NewPathFinder returns a PathFinder over g. The graph topology must not
// be mutated while the PathFinder is in use.
func NewPathFinder(g *Graph) *PathFinder {
	n := len(g.nodes)
	return &PathFinder{
		g:        g,
		dist:     make([]float64, n),
		prev:     make([]int32, n),
		prevEdge: make([]int32, n),
		seen:     make([]uint32, n),
		settled:  make([]uint32, n),
	}
}

// ShortestPath computes the fastest route from origin to destination; see
// Graph.ShortestPath for the route semantics.
func (p *PathFinder) ShortestPath(from, to NodeID) (Route, error) {
	g := p.g
	if !g.valid(from) || !g.valid(to) {
		return Route{}, fmt.Errorf("roadnet: shortest path: unknown node (%d -> %d)", from, to)
	}
	if from == to {
		return Route{Nodes: []NodeID{from}}, nil
	}

	if p.epoch == math.MaxUint32 {
		for i := range p.seen {
			p.seen[i] = 0
			p.settled[i] = 0
		}
		p.epoch = 0
	}
	p.epoch++
	epoch := p.epoch

	p.dist[from] = 0
	p.prev[from] = -1
	p.prevEdge[from] = -1
	p.seen[from] = epoch

	p.pq = p.pq[:0]
	p.push(nodeDist{node: from, dist: 0})
	found := false
	for len(p.pq) > 0 {
		cur := p.pop()
		u := cur.node
		if p.settled[u] == epoch {
			continue
		}
		p.settled[u] = epoch
		if u == to {
			found = true
			break
		}
		du := p.dist[u]
		for ei, e := range g.adj[u] {
			v := e.To
			if p.settled[v] == epoch {
				continue
			}
			alt := du + e.TravelTime()
			if p.seen[v] != epoch || alt < p.dist[v] {
				p.dist[v] = alt
				p.prev[v] = int32(u)
				p.prevEdge[v] = int32(ei)
				p.seen[v] = epoch
				p.push(nodeDist{node: v, dist: alt})
			}
		}
	}
	if !found {
		return Route{}, fmt.Errorf("%w: %d -> %d", ErrNoPath, from, to)
	}

	// Reconstruct in reverse. Routes outlive the search state, so they get
	// fresh slices.
	var nodes []NodeID
	var edges []Edge
	length := 0.0
	for v := to; ; {
		nodes = append(nodes, v)
		pn := p.prev[v]
		if pn < 0 {
			break
		}
		e := g.adj[pn][p.prevEdge[v]]
		edges = append(edges, e)
		length += e.Length
		v = NodeID(pn)
	}
	reverseNodes(nodes)
	reverseEdges(edges)
	return Route{Nodes: nodes, Edges: edges, Length: length, Time: p.dist[to]}, nil
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []Edge) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

type nodeDist struct {
	node NodeID
	dist float64
}

// push/pop/up/down form a typed min-heap on dist that mirrors
// container/heap's sift algorithms step for step. Less is a strict <, so
// equal-distance siblings keep the same relative order the boxed heap
// produced — pop order, and therefore route tie-breaking, is unchanged.

func (p *PathFinder) push(x nodeDist) {
	p.pq = append(p.pq, x)
	p.up(len(p.pq) - 1)
}

func (p *PathFinder) pop() nodeDist {
	n := len(p.pq) - 1
	p.pq[0], p.pq[n] = p.pq[n], p.pq[0]
	p.down(0, n)
	item := p.pq[n]
	p.pq = p.pq[:n]
	return item
}

func (p *PathFinder) up(j int) {
	q := p.pq
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (p *PathFinder) down(i0, n int) {
	q := p.pq
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].dist < q[j1].dist {
			j = j2
		}
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}
