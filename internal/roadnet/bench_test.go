package roadnet

import (
	"testing"

	"roadrunner/internal/sim"
)

// BenchmarkShortestPath measures route planning on the default city grid
// (used once per generated trip).
func BenchmarkShortestPath(b *testing.B) {
	g, err := Generate(DefaultGridConfig(), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	n := g.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n))
		if from == to {
			continue
		}
		if _, err := g.ShortestPath(from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateGrid measures road-network construction.
func BenchmarkGenerateGrid(b *testing.B) {
	cfg := DefaultGridConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, sim.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
