package roadnet

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/sim"
)

func TestPointDist(t *testing.T) {
	p := Point{X: 0, Y: 0}
	q := Point{X: 3, Y: 4}
	if got := p.Dist(q); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := q.Dist(p); got != 5 {
		t.Fatalf("Dist not symmetric: %v", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Fatalf("Dist to self = %v", got)
	}
}

func TestPointLerp(t *testing.T) {
	p := Point{X: 0, Y: 10}
	q := Point{X: 10, Y: 20}
	if got := p.Lerp(q, 0); got != p {
		t.Fatalf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Fatalf("Lerp(1) = %v, want %v", got, q)
	}
	mid := p.Lerp(q, 0.5)
	if mid.X != 5 || mid.Y != 15 {
		t.Fatalf("Lerp(0.5) = %v, want {5 15}", mid)
	}
}

func TestGraphAddNodeAndEdge(t *testing.T) {
	var g Graph
	a := g.AddNode(Point{X: 0, Y: 0})
	b := g.AddNode(Point{X: 100, Y: 0})
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if err := g.AddEdge(a, b, 10); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	out := g.OutEdges(a)
	if len(out) != 1 {
		t.Fatalf("OutEdges(a) has %d edges", len(out))
	}
	e := out[0]
	if e.Length != 100 {
		t.Fatalf("edge length = %v, want 100 (computed from geometry)", e.Length)
	}
	if got := e.TravelTime(); got != 10 {
		t.Fatalf("TravelTime = %v, want 10", got)
	}
}

func TestGraphRejectsBadEdges(t *testing.T) {
	var g Graph
	a := g.AddNode(Point{})
	b := g.AddNode(Point{X: 1})
	if err := g.AddEdge(a, NodeID(99), 10); err == nil {
		t.Fatal("AddEdge to unknown node succeeded")
	}
	if err := g.AddEdge(a, a, 10); err == nil {
		t.Fatal("self-loop succeeded")
	}
	if err := g.AddEdge(a, b, 0); err == nil {
		t.Fatal("zero-speed edge succeeded")
	}
	if err := g.AddEdge(a, b, -5); err == nil {
		t.Fatal("negative-speed edge succeeded")
	}
}

func TestGraphNodeLookup(t *testing.T) {
	var g Graph
	id := g.AddNode(Point{X: 7, Y: 8})
	n, err := g.Node(id)
	if err != nil {
		t.Fatalf("Node: %v", err)
	}
	if n.Pos != (Point{X: 7, Y: 8}) {
		t.Fatalf("Node pos = %v", n.Pos)
	}
	if _, err := g.Node(NodeID(5)); err == nil {
		t.Fatal("Node(5) succeeded on 1-node graph")
	}
	if g.Pos(NodeID(-1)) != (Point{}) {
		t.Fatal("Pos of invalid node not zero")
	}
}

func TestEdgeTravelTimeZeroSpeed(t *testing.T) {
	e := Edge{Length: 100, Speed: 0}
	if !math.IsInf(e.TravelTime(), 1) {
		t.Fatalf("TravelTime with zero speed = %v, want +Inf", e.TravelTime())
	}
}

func lineGraph(t *testing.T, n int, spacing, speed float64) (*Graph, []NodeID) {
	t.Helper()
	var g Graph
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(Point{X: float64(i) * spacing})
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddRoad(ids[i], ids[i+1], speed); err != nil {
			t.Fatalf("AddRoad: %v", err)
		}
	}
	return &g, ids
}

func TestShortestPathLine(t *testing.T) {
	g, ids := lineGraph(t, 5, 100, 10)
	r, err := g.ShortestPath(ids[0], ids[4])
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if r.Length != 400 {
		t.Fatalf("Length = %v, want 400", r.Length)
	}
	if r.Time != 40 {
		t.Fatalf("Time = %v, want 40", r.Time)
	}
	if len(r.Nodes) != 5 {
		t.Fatalf("Nodes = %v", r.Nodes)
	}
	if len(r.Edges) != 4 {
		t.Fatalf("Edges count = %d", len(r.Edges))
	}
	for i := range r.Nodes {
		if r.Nodes[i] != ids[i] {
			t.Fatalf("Nodes[%d] = %v, want %v", i, r.Nodes[i], ids[i])
		}
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g, ids := lineGraph(t, 3, 100, 10)
	r, err := g.ShortestPath(ids[1], ids[1])
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if r.Length != 0 || r.Time != 0 || len(r.Nodes) != 1 || len(r.Edges) != 0 {
		t.Fatalf("self route = %+v, want trivial", r)
	}
}

func TestShortestPathPrefersFasterRoad(t *testing.T) {
	// Two routes a->d: direct slow street (300 m at 5 m/s = 60 s) vs a
	// detour over a fast arterial (400 m at 20 m/s = 20 s).
	var g Graph
	a := g.AddNode(Point{X: 0, Y: 0})
	d := g.AddNode(Point{X: 300, Y: 0})
	b := g.AddNode(Point{X: 0, Y: 100})
	c := g.AddNode(Point{X: 300, Y: 100})
	if err := g.AddEdge(a, d, 5); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]NodeID{{a, b}, {b, c}, {c, d}} {
		if err := g.AddEdge(pair[0], pair[1], 20); err != nil {
			t.Fatal(err)
		}
	}
	r, err := g.ShortestPath(a, d)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if len(r.Nodes) != 4 {
		t.Fatalf("route = %v, want the 4-node arterial detour", r.Nodes)
	}
	if math.Abs(r.Time-25) > 1e-9 { // 500 m / 20 m/s
		t.Fatalf("Time = %v, want 25", r.Time)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	var g Graph
	a := g.AddNode(Point{})
	b := g.AddNode(Point{X: 100})
	if _, err := g.ShortestPath(a, b); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	if g.Reachable(a, b) {
		t.Fatal("Reachable = true for disconnected nodes")
	}
	if err := g.AddRoad(a, b, 10); err != nil {
		t.Fatal(err)
	}
	if !g.Reachable(a, b) {
		t.Fatal("Reachable = false after adding road")
	}
}

func TestShortestPathRespectsDirection(t *testing.T) {
	var g Graph
	a := g.AddNode(Point{})
	b := g.AddNode(Point{X: 100})
	if err := g.AddEdge(a, b, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath(a, b); err != nil {
		t.Fatalf("forward path: %v", err)
	}
	if _, err := g.ShortestPath(b, a); !errors.Is(err, ErrNoPath) {
		t.Fatalf("reverse path on one-way edge: err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathUnknownNodes(t *testing.T) {
	var g Graph
	a := g.AddNode(Point{})
	if _, err := g.ShortestPath(a, NodeID(9)); err == nil {
		t.Fatal("unknown destination succeeded")
	}
	if _, err := g.ShortestPath(NodeID(9), a); err == nil {
		t.Fatal("unknown origin succeeded")
	}
}

func TestGridConfigValidate(t *testing.T) {
	base := DefaultGridConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*GridConfig){
		func(c *GridConfig) { c.Rows = 1 },
		func(c *GridConfig) { c.Cols = 0 },
		func(c *GridConfig) { c.Spacing = 0 },
		func(c *GridConfig) { c.StreetSpeed = -1 },
		func(c *GridConfig) { c.ArterialSpeed = 0 },
		func(c *GridConfig) { c.Irregularity = 1 },
		func(c *GridConfig) { c.Irregularity = -0.1 },
		func(c *GridConfig) { c.Jitter = c.Spacing },
	}
	for i, mutate := range mutations {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d produced a config that validates", i)
		}
	}
}

func TestGenerateGridShape(t *testing.T) {
	cfg := GridConfig{Rows: 4, Cols: 5, Spacing: 100, StreetSpeed: 10}
	g, err := Generate(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d, want 20", g.NumNodes())
	}
	// 4*4 horizontal + 5*3 vertical two-way roads = 31 roads = 62 edges.
	if g.NumEdges() != 62 {
		t.Fatalf("NumEdges = %d, want 62", g.NumEdges())
	}
}

func TestGenerateGridIsConnected(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Irregularity = 0.3
	g, err := Generate(cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, target := range []NodeID{1, NodeID(g.NumNodes() / 2), NodeID(g.NumNodes() - 1)} {
		if !g.Reachable(0, target) {
			t.Fatalf("node %d unreachable from node 0 despite connectivity guarantee", target)
		}
	}
}

func TestGenerateGridIrregularityRemovesRoads(t *testing.T) {
	full := GridConfig{Rows: 10, Cols: 10, Spacing: 100, StreetSpeed: 10}
	sparse := full
	sparse.Irregularity = 0.2
	gFull, err := Generate(full, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	gSparse, err := Generate(sparse, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if gSparse.NumEdges() >= gFull.NumEdges() {
		t.Fatalf("irregular grid has %d edges, full has %d; want fewer", gSparse.NumEdges(), gFull.NumEdges())
	}
}

func TestGenerateGridDeterministic(t *testing.T) {
	cfg := DefaultGridConfig()
	g1, err := Generate(cfg, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < g1.NumNodes(); i++ {
		if g1.Pos(NodeID(i)) != g2.Pos(NodeID(i)) {
			t.Fatalf("node %d position differs between identically seeded runs", i)
		}
	}
}

func TestGenerateGridArterialsFaster(t *testing.T) {
	cfg := GridConfig{
		Rows: 6, Cols: 6, Spacing: 100,
		StreetSpeed: 8, ArterialSpeed: 16, ArterialEvery: 3,
	}
	g, err := Generate(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	speeds := map[float64]int{}
	for n := 0; n < g.NumNodes(); n++ {
		for _, e := range g.OutEdges(NodeID(n)) {
			speeds[e.Speed]++
		}
	}
	if speeds[8] == 0 || speeds[16] == 0 {
		t.Fatalf("expected both street and arterial speeds, got %v", speeds)
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	if _, err := Generate(GridConfig{}, sim.NewRNG(1)); err == nil {
		t.Fatal("Generate with zero config succeeded")
	}
}

// TestShortestPathTriangleInequality: for random grid graphs, the shortest
// time a->c never exceeds a->b + b->c.
func TestShortestPathTriangleInequality(t *testing.T) {
	cfg := GridConfig{Rows: 6, Cols: 6, Spacing: 100, StreetSpeed: 10, Irregularity: 0.1}
	g, err := Generate(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(ai, bi, ci uint8) bool {
		n := NodeID(g.NumNodes())
		a, b, c := NodeID(ai)%n, NodeID(bi)%n, NodeID(ci)%n
		rac, err1 := g.ShortestPath(a, c)
		rab, err2 := g.ShortestPath(a, b)
		rbc, err3 := g.ShortestPath(b, c)
		if err1 != nil || err2 != nil || err3 != nil {
			return false // generated grid is connected; any error is a bug
		}
		return rac.Time <= rab.Time+rbc.Time+1e-9
	}
	cfg2 := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg2); err != nil {
		t.Fatal(err)
	}
}

// TestShortestPathMatchesEdgeSum: the reported Length/Time always equal the
// sums over the returned edge sequence, and edges connect the node sequence.
func TestShortestPathInternalConsistency(t *testing.T) {
	cfg := GridConfig{Rows: 5, Cols: 5, Spacing: 120, StreetSpeed: 12, ArterialEvery: 2, ArterialSpeed: 24}
	g, err := Generate(cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(ai, bi uint8) bool {
		n := NodeID(g.NumNodes())
		a, b := NodeID(ai)%n, NodeID(bi)%n
		r, err := g.ShortestPath(a, b)
		if err != nil {
			return false
		}
		if len(r.Edges) != len(r.Nodes)-1 {
			return false
		}
		var length, tt float64
		for i, e := range r.Edges {
			if e.From != r.Nodes[i] || e.To != r.Nodes[i+1] {
				return false
			}
			length += e.Length
			tt += e.TravelTime()
		}
		return math.Abs(length-r.Length) < 1e-6 && math.Abs(tt-r.Time) < 1e-6
	}
	qc := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}
