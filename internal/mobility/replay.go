package mobility

import (
	"fmt"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// Replayer answers position and ignition queries against a recorded trace
// set. It is the read-side of the paper's "spatial dynamics are replayed by
// the core simulator" design. Replayer is safe for concurrent readers once
// constructed.
type Replayer struct {
	ts *TraceSet
}

// NewReplayer validates the trace set and wraps it for replay.
func NewReplayer(ts *TraceSet) (*Replayer, error) {
	if ts == nil {
		return nil, fmt.Errorf("mobility: nil trace set")
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: replayer: %w", err)
	}
	return &Replayer{ts: ts}, nil
}

// NumVehicles returns the fleet size.
func (r *Replayer) NumVehicles() int { return r.ts.NumVehicles() }

// Horizon returns the end of the recorded period.
func (r *Replayer) Horizon() sim.Time { return r.ts.Horizon }

// At returns vehicle v's interpolated position and ignition state at t.
func (r *Replayer) At(v int, t sim.Time) (roadnet.Point, bool, error) {
	if v < 0 || v >= r.ts.NumVehicles() {
		return roadnet.Point{}, false, fmt.Errorf("mobility: unknown vehicle %d", v)
	}
	pos, on := r.ts.Traces[v].At(t)
	return pos, on, nil
}

// Positions fills dst (len == fleet size) with every vehicle's position at
// t and returns the parallel ignition states in onDst. It allocates when
// dst/onDst are nil or wrongly sized.
func (r *Replayer) Positions(t sim.Time, dst []roadnet.Point, onDst []bool) ([]roadnet.Point, []bool) {
	n := r.ts.NumVehicles()
	if len(dst) != n {
		dst = make([]roadnet.Point, n)
	}
	if len(onDst) != n {
		onDst = make([]bool, n)
	}
	for v := 0; v < n; v++ {
		dst[v], onDst[v] = r.ts.Traces[v].At(t)
	}
	return dst, onDst
}

// Cursor caches each vehicle's last trace segment so monotone-in-time
// replay (the tick loop) costs amortized O(1) per query instead of a
// binary search over the whole trajectory. A cursor belongs to one reading
// goroutine; the Replayer itself stays safe for concurrent readers.
// Querying backwards in time is allowed — it just falls back to the
// binary search.
type Cursor struct {
	seg []int
}

// NewCursor returns a cursor sized for the fleet, positioned at the start
// of every trace.
func (r *Replayer) NewCursor() *Cursor {
	return &Cursor{seg: make([]int, r.ts.NumVehicles())}
}

// AtCursor is At with segment caching: bit-identical results, amortized
// O(1) for non-decreasing query times per vehicle. A nil cursor degrades
// to plain At.
func (r *Replayer) AtCursor(c *Cursor, v int, t sim.Time) (roadnet.Point, bool, error) {
	if v < 0 || v >= r.ts.NumVehicles() {
		return roadnet.Point{}, false, fmt.Errorf("mobility: unknown vehicle %d", v)
	}
	hint := -1
	if c != nil {
		hint = c.seg[v]
	}
	pos, on, seg := r.ts.Traces[v].atSeg(t, hint)
	if c != nil {
		c.seg[v] = seg
	}
	return pos, on, nil
}

// TraceSet exposes the underlying trace set (read-only by convention).
func (r *Replayer) TraceSet() *TraceSet { return r.ts }

// Transitions returns vehicle v's ignition transitions in time order.
func (r *Replayer) Transitions(v int) ([]Transition, error) {
	if v < 0 || v >= r.ts.NumVehicles() {
		return nil, fmt.Errorf("mobility: unknown vehicle %d", v)
	}
	return r.ts.Traces[v].Transitions(), nil
}

// Distance returns the distance in meters between vehicles a and b at t.
func (r *Replayer) Distance(a, b int, t sim.Time) (float64, error) {
	pa, _, err := r.At(a, t)
	if err != nil {
		return 0, err
	}
	pb, _, err := r.At(b, t)
	if err != nil {
		return 0, err
	}
	return pa.Dist(pb), nil
}
