package mobility

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

func twoSampleTrace() Trace {
	return Trace{
		Vehicle: 0,
		Samples: []Sample{
			{T: 10, Pos: roadnet.Point{X: 0, Y: 0}, On: true},
			{T: 20, Pos: roadnet.Point{X: 100, Y: 0}, On: false},
		},
	}
}

func TestTraceAtInterpolates(t *testing.T) {
	tr := twoSampleTrace()
	pos, on := tr.At(15)
	if pos.X != 50 || pos.Y != 0 {
		t.Fatalf("At(15) pos = %v, want {50 0}", pos)
	}
	if !on {
		t.Fatal("At(15) on = false, want earlier sample's state (true)")
	}
}

func TestTraceAtBeforeFirstSample(t *testing.T) {
	tr := twoSampleTrace()
	pos, on := tr.At(5)
	if pos.X != 0 {
		t.Fatalf("At(5) pos = %v, want first sample position", pos)
	}
	if on {
		t.Fatal("At(5) on = true, want off before trace start")
	}
}

func TestTraceAtAfterLastSample(t *testing.T) {
	tr := twoSampleTrace()
	pos, on := tr.At(100)
	if pos.X != 100 {
		t.Fatalf("At(100) pos = %v, want last sample position", pos)
	}
	if on {
		t.Fatal("At(100) on = true, want last sample state (false)")
	}
}

func TestTraceAtExactSampleInstants(t *testing.T) {
	tr := twoSampleTrace()
	pos, on := tr.At(10)
	if pos.X != 0 || !on {
		t.Fatalf("At(10) = (%v, %v), want ({0 0}, true)", pos, on)
	}
	pos, on = tr.At(20)
	if pos.X != 100 || on {
		t.Fatalf("At(20) = (%v, %v), want ({100 0}, false)", pos, on)
	}
}

func TestTraceAtEmpty(t *testing.T) {
	var tr Trace
	pos, on := tr.At(5)
	if pos != (roadnet.Point{}) || on {
		t.Fatalf("empty trace At = (%v, %v)", pos, on)
	}
}

func TestTraceValidateOrdering(t *testing.T) {
	tr := Trace{Samples: []Sample{{T: 10}, {T: 10}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("duplicate timestamps validated")
	}
	tr = Trace{Samples: []Sample{{T: 10}, {T: 5}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("decreasing timestamps validated")
	}
	tr = Trace{Samples: []Sample{{T: sim.Time(math.NaN())}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("NaN timestamp validated")
	}
	good := twoSampleTrace()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestTraceTransitions(t *testing.T) {
	tr := Trace{Samples: []Sample{
		{T: 0, On: false},
		{T: 10, On: true},
		{T: 20, On: true}, // no transition
		{T: 30, On: false},
		{T: 40, On: true},
	}}
	got := tr.Transitions()
	want := []Transition{{T: 10, On: true}, {T: 30, On: false}, {T: 40, On: true}}
	if len(got) != len(want) {
		t.Fatalf("Transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Transitions[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTraceTransitionsInitialOn(t *testing.T) {
	tr := Trace{Samples: []Sample{{T: 0, On: true}}}
	got := tr.Transitions()
	if len(got) != 1 || got[0] != (Transition{T: 0, On: true}) {
		t.Fatalf("Transitions = %v, want initial on at t=0", got)
	}
}

func TestTraceOnFraction(t *testing.T) {
	tr := Trace{Samples: []Sample{
		{T: 0, On: true},
		{T: 50, On: false},
	}}
	if got := tr.OnFraction(100); got != 0.5 {
		t.Fatalf("OnFraction(100) = %v, want 0.5", got)
	}
	if got := tr.OnFraction(50); got != 1.0 {
		t.Fatalf("OnFraction(50) = %v, want 1", got)
	}
	if got := tr.OnFraction(0); got != 0 {
		t.Fatalf("OnFraction(0) = %v, want 0", got)
	}
}

func TestTraceSetValidateDenseIndices(t *testing.T) {
	ts := &TraceSet{Traces: []Trace{{Vehicle: 1}}, Horizon: 10}
	if err := ts.Validate(); err == nil {
		t.Fatal("non-dense vehicle indices validated")
	}
	ts = &TraceSet{Traces: []Trace{{Vehicle: 0}}, Horizon: sim.Time(math.Inf(1))}
	if err := ts.Validate(); err == nil {
		t.Fatal("infinite horizon validated")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ts := &TraceSet{
		Horizon: 1000,
		Traces: []Trace{
			{Vehicle: 0, Samples: []Sample{
				{T: 0, Pos: roadnet.Point{X: 1.5, Y: -2.25}, On: false},
				{T: 10.125, Pos: roadnet.Point{X: 3, Y: 4}, On: true},
			}},
			{Vehicle: 1, Samples: []Sample{
				{T: 5, Pos: roadnet.Point{X: 0, Y: 0}, On: true},
			}},
			{Vehicle: 2}, // empty trace must survive
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Horizon != ts.Horizon {
		t.Fatalf("horizon = %v, want %v", got.Horizon, ts.Horizon)
	}
	if got.NumVehicles() != 3 {
		t.Fatalf("vehicles = %d, want 3", got.NumVehicles())
	}
	for v := range ts.Traces {
		if len(got.Traces[v].Samples) != len(ts.Traces[v].Samples) {
			t.Fatalf("vehicle %d: %d samples, want %d", v, len(got.Traces[v].Samples), len(ts.Traces[v].Samples))
		}
		for i, s := range ts.Traces[v].Samples {
			if got.Traces[v].Samples[i] != s {
				t.Fatalf("vehicle %d sample %d = %+v, want %+v", v, i, got.Traces[v].Samples[i], s)
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad header":  "a,b,c,d,e\n",
		"bad vehicle": csvHeader + "\nx,0,0,0,0\n",
		"bad time":    csvHeader + "\n0,x,0,0,0\n",
		"bad x":       csvHeader + "\n0,0,x,0,0\n",
		"bad y":       csvHeader + "\n0,0,0,x,0\n",
		"bad on":      csvHeader + "\n0,0,0,0,2\n",
		"unordered":   csvHeader + "\n0,10,0,0,0\n0,5,0,0,0\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadCSV succeeded", name)
		}
	}
}

func TestWriteCSVRejectsInvalid(t *testing.T) {
	ts := &TraceSet{Traces: []Trace{{Vehicle: 3}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err == nil {
		t.Fatal("WriteCSV of invalid trace set succeeded")
	}
}
