package mobility

import (
	"testing"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

func testNetwork(t *testing.T) *roadnet.Graph {
	t.Helper()
	cfg := roadnet.GridConfig{Rows: 6, Cols: 6, Spacing: 300, StreetSpeed: 10}
	g, err := roadnet.Generate(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("roadnet.Generate: %v", err)
	}
	return g
}

func smallGenConfig() GenConfig {
	return GenConfig{
		Vehicles:          10,
		Horizon:           1800,
		DwellMin:          30,
		DwellMax:          120,
		OffWhenParkedProb: 0.5,
		SpeedFactorMin:    0.8,
		SpeedFactorMax:    1.0,
		InitialDwellMax:   60,
	}
}

func TestGenConfigValidate(t *testing.T) {
	if err := DefaultGenConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.Vehicles = 0 },
		func(c *GenConfig) { c.Horizon = 0 },
		func(c *GenConfig) { c.DwellMin = -1 },
		func(c *GenConfig) { c.DwellMax = c.DwellMin - 1 },
		func(c *GenConfig) { c.OffWhenParkedProb = 1.5 },
		func(c *GenConfig) { c.SpeedFactorMin = 0 },
		func(c *GenConfig) { c.SpeedFactorMax = 0.1 },
		func(c *GenConfig) { c.InitialDwellMax = -1 },
		func(c *GenConfig) { c.MaxRouteTries = -1 },
	}
	for i, mutate := range mutations {
		c := DefaultGenConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestGenerateProducesValidTraces(t *testing.T) {
	g := testNetwork(t)
	ts, err := Generate(smallGenConfig(), g, sim.NewRNG(7))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if ts.NumVehicles() != 10 {
		t.Fatalf("vehicles = %d, want 10", ts.NumVehicles())
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("generated traces invalid: %v", err)
	}
	for v, tr := range ts.Traces {
		if len(tr.Samples) < 2 {
			t.Fatalf("vehicle %d has only %d samples", v, len(tr.Samples))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testNetwork(t)
	a, err := Generate(smallGenConfig(), g, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallGenConfig(), g, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Traces {
		if len(a.Traces[v].Samples) != len(b.Traces[v].Samples) {
			t.Fatalf("vehicle %d: sample counts differ", v)
		}
		for i := range a.Traces[v].Samples {
			if a.Traces[v].Samples[i] != b.Traces[v].Samples[i] {
				t.Fatalf("vehicle %d sample %d differs between identically seeded runs", v, i)
			}
		}
	}
}

func TestGeneratePositionsLieNearNetwork(t *testing.T) {
	// Every sample position must coincide with some network node: the
	// generator emits waypoints only at intersections.
	g := testNetwork(t)
	ts, err := Generate(smallGenConfig(), g, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	nodePos := make(map[roadnet.Point]bool)
	for i := 0; i < g.NumNodes(); i++ {
		nodePos[g.Pos(roadnet.NodeID(i))] = true
	}
	for v, tr := range ts.Traces {
		for i, s := range tr.Samples {
			if !nodePos[s.Pos] {
				t.Fatalf("vehicle %d sample %d at %v is not a network node", v, i, s.Pos)
			}
		}
	}
}

func TestGenerateSpeedsArePlausible(t *testing.T) {
	// Between consecutive on-samples, implied speed must stay within the
	// street speed scaled by the speed-factor range (with float slack).
	g := testNetwork(t)
	cfg := smallGenConfig()
	ts, err := Generate(cfg, g, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	maxSpeed := 10 * cfg.SpeedFactorMax * 1.001
	for v, tr := range ts.Traces {
		for i := 1; i < len(tr.Samples); i++ {
			a, b := tr.Samples[i-1], tr.Samples[i]
			dist := a.Pos.Dist(b.Pos)
			if dist == 0 {
				continue
			}
			dt := float64(b.T.Sub(a.T))
			speed := dist / dt
			if speed > maxSpeed {
				t.Fatalf("vehicle %d segment %d: speed %.2f m/s exceeds max %.2f", v, i, speed, maxSpeed)
			}
		}
	}
}

func TestGenerateOffVehiclesDoNotMove(t *testing.T) {
	g := testNetwork(t)
	ts, err := Generate(smallGenConfig(), g, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for v, tr := range ts.Traces {
		for i := 1; i < len(tr.Samples); i++ {
			a, b := tr.Samples[i-1], tr.Samples[i]
			if !a.On && a.Pos.Dist(b.Pos) > 0 {
				t.Fatalf("vehicle %d moved from %v to %v while off", v, a.Pos, b.Pos)
			}
		}
	}
}

func TestGenerateChurnHappens(t *testing.T) {
	g := testNetwork(t)
	cfg := smallGenConfig()
	cfg.Vehicles = 30
	cfg.OffWhenParkedProb = 0.8
	ts, err := Generate(cfg, g, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	transitions := 0
	for _, tr := range ts.Traces {
		transitions += len(tr.Transitions())
	}
	if transitions < cfg.Vehicles {
		t.Fatalf("only %d ignition transitions across %d vehicles; churn missing", transitions, cfg.Vehicles)
	}
}

func TestGenerateZeroOffProbKeepsFleetOn(t *testing.T) {
	g := testNetwork(t)
	cfg := smallGenConfig()
	cfg.OffWhenParkedProb = 0
	ts, err := Generate(cfg, g, sim.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	for v, tr := range ts.Traces {
		frac := tr.OnFraction(ts.Horizon)
		if frac < 0.99 {
			t.Fatalf("vehicle %d on-fraction = %v with zero off probability", v, frac)
		}
	}
}

func TestGenerateOnFractionReasonable(t *testing.T) {
	g := testNetwork(t)
	cfg := smallGenConfig()
	cfg.Vehicles = 40
	ts, err := Generate(cfg, g, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tr := range ts.Traces {
		sum += tr.OnFraction(ts.Horizon)
	}
	mean := sum / float64(cfg.Vehicles)
	if mean < 0.3 || mean > 0.99 {
		t.Fatalf("fleet mean on-fraction = %v; generator parameters broken", mean)
	}
}

func TestGenerateRejectsBadInputs(t *testing.T) {
	g := testNetwork(t)
	if _, err := Generate(GenConfig{}, g, sim.NewRNG(1)); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Generate(smallGenConfig(), nil, sim.NewRNG(1)); err == nil {
		t.Fatal("nil graph accepted")
	}
	var tiny roadnet.Graph
	tiny.AddNode(roadnet.Point{})
	if _, err := Generate(smallGenConfig(), &tiny, sim.NewRNG(1)); err == nil {
		t.Fatal("1-node graph accepted")
	}
}

func TestGenerateUnreachableDestinationsFail(t *testing.T) {
	// Two disconnected nodes: route drawing must eventually error out.
	var g roadnet.Graph
	g.AddNode(roadnet.Point{})
	g.AddNode(roadnet.Point{X: 100})
	cfg := smallGenConfig()
	cfg.Vehicles = 1
	if _, err := Generate(cfg, &g, sim.NewRNG(1)); err == nil {
		t.Fatal("Generate succeeded on a disconnected network")
	}
}

func TestReplayerBasics(t *testing.T) {
	g := testNetwork(t)
	ts, err := Generate(smallGenConfig(), g, sim.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer(ts)
	if err != nil {
		t.Fatalf("NewReplayer: %v", err)
	}
	if r.NumVehicles() != ts.NumVehicles() {
		t.Fatalf("NumVehicles = %d", r.NumVehicles())
	}
	if r.Horizon() != ts.Horizon {
		t.Fatalf("Horizon = %v", r.Horizon())
	}
	if _, _, err := r.At(0, 100); err != nil {
		t.Fatalf("At: %v", err)
	}
	if _, _, err := r.At(-1, 100); err == nil {
		t.Fatal("At(-1) succeeded")
	}
	if _, _, err := r.At(99, 100); err == nil {
		t.Fatal("At(99) succeeded")
	}
	if _, err := r.Transitions(0); err != nil {
		t.Fatalf("Transitions: %v", err)
	}
	if _, err := r.Transitions(99); err == nil {
		t.Fatal("Transitions(99) succeeded")
	}
}

func TestReplayerPositionsMatchesAt(t *testing.T) {
	g := testNetwork(t)
	ts, err := Generate(smallGenConfig(), g, sim.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer(ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, instant := range []sim.Time{0, 17, 300, 900, 1799} {
		pos, on := r.Positions(instant, nil, nil)
		for v := 0; v < r.NumVehicles(); v++ {
			p, o, err := r.At(v, instant)
			if err != nil {
				t.Fatal(err)
			}
			if pos[v] != p || on[v] != o {
				t.Fatalf("t=%v vehicle %d: Positions=(%v,%v) At=(%v,%v)", instant, v, pos[v], on[v], p, o)
			}
		}
	}
}

func TestReplayerPositionsReusesBuffers(t *testing.T) {
	g := testNetwork(t)
	ts, err := Generate(smallGenConfig(), g, sim.NewRNG(14))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer(ts)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]roadnet.Point, r.NumVehicles())
	on := make([]bool, r.NumVehicles())
	pos2, on2 := r.Positions(60, pos, on)
	if &pos2[0] != &pos[0] || &on2[0] != &on[0] {
		t.Fatal("Positions reallocated despite correctly sized buffers")
	}
}

func TestReplayerDistance(t *testing.T) {
	ts := &TraceSet{
		Horizon: 100,
		Traces: []Trace{
			{Vehicle: 0, Samples: []Sample{{T: 0, Pos: roadnet.Point{X: 0, Y: 0}, On: true}}},
			{Vehicle: 1, Samples: []Sample{{T: 0, Pos: roadnet.Point{X: 30, Y: 40}, On: true}}},
		},
	}
	r, err := NewReplayer(ts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Distance(0, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d != 50 {
		t.Fatalf("Distance = %v, want 50", d)
	}
	if _, err := r.Distance(0, 9, 50); err == nil {
		t.Fatal("Distance to unknown vehicle succeeded")
	}
}

func TestNewReplayerRejectsInvalid(t *testing.T) {
	if _, err := NewReplayer(nil); err == nil {
		t.Fatal("nil trace set accepted")
	}
	bad := &TraceSet{Traces: []Trace{{Vehicle: 5}}}
	if _, err := NewReplayer(bad); err == nil {
		t.Fatal("invalid trace set accepted")
	}
}
