package mobility

import (
	"fmt"
	"math"
	"sort"

	"roadrunner/internal/roadnet"
)

// SpatialIndex is a uniform-grid hash over vehicle positions, used by the
// core simulator to find V2X-range vehicle pairs without an O(n²) scan per
// tick. Rebuild it each tick, then query pairs or neighborhoods.
type SpatialIndex struct {
	cellSize float64
	cells    map[cellKey][]int
	pos      []roadnet.Point
	active   []bool

	// pairsBuf and neighborsBuf back the slices returned by PairsWithin
	// and Neighbors; both are reused, so each call invalidates the slice
	// the previous call returned.
	pairsBuf     []Pair
	neighborsBuf []int
}

type cellKey struct{ cx, cy int }

// NewSpatialIndex returns an index with the given cell size in meters.
// Choosing the cell size equal to the largest query radius keeps candidate
// sets small (a radius-r query then inspects at most 9 cells).
func NewSpatialIndex(cellSize float64) (*SpatialIndex, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("mobility: invalid spatial index cell size %v", cellSize)
	}
	return &SpatialIndex{cellSize: cellSize, cells: make(map[cellKey][]int)}, nil
}

// Rebuild re-populates the index with the given positions. Entries whose
// active flag is false are excluded (e.g. powered-off vehicles, which do
// not partake in V2X). The slices are retained until the next Rebuild and
// must not be mutated by the caller in between.
func (s *SpatialIndex) Rebuild(pos []roadnet.Point, active []bool) error {
	if active != nil && len(active) != len(pos) {
		return fmt.Errorf("mobility: rebuild: %d positions but %d active flags", len(pos), len(active))
	}
	// Keep the cell slices' capacity across rebuilds: the fleet moves a
	// little per tick, so cell occupancy is nearly stable and steady-state
	// rebuilds allocate nothing.
	for k, c := range s.cells {
		s.cells[k] = c[:0]
	}
	s.pos = pos
	s.active = active
	for i, p := range pos {
		if active != nil && !active[i] {
			continue
		}
		k := s.key(p)
		s.cells[k] = append(s.cells[k], i)
	}
	for k, c := range s.cells {
		if len(c) == 0 {
			delete(s.cells, k)
		}
	}
	return nil
}

func (s *SpatialIndex) key(p roadnet.Point) cellKey {
	return cellKey{
		cx: int(math.Floor(p.X / s.cellSize)),
		cy: int(math.Floor(p.Y / s.cellSize)),
	}
}

// Neighbors returns the indices of active entries within radius of entry i
// (excluding i itself), in ascending index order. The returned slice is
// owned by the index and valid until the next Neighbors call.
func (s *SpatialIndex) Neighbors(i int, radius float64) []int {
	if i < 0 || i >= len(s.pos) || radius < 0 {
		return nil
	}
	if s.active != nil && !s.active[i] {
		return nil
	}
	p := s.pos[i]
	reach := int(math.Ceil(radius / s.cellSize))
	center := s.key(p)
	out := s.neighborsBuf[:0]
	for cx := center.cx - reach; cx <= center.cx+reach; cx++ {
		for cy := center.cy - reach; cy <= center.cy+reach; cy++ {
			for _, j := range s.cells[cellKey{cx, cy}] {
				if j == i {
					continue
				}
				if p.Dist(s.pos[j]) <= radius {
					out = append(out, j)
				}
			}
		}
	}
	sort.Ints(out)
	s.neighborsBuf = out
	return out
}

// Pair is an unordered pair of entry indices with A < B.
type Pair struct{ A, B int }

// PairsWithin returns all active pairs at distance <= radius, each pair
// once with A < B, sorted lexicographically. This is the per-tick encounter
// candidate set. The returned slice is owned by the index and valid until
// the next PairsWithin call.
func (s *SpatialIndex) PairsWithin(radius float64) []Pair {
	if radius < 0 {
		return nil
	}
	out := s.pairsBuf[:0]
	reach := int(math.Ceil(radius / s.cellSize))
	for k, members := range s.cells {
		// Within-cell pairs.
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				a, b := members[x], members[y]
				if s.pos[a].Dist(s.pos[b]) <= radius {
					out = append(out, orderPair(a, b))
				}
			}
		}
		// Cross-cell pairs: visit each unordered cell pair once by only
		// looking at lexicographically greater neighbor cells. The usual
		// radius == cellSize case reaches exactly the four greater
		// neighbors, enumerated directly; other reaches scan the block.
		// The appends are kept inline (collect-then-sort) so roadlint can
		// see the map-iteration output is sorted before use.
		if reach == 1 {
			for _, nk := range [4]cellKey{
				{k.cx, k.cy + 1},
				{k.cx + 1, k.cy - 1},
				{k.cx + 1, k.cy},
				{k.cx + 1, k.cy + 1},
			} {
				others := s.cells[nk]
				if len(others) == 0 {
					continue
				}
				for _, a := range members {
					pa := s.pos[a]
					for _, b := range others {
						if pa.Dist(s.pos[b]) <= radius {
							out = append(out, orderPair(a, b))
						}
					}
				}
			}
		} else {
			for dx := -reach; dx <= reach; dx++ {
				for dy := -reach; dy <= reach; dy++ {
					nk := cellKey{k.cx + dx, k.cy + dy}
					if (dx == 0 && dy == 0) || !cellLess(k, nk) {
						continue
					}
					others := s.cells[nk]
					if len(others) == 0 {
						continue
					}
					for _, a := range members {
						pa := s.pos[a]
						for _, b := range others {
							if pa.Dist(s.pos[b]) <= radius {
								out = append(out, orderPair(a, b))
							}
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	s.pairsBuf = out
	return out
}

func orderPair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

func cellLess(a, b cellKey) bool {
	if a.cx != b.cx {
		return a.cx < b.cx
	}
	return a.cy < b.cy
}

// BruteForcePairs computes the same result as PairsWithin by checking every
// pair. It exists as the reference implementation for tests and as a
// fallback for tiny fleets.
func BruteForcePairs(pos []roadnet.Point, active []bool, radius float64) []Pair {
	var out []Pair
	for a := 0; a < len(pos); a++ {
		if active != nil && !active[a] {
			continue
		}
		for b := a + 1; b < len(pos); b++ {
			if active != nil && !active[b] {
				continue
			}
			if pos[a].Dist(pos[b]) <= radius {
				out = append(out, Pair{A: a, B: b})
			}
		}
	}
	return out
}

// EncounterTracker turns per-tick proximity snapshots into encounter
// begin/end events: an encounter begins when a pair first comes within
// range and ends when it leaves range (or either vehicle deactivates).
// Learning strategies such as the paper's OPP subscribe to these events to
// trigger opportunistic V2X model exchanges.
type EncounterTracker struct {
	inRange map[Pair]bool
}

// NewEncounterTracker returns an empty tracker.
func NewEncounterTracker() *EncounterTracker {
	return &EncounterTracker{inRange: make(map[Pair]bool)}
}

// Update consumes the current in-range pair set and returns the encounters
// that began and ended since the previous update, both sorted.
func (e *EncounterTracker) Update(current []Pair) (begins, ends []Pair) {
	cur := make(map[Pair]bool, len(current))
	for _, p := range current {
		cur[p] = true
		if !e.inRange[p] {
			begins = append(begins, p)
		}
	}
	for p := range e.inRange {
		if !cur[p] {
			ends = append(ends, p)
		}
	}
	e.inRange = cur
	sortPairs(begins)
	sortPairs(ends)
	return begins, ends
}

// Active reports whether the pair is currently in an encounter.
func (e *EncounterTracker) Active(p Pair) bool { return e.inRange[orderPair(p.A, p.B)] }

// ActiveCount returns the number of ongoing encounters.
func (e *EncounterTracker) ActiveCount() int { return len(e.inRange) }

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}
