package mobility

import (
	"fmt"
	"math"
	"sort"

	"roadrunner/internal/roadnet"
)

// maxTiles caps the dense tile array so a degenerate bounding box (huge
// extent, tiny cell size) cannot explode memory: beyond the cap the
// effective cell size is scaled up, which only widens candidate
// neighborhoods — never changes results, since every candidate passes an
// exact distance check.
const maxTiles = 1 << 21

// SpatialIndex is a flat tiled uniform grid over vehicle positions, used by
// the core simulator to find V2X-range vehicle pairs without an O(n²) scan
// per tick. The grid is a dense row-major tile array over a bounding box,
// with per-tile occupancy counts and per-entry doubly-linked tile
// membership, so a position update is an O(1) relink instead of a full
// rebuild. Positions outside the box clamp into the border tiles, which is
// safe: clamping is a contraction, so no in-range pair can land farther
// apart in tile space than its true distance allows, and every candidate is
// distance-checked exactly.
//
// Use it either batch-style (Rebuild each tick, as the paper-scale code
// did) or incrementally (SetBounds + Reset once, then Update per entry per
// tick); both produce identical query results. Steady-state operation
// allocates nothing.
type SpatialIndex struct {
	cellSize float64 // requested cell size, meters
	eff      float64 // effective cell size (≥ cellSize once tiles are capped)
	minX     float64
	minY     float64
	nx, ny   int
	bounded  bool // SetBounds fixed the box; Rebuild re-derives it otherwise

	heads  []int32 // per tile: first entry, -1 when empty
	counts []int32 // per tile: occupancy
	next   []int32 // per entry: tile-list links
	prev   []int32
	cellOf []int32 // per entry: tile index, -1 when absent (inactive)
	pos    []roadnet.Point
	active []bool

	// pairsBuf, neighborsBuf, and candBuf back the slices returned by
	// PairsWithin and Neighbors; they are reused, so each call invalidates
	// the slice the previous call returned.
	pairsBuf     []Pair
	neighborsBuf []int
	candBuf      []int32
}

// NewSpatialIndex returns an index with the given cell size in meters.
// Choosing the cell size equal to the largest query radius keeps candidate
// sets small (a radius-r query then inspects at most 9 tiles).
func NewSpatialIndex(cellSize float64) (*SpatialIndex, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("mobility: invalid spatial index cell size %v", cellSize)
	}
	return &SpatialIndex{cellSize: cellSize, eff: cellSize, nx: 1, ny: 1}, nil
}

// SetBounds fixes the tile grid to the given bounding box and clears the
// index. Callers that know the world extent up front (e.g. the road
// network's bounding box) should set it once and then drive the index
// incrementally; without fixed bounds every Rebuild re-derives the box from
// the data. Positions outside the box are clamped into border tiles.
func (s *SpatialIndex) SetBounds(min, max roadnet.Point) error {
	for _, v := range [4]float64{min.X, min.Y, max.X, max.Y} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("mobility: non-finite spatial bounds %v..%v", min, max)
		}
	}
	if max.X < min.X || max.Y < min.Y {
		return fmt.Errorf("mobility: inverted spatial bounds %v..%v", min, max)
	}
	s.setGrid(min.X, min.Y, max.X, max.Y)
	s.bounded = true
	s.Reset(len(s.cellOf))
	return nil
}

// setGrid dimensions the dense tile array for the box, scaling the
// effective cell size up when the box would need more than maxTiles tiles.
func (s *SpatialIndex) setGrid(minX, minY, maxX, maxY float64) {
	s.minX, s.minY = minX, minY
	eff := s.cellSize
	fx := math.Floor((maxX-minX)/eff) + 1
	fy := math.Floor((maxY-minY)/eff) + 1
	for fx*fy > maxTiles {
		// The per-axis +1 can leave a sliver over the cap after one
		// rescale; the slight overshoot factor makes the loop converge.
		eff *= math.Sqrt(fx*fy/maxTiles) * 1.001
		fx = math.Floor((maxX-minX)/eff) + 1
		fy = math.Floor((maxY-minY)/eff) + 1
	}
	s.eff = eff
	s.nx, s.ny = int(fx), int(fy)
	if s.nx < 1 {
		s.nx = 1
	}
	if s.ny < 1 {
		s.ny = 1
	}
	tiles := s.nx * s.ny
	if cap(s.heads) < tiles {
		s.heads = make([]int32, tiles)
		s.counts = make([]int32, tiles)
	}
	s.heads = s.heads[:tiles]
	s.counts = s.counts[:tiles]
}

// Reset empties the index and sizes it for n entries (slots 0..n-1), all
// initially absent. Entry storage and the tile array are reused across
// resets once grown.
func (s *SpatialIndex) Reset(n int) {
	if cap(s.cellOf) < n {
		s.cellOf = make([]int32, n)
		s.next = make([]int32, n)
		s.prev = make([]int32, n)
		s.pos = make([]roadnet.Point, n)
		s.active = make([]bool, n)
	}
	s.cellOf = s.cellOf[:n]
	s.next = s.next[:n]
	s.prev = s.prev[:n]
	s.pos = s.pos[:n]
	s.active = s.active[:n]
	for i := range s.cellOf {
		s.cellOf[i] = -1
	}
	for i := range s.heads {
		s.heads[i] = -1
		s.counts[i] = 0
	}
}

// Len returns the number of entry slots (active or not).
func (s *SpatialIndex) Len() int { return len(s.cellOf) }

// clampCell maps a grid-relative coordinate to a tile axis index in
// [0, n-1]. NaN and anything below the box map to 0; anything above maps to
// the last tile.
func clampCell(v float64, n int) int {
	if !(v >= 0) { // also catches NaN
		return 0
	}
	if c := int(v); c < n {
		return c
	}
	return n - 1
}

// tileFor returns the dense tile index of a position, clamped into the box.
func (s *SpatialIndex) tileFor(p roadnet.Point) int32 {
	cx := clampCell((p.X-s.minX)/s.eff, s.nx)
	cy := clampCell((p.Y-s.minY)/s.eff, s.ny)
	return int32(cy*s.nx + cx)
}

// Update sets entry i's position and activity, relinking its tile
// membership only when the tile actually changed. It is the incremental
// per-tick path: O(1), allocation-free.
func (s *SpatialIndex) Update(i int, p roadnet.Point, active bool) error {
	if i < 0 || i >= len(s.cellOf) {
		return fmt.Errorf("mobility: spatial update: entry %d out of range [0,%d)", i, len(s.cellOf))
	}
	s.pos[i] = p
	s.active[i] = active
	want := int32(-1)
	if active {
		want = s.tileFor(p)
	}
	have := s.cellOf[i]
	if have == want {
		return nil
	}
	if have >= 0 {
		s.unlink(int32(i), have)
	}
	if want >= 0 {
		s.link(int32(i), want)
	}
	s.cellOf[i] = want
	return nil
}

func (s *SpatialIndex) link(i, tile int32) {
	head := s.heads[tile]
	s.prev[i] = -1
	s.next[i] = head
	if head >= 0 {
		s.prev[head] = i
	}
	s.heads[tile] = i
	s.counts[tile]++
}

func (s *SpatialIndex) unlink(i, tile int32) {
	if p := s.prev[i]; p >= 0 {
		s.next[p] = s.next[i]
	} else {
		s.heads[tile] = s.next[i]
	}
	if n := s.next[i]; n >= 0 {
		s.prev[n] = s.prev[i]
	}
	s.counts[tile]--
}

// Rebuild re-populates the index with the given positions. Entries whose
// active flag is false are excluded (e.g. powered-off vehicles, which do
// not partake in V2X); a nil active slice means all entries are active.
// The data is copied into index-owned storage, so the caller's slices may
// be reused freely afterwards. Without fixed bounds (SetBounds) the tile
// grid is re-derived from the positions, so long-gone regions never retain
// tiles — the unbounded-map growth of the old hash-grid design cannot
// occur.
func (s *SpatialIndex) Rebuild(pos []roadnet.Point, active []bool) error {
	if active != nil && len(active) != len(pos) {
		return fmt.Errorf("mobility: rebuild: %d positions but %d active flags", len(pos), len(active))
	}
	if !s.bounded {
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, p := range pos {
			// Non-finite positions are skipped for bounds purposes; they
			// clamp into border tiles and fail every distance check.
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		if minX > maxX || minY > maxY {
			minX, minY, maxX, maxY = 0, 0, 0, 0
		}
		s.setGrid(minX, minY, maxX, maxY)
	}
	s.Reset(len(pos))
	for i, p := range pos {
		on := active == nil || active[i]
		if err := s.Update(i, p, on); err != nil {
			return err
		}
	}
	return nil
}

// TileStats reports grid shape and occupancy: total tiles, occupied tiles,
// and the maximum entries in any one tile — the quantities that determine
// query cost at scale.
func (s *SpatialIndex) TileStats() (tiles, occupied int, maxOccupancy int32) {
	tiles = len(s.counts)
	for _, c := range s.counts {
		if c > 0 {
			occupied++
			if c > maxOccupancy {
				maxOccupancy = c
			}
		}
	}
	return tiles, occupied, maxOccupancy
}

// Neighbors returns the indices of active entries within radius of entry i
// (excluding i itself), in ascending index order. The returned slice is
// owned by the index and valid until the next Neighbors call.
func (s *SpatialIndex) Neighbors(i int, radius float64) []int {
	if i < 0 || i >= len(s.cellOf) || radius < 0 {
		return nil
	}
	if !s.active[i] {
		return nil
	}
	p := s.pos[i]
	reach := int(math.Ceil(radius / s.eff))
	tile := int(s.cellOf[i])
	cx, cy := tile%s.nx, tile/s.nx
	out := s.neighborsBuf[:0]
	for gy := maxInt(cy-reach, 0); gy <= minInt(cy+reach, s.ny-1); gy++ {
		base := gy * s.nx
		for gx := maxInt(cx-reach, 0); gx <= minInt(cx+reach, s.nx-1); gx++ {
			for j := s.heads[base+gx]; j >= 0; j = s.next[j] {
				if int(j) != i && p.Dist(s.pos[j]) <= radius {
					out = append(out, int(j))
				}
			}
		}
	}
	sort.Ints(out)
	s.neighborsBuf = out
	return out
}

// Pair is an unordered pair of entry indices with A < B.
type Pair struct{ A, B int }

// PairsWithin returns all active pairs at distance <= radius, each pair
// once with A < B, sorted lexicographically. This is the per-tick encounter
// candidate set. Emission walks entries in ascending index order and keeps
// only greater-indexed partners, so the output is sorted by construction —
// no map iteration, no global sort. The returned slice is owned by the
// index and valid until the next PairsWithin call.
func (s *SpatialIndex) PairsWithin(radius float64) []Pair {
	if radius < 0 {
		return nil
	}
	out := s.pairsBuf[:0]
	reach := int(math.Ceil(radius / s.eff))
	for i := range s.cellOf {
		tile := int(s.cellOf[i])
		if tile < 0 {
			continue
		}
		p := s.pos[i]
		cx, cy := tile%s.nx, tile/s.nx
		cand := s.candBuf[:0]
		for gy := maxInt(cy-reach, 0); gy <= minInt(cy+reach, s.ny-1); gy++ {
			base := gy * s.nx
			for gx := maxInt(cx-reach, 0); gx <= minInt(cx+reach, s.nx-1); gx++ {
				for j := s.heads[base+gx]; j >= 0; j = s.next[j] {
					if int(j) > i && p.Dist(s.pos[j]) <= radius {
						cand = append(cand, j)
					}
				}
			}
		}
		// Tile-list order is arbitrary (it reflects update history); a
		// small insertion sort restores ascending partner order.
		for a := 1; a < len(cand); a++ {
			v := cand[a]
			b := a - 1
			for b >= 0 && cand[b] > v {
				cand[b+1] = cand[b]
				b--
			}
			cand[b+1] = v
		}
		s.candBuf = cand
		for _, j := range cand {
			out = append(out, Pair{A: i, B: int(j)})
		}
	}
	s.pairsBuf = out
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func orderPair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// BruteForcePairs computes the same result as PairsWithin by checking every
// pair. It exists as the reference implementation for tests and as a
// fallback for tiny fleets.
func BruteForcePairs(pos []roadnet.Point, active []bool, radius float64) []Pair {
	var out []Pair
	for a := 0; a < len(pos); a++ {
		if active != nil && !active[a] {
			continue
		}
		for b := a + 1; b < len(pos); b++ {
			if active != nil && !active[b] {
				continue
			}
			if pos[a].Dist(pos[b]) <= radius {
				out = append(out, Pair{A: a, B: b})
			}
		}
	}
	return out
}

// EncounterTracker turns per-tick proximity snapshots into encounter
// begin/end events: an encounter begins when a pair first comes within
// range and ends when it leaves range (or either vehicle deactivates).
// Learning strategies such as the paper's OPP subscribe to these events to
// trigger opportunistic V2X model exchanges.
//
// The tracker keeps the in-range set as a sorted slice and diffs
// consecutive snapshots with a single merge pass, so steady-state updates
// allocate nothing. The slices returned by Update are reused and valid
// until the next Update call. Duplicate pairs in the input are coalesced.
type EncounterTracker struct {
	inRange []Pair // sorted, deduplicated
	curBuf  []Pair
	begins  []Pair
	ends    []Pair
}

// NewEncounterTracker returns an empty tracker.
func NewEncounterTracker() *EncounterTracker { return &EncounterTracker{} }

// Update consumes the current in-range pair set and returns the encounters
// that began and ended since the previous update, both sorted. The input
// need not be sorted; PairsWithin output (already sorted) is diffed without
// re-sorting.
func (e *EncounterTracker) Update(current []Pair) (begins, ends []Pair) {
	cur := append(e.curBuf[:0], current...)
	if !pairsSorted(cur) {
		sortPairs(cur)
	}
	cur = dedupePairs(cur)

	e.begins = e.begins[:0]
	e.ends = e.ends[:0]
	i, j := 0, 0
	for i < len(cur) && j < len(e.inRange) {
		switch {
		case cur[i] == e.inRange[j]:
			i++
			j++
		case pairLess(cur[i], e.inRange[j]):
			e.begins = append(e.begins, cur[i])
			i++
		default:
			e.ends = append(e.ends, e.inRange[j])
			j++
		}
	}
	e.begins = append(e.begins, cur[i:]...)
	e.ends = append(e.ends, e.inRange[j:]...)

	// Swap storage: the previous in-range slice becomes the next call's
	// staging buffer.
	e.curBuf = e.inRange[:0]
	e.inRange = cur
	return e.begins, e.ends
}

// Active reports whether the pair is currently in an encounter.
func (e *EncounterTracker) Active(p Pair) bool {
	q := orderPair(p.A, p.B)
	i := sort.Search(len(e.inRange), func(k int) bool { return !pairLess(e.inRange[k], q) })
	return i < len(e.inRange) && e.inRange[i] == q
}

// ActiveCount returns the number of ongoing encounters.
func (e *EncounterTracker) ActiveCount() int { return len(e.inRange) }

func pairLess(a, b Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

func pairsSorted(ps []Pair) bool {
	for i := 1; i < len(ps); i++ {
		if pairLess(ps[i], ps[i-1]) {
			return false
		}
	}
	return true
}

func dedupePairs(ps []Pair) []Pair {
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool { return pairLess(ps[i], ps[j]) })
}
