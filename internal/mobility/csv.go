package mobility

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// The CSV trace format is the framework's static spatial-dynamics input
// (paper §4): one row per waypoint, `vehicle,t,x,y,on`, with a header row.
// Historic GPS data and pre-computed traffic-simulator output alike can be
// converted to this format for replay.

const csvHeader = "vehicle,t,x,y,on"

// maxCSVVehicles bounds the vehicle index space a CSV trace may declare.
// The trace set is stored densely, so an adversarial or corrupt file with a
// single huge index would otherwise force an allocation proportional to the
// index value rather than to the file size.
const maxCSVVehicles = 1 << 20

// WriteCSV serializes the trace set. Rows are emitted grouped by vehicle in
// index order, each vehicle's samples in time order.
func WriteCSV(w io.Writer, ts *TraceSet) error {
	if err := ts.Validate(); err != nil {
		return fmt.Errorf("mobility: write csv: %w", err)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vehicle", "t", "x", "y", "on"}); err != nil {
		return fmt.Errorf("mobility: write csv header: %w", err)
	}
	// Record the horizon and fleet size as a pseudo-row (vehicle -1, with
	// the fleet size in the x column) so round-trips are lossless even for
	// vehicles with empty traces.
	meta := []string{"-1", formatFloat(float64(ts.Horizon)), strconv.Itoa(ts.NumVehicles()), "0", "0"}
	if err := cw.Write(meta); err != nil {
		return fmt.Errorf("mobility: write csv horizon: %w", err)
	}
	for _, tr := range ts.Traces {
		for _, s := range tr.Samples {
			row := []string{
				strconv.Itoa(tr.Vehicle),
				formatFloat(float64(s.T)),
				formatFloat(s.Pos.X),
				formatFloat(s.Pos.Y),
				boolTo01(s.On),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("mobility: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("mobility: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a trace set previously written by WriteCSV (or produced by
// an external converter following the same format).
func ReadCSV(r io.Reader) (*TraceSet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("mobility: read csv header: %w", err)
	}
	if got := joinComma(header); got != csvHeader {
		return nil, fmt.Errorf("mobility: unexpected csv header %q, want %q", got, csvHeader)
	}

	ts := &TraceSet{}
	byVehicle := map[int][]Sample{}
	maxVehicle := -1
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mobility: read csv: %w", err)
		}
		line++
		vehicle, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("mobility: csv line %d: bad vehicle %q: %w", line, row[0], err)
		}
		t, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: csv line %d: bad time %q: %w", line, row[1], err)
		}
		if vehicle == -1 { // horizon + fleet-size pseudo-row
			ts.Horizon = sim.Time(t)
			fleet, err := strconv.Atoi(row[2])
			if err != nil {
				return nil, fmt.Errorf("mobility: csv line %d: bad fleet size %q: %w", line, row[2], err)
			}
			if fleet < 0 || fleet > maxCSVVehicles {
				return nil, fmt.Errorf("mobility: csv line %d: fleet size %d outside [0, %d]", line, fleet, maxCSVVehicles)
			}
			if fleet-1 > maxVehicle {
				maxVehicle = fleet - 1
			}
			continue
		}
		if vehicle < 0 || vehicle >= maxCSVVehicles {
			return nil, fmt.Errorf("mobility: csv line %d: vehicle index %d outside [0, %d)", line, vehicle, maxCSVVehicles)
		}
		x, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: csv line %d: bad x %q: %w", line, row[2], err)
		}
		y, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: csv line %d: bad y %q: %w", line, row[3], err)
		}
		on, err := parse01(row[4])
		if err != nil {
			return nil, fmt.Errorf("mobility: csv line %d: %w", line, err)
		}
		byVehicle[vehicle] = append(byVehicle[vehicle], Sample{
			T:   sim.Time(t),
			Pos: roadnet.Point{X: x, Y: y},
			On:  on,
		})
		if vehicle > maxVehicle {
			maxVehicle = vehicle
		}
	}

	ts.Traces = make([]Trace, maxVehicle+1)
	for v := 0; v <= maxVehicle; v++ {
		ts.Traces[v] = Trace{Vehicle: v, Samples: byVehicle[v]}
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: read csv: %w", err)
	}
	return ts, nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func boolTo01(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func parse01(s string) (bool, error) {
	switch s {
	case "0":
		return false, nil
	case "1":
		return true, nil
	default:
		return false, fmt.Errorf("mobility: bad on flag %q (want 0 or 1)", s)
	}
}

func joinComma(fields []string) string {
	out := ""
	for i, f := range fields {
		if i > 0 {
			out += ","
		}
		out += f
	}
	return out
}
