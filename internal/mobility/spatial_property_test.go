package mobility

import (
	"reflect"
	"sort"
	"testing"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// randomFleet draws a fleet engineered to hit the tiled index's edge cases:
// duplicate positions, positions exactly on cell boundaries, positions
// outside the nominal box (clamped into border tiles), and inactive
// vehicles.
func randomFleet(rng *sim.RNG, n int, cellSize float64) ([]roadnet.Point, []bool) {
	pos := make([]roadnet.Point, n)
	active := make([]bool, n)
	for i := range pos {
		switch rng.Intn(5) {
		case 0: // exactly on a cell boundary
			pos[i] = roadnet.Point{
				X: float64(rng.Intn(8)) * cellSize,
				Y: float64(rng.Intn(8)) * cellSize,
			}
		case 1: // duplicate of an earlier vehicle
			if i > 0 {
				pos[i] = pos[rng.Intn(i)]
				break
			}
			fallthrough
		case 2: // outside the bulk of the fleet (exercises clamping
			// when bounds were fixed before this point existed)
			pos[i] = roadnet.Point{X: rng.Range(-3, 12) * cellSize, Y: rng.Range(-3, 12) * cellSize}
		default:
			pos[i] = roadnet.Point{X: rng.Range(0, 8) * cellSize, Y: rng.Range(0, 8) * cellSize}
		}
		active[i] = rng.Bool(0.85)
	}
	return pos, active
}

// bruteNeighbors is the O(n) reference for SpatialIndex.Neighbors.
func bruteNeighbors(pos []roadnet.Point, active []bool, i int, radius float64) []int {
	if i < 0 || i >= len(pos) || radius < 0 || !active[i] {
		return nil
	}
	var out []int
	for j := range pos {
		if j != i && active[j] && pos[i].Dist(pos[j]) <= radius {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// TestSpatialIndexPropertyVsBruteForce fuzzes randomized fleets through
// Rebuild and checks PairsWithin and Neighbors against the O(n²) reference
// across radii from zero to several cell widths.
func TestSpatialIndexPropertyVsBruteForce(t *testing.T) {
	rng := sim.NewRNG(1234)
	const cellSize = 50.0
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(120)
		pos, active := randomFleet(rng, n, cellSize)
		s, err := NewSpatialIndex(cellSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Rebuild(pos, active); err != nil {
			t.Fatal(err)
		}
		radius := rng.Range(0, 2.5*cellSize)
		if rng.Bool(0.1) {
			radius = 0 // duplicate positions make zero-radius pairs real
		}
		got := s.PairsWithin(radius)
		want := BruteForcePairs(pos, active, radius)
		if !samePairs(got, want) {
			t.Fatalf("trial %d (n=%d r=%.2f): pairs %v, brute force %v", trial, n, radius, got, want)
		}
		if n > 0 {
			i := rng.Intn(n)
			gotN := s.Neighbors(i, radius)
			wantN := bruteNeighbors(pos, active, i, radius)
			if !sameInts(gotN, wantN) {
				t.Fatalf("trial %d (n=%d r=%.2f): neighbors(%d) %v, brute force %v", trial, n, radius, i, gotN, wantN)
			}
		}
	}
}

// TestSpatialIndexIncrementalMatchesRebuild drives one index incrementally
// (fixed bounds, per-entry updates) and rebuilds a second from scratch after
// every batch of moves; they must agree with each other and with the brute
// force at every step. This is the equivalence core.Experiment relies on
// when it switched from per-tick rebuilds to incremental updates.
func TestSpatialIndexIncrementalMatchesRebuild(t *testing.T) {
	rng := sim.NewRNG(99)
	const cellSize = 40.0
	const n = 80
	pos, active := randomFleet(rng, n, cellSize)

	inc, err := NewSpatialIndex(cellSize)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed bounds deliberately tighter than the fleet's excursions, so
	// clamped border tiles stay on the equivalence path too.
	if err := inc.SetBounds(roadnet.Point{}, roadnet.Point{X: 8 * cellSize, Y: 8 * cellSize}); err != nil {
		t.Fatal(err)
	}
	inc.Reset(n)
	for i := range pos {
		if err := inc.Update(i, pos[i], active[i]); err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < 150; step++ {
		// Mutate a random subset: moves, teleports, power toggles.
		for k := rng.Intn(10); k >= 0; k-- {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				pos[i] = roadnet.Point{X: pos[i].X + rng.Range(-15, 15), Y: pos[i].Y + rng.Range(-15, 15)}
			case 1:
				pos[i] = roadnet.Point{X: rng.Range(-2, 10) * cellSize, Y: rng.Range(-2, 10) * cellSize}
			default:
				active[i] = !active[i]
			}
			if err := inc.Update(i, pos[i], active[i]); err != nil {
				t.Fatal(err)
			}
		}
		radius := rng.Range(0, 2*cellSize)

		fresh, err := NewSpatialIndex(cellSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.SetBounds(roadnet.Point{}, roadnet.Point{X: 8 * cellSize, Y: 8 * cellSize}); err != nil {
			t.Fatal(err)
		}
		fresh.Reset(n)
		for i := range pos {
			if err := fresh.Update(i, pos[i], active[i]); err != nil {
				t.Fatal(err)
			}
		}

		gotInc := append([]Pair(nil), inc.PairsWithin(radius)...)
		gotFresh := fresh.PairsWithin(radius)
		want := BruteForcePairs(pos, active, radius)
		if !samePairs(gotInc, want) {
			t.Fatalf("step %d (r=%.2f): incremental %v, brute force %v", step, radius, gotInc, want)
		}
		if !samePairs(gotFresh, gotInc) {
			t.Fatalf("step %d (r=%.2f): fresh %v, incremental %v", step, radius, gotFresh, gotInc)
		}
	}
}

// TestSpatialIndexTinyCellsManyVehicles covers the tile-cap path: a cell
// size far smaller than the extent forces the effective cell size up, which
// must not change results.
func TestSpatialIndexTinyCellsManyVehicles(t *testing.T) {
	rng := sim.NewRNG(5)
	const n = 300
	pos := make([]roadnet.Point, n)
	for i := range pos {
		pos[i] = roadnet.Point{X: rng.Range(0, 1e6), Y: rng.Range(0, 1e6)}
	}
	s, err := NewSpatialIndex(0.25) // would need 1.6e13 tiles uncapped
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(pos, nil); err != nil {
		t.Fatal(err)
	}
	tiles, _, _ := s.TileStats()
	if tiles > 1<<21 {
		t.Fatalf("tile cap not applied: %d tiles", tiles)
	}
	for _, radius := range []float64{0, 1000, 250000} {
		got := s.PairsWithin(radius)
		want := BruteForcePairs(pos, nil, radius)
		if !samePairs(got, want) {
			t.Fatalf("radius %v: got %d pairs, brute force %d", radius, len(got), len(want))
		}
	}
}

// TestSpatialIndexRebuildShrinksWithFleet pins the satellite fix for the
// old hash-grid's unbounded growth: when the fleet contracts into a corner,
// a rebuild without fixed bounds re-derives the grid, so tiles for
// long-abandoned regions do not accumulate.
func TestSpatialIndexRebuildShrinksWithFleet(t *testing.T) {
	s, err := NewSpatialIndex(10)
	if err != nil {
		t.Fatal(err)
	}
	wide := make([]roadnet.Point, 50)
	rng := sim.NewRNG(3)
	for i := range wide {
		wide[i] = roadnet.Point{X: rng.Range(0, 5000), Y: rng.Range(0, 5000)}
	}
	if err := s.Rebuild(wide, nil); err != nil {
		t.Fatal(err)
	}
	wideTiles, _, _ := s.TileStats()
	tight := make([]roadnet.Point, 50)
	for i := range tight {
		tight[i] = roadnet.Point{X: rng.Range(0, 50), Y: rng.Range(0, 50)}
	}
	if err := s.Rebuild(tight, nil); err != nil {
		t.Fatal(err)
	}
	tightTiles, occupied, _ := s.TileStats()
	if tightTiles >= wideTiles {
		t.Fatalf("grid did not shrink: %d tiles after contraction, %d before", tightTiles, wideTiles)
	}
	if occupied == 0 {
		t.Fatal("contracted fleet occupies no tiles")
	}
}

func samePairs(got, want []Pair) bool {
	if len(got) != len(want) {
		return false
	}
	if len(got) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func sameInts(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	if len(got) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}
