package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

func TestNewSpatialIndexValidation(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		if _, err := NewSpatialIndex(bad); err == nil {
			t.Errorf("NewSpatialIndex(%v) succeeded", bad)
		}
	}
	if _, err := NewSpatialIndex(100); err != nil {
		t.Fatalf("NewSpatialIndex(100): %v", err)
	}
}

func TestSpatialIndexPairsSimple(t *testing.T) {
	idx, err := NewSpatialIndex(200)
	if err != nil {
		t.Fatal(err)
	}
	pos := []roadnet.Point{
		{X: 0, Y: 0},
		{X: 100, Y: 0},  // within 200 of #0
		{X: 1000, Y: 0}, // far away
		{X: 1100, Y: 0}, // within 200 of #2
	}
	if err := idx.Rebuild(pos, nil); err != nil {
		t.Fatal(err)
	}
	got := idx.PairsWithin(200)
	want := []Pair{{0, 1}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("PairsWithin = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PairsWithin[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpatialIndexExcludesInactive(t *testing.T) {
	idx, err := NewSpatialIndex(200)
	if err != nil {
		t.Fatal(err)
	}
	pos := []roadnet.Point{{X: 0}, {X: 50}, {X: 100}}
	active := []bool{true, false, true}
	if err := idx.Rebuild(pos, active); err != nil {
		t.Fatal(err)
	}
	got := idx.PairsWithin(200)
	if len(got) != 1 || got[0] != (Pair{0, 2}) {
		t.Fatalf("PairsWithin = %v, want [{0 2}]", got)
	}
	if n := idx.Neighbors(1, 200); n != nil {
		t.Fatalf("Neighbors of inactive entry = %v, want nil", n)
	}
}

func TestSpatialIndexRebuildMismatch(t *testing.T) {
	idx, err := NewSpatialIndex(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Rebuild(make([]roadnet.Point, 3), make([]bool, 2)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestSpatialIndexNeighbors(t *testing.T) {
	idx, err := NewSpatialIndex(150)
	if err != nil {
		t.Fatal(err)
	}
	pos := []roadnet.Point{
		{X: 0, Y: 0},
		{X: 100, Y: 0},
		{X: 0, Y: 140},
		{X: 400, Y: 400},
	}
	if err := idx.Rebuild(pos, nil); err != nil {
		t.Fatal(err)
	}
	got := idx.Neighbors(0, 150)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Neighbors(0) = %v, want [1 2]", got)
	}
	if got := idx.Neighbors(3, 150); len(got) != 0 {
		t.Fatalf("Neighbors(3) = %v, want empty", got)
	}
	if got := idx.Neighbors(-1, 150); got != nil {
		t.Fatalf("Neighbors(-1) = %v, want nil", got)
	}
	if got := idx.Neighbors(0, -5); got != nil {
		t.Fatalf("Neighbors with negative radius = %v, want nil", got)
	}
}

func TestSpatialIndexBoundaryDistanceInclusive(t *testing.T) {
	idx, err := NewSpatialIndex(100)
	if err != nil {
		t.Fatal(err)
	}
	pos := []roadnet.Point{{X: 0}, {X: 100}}
	if err := idx.Rebuild(pos, nil); err != nil {
		t.Fatal(err)
	}
	if got := idx.PairsWithin(100); len(got) != 1 {
		t.Fatalf("pair at exactly radius distance not found: %v", got)
	}
	if got := idx.PairsWithin(99.999); len(got) != 0 {
		t.Fatalf("pair beyond radius found: %v", got)
	}
}

// TestSpatialIndexMatchesBruteForce is the package's central property test:
// on random fleets, the grid index must return exactly the brute-force pair
// set, for radii around, below, and above the cell size.
func TestSpatialIndexMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(99)
	for _, radius := range []float64{50, 200, 450} {
		idx, err := NewSpatialIndex(200)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(seed uint32, n uint8) bool {
			count := int(n%60) + 2
			r := sim.NewRNG(uint64(seed))
			pos := make([]roadnet.Point, count)
			active := make([]bool, count)
			for i := range pos {
				pos[i] = roadnet.Point{X: r.Range(-1000, 1000), Y: r.Range(-1000, 1000)}
				active[i] = r.Bool(0.8)
			}
			if err := idx.Rebuild(pos, active); err != nil {
				return false
			}
			got := idx.PairsWithin(radius)
			want := BruteForcePairs(pos, active, radius)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(int64(rng.Uint64())))}
		if err := quick.Check(prop, cfg); err != nil {
			t.Fatalf("radius %v: %v", radius, err)
		}
	}
}

func TestSpatialIndexNeighborsMatchesPairs(t *testing.T) {
	idx, err := NewSpatialIndex(120)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(7)
	pos := make([]roadnet.Point, 40)
	for i := range pos {
		pos[i] = roadnet.Point{X: r.Range(0, 800), Y: r.Range(0, 800)}
	}
	if err := idx.Rebuild(pos, nil); err != nil {
		t.Fatal(err)
	}
	const radius = 120
	pairSet := map[Pair]bool{}
	for _, p := range idx.PairsWithin(radius) {
		pairSet[p] = true
	}
	for i := range pos {
		for _, j := range idx.Neighbors(i, radius) {
			if !pairSet[orderPair(i, j)] {
				t.Fatalf("Neighbors(%d) includes %d but PairsWithin lacks the pair", i, j)
			}
		}
	}
	count := 0
	for i := range pos {
		count += len(idx.Neighbors(i, radius))
	}
	if count != 2*len(pairSet) {
		t.Fatalf("sum of neighbor counts %d != 2 * pair count %d", count, 2*len(pairSet))
	}
}

func TestEncounterTrackerBeginEnd(t *testing.T) {
	tr := NewEncounterTracker()
	begins, ends := tr.Update([]Pair{{0, 1}, {2, 3}})
	if len(begins) != 2 || len(ends) != 0 {
		t.Fatalf("first update: begins=%v ends=%v", begins, ends)
	}
	if !tr.Active(Pair{0, 1}) || !tr.Active(Pair{1, 0}) {
		t.Fatal("Active misreports ongoing encounter")
	}
	begins, ends = tr.Update([]Pair{{0, 1}})
	if len(begins) != 0 {
		t.Fatalf("second update begins = %v, want none", begins)
	}
	if len(ends) != 1 || ends[0] != (Pair{2, 3}) {
		t.Fatalf("second update ends = %v, want [{2 3}]", ends)
	}
	if tr.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1", tr.ActiveCount())
	}
	begins, ends = tr.Update(nil)
	if len(ends) != 1 || ends[0] != (Pair{0, 1}) {
		t.Fatalf("final update ends = %v, want [{0 1}]", ends)
	}
	if tr.ActiveCount() != 0 {
		t.Fatalf("ActiveCount = %d, want 0", tr.ActiveCount())
	}
}

func TestEncounterTrackerStableUnderRepeats(t *testing.T) {
	tr := NewEncounterTracker()
	pairs := []Pair{{1, 2}}
	if b, _ := tr.Update(pairs); len(b) != 1 {
		t.Fatal("first update should begin the encounter")
	}
	for i := 0; i < 5; i++ {
		b, e := tr.Update(pairs)
		if len(b) != 0 || len(e) != 0 {
			t.Fatalf("repeat update %d: begins=%v ends=%v", i, b, e)
		}
	}
}

func TestEncounterTrackerOutputsSorted(t *testing.T) {
	tr := NewEncounterTracker()
	begins, _ := tr.Update([]Pair{{5, 6}, {0, 9}, {2, 3}, {0, 4}})
	want := []Pair{{0, 4}, {0, 9}, {2, 3}, {5, 6}}
	for i := range want {
		if begins[i] != want[i] {
			t.Fatalf("begins = %v, want %v", begins, want)
		}
	}
	_, ends := tr.Update(nil)
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestBruteForcePairsHandlesNilActive(t *testing.T) {
	pos := []roadnet.Point{{X: 0}, {X: 10}}
	got := BruteForcePairs(pos, nil, 50)
	if len(got) != 1 || got[0] != (Pair{0, 1}) {
		t.Fatalf("BruteForcePairs = %v", got)
	}
}
