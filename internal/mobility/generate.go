package mobility

import (
	"fmt"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// GenConfig parameterizes the synthetic fleet generator. The generator is
// the repository's stand-in for the paper's proprietary real-world GPS
// dataset of Gothenburg: vehicles alternate between trips (shortest-path
// drives between random intersections at per-segment speeds) and parked
// dwells, during which drivers may turn the vehicle off. These two
// behaviours produce exactly the dynamics the paper's evaluation depends
// on: time-varying pairwise proximity (V2X encounter opportunities) and
// vehicles becoming unavailable mid-round (churn).
type GenConfig struct {
	// Vehicles is the fleet size.
	Vehicles int `json:"vehicles"`
	// Horizon is the length of the generated period in simulated seconds.
	Horizon sim.Duration `json:"horizon_s"`
	// DwellMin/DwellMax bound the parked time between trips (uniform).
	DwellMin sim.Duration `json:"dwell_min_s"`
	DwellMax sim.Duration `json:"dwell_max_s"`
	// OffWhenParkedProb is the probability that the driver turns the
	// vehicle off for the duration of a dwell. Vehicles that stay on while
	// parked continue to partake in the VCPS (e.g. can exchange models).
	OffWhenParkedProb float64 `json:"off_when_parked_prob"`
	// SpeedFactorMin/Max scale each road segment's free-flow speed per
	// traversal (uniform), modeling traffic variability.
	SpeedFactorMin float64 `json:"speed_factor_min"`
	SpeedFactorMax float64 `json:"speed_factor_max"`
	// InitialDwellMax bounds the random initial parked period, staggering
	// the fleet's first departures.
	InitialDwellMax sim.Duration `json:"initial_dwell_max_s"`
	// MaxRouteTries bounds destination re-draws when a drawn destination
	// is unreachable (zero means the default of 10).
	MaxRouteTries int `json:"max_route_tries,omitempty"`
}

// DefaultGenConfig returns fleet dynamics tuned to reproduce the paper's
// experiment: a 120-vehicle fleet over a 5-hour window with trips averaging
// ~10 minutes and dwells averaging ~4 minutes, yielding the 0-20 (avg ~10)
// V2X exchanges per 200 s round reported in Figure 4 when combined with
// roadnet.DefaultGridConfig.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Vehicles:          120,
		Horizon:           5 * sim.Hour,
		DwellMin:          60,
		DwellMax:          420,
		OffWhenParkedProb: 0.5,
		SpeedFactorMin:    0.75,
		SpeedFactorMax:    1.05,
		InitialDwellMax:   180,
	}
}

// Validate reports whether the configuration is usable.
func (c GenConfig) Validate() error {
	switch {
	case c.Vehicles <= 0:
		return fmt.Errorf("mobility: non-positive fleet size %d", c.Vehicles)
	case c.Horizon <= 0:
		return fmt.Errorf("mobility: non-positive horizon %v", c.Horizon)
	case c.DwellMin < 0 || c.DwellMax < c.DwellMin:
		return fmt.Errorf("mobility: bad dwell range [%v, %v]", c.DwellMin, c.DwellMax)
	case c.OffWhenParkedProb < 0 || c.OffWhenParkedProb > 1:
		return fmt.Errorf("mobility: off-when-parked probability %v outside [0,1]", c.OffWhenParkedProb)
	case c.SpeedFactorMin <= 0 || c.SpeedFactorMax < c.SpeedFactorMin:
		return fmt.Errorf("mobility: bad speed factor range [%v, %v]", c.SpeedFactorMin, c.SpeedFactorMax)
	case c.InitialDwellMax < 0:
		return fmt.Errorf("mobility: negative initial dwell %v", c.InitialDwellMax)
	case c.MaxRouteTries < 0:
		return fmt.Errorf("mobility: negative max route tries %d", c.MaxRouteTries)
	default:
		return nil
	}
}

// Generate produces a fleet trace set on the given road network, drawing
// all randomness from rng (same config + network + rng seed ⇒ identical
// traces).
func Generate(c GenConfig, g *roadnet.Graph, rng *sim.RNG) (*TraceSet, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if g == nil || g.NumNodes() < 2 {
		return nil, fmt.Errorf("mobility: generate: road network needs at least 2 nodes")
	}
	tries := c.MaxRouteTries
	if tries == 0 {
		tries = 10
	}

	ts := &TraceSet{
		Traces:  make([]Trace, c.Vehicles),
		Horizon: sim.Time(0).Add(c.Horizon),
	}
	// One PathFinder serves the whole fleet: route queries dominate
	// generation cost, and the finder's reused search state returns routes
	// byte-identical to per-call Graph.ShortestPath.
	pf := roadnet.NewPathFinder(g)
	for v := 0; v < c.Vehicles; v++ {
		vrng := rng.Fork("vehicle")
		trace, err := generateOne(c, g, pf, vrng, tries)
		if err != nil {
			return nil, fmt.Errorf("mobility: generate vehicle %d: %w", v, err)
		}
		trace.Vehicle = v
		ts.Traces[v] = trace
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: generated invalid trace set: %w", err)
	}
	return ts, nil
}

func generateOne(c GenConfig, g *roadnet.Graph, pf *roadnet.PathFinder, rng *sim.RNG, maxTries int) (Trace, error) {
	horizon := sim.Time(0).Add(c.Horizon)
	cur := roadnet.NodeID(rng.Intn(g.NumNodes()))

	var tr Trace
	now := sim.Time(0)

	// Initial parked period. The very first sample establishes position;
	// whether the vehicle idles on or sits off is drawn like any dwell.
	initialOff := rng.Bool(c.OffWhenParkedProb)
	tr.Samples = append(tr.Samples, Sample{T: now, Pos: g.Pos(cur), On: !initialOff})
	if c.InitialDwellMax > 0 {
		now = now.Add(sim.Duration(rng.Range(0, float64(c.InitialDwellMax))))
	}

	for now < horizon {
		// Pick a reachable destination distinct from the current node.
		route, err := drawRoute(g, pf, cur, rng, maxTries)
		if err != nil {
			return Trace{}, err
		}

		// Trip start: ignition on (emit only if the state or time changed;
		// time always changed unless initial dwell was zero-length).
		tr.Samples = appendSample(tr.Samples, Sample{T: now, Pos: g.Pos(cur), On: true})
		for _, e := range route.Edges {
			factor := rng.Range(c.SpeedFactorMin, c.SpeedFactorMax)
			speed := e.Speed * factor
			dt := sim.Duration(e.Length / speed)
			now = now.Add(dt)
			tr.Samples = appendSample(tr.Samples, Sample{T: now, Pos: g.Pos(e.To), On: true})
			if now >= horizon {
				break
			}
		}
		cur = route.Nodes[len(route.Nodes)-1]
		if now >= horizon {
			break
		}

		// Parked dwell at the destination.
		off := rng.Bool(c.OffWhenParkedProb)
		if off {
			tr.Samples = appendSample(tr.Samples, Sample{T: now, Pos: lastPos(tr.Samples), On: false})
		}
		dwell := sim.Duration(rng.Range(float64(c.DwellMin), float64(c.DwellMax)))
		now = now.Add(dwell)
	}
	return tr, nil
}

func drawRoute(g *roadnet.Graph, pf *roadnet.PathFinder, from roadnet.NodeID, rng *sim.RNG, maxTries int) (roadnet.Route, error) {
	var lastErr error
	for i := 0; i < maxTries; i++ {
		dest := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if dest == from {
			continue
		}
		route, err := pf.ShortestPath(from, dest)
		if err != nil {
			lastErr = err
			continue
		}
		if len(route.Edges) == 0 {
			continue
		}
		return route, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("mobility: could not draw a distinct destination from node %d", from)
	}
	return roadnet.Route{}, lastErr
}

// appendSample appends s, replacing a previous sample at the identical
// instant (the later write wins) to preserve the strictly-increasing
// invariant of Trace.
func appendSample(ss []Sample, s Sample) []Sample {
	if n := len(ss); n > 0 && ss[n-1].T == s.T {
		ss[n-1] = s
		return ss
	}
	return append(ss, s)
}

func lastPos(ss []Sample) roadnet.Point {
	if len(ss) == 0 {
		return roadnet.Point{}
	}
	return ss[len(ss)-1].Pos
}
