package mobility

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// TestTraceInterpolationContinuity: positions move continuously — for any
// two nearby instants, the distance moved is bounded by elapsed time times
// the network's maximum speed.
func TestTraceInterpolationContinuity(t *testing.T) {
	grid := roadnet.GridConfig{Rows: 5, Cols: 5, Spacing: 250, StreetSpeed: 12}
	g, err := roadnet.Generate(grid, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := GenConfig{
		Vehicles:          6,
		Horizon:           1200,
		DwellMin:          20,
		DwellMax:          90,
		OffWhenParkedProb: 0.4,
		SpeedFactorMin:    0.8,
		SpeedFactorMax:    1.1,
		InitialDwellMax:   40,
	}
	ts, err := Generate(cfg, g, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	maxSpeed := grid.StreetSpeed * cfg.SpeedFactorMax * 1.001

	prop := func(v uint8, t0 uint16, dtRaw uint8) bool {
		tr := &ts.Traces[int(v)%cfg.Vehicles]
		start := sim.Time(float64(t0 % 1200))
		dt := float64(dtRaw%20) + 0.01
		p1, _ := tr.At(start)
		p2, _ := tr.At(start.Add(sim.Duration(dt)))
		return p1.Dist(p2) <= maxSpeed*dt+1e-6
	}
	qc := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}

// TestCSVRoundTripProperty: arbitrary generated trace sets survive the CSV
// round trip bit-exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	g, err := roadnet.Generate(roadnet.GridConfig{Rows: 4, Cols: 4, Spacing: 200, StreetSpeed: 10}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint32, nVehicles uint8) bool {
		cfg := GenConfig{
			Vehicles:          int(nVehicles)%5 + 1,
			Horizon:           600,
			DwellMin:          10,
			DwellMax:          60,
			OffWhenParkedProb: 0.5,
			SpeedFactorMin:    0.8,
			SpeedFactorMax:    1.0,
			InitialDwellMax:   30,
		}
		ts, err := Generate(cfg, g, sim.NewRNG(uint64(seed)))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ts); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Horizon != ts.Horizon || got.NumVehicles() != ts.NumVehicles() {
			return false
		}
		for v := range ts.Traces {
			if len(got.Traces[v].Samples) != len(ts.Traces[v].Samples) {
				return false
			}
			for i, s := range ts.Traces[v].Samples {
				if got.Traces[v].Samples[i] != s {
					return false
				}
			}
		}
		return true
	}
	qc := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}

// TestOnFractionBounds: the on-fraction is always within [0, 1].
func TestOnFractionBoundsProperty(t *testing.T) {
	g, err := roadnet.Generate(roadnet.GridConfig{Rows: 4, Cols: 4, Spacing: 200, StreetSpeed: 10}, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint32, offProbRaw uint8) bool {
		cfg := GenConfig{
			Vehicles:          3,
			Horizon:           900,
			DwellMin:          10,
			DwellMax:          120,
			OffWhenParkedProb: float64(offProbRaw%101) / 100,
			SpeedFactorMin:    0.8,
			SpeedFactorMax:    1.0,
			InitialDwellMax:   60,
		}
		ts, err := Generate(cfg, g, sim.NewRNG(uint64(seed)))
		if err != nil {
			return false
		}
		for _, tr := range ts.Traces {
			f := tr.OnFraction(ts.Horizon)
			if f < 0 || f > 1 || math.IsNaN(f) {
				return false
			}
		}
		return true
	}
	qc := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}
