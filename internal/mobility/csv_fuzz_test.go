package mobility

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace throws arbitrary bytes at the CSV trace parser. The parser
// must never panic or allocate proportionally to a field *value* (only to
// the input size), and anything it accepts must survive a write/re-read
// round trip unchanged.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte("vehicle,t,x,y,on\n"))
	f.Add([]byte("vehicle,t,x,y,on\n-1,600,2,0,0\n"))
	f.Add([]byte("vehicle,t,x,y,on\n-1,600,2,0,0\n0,0,10,20,1\n0,30,15,20,1\n1,5,0,0,0\n"))
	f.Add([]byte("vehicle,t,x,y,on\n0,0,1e308,-1e308,1\n"))
	f.Add([]byte("vehicle,t,x,y,on\n-1,NaN,1,0,0\n"))
	f.Add([]byte("vehicle,t,x,y,on\n99999999999999,0,0,0,1\n"))
	f.Add([]byte("vehicle,t,x,y,on\n-1,10,99999999999,0,0\n"))
	f.Add([]byte("vehicle,t,x,y,on\n-7,0,0,0,1\n"))
	f.Add([]byte("vehicle,t,x,y,on\n0,0,0,0,2\n"))
	f.Add([]byte("vehicle,t,x,y,on\n0,10,0,0,1\n0,10,1,1,1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be re-serializable and round-trip stable.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ts); err != nil {
			t.Fatalf("accepted trace set fails to serialize: %v", err)
		}
		again, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("serialized trace set fails to re-parse: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteCSV(&buf2, again); err != nil {
			t.Fatalf("re-parsed trace set fails to serialize: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("round trip unstable:\nfirst:\n%s\nsecond:\n%s", buf.String(), buf2.String())
		}
	})
}
