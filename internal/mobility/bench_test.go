package mobility

import (
	"testing"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

func benchFleet(b *testing.B, n int) ([]roadnet.Point, []bool) {
	b.Helper()
	rng := sim.NewRNG(1)
	pos := make([]roadnet.Point, n)
	active := make([]bool, n)
	for i := range pos {
		pos[i] = roadnet.Point{X: rng.Range(0, 8000), Y: rng.Range(0, 8000)}
		active[i] = rng.Bool(0.7)
	}
	return pos, active
}

// BenchmarkSpatialIndexTick measures one core-simulator tick's proximity
// work (rebuild + pair query) at the paper's fleet scale.
func BenchmarkSpatialIndexTick(b *testing.B) {
	pos, active := benchFleet(b, 120)
	idx, err := NewSpatialIndex(200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Rebuild(pos, active); err != nil {
			b.Fatal(err)
		}
		_ = idx.PairsWithin(200)
	}
}

// BenchmarkBruteForcePairs is the O(n^2) reference for comparison.
func BenchmarkBruteForcePairs(b *testing.B) {
	pos, active := benchFleet(b, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BruteForcePairs(pos, active, 200)
	}
}

// BenchmarkSpatialIndexLargeFleet shows the index's headroom at 10x the
// paper's fleet size.
func BenchmarkSpatialIndexLargeFleet(b *testing.B) {
	pos, active := benchFleet(b, 1200)
	idx, err := NewSpatialIndex(200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Rebuild(pos, active); err != nil {
			b.Fatal(err)
		}
		_ = idx.PairsWithin(200)
	}
}

// BenchmarkReplayerAt measures trace interpolation (called per vehicle per
// tick and per V2X range check).
func BenchmarkReplayerAt(b *testing.B) {
	g, err := roadnet.Generate(roadnet.GridConfig{Rows: 8, Cols: 8, Spacing: 300, StreetSpeed: 10}, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultGenConfig()
	cfg.Vehicles = 20
	cfg.Horizon = 3600
	ts, err := Generate(cfg, g, sim.NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewReplayer(ts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.At(i%20, sim.Time(i%3600)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures synthetic fleet-trace generation.
func BenchmarkGenerate(b *testing.B) {
	g, err := roadnet.Generate(roadnet.DefaultGridConfig(), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultGenConfig()
	cfg.Vehicles = 30
	cfg.Horizon = 1800
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, g, sim.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
