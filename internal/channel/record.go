package channel

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"roadrunner/internal/sim"
)

// TraceHeader is the version-stamped first line of a channel trace CSV.
const TraceHeader = "# roadrunner-chantrace-v1"

// traceColumns is the trace CSV column header row.
var traceColumns = []string{"kind", "t_s", "dist_m", "size_bytes", "load", "duration_s", "outcome"}

// Transfer outcomes recorded in channel traces. The vocabulary is closed:
// the parser rejects anything else, so a fitted table can never silently
// mix in misattributed rows.
const (
	// OutcomeDelivered marks a successful transfer.
	OutcomeDelivered = "delivered"
	// OutcomeDropped is the channel's base stochastic loss.
	OutcomeDropped = "dropped"
	// OutcomeChannel is a loss sampled from a channel model's DropProb.
	OutcomeChannel = "channel"
	// OutcomeBurst is a fault-window burst loss.
	OutcomeBurst = "burst"
	// OutcomeBlackout is a fault-window coverage blackout.
	OutcomeBlackout = "blackout"
	// OutcomeOff is an endpoint that shut down before delivery.
	OutcomeOff = "off"
	// OutcomeRange is a V2X pair that left radio range before delivery.
	OutcomeRange = "range"
	// OutcomeKilled is a scheduled mid-flight link kill.
	OutcomeKilled = "killed"
	// OutcomeError is any other failure.
	OutcomeError = "error"
)

var validOutcomes = map[string]bool{
	OutcomeDelivered: true, OutcomeDropped: true, OutcomeChannel: true,
	OutcomeBurst: true, OutcomeBlackout: true, OutcomeOff: true,
	OutcomeRange: true, OutcomeKilled: true, OutcomeError: true,
}

// Sample is one recorded transfer: the (distance, size, load, duration,
// outcome) tuple the DRIVE-style oracle pipeline fits its indicator table
// from. Distances are -1 when an endpoint had no position.
type Sample struct {
	Kind      Kind
	T         sim.Time
	DistanceM float64
	SizeBytes int
	Load      int
	DurationS float64
	Outcome   string
}

// Log collects samples during a run. It observes transfers without
// consuming randomness or scheduling events, so recording never perturbs a
// run — like the span tracer, it is result-invariant by construction.
type Log struct {
	samples []Sample
}

// NewLog returns an empty recorder.
func NewLog() *Log { return &Log{} }

// Record appends one sample. Negative distances normalize to -1 so the
// canonical CSV has a single "unknown" spelling.
func (l *Log) Record(s Sample) {
	if s.DistanceM < 0 {
		s.DistanceM = -1
	}
	l.samples = append(l.samples, s)
}

// Len returns the number of recorded samples.
func (l *Log) Len() int { return len(l.samples) }

// Samples returns the recorded samples in record order.
func (l *Log) Samples() []Sample { return l.samples }

// WriteCSV writes the canonical channel-trace CSV: version header, column
// row, then one row per sample in record order (itself deterministic under
// the reproducibility contract, so the bytes are too).
func (l *Log) WriteCSV(w io.Writer) error {
	return WriteTrace(w, l.samples)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTrace writes samples as a canonical channel trace CSV.
func WriteTrace(w io.Writer, samples []Sample) error {
	if _, err := fmt.Fprintln(w, TraceHeader); err != nil {
		return fmt.Errorf("channel: write trace: %w", err)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(traceColumns); err != nil {
		return fmt.Errorf("channel: write trace: %w", err)
	}
	for _, s := range samples {
		dist := s.DistanceM
		if dist < 0 {
			dist = -1
		}
		row := []string{
			s.Kind.String(),
			formatFloat(float64(s.T)),
			formatFloat(dist),
			strconv.Itoa(s.SizeBytes),
			strconv.Itoa(s.Load),
			formatFloat(s.DurationS),
			s.Outcome,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("channel: write trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("channel: write trace: %w", err)
	}
	return nil
}

// ParseTrace reads a channel trace CSV, rejecting malformed input: wrong
// version header, wrong column count, unknown kinds or outcomes, negative
// sizes or loads, and non-finite or negative times and durations. Accepted
// input round-trips byte-stably through WriteTrace.
func ParseTrace(r io.Reader) ([]Sample, error) {
	br := bufio.NewReader(r)
	// The version stamp is a plain line above the CSV body, so it is read
	// directly rather than through the CSV reader (whose field-count check
	// would reject the single-field line).
	header, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("channel: trace header: %w", err)
	}
	if strings.TrimRight(header, "\r\n") != TraceHeader {
		return nil, fmt.Errorf("channel: not a channel trace (missing %q header)", TraceHeader)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = len(traceColumns)
	cols, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("channel: trace columns: %w", err)
	}
	for i, want := range traceColumns {
		if cols[i] != want {
			return nil, fmt.Errorf("channel: trace column %d is %q, want %q", i, cols[i], want)
		}
	}
	var samples []Sample
	for line := 3; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return samples, nil
		}
		if err != nil {
			return nil, fmt.Errorf("channel: trace line %d: %w", line, err)
		}
		s, err := parseSample(row)
		if err != nil {
			return nil, fmt.Errorf("channel: trace line %d: %w", line, err)
		}
		samples = append(samples, s)
	}
}

func parseSample(row []string) (Sample, error) {
	var s Sample
	kind, err := ParseKind(row[0])
	if err != nil {
		return s, err
	}
	t, err := strconv.ParseFloat(row[1], 64)
	if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		return s, fmt.Errorf("bad time %q", row[1])
	}
	dist, err := strconv.ParseFloat(row[2], 64)
	if err != nil || math.IsNaN(dist) || math.IsInf(dist, 0) {
		return s, fmt.Errorf("bad distance %q", row[2])
	}
	if dist < 0 {
		dist = -1
	}
	size, err := strconv.Atoi(row[3])
	if err != nil || size <= 0 {
		return s, fmt.Errorf("bad size %q", row[3])
	}
	load, err := strconv.Atoi(row[4])
	if err != nil || load < 0 {
		return s, fmt.Errorf("bad load %q", row[4])
	}
	dur, err := strconv.ParseFloat(row[5], 64)
	if err != nil || math.IsNaN(dur) || math.IsInf(dur, 0) || dur < 0 {
		return s, fmt.Errorf("bad duration %q", row[5])
	}
	if !validOutcomes[row[6]] {
		return s, fmt.Errorf("unknown outcome %q", row[6])
	}
	s = Sample{Kind: kind, T: sim.Time(t), DistanceM: dist, SizeBytes: size, Load: load, DurationS: dur, Outcome: row[6]}
	return s, nil
}
