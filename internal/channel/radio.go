package channel

import (
	"fmt"
	"math"

	"roadrunner/internal/sim"
)

// RadioConfig parameterizes the Radio model. Zero-valued fields take the
// documented defaults at model-construction time, so a sparse JSON config
// stays readable while the canonical config encoding keeps exactly what
// the user wrote.
type RadioConfig struct {
	// Exponent is the pathloss exponent n (free space 2.0, urban 2.7–3.5).
	// Default 2.9.
	Exponent float64 `json:"exponent,omitempty"`
	// RefDistM is the pathloss reference distance d0 in meters; distances
	// below it see the reference loss. Default 10.
	RefDistM float64 `json:"ref_dist_m,omitempty"`
	// RefLossDB is the pathloss at the reference distance. Default 60.
	RefLossDB float64 `json:"ref_loss_db,omitempty"`
	// ShadowSigmaDB is the log-normal shadowing standard deviation in dB;
	// zero disables shadowing. Default 4 (set NoShadow for a true zero).
	ShadowSigmaDB float64 `json:"shadow_sigma_db,omitempty"`
	// NoShadow disables log-normal shadowing regardless of ShadowSigmaDB.
	NoShadow bool `json:"no_shadow,omitempty"`
	// NoFading disables Rayleigh fast fading (on by default).
	NoFading bool `json:"no_fading,omitempty"`
	// TxPowerDBm is the transmit power. Default 23 (200 mW, C-V2X class).
	TxPowerDBm float64 `json:"tx_power_dbm,omitempty"`
	// NoiseDBm is the receiver noise floor. Default -95.
	NoiseDBm float64 `json:"noise_dbm,omitempty"`
	// DefaultDistM substitutes for links without positions (the V2C uplink
	// terminates at the cloud; its radio hop is vehicle↔base station).
	// Default 500.
	DefaultDistM float64 `json:"default_dist_m,omitempty"`
	// Table maps post-fading SNR to an effective rate; nil takes
	// DefaultRateTable. Steps must be sorted by descending MinSNRDB; an
	// SNR below the last step is an outage (the transfer is lost).
	Table []RateStep `json:"table,omitempty"`
}

// RateStep is one rung of the SNR→rate ladder: at or above MinSNRDB the
// channel sustains RateFrac of its nominal throughput. A crude stand-in
// for an adaptive modulation-and-coding table.
type RateStep struct {
	MinSNRDB float64 `json:"min_snr_db"`
	RateFrac float64 `json:"rate_frac"`
}

// DefaultRadioConfig is an urban C-V2X-flavored parameterization.
func DefaultRadioConfig() RadioConfig {
	return RadioConfig{
		Exponent:      2.9,
		RefDistM:      10,
		RefLossDB:     60,
		ShadowSigmaDB: 4,
		TxPowerDBm:    23,
		NoiseDBm:      -95,
		DefaultDistM:  500,
	}
}

// DefaultRateTable is the default SNR→rate ladder: full rate in strong
// signal, graceful degradation toward the cell edge, outage below -5 dB.
func DefaultRateTable() []RateStep {
	return []RateStep{
		{MinSNRDB: 22, RateFrac: 1.0},
		{MinSNRDB: 15, RateFrac: 0.75},
		{MinSNRDB: 10, RateFrac: 0.5},
		{MinSNRDB: 5, RateFrac: 0.25},
		{MinSNRDB: 0, RateFrac: 0.1},
		{MinSNRDB: -5, RateFrac: 0.02},
	}
}

// normalized fills defaulted fields. A nil receiver yields the full default
// configuration.
func (c *RadioConfig) normalized() RadioConfig {
	out := DefaultRadioConfig()
	if c == nil {
		out.Table = DefaultRateTable()
		return out
	}
	if c.Exponent != 0 {
		out.Exponent = c.Exponent
	}
	if c.RefDistM != 0 {
		out.RefDistM = c.RefDistM
	}
	if c.RefLossDB != 0 {
		out.RefLossDB = c.RefLossDB
	}
	if c.ShadowSigmaDB != 0 {
		out.ShadowSigmaDB = c.ShadowSigmaDB
	}
	if c.NoShadow {
		out.ShadowSigmaDB = 0
	}
	out.NoShadow = c.NoShadow
	out.NoFading = c.NoFading
	if c.TxPowerDBm != 0 {
		out.TxPowerDBm = c.TxPowerDBm
	}
	if c.NoiseDBm != 0 {
		out.NoiseDBm = c.NoiseDBm
	}
	if c.DefaultDistM != 0 {
		out.DefaultDistM = c.DefaultDistM
	}
	out.Table = DefaultRateTable()
	if len(c.Table) > 0 {
		out.Table = c.Table
	}
	return out
}

// validate reports whether the (normalized) configuration is usable.
func (c *RadioConfig) validate() error {
	n := c.normalized()
	switch {
	case n.Exponent < 1 || n.Exponent > 8:
		return fmt.Errorf("channel: radio pathloss exponent %v outside [1, 8]", n.Exponent)
	case n.RefDistM <= 0:
		return fmt.Errorf("channel: non-positive radio reference distance %v", n.RefDistM)
	case n.ShadowSigmaDB < 0:
		return fmt.Errorf("channel: negative shadowing sigma %v", n.ShadowSigmaDB)
	case n.DefaultDistM <= 0:
		return fmt.Errorf("channel: non-positive radio default distance %v", n.DefaultDistM)
	case len(n.Table) == 0:
		return fmt.Errorf("channel: empty SNR rate table")
	}
	for i, s := range n.Table {
		if s.RateFrac <= 0 || s.RateFrac > 1 {
			return fmt.Errorf("channel: rate table step %d: fraction %v outside (0, 1]", i, s.RateFrac)
		}
		if i > 0 && s.MinSNRDB >= n.Table[i-1].MinSNRDB {
			return fmt.Errorf("channel: rate table step %d: thresholds must strictly descend", i)
		}
	}
	return nil
}

// Radio composes distance pathloss, log-normal shadowing, and Rayleigh
// fast fading into a per-transfer SNR, then maps the SNR to an effective
// rate through the step table. It shapes the two radio kinds (V2C, V2X)
// and passes the wired backhaul through untouched.
type Radio struct {
	cfg RadioConfig
}

// NewRadio builds the model; a nil config takes every default.
func NewRadio(cfg *RadioConfig) *Radio {
	return &Radio{cfg: cfg.normalized()}
}

// Name implements Model.
func (m *Radio) Name() string { return ModelRadio }

// Pathloss returns the deterministic distance loss in dB at d meters
// (log-distance model, clamped at the reference distance).
func (m *Radio) Pathloss(d float64) float64 {
	if d < m.cfg.RefDistM {
		d = m.cfg.RefDistM
	}
	return m.cfg.RefLossDB + 10*m.cfg.Exponent*math.Log10(d/m.cfg.RefDistM)
}

// snr samples one transfer's post-fading SNR in dB. Draw order is fixed —
// shadowing first, then fading — so the channel stream stays reproducible
// as models evolve.
func (m *Radio) snr(d float64, rng *sim.RNG) float64 {
	sig := m.cfg.TxPowerDBm - m.Pathloss(d)
	if m.cfg.ShadowSigmaDB > 0 {
		sig += m.cfg.ShadowSigmaDB * rng.NormFloat64()
	}
	if !m.cfg.NoFading {
		// Rayleigh amplitude fading is an exponential power gain with unit
		// mean; in dB: 10·log10(g), g ~ Exp(1).
		sig += 10 * math.Log10(rng.ExpFloat64())
	}
	return sig - m.cfg.NoiseDBm
}

// rateFrac maps an SNR to the table's rate fraction; ok is false below the
// last rung (outage).
func (m *Radio) rateFrac(snr float64) (float64, bool) {
	for _, s := range m.cfg.Table {
		if snr >= s.MinSNRDB {
			return s.RateFrac, true
		}
	}
	return 0, false
}

// Outcome implements Model.
func (m *Radio) Outcome(link Link, rng *sim.RNG) Outcome {
	if link.Kind == KindWired {
		// The backhaul is a cable; pathloss does not apply.
		return Outcome{KBps: link.BaseKBps, LatencyS: link.BaseLatencyS}
	}
	d := link.DistanceM
	if d < 0 {
		d = m.cfg.DefaultDistM
	}
	frac, ok := m.rateFrac(m.snr(d, rng))
	if !ok {
		// Outage: the transfer is scheduled at the table's worst sustained
		// rate and lost at delivery time, so its airtime still occupies the
		// channel (and the load signal downstream models see).
		worst := m.cfg.Table[len(m.cfg.Table)-1].RateFrac
		return Outcome{KBps: link.BaseKBps * worst, LatencyS: link.BaseLatencyS, DropProb: 1}
	}
	return Outcome{KBps: link.BaseKBps * frac, LatencyS: link.BaseLatencyS}
}
