package channel

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseChannelTrace throws arbitrary bytes at the channel-trace parser
// (the mirror of mobility's FuzzParseTrace). The parser must never panic,
// and anything it accepts must survive a write/re-read round trip with
// byte-stable serialization — the property the oracle fitter depends on.
func FuzzParseChannelTrace(f *testing.F) {
	head := TraceHeader + "\nkind,t_s,dist_m,size_bytes,load,duration_s,outcome\n"
	f.Add([]byte(head))
	f.Add([]byte(head + "v2c,1,100,4096,0,0.5,delivered\n"))
	f.Add([]byte(head + "v2x,2.5,12.25,1,3,0.001,channel\nwired,3,-1,65536,0,1e-3,burst\n"))
	f.Add([]byte(head + "v2c,0,0,1,0,0,blackout\n"))
	f.Add([]byte(head + "v2c,NaN,100,4096,0,0.5,delivered\n"))
	f.Add([]byte(head + "v2c,1,+Inf,4096,0,0.5,delivered\n"))
	f.Add([]byte(head + "v2c,1,100,-4,0,0.5,delivered\n"))
	f.Add([]byte(head + "v2c,1,100,4096,0,0.5,vanished\n"))
	f.Add([]byte(head + "warp,1,100,4096,0,0.5,delivered\n"))
	f.Add([]byte(head + "v2c,1,-900,4096,0,0.5,off\n"))
	f.Add([]byte("kind,t_s\n"))
	f.Add([]byte("# roadrunner-chantrace-v0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, samples); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		again, err := ParseTrace(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("serialized trace fails to re-parse: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteTrace(&buf2, again); err != nil {
			t.Fatalf("re-parsed trace fails to serialize: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("round trip unstable:\nfirst:\n%s\nsecond:\n%s", buf.String(), buf2.String())
		}
	})
}
