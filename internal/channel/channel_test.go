package channel

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"roadrunner/internal/sim"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("carrier-pigeon"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
	if s := Kind(0).String(); !strings.Contains(s, "unknown") {
		t.Fatalf("Kind(0).String() = %q, want an unknown marker", s)
	}
}

func TestNewDispatch(t *testing.T) {
	cases := []struct {
		name    string
		cfg     *Config
		want    string // expected Model.Name(); "" means nil model
		wantErr bool
	}{
		{name: "nil config", cfg: nil, want: ""},
		{name: "empty selector", cfg: &Config{}, want: ""},
		{name: "analytic", cfg: &Config{Model: ModelAnalytic}, want: ""},
		{name: "radio", cfg: &Config{Model: ModelRadio}, want: ModelRadio},
		{name: "queued", cfg: &Config{Model: ModelQueued}, want: ModelQueued},
		{name: "radio+queued", cfg: &Config{Model: ModelRadioQueued}, want: ModelRadioQueued},
		{
			name: "oracle inline",
			cfg: &Config{Model: ModelOracle, Oracle: &OracleConfig{Table: []Bin{{
				Kind: KindV2C, DistLo: 0, DistHi: math.Inf(1),
				SizeLo: 0, SizeHi: math.Inf(1), LoadLo: 0, LoadHi: math.Inf(1),
				KBps: 100, N: 1,
			}}}},
			want: ModelOracle,
		},
		{name: "oracle without table", cfg: &Config{Model: ModelOracle}, wantErr: true},
		{name: "unknown model", cfg: &Config{Model: "smoke-signals"}, wantErr: true},
		{name: "bad radio exponent", cfg: &Config{Model: ModelRadio, Radio: &RadioConfig{Exponent: 99}}, wantErr: true},
		{name: "bad queue rho", cfg: &Config{Model: ModelQueued, Queued: &QueuedConfig{MaxRho: 2}}, wantErr: true},
	}
	for _, tc := range cases {
		m, err := New(tc.cfg)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: New accepted a bad config", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: New: %v", tc.name, err)
			continue
		}
		if tc.want == "" {
			if m != nil {
				t.Errorf("%s: New returned %T, want nil (analytic fast path)", tc.name, m)
			}
			continue
		}
		if m == nil || m.Name() != tc.want {
			t.Errorf("%s: model name = %v, want %q", tc.name, m, tc.want)
		}
	}
}

func TestAnalyticMirrorsBase(t *testing.T) {
	link := Link{Kind: DefaultLink().Kind, SizeBytes: 1 << 20, BaseKBps: 1000, BaseLatencyS: 0.05}
	out := Analytic{}.Outcome(link, nil)
	if out.KBps != link.BaseKBps || out.LatencyS != link.BaseLatencyS || out.DropProb != 0 {
		t.Fatalf("analytic outcome %+v does not mirror the base channel", out)
	}
}

// DefaultLink returns a representative V2C link for tests.
func DefaultLink() Link {
	return Link{Kind: KindV2C, SizeBytes: 1 << 18, DistanceM: 200, BaseKBps: 2000, BaseLatencyS: 0.05}
}

// goodput is the mean effective delivered rate over n draws: rate scaled by
// the survival probability, so outage (DropProb 1) counts as zero.
func goodput(t *testing.T, m Model, link Link, rng *sim.RNG, n int) float64 {
	t.Helper()
	var sum float64
	for i := 0; i < n; i++ {
		out := m.Outcome(link, rng)
		if out.DropProb < 0 || out.DropProb > 1 {
			t.Fatalf("DropProb %v outside [0, 1]", out.DropProb)
		}
		sum += out.KBps * (1 - out.DropProb)
	}
	return sum / float64(n)
}

func TestRadioGoodputMonotoneInDistance(t *testing.T) {
	m := NewRadio(nil)
	rng := sim.NewRNG(7)
	const draws = 4000
	dists := []float64{30, 100, 250, 600, 1500}
	var prev float64
	for i, d := range dists {
		link := DefaultLink()
		link.DistanceM = d
		g := goodput(t, m, link, rng, draws)
		if g <= 0 || g > link.BaseKBps {
			t.Fatalf("dist %v m: goodput %v outside (0, base]", d, g)
		}
		if i > 0 && g >= prev {
			t.Fatalf("goodput not monotone: %v KB/s at %v m vs %v KB/s at %v m", g, d, prev, dists[i-1])
		}
		prev = g
	}
}

func TestRadioShadowingDistribution(t *testing.T) {
	// With fading off, the SNR is a deterministic mean plus
	// ShadowSigmaDB·N(0,1); check the sample moments at a fixed seed.
	cfg := DefaultRadioConfig()
	cfg.NoFading = true
	m := NewRadio(&cfg)
	rng := sim.NewRNG(11)
	const (
		draws = 20000
		dist  = 200.0
	)
	want := cfg.TxPowerDBm - m.Pathloss(dist) - cfg.NoiseDBm
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		s := m.snr(dist, rng)
		sum += s
		sumSq += s * s
	}
	mean := sum / draws
	std := math.Sqrt(sumSq/draws - mean*mean)
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("shadowed SNR mean %v, want %v ± 0.15 dB", mean, want)
	}
	if math.Abs(std-cfg.ShadowSigmaDB) > 0.15 {
		t.Errorf("shadowed SNR std %v dB, want %v ± 0.15", std, cfg.ShadowSigmaDB)
	}
}

func TestRadioFadingMean(t *testing.T) {
	// Rayleigh power fading in dB has mean 10·E[ln Exp(1)]/ln 10 =
	// −10γ/ln 10 ≈ −2.507 dB; check it at a fixed seed with shadowing off.
	cfg := DefaultRadioConfig()
	cfg.NoShadow = true
	m := NewRadio(&cfg)
	rng := sim.NewRNG(13)
	const (
		draws = 20000
		dist  = 200.0
	)
	base := cfg.TxPowerDBm - m.Pathloss(dist) - cfg.NoiseDBm
	var sum float64
	for i := 0; i < draws; i++ {
		sum += m.snr(dist, rng) - base
	}
	const eulerGamma = 0.5772156649015329
	want := -10 * eulerGamma / math.Ln10
	if mean := sum / draws; math.Abs(mean-want) > 0.3 {
		t.Errorf("fading mean %v dB, want %v ± 0.3", mean, want)
	}
}

func TestRadioOutageAndWired(t *testing.T) {
	m := NewRadio(nil)
	rng := sim.NewRNG(3)
	far := DefaultLink()
	far.DistanceM = 1e7 // astronomically out of range: outage regardless of fading
	out := m.Outcome(far, rng)
	if out.DropProb != 1 {
		t.Fatalf("outage DropProb = %v, want 1", out.DropProb)
	}
	if out.KBps <= 0 {
		t.Fatalf("outage airtime rate %v, want positive (the loss still occupies the channel)", out.KBps)
	}

	wired := DefaultLink()
	wired.Kind = KindWired
	if got := m.Outcome(wired, rng); got.KBps != wired.BaseKBps || got.LatencyS != wired.BaseLatencyS || got.DropProb != 0 {
		t.Fatalf("wired outcome %+v, want nominal passthrough", got)
	}
}

func TestRadioWiredConsumesNoRandomness(t *testing.T) {
	m := NewRadio(nil)
	r1, r2 := sim.NewRNG(21), sim.NewRNG(21)
	wired := DefaultLink()
	wired.Kind = KindWired
	m.Outcome(wired, r1)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("wired passthrough consumed channel randomness")
	}
}

func TestRadioUnknownDistanceUsesDefault(t *testing.T) {
	cfg := DefaultRadioConfig()
	cfg.NoShadow = true
	cfg.NoFading = true
	m := NewRadio(&cfg)
	known := DefaultLink()
	known.DistanceM = cfg.DefaultDistM
	unknown := DefaultLink()
	unknown.DistanceM = -1
	a := m.Outcome(known, sim.NewRNG(1))
	b := m.Outcome(unknown, sim.NewRNG(1))
	if a != b {
		t.Fatalf("unknown distance outcome %+v, want the DefaultDistM outcome %+v", b, a)
	}
}

func TestQueuedDelayShape(t *testing.T) {
	m := NewQueued(nil, nil)
	const service = 2.0
	if d := m.Delay(service, 0); d != 0 {
		t.Fatalf("delay at zero load = %v, want 0", d)
	}
	if d := m.Delay(service, -3); d != 0 {
		t.Fatalf("delay at negative load = %v, want 0", d)
	}
	var prev float64
	for load := 1; load <= 6; load++ {
		d := m.Delay(service, load)
		if d <= prev {
			t.Fatalf("delay not strictly increasing below saturation: %v at load %d vs %v at %d", d, load, prev, load-1)
		}
		prev = d
	}
	// Past MaxRho the delay saturates instead of diverging.
	capD := m.Delay(service, 1000000)
	if sat := m.Delay(service, 8); capD != sat {
		t.Fatalf("saturated delay %v differs from capped delay %v", sat, capD)
	}
	if math.IsInf(capD, 0) || math.IsNaN(capD) {
		t.Fatalf("capped delay is %v", capD)
	}
}

func TestQueuedOutcomeAddsLatencyOnly(t *testing.T) {
	m := NewQueued(nil, nil)
	link := DefaultLink()
	idle := m.Outcome(link, nil)
	link.InFlight = 5
	busy := m.Outcome(link, nil)
	if idle.KBps != busy.KBps || idle.KBps != link.BaseKBps {
		t.Fatalf("queueing changed the rate: idle %v, busy %v", idle.KBps, busy.KBps)
	}
	if busy.LatencyS <= idle.LatencyS {
		t.Fatalf("busy latency %v not above idle latency %v", busy.LatencyS, idle.LatencyS)
	}
}

func TestQueuedComposedName(t *testing.T) {
	if n := NewQueued(nil, nil).Name(); n != ModelQueued {
		t.Fatalf("queued-over-analytic name %q, want %q", n, ModelQueued)
	}
	if n := NewQueued(nil, NewRadio(nil)).Name(); n != ModelRadioQueued {
		t.Fatalf("queued-over-radio name %q, want %q", n, ModelRadioQueued)
	}
}

func TestModelDeterminism(t *testing.T) {
	// Identical seeds must reproduce the exact outcome sequence for every
	// stochastic model.
	models := func() []Model {
		oracle, err := NewOracle(&OracleConfig{Table: []Bin{{
			Kind: KindV2C, DistLo: 0, DistHi: math.Inf(1),
			SizeLo: 0, SizeHi: math.Inf(1), LoadLo: 0, LoadHi: math.Inf(1),
			KBps: 321, LatencyS: 0.01, DropProb: 0.25, N: 10,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		return []Model{NewRadio(nil), NewQueued(nil, nil), NewQueued(nil, NewRadio(nil)), oracle}
	}
	ma, mb := models(), models()
	ra, rb := sim.NewRNG(99), sim.NewRNG(99)
	for i := 0; i < len(ma); i++ {
		for j := 0; j < 500; j++ {
			link := DefaultLink()
			link.DistanceM = float64(10 + 13*j%900)
			link.InFlight = j % 7
			a, b := ma[i].Outcome(link, ra), mb[i].Outcome(link, rb)
			if a != b {
				t.Fatalf("%s: outcome %d diverged: %+v vs %+v", ma[i].Name(), j, a, b)
			}
		}
	}
}

func TestFitAndOracleRoundTrip(t *testing.T) {
	size := 100000
	samples := []Sample{
		// One (v2c, [50,150), [32768,131072), [0,1)) bin: latency floor 1.0,
		// effective rate mean of 100 and 200 KB/s, one channel loss in four.
		{Kind: KindV2C, T: 1, DistanceM: 100, SizeBytes: size, Load: 0, DurationS: 1.0, Outcome: OutcomeDelivered},
		{Kind: KindV2C, T: 2, DistanceM: 120, SizeBytes: size, Load: 0, DurationS: 2.0, Outcome: OutcomeDelivered},
		{Kind: KindV2C, T: 3, DistanceM: 60, SizeBytes: size, Load: 0, DurationS: 1.5, Outcome: OutcomeDelivered},
		{Kind: KindV2C, T: 4, DistanceM: 80, SizeBytes: size, Load: 0, DurationS: 0, Outcome: OutcomeChannel},
		// Endpoint-attributable outcomes must not contaminate the fit.
		{Kind: KindV2C, T: 5, DistanceM: 90, SizeBytes: size, Load: 0, DurationS: 0, Outcome: OutcomeOff},
		{Kind: KindV2C, T: 6, DistanceM: 90, SizeBytes: size, Load: 0, DurationS: 0, Outcome: OutcomeRange},
		// Unknown distance forms its own [-1, 0) bin.
		{Kind: KindWired, T: 7, DistanceM: -1, SizeBytes: size, Load: 2, DurationS: 0.5, Outcome: OutcomeDelivered},
	}
	tab, err := Fit(samples, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Bins) != 2 {
		t.Fatalf("fitted %d bins, want 2: %+v", len(tab.Bins), tab.Bins)
	}
	b := tab.Bins[0]
	if b.Kind != KindV2C || b.DistLo != 50 || b.DistHi != 150 {
		t.Fatalf("first bin box %+v, want the v2c [50,150) bin", b)
	}
	if b.N != 4 || b.DropProb != 0.25 {
		t.Fatalf("bin N=%d drop=%v, want N=4 drop=0.25", b.N, b.DropProb)
	}
	if b.LatencyS != 1.0 {
		t.Fatalf("bin latency %v, want the 1.0 s floor", b.LatencyS)
	}
	if want := 150.0; math.Abs(b.KBps-want) > 1e-9 {
		t.Fatalf("bin rate %v KB/s, want %v", b.KBps, want)
	}
	if w := tab.Bins[1]; w.Kind != KindWired || w.DistLo != -1 || w.DistHi != 0 {
		t.Fatalf("second bin %+v, want the wired unknown-distance bin", w)
	}

	// Table CSV round trip is byte-stable.
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	again, err := ParseTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteTable(&buf2, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("table round trip unstable:\n%s\nvs\n%s", buf.String(), buf2.String())
	}

	// The oracle replays the fitted bin and falls back outside it.
	oracle, err := NewOracle(&OracleConfig{Table: again.Bins})
	if err != nil {
		t.Fatal(err)
	}
	link := Link{Kind: KindV2C, DistanceM: 100, SizeBytes: size, BaseKBps: 1, BaseLatencyS: 9}
	out := oracle.Outcome(link, nil)
	if out.KBps != b.KBps || out.LatencyS != b.LatencyS || out.DropProb != b.DropProb {
		t.Fatalf("oracle outcome %+v does not replay bin %+v", out, b)
	}
	miss := link
	miss.Kind = KindV2X
	if got := oracle.Outcome(miss, nil); got.KBps != miss.BaseKBps || got.LatencyS != miss.BaseLatencyS || got.DropProb != 0 {
		t.Fatalf("oracle miss outcome %+v, want nominal fallback", got)
	}
}

func TestFitRejectsEmptyInput(t *testing.T) {
	if _, err := Fit(nil, DefaultFitConfig()); err == nil {
		t.Fatal("Fit accepted an empty trace")
	}
	endpointOnly := []Sample{{Kind: KindV2C, DistanceM: 10, SizeBytes: 1, DurationS: 0, Outcome: OutcomeOff}}
	if _, err := Fit(endpointOnly, DefaultFitConfig()); err == nil {
		t.Fatal("Fit accepted a trace with only endpoint-attributable samples")
	}
}

func TestFitMinSamplesFloor(t *testing.T) {
	samples := []Sample{
		{Kind: KindV2C, DistanceM: 100, SizeBytes: 1000, DurationS: 1, Outcome: OutcomeDelivered},
		{Kind: KindV2X, DistanceM: 100, SizeBytes: 1000, DurationS: 1, Outcome: OutcomeDelivered},
		{Kind: KindV2X, DistanceM: 110, SizeBytes: 1000, DurationS: 2, Outcome: OutcomeDelivered},
	}
	fc := DefaultFitConfig()
	fc.MinSamples = 2
	tab, err := Fit(samples, fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Bins) != 1 || tab.Bins[0].Kind != KindV2X {
		t.Fatalf("fitted bins %+v, want only the 2-sample v2x bin", tab.Bins)
	}
	fc.MinSamples = 5
	if _, err := Fit(samples, fc); err == nil {
		t.Fatal("Fit produced a table with every bin below the sample floor")
	}
}

func TestTraceRecordAndParse(t *testing.T) {
	log := NewLog()
	log.Record(Sample{Kind: KindV2C, T: 12.5, DistanceM: 88.25, SizeBytes: 4096, Load: 1, DurationS: 0.75, Outcome: OutcomeDelivered})
	log.Record(Sample{Kind: KindWired, T: 13, DistanceM: -42, SizeBytes: 9, Load: 0, DurationS: 0.001, Outcome: OutcomeBlackout})
	if log.Len() != 2 {
		t.Fatalf("log length %d, want 2", log.Len())
	}
	if d := log.Samples()[1].DistanceM; d != -1 {
		t.Fatalf("negative distance recorded as %v, want the canonical -1", d)
	}
	var buf bytes.Buffer
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != log.Samples()[0] || got[1] != log.Samples()[1] {
		t.Fatalf("parsed samples %+v, want %+v", got, log.Samples())
	}
}

func TestParseTraceRejections(t *testing.T) {
	rows := func(body string) string {
		return TraceHeader + "\nkind,t_s,dist_m,size_bytes,load,duration_s,outcome\n" + body
	}
	bad := map[string]string{
		"missing header":  "kind,t_s,dist_m,size_bytes,load,duration_s,outcome\n",
		"wrong columns":   TraceHeader + "\nkind,t_s,dist_m,size_bytes,load,duration_s,result\n",
		"unknown kind":    rows("warp,1,2,3,0,1,delivered\n"),
		"unknown outcome": rows("v2c,1,2,3,0,1,vanished\n"),
		"NaN time":        rows("v2c,NaN,2,3,0,1,delivered\n"),
		"negative time":   rows("v2c,-1,2,3,0,1,delivered\n"),
		"inf distance":    rows("v2c,1,+Inf,3,0,1,delivered\n"),
		"zero size":       rows("v2c,1,2,0,0,1,delivered\n"),
		"negative load":   rows("v2c,1,2,3,-1,1,delivered\n"),
		"inf duration":    rows("v2c,1,2,3,0,+Inf,delivered\n"),
		"short row":       rows("v2c,1,2,3,0,1\n"),
	}
	for name, input := range bad {
		if _, err := ParseTrace(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ParseTrace accepted %q", name, input)
		}
	}
	ok := rows("v2c,1,-7,3,0,1,delivered\n")
	samples, err := ParseTrace(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParseTrace rejected a valid trace: %v", err)
	}
	if samples[0].DistanceM != -1 {
		t.Fatalf("negative distance parsed as %v, want -1", samples[0].DistanceM)
	}
}

func TestParseTableRejections(t *testing.T) {
	bad := map[string]string{
		"missing header": strings.Join(tableColumns, ",") + "\n",
		"empty table":    TableHeader + "\n" + strings.Join(tableColumns, ",") + "\n",
		"bad drop":       TableHeader + "\n" + strings.Join(tableColumns, ",") + "\nv2c,0,100,0,1000,0,1,50,0.1,1.5,3\n",
		"inverted box":   TableHeader + "\n" + strings.Join(tableColumns, ",") + "\nv2c,100,50,0,1000,0,1,50,0.1,0.5,3\n",
	}
	for name, input := range bad {
		if _, err := ParseTable(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ParseTable accepted %q", name, input)
		}
	}
}
