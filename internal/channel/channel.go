// Package channel models the radio channel underneath Roadrunner's
// communication module. The paper evaluates learning strategies over a
// single analytic transfer-time model; this package makes the channel a
// first-class strategy-evaluation surface (ROADMAP item 3): a Model maps
// one prospective transfer — link endpoints, distance, payload size,
// current per-kind load — to an effective throughput, latency, and loss
// probability, and internal/comm composes that outcome with the fault
// layer's Conditions.
//
// Four model families ship with the framework:
//
//   - Analytic — the paper's flat ChannelParams model, retained as the
//     byte-identical default (a nil Config selects it without even
//     constructing a Model).
//   - Radio — distance pathloss with a configurable exponent, log-normal
//     shadowing, and Rayleigh fast fading, mapped to an effective rate via
//     an SNR→rate step table (the V2X DRL exemplar's channel stack).
//   - Queued — M/M/1-style ρ/(1−ρ) queueing delay driven by the live
//     per-kind in-flight count, composable over Analytic or Radio.
//   - Oracle — a DRIVE-style data-driven model replaying a binned
//     indicator table fitted offline from recorded transfer traces
//     (Sliwa & Wietfeld's end-to-end indicator approach).
//
// Every stochastic draw comes from a *sim.RNG the experiment forks as
// root.Fork("channel") — after the "faults" fork, so fault-free analytic
// runs consume exactly the root-RNG sequence they did before this package
// existed and stay byte-identical.
package channel

import (
	"fmt"
	"strconv"

	"roadrunner/internal/sim"
)

// Kind identifies a communication channel family. It lives here, at the
// bottom of the comm stack, so channel models can switch on it without
// importing internal/comm; comm aliases it (comm.Kind) for the rest of the
// framework.
type Kind int

const (
	// KindV2C is long-range cellular vehicle-to-cloud.
	KindV2C Kind = iota + 1
	// KindV2X is short-range vehicle-to-anything (V2V and vehicle-RSU).
	KindV2X
	// KindWired is the stationary RSU-to-cloud backhaul.
	KindWired

	// kindCount bounds int(Kind) for dense per-kind arrays.
	kindCount
)

// NumKinds is the exclusive upper bound of int(Kind), for sizing dense
// per-kind arrays (index 0 is unused).
const NumKinds = int(kindCount)

// AllKinds lists every channel kind, for metric iteration.
func AllKinds() []Kind { return []Kind{KindV2C, KindV2X, KindWired} }

// String returns the channel name.
func (k Kind) String() string {
	switch k {
	case KindV2C:
		return "v2c"
	case KindV2X:
		return "v2x"
	case KindWired:
		return "wired"
	default:
		return "unknown(" + strconv.Itoa(int(k)) + ")"
	}
}

// ParseKind inverts String for the canonical kind names.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "v2c":
		return KindV2C, nil
	case "v2x":
		return KindV2X, nil
	case "wired":
		return KindWired, nil
	default:
		return 0, fmt.Errorf("channel: unknown kind %q", s)
	}
}

// Link describes one prospective transfer at send time: everything a
// channel model may condition its outcome on.
type Link struct {
	// Now is the simulated send instant.
	Now sim.Time
	// Kind is the channel family carrying the transfer.
	Kind Kind
	// From and To are the endpoint agent IDs (informational; models must
	// not derive randomness from them).
	From, To uint64
	// SizeBytes is the payload size.
	SizeBytes int
	// DistanceM is the sender–receiver distance in meters; negative when
	// either endpoint has no position (the cloud server).
	DistanceM float64
	// InFlight counts transfers of this Kind already in the air when this
	// one starts — the live load signal Queued's ρ/(1−ρ) delay feeds on.
	InFlight int
	// BaseKBps and BaseLatencyS are the configured nominal ChannelParams
	// of the kind, the analytic reference the models modulate.
	BaseKBps     float64
	BaseLatencyS float64
}

// Outcome is a model's verdict on one transfer. The communication module
// turns it into a delivery schedule: duration = LatencyS +
// size/(KBps·1000·faultRateFactor), and samples DropProb at delivery time
// (after the channel's base drop and any fault-window burst loss).
type Outcome struct {
	// KBps is the effective sustained throughput. Non-positive values are
	// defensive nonsense; comm falls back to the nominal rate.
	KBps float64
	// LatencyS is the effective fixed latency in seconds, including any
	// model-added queueing delay.
	LatencyS float64
	// DropProb is the model's additional loss probability in [0, 1],
	// sampled once per transfer at delivery time from the channel RNG.
	DropProb float64
}

// Model produces per-transfer channel outcomes. Implementations must be
// deterministic in (link, rng-stream state): all randomness comes from the
// supplied RNG, which the experiment forks from the run seed, and models
// run on the single simulation goroutine.
type Model interface {
	// Name returns the model's selector name (Config.Model).
	Name() string
	// Outcome evaluates the channel for one transfer. rng is the
	// experiment's dedicated channel stream; deterministic models must not
	// touch it.
	Outcome(link Link, rng *sim.RNG) Outcome
}

// Model selector names for Config.Model.
const (
	// ModelAnalytic is the paper's flat transfer-time model (the default).
	ModelAnalytic = "analytic"
	// ModelRadio is pathloss + shadowing + fading over an SNR→rate table.
	ModelRadio = "radio"
	// ModelQueued adds load-dependent queueing delay over the analytic rates.
	ModelQueued = "queued"
	// ModelRadioQueued composes Queued over Radio.
	ModelRadioQueued = "radio+queued"
	// ModelOracle replays a fitted data-driven indicator table.
	ModelOracle = "oracle"
)

// Config selects and parameterizes a channel model. The zero value (and a
// nil *Config) means the analytic default; comm.Params embeds it as an
// omitempty pointer so configs predating this package keep their canonical
// JSON — and therefore their campaign run keys — byte-identical.
type Config struct {
	// Model is one of the Model* selector names; empty means analytic.
	Model string `json:"model"`
	// Radio parameterizes the radio models (nil = DefaultRadioConfig).
	Radio *RadioConfig `json:"radio,omitempty"`
	// Queued parameterizes the queued models (nil = DefaultQueuedConfig).
	Queued *QueuedConfig `json:"queued,omitempty"`
	// Oracle parameterizes the oracle model (required for it).
	Oracle *OracleConfig `json:"oracle,omitempty"`
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	switch c.Model {
	case "", ModelAnalytic:
	case ModelRadio:
		return c.Radio.validate()
	case ModelQueued:
		return c.Queued.validate()
	case ModelRadioQueued:
		if err := c.Radio.validate(); err != nil {
			return err
		}
		return c.Queued.validate()
	case ModelOracle:
		if c.Oracle == nil {
			return fmt.Errorf("channel: oracle model needs an oracle config (table path or inline table)")
		}
		return c.Oracle.validate()
	default:
		return fmt.Errorf("channel: unknown model %q", c.Model)
	}
	return nil
}

// New builds the configured model. A nil config, and the empty or
// "analytic" selector, return a nil Model: the communication module treats
// that as "use the original analytic code path", which keeps the default
// byte-identical by construction rather than by equivalence.
func New(c *Config) (Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, nil
	}
	switch c.Model {
	case "", ModelAnalytic:
		return nil, nil
	case ModelRadio:
		return NewRadio(c.Radio), nil
	case ModelQueued:
		return NewQueued(c.Queued, nil), nil
	case ModelRadioQueued:
		return NewQueued(c.Queued, NewRadio(c.Radio)), nil
	case ModelOracle:
		return NewOracle(c.Oracle)
	default:
		return nil, fmt.Errorf("channel: unknown model %q", c.Model)
	}
}
