package channel

import (
	"fmt"

	"roadrunner/internal/sim"
)

// QueuedConfig parameterizes the load-dependent queueing model.
type QueuedConfig struct {
	// Capacity is the number of concurrent transfers one channel kind
	// sustains before queueing delay sets in: ρ = InFlight/Capacity.
	// Default 8.
	Capacity int `json:"capacity,omitempty"`
	// MaxRho caps the utilization fed into the ρ/(1−ρ) term so a saturated
	// channel degrades instead of diverging. Default 0.95.
	MaxRho float64 `json:"max_rho,omitempty"`
	// DelayScale scales the queueing delay; 1 is the M/M/1 mean-wait
	// coefficient. Default 1.
	DelayScale float64 `json:"delay_scale,omitempty"`
}

// DefaultQueuedConfig returns the defaults documented on the fields.
func DefaultQueuedConfig() QueuedConfig {
	return QueuedConfig{Capacity: 8, MaxRho: 0.95, DelayScale: 1}
}

// normalized fills defaulted fields; a nil receiver takes every default.
func (c *QueuedConfig) normalized() QueuedConfig {
	out := DefaultQueuedConfig()
	if c == nil {
		return out
	}
	if c.Capacity != 0 {
		out.Capacity = c.Capacity
	}
	if c.MaxRho != 0 {
		out.MaxRho = c.MaxRho
	}
	if c.DelayScale != 0 {
		out.DelayScale = c.DelayScale
	}
	return out
}

// validate reports whether the (normalized) configuration is usable.
func (c *QueuedConfig) validate() error {
	n := c.normalized()
	switch {
	case n.Capacity < 1:
		return fmt.Errorf("channel: queued capacity %d below 1", n.Capacity)
	case n.MaxRho <= 0 || n.MaxRho >= 1:
		return fmt.Errorf("channel: queued max rho %v outside (0, 1)", n.MaxRho)
	case n.DelayScale <= 0:
		return fmt.Errorf("channel: non-positive queued delay scale %v", n.DelayScale)
	}
	return nil
}

// Queued layers M/M/1-style queueing delay over an inner model: with the
// channel at utilization ρ = InFlight/Capacity, a transfer waits an extra
// ρ/(1−ρ) service times before its own airtime (the V2X DRL exemplar's
// load model). The delay is a pure function of the live in-flight count,
// so the model consumes randomness only through its inner model.
type Queued struct {
	cfg   QueuedConfig
	inner Model
}

// NewQueued builds the model over inner; a nil inner queues over the
// analytic channel, a nil config takes every default.
func NewQueued(cfg *QueuedConfig, inner Model) *Queued {
	if inner == nil {
		inner = Analytic{}
	}
	return &Queued{cfg: cfg.normalized(), inner: inner}
}

// Name implements Model.
func (m *Queued) Name() string {
	if _, ok := m.inner.(Analytic); ok {
		return ModelQueued
	}
	return m.inner.Name() + "+" + ModelQueued
}

// Delay returns the queueing delay in seconds for one transfer whose
// unqueued service time is serviceS, at inFlight concurrent transfers.
func (m *Queued) Delay(serviceS float64, inFlight int) float64 {
	if inFlight <= 0 {
		return 0
	}
	rho := float64(inFlight) / float64(m.cfg.Capacity)
	if rho > m.cfg.MaxRho {
		rho = m.cfg.MaxRho
	}
	return m.cfg.DelayScale * serviceS * rho / (1 - rho)
}

// Outcome implements Model.
func (m *Queued) Outcome(link Link, rng *sim.RNG) Outcome {
	out := m.inner.Outcome(link, rng)
	kbps := out.KBps
	if kbps <= 0 {
		kbps = link.BaseKBps
	}
	service := out.LatencyS + float64(link.SizeBytes)/(kbps*1000)
	out.LatencyS += m.Delay(service, link.InFlight)
	return out
}
