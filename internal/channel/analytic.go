package channel

import "roadrunner/internal/sim"

// Analytic is the paper's flat transfer-time model lifted into the Model
// interface: nominal rate, nominal latency, no model loss, no randomness.
// The communication module never needs it — a nil Model selects the
// original analytic code path — but it anchors composition (Queued wraps it
// when no inner model is given) and lets tests prove the model path
// reproduces the legacy path byte for byte.
type Analytic struct{}

// Name implements Model.
func (Analytic) Name() string { return ModelAnalytic }

// Outcome implements Model: the nominal channel, untouched. The returned
// fields mirror Link's base parameters exactly, so the duration the comm
// layer derives is float-identical to ChannelParams.TransferSecondsAt.
func (Analytic) Outcome(link Link, _ *sim.RNG) Outcome {
	return Outcome{KBps: link.BaseKBps, LatencyS: link.BaseLatencyS}
}
