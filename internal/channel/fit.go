package channel

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// TableHeader is the version-stamped first line of a fitted table CSV.
const TableHeader = "# roadrunner-chantable-v1"

var tableColumns = []string{
	"kind", "dist_lo_m", "dist_hi_m", "size_lo", "size_hi",
	"load_lo", "load_hi", "kbps", "latency_s", "drop_prob", "n",
}

// Bin is one cell of a fitted indicator table: a half-open
// (kind, distance, size, load) box and the channel indicators measured
// inside it. Hi edges may be +Inf; a DistLo of -1 is the unknown-distance
// bin (links without positioned endpoints).
type Bin struct {
	Kind   Kind    `json:"kind"`
	DistLo float64 `json:"dist_lo_m"`
	DistHi float64 `json:"dist_hi_m"`
	SizeLo float64 `json:"size_lo"`
	SizeHi float64 `json:"size_hi"`
	LoadLo float64 `json:"load_lo"`
	LoadHi float64 `json:"load_hi"`
	// KBps and LatencyS are the fitted effective rate and latency floor;
	// a non-positive KBps means "no delivered samples — fall back to the
	// nominal channel rate".
	KBps     float64 `json:"kbps"`
	LatencyS float64 `json:"latency_s"`
	// DropProb is the observed channel-loss fraction in [0, 1].
	DropProb float64 `json:"drop_prob"`
	// N counts the channel-attributable samples the bin was fitted from.
	N int `json:"n"`
}

// contains reports whether the bin covers the given link coordinates.
func (b Bin) contains(distM float64, sizeBytes, load int) bool {
	if distM < 0 {
		distM = -1
	}
	return distM >= b.DistLo && distM < b.DistHi &&
		float64(sizeBytes) >= b.SizeLo && float64(sizeBytes) < b.SizeHi &&
		float64(load) >= b.LoadLo && float64(load) < b.LoadHi
}

// Table is a fitted indicator table: the replayable half of the oracle
// pipeline. Bins are kept in fit order (sorted by kind, then box origin).
type Table struct {
	Bins []Bin `json:"bins"`
}

// Lookup returns the first bin covering the coordinates, scanning in table
// order; ok is false when no bin matches (the oracle then falls back to
// the nominal channel).
func (t *Table) Lookup(kind Kind, distM float64, sizeBytes, load int) (Bin, bool) {
	for _, b := range t.Bins {
		if b.Kind == kind && b.contains(distM, sizeBytes, load) {
			return b, true
		}
	}
	return Bin{}, false
}

// Validate reports whether every bin is usable.
func (t *Table) Validate() error {
	if len(t.Bins) == 0 {
		return fmt.Errorf("channel: empty oracle table")
	}
	for i, b := range t.Bins {
		switch {
		case b.Kind != KindV2C && b.Kind != KindV2X && b.Kind != KindWired:
			return fmt.Errorf("channel: table bin %d: unknown kind %d", i, int(b.Kind))
		case math.IsNaN(b.DistLo) || b.DistLo < -1 || b.DistHi <= b.DistLo:
			return fmt.Errorf("channel: table bin %d: bad distance range [%v, %v)", i, b.DistLo, b.DistHi)
		case math.IsNaN(b.SizeLo) || b.SizeLo < 0 || b.SizeHi <= b.SizeLo:
			return fmt.Errorf("channel: table bin %d: bad size range [%v, %v)", i, b.SizeLo, b.SizeHi)
		case math.IsNaN(b.LoadLo) || b.LoadLo < 0 || b.LoadHi <= b.LoadLo:
			return fmt.Errorf("channel: table bin %d: bad load range [%v, %v)", i, b.LoadLo, b.LoadHi)
		case math.IsNaN(b.KBps) || math.IsInf(b.KBps, 0):
			return fmt.Errorf("channel: table bin %d: bad rate %v", i, b.KBps)
		case math.IsNaN(b.LatencyS) || b.LatencyS < 0 || math.IsInf(b.LatencyS, 0):
			return fmt.Errorf("channel: table bin %d: bad latency %v", i, b.LatencyS)
		case math.IsNaN(b.DropProb) || b.DropProb < 0 || b.DropProb > 1:
			return fmt.Errorf("channel: table bin %d: drop probability %v outside [0, 1]", i, b.DropProb)
		case b.N < 0:
			return fmt.Errorf("channel: table bin %d: negative sample count %d", i, b.N)
		}
	}
	return nil
}

// FitConfig sets the binning grid the fitter quantizes samples into. Each
// edge list partitions its axis into [0, e0), [e0, e1), …, [eLast, +Inf);
// unknown distances form their own [-1, 0) bin.
type FitConfig struct {
	// DistEdgesM partitions sender–receiver distance in meters.
	DistEdgesM []float64
	// SizeEdges partitions payload size in bytes.
	SizeEdges []float64
	// LoadEdges partitions the in-flight count at send time.
	LoadEdges []float64
	// MinSamples drops bins fitted from fewer channel-attributable
	// samples; 0 keeps every non-empty bin.
	MinSamples int
}

// DefaultFitConfig is a coarse grid suited to model-snapshot traffic.
func DefaultFitConfig() FitConfig {
	return FitConfig{
		DistEdgesM: []float64{50, 150, 300, 600},
		SizeEdges:  []float64{32768, 131072, 524288},
		LoadEdges:  []float64{1, 2, 4, 8},
	}
}

// binOf returns the half-open interval of edges containing v, with the
// implicit leading [0, e0) and trailing [eLast, +Inf) intervals.
func binOf(v float64, edges []float64) (lo, hi float64) {
	lo = 0
	for _, e := range edges {
		if v < e {
			return lo, e
		}
		lo = e
	}
	return lo, math.Inf(1)
}

// Fit bins the channel-attributable samples of a recorded trace and fits
// per-bin indicators: the latency floor (minimum delivered duration), the
// mean effective rate above that floor, and the observed loss fraction.
// Endpoint-attributable outcomes (off, range, killed, blackout, error) are
// excluded — they describe the fleet, not the channel. The result is
// deterministic in the sample order, which is itself deterministic under
// the reproducibility contract.
func Fit(samples []Sample, fc FitConfig) (*Table, error) {
	type key struct {
		kind                   Kind
		distLo, sizeLo, loadLo float64
	}
	type agg struct {
		bin       Bin
		delivered []Sample
		lost      int
	}
	groups := make(map[key]*agg)
	var order []key
	for _, s := range samples {
		var lost bool
		switch s.Outcome {
		case OutcomeDelivered:
		case OutcomeDropped, OutcomeChannel, OutcomeBurst:
			lost = true
		default:
			continue
		}
		distLo, distHi := -1.0, 0.0
		if s.DistanceM >= 0 {
			distLo, distHi = binOf(s.DistanceM, fc.DistEdgesM)
		}
		sizeLo, sizeHi := binOf(float64(s.SizeBytes), fc.SizeEdges)
		loadLo, loadHi := binOf(float64(s.Load), fc.LoadEdges)
		k := key{kind: s.Kind, distLo: distLo, sizeLo: sizeLo, loadLo: loadLo}
		g, ok := groups[k]
		if !ok {
			g = &agg{bin: Bin{
				Kind: s.Kind,
				DistLo: distLo, DistHi: distHi,
				SizeLo: sizeLo, SizeHi: sizeHi,
				LoadLo: loadLo, LoadHi: loadHi,
			}}
			groups[k] = g
			order = append(order, k)
		}
		if lost {
			g.lost++
		} else {
			g.delivered = append(g.delivered, s)
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("channel: no channel-attributable samples to fit")
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.distLo != b.distLo {
			return a.distLo < b.distLo
		}
		if a.sizeLo != b.sizeLo {
			return a.sizeLo < b.sizeLo
		}
		return a.loadLo < b.loadLo
	})
	t := &Table{}
	for _, k := range order {
		g := groups[k]
		b := g.bin
		b.N = len(g.delivered) + g.lost
		if b.N < fc.MinSamples {
			continue
		}
		b.DropProb = float64(g.lost) / float64(b.N)
		if len(g.delivered) > 0 {
			lat := g.delivered[0].DurationS
			for _, s := range g.delivered[1:] {
				if s.DurationS < lat {
					lat = s.DurationS
				}
			}
			b.LatencyS = lat
			// Mean effective rate over the samples with airtime above the
			// latency floor; a bin whose every delivery sat at the floor
			// carries the end-to-end rate instead.
			var sum float64
			var n int
			for _, s := range g.delivered {
				if s.DurationS > lat {
					sum += float64(s.SizeBytes) / (1000 * (s.DurationS - lat))
					n++
				}
			}
			if n > 0 {
				b.KBps = sum / float64(n)
			} else if lat > 0 {
				b.LatencyS = 0
				for _, s := range g.delivered {
					sum += float64(s.SizeBytes) / (1000 * s.DurationS)
				}
				b.KBps = sum / float64(len(g.delivered))
			}
		}
		t.Bins = append(t.Bins, b)
	}
	if len(t.Bins) == 0 {
		return nil, fmt.Errorf("channel: every bin fell below the %d-sample floor", fc.MinSamples)
	}
	return t, t.Validate()
}

// WriteTable writes the canonical fitted-table CSV.
func WriteTable(w io.Writer, t *Table) error {
	if _, err := fmt.Fprintln(w, TableHeader); err != nil {
		return fmt.Errorf("channel: write table: %w", err)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(tableColumns); err != nil {
		return fmt.Errorf("channel: write table: %w", err)
	}
	for _, b := range t.Bins {
		row := []string{
			b.Kind.String(),
			formatFloat(b.DistLo), formatFloat(b.DistHi),
			formatFloat(b.SizeLo), formatFloat(b.SizeHi),
			formatFloat(b.LoadLo), formatFloat(b.LoadHi),
			formatFloat(b.KBps), formatFloat(b.LatencyS), formatFloat(b.DropProb),
			strconv.Itoa(b.N),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("channel: write table: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("channel: write table: %w", err)
	}
	return nil
}

// ParseTable reads a fitted-table CSV, validating every bin.
func ParseTable(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("channel: table header: %w", err)
	}
	if strings.TrimRight(header, "\r\n") != TableHeader {
		return nil, fmt.Errorf("channel: not a channel table (missing %q header)", TableHeader)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = len(tableColumns)
	cols, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("channel: table columns: %w", err)
	}
	for i, want := range tableColumns {
		if cols[i] != want {
			return nil, fmt.Errorf("channel: table column %d is %q, want %q", i, cols[i], want)
		}
	}
	t := &Table{}
	for line := 3; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("channel: table line %d: %w", line, err)
		}
		b, err := parseBin(row)
		if err != nil {
			return nil, fmt.Errorf("channel: table line %d: %w", line, err)
		}
		t.Bins = append(t.Bins, b)
	}
	return t, t.Validate()
}

func parseBin(row []string) (Bin, error) {
	var b Bin
	kind, err := ParseKind(row[0])
	if err != nil {
		return b, err
	}
	b.Kind = kind
	fields := []*float64{
		&b.DistLo, &b.DistHi, &b.SizeLo, &b.SizeHi,
		&b.LoadLo, &b.LoadHi, &b.KBps, &b.LatencyS, &b.DropProb,
	}
	for i, dst := range fields {
		v, err := strconv.ParseFloat(row[i+1], 64)
		if err != nil {
			return b, fmt.Errorf("bad %s %q", tableColumns[i+1], row[i+1])
		}
		*dst = v
	}
	n, err := strconv.Atoi(row[10])
	if err != nil {
		return b, fmt.Errorf("bad n %q", row[10])
	}
	b.N = n
	return b, nil
}
