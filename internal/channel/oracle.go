package channel

import (
	"fmt"
	"os"

	"roadrunner/internal/sim"
)

// OracleConfig selects the fitted indicator table the oracle model
// replays: either inline bins (embedded in the experiment config, the
// reproducible form) or a path to a fitted-table CSV written by
// cmd/chanfit.
type OracleConfig struct {
	// TablePath is a fitted-table CSV (see TableHeader). Ignored when Table
	// is non-empty.
	TablePath string `json:"table_path,omitempty"`
	// Table is the inline fitted table; takes precedence over TablePath.
	Table []Bin `json:"table,omitempty"`
}

// validate reports whether the configuration names a table. Inline bins
// are validated here; a path is validated when the file is read at
// model-construction time.
func (c *OracleConfig) validate() error {
	if c == nil {
		return fmt.Errorf("channel: oracle model needs an oracle config (table path or inline table)")
	}
	if len(c.Table) > 0 {
		t := Table{Bins: c.Table}
		return t.Validate()
	}
	if c.TablePath == "" {
		return fmt.Errorf("channel: oracle config needs a table path or an inline table")
	}
	return nil
}

// Oracle is the data-driven model: the replay half of the DRIVE-style
// pipeline. A recorded channel trace (Log/WriteTrace) is fitted offline
// into a binned indicator table (Fit/cmd/chanfit); Oracle looks each
// transfer up in that table and replays the fitted rate, latency floor,
// and loss fraction. Transfers falling outside every bin — or into a bin
// with no delivered samples — fall back to the nominal channel, so a
// sparse table degrades toward the analytic model instead of failing.
type Oracle struct {
	table *Table
}

// NewOracle builds the model from inline bins or the table file.
func NewOracle(cfg *OracleConfig) (*Oracle, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Table) > 0 {
		t := &Table{Bins: cfg.Table}
		return &Oracle{table: t}, nil
	}
	f, err := os.Open(cfg.TablePath)
	if err != nil {
		return nil, fmt.Errorf("channel: oracle table: %w", err)
	}
	defer f.Close()
	t, err := ParseTable(f)
	if err != nil {
		return nil, fmt.Errorf("channel: oracle table %s: %w", cfg.TablePath, err)
	}
	return &Oracle{table: t}, nil
}

// Table exposes the replayed table (for tests and tooling).
func (m *Oracle) Table() *Table { return m.table }

// Name implements Model.
func (m *Oracle) Name() string { return ModelOracle }

// Outcome implements Model. The lookup is deterministic; the only
// randomness an oracle run consumes is the delivery-time DropProb sample
// the communication module draws.
func (m *Oracle) Outcome(link Link, _ *sim.RNG) Outcome {
	b, ok := m.table.Lookup(link.Kind, link.DistanceM, link.SizeBytes, link.InFlight)
	if !ok || b.KBps <= 0 {
		return Outcome{KBps: link.BaseKBps, LatencyS: link.BaseLatencyS}
	}
	return Outcome{KBps: b.KBps, LatencyS: b.LatencyS, DropProb: b.DropProb}
}
