package comm

import (
	"errors"
	"testing"

	"roadrunner/internal/sim"
)

// mustAfter schedules fn on the engine, failing the test on scheduling errors.
func mustAfter(t *testing.T, e *sim.Engine, d sim.Duration, fn func()) {
	t.Helper()
	if _, err := e.After(d, fn); err != nil {
		t.Fatalf("After(%v): %v", float64(d), err)
	}
}

// TestStatsRejectedSendsLeaveNoTrace asserts that a Send the network refuses
// to start perturbs no counter: accounting begins only once a transfer is
// actually in the air, so the conservation invariant
// sent == delivered + failed never has a "rejected" leak term.
func TestStatsRejectedSendsLeaveNoTrace(t *testing.T) {
	cases := []struct {
		name string
		send func(h *harness, v, s sim.AgentID) error
	}{
		{"zero size", func(h *harness, v, s sim.AgentID) error {
			_, err := h.net.Send(v, s, KindV2C, 0, nil)
			return err
		}},
		{"negative size", func(h *harness, v, s sim.AgentID) error {
			_, err := h.net.Send(v, s, KindV2C, -5, nil)
			return err
		}},
		{"self send", func(h *harness, v, _ sim.AgentID) error {
			_, err := h.net.Send(v, v, KindV2C, 100, nil)
			return err
		}},
		{"unknown kind", func(h *harness, v, s sim.AgentID) error {
			_, err := h.net.Send(v, s, Kind(99), 100, nil)
			return err
		}},
		{"receiver off", func(h *harness, v, s sim.AgentID) error {
			if err := h.registry.SetPower(s, false); err != nil {
				return err
			}
			_, err := h.net.Send(v, s, KindV2C, 100, nil)
			return err
		}},
		{"blocked by conditions", func(h *harness, v, s sim.AgentID) error {
			h.net.SetConditions(func(sim.Time, Kind, sim.AgentID, sim.AgentID) Conditions {
				return Conditions{Blocked: true}
			})
			_, err := h.net.Send(v, s, KindV2C, 100, nil)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, noDropParams())
			v := h.addOn(t, sim.KindVehicle)
			s := h.addOn(t, sim.KindCloudServer)
			if err := tc.send(h, v, s); err == nil {
				t.Fatal("Send unexpectedly accepted")
			}
			if h.net.InFlight() != 0 {
				t.Fatalf("InFlight = %d after rejected send", h.net.InFlight())
			}
			for _, k := range Kinds() {
				if got := h.net.StatsFor(k); got != (Stats{}) {
					t.Fatalf("%v stats = %+v after rejected send, want zero", k, got)
				}
			}
		})
	}
}

// TestStatsFailureAfterDeliveryScheduled drives one message through each way
// a transfer can die between Send and delivery, and asserts the accounting
// contract for every path: the message counts as sent and attempted at Send
// time, as failed (never delivered) at death time, and its bytes never reach
// BytesDelivered.
func TestStatsFailureAfterDeliveryScheduled(t *testing.T) {
	const size = 200_000 // V2C transfer time 0.15s with default params
	cases := []struct {
		name       string
		midFlight  func(h *harness, v, s sim.AgentID)
		wantReason error
	}{
		{"receiver shuts off mid-flight", func(h *harness, v, s sim.AgentID) {
			mustAfter(t, h.engine, 0.01, func() {
				if err := h.registry.SetPower(s, false); err != nil {
					t.Fatalf("SetPower: %v", err)
				}
			})
		}, ErrReceiverOff},
		{"sender shuts off mid-flight", func(h *harness, v, s sim.AgentID) {
			mustAfter(t, h.engine, 0.01, func() {
				if err := h.registry.SetPower(v, false); err != nil {
					t.Fatalf("SetPower: %v", err)
				}
			})
		}, ErrSenderOff},
		{"blackout opens mid-flight", func(h *harness, v, s sim.AgentID) {
			h.net.SetConditions(func(now sim.Time, _ Kind, _, _ sim.AgentID) Conditions {
				return Conditions{Blocked: now >= 0.01}
			})
		}, ErrBlackout},
		{"burst window opens mid-flight", func(h *harness, v, s sim.AgentID) {
			h.net.SetConditions(func(now sim.Time, _ Kind, _, _ sim.AgentID) Conditions {
				if now >= 0.01 {
					return Conditions{ExtraDropProb: 1}
				}
				return Conditions{}
			})
		}, ErrBurstDropped},
		{"link killed mid-flight", func(h *harness, v, s sim.AgentID) {
			mustAfter(t, h.engine, 0.01, func() {
				if n := h.net.FailInFlight(nil, ErrDropped); n != 1 {
					t.Fatalf("FailInFlight aborted %d transfers, want 1", n)
				}
			})
		}, ErrDropped},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, noDropParams())
			v := h.addOn(t, sim.KindVehicle)
			s := h.addOn(t, sim.KindCloudServer)
			if _, err := h.net.Send(v, s, KindV2C, size, "model"); err != nil {
				t.Fatalf("Send: %v", err)
			}
			tc.midFlight(h, v, s)
			if err := h.engine.RunAll(); err != nil {
				t.Fatalf("RunAll: %v", err)
			}
			if len(h.delivered) != 0 {
				t.Fatalf("delivered %d messages, want 0", len(h.delivered))
			}
			if len(h.failed) != 1 {
				t.Fatalf("failed %d messages, want 1", len(h.failed))
			}
			if !errors.Is(h.reasons[0], tc.wantReason) {
				t.Fatalf("failure reason = %v, want %v", h.reasons[0], tc.wantReason)
			}
			got := h.net.StatsFor(KindV2C)
			want := Stats{MessagesSent: 1, MessagesFailed: 1, BytesAttempted: size}
			if got != want {
				t.Fatalf("stats = %+v, want %+v", got, want)
			}
			if h.net.InFlight() != 0 {
				t.Fatalf("InFlight = %d after failure", h.net.InFlight())
			}
		})
	}
}

// TestStatsConservationMixedTraffic interleaves deliveries, a mid-flight
// shutoff, and rejected sends on one channel kind and checks the books
// balance: sent == delivered + failed per kind, delivered bytes count only
// messages that actually arrived, and other kinds stay untouched.
func TestStatsConservationMixedTraffic(t *testing.T) {
	h := newHarness(t, noDropParams())
	v1 := h.addOn(t, sim.KindVehicle)
	v2 := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)

	if _, err := h.net.Send(v1, s, KindV2C, 1000, nil); err != nil {
		t.Fatalf("Send 1: %v", err)
	}
	if _, err := h.net.Send(v2, s, KindV2C, 3000, nil); err != nil {
		t.Fatalf("Send 2: %v", err)
	}
	// v2 shuts off before its transfer lands; only v1's bytes arrive.
	mustAfter(t, h.engine, 0.001, func() {
		if err := h.registry.SetPower(v2, false); err != nil {
			t.Fatalf("SetPower: %v", err)
		}
	})
	// A rejected send mid-run must not disturb the books.
	mustAfter(t, h.engine, 0.002, func() {
		if _, err := h.net.Send(v1, s, KindV2C, 0, nil); err == nil {
			t.Error("zero-size Send unexpectedly accepted")
		}
	})
	if err := h.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}

	got := h.net.StatsFor(KindV2C)
	want := Stats{
		MessagesSent:      2,
		MessagesDelivered: 1,
		MessagesFailed:    1,
		BytesAttempted:    4000,
		BytesDelivered:    1000,
	}
	if got != want {
		t.Fatalf("v2c stats = %+v, want %+v", got, want)
	}
	for _, k := range []Kind{KindV2X, KindWired} {
		if st := h.net.StatsFor(k); st != (Stats{}) {
			t.Fatalf("%v stats = %+v, want zero", k, st)
		}
	}
}
