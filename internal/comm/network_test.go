package comm

import (
	"errors"
	"math"
	"testing"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// harness bundles a network with controllable positions.
type harness struct {
	engine   *sim.Engine
	registry *sim.Registry
	net      *Network
	pos      map[sim.AgentID]roadnet.Point

	delivered []*Message
	failed    []*Message
	reasons   []error
}

func newHarness(t *testing.T, params Params) *harness {
	t.Helper()
	h := &harness{
		engine: sim.NewEngine(),
		pos:    map[sim.AgentID]roadnet.Point{},
	}
	h.registry = sim.NewRegistry(h.engine)
	position := func(id sim.AgentID) (roadnet.Point, bool) {
		p, ok := h.pos[id]
		return p, ok
	}
	net, err := NewNetwork(h.engine, h.registry, params, position, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	net.OnDeliver(func(m *Message) { h.delivered = append(h.delivered, m) })
	net.OnFail(func(m *Message, reason error) {
		h.failed = append(h.failed, m)
		h.reasons = append(h.reasons, reason)
	})
	h.net = net
	return h
}

// noDropParams returns deterministic channel parameters.
func noDropParams() Params {
	p := DefaultParams()
	p.V2C.DropProb = 0
	p.V2X.DropProb = 0
	p.Wired.DropProb = 0
	return p
}

func (h *harness) addOn(t *testing.T, kind sim.AgentKind) sim.AgentID {
	t.Helper()
	a := h.registry.Add(kind)
	if err := h.registry.SetPower(a.ID, true); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	return a.ID
}

func TestSendDeliversAfterModelledDuration(t *testing.T) {
	h := newHarness(t, noDropParams())
	v := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)

	const size = 200_000 // bytes
	if _, err := h.net.Send(v, s, KindV2C, size, "model"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if h.net.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", h.net.InFlight())
	}
	if err := h.engine.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(h.delivered) != 1 {
		t.Fatalf("delivered %d messages, want 1 (failures: %v)", len(h.delivered), h.reasons)
	}
	m := h.delivered[0]
	wantDuration := noDropParams().V2C.TransferSeconds(size) // 0.05 + 200/2000 = 0.15
	if math.Abs(float64(m.DeliverAt.Sub(m.SentAt))-wantDuration) > 1e-9 {
		t.Fatalf("transfer took %v, want %v", m.DeliverAt.Sub(m.SentAt), wantDuration)
	}
	if m.Payload != "model" {
		t.Fatalf("payload = %v", m.Payload)
	}
	if h.net.InFlight() != 0 {
		t.Fatalf("InFlight after delivery = %d", h.net.InFlight())
	}
}

func TestSendRejectsOffEndpoints(t *testing.T) {
	h := newHarness(t, noDropParams())
	v := h.registry.Add(sim.KindVehicle).ID // off
	s := h.addOn(t, sim.KindCloudServer)

	if _, err := h.net.Send(v, s, KindV2C, 100, nil); !errors.Is(err, ErrSenderOff) {
		t.Fatalf("err = %v, want ErrSenderOff", err)
	}
	if _, err := h.net.Send(s, v, KindV2C, 100, nil); !errors.Is(err, ErrReceiverOff) {
		t.Fatalf("err = %v, want ErrReceiverOff", err)
	}
}

func TestSendValidatesArguments(t *testing.T) {
	h := newHarness(t, noDropParams())
	v := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)
	if _, err := h.net.Send(v, s, KindV2C, 0, nil); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := h.net.Send(v, v, KindV2C, 10, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if _, err := h.net.Send(v, s, Kind(99), 10, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := h.net.Send(v, sim.AgentID(42), KindV2C, 10, nil); err == nil {
		t.Fatal("unknown receiver accepted")
	}
}

func TestV2XRequiresRange(t *testing.T) {
	h := newHarness(t, noDropParams())
	a := h.addOn(t, sim.KindVehicle)
	b := h.addOn(t, sim.KindVehicle)
	h.pos[a] = roadnet.Point{X: 0}
	h.pos[b] = roadnet.Point{X: 500} // beyond 200 m

	if _, err := h.net.Send(a, b, KindV2X, 100, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	h.pos[b] = roadnet.Point{X: 150}
	if _, err := h.net.Send(a, b, KindV2X, 100, nil); err != nil {
		t.Fatalf("in-range send failed: %v", err)
	}
}

func TestV2XRequiresPositions(t *testing.T) {
	h := newHarness(t, noDropParams())
	a := h.addOn(t, sim.KindVehicle)
	srv := h.addOn(t, sim.KindCloudServer) // no position entry
	h.pos[a] = roadnet.Point{}
	if _, err := h.net.Send(a, srv, KindV2X, 100, nil); !errors.Is(err, ErrNoPosition) {
		t.Fatalf("err = %v, want ErrNoPosition", err)
	}
}

func TestV2XFailsWhenLeavingRangeMidTransfer(t *testing.T) {
	h := newHarness(t, noDropParams())
	a := h.addOn(t, sim.KindVehicle)
	b := h.addOn(t, sim.KindVehicle)
	h.pos[a] = roadnet.Point{X: 0}
	h.pos[b] = roadnet.Point{X: 100}

	if _, err := h.net.Send(a, b, KindV2X, 1_000_000, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Move b out of range before the delivery completes.
	if _, err := h.engine.Schedule(0.1, func() { h.pos[b] = roadnet.Point{X: 5000} }); err != nil {
		t.Fatal(err)
	}
	if err := h.engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(h.delivered) != 0 || len(h.failed) != 1 {
		t.Fatalf("delivered=%d failed=%d, want 0/1", len(h.delivered), len(h.failed))
	}
	if !errors.Is(h.reasons[0], ErrOutOfRange) {
		t.Fatalf("failure reason = %v, want ErrOutOfRange", h.reasons[0])
	}
}

func TestPowerOffAbortsInFlightTransfers(t *testing.T) {
	h := newHarness(t, noDropParams())
	v := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)

	if _, err := h.net.Send(v, s, KindV2C, 10_000_000, nil); err != nil { // ~5 s transfer
		t.Fatal(err)
	}
	if _, err := h.net.Send(s, v, KindV2C, 10_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.engine.Schedule(1, func() {
		if err := h.registry.SetPower(v, false); err != nil {
			t.Errorf("SetPower: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(h.delivered) != 0 {
		t.Fatalf("delivered %d, want 0", len(h.delivered))
	}
	if len(h.failed) != 2 {
		t.Fatalf("failed %d, want 2", len(h.failed))
	}
	sawSender, sawReceiver := false, false
	for _, r := range h.reasons {
		if errors.Is(r, ErrSenderOff) {
			sawSender = true
		}
		if errors.Is(r, ErrReceiverOff) {
			sawReceiver = true
		}
	}
	if !sawSender || !sawReceiver {
		t.Fatalf("reasons = %v, want one ErrSenderOff and one ErrReceiverOff", h.reasons)
	}
	if h.net.InFlight() != 0 {
		t.Fatalf("InFlight = %d after abort", h.net.InFlight())
	}
}

func TestPowerOffUnrelatedAgentDoesNotAbort(t *testing.T) {
	h := newHarness(t, noDropParams())
	v := h.addOn(t, sim.KindVehicle)
	other := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)

	if _, err := h.net.Send(v, s, KindV2C, 1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.engine.Schedule(0.1, func() {
		if err := h.registry.SetPower(other, false); err != nil {
			t.Errorf("SetPower: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(h.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (failures: %v)", len(h.delivered), h.reasons)
	}
}

func TestStochasticDrops(t *testing.T) {
	p := noDropParams()
	p.V2C.DropProb = 0.5
	h := newHarness(t, p)
	v := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)

	const total = 400
	sendNext := func() {}
	count := 0
	sendNext = func() {
		if count >= total {
			return
		}
		count++
		if _, err := h.net.Send(v, s, KindV2C, 1000, nil); err != nil {
			t.Errorf("Send: %v", err)
		}
		if _, err := h.engine.After(1, sendNext); err != nil {
			t.Errorf("After: %v", err)
		}
	}
	if _, err := h.engine.Schedule(0, sendNext); err != nil {
		t.Fatal(err)
	}
	if err := h.engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	frac := float64(len(h.failed)) / total
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction = %v, want ~0.5", frac)
	}
	for _, r := range h.reasons {
		if !errors.Is(r, ErrDropped) {
			t.Fatalf("unexpected failure reason %v", r)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newHarness(t, noDropParams())
	v := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)

	if _, err := h.net.Send(v, s, KindV2C, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.net.Send(s, v, KindV2C, 2000, nil); err != nil {
		t.Fatal(err)
	}
	// One failing transfer: vehicle shuts off mid-flight.
	if _, err := h.net.Send(v, s, KindV2C, 50_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.engine.Schedule(2, func() {
		if err := h.registry.SetPower(v, false); err != nil {
			t.Errorf("SetPower: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := h.net.StatsFor(KindV2C)
	if st.MessagesSent != 3 {
		t.Fatalf("MessagesSent = %d", st.MessagesSent)
	}
	if st.MessagesDelivered != 2 {
		t.Fatalf("MessagesDelivered = %d", st.MessagesDelivered)
	}
	if st.MessagesFailed != 1 {
		t.Fatalf("MessagesFailed = %d", st.MessagesFailed)
	}
	if st.BytesAttempted != 1000+2000+50_000_000 {
		t.Fatalf("BytesAttempted = %d", st.BytesAttempted)
	}
	if st.BytesDelivered != 3000 {
		t.Fatalf("BytesDelivered = %d", st.BytesDelivered)
	}
	if zero := h.net.StatsFor(KindV2X); zero != (Stats{}) {
		t.Fatalf("V2X stats = %+v, want zero", zero)
	}
	if unknown := h.net.StatsFor(Kind(99)); unknown != (Stats{}) {
		t.Fatalf("unknown-kind stats = %+v, want zero", unknown)
	}
}

func TestReachable(t *testing.T) {
	h := newHarness(t, noDropParams())
	a := h.addOn(t, sim.KindVehicle)
	b := h.addOn(t, sim.KindVehicle)
	s := h.addOn(t, sim.KindCloudServer)
	off := h.registry.Add(sim.KindVehicle).ID
	h.pos[a] = roadnet.Point{X: 0}
	h.pos[b] = roadnet.Point{X: 100}

	if !h.net.Reachable(a, s, KindV2C) {
		t.Fatal("on vehicle cannot reach server over V2C")
	}
	if h.net.Reachable(a, off, KindV2C) {
		t.Fatal("off vehicle reachable")
	}
	if !h.net.Reachable(a, b, KindV2X) {
		t.Fatal("in-range pair not reachable over V2X")
	}
	h.pos[b] = roadnet.Point{X: 9999}
	if h.net.Reachable(a, b, KindV2X) {
		t.Fatal("out-of-range pair reachable over V2X")
	}
	if h.net.Reachable(a, a, KindV2C) {
		t.Fatal("self reachable")
	}
}

func TestWiredChannel(t *testing.T) {
	h := newHarness(t, noDropParams())
	rsu := h.addOn(t, sim.KindRSU)
	s := h.addOn(t, sim.KindCloudServer)
	if _, err := h.net.Send(rsu, s, KindWired, 1_000_000, nil); err != nil {
		t.Fatalf("wired send: %v", err)
	}
	if err := h.engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(h.delivered) != 1 {
		t.Fatalf("wired delivery missing (failures %v)", h.reasons)
	}
	// 100 MB/s + 5 ms latency for 1 MB -> 15 ms.
	d := h.delivered[0]
	if math.Abs(float64(d.DeliverAt.Sub(d.SentAt))-0.015) > 1e-9 {
		t.Fatalf("wired transfer took %v, want 0.015", d.DeliverAt.Sub(d.SentAt))
	}
}

func TestChannelParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []ChannelParams{
		{KBps: 0},
		{KBps: 100, LatencyS: -1},
		{KBps: 100, DropProb: 1},
		{KBps: 100, DropProb: -0.1},
		{KBps: 100, RangeM: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad channel params %d validated", i)
		}
	}
	p := DefaultParams()
	p.V2X.RangeM = 0
	if err := p.Validate(); err == nil {
		t.Fatal("params with zero V2X range validated")
	}
}

func TestTransferSeconds(t *testing.T) {
	p := ChannelParams{KBps: 1000, LatencyS: 0.1}
	if got := p.TransferSeconds(500_000); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("TransferSeconds = %v, want 0.6", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindV2C: "v2c", KindV2X: "v2x", KindWired: "wired"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(0).String() != "unknown(0)" {
		t.Errorf("Kind(0).String() = %q", Kind(0).String())
	}
}

func TestNewNetworkValidation(t *testing.T) {
	engine := sim.NewEngine()
	registry := sim.NewRegistry(engine)
	pos := func(sim.AgentID) (roadnet.Point, bool) { return roadnet.Point{}, true }
	rng := sim.NewRNG(1)
	if _, err := NewNetwork(nil, registry, DefaultParams(), pos, rng); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewNetwork(engine, nil, DefaultParams(), pos, rng); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := NewNetwork(engine, registry, Params{}, pos, rng); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewNetwork(engine, registry, DefaultParams(), nil, rng); err == nil {
		t.Fatal("nil position func accepted")
	}
	if _, err := NewNetwork(engine, registry, DefaultParams(), pos, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
