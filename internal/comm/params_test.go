package comm

import (
	"math"
	"testing"

	"roadrunner/internal/channel"
)

// TestTransferSecondsAtClamping pins the documented clamp: only rate
// factors strictly inside (0, 1) degrade the channel; every other value —
// zero, negative, exactly 1, above 1, NaN, and infinities — means nominal
// and must return exactly TransferSeconds. The NaN case is the regression
// guard: it used to fall through both clamp branches and produce a NaN
// duration.
func TestTransferSecondsAtClamping(t *testing.T) {
	p := ChannelParams{KBps: 2000, LatencyS: 0.05}
	const size = 1 << 20
	nominal := p.TransferSeconds(size)
	if math.IsNaN(nominal) || nominal <= p.LatencyS {
		t.Fatalf("nominal duration %v is not a sane baseline", nominal)
	}
	for _, factor := range []float64{0, -0.5, -1e308, 1, 1.0000001, 42, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := p.TransferSecondsAt(size, factor); got != nominal {
			t.Errorf("factor %v: duration %v, want nominal %v", factor, got, nominal)
		}
	}
	// Factors inside (0, 1) stretch the transfer by exactly 1/factor on the
	// bandwidth term.
	for _, factor := range []float64{0.5, 0.25, 1e-9, math.Nextafter(1, 0), math.Nextafter(0, 1)} {
		got := p.TransferSecondsAt(size, factor)
		want := p.LatencyS + float64(size)/(p.KBps*1000*factor)
		if got != want {
			t.Errorf("factor %v: duration %v, want %v", factor, got, want)
		}
		if math.IsNaN(got) || got < nominal {
			t.Errorf("factor %v: degraded duration %v below nominal %v", factor, got, nominal)
		}
	}
}

// TestKindAliasing guards the comm.Kind = channel.Kind alias: the constants
// must coincide and Kinds must enumerate them in channel order.
func TestKindAliasing(t *testing.T) {
	if KindV2C != channel.KindV2C || KindV2X != channel.KindV2X || KindWired != channel.KindWired {
		t.Fatal("comm kind constants diverge from channel kind constants")
	}
	ks := Kinds()
	if len(ks) != 3 || ks[0] != KindV2C || ks[1] != KindV2X || ks[2] != KindWired {
		t.Fatalf("Kinds() = %v", ks)
	}
}

// TestParamsValidateChannel asserts Params.Validate covers the embedded
// channel-model config.
func TestParamsValidateChannel(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	p.Channel = &channel.Config{Model: "smoke-signals"}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown channel model")
	}
	p.Channel = &channel.Config{Model: channel.ModelRadio}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate rejected the default radio model: %v", err)
	}
}
