// Package comm is Roadrunner's communication module (paper §4): it models
// the transmission of data between agents per channel-type properties,
// decides whether communication is possible given agent state and position,
// lets transfers fail at any time (including mid-flight when a vehicle
// shuts off), and keeps track of transmitted data volumes as a first-class
// metric.
//
// Two channel families are modelled, following the paper's §3 taxonomy:
//
//   - V2C — long-range metered cellular between vehicles and the cloud
//     server ("communication speeds ... range from 1000 to more than 10000
//     KB/s in ideal conditions"); reachable from anywhere while on, modulo
//     a coverage/drop probability.
//   - V2X — short-range (IEEE 802.11p / C-V2X) between vehicles and between
//     vehicles and RSUs; only possible within a line-of-sight range
//     ("can exceed 1000 m, although this range is reduced in the presence
//     of obstacles" — range is a parameter, 200 m in the evaluation).
//
// A third kind, Wired, covers the RSU-to-cloud backhaul of Figure 1.
package comm

import (
	"errors"
	"fmt"

	"roadrunner/internal/channel"
	"roadrunner/internal/sim"
)

// Kind identifies a communication channel family. It is an alias for
// channel.Kind — the type lives at the bottom of the comm stack so channel
// models can switch on it without importing this package — and the rest of
// the framework keeps using comm.Kind unchanged.
type Kind = channel.Kind

const (
	// KindV2C is long-range cellular vehicle-to-cloud.
	KindV2C = channel.KindV2C
	// KindV2X is short-range vehicle-to-anything (V2V and vehicle-RSU).
	KindV2X = channel.KindV2X
	// KindWired is the stationary RSU-to-cloud backhaul.
	KindWired = channel.KindWired
)

// Kinds lists all channel kinds, for metric iteration.
func Kinds() []Kind { return channel.AllKinds() }

// ChannelParams models one channel family's physical properties.
type ChannelParams struct {
	// KBps is the sustained throughput in kilobytes per second.
	KBps float64 `json:"kbps"`
	// LatencyS is the fixed per-message latency in seconds.
	LatencyS float64 `json:"latency_s"`
	// DropProb is the probability that a transfer fails in flight for
	// channel reasons (coverage holes, interference), sampled per message.
	DropProb float64 `json:"drop_prob"`
	// RangeM limits the sender-receiver distance in meters; zero means
	// unlimited (V2C, wired).
	RangeM float64 `json:"range_m,omitempty"`
}

// Validate reports whether the parameters are usable.
func (p ChannelParams) Validate() error {
	switch {
	case p.KBps <= 0:
		return fmt.Errorf("comm: non-positive throughput %v KB/s", p.KBps)
	case p.LatencyS < 0:
		return fmt.Errorf("comm: negative latency %v", p.LatencyS)
	case p.DropProb < 0 || p.DropProb >= 1:
		return fmt.Errorf("comm: drop probability %v outside [0,1)", p.DropProb)
	case p.RangeM < 0:
		return fmt.Errorf("comm: negative range %v", p.RangeM)
	default:
		return nil
	}
}

// TransferSeconds returns the modelled duration of a transfer of size bytes.
func (p ChannelParams) TransferSeconds(sizeBytes int) float64 {
	return p.LatencyS + float64(sizeBytes)/(p.KBps*1000)
}

// TransferSecondsAt is TransferSeconds under a degraded effective
// throughput: rateFactor scales the channel's bandwidth (latency is
// unaffected). The clamp is explicit and total: only factors strictly
// inside (0, 1) degrade the channel; zero, negative, >= 1, and NaN factors
// all mean "nominal" and return exactly TransferSeconds. (A NaN previously
// slipped through the degraded branch and produced a NaN duration that
// poisoned the event queue; the positive comparison form rejects it.)
func (p ChannelParams) TransferSecondsAt(sizeBytes int, rateFactor float64) float64 {
	if !(rateFactor > 0 && rateFactor < 1) {
		return p.TransferSeconds(sizeBytes)
	}
	return p.LatencyS + float64(sizeBytes)/(p.KBps*1000*rateFactor)
}

// Params bundles the per-kind channel parameters of a VCPS.
type Params struct {
	V2C   ChannelParams `json:"v2c"`
	V2X   ChannelParams `json:"v2x"`
	Wired ChannelParams `json:"wired"`
	// Channel selects a radio channel model layered over the nominal
	// per-kind parameters (see internal/channel). nil — and therefore
	// absent from the canonical JSON, keeping pre-model configs and their
	// campaign run keys byte-identical — means the original analytic path.
	Channel *channel.Config `json:"channel,omitempty"`
}

// DefaultParams models a 4G/LTE deployment with 200 m urban V2X range —
// the paper's evaluation setting ("V2X range is set to 200 m as an average
// for urban driving").
func DefaultParams() Params {
	return Params{
		V2C:   ChannelParams{KBps: 2000, LatencyS: 0.05, DropProb: 0.01},
		V2X:   ChannelParams{KBps: 3000, LatencyS: 0.02, DropProb: 0.01, RangeM: 200},
		Wired: ChannelParams{KBps: 100000, LatencyS: 0.005},
	}
}

// Validate reports whether all channels are usable.
func (p Params) Validate() error {
	if err := p.V2C.Validate(); err != nil {
		return fmt.Errorf("v2c: %w", err)
	}
	if err := p.V2X.Validate(); err != nil {
		return fmt.Errorf("v2x: %w", err)
	}
	if p.V2X.RangeM <= 0 {
		return errors.New("comm: v2x requires a positive range")
	}
	if err := p.Wired.Validate(); err != nil {
		return fmt.Errorf("wired: %w", err)
	}
	if err := p.Channel.Validate(); err != nil {
		return err
	}
	return nil
}

// ByKind returns the parameters for the given kind.
func (p Params) ByKind(k Kind) (ChannelParams, error) {
	switch k {
	case KindV2C:
		return p.V2C, nil
	case KindV2X:
		return p.V2X, nil
	case KindWired:
		return p.Wired, nil
	default:
		return ChannelParams{}, fmt.Errorf("comm: unknown channel kind %d", int(k))
	}
}

// Conditions describes fault-layer adjustments to one link at one instant.
// The zero value means nominal conditions. A fault subsystem (see
// internal/faults) supplies them through Network.SetConditions; the network
// itself never invents conditions, keeping the flat channel model of
// ChannelParams byte-identical when no hook is installed.
type Conditions struct {
	// Blocked hard-fails the transfer: rejected at send time, failed with
	// ErrBlackout at delivery time. Models coverage blackouts.
	Blocked bool
	// ExtraDropProb is an additional in-flight loss probability, sampled
	// independently of (and after) the channel's base DropProb. Models
	// time-correlated burst loss.
	ExtraDropProb float64
	// RateFactor scales the channel's effective bandwidth at send time;
	// values in (0, 1) stretch the transfer. 0 and values >= 1 mean
	// nominal. Models bandwidth-degradation windows.
	RateFactor float64
}

// ConditionsFunc reports the current fault conditions on a link. It must be
// deterministic in its inputs plus simulation state — it is consulted on
// the simulation goroutine at send and at delivery time.
type ConditionsFunc func(now sim.Time, kind Kind, from, to sim.AgentID) Conditions

// Failure reasons surfaced to strategies. Strategies typically react to a
// failure by discarding state for that peer (e.g. OPP's "else, discard w").
var (
	// ErrSenderOff indicates the sender was off at send time or shut off
	// mid-transfer.
	ErrSenderOff = errors.New("comm: sender off")
	// ErrReceiverOff indicates the receiver was off at send or delivery
	// time or shut off mid-transfer.
	ErrReceiverOff = errors.New("comm: receiver off")
	// ErrOutOfRange indicates a V2X pair was out of range at send or
	// delivery time.
	ErrOutOfRange = errors.New("comm: out of V2X range")
	// ErrDropped indicates a stochastic channel failure.
	ErrDropped = errors.New("comm: transfer dropped")
	// ErrNoPosition indicates a V2X endpoint without a position (e.g. the
	// cloud server).
	ErrNoPosition = errors.New("comm: agent has no position")
	// ErrBlackout indicates the link was inside a scheduled coverage
	// blackout (Conditions.Blocked) at send or delivery time.
	ErrBlackout = errors.New("comm: coverage blackout")
	// ErrBurstDropped indicates a loss sampled from a fault window's
	// ExtraDropProb rather than the channel's base drop probability.
	ErrBurstDropped = errors.New("comm: transfer lost in burst-loss window")
	// ErrChannelDropped indicates a loss sampled from a channel model's
	// per-transfer DropProb (radio outage, fitted oracle loss) rather than
	// the flat base drop probability.
	ErrChannelDropped = errors.New("comm: transfer lost by channel model")
)
