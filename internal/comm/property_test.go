package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// TestTransferSecondsMonotoneInSize: bigger payloads never transfer faster.
func TestTransferSecondsMonotoneInSize(t *testing.T) {
	prop := func(kbps uint16, latencyMs uint16, a, b uint32) bool {
		p := ChannelParams{
			KBps:     float64(kbps%10000) + 1,
			LatencyS: float64(latencyMs%1000) / 1000,
		}
		small, large := int(a%1_000_000)+1, int(b%1_000_000)+1
		if small > large {
			small, large = large, small
		}
		return p.TransferSeconds(small) <= p.TransferSeconds(large)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTransferSecondsAtLeastLatency: latency is a lower bound.
func TestTransferSecondsAtLeastLatency(t *testing.T) {
	prop := func(kbps uint16, latencyMs uint16, size uint32) bool {
		p := ChannelParams{
			KBps:     float64(kbps%10000) + 1,
			LatencyS: float64(latencyMs%5000) / 1000,
		}
		return p.TransferSeconds(int(size%1_000_000)+1) >= p.LatencyS
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStatsConservation: after a randomized workload fully drains,
// sent == delivered + failed for every channel, and delivered bytes never
// exceed attempted bytes.
func TestStatsConservation(t *testing.T) {
	prop := func(seed uint32, plan []uint8) bool {
		if len(plan) > 60 {
			plan = plan[:60]
		}
		engine := sim.NewEngine()
		registry := sim.NewRegistry(engine)
		rng := sim.NewRNG(uint64(seed))

		const vehicles = 6
		positions := make([]roadnet.Point, vehicles+1)
		server := registry.Add(sim.KindCloudServer)
		if err := registry.SetPower(server.ID, true); err != nil {
			return false
		}
		var ids []sim.AgentID
		for i := 0; i < vehicles; i++ {
			a := registry.Add(sim.KindVehicle)
			ids = append(ids, a.ID)
			if err := registry.SetPower(a.ID, true); err != nil {
				return false
			}
			positions[int(a.ID)] = roadnet.Point{X: rng.Range(0, 600)}
		}
		params := DefaultParams()
		params.V2C.DropProb = 0.3
		params.V2X.DropProb = 0.3
		pos := func(id sim.AgentID) (roadnet.Point, bool) {
			if id == server.ID {
				return roadnet.Point{}, false
			}
			return positions[int(id)], true
		}
		net, err := NewNetwork(engine, registry, params, pos, rng.Fork("net"))
		if err != nil {
			return false
		}

		for _, op := range plan {
			v := ids[int(op)%len(ids)]
			switch op % 4 {
			case 0: // v2c up
				_, _ = net.Send(v, server.ID, KindV2C, int(op)*100+1, nil)
			case 1: // v2c down
				_, _ = net.Send(server.ID, v, KindV2C, int(op)*100+1, nil)
			case 2: // v2x to a neighbor
				other := ids[(int(op)+1)%len(ids)]
				if other != v {
					_, _ = net.Send(v, other, KindV2X, int(op)*50+1, nil)
				}
			case 3: // power churn mid-flight
				_ = registry.SetPower(v, false)
				_ = registry.SetPower(v, true)
			}
			if !engine.Stopped() {
				_ = engine.Run(engine.Now().Add(0.2))
			}
		}
		if err := engine.RunAll(); err != nil {
			return false
		}
		if net.InFlight() != 0 {
			return false
		}
		for _, k := range Kinds() {
			st := net.StatsFor(k)
			if st.MessagesSent != st.MessagesDelivered+st.MessagesFailed {
				return false
			}
			if st.BytesDelivered > st.BytesAttempted {
				return false
			}
			if st.MessagesSent < 0 || st.BytesAttempted < 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
