package comm

import (
	"errors"
	"fmt"
	"sort"

	"roadrunner/internal/channel"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
)

// MsgID identifies one transfer.
type MsgID uint64

// Message is one in-flight or completed transfer.
type Message struct {
	ID        MsgID
	From      sim.AgentID
	To        sim.AgentID
	Kind      Kind
	SizeBytes int
	// Payload is opaque to the communication module; learning strategies
	// put model snapshots and metadata here.
	Payload any
	// SentAt and DeliverAt are the transfer's simulated start and
	// (scheduled) completion instants.
	SentAt    sim.Time
	DeliverAt sim.Time
}

// PositionFunc resolves an agent's current position. ok is false for
// agents without a position (the cloud server).
type PositionFunc func(id sim.AgentID) (pos roadnet.Point, ok bool)

// DeliveryFunc observes a successful delivery.
type DeliveryFunc func(msg *Message)

// FailureFunc observes a failed transfer with its reason (one of the
// package's Err* values, possibly wrapped).
type FailureFunc func(msg *Message, reason error)

// Stats aggregates the module's volume metrics for one channel kind —
// paper §3 requirement 4 ("the volume of communication transmitted via the
// various communication channels").
type Stats struct {
	MessagesSent      int64 `json:"messages_sent"`
	MessagesDelivered int64 `json:"messages_delivered"`
	MessagesFailed    int64 `json:"messages_failed"`
	BytesAttempted    int64 `json:"bytes_attempted"`
	BytesDelivered    int64 `json:"bytes_delivered"`
}

// Network simulates all channels of a VCPS on top of the core simulator.
// Transfers take simulated time, can fail at send time, stochastically in
// flight, and deterministically when an endpoint shuts off or (for V2X)
// leaves range before delivery. Network is single-goroutine like the
// engine that drives it.
type Network struct {
	engine   *sim.Engine
	registry *sim.Registry
	params   Params
	rng      *sim.RNG
	position PositionFunc

	onDeliver  DeliveryFunc
	onFail     FailureFunc
	conditions ConditionsFunc
	tracer     *trace.Tracer

	// model, when non-nil, replaces the flat analytic duration with
	// per-transfer channel outcomes; chRNG is its dedicated random stream
	// (forked as "channel" by the experiment), kept separate from rng so
	// enabling a model never perturbs the base drop sampling sequence.
	model    channel.Model
	chRNG    *sim.RNG
	recorder *channel.Log

	nextID   MsgID
	inflight map[MsgID]*flight
	// kindInFlight counts in-air transfers per channel kind — the live load
	// signal channel models and the recorder condition on.
	kindInFlight [channel.NumKinds]int
	stats        map[Kind]*Stats
}

type flight struct {
	msg   *Message
	event sim.Event
	span  trace.SpanID
	// distM and load snapshot the link geometry and per-kind in-flight
	// count at send time (distM is -1 when unknown); modelDrop is the
	// channel model's loss probability, sampled at delivery time.
	distM     float64
	load      int
	modelDrop float64
}

// NewNetwork wires a network to the engine and agent registry. position
// supplies V2X endpoint positions; rng drives stochastic drops. The network
// registers a power listener: any in-flight transfer touching an agent that
// turns off fails immediately ("a vehicle shutting off will result in any
// incoming or outgoing message failing", paper §5.1).
func NewNetwork(engine *sim.Engine, registry *sim.Registry, params Params, position PositionFunc, rng *sim.RNG) (*Network, error) {
	if engine == nil || registry == nil {
		return nil, fmt.Errorf("comm: nil engine or registry")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if position == nil {
		return nil, fmt.Errorf("comm: nil position func")
	}
	if rng == nil {
		return nil, fmt.Errorf("comm: nil rng")
	}
	n := &Network{
		engine:   engine,
		registry: registry,
		params:   params,
		rng:      rng,
		position: position,
		inflight: make(map[MsgID]*flight),
		stats:    make(map[Kind]*Stats),
	}
	for _, k := range Kinds() {
		n.stats[k] = &Stats{}
	}
	registry.OnPowerChange(n.handlePowerChange)
	return n, nil
}

// OnDeliver registers the delivery observer (typically the core simulator,
// which dispatches to the learning strategy).
func (n *Network) OnDeliver(fn DeliveryFunc) { n.onDeliver = fn }

// OnFail registers the failure observer.
func (n *Network) OnFail(fn FailureFunc) { n.onFail = fn }

// SetConditions installs the fault-conditions hook. A nil hook (the
// default) leaves every link at the nominal conditions of its
// ChannelParams; with a hook, the network consults it at send time
// (blocking and bandwidth scaling) and again at delivery time (blocking
// and burst loss), so conditions are time-correlated across a transfer's
// lifetime rather than sampled i.i.d.
func (n *Network) SetConditions(fn ConditionsFunc) { n.conditions = fn }

// SetChannel installs a channel model and its dedicated random stream. A
// nil model (the default) keeps the original analytic code path — not an
// equivalent one: the analytic branch is the exact pre-model code, so
// default runs are byte-identical by construction. rng must be non-nil
// when model is.
func (n *Network) SetChannel(model channel.Model, rng *sim.RNG) error {
	if model != nil && rng == nil {
		return fmt.Errorf("comm: channel model %q needs a dedicated rng", model.Name())
	}
	n.model = model
	n.chRNG = rng
	return nil
}

// SetChannelRecorder installs a channel-trace recorder. Recording is
// result-invariant: it snapshots link geometry and outcomes without
// consuming randomness or scheduling events, so a recorded run is
// byte-identical to the same run unrecorded.
func (n *Network) SetChannelRecorder(log *channel.Log) { n.recorder = log }

// InFlightByKind returns the number of transfers of one kind currently in
// the air.
func (n *Network) InFlightByKind(k Kind) int {
	i := int(k)
	if i < 0 || i >= channel.NumKinds {
		return 0
	}
	return n.kindInFlight[i]
}

// SetTracer installs the experiment's span tracer. A nil tracer (the
// default) disables transfer spans at the cost of one nil check per
// emission point; the core simulator wires its own tracer here so every
// accepted transfer — and every conditions-induced rejection — appears
// on the run's trace timeline.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer = t }

// conditionsAt evaluates the installed hook (zero Conditions without one).
func (n *Network) conditionsAt(kind Kind, from, to sim.AgentID) Conditions {
	if n.conditions == nil {
		return Conditions{}
	}
	return n.conditions(n.engine.Now(), kind, from, to)
}

// Params returns the channel parameters.
func (n *Network) Params() Params { return n.params }

// StatsFor returns a copy of the accumulated metrics for one channel kind.
func (n *Network) StatsFor(k Kind) Stats {
	if s, ok := n.stats[k]; ok {
		return *s
	}
	return Stats{}
}

// InFlight returns the number of transfers currently in the air.
func (n *Network) InFlight() int { return len(n.inflight) }

// Send starts a transfer of sizeBytes from one agent to another over the
// given channel kind. It returns an error if the transfer cannot even
// start (endpoint off, out of V2X range, unknown agent); once started, the
// transfer completes or fails asynchronously via the registered observers.
// Failed and successful transfers alike are charged to BytesAttempted —
// cellular costs accrue for attempts, not only successes.
func (n *Network) Send(from, to sim.AgentID, kind Kind, sizeBytes int, payload any) (MsgID, error) {
	if sizeBytes <= 0 {
		return 0, fmt.Errorf("comm: non-positive message size %d", sizeBytes)
	}
	if from == to {
		return 0, fmt.Errorf("comm: self-send from %v", from)
	}
	cp, err := n.params.ByKind(kind)
	if err != nil {
		return 0, err
	}
	sender := n.registry.Get(from)
	receiver := n.registry.Get(to)
	if sender == nil || receiver == nil {
		return 0, fmt.Errorf("comm: unknown endpoint (%v -> %v)", from, to)
	}
	if !sender.On() {
		return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, ErrSenderOff)
	}
	if !receiver.On() {
		return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, ErrReceiverOff)
	}
	if kind == KindV2X {
		if err := n.checkRange(from, to, cp.RangeM); err != nil {
			return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, err)
		}
	}
	cond := n.conditionsAt(kind, from, to)
	if cond.Blocked {
		// A send-time blackout rejection never becomes a Message, so it is
		// invisible to comm.Stats; an instant span keeps the drop on the
		// trace timeline ("conditions-induced drops" are first-class).
		span := n.tracer.Begin(trace.KindTransfer, "transfer")
		n.tracer.AttrUint(span, "from", uint64(from))
		n.tracer.AttrUint(span, "to", uint64(to))
		n.tracer.Attr(span, "kind", kind.String())
		n.tracer.AttrInt(span, "bytes", int64(sizeBytes))
		n.tracer.EndWith(span, "status", "rejected-blackout")
		return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, ErrBlackout)
	}

	now := n.engine.Now()
	// The analytic branch below is the exact pre-model code path, not a
	// re-derivation: default runs stay byte-identical by construction.
	distM := -1.0
	load := n.kindInFlight[int(kind)]
	var modelDrop float64
	duration := sim.Duration(cp.TransferSecondsAt(sizeBytes, cond.RateFactor))
	if n.model != nil || n.recorder != nil {
		distM = n.linkDistance(from, to)
	}
	if n.model != nil {
		out := n.model.Outcome(channel.Link{
			Now:          now,
			Kind:         kind,
			From:         uint64(from),
			To:           uint64(to),
			SizeBytes:    sizeBytes,
			DistanceM:    distM,
			InFlight:     load,
			BaseKBps:     cp.KBps,
			BaseLatencyS: cp.LatencyS,
		}, n.chRNG)
		kbps := out.KBps
		if kbps <= 0 {
			kbps = cp.KBps
		}
		factor := cond.RateFactor
		if !(factor > 0 && factor < 1) {
			factor = 1
		}
		// Same expression shape as TransferSecondsAt so an Analytic model
		// (kbps = cp.KBps, factor·1 exact) reproduces the analytic duration
		// float for float.
		duration = sim.Duration(out.LatencyS + float64(sizeBytes)/(kbps*1000*factor))
		modelDrop = out.DropProb
	}
	n.nextID++
	msg := &Message{
		ID:        n.nextID,
		From:      from,
		To:        to,
		Kind:      kind,
		SizeBytes: sizeBytes,
		Payload:   payload,
		SentAt:    now,
		DeliverAt: now.Add(duration),
	}
	st := n.stats[kind]
	st.MessagesSent++
	st.BytesAttempted += int64(sizeBytes)

	span := n.tracer.Begin(trace.KindTransfer, "transfer")
	n.tracer.AttrUint(span, "msg", uint64(msg.ID))
	n.tracer.AttrUint(span, "from", uint64(from))
	n.tracer.AttrUint(span, "to", uint64(to))
	n.tracer.Attr(span, "kind", kind.String())
	n.tracer.AttrInt(span, "bytes", int64(sizeBytes))
	if n.model != nil {
		n.tracer.Attr(span, "channel", n.model.Name())
		n.tracer.AttrFloat(span, "dist_m", distM)
		n.tracer.AttrInt(span, "load", int64(load))
	}

	ev, err := n.engine.Schedule(msg.DeliverAt, func() { n.complete(msg) })
	if err != nil {
		n.tracer.EndWith(span, "status", "error")
		return 0, fmt.Errorf("comm: schedule delivery: %w", err)
	}
	n.inflight[msg.ID] = &flight{msg: msg, event: ev, span: span, distM: distM, load: load, modelDrop: modelDrop}
	n.kindInFlight[int(kind)]++
	return msg.ID, nil
}

// linkDistance returns the sender-receiver distance, or -1 when either
// endpoint has no position (the cloud server).
func (n *Network) linkDistance(a, b sim.AgentID) float64 {
	pa, ok := n.position(a)
	if !ok {
		return -1
	}
	pb, ok := n.position(b)
	if !ok {
		return -1
	}
	return pa.Dist(pb)
}

// complete finishes a transfer: it re-validates endpoint state and range,
// samples the stochastic drops — base channel drop, fault-window burst
// loss, then the channel model's per-transfer loss, in that fixed order —
// and notifies the appropriate observer.
func (n *Network) complete(msg *Message) {
	fl := n.remove(msg.ID)
	var span trace.SpanID
	if fl != nil {
		span = fl.span
	}
	cp, err := n.params.ByKind(msg.Kind)
	if err != nil {
		n.fail(msg, fl, err)
		return
	}
	sender := n.registry.Get(msg.From)
	receiver := n.registry.Get(msg.To)
	switch {
	case sender == nil || !sender.On():
		n.fail(msg, fl, ErrSenderOff)
		return
	case receiver == nil || !receiver.On():
		n.fail(msg, fl, ErrReceiverOff)
		return
	}
	if msg.Kind == KindV2X {
		if err := n.checkRange(msg.From, msg.To, cp.RangeM); err != nil {
			n.fail(msg, fl, err)
			return
		}
	}
	cond := n.conditionsAt(msg.Kind, msg.From, msg.To)
	if cond.Blocked {
		n.fail(msg, fl, ErrBlackout)
		return
	}
	if cp.DropProb > 0 && n.rng.Bool(cp.DropProb) {
		n.fail(msg, fl, ErrDropped)
		return
	}
	if cond.ExtraDropProb > 0 && n.rng.Bool(cond.ExtraDropProb) {
		n.fail(msg, fl, ErrBurstDropped)
		return
	}
	// The model drop draws from the dedicated channel stream, never n.rng,
	// so enabling a model cannot shift the base drop sequence above. A
	// DropProb of 1 (radio outage) short-circuits inside Bool without
	// consuming randomness.
	if fl != nil && fl.modelDrop > 0 && n.chRNG.Bool(fl.modelDrop) {
		n.fail(msg, fl, ErrChannelDropped)
		return
	}
	st := n.stats[msg.Kind]
	st.MessagesDelivered++
	st.BytesDelivered += int64(msg.SizeBytes)
	n.record(msg, fl, channel.OutcomeDelivered)
	n.tracer.EndWith(span, "status", "delivered")
	if n.onDeliver != nil {
		n.onDeliver(msg)
	}
}

// remove takes a flight out of the in-flight set, keeping the per-kind
// load counters consistent.
func (n *Network) remove(id MsgID) *flight {
	fl := n.inflight[id]
	if fl != nil {
		delete(n.inflight, id)
		n.kindInFlight[int(fl.msg.Kind)]--
	}
	return fl
}

// record appends one sample to the channel recorder (a no-op without one).
// The recorded duration is the transfer's actual time in the air, which for
// mid-flight aborts is shorter than the scheduled duration.
func (n *Network) record(msg *Message, fl *flight, outcome string) {
	if n.recorder == nil || fl == nil {
		return
	}
	n.recorder.Record(channel.Sample{
		Kind:      msg.Kind,
		T:         msg.SentAt,
		DistanceM: fl.distM,
		SizeBytes: msg.SizeBytes,
		Load:      fl.load,
		DurationS: n.engine.Now().Sub(msg.SentAt).Seconds(),
		Outcome:   outcome,
	})
}

// outcomeFor maps a failure reason onto the channel-trace outcome
// vocabulary; unrecognized reasons take the caller's fallback.
func outcomeFor(reason error, fallback string) string {
	switch {
	case errors.Is(reason, ErrDropped):
		return channel.OutcomeDropped
	case errors.Is(reason, ErrChannelDropped):
		return channel.OutcomeChannel
	case errors.Is(reason, ErrBurstDropped):
		return channel.OutcomeBurst
	case errors.Is(reason, ErrBlackout):
		return channel.OutcomeBlackout
	case errors.Is(reason, ErrSenderOff), errors.Is(reason, ErrReceiverOff):
		return channel.OutcomeOff
	case errors.Is(reason, ErrOutOfRange), errors.Is(reason, ErrNoPosition):
		return channel.OutcomeRange
	default:
		return fallback
	}
}

// fail closes the transfer's span with the failure reason before
// notifying the observer, so observer-side spans (the core's fault-drop
// markers, strategy reactions) order after the transfer itself.
func (n *Network) fail(msg *Message, fl *flight, reason error) {
	n.failOutcome(msg, fl, reason, channel.OutcomeError)
}

func (n *Network) failOutcome(msg *Message, fl *flight, reason error, fallback string) {
	var span trace.SpanID
	if fl != nil {
		span = fl.span
	}
	n.stats[msg.Kind].MessagesFailed++
	n.record(msg, fl, outcomeFor(reason, fallback))
	n.tracer.AttrErr(span, "error", reason)
	n.tracer.EndWith(span, "status", "failed")
	if n.onFail != nil {
		n.onFail(msg, reason)
	}
}

// handlePowerChange aborts in-flight transfers touching an agent that just
// turned off.
func (n *Network) handlePowerChange(id sim.AgentID, on bool) {
	if on {
		return
	}
	// Collect and sort by message ID: map iteration order must not leak
	// into the failure-dispatch order, or runs stop being reproducible.
	var doomed []*flight
	for _, fl := range n.inflight {
		m := fl.msg
		if m.From == id || m.To == id {
			doomed = append(doomed, fl)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].msg.ID < doomed[j].msg.ID })
	for _, fl := range doomed {
		m := fl.msg
		fl.event.Cancel()
		n.remove(m.ID)
		if m.From == id {
			n.fail(m, fl, ErrSenderOff)
		} else {
			n.fail(m, fl, ErrReceiverOff)
		}
	}
}

// FailInFlight aborts every in-flight transfer matching pred, failing it
// with reason, and returns the number aborted. Flights are processed in
// message-ID order so the failure-dispatch order is reproducible. The fault
// subsystem uses it for scheduled mid-flight link kills; a nil pred matches
// every flight.
func (n *Network) FailInFlight(pred func(*Message) bool, reason error) int {
	var doomed []*flight
	for _, fl := range n.inflight {
		if pred == nil || pred(fl.msg) {
			doomed = append(doomed, fl)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].msg.ID < doomed[j].msg.ID })
	for _, fl := range doomed {
		fl.event.Cancel()
		n.remove(fl.msg.ID)
		// Scheduled link kills come in with reasons this package does not
		// know (faults.ErrLinkKilled); in a channel trace they are
		// endpoint-attributable kills, not channel losses.
		n.failOutcome(fl.msg, fl, reason, channel.OutcomeKilled)
	}
	return len(doomed)
}

func (n *Network) checkRange(a, b sim.AgentID, rangeM float64) error {
	pa, ok := n.position(a)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoPosition, a)
	}
	pb, ok := n.position(b)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoPosition, b)
	}
	if pa.Dist(pb) > rangeM {
		return ErrOutOfRange
	}
	return nil
}

// Reachable reports whether a send from a to b over kind would be accepted
// right now (both on, and in range for V2X). Strategies use it to avoid
// wasting a round-trip on a peer that already left.
func (n *Network) Reachable(from, to sim.AgentID, kind Kind) bool {
	sender := n.registry.Get(from)
	receiver := n.registry.Get(to)
	if sender == nil || receiver == nil || !sender.On() || !receiver.On() || from == to {
		return false
	}
	if kind == KindV2X {
		cp, err := n.params.ByKind(kind)
		if err != nil {
			return false
		}
		return n.checkRange(from, to, cp.RangeM) == nil
	}
	return true
}
