package comm

import (
	"fmt"
	"sort"

	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
)

// MsgID identifies one transfer.
type MsgID uint64

// Message is one in-flight or completed transfer.
type Message struct {
	ID        MsgID
	From      sim.AgentID
	To        sim.AgentID
	Kind      Kind
	SizeBytes int
	// Payload is opaque to the communication module; learning strategies
	// put model snapshots and metadata here.
	Payload any
	// SentAt and DeliverAt are the transfer's simulated start and
	// (scheduled) completion instants.
	SentAt    sim.Time
	DeliverAt sim.Time
}

// PositionFunc resolves an agent's current position. ok is false for
// agents without a position (the cloud server).
type PositionFunc func(id sim.AgentID) (pos roadnet.Point, ok bool)

// DeliveryFunc observes a successful delivery.
type DeliveryFunc func(msg *Message)

// FailureFunc observes a failed transfer with its reason (one of the
// package's Err* values, possibly wrapped).
type FailureFunc func(msg *Message, reason error)

// Stats aggregates the module's volume metrics for one channel kind —
// paper §3 requirement 4 ("the volume of communication transmitted via the
// various communication channels").
type Stats struct {
	MessagesSent      int64 `json:"messages_sent"`
	MessagesDelivered int64 `json:"messages_delivered"`
	MessagesFailed    int64 `json:"messages_failed"`
	BytesAttempted    int64 `json:"bytes_attempted"`
	BytesDelivered    int64 `json:"bytes_delivered"`
}

// Network simulates all channels of a VCPS on top of the core simulator.
// Transfers take simulated time, can fail at send time, stochastically in
// flight, and deterministically when an endpoint shuts off or (for V2X)
// leaves range before delivery. Network is single-goroutine like the
// engine that drives it.
type Network struct {
	engine   *sim.Engine
	registry *sim.Registry
	params   Params
	rng      *sim.RNG
	position PositionFunc

	onDeliver  DeliveryFunc
	onFail     FailureFunc
	conditions ConditionsFunc
	tracer     *trace.Tracer

	nextID   MsgID
	inflight map[MsgID]*flight
	stats    map[Kind]*Stats
}

type flight struct {
	msg   *Message
	event sim.Event
	span  trace.SpanID
}

// NewNetwork wires a network to the engine and agent registry. position
// supplies V2X endpoint positions; rng drives stochastic drops. The network
// registers a power listener: any in-flight transfer touching an agent that
// turns off fails immediately ("a vehicle shutting off will result in any
// incoming or outgoing message failing", paper §5.1).
func NewNetwork(engine *sim.Engine, registry *sim.Registry, params Params, position PositionFunc, rng *sim.RNG) (*Network, error) {
	if engine == nil || registry == nil {
		return nil, fmt.Errorf("comm: nil engine or registry")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if position == nil {
		return nil, fmt.Errorf("comm: nil position func")
	}
	if rng == nil {
		return nil, fmt.Errorf("comm: nil rng")
	}
	n := &Network{
		engine:   engine,
		registry: registry,
		params:   params,
		rng:      rng,
		position: position,
		inflight: make(map[MsgID]*flight),
		stats:    make(map[Kind]*Stats),
	}
	for _, k := range Kinds() {
		n.stats[k] = &Stats{}
	}
	registry.OnPowerChange(n.handlePowerChange)
	return n, nil
}

// OnDeliver registers the delivery observer (typically the core simulator,
// which dispatches to the learning strategy).
func (n *Network) OnDeliver(fn DeliveryFunc) { n.onDeliver = fn }

// OnFail registers the failure observer.
func (n *Network) OnFail(fn FailureFunc) { n.onFail = fn }

// SetConditions installs the fault-conditions hook. A nil hook (the
// default) leaves every link at the nominal conditions of its
// ChannelParams; with a hook, the network consults it at send time
// (blocking and bandwidth scaling) and again at delivery time (blocking
// and burst loss), so conditions are time-correlated across a transfer's
// lifetime rather than sampled i.i.d.
func (n *Network) SetConditions(fn ConditionsFunc) { n.conditions = fn }

// SetTracer installs the experiment's span tracer. A nil tracer (the
// default) disables transfer spans at the cost of one nil check per
// emission point; the core simulator wires its own tracer here so every
// accepted transfer — and every conditions-induced rejection — appears
// on the run's trace timeline.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer = t }

// conditionsAt evaluates the installed hook (zero Conditions without one).
func (n *Network) conditionsAt(kind Kind, from, to sim.AgentID) Conditions {
	if n.conditions == nil {
		return Conditions{}
	}
	return n.conditions(n.engine.Now(), kind, from, to)
}

// Params returns the channel parameters.
func (n *Network) Params() Params { return n.params }

// StatsFor returns a copy of the accumulated metrics for one channel kind.
func (n *Network) StatsFor(k Kind) Stats {
	if s, ok := n.stats[k]; ok {
		return *s
	}
	return Stats{}
}

// InFlight returns the number of transfers currently in the air.
func (n *Network) InFlight() int { return len(n.inflight) }

// Send starts a transfer of sizeBytes from one agent to another over the
// given channel kind. It returns an error if the transfer cannot even
// start (endpoint off, out of V2X range, unknown agent); once started, the
// transfer completes or fails asynchronously via the registered observers.
// Failed and successful transfers alike are charged to BytesAttempted —
// cellular costs accrue for attempts, not only successes.
func (n *Network) Send(from, to sim.AgentID, kind Kind, sizeBytes int, payload any) (MsgID, error) {
	if sizeBytes <= 0 {
		return 0, fmt.Errorf("comm: non-positive message size %d", sizeBytes)
	}
	if from == to {
		return 0, fmt.Errorf("comm: self-send from %v", from)
	}
	cp, err := n.params.ByKind(kind)
	if err != nil {
		return 0, err
	}
	sender := n.registry.Get(from)
	receiver := n.registry.Get(to)
	if sender == nil || receiver == nil {
		return 0, fmt.Errorf("comm: unknown endpoint (%v -> %v)", from, to)
	}
	if !sender.On() {
		return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, ErrSenderOff)
	}
	if !receiver.On() {
		return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, ErrReceiverOff)
	}
	if kind == KindV2X {
		if err := n.checkRange(from, to, cp.RangeM); err != nil {
			return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, err)
		}
	}
	cond := n.conditionsAt(kind, from, to)
	if cond.Blocked {
		// A send-time blackout rejection never becomes a Message, so it is
		// invisible to comm.Stats; an instant span keeps the drop on the
		// trace timeline ("conditions-induced drops" are first-class).
		span := n.tracer.Begin(trace.KindTransfer, "transfer")
		n.tracer.AttrUint(span, "from", uint64(from))
		n.tracer.AttrUint(span, "to", uint64(to))
		n.tracer.Attr(span, "kind", kind.String())
		n.tracer.AttrInt(span, "bytes", int64(sizeBytes))
		n.tracer.EndWith(span, "status", "rejected-blackout")
		return 0, fmt.Errorf("comm: send %v -> %v: %w", from, to, ErrBlackout)
	}

	now := n.engine.Now()
	duration := sim.Duration(cp.TransferSecondsAt(sizeBytes, cond.RateFactor))
	n.nextID++
	msg := &Message{
		ID:        n.nextID,
		From:      from,
		To:        to,
		Kind:      kind,
		SizeBytes: sizeBytes,
		Payload:   payload,
		SentAt:    now,
		DeliverAt: now.Add(duration),
	}
	st := n.stats[kind]
	st.MessagesSent++
	st.BytesAttempted += int64(sizeBytes)

	span := n.tracer.Begin(trace.KindTransfer, "transfer")
	n.tracer.AttrUint(span, "msg", uint64(msg.ID))
	n.tracer.AttrUint(span, "from", uint64(from))
	n.tracer.AttrUint(span, "to", uint64(to))
	n.tracer.Attr(span, "kind", kind.String())
	n.tracer.AttrInt(span, "bytes", int64(sizeBytes))

	ev, err := n.engine.Schedule(msg.DeliverAt, func() { n.complete(msg) })
	if err != nil {
		n.tracer.EndWith(span, "status", "error")
		return 0, fmt.Errorf("comm: schedule delivery: %w", err)
	}
	n.inflight[msg.ID] = &flight{msg: msg, event: ev, span: span}
	return msg.ID, nil
}

// complete finishes a transfer: it re-validates endpoint state and range,
// samples the stochastic drop, and notifies the appropriate observer.
func (n *Network) complete(msg *Message) {
	var span trace.SpanID
	if fl := n.inflight[msg.ID]; fl != nil {
		span = fl.span
	}
	delete(n.inflight, msg.ID)
	cp, err := n.params.ByKind(msg.Kind)
	if err != nil {
		n.fail(msg, span, err)
		return
	}
	sender := n.registry.Get(msg.From)
	receiver := n.registry.Get(msg.To)
	switch {
	case sender == nil || !sender.On():
		n.fail(msg, span, ErrSenderOff)
		return
	case receiver == nil || !receiver.On():
		n.fail(msg, span, ErrReceiverOff)
		return
	}
	if msg.Kind == KindV2X {
		if err := n.checkRange(msg.From, msg.To, cp.RangeM); err != nil {
			n.fail(msg, span, err)
			return
		}
	}
	cond := n.conditionsAt(msg.Kind, msg.From, msg.To)
	if cond.Blocked {
		n.fail(msg, span, ErrBlackout)
		return
	}
	if cp.DropProb > 0 && n.rng.Bool(cp.DropProb) {
		n.fail(msg, span, ErrDropped)
		return
	}
	if cond.ExtraDropProb > 0 && n.rng.Bool(cond.ExtraDropProb) {
		n.fail(msg, span, ErrBurstDropped)
		return
	}
	st := n.stats[msg.Kind]
	st.MessagesDelivered++
	st.BytesDelivered += int64(msg.SizeBytes)
	n.tracer.EndWith(span, "status", "delivered")
	if n.onDeliver != nil {
		n.onDeliver(msg)
	}
}

// fail closes the transfer's span with the failure reason before
// notifying the observer, so observer-side spans (the core's fault-drop
// markers, strategy reactions) order after the transfer itself.
func (n *Network) fail(msg *Message, span trace.SpanID, reason error) {
	n.stats[msg.Kind].MessagesFailed++
	n.tracer.AttrErr(span, "error", reason)
	n.tracer.EndWith(span, "status", "failed")
	if n.onFail != nil {
		n.onFail(msg, reason)
	}
}

// handlePowerChange aborts in-flight transfers touching an agent that just
// turned off.
func (n *Network) handlePowerChange(id sim.AgentID, on bool) {
	if on {
		return
	}
	// Collect and sort by message ID: map iteration order must not leak
	// into the failure-dispatch order, or runs stop being reproducible.
	var doomed []*flight
	for _, fl := range n.inflight {
		m := fl.msg
		if m.From == id || m.To == id {
			doomed = append(doomed, fl)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].msg.ID < doomed[j].msg.ID })
	for _, fl := range doomed {
		m := fl.msg
		fl.event.Cancel()
		delete(n.inflight, m.ID)
		if m.From == id {
			n.fail(m, fl.span, ErrSenderOff)
		} else {
			n.fail(m, fl.span, ErrReceiverOff)
		}
	}
}

// FailInFlight aborts every in-flight transfer matching pred, failing it
// with reason, and returns the number aborted. Flights are processed in
// message-ID order so the failure-dispatch order is reproducible. The fault
// subsystem uses it for scheduled mid-flight link kills; a nil pred matches
// every flight.
func (n *Network) FailInFlight(pred func(*Message) bool, reason error) int {
	var doomed []*flight
	for _, fl := range n.inflight {
		if pred == nil || pred(fl.msg) {
			doomed = append(doomed, fl)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].msg.ID < doomed[j].msg.ID })
	for _, fl := range doomed {
		fl.event.Cancel()
		delete(n.inflight, fl.msg.ID)
		n.fail(fl.msg, fl.span, reason)
	}
	return len(doomed)
}

func (n *Network) checkRange(a, b sim.AgentID, rangeM float64) error {
	pa, ok := n.position(a)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoPosition, a)
	}
	pb, ok := n.position(b)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoPosition, b)
	}
	if pa.Dist(pb) > rangeM {
		return ErrOutOfRange
	}
	return nil
}

// Reachable reports whether a send from a to b over kind would be accepted
// right now (both on, and in range for V2X). Strategies use it to avoid
// wasting a round-trip on a peer that already left.
func (n *Network) Reachable(from, to sim.AgentID, kind Kind) bool {
	sender := n.registry.Get(from)
	receiver := n.registry.Get(to)
	if sender == nil || receiver == nil || !sender.On() || !receiver.On() || from == to {
		return false
	}
	if kind == KindV2X {
		cp, err := n.params.ByKind(kind)
		if err != nil {
			return false
		}
		return n.checkRange(from, to, cp.RangeM) == nil
	}
	return true
}
