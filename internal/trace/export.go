package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Export formats. Both are hand-written rather than reflected through
// encoding/json's map machinery so that byte output is a pure function
// of the trace: fixed field order, fixed float formatting (strconv 'g',
// shortest round-trip — the same convention as core's canonical result
// encoding), spans in ID order, attributes in emission order.

func formatInt(v int64) string   { return strconv.FormatInt(v, 10) }
func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonicalHeader is the first line of the CSV/canonical encoding; bump
// the version when the format changes.
const canonicalHeader = "# roadrunner-trace-v1"

// WriteCSV writes the compact CSV export: a header comment, one
// meta,<key>,<value> line per trace attribute, then one span line per
// span:
//
//	span,<id>,<parent>,<kind>,<name>,<start_s>,<end_s>,<ended>,<k=v;k=v>
//
// Fields containing commas, quotes, or newlines are quoted per RFC
// 4180; attribute pairs are joined with ';' inside one field.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("trace: export of nil trace")
	}
	bw := newErrWriter(w)
	bw.line(canonicalHeader)
	for _, a := range tr.Meta {
		bw.fields("meta", a.Key, a.Value)
	}
	for _, s := range tr.Spans {
		ended := "0"
		if s.Ended {
			ended = "1"
		}
		bw.fields("span",
			formatUint(uint64(s.ID)),
			formatUint(uint64(s.Parent)),
			s.Kind,
			s.Name,
			formatFloat(float64(s.Start)),
			formatFloat(float64(s.End)),
			ended,
			joinAttrs(s.Attrs),
		)
	}
	return bw.err
}

// CanonicalBytes returns the byte-stable encoding of the trace — the
// CSV export — used by the determinism regression tests exactly like
// core.Result.CanonicalBytes: same (config, seed, plan) ⇒ identical
// bytes at any worker count or GOMAXPROCS.
func (tr *Trace) CanonicalBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteChromeJSON writes the trace in Chrome trace_event format — an
// object with a traceEvents array of "X" (complete) events — loadable
// by chrome://tracing and Perfetto. Simulated seconds map to trace
// microseconds, so one sim-second reads as one millisecond-scale unit
// in the viewer; rows (tid) group spans by the agent they concern.
func (tr *Trace) WriteChromeJSON(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("trace: export of nil trace")
	}
	bw := newErrWriter(w)
	bw.printf("{\"displayTimeUnit\":\"ms\",\"otherData\":{")
	for i, a := range tr.Meta {
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("%s:%s", jsonString(a.Key), jsonString(a.Value))
	}
	bw.printf("},\"traceEvents\":[")
	for i, s := range tr.Spans {
		if i > 0 {
			bw.printf(",")
		}
		dur := float64(s.End-s.Start) * 1e6
		if dur < 0 {
			dur = 0
		}
		bw.printf("\n{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{",
			jsonString(s.Name), jsonString(s.Kind),
			formatFloat(float64(s.Start)*1e6), formatFloat(dur), s.tid())
		bw.printf("\"span\":%s", jsonString(formatUint(uint64(s.ID))))
		if s.Parent != 0 {
			bw.printf(",\"parent\":%s", jsonString(formatUint(uint64(s.Parent))))
		}
		for _, a := range s.Attrs {
			bw.printf(",%s:%s", jsonString(a.Key), jsonString(a.Value))
		}
		bw.printf("}}")
	}
	bw.printf("\n]}\n")
	return bw.err
}

// tid picks the viewer row for a span: the first agent-identifying
// attribute ("agent" for trains/evals, "from" for transfers,
// "reporter" for exchanges), or row 0 for run-level spans (rounds,
// ticks, fault windows).
func (s *Span) tid() int64 {
	for _, a := range s.Attrs {
		switch a.Key {
		case "agent", "from", "reporter":
			if v, err := strconv.ParseInt(a.Value, 10, 64); err == nil {
				return v
			}
		}
	}
	return 0
}

// joinAttrs renders ordered attributes as k=v pairs joined with ';'.
// The join is for compactness, not for lossless parsing — consumers
// needing full fidelity use the Chrome JSON export.
func joinAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b bytes.Buffer
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	return b.String()
}

// jsonString renders s as a JSON string literal. encoding/json's
// string encoding is deterministic, which is all the byte-identity
// contract needs.
func jsonString(s string) string {
	data, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(data)
}

// errWriter collapses repeated error checks on sequential writes.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}

func (b *errWriter) line(s string) {
	if b.err != nil {
		return
	}
	_, b.err = io.WriteString(b.w, s+"\n")
}

// fields writes one CSV record with RFC 4180 quoting.
func (b *errWriter) fields(fs ...string) {
	if b.err != nil {
		return
	}
	var rec bytes.Buffer
	for i, f := range fs {
		if i > 0 {
			rec.WriteByte(',')
		}
		rec.WriteString(csvQuote(f))
	}
	rec.WriteByte('\n')
	_, b.err = b.w.Write(rec.Bytes())
}

func csvQuote(f string) string {
	if !strings.ContainsAny(f, ",\"\n\r") {
		return f
	}
	var b bytes.Buffer
	b.WriteByte('"')
	for i := 0; i < len(f); i++ {
		if f[i] == '"' {
			b.WriteByte('"')
		}
		b.WriteByte(f[i])
	}
	b.WriteByte('"')
	return b.String()
}
