// Package trace is Roadrunner's deterministic, simulated-time span
// tracer. The paper's framework argues that evaluating a learning
// strategy requires observing the whole distributed workflow — when
// rounds start, which transfers stall, where training time goes — not
// just the final accuracy curve; DRIVE (Mavromatis et al., PAPERS.md)
// likewise treats per-link/per-event telemetry as a first-class output
// of a C-ITS oracle. This package provides that visibility without
// giving up the repo's reproducibility contract: spans are stamped with
// sim.Time from the experiment's own virtual clock (never wall time),
// span IDs are assigned in event-execution order, and attributes are
// ordered key/value pairs — so the same (config, seed, plan) triple
// emits byte-identical trace output at any EvalWorkers or GOMAXPROCS
// setting. Exporters (Chrome trace_event JSON, compact CSV, canonical
// bytes) live in export.go.
//
// Tracing is opt-in per experiment (core.Config.Trace). The disabled
// state is a nil *Tracer: every method is nil-receiver-safe and returns
// immediately, so instrumented hot paths pay one predictable branch and
// zero allocations when tracing is off. Call sites that would allocate
// while building an argument (fmt.Sprintf names, err.Error() strings)
// must either use the typed Attr helpers below — which check the
// receiver before formatting — or guard with Enabled().
package trace

import "roadrunner/internal/sim"

// Span kinds form the fixed taxonomy of the observability layer. Kind
// strings appear verbatim in every export format, so they are part of
// the byte-identity contract and must not be renamed casually.
const (
	// KindRound covers one strategy round from announcement to
	// aggregation (fedavg, opportunistic). Children: the phase's
	// trains, transfers, and exchanges.
	KindRound = "round"
	// KindTrain covers one on-vehicle training occupation, from
	// TrainOnData acceptance to completion or abort.
	KindTrain = "train"
	// KindEval is an instantaneous test-set evaluation point.
	KindEval = "eval"
	// KindTransfer covers one network message from Send to delivery
	// or failure, including conditions-induced drops.
	KindTransfer = "transfer"
	// KindEncounterExchange covers one opportunistic offer→retrain→
	// collect exchange between a reporter and a peer.
	KindEncounterExchange = "encounter-exchange"
	// KindFaultWindow covers one scheduled fault activation, from its
	// start event to its end event.
	KindFaultWindow = "fault-window"
	// KindTick is the core fleet tick: mobility sampling, encounter
	// scanning, and series recording.
	KindTick = "tick"
)

// SpanID identifies a span within one trace. IDs are assigned
// sequentially from 1 in Begin order — which, on the single simulation
// goroutine, is event-execution order and therefore deterministic.
// 0 is "no span" and is what every method returns on a nil tracer.
type SpanID uint32

// Attr is one ordered key/value attribute. Values are strings so the
// export formats need no per-type canonicalization rules; the typed
// helpers on Tracer format numerics with the same strconv conventions
// as core's canonical result encoding.
type Attr struct {
	Key   string
	Value string
}

// Span is one traced interval (or instant, when End == Start) of
// simulated time.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   string
	Name   string
	Start  sim.Time
	End    sim.Time
	// Ended reports whether End was set by an explicit End call rather
	// than by Finish truncating the span at the run horizon.
	Ended bool
	Attrs []Attr
}

// Clock supplies the current simulated instant. *sim.Engine satisfies
// it; tests use fixed clocks. Wall clocks must never be adapted into
// this interface — the roadlint wallclock rule polices the package.
type Clock interface {
	Now() sim.Time
}

// Trace is a completed trace: run-level metadata plus the span list in
// ID order. It is what Tracer.Snapshot returns, what core.Result
// carries, and what the exporters consume.
type Trace struct {
	Meta  []Attr
	Spans []Span
}

// Tracer collects spans for one experiment run. It is single-goroutine
// by construction — all emission points execute on the simulation
// goroutine, matching sim.Engine's own concurrency contract — so it
// needs no locks. A nil Tracer is the disabled tracer: every method is
// a cheap no-op.
type Tracer struct {
	clock Clock
	meta  []Attr
	spans []Span
	scope SpanID
}

// New returns an enabled tracer reading simulated time from clock.
// meta attributes (seed, strategy, …) are attached to the trace as a
// whole and appear in every export.
func New(clock Clock, meta ...Attr) *Tracer {
	if clock == nil {
		return nil
	}
	return &Tracer{clock: clock, meta: meta}
}

// Enabled reports whether spans are being collected. It exists for
// call sites that must avoid building an argument (an err.Error()
// string, a formatted name) when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of spans collected so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// SetScope installs the span every subsequent Begin auto-parents to,
// until the next SetScope. Strategies set their round span as the
// scope so trains, transfers, and exchanges nest under the round that
// caused them; SetScope(0) clears the scope.
func (t *Tracer) SetScope(id SpanID) {
	if t == nil {
		return
	}
	t.scope = id
}

// Scope returns the current auto-parent span, or 0.
func (t *Tracer) Scope() SpanID {
	if t == nil {
		return 0
	}
	return t.scope
}

// Begin opens a span at the current simulated instant, parented to the
// current scope. It returns the new span's ID, or 0 when disabled.
func (t *Tracer) Begin(kind, name string) SpanID {
	if t == nil {
		return 0
	}
	return t.begin(kind, name, t.scope)
}

// BeginRoot opens a span with no parent regardless of the current
// scope — fault windows, which straddle round boundaries, use it.
func (t *Tracer) BeginRoot(kind, name string) SpanID {
	if t == nil {
		return 0
	}
	return t.begin(kind, name, 0)
}

func (t *Tracer) begin(kind, name string, parent SpanID) SpanID {
	now := t.clock.Now()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID:     id,
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Start:  now,
		End:    now,
	})
	return id
}

// Attr appends a string attribute to an open or closed span. Unknown
// or zero IDs are ignored.
func (t *Tracer) Attr(id SpanID, key, value string) {
	if t == nil || id == 0 || int(id) > len(t.spans) {
		return
	}
	s := &t.spans[id-1]
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// AttrInt formats an integer attribute. The formatting happens after
// the nil check, so disabled call sites pay no allocation.
func (t *Tracer) AttrInt(id SpanID, key string, value int64) {
	if t == nil {
		return
	}
	t.Attr(id, key, formatInt(value))
}

// AttrUint formats an unsigned integer attribute (agent IDs).
func (t *Tracer) AttrUint(id SpanID, key string, value uint64) {
	if t == nil {
		return
	}
	t.Attr(id, key, formatUint(value))
}

// AttrFloat formats a float attribute with the canonical-encoding
// convention (strconv 'g', shortest round-trip).
func (t *Tracer) AttrFloat(id SpanID, key string, value float64) {
	if t == nil {
		return
	}
	t.Attr(id, key, formatFloat(value))
}

// AttrErr records err.Error() as an attribute, calling Error() only
// when the tracer is enabled and err is non-nil.
func (t *Tracer) AttrErr(id SpanID, key string, err error) {
	if t == nil || err == nil {
		return
	}
	t.Attr(id, key, err.Error())
}

// End closes a span at the current simulated instant.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 || int(id) > len(t.spans) {
		return
	}
	s := &t.spans[id-1]
	if s.Ended {
		return
	}
	s.End = t.clock.Now()
	s.Ended = true
}

// EndWith appends one final attribute (typically "status") and closes
// the span — the common shape of every failure path.
func (t *Tracer) EndWith(id SpanID, key, value string) {
	if t == nil {
		return
	}
	t.Attr(id, key, value)
	t.End(id)
}

// Finish truncates every still-open span at the given instant —
// normally the run horizon — tagging it truncated="horizon" so
// exports distinguish "ran to completion" from "cut off by the end of
// the run". Experiments call it once, after the engine stops.
func (t *Tracer) Finish(at sim.Time) {
	if t == nil {
		return
	}
	for i := range t.spans {
		s := &t.spans[i]
		if s.Ended {
			continue
		}
		s.End = at
		if s.End < s.Start {
			s.End = s.Start
		}
		s.Attrs = append(s.Attrs, Attr{Key: "truncated", Value: "horizon"})
	}
}

// Snapshot returns the completed trace, or nil when disabled. The
// returned Trace shares the tracer's backing arrays; emission must be
// over before exporting, which Experiment.Run guarantees.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{Meta: t.meta, Spans: t.spans}
}
