package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"roadrunner/internal/sim"
)

// fakeClock is a settable simulated clock for driving the tracer
// without an engine.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

// buildSample produces a small but representative trace: nested scope,
// typed attributes, an instant span, a failure path, and a span left
// open for Finish to truncate.
func buildSample() *Trace {
	clk := &fakeClock{}
	tr := New(clk, Attr{"seed", "42"}, Attr{"strategy", "fedavg"})

	round := tr.Begin(KindRound, "round")
	tr.AttrInt(round, "round", 1)
	tr.SetScope(round)

	clk.t = 1.5
	train := tr.Begin(KindTrain, "train")
	tr.AttrUint(train, "agent", 7)
	tr.AttrInt(train, "examples", 96)

	xfer := tr.Begin(KindTransfer, "transfer")
	tr.AttrUint(xfer, "from", 7)
	tr.AttrUint(xfer, "to", 0)
	tr.AttrErr(xfer, "error", errors.New(`dropped, "burst"`))

	clk.t = 2.25
	tr.EndWith(xfer, "status", "failed")
	tr.End(train)

	ev := tr.Begin(KindEval, "eval")
	tr.AttrFloat(ev, "accuracy", 0.625)
	tr.End(ev)

	clk.t = 4
	tr.End(round)
	tr.SetScope(0)

	open := tr.BeginRoot(KindFaultWindow, "v2c-blackout")
	_ = open // left open deliberately

	tr.Finish(10)
	return tr.Snapshot()
}

func TestTracerStructure(t *testing.T) {
	trc := buildSample()
	if len(trc.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(trc.Spans))
	}
	round, train, xfer, ev, fw := trc.Spans[0], trc.Spans[1], trc.Spans[2], trc.Spans[3], trc.Spans[4]
	if round.Parent != 0 || train.Parent != round.ID || xfer.Parent != round.ID || ev.Parent != round.ID {
		t.Fatalf("parent links wrong: %+v", trc.Spans)
	}
	if train.Start != 1.5 || train.End != 2.25 || !train.Ended {
		t.Fatalf("train span interval wrong: %+v", train)
	}
	if ev.Start != ev.End {
		t.Fatalf("eval should be instant: %+v", ev)
	}
	if fw.Ended || fw.End != 10 {
		t.Fatalf("finish should truncate open span at 10: %+v", fw)
	}
	last := fw.Attrs[len(fw.Attrs)-1]
	if last.Key != "truncated" || last.Value != "horizon" {
		t.Fatalf("truncated attr missing: %+v", fw.Attrs)
	}
	if got := xfer.Attrs[len(xfer.Attrs)-1]; got.Key != "status" || got.Value != "failed" {
		t.Fatalf("EndWith attr missing: %+v", xfer.Attrs)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Begin(KindRound, "round")
	if id != 0 {
		t.Fatalf("nil Begin = %d, want 0", id)
	}
	tr.SetScope(5)
	if tr.Scope() != 0 {
		t.Fatal("nil Scope changed")
	}
	tr.Attr(id, "k", "v")
	tr.AttrInt(id, "k", 1)
	tr.AttrUint(id, "k", 1)
	tr.AttrFloat(id, "k", 1)
	tr.AttrErr(id, "k", errors.New("x"))
	tr.End(id)
	tr.EndWith(id, "k", "v")
	tr.Finish(3)
	if tr.Len() != 0 {
		t.Fatalf("nil Len = %d", tr.Len())
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil Snapshot non-nil")
	}
	// New with a nil clock is the disabled tracer too.
	if New(nil).Enabled() {
		t.Fatal("New(nil) should be disabled")
	}
}

// TestDisabledTracerZeroAllocs is the package-level half of the
// zero-allocation-when-disabled contract; the conformance suite checks
// the same property end-to-end through a disabled experiment.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	err := errors.New("x")
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(KindTransfer, "transfer")
		tr.AttrUint(id, "from", 3)
		tr.AttrInt(id, "bytes", 4096)
		tr.AttrFloat(id, "acc", 0.5)
		tr.AttrErr(id, "error", err)
		tr.EndWith(id, "status", "delivered")
		tr.SetScope(id)
		tr.End(id)
		tr.Finish(0)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v times per op, want 0", allocs)
	}
}

func TestCanonicalBytesIdentity(t *testing.T) {
	a, err := buildSample().CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSample().CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical builds produced different canonical bytes:\n%s\n---\n%s", a, b)
	}
	if !bytes.HasPrefix(a, []byte(canonicalHeader)) {
		t.Fatalf("canonical bytes missing header: %q", a[:32])
	}
}

func TestWriteCSVParses(t *testing.T) {
	data, err := buildSample().CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimPrefix(string(data), canonicalHeader+"\n")
	rd := csv.NewReader(strings.NewReader(body))
	rd.FieldsPerRecord = -1
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("CSV export does not parse: %v", err)
	}
	meta, spans := 0, 0
	for _, rec := range recs {
		switch rec[0] {
		case "meta":
			meta++
			if len(rec) != 3 {
				t.Fatalf("meta record has %d fields: %v", len(rec), rec)
			}
		case "span":
			spans++
			if len(rec) != 9 {
				t.Fatalf("span record has %d fields: %v", len(rec), rec)
			}
		default:
			t.Fatalf("unknown record type %q", rec[0])
		}
	}
	if meta != 2 || spans != 5 {
		t.Fatalf("meta=%d spans=%d, want 2/5", meta, spans)
	}
}

func TestWriteChromeJSONIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.OtherData["seed"] != "42" || doc.OtherData["strategy"] != "fedavg" {
		t.Fatalf("metadata missing: %v", doc.OtherData)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("phase %q, want X", ev.Ph)
		}
		if ev.Dur < 0 {
			t.Fatalf("negative duration %v", ev.Dur)
		}
	}
	train := doc.TraceEvents[1]
	if train.Cat != KindTrain || train.TID != 7 || train.TS != 1.5e6 || train.Dur != 0.75e6 {
		t.Fatalf("train event wrong: %+v", train)
	}
	if train.Args["parent"] != "1" || train.Args["agent"] != "7" {
		t.Fatalf("train args wrong: %v", train.Args)
	}
}

func TestExportNilTrace(t *testing.T) {
	var tr *Trace
	if err := tr.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("nil trace CSV export should error")
	}
	if err := tr.WriteChromeJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("nil trace chrome export should error")
	}
}

func TestCSVQuoting(t *testing.T) {
	for in, want := range map[string]string{
		"plain":      "plain",
		"a,b":        `"a,b"`,
		`say "hi"`:   `"say ""hi"""`,
		"line\nfeed": "\"line\nfeed\"",
	} {
		if got := csvQuote(in); got != want {
			t.Fatalf("csvQuote(%q) = %q, want %q", in, got, want)
		}
	}
}
