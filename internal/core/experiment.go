package core

import (
	"errors"
	"fmt"
	"os"
	"time"

	"roadrunner/internal/channel"
	"roadrunner/internal/comm"
	"roadrunner/internal/dataset"
	"roadrunner/internal/faults"
	"roadrunner/internal/hw"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
	"roadrunner/internal/trace"
)

// Experiment is one fully wired simulation run: agents, traces, channels,
// data, models, hardware units, metrics, and a learning strategy. Create it
// with New, run it once with Run.
type Experiment struct {
	cfg   Config
	strat strategy.Strategy

	engine   *sim.Engine
	registry *sim.Registry
	replayer *mobility.Replayer
	network  *comm.Network
	recorder *metrics.Recorder
	injector *faults.Injector

	server   sim.AgentID
	vehicles []sim.AgentID // vehicles[i] replays trace i
	rsus     []sim.AgentID
	rsuPos   []roadnet.Point

	data    map[sim.AgentID][]ml.Example
	testSet []ml.Example
	models  map[sim.AgentID]*ml.Snapshot
	units   map[sim.AgentID]*hw.Unit

	trainFLOPs float64
	pending    map[sim.AgentID][]pendingTrain // outstanding training completions (one per busy HU slot)

	spatial *mobility.SpatialIndex
	tracker *mobility.EncounterTracker
	tickCur *mobility.Cursor

	// onState is the flat per-spatial-slot power state (vehicles first,
	// then RSUs), maintained by the power-change listener so the tick loop
	// reads a contiguous bool array instead of chasing agent pointers. It
	// is initialized from the registry after construction-time transitions
	// have already fired.
	onState []bool

	// agentIdx maps every positioned agent to its role and slot, so the
	// comm layer's per-message position lookups are O(1) instead of
	// scanning the RSU and vehicle lists. The cloud server is absent: it
	// has no position.
	agentIdx map[sim.AgentID]agentRef

	stratRNG *sim.RNG
	trainRNG *sim.RNG

	// tracer is nil unless cfg.Trace: the disabled tracer costs one nil
	// check per emission point and zero allocations, keeping the traced
	// and untraced hot paths byte-identical in recorded results.
	tracer *trace.Tracer

	// chanLog is the channel-trace recorder, nil unless cfg.ChannelRecord.
	chanLog *channel.Log

	accCache *snapshotAccCache
	horizon  sim.Time
	ran      bool
}

// pendingTrain is one outstanding training occupation: the completion
// event (cancelable on shutdown) and its trace span, so an abort can
// close the span with the right status.
type pendingTrain struct {
	ev   sim.Event
	span trace.SpanID
}

// Result bundles an experiment run's outputs.
type Result struct {
	// Metrics holds all series and counters recorded during the run.
	Metrics *metrics.Recorder
	// Comm maps channel names to their volume statistics.
	Comm map[string]comm.Stats
	// End is the simulated instant the run finished.
	End sim.Time
	// Wall is the host time the run took.
	Wall time.Duration
	// FinalAccuracy is the last recorded global accuracy (NaN-free: zero
	// when never recorded).
	FinalAccuracy float64
	// EventsProcessed counts executed simulation events.
	EventsProcessed uint64
	// Trace is the run's span trace, nil unless Config.Trace was set. It
	// is excluded from CanonicalBytes — the trace has its own canonical
	// encoding (trace.Trace.CanonicalBytes) with its own byte-identity
	// regression tests.
	Trace *trace.Trace
	// ChannelLog is the run's channel trace, nil unless
	// Config.ChannelRecord was set. Like Trace it is excluded from
	// CanonicalBytes; its canonical form is the chantrace CSV
	// (channel.Log.WriteCSV), which the oracle fitter consumes.
	ChannelLog *channel.Log
}

// New builds an experiment from the configuration and strategy. All module
// randomness is forked from cfg.Seed, so (cfg, strategy) fully determines
// the run.
func New(cfg Config, strat strategy.Strategy) (*Experiment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if strat == nil {
		return nil, fmt.Errorf("core: nil strategy")
	}
	root := sim.NewRNG(cfg.Seed)

	e := &Experiment{
		cfg:      cfg,
		strat:    strat,
		engine:   sim.NewEngine(),
		recorder: metrics.NewRecorder(),
		data:     make(map[sim.AgentID][]ml.Example),
		models:   make(map[sim.AgentID]*ml.Snapshot),
		units:    make(map[sim.AgentID]*hw.Unit),
		pending:  make(map[sim.AgentID][]pendingTrain),
		tracker:  mobility.NewEncounterTracker(),
		stratRNG: root.Fork("strategy"),
		trainRNG: root.Fork("train"),
		accCache: newSnapshotAccCache(accCacheLimit),
	}
	e.registry = sim.NewRegistry(e.engine)
	if cfg.Trace {
		// The tracer reads the engine's virtual clock and consumes no
		// randomness, so traced and untraced runs are byte-identical in
		// every recorded result. Metadata is limited to run identity —
		// result-invariant knobs like EvalWorkers must not appear, or
		// trace byte-identity across worker counts would break.
		e.tracer = trace.New(e.engine,
			trace.Attr{Key: "seed", Value: fmt.Sprintf("%d", cfg.Seed)},
			trace.Attr{Key: "strategy", Value: strat.Name()})
	}

	traces, graph, err := e.loadMobility(root)
	if err != nil {
		return nil, err
	}
	e.replayer, err = mobility.NewReplayer(traces)
	if err != nil {
		return nil, err
	}
	e.horizon = traces.Horizon
	if cfg.Horizon > 0 {
		h := sim.Time(0).Add(cfg.Horizon)
		if h < e.horizon {
			e.horizon = h
		}
	}

	if err := e.createAgents(graph, root); err != nil {
		return nil, err
	}
	if err := e.createNetwork(root); err != nil {
		return nil, err
	}
	if err := e.prepareData(root); err != nil {
		return nil, err
	}
	if err := e.prepareModels(root); err != nil {
		return nil, err
	}
	if err := e.schedulePower(); err != nil {
		return nil, err
	}
	e.registry.OnPowerChange(e.handlePowerChange)

	if cfg.Faults != nil && !cfg.Faults.Empty() {
		// The fault stream forks last so fault-free runs consume exactly
		// the root-RNG sequence they did before fault injection existed.
		e.injector, err = faults.NewInjector(*cfg.Faults, faults.Deps{
			Engine:   e.engine,
			Registry: e.registry,
			Network:  e.network,
			Recorder: e.recorder,
			Position: e.positionOf,
			RNG:      root.Fork("faults"),
			Tracer:   e.tracer,
		})
		if err != nil {
			return nil, err
		}
		if err := e.injector.Install(); err != nil {
			return nil, err
		}
	}

	// The channel stream forks unconditionally — after the conditional
	// "faults" fork, and root is never read again below — so enabling a
	// channel model cannot shift any other module's stream, and fault-free
	// analytic runs consume exactly the root-RNG sequence they did before
	// channel models existed.
	chRNG := root.Fork("channel")
	chModel, err := channel.New(cfg.Comm.Channel)
	if err != nil {
		return nil, err
	}
	if chModel != nil {
		if err := e.network.SetChannel(chModel, chRNG); err != nil {
			return nil, err
		}
	}
	if cfg.ChannelRecord {
		e.chanLog = channel.NewLog()
		e.network.SetChannelRecorder(e.chanLog)
	}

	cell := cfg.Comm.V2X.RangeM
	e.spatial, err = mobility.NewSpatialIndex(cell)
	if err != nil {
		return nil, err
	}
	if err := e.initTickState(graph); err != nil {
		return nil, err
	}
	return e, nil
}

// initTickState fixes the spatial grid to the world bounding box and seeds
// the per-slot power-state array. It must run last in New: the power-change
// listener only observes transitions after its registration, so the array
// is seeded from the registry once all construction-time transitions have
// been applied.
func (e *Experiment) initTickState(graph *roadnet.Graph) error {
	min, max, ok := roadnet.Point{}, roadnet.Point{}, false
	if graph != nil {
		min, max, ok = graph.Bounds()
	}
	if !ok {
		// Trace-file runs have no road network; the recorded samples bound
		// every interpolated position instead.
		min, max, ok = e.replayer.TraceSet().Bounds()
	}
	for _, p := range e.rsuPos {
		if !ok {
			min, max, ok = p, p, true
			continue
		}
		if p.X < min.X {
			min.X = p.X
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	if err := e.spatial.SetBounds(min, max); err != nil {
		return err
	}
	total := len(e.vehicles) + len(e.rsus)
	e.spatial.Reset(total)
	e.tickCur = e.replayer.NewCursor()
	e.onState = make([]bool, total)
	for i, v := range e.vehicles {
		a := e.registry.Get(v)
		e.onState[i] = a != nil && a.On()
	}
	for j, r := range e.rsus {
		a := e.registry.Get(r)
		e.onState[len(e.vehicles)+j] = a != nil && a.On()
	}
	return nil
}

func (e *Experiment) loadMobility(root *sim.RNG) (*mobility.TraceSet, *roadnet.Graph, error) {
	if e.cfg.TraceFile != "" {
		f, err := os.Open(e.cfg.TraceFile)
		if err != nil {
			return nil, nil, fmt.Errorf("core: open trace file: %w", err)
		}
		defer func() { _ = f.Close() }()
		traces, err := mobility.ReadCSV(f)
		if err != nil {
			return nil, nil, fmt.Errorf("core: read trace file: %w", err)
		}
		return traces, nil, nil
	}
	graph, err := roadnet.Generate(e.cfg.Grid, root.Fork("roadnet"))
	if err != nil {
		return nil, nil, err
	}
	traces, err := mobility.Generate(e.cfg.Fleet, graph, root.Fork("mobility"))
	if err != nil {
		return nil, nil, err
	}
	return traces, graph, nil
}

// agentRef locates an agent in the experiment's per-kind slices: the
// vehicle trace index, or the RSU slot.
type agentRef struct {
	vehicle bool
	idx     int
}

func (e *Experiment) createAgents(graph *roadnet.Graph, root *sim.RNG) error {
	e.agentIdx = make(map[sim.AgentID]agentRef)
	e.server = e.registry.Add(sim.KindCloudServer).ID
	srvUnit, err := hw.NewUnit(e.cfg.ServerHW)
	if err != nil {
		return err
	}
	e.units[e.server] = srvUnit

	n := e.replayer.NumVehicles()
	e.vehicles = make([]sim.AgentID, n)
	for i := 0; i < n; i++ {
		a := e.registry.Add(sim.KindVehicle)
		e.vehicles[i] = a.ID
		e.agentIdx[a.ID] = agentRef{vehicle: true, idx: i}
		unit, err := hw.NewUnit(e.cfg.OBU)
		if err != nil {
			return err
		}
		e.units[a.ID] = unit
	}

	if e.cfg.RSUCount > 0 {
		rng := root.Fork("rsu")
		for i := 0; i < e.cfg.RSUCount; i++ {
			a := e.registry.Add(sim.KindRSU)
			e.rsus = append(e.rsus, a.ID)
			e.agentIdx[a.ID] = agentRef{idx: i}
			unit, err := hw.NewUnit(e.cfg.RSUHW)
			if err != nil {
				return err
			}
			e.units[a.ID] = unit
			e.rsuPos = append(e.rsuPos, e.rsuPosition(graph, rng, i))
		}
	}
	return nil
}

// rsuPosition picks an RSU site: a random intersection when a road network
// is available, otherwise a random vehicle's starting position.
func (e *Experiment) rsuPosition(graph *roadnet.Graph, rng *sim.RNG, i int) roadnet.Point {
	if graph != nil && graph.NumNodes() > 0 {
		return graph.Pos(roadnet.NodeID(rng.Intn(graph.NumNodes())))
	}
	v := rng.Intn(e.replayer.NumVehicles())
	pos, _, err := e.replayer.At(v, 0)
	if err != nil {
		return roadnet.Point{}
	}
	return pos
}

func (e *Experiment) createNetwork(root *sim.RNG) error {
	position := func(id sim.AgentID) (roadnet.Point, bool) {
		return e.positionOf(id)
	}
	network, err := comm.NewNetwork(e.engine, e.registry, e.cfg.Comm, position, root.Fork("comm"))
	if err != nil {
		return err
	}
	network.OnDeliver(e.dispatchDelivery)
	network.OnFail(e.dispatchFailure)
	network.SetTracer(e.tracer)
	e.network = network
	return nil
}

// positionOf resolves any agent's current position; the cloud server (and
// any unknown agent) has none.
func (e *Experiment) positionOf(id sim.AgentID) (roadnet.Point, bool) {
	ref, ok := e.agentIdx[id]
	if !ok {
		return roadnet.Point{}, false
	}
	if !ref.vehicle {
		return e.rsuPos[ref.idx], true
	}
	pos, _, err := e.replayer.At(ref.idx, e.engine.Now())
	if err != nil {
		return roadnet.Point{}, false
	}
	return pos, true
}

func (e *Experiment) prepareData(root *sim.RNG) error {
	gen, err := dataset.NewGenerator(e.cfg.Data, root.Fork("data-proto"))
	if err != nil {
		return err
	}
	drawRNG := root.Fork("data-draw")
	poolSize := len(e.vehicles) * e.cfg.Partition.PerAgent
	pool, err := gen.Balanced(poolSize, drawRNG)
	if err != nil {
		return err
	}
	parts, err := dataset.Partition(pool, len(e.vehicles), e.cfg.Partition, root.Fork("partition"))
	if err != nil {
		return err
	}
	for i, v := range e.vehicles {
		e.data[v] = parts[i]
	}
	e.testSet, err = gen.Balanced(e.cfg.TestSamples, drawRNG)
	if err != nil {
		return err
	}
	return nil
}

func (e *Experiment) prepareModels(root *sim.RNG) error {
	net, err := ml.NewNetwork(e.cfg.Model, root.Fork("init-weights"))
	if err != nil {
		return err
	}
	e.models[e.server] = net.Snapshot()
	flops, err := e.cfg.Model.TrainFLOPs()
	if err != nil {
		return err
	}
	e.trainFLOPs = flops
	return nil
}

// schedulePower turns the server and RSUs on at t=0 and replays every
// vehicle's ignition transitions as simulation events.
func (e *Experiment) schedulePower() error {
	if err := e.registry.SetPower(e.server, true); err != nil {
		return err
	}
	for _, r := range e.rsus {
		if err := e.registry.SetPower(r, true); err != nil {
			return err
		}
	}
	for i, v := range e.vehicles {
		transitions, err := e.replayer.Transitions(i)
		if err != nil {
			return err
		}
		for _, tr := range transitions {
			v, on := v, tr.On
			if tr.T == 0 {
				if err := e.registry.SetPower(v, on); err != nil {
					return err
				}
				continue
			}
			if _, err := e.engine.Schedule(tr.T, func() {
				if err := e.registry.SetPower(v, on); err != nil {
					e.Logf("core: set power %v: %v", v, err)
				}
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// handlePowerChange aborts pending training of agents that shut off and
// forwards the transition to the strategy.
func (e *Experiment) handlePowerChange(id sim.AgentID, on bool) {
	if ref, ok := e.agentIdx[id]; ok && e.onState != nil {
		slot := ref.idx
		if !ref.vehicle {
			slot += len(e.vehicles)
		}
		e.onState[slot] = on
	}
	if !on {
		if tasks, ok := e.pending[id]; ok {
			delete(e.pending, id)
			for _, p := range tasks {
				p.ev.Cancel()
				e.tracer.EndWith(p.span, "status", "aborted")
				e.strat.OnTrainAborted(e, id)
			}
		}
	}
	e.strat.OnPowerChange(e, id, on)
}

// dispatchDelivery routes a successful transfer to the strategy.
func (e *Experiment) dispatchDelivery(msg *comm.Message) {
	p, ok := msg.Payload.(strategy.Payload)
	if !ok {
		e.Logf("core: delivery %d carries unexpected payload type", msg.ID)
		return
	}
	e.countDelivered(msg)
	e.strat.OnDeliver(e, msg, p)
}

func (e *Experiment) dispatchFailure(msg *comm.Message, reason error) {
	// Fault-attributed failures are counted regardless of payload type, so
	// the per-fault counters stay conserved against comm.Stats.
	var faultKind string
	switch {
	case errors.Is(reason, comm.ErrBlackout):
		e.recorder.Add(metrics.CounterFaultBlackoutFails, 1)
		faultKind = "blackout"
	case errors.Is(reason, comm.ErrBurstDropped):
		e.recorder.Add(metrics.CounterFaultBurstDrops, 1)
		faultKind = "burst"
	}
	if faultKind != "" {
		// An instant span ties the fault counter increment to the trace
		// timeline; the transfer span itself was closed by the comm layer.
		span := e.tracer.Begin(trace.KindTransfer, "fault-drop")
		e.tracer.Attr(span, "fault", faultKind)
		e.tracer.AttrUint(span, "msg", uint64(msg.ID))
		e.tracer.AttrErr(span, "error", reason)
		e.tracer.End(span)
	}
	p, ok := msg.Payload.(strategy.Payload)
	if !ok {
		return
	}
	e.strat.OnSendFailed(e, msg, p, reason)
}

func (e *Experiment) countDelivered(msg *comm.Message) {
	switch msg.Kind {
	case comm.KindV2C:
		e.recorder.Add(metrics.CounterV2CBytes, float64(msg.SizeBytes))
	case comm.KindV2X:
		e.recorder.Add(metrics.CounterV2XBytes, float64(msg.SizeBytes))
	}
}

// tick runs the periodic core-simulator pass: update the encounter state
// from current positions and notify the strategy of new encounters. The
// pass is batched over contiguous per-slot arrays — cursor-based trace
// replay, the listener-maintained onState array, and incremental spatial
// updates — so its cost is O(fleet) with no per-agent pointer chasing, no
// index rebuild, and no steady-state allocation.
func (e *Experiment) tick() {
	now := e.engine.Now()
	tickSpan := e.tracer.Begin(trace.KindTick, "tick")
	nVeh := len(e.vehicles)
	onCount := 0
	for i := 0; i < nVeh; i++ {
		pos, _, err := e.replayer.AtCursor(e.tickCur, i, now)
		// On a replay error the slot goes inactive, so a stale position can
		// never produce a phantom encounter.
		active := err == nil && e.onState[i]
		if err := e.spatial.Update(i, pos, active); err != nil {
			e.Logf("core: spatial update: %v", err)
			e.tracer.EndWith(tickSpan, "status", "error")
			return
		}
		if active {
			onCount++
		}
	}
	for j := range e.rsus {
		slot := nVeh + j
		if err := e.spatial.Update(slot, e.rsuPos[j], e.onState[slot]); err != nil {
			e.Logf("core: spatial update: %v", err)
			e.tracer.EndWith(tickSpan, "status", "error")
			return
		}
	}
	pairs := e.spatial.PairsWithin(e.cfg.Comm.V2X.RangeM)
	begins, _ := e.tracker.Update(pairs)
	if err := e.recorder.Record(metrics.SeriesVehiclesOn, now, float64(onCount)); err != nil {
		e.Logf("core: metrics: %v", err)
	}
	e.tracer.AttrInt(tickSpan, "on", int64(onCount))
	e.tracer.AttrInt(tickSpan, "encounters", int64(len(begins)))
	e.tracer.End(tickSpan)
	for _, p := range begins {
		a, b := e.indexToAgent(p.A), e.indexToAgent(p.B)
		e.strat.OnEncounter(e, a, b)
	}
	next := now.Add(e.cfg.TickInterval)
	if next > e.horizon {
		return
	}
	if _, err := e.engine.Schedule(next, e.tick); err != nil {
		e.Logf("core: schedule tick: %v", err)
	}
}

// indexToAgent maps a spatial-index slot back to an agent ID.
func (e *Experiment) indexToAgent(i int) sim.AgentID {
	if i < len(e.vehicles) {
		return e.vehicles[i]
	}
	return e.rsus[i-len(e.vehicles)]
}

// Run executes the experiment once and returns its results. A second call
// is an error.
func (e *Experiment) Run() (*Result, error) {
	if e.ran {
		return nil, fmt.Errorf("core: experiment already ran")
	}
	e.ran = true
	// Wall-clock here measures harness cost only; no simulated quantity
	// depends on it.
	start := time.Now() //roadlint:allow wallclock harness timing, reported as Result.Wall

	if _, err := e.engine.Schedule(0, e.tick); err != nil {
		return nil, err
	}
	if err := e.strat.Start(e); err != nil {
		return nil, fmt.Errorf("core: strategy start: %w", err)
	}
	if err := e.engine.Run(e.horizon); err != nil && err != sim.ErrStopped {
		return nil, err
	}
	e.finalizeCounters()
	// Spans still open at the horizon (in-flight trains, unclosed fault
	// windows) are truncated at the final instant so exports never carry
	// dangling intervals.
	e.tracer.Finish(e.engine.Now())

	res := &Result{
		Metrics:         e.recorder,
		Comm:            map[string]comm.Stats{},
		End:             e.engine.Now(),
		Wall:            time.Since(start), //roadlint:allow wallclock harness timing, reported as Result.Wall
		EventsProcessed: e.engine.Processed(),
		Trace:           e.tracer.Snapshot(),
		ChannelLog:      e.chanLog,
	}
	for _, k := range comm.Kinds() {
		res.Comm[k.String()] = e.network.StatsFor(k)
	}
	if s := e.recorder.Series(metrics.SeriesAccuracy); s != nil {
		if last, ok := s.Last(); ok {
			res.FinalAccuracy = last.Value
		}
	}
	return res, nil
}

// finalizeCounters folds per-unit compute accounting into the recorder.
func (e *Experiment) finalizeCounters() {
	var vehicleBusy, vehicleTasks float64
	for _, v := range e.vehicles {
		vehicleBusy += e.units[v].BusySeconds()
		vehicleTasks += float64(e.units[v].TasksRun())
	}
	e.recorder.Add("vehicle_compute_seconds", vehicleBusy)
	e.recorder.Add("server_compute_seconds", e.units[e.server].BusySeconds())
	_ = vehicleTasks // already tracked via CounterTrainTasks
}

// Recorder exposes the experiment's metrics (also available via Result).
func (e *Experiment) Recorder() *metrics.Recorder { return e.recorder }

// Network exposes the communication module for post-run inspection.
func (e *Experiment) Network() *comm.Network { return e.network }

// Horizon returns the run's simulated-time cap.
func (e *Experiment) Horizon() sim.Time { return e.horizon }
