package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"roadrunner/internal/metrics"
	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Config
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped config invalid: %v", err)
	}
	if got.Seed != cfg.Seed || got.TickInterval != cfg.TickInterval {
		t.Fatal("scalar fields lost")
	}
	if got.Grid != cfg.Grid {
		t.Fatalf("grid lost: %+v vs %+v", got.Grid, cfg.Grid)
	}
	if got.Fleet != cfg.Fleet {
		t.Fatalf("fleet lost: %+v vs %+v", got.Fleet, cfg.Fleet)
	}
	if got.Comm != cfg.Comm {
		t.Fatal("comm params lost")
	}
	if got.Data != cfg.Data || got.Partition != cfg.Partition {
		t.Fatal("data config lost")
	}
	if !got.Model.Equal(&cfg.Model) {
		t.Fatal("model spec lost")
	}
	if got.Train != cfg.Train {
		t.Fatal("train config lost")
	}
	if got.OBU != cfg.OBU || got.ServerHW != cfg.ServerHW {
		t.Fatal("hw profiles lost")
	}
}

// TestExperimentFromTraceFile exercises the paper's primary input path:
// spatial dynamics entering the core simulator "statically, e.g. as a file
// of GPS traces".
func TestExperimentFromTraceFile(t *testing.T) {
	// Generate traces and write them to disk.
	small := SmallConfig()
	root := sim.NewRNG(99)
	graph, err := roadnet.Generate(small.Grid, root.Fork("roadnet"))
	if err != nil {
		t.Fatal(err)
	}
	traces, err := mobility.Generate(small.Fleet, graph, root.Fork("mobility"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mobility.WriteCSV(f, traces); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := SmallConfig()
	cfg.TraceFile = path
	res := runExperiment(t, cfg, fastFedAvg(t, 4))
	if res.Metrics.Counter(metrics.CounterRounds) != 4 {
		t.Fatalf("rounds = %v", res.Metrics.Counter(metrics.CounterRounds))
	}
	if res.FinalAccuracy <= 0 {
		t.Fatalf("final accuracy = %v", res.FinalAccuracy)
	}
}

func TestExperimentTraceFileMissing(t *testing.T) {
	cfg := SmallConfig()
	cfg.TraceFile = filepath.Join(t.TempDir(), "nope.csv")
	if _, err := New(cfg, fastFedAvg(t, 2)); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestExperimentTraceFileGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	cfg.TraceFile = path
	if _, err := New(cfg, fastFedAvg(t, 2)); err == nil {
		t.Fatal("garbage trace file accepted")
	}
}

// TestRSUAssistedIntegration runs the RSU strategy through the full
// simulator: wired distribution, V2X collection from passing vehicles,
// zero V2C.
func TestRSUAssistedIntegration(t *testing.T) {
	cfg := SmallConfig()
	cfg.RSUCount = 6
	s, err := strategy.NewRSUAssisted(strategy.RSUAssistedConfig{
		Rounds:          6,
		RoundDuration:   150,
		ServerOverhead:  10,
		ExchangeTimeout: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runExperiment(t, cfg, s)
	if res.Comm["v2c"].MessagesSent != 0 {
		t.Fatalf("RSU strategy used V2C: %+v", res.Comm["v2c"])
	}
	if res.Comm["wired"].MessagesDelivered == 0 {
		t.Fatal("no wired backhaul traffic")
	}
	ex := res.Metrics.Series(metrics.SeriesRoundExchanges)
	if ex == nil || ex.Len() != 6 {
		t.Fatalf("exchange series = %v", ex)
	}
	total := 0.0
	for _, p := range ex.Points {
		total += p.Value
	}
	if total == 0 {
		t.Fatal("no vehicle ever exchanged with an RSU over 6 rounds")
	}
	if res.Comm["v2x"].MessagesDelivered == 0 {
		t.Fatal("no V2X traffic despite exchanges")
	}
}

func TestRSUAssistedNeedsRSUs(t *testing.T) {
	cfg := SmallConfig() // RSUCount = 0
	s, err := strategy.NewRSUAssisted(strategy.DefaultRSUAssistedConfig())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(); err == nil {
		t.Fatal("RSU strategy ran without RSUs")
	}
}

// TestHighDropChannelStillProgresses injects heavy stochastic channel
// failure; rounds must still complete (with fewer contributions), never
// wedge.
func TestHighDropChannelStillProgresses(t *testing.T) {
	cfg := SmallConfig()
	cfg.Comm.V2C.DropProb = 0.4
	cfg.Comm.V2X.DropProb = 0.4
	res := runExperiment(t, cfg, fastFedAvg(t, 8))
	if got := res.Metrics.Counter(metrics.CounterRounds); got != 8 {
		t.Fatalf("completed %v rounds under heavy drops, want 8", got)
	}
	if res.Comm["v2c"].MessagesFailed == 0 {
		t.Fatal("no failures despite 40% drop probability")
	}
}

// TestExtremeChurnStillProgresses: vehicles turn off after almost every
// trip; the strategies must survive the churn.
func TestExtremeChurnStillProgresses(t *testing.T) {
	cfg := SmallConfig()
	cfg.Fleet.OffWhenParkedProb = 0.95
	cfg.Fleet.DwellMax = 600
	res := runExperiment(t, cfg, fastOpp(t, 6))
	if got := res.Metrics.Counter(metrics.CounterRounds); got != 6 {
		t.Fatalf("completed %v rounds under extreme churn, want 6", got)
	}
}

// TestTinyV2XRange: with a 10 m radio, OPP degenerates to plain FL
// (encounters are essentially impossible).
func TestTinyV2XRangeYieldsNoExchanges(t *testing.T) {
	cfg := SmallConfig()
	cfg.Comm.V2X.RangeM = 10
	res := runExperiment(t, cfg, fastOpp(t, 5))
	ex := res.Metrics.Series(metrics.SeriesRoundExchanges)
	if ex == nil {
		t.Fatal("missing exchange series")
	}
	if ex.Max() > 2 {
		t.Fatalf("10 m V2X range produced %v exchanges in a round", ex.Max())
	}
	if got := res.Metrics.Counter(metrics.CounterRounds); got != 5 {
		t.Fatalf("rounds = %v", got)
	}
}

func TestPrintConfigTemplateIsValid(t *testing.T) {
	// The cmd/roadrunner -print-config template must parse back.
	raw, err := json.MarshalIndent(DefaultConfig(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("template invalid: %v", err)
	}
}
