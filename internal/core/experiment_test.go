package core

import (
	"math"
	"testing"

	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
)

// fastFedAvg returns a BASE strategy scaled for tests.
func fastFedAvg(t *testing.T, rounds int) *strategy.FederatedAveraging {
	t.Helper()
	s, err := strategy.NewFederatedAveraging(strategy.FedAvgConfig{
		Rounds:           rounds,
		VehiclesPerRound: 4,
		RoundDuration:    30,
		ServerOverhead:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fastOpp(t *testing.T, rounds int) *strategy.Opportunistic {
	t.Helper()
	s, err := strategy.NewOpportunistic(strategy.OppConfig{
		Rounds:          rounds,
		Reporters:       4,
		RoundDuration:   120,
		ServerOverhead:  10,
		ExchangeTimeout: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runExperiment(t *testing.T, cfg Config, s strategy.Strategy) *Result {
	t.Helper()
	exp, err := New(cfg, s)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestFedAvgExperimentCompletesRounds(t *testing.T) {
	cfg := SmallConfig()
	res := runExperiment(t, cfg, fastFedAvg(t, 8))
	if got := res.Metrics.Counter(metrics.CounterRounds); got != 8 {
		t.Fatalf("rounds completed = %v, want 8", got)
	}
	acc := res.Metrics.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() != 8 {
		t.Fatalf("accuracy series has %v points, want 8", acc)
	}
	if res.FinalAccuracy <= 0 || res.FinalAccuracy > 1 {
		t.Fatalf("final accuracy = %v", res.FinalAccuracy)
	}
	if res.EventsProcessed == 0 {
		t.Fatal("no events processed")
	}
}

func TestFedAvgLearns(t *testing.T) {
	cfg := SmallConfig()
	res := runExperiment(t, cfg, fastFedAvg(t, 15))
	acc := res.Metrics.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() == 0 {
		t.Fatal("no accuracy recorded")
	}
	chance := 1.0 / float64(cfg.Data.Classes)
	if res.FinalAccuracy < chance+0.1 {
		t.Fatalf("final accuracy %v barely above chance %v after 15 rounds", res.FinalAccuracy, chance)
	}
}

func TestFedAvgUsesV2COnly(t *testing.T) {
	res := runExperiment(t, SmallConfig(), fastFedAvg(t, 5))
	if res.Comm["v2c"].MessagesDelivered == 0 {
		t.Fatal("no V2C traffic in FL")
	}
	if res.Comm["v2x"].MessagesSent != 0 {
		t.Fatalf("FL used V2X: %+v", res.Comm["v2x"])
	}
}

func TestExperimentDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := SmallConfig()
		cfg.Seed = 77
		return runExperiment(t, cfg, fastFedAvg(t, 6))
	}
	a, b := run(), run()
	sa := a.Metrics.Series(metrics.SeriesAccuracy)
	sb := b.Metrics.Series(metrics.SeriesAccuracy)
	if sa.Len() != sb.Len() {
		t.Fatalf("accuracy series lengths differ: %d vs %d", sa.Len(), sb.Len())
	}
	for i := range sa.Points {
		if sa.Points[i] != sb.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v (determinism broken)", i, sa.Points[i], sb.Points[i])
		}
	}
	if a.Comm["v2c"] != b.Comm["v2c"] {
		t.Fatalf("comm stats differ: %+v vs %+v", a.Comm["v2c"], b.Comm["v2c"])
	}
	if a.End != b.End {
		t.Fatalf("end times differ: %v vs %v", a.End, b.End)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) *Result {
		cfg := SmallConfig()
		cfg.Seed = seed
		return runExperiment(t, cfg, fastFedAvg(t, 6))
	}
	a, b := run(1), run(2)
	if a.Comm["v2c"] == b.Comm["v2c"] && a.FinalAccuracy == b.FinalAccuracy {
		t.Fatal("different seeds produced identical runs; randomness not wired through")
	}
}

func TestOppCollectsV2XExchanges(t *testing.T) {
	cfg := SmallConfig()
	res := runExperiment(t, cfg, fastOpp(t, 8))
	ex := res.Metrics.Series(metrics.SeriesRoundExchanges)
	if ex == nil || ex.Len() != 8 {
		t.Fatalf("exchange series = %v, want 8 points", ex)
	}
	total := 0.0
	for _, p := range ex.Points {
		if p.Value < 0 {
			t.Fatalf("negative exchange count %v", p.Value)
		}
		total += p.Value
	}
	if total == 0 {
		t.Fatal("no V2X exchanges over 8 OPP rounds; opportunistic path dead")
	}
	if res.Comm["v2x"].MessagesDelivered == 0 {
		t.Fatal("no V2X messages delivered")
	}
}

func TestOppContributionsExceedReporters(t *testing.T) {
	cfg := SmallConfig()
	res := runExperiment(t, cfg, fastOpp(t, 8))
	contrib := res.Metrics.Series(metrics.SeriesRoundContributions)
	ex := res.Metrics.Series(metrics.SeriesRoundExchanges)
	if contrib == nil || ex == nil {
		t.Fatal("missing series")
	}
	// N = R·(N_R+1): total contributions must exceed the reporter count
	// whenever exchanges happened.
	if ex.Mean() > 0 && contrib.Mean() <= 0 {
		t.Fatalf("exchanges %v but contributions %v", ex.Mean(), contrib.Mean())
	}
	for i := range contrib.Points {
		if contrib.Points[i].Value > 0 && ex.Points[i].Value > contrib.Points[i].Value {
			t.Fatalf("round %d: %v exchanges but only %v contributions",
				i, ex.Points[i].Value, contrib.Points[i].Value)
		}
	}
}

func TestOppSameV2CBudgetAsBase(t *testing.T) {
	cfg := SmallConfig()
	base := runExperiment(t, cfg, fastFedAvg(t, 6))
	cfg2 := SmallConfig()
	opp := runExperiment(t, cfg2, fastOpp(t, 6))
	// Equal rounds and equal participants per round: V2C message counts
	// must be of the same order (OPP may lose a few to churn).
	bMsg := base.Comm["v2c"].MessagesSent
	oMsg := opp.Comm["v2c"].MessagesSent
	if oMsg > bMsg*2 || bMsg > oMsg*2 {
		t.Fatalf("V2C budget mismatch: base %d msgs vs opp %d msgs", bMsg, oMsg)
	}
}

func TestGossipRunsWithoutServerTraffic(t *testing.T) {
	cfg := SmallConfig()
	g, err := strategy.NewGossip(strategy.GossipConfig{
		Duration:         1500,
		ExchangeCooldown: 45,
		EvalInterval:     300,
		EvalSample:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runExperiment(t, cfg, g)
	if res.Comm["v2c"].MessagesSent != 0 {
		t.Fatalf("gossip used V2C: %+v", res.Comm["v2c"])
	}
	acc := res.Metrics.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() == 0 {
		t.Fatal("gossip recorded no accuracy")
	}
	if res.Metrics.Counter(metrics.CounterTrainTasks) == 0 {
		t.Fatal("gossip trained nothing")
	}
}

func TestCentralizedUploadsRawData(t *testing.T) {
	cfg := SmallConfig()
	c, err := strategy.NewCentralized(strategy.CentralizedConfig{
		Rounds:              5,
		RoundDuration:       120,
		UploadCheckInterval: 30,
		ServerEpochs:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runExperiment(t, cfg, c)
	v2c := res.Comm["v2c"]
	if v2c.BytesDelivered == 0 {
		t.Fatal("centralized delivered no data")
	}
	// Raw data volume should dwarf a model-exchange round: each vehicle
	// ships PerAgent examples of dim floats.
	perVehicle := int64(cfg.Partition.PerAgent * (4*cfg.Data.Dim() + 8))
	if v2c.BytesDelivered < perVehicle*int64(cfg.Fleet.Vehicles)/2 {
		t.Fatalf("delivered %d bytes, expected at least half the fleet's raw data (%d/vehicle)",
			v2c.BytesDelivered, perVehicle)
	}
	acc := res.Metrics.Series(metrics.SeriesAccuracy)
	if acc == nil || acc.Len() == 0 {
		t.Fatal("centralized recorded no accuracy")
	}
}

func TestHybridSyncsOverV2C(t *testing.T) {
	cfg := SmallConfig()
	h, err := strategy.NewHybrid(strategy.HybridConfig{
		Gossip: strategy.GossipConfig{
			Duration:         1800,
			ExchangeCooldown: 45,
			EvalInterval:     600,
			EvalSample:       5,
		},
		SyncInterval: 400,
		SyncVehicles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runExperiment(t, cfg, h)
	if res.Comm["v2c"].MessagesSent == 0 {
		t.Fatal("hybrid never synced over V2C")
	}
	if res.Comm["v2x"].MessagesSent == 0 {
		t.Fatal("hybrid never gossiped over V2X")
	}
}

func TestConfigValidation(t *testing.T) {
	good := SmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("SmallConfig invalid: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.TickInterval = 0 },
		func(c *Config) { c.Horizon = -1 },
		func(c *Config) { c.Grid.Rows = 0 },
		func(c *Config) { c.Fleet.Vehicles = 0 },
		func(c *Config) { c.RSUCount = -1 },
		func(c *Config) { c.Comm.V2C.KBps = 0 },
		func(c *Config) { c.Data.Classes = 1 },
		func(c *Config) { c.Partition.PerAgent = 0 },
		func(c *Config) { c.TestSamples = 0 },
		func(c *Config) { c.Model.Layers = nil },
		func(c *Config) { c.Model = ml.MLPSpec(5, nil, c.Data.Classes) },
		func(c *Config) { c.Model = ml.MLPSpec(c.Data.Dim(), nil, c.Data.Classes+1) },
		func(c *Config) { c.Train.Epochs = 0 },
		func(c *Config) { c.OBU.Slots = 0 },
		func(c *Config) { c.ServerHW.Slots = 0 },
	}
	for i, mutate := range mutations {
		c := SmallConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestNewRejectsNilStrategy(t *testing.T) {
	if _, err := New(SmallConfig(), nil); err == nil {
		t.Fatal("nil strategy accepted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	exp, err := New(SmallConfig(), fastFedAvg(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestExperimentWithRSUs(t *testing.T) {
	cfg := SmallConfig()
	cfg.RSUCount = 3
	res := runExperiment(t, cfg, fastFedAvg(t, 3))
	if res.Metrics.Counter(metrics.CounterRounds) != 3 {
		t.Fatalf("rounds = %v", res.Metrics.Counter(metrics.CounterRounds))
	}
}

func TestVehiclesOnSeriesTracksChurn(t *testing.T) {
	cfg := SmallConfig()
	res := runExperiment(t, cfg, fastFedAvg(t, 10))
	on := res.Metrics.Series(metrics.SeriesVehiclesOn)
	if on == nil || on.Len() == 0 {
		t.Fatal("vehicles-on series missing")
	}
	if on.Max() > float64(cfg.Fleet.Vehicles) {
		t.Fatalf("more vehicles on (%v) than exist (%d)", on.Max(), cfg.Fleet.Vehicles)
	}
	if on.Max() <= 0 {
		t.Fatal("no vehicle was ever on")
	}
	if on.Min() == on.Max() {
		t.Log("warning: no churn observed in this window")
	}
}

func TestComputeAccounting(t *testing.T) {
	res := runExperiment(t, SmallConfig(), fastFedAvg(t, 5))
	tasks := res.Metrics.Counter(metrics.CounterTrainTasks)
	if tasks == 0 {
		t.Fatal("no training tasks recorded")
	}
	busy := res.Metrics.Counter("vehicle_compute_seconds")
	if busy <= 0 {
		t.Fatalf("vehicle compute seconds = %v", busy)
	}
	// Each task occupies at least the OBU's fixed overhead.
	if busy < tasks*SmallConfig().OBU.TaskOverheadS {
		t.Fatalf("compute accounting inconsistent: %v busy seconds for %v tasks", busy, tasks)
	}
}

func TestEnvBasics(t *testing.T) {
	cfg := SmallConfig()
	exp, err := New(cfg, fastFedAvg(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	var env strategy.Env = exp
	if env.Server() != sim.AgentID(0) {
		t.Fatalf("server ID = %v", env.Server())
	}
	if len(env.Vehicles()) != cfg.Fleet.Vehicles {
		t.Fatalf("vehicles = %d", len(env.Vehicles()))
	}
	if env.Kind(env.Server()) != sim.KindCloudServer {
		t.Fatal("server kind wrong")
	}
	if env.Kind(sim.AgentID(999)) != 0 {
		t.Fatal("unknown agent kind not zero")
	}
	if !env.IsOn(env.Server()) {
		t.Fatal("server not on")
	}
	v := env.Vehicles()[0]
	if env.DataAmount(v) != cfg.Partition.PerAgent {
		t.Fatalf("vehicle data amount = %d", env.DataAmount(v))
	}
	if env.DataAmount(env.Server()) != 0 {
		t.Fatal("server has local data")
	}
	if len(env.LocalData(v)) != cfg.Partition.PerAgent {
		t.Fatal("LocalData length mismatch")
	}
	if env.Model(env.Server()) == nil {
		t.Fatal("server has no initial model")
	}
	if env.Model(v) != nil {
		t.Fatal("vehicle unexpectedly has a model")
	}
	acc, err := env.TestAccuracy(env.Model(env.Server()))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	// Cache: second call must return the identical value.
	acc2, err := env.TestAccuracy(env.Model(env.Server()))
	if err != nil || acc2 != acc {
		t.Fatalf("cached accuracy differs: %v vs %v (%v)", acc, acc2, err)
	}
	if _, err := env.TestAccuracy(nil); err == nil {
		t.Fatal("nil model accuracy succeeded")
	}
}

func TestEnvTrainValidation(t *testing.T) {
	exp, err := New(SmallConfig(), fastFedAvg(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	m := exp.Model(exp.Server())
	if err := exp.Train(exp.Server(), m); err == nil {
		t.Fatal("training the server on its empty local data succeeded")
	}
	if err := exp.TrainOnData(exp.Vehicles()[0], nil, exp.LocalData(exp.Vehicles()[0])); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := exp.TrainOnData(sim.AgentID(999), m, exp.LocalData(exp.Vehicles()[0])); err == nil {
		t.Fatal("unknown agent accepted")
	}
	// Off vehicle cannot train.
	var off sim.AgentID = sim.NoAgent
	for _, v := range exp.Vehicles() {
		if !exp.IsOn(v) {
			off = v
			break
		}
	}
	if off != sim.NoAgent {
		if err := exp.Train(off, m); err == nil {
			t.Fatal("off vehicle accepted training")
		}
	}
}

func TestHorizonCapsRun(t *testing.T) {
	cfg := SmallConfig()
	cfg.Horizon = 200 // far less than the strategy needs
	res := runExperiment(t, cfg, fastFedAvg(t, 50))
	if float64(res.End) > 200+1e-9 {
		t.Fatalf("run ended at %v, beyond the %v horizon", res.End, cfg.Horizon)
	}
	if res.Metrics.Counter(metrics.CounterRounds) >= 50 {
		t.Fatal("all rounds completed despite tiny horizon")
	}
}

func TestFinalAccuracyIsFinite(t *testing.T) {
	res := runExperiment(t, SmallConfig(), fastFedAvg(t, 4))
	if math.IsNaN(res.FinalAccuracy) || math.IsInf(res.FinalAccuracy, 0) {
		t.Fatalf("final accuracy = %v", res.FinalAccuracy)
	}
}

func TestOppDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := SmallConfig()
		cfg.Seed = 31
		return runExperiment(t, cfg, fastOpp(t, 5))
	}
	a, b := run(), run()
	for _, name := range []string{
		metrics.SeriesAccuracy,
		metrics.SeriesRoundExchanges,
		metrics.SeriesRoundContributions,
	} {
		sa, sb := a.Metrics.Series(name), b.Metrics.Series(name)
		if sa == nil || sb == nil || sa.Len() != sb.Len() {
			t.Fatalf("series %q differs in length", name)
		}
		for i := range sa.Points {
			if sa.Points[i] != sb.Points[i] {
				t.Fatalf("series %q point %d differs between identical runs", name, i)
			}
		}
	}
	if a.Comm["v2x"] != b.Comm["v2x"] {
		t.Fatalf("v2x stats differ: %+v vs %+v", a.Comm["v2x"], b.Comm["v2x"])
	}
}

func TestProvenanceGrowsAcrossRounds(t *testing.T) {
	res := runExperiment(t, SmallConfig(), fastFedAvg(t, 10))
	prov := res.Metrics.Series(metrics.SeriesDistinctContributors)
	if prov == nil || prov.Len() != 10 {
		t.Fatalf("provenance series = %v, want 10 points", prov)
	}
	prev := 0.0
	for i, p := range prov.Points {
		if p.Value < prev {
			t.Fatalf("distinct contributors shrank at round %d: %v -> %v", i+1, prev, p.Value)
		}
		prev = p.Value
	}
	if last, _ := prov.Last(); last.Value <= 0 {
		t.Fatal("nobody ever contributed")
	}
	if last, _ := prov.Last(); last.Value > float64(SmallConfig().Fleet.Vehicles) {
		t.Fatal("more contributors than vehicles")
	}
}
