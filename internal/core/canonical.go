package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCanonical writes a deterministic, byte-stable serialization of the
// result: the reproducibility contract ("a configuration and a seed fully
// determine an experiment run") made checkable. Two runs with identical
// (config, seed) produce identical bytes regardless of host speed, sweep
// worker count, or map iteration order — series appear in first-recorded
// order (itself deterministic under the contract), counters and comm
// channels are sorted by name, floats round-trip exactly, and Wall is
// excluded because host timing is the one field allowed to differ between
// otherwise identical runs.
func (r *Result) WriteCanonical(w io.Writer) error {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if _, err := fmt.Fprintf(w, "end %s\nevents %d\nfinal_accuracy %s\n",
		ff(float64(r.End)), r.EventsProcessed, ff(r.FinalAccuracy)); err != nil {
		return fmt.Errorf("core: write canonical: %w", err)
	}
	if r.Metrics != nil {
		for _, name := range r.Metrics.SeriesNames() {
			s := r.Metrics.Series(name)
			if _, err := fmt.Fprintf(w, "series %s n=%d\n", name, s.Len()); err != nil {
				return fmt.Errorf("core: write canonical: %w", err)
			}
			for _, p := range s.Points {
				if _, err := fmt.Fprintf(w, "point %s %s\n", ff(float64(p.T)), ff(p.Value)); err != nil {
					return fmt.Errorf("core: write canonical: %w", err)
				}
			}
		}
		counters := r.Metrics.CounterNames()
		sort.Strings(counters)
		for _, name := range counters {
			if _, err := fmt.Fprintf(w, "counter %s %s\n", name, ff(r.Metrics.Counter(name))); err != nil {
				return fmt.Errorf("core: write canonical: %w", err)
			}
		}
	}
	kinds := make([]string, 0, len(r.Comm))
	for kind := range r.Comm {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		s := r.Comm[kind]
		if _, err := fmt.Fprintf(w, "comm %s sent=%d delivered=%d failed=%d bytes_attempted=%d bytes_delivered=%d\n",
			kind, s.MessagesSent, s.MessagesDelivered, s.MessagesFailed, s.BytesAttempted, s.BytesDelivered); err != nil {
			return fmt.Errorf("core: write canonical: %w", err)
		}
	}
	return nil
}

// CanonicalBytes returns WriteCanonical's output, the byte string that
// determinism regression tests compare across runs.
func (r *Result) CanonicalBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteCanonical(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CanonicalConfigJSON is the configuration-side half of the reproducibility
// contract made hashable: a byte-stable encoding of everything in a Config
// that can influence a run's recorded results. Go's encoding/json emits
// struct fields in declaration order and the Config tree contains no maps,
// so the encoding is deterministic across processes and hosts; fields that
// are result-invariant by construction are normalized away — LogWriter is
// excluded from JSON entirely, EvalWorkers is zeroed because the
// shard-deterministic parallel evaluator records bit-identical values at
// any worker count, and Trace is zeroed because the span tracer observes a
// run on the virtual clock without perturbing any random stream or
// recorded metric. Content-addressed run caching (internal/campaign) hashes
// this encoding: two configs with equal CanonicalConfigJSON produce
// byte-identical Result.CanonicalBytes for the same strategy.
// ChannelRecord is zeroed for the same reason as Trace: the channel-trace
// recorder observes transfers without consuming randomness. (The channel
// *model* selection, Comm.Channel, is NOT normalized away — it changes
// transfer durations and therefore results.)
func CanonicalConfigJSON(cfg Config) ([]byte, error) {
	cfg.EvalWorkers = 0
	cfg.Trace = false
	cfg.ChannelRecord = false
	cfg.LogWriter = nil
	out, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: canonical config: %w", err)
	}
	return out, nil
}
