package core

import (
	"os"
	"path/filepath"
	"testing"

	"roadrunner/internal/comm"
	"roadrunner/internal/ml"
	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
)

func TestPayloadBytesComposition(t *testing.T) {
	empty := payloadBytes(strategy.Payload{Tag: "ctl"})
	if empty != 256 {
		t.Fatalf("control payload = %d bytes, want the 256-byte envelope", empty)
	}

	net, err := ml.NewNetwork(ml.MLPSpec(4, nil, 2), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot()
	withModel := payloadBytes(strategy.Payload{Tag: "m", Model: snap})
	if withModel != 256+snap.WireBytes() {
		t.Fatalf("model payload = %d, want envelope + %d", withModel, snap.WireBytes())
	}

	data := []ml.Example{
		{X: make([]float32, 10), Label: 1},
		{X: make([]float32, 10), Label: 2},
	}
	withData := payloadBytes(strategy.Payload{Tag: "d", Data: data})
	want := 256 + 2*(4*10+8)
	if withData != want {
		t.Fatalf("data payload = %d, want %d", withData, want)
	}
}

// TestSendChargesModelBytes checks end to end that transferring a model
// charges the comm module with its real wire size.
func TestSendChargesModelBytes(t *testing.T) {
	exp, err := New(SmallConfig(), fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Find an on vehicle.
	var v sim.AgentID = sim.NoAgent
	for _, id := range exp.Vehicles() {
		if exp.IsOn(id) {
			v = id
			break
		}
	}
	if v == sim.NoAgent {
		t.Skip("no vehicle on at t=0 with this seed")
	}
	m := exp.Model(exp.Server())
	p := strategy.Payload{Tag: "x", Model: m}
	if _, err := exp.Send(exp.Server(), v, comm.KindV2C, p); err != nil {
		t.Fatalf("Send: %v", err)
	}
	st := exp.Network().StatsFor(comm.KindV2C)
	if st.BytesAttempted != int64(256+m.WireBytes()) {
		t.Fatalf("attempted %d bytes, want %d", st.BytesAttempted, 256+m.WireBytes())
	}
}

func TestNeighborsSymmetricAndRangeLimited(t *testing.T) {
	exp, err := New(SmallConfig(), fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	radius := SmallConfig().Comm.V2X.RangeM
	for _, a := range exp.Vehicles() {
		for _, b := range exp.Neighbors(a) {
			// Symmetry: if b is a's neighbor, a is b's.
			found := false
			for _, x := range exp.Neighbors(b) {
				if x == a {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation asymmetric: %v -> %v", a, b)
			}
			// Both endpoints on and within radius.
			if !exp.IsOn(a) || !exp.IsOn(b) {
				t.Fatalf("neighbor pair includes an off agent")
			}
			pa, _ := exp.positionOf(a)
			pb, _ := exp.positionOf(b)
			if pa.Dist(pb) > radius {
				t.Fatalf("neighbors %v,%v at distance %v > radius %v", a, b, pa.Dist(pb), radius)
			}
		}
	}
	// The server has no position, hence no neighbors.
	if got := exp.Neighbors(exp.Server()); got != nil {
		t.Fatalf("server has neighbors: %v", got)
	}
}

func TestTrainOccupiesAgentForModelledDuration(t *testing.T) {
	exp, err := New(SmallConfig(), fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	var v sim.AgentID = sim.NoAgent
	for _, id := range exp.Vehicles() {
		if exp.IsOn(id) {
			v = id
			break
		}
	}
	if v == sim.NoAgent {
		t.Skip("no vehicle on at t=0 with this seed")
	}
	m := exp.Model(exp.Server())
	if err := exp.Train(v, m); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if !exp.IsBusy(v) {
		t.Fatal("agent not busy after Train")
	}
	// A second training on the same busy agent must be refused.
	if err := exp.Train(v, m); err == nil {
		t.Fatal("busy agent accepted a second training task")
	}
}

func TestLogfWritesWhenConfigured(t *testing.T) {
	var buf logBuffer
	cfg := SmallConfig()
	cfg.LogWriter = &buf
	exp, err := New(cfg, fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	exp.Logf("hello %d", 42)
	if got := buf.String(); got == "" {
		t.Fatal("Logf wrote nothing")
	}
	// Nil writer must be a silent no-op.
	exp2, err := New(SmallConfig(), fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	exp2.Logf("discarded")
}

type logBuffer struct{ data []byte }

func (b *logBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *logBuffer) String() string { return string(b.data) }

// TestServerHUParallelSlots: the server's hardware unit runs several
// training operations concurrently (paper §4: "the HUs can run multiple
// operations in parallel"), while a single-slot vehicle OBU serializes.
func TestServerHUParallelSlots(t *testing.T) {
	cfg := SmallConfig()
	cfg.ServerHW.Slots = 3
	exp, err := New(cfg, fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := exp.Model(exp.Server())
	data := exp.LocalData(exp.Vehicles()[0])

	for i := 0; i < 3; i++ {
		if err := exp.TrainOnData(exp.Server(), m, data); err != nil {
			t.Fatalf("server training %d refused: %v", i, err)
		}
	}
	if !exp.IsBusy(exp.Server()) {
		t.Fatal("server not busy with all slots filled")
	}
	if err := exp.TrainOnData(exp.Server(), m, data); err == nil {
		t.Fatal("4th concurrent training accepted on a 3-slot HU")
	}
}

func TestEnvReachable(t *testing.T) {
	exp, err := New(SmallConfig(), fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	var on sim.AgentID = sim.NoAgent
	for _, v := range exp.Vehicles() {
		if exp.IsOn(v) {
			on = v
			break
		}
	}
	if on == sim.NoAgent {
		t.Skip("no vehicle on at t=0 with this seed")
	}
	if !exp.Reachable(on, exp.Server(), comm.KindV2C) {
		t.Fatal("on vehicle cannot reach the server over V2C")
	}
	if exp.Reachable(on, on, comm.KindV2C) {
		t.Fatal("self reachable")
	}
}

func TestExperimentAccessors(t *testing.T) {
	exp, err := New(SmallConfig(), fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Recorder() == nil {
		t.Fatal("nil recorder")
	}
	if exp.Network() == nil {
		t.Fatal("nil network")
	}
	if exp.Horizon() <= 0 {
		t.Fatalf("horizon = %v", exp.Horizon())
	}
}

func TestRSUPositionsResolvableFromTraceFile(t *testing.T) {
	// With a trace-file experiment there is no road graph; RSUs fall back
	// to vehicle start positions.
	small := SmallConfig()
	root := sim.NewRNG(5)
	graph, err := roadnetGenerate(small, root)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := mobilityGenerate(small, graph, root)
	if err != nil {
		t.Fatal(err)
	}
	path := writeTraces(t, traces)
	cfg := SmallConfig()
	cfg.TraceFile = path
	cfg.RSUCount = 2
	exp, err := New(cfg, fastFedAvg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range exp.RSUs() {
		if _, ok := exp.positionOf(r); !ok {
			t.Fatalf("RSU %v has no position", r)
		}
	}
}

// Helpers shared by trace-file tests.
func roadnetGenerate(cfg Config, root *sim.RNG) (*roadnet.Graph, error) {
	return roadnet.Generate(cfg.Grid, root.Fork("roadnet"))
}

func mobilityGenerate(cfg Config, g *roadnet.Graph, root *sim.RNG) (*mobility.TraceSet, error) {
	return mobility.Generate(cfg.Fleet, g, root.Fork("mobility"))
}

func writeTraces(t *testing.T, traces *mobility.TraceSet) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traces.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mobility.WriteCSV(f, traces); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}
