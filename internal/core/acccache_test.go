package core

import (
	"testing"

	"roadrunner/internal/ml"
)

func TestSnapshotAccCacheBounded(t *testing.T) {
	c := newSnapshotAccCache(4)
	// Insert far more snapshots than the limit; retained entries must stay
	// within two generations regardless of how many go through.
	for i := 0; i < 1000; i++ {
		c.put(&ml.Snapshot{}, float64(i))
		if got, max := c.size(), 2*4; got > max {
			t.Fatalf("cache holds %d entries after %d puts, want <= %d", got, i+1, max)
		}
	}
}

func TestSnapshotAccCacheHotEntrySurvivesRotation(t *testing.T) {
	c := newSnapshotAccCache(4)
	hot := &ml.Snapshot{}
	c.put(hot, 0.75)
	for round := 0; round < 50; round++ {
		// Fill the current generation with churn, forcing rotations.
		for i := 0; i < 4; i++ {
			c.put(&ml.Snapshot{}, 0)
		}
		// A strategy re-evaluating its global model each round keeps the
		// entry hot; the get must both hit and re-promote it.
		acc, ok := c.get(hot)
		if !ok {
			t.Fatalf("round %d: hot snapshot evicted", round)
		}
		if acc != 0.75 {
			t.Fatalf("round %d: hot snapshot accuracy = %v, want 0.75", round, acc)
		}
	}
}

func TestSnapshotAccCacheColdEntryEvicted(t *testing.T) {
	c := newSnapshotAccCache(2)
	cold := &ml.Snapshot{}
	c.put(cold, 0.5)
	// Two full generations of churn with no intervening get must push the
	// cold entry out entirely.
	for i := 0; i < 6; i++ {
		c.put(&ml.Snapshot{}, 0)
	}
	if _, ok := c.get(cold); ok {
		t.Fatal("cold snapshot survived two generations of churn")
	}
}

func TestSnapshotAccCacheDefaultLimit(t *testing.T) {
	c := newSnapshotAccCache(0)
	if c.limit != accCacheLimit {
		t.Fatalf("default limit = %d, want %d", c.limit, accCacheLimit)
	}
}
