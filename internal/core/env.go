package core

import (
	"fmt"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
	"roadrunner/internal/trace"
)

// Experiment implements strategy.Env: the framework API the Learning
// Strategy Logic module programs against.
var _ strategy.Env = (*Experiment)(nil)

// Now implements strategy.Env.
func (e *Experiment) Now() sim.Time { return e.engine.Now() }

// Rand implements strategy.Env.
func (e *Experiment) Rand() *sim.RNG { return e.stratRNG }

// Server implements strategy.Env.
func (e *Experiment) Server() sim.AgentID { return e.server }

// Vehicles implements strategy.Env. The returned slice is shared; callers
// must not mutate it.
func (e *Experiment) Vehicles() []sim.AgentID { return e.vehicles }

// RSUs implements strategy.Env.
func (e *Experiment) RSUs() []sim.AgentID { return e.rsus }

// Kind implements strategy.Env.
func (e *Experiment) Kind(id sim.AgentID) sim.AgentKind {
	a := e.registry.Get(id)
	if a == nil {
		return 0
	}
	return a.Kind
}

// IsOn implements strategy.Env.
func (e *Experiment) IsOn(id sim.AgentID) bool {
	a := e.registry.Get(id)
	return a != nil && a.On()
}

// IsBusy implements strategy.Env: the agent's hardware unit has no free
// slot for further work. Vehicles have single-slot OBUs; the server HU
// runs several training operations in parallel (paper §4: "the HUs can
// run multiple operations in parallel").
func (e *Experiment) IsBusy(id sim.AgentID) bool {
	unit, ok := e.units[id]
	if !ok {
		a := e.registry.Get(id)
		return a != nil && a.Busy(e.engine.Now())
	}
	return len(e.pending[id]) >= unit.Profile().Slots
}

// DataAmount implements strategy.Env.
func (e *Experiment) DataAmount(id sim.AgentID) int { return len(e.data[id]) }

// LocalData implements strategy.Env.
func (e *Experiment) LocalData(id sim.AgentID) []ml.Example { return e.data[id] }

// Model implements strategy.Env.
func (e *Experiment) Model(id sim.AgentID) *ml.Snapshot { return e.models[id] }

// SetModel implements strategy.Env.
func (e *Experiment) SetModel(id sim.AgentID, m *ml.Snapshot) { e.models[id] = m }

// Send implements strategy.Env: it sizes the payload (model wire bytes,
// raw-data bytes, or a small control envelope) and hands it to the
// communication module.
func (e *Experiment) Send(from, to sim.AgentID, kind comm.Kind, p strategy.Payload) (comm.MsgID, error) {
	size := payloadBytes(p)
	return e.network.Send(from, to, kind, size, p)
}

// payloadBytes models a payload's wire size: a fixed envelope plus the
// model snapshot and/or raw examples it carries.
func payloadBytes(p strategy.Payload) int {
	const envelope = 256
	size := envelope
	if p.Model != nil {
		size += p.Model.WireBytes()
	}
	for _, ex := range p.Data {
		size += 4*len(ex.X) + 8 // float32 features + label/length framing
	}
	return size
}

// Train implements strategy.Env.
func (e *Experiment) Train(id sim.AgentID, m *ml.Snapshot) error {
	return e.TrainOnData(id, m, e.data[id])
}

// TrainOnData implements strategy.Env: it occupies the agent's hardware
// unit for the modelled duration and performs the actual SGD at completion
// time, so aborted tasks (agent shut off) cost no host compute and leak no
// state.
func (e *Experiment) TrainOnData(id sim.AgentID, m *ml.Snapshot, examples []ml.Example) error {
	if m == nil {
		return fmt.Errorf("core: train on %v: nil model", id)
	}
	if len(examples) == 0 {
		return fmt.Errorf("core: train on %v: no examples", id)
	}
	unit, ok := e.units[id]
	if !ok {
		return fmt.Errorf("core: train on %v: unknown agent", id)
	}
	dur, err := unit.TrainDuration(e.trainFLOPs, len(examples), e.cfg.Train.Epochs)
	if err != nil {
		return err
	}
	agent := e.registry.Get(id)
	if agent == nil || !agent.On() {
		return fmt.Errorf("core: train on %v: agent off or unknown", id)
	}
	if e.IsBusy(id) {
		return fmt.Errorf("core: train on %v: all %d HU slots busy", id, unit.Profile().Slots)
	}
	// Mark the registry-level busy deadline (the latest completion across
	// slots) so Agent.Busy stays meaningful for single-slot agents.
	if until := e.engine.Now().Add(dur); until > agent.BusyUntil() {
		e.registry.Release(id)
		if _, err := e.registry.Occupy(id, dur); err != nil {
			return fmt.Errorf("core: train on %v: %w", id, err)
		}
	}
	taskRNG := e.trainRNG.Fork("task")
	span := e.tracer.Begin(trace.KindTrain, "train")
	e.tracer.AttrUint(span, "agent", uint64(id))
	e.tracer.AttrInt(span, "examples", int64(len(examples)))
	var ev sim.Event
	ev, err = e.engine.After(dur, func() {
		e.removePending(id, ev)
		net, err := ml.LoadSnapshot(m)
		if err != nil {
			e.Logf("core: train on %v: load snapshot: %v", id, err)
			e.tracer.EndWith(span, "status", "error")
			return
		}
		loss, err := net.Train(examples, e.cfg.Train, taskRNG)
		if err != nil {
			e.Logf("core: train on %v: %v", id, err)
			e.tracer.EndWith(span, "status", "error")
			return
		}
		unit.Record(dur)
		e.recorder.Add(metrics.CounterTrainTasks, 1)
		e.tracer.AttrFloat(span, "loss", loss)
		e.tracer.End(span)
		e.strat.OnTrainDone(e, id, net.Snapshot(), loss)
	})
	if err != nil {
		e.registry.Release(id)
		e.tracer.EndWith(span, "status", "error")
		return err
	}
	e.pending[id] = append(e.pending[id], pendingTrain{ev: ev, span: span})
	return nil
}

// removePending drops one completed training event from the agent's slot
// accounting.
func (e *Experiment) removePending(id sim.AgentID, ev sim.Event) {
	tasks := e.pending[id]
	for i, candidate := range tasks {
		if candidate.ev == ev {
			e.pending[id] = append(tasks[:i], tasks[i+1:]...)
			break
		}
	}
	if len(e.pending[id]) == 0 {
		delete(e.pending, id)
	}
}

// Aggregate implements strategy.Env.
func (e *Experiment) Aggregate(models []*ml.Snapshot, weights []float64) (*ml.Snapshot, error) {
	return ml.FedAvg(models, weights)
}

// TestAccuracy implements strategy.Env. Results are memoized per snapshot
// (snapshots are immutable by convention), since strategies often evaluate
// the same global model more than once.
func (e *Experiment) TestAccuracy(m *ml.Snapshot) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("core: test accuracy of nil model")
	}
	if acc, ok := e.accCache.get(m); ok {
		// Cache hits are not traced: whether an evaluation hits the memo
		// depends only on strategy call order, which is deterministic, but
		// spamming the trace with memo reads would bury the real work.
		return acc, nil
	}
	// Evaluation consumes no simulated time (an analyst-side measurement),
	// so the span is an instant. Worker count must not appear: traces are
	// byte-identical at any EvalWorkers.
	span := e.tracer.Begin(trace.KindEval, "eval")
	e.tracer.AttrInt(span, "samples", int64(len(e.testSet)))
	var acc float64
	var err error
	if e.cfg.EvalWorkers > 1 {
		// Shard-deterministic parallel evaluation: the accuracy is a ratio
		// of integers over a worker-count-independent shard grid, so the
		// value is identical to the serial path bit for bit.
		acc, _, err = ml.EvaluateParallel(m, e.testSet, e.cfg.EvalWorkers)
	} else {
		var net *ml.Network
		net, err = ml.LoadSnapshot(m)
		if err != nil {
			e.tracer.EndWith(span, "status", "error")
			return 0, err
		}
		acc, _, err = net.Evaluate(e.testSet)
	}
	if err != nil {
		e.tracer.EndWith(span, "status", "error")
		return 0, err
	}
	e.tracer.AttrFloat(span, "accuracy", acc)
	e.tracer.End(span)
	e.accCache.put(m, acc)
	return acc, nil
}

// Neighbors implements strategy.Env: powered-on vehicles and RSUs currently
// within V2X range of id, computed from exact current positions.
func (e *Experiment) Neighbors(id sim.AgentID) []sim.AgentID {
	center, ok := e.positionOf(id)
	if !ok || !e.IsOn(id) {
		return nil
	}
	radius := e.cfg.Comm.V2X.RangeM
	var out []sim.AgentID
	consider := func(other sim.AgentID) {
		if other == id || !e.IsOn(other) {
			return
		}
		pos, ok := e.positionOf(other)
		if !ok {
			return
		}
		if center.Dist(pos) <= radius {
			out = append(out, other)
		}
	}
	for _, v := range e.vehicles {
		consider(v)
	}
	for _, r := range e.rsus {
		consider(r)
	}
	return out
}

// Reachable implements strategy.Env.
func (e *Experiment) Reachable(from, to sim.AgentID, kind comm.Kind) bool {
	return e.network.Reachable(from, to, kind)
}

// After implements strategy.Env.
func (e *Experiment) After(d sim.Duration, fn func()) error {
	_, err := e.engine.After(d, fn)
	return err
}

// Metrics implements strategy.Env.
func (e *Experiment) Metrics() *metrics.Recorder { return e.recorder }

// Tracer implements strategy.Env: the run's span tracer, nil (and safe
// to call) unless Config.Trace enabled tracing.
func (e *Experiment) Tracer() *trace.Tracer { return e.tracer }

// Stop implements strategy.Env.
func (e *Experiment) Stop() { e.engine.Stop() }

// Logf implements strategy.Env.
func (e *Experiment) Logf(format string, args ...any) {
	if e.cfg.LogWriter == nil {
		return
	}
	fmt.Fprintf(e.cfg.LogWriter, "[%v] ", e.engine.Now())
	fmt.Fprintf(e.cfg.LogWriter, format, args...)
	fmt.Fprintln(e.cfg.LogWriter)
}
