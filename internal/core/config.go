// Package core is Roadrunner itself: the framework façade that wires the
// Core Simulator (internal/sim) to the modules of the paper's Figure 2
// architecture — Data Preprocessing (internal/dataset), ML (internal/ml,
// internal/hw), Communication (internal/comm), vehicle spatial dynamics
// (internal/mobility, internal/roadnet), Learning Strategy Logic
// (internal/strategy) and metrics (internal/metrics) — and runs complete
// learning-workflow experiments over them.
package core

import (
	"fmt"
	"io"

	"roadrunner/internal/comm"
	"roadrunner/internal/dataset"
	"roadrunner/internal/faults"
	"roadrunner/internal/hw"
	"roadrunner/internal/ml"
	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

// Config fully describes an experiment apart from the learning strategy.
// A Config plus a seed determines a run byte-for-byte.
type Config struct {
	// Seed drives every random stream in the experiment.
	Seed uint64 `json:"seed"`
	// Horizon caps the simulated duration; zero means "until the mobility
	// traces end". Strategies usually stop themselves earlier.
	Horizon sim.Duration `json:"horizon_s,omitempty"`
	// TickInterval is the encounter-scan period of the core simulator.
	TickInterval sim.Duration `json:"tick_interval_s"`

	// TraceFile, when set, loads vehicle spatial dynamics from a CSV trace
	// file (the paper's "file of GPS traces" input) instead of generating
	// them from Grid and Fleet.
	TraceFile string `json:"trace_file,omitempty"`
	// Grid describes the synthetic road network (ignored with TraceFile).
	Grid roadnet.GridConfig `json:"grid"`
	// Fleet describes the synthetic fleet dynamics (ignored with
	// TraceFile).
	Fleet mobility.GenConfig `json:"fleet"`
	// RSUCount places this many road-side units at random intersections.
	RSUCount int `json:"rsu_count,omitempty"`

	// Comm models the V2C/V2X/wired channels.
	Comm comm.Params `json:"comm"`

	// Faults, when set, schedules deterministic fault injection — coverage
	// blackouts, RSU outages, V2X burst loss, bandwidth degradation, churn
	// storms, mid-flight link kills — on top of the nominal channel model.
	// A (config, seed, plan) triple fully determines a run, so faulted
	// runs keep the byte-identical reproducibility contract.
	Faults *faults.Plan `json:"faults,omitempty"`

	// Data describes the synthetic learning problem; Partition how it is
	// distributed over vehicles; TestSamples the server-side held-out set.
	Data        dataset.Config          `json:"data"`
	Partition   dataset.PartitionConfig `json:"partition"`
	TestSamples int                     `json:"test_samples"`

	// Model is the network architecture; Train the local-training
	// hyperparameters (the paper: 2 epochs of momentum-SGD).
	Model ml.Spec        `json:"model"`
	Train ml.TrainConfig `json:"train"`

	// EvalWorkers sets the goroutine count for held-out test-set
	// evaluation. Values above 1 enable ml.EvaluateParallel, whose shard
	// decomposition keeps recorded accuracies identical to serial
	// evaluation at any worker count; 0 or 1 evaluates serially.
	EvalWorkers int `json:"eval_workers,omitempty"`

	// Trace enables the simulated-time span tracer (internal/trace):
	// round/train/eval/transfer/encounter-exchange/fault-window spans
	// collected on the virtual clock and returned in Result.Trace. Like
	// EvalWorkers it is result-invariant — tracing observes the run
	// without perturbing any random stream or recorded metric — so it is
	// normalized away by CanonicalConfigJSON. Disabled tracing costs one
	// nil check per emission point and zero allocations.
	Trace bool `json:"trace,omitempty"`

	// ChannelRecord enables the channel-trace recorder: every transfer's
	// (distance, size, load, duration, outcome) tuple is collected in
	// Result.ChannelLog, the raw material the DRIVE-style oracle pipeline
	// (internal/channel.Fit, cmd/chanfit) fits its indicator tables from.
	// Like Trace it is result-invariant — the recorder observes transfers
	// without consuming randomness — and is normalized away by
	// CanonicalConfigJSON.
	ChannelRecord bool `json:"channel_record,omitempty"`

	// OBU, ServerHW, and RSUHW are the hardware-unit profiles.
	OBU      hw.Profile `json:"obu"`
	ServerHW hw.Profile `json:"server_hw"`
	RSUHW    hw.Profile `json:"rsu_hw"`

	// LogWriter receives strategy diagnostics; nil discards them.
	LogWriter io.Writer `json:"-"`
}

// DefaultConfig reproduces the paper's §5.2 experiment environment: a
// Gothenburg-scale grid, a 120-vehicle fleet with ignition churn, 4G-class
// V2C with 200 m V2X, a 10-class image task with 80 highly skewed samples
// per vehicle, and the 2-conv/3-FC CNN trained with 2 epochs of
// momentum-SGD on GPU-class OBU stand-ins.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		TickInterval: 5,
		Grid:         roadnet.DefaultGridConfig(),
		Fleet:        mobility.DefaultGenConfig(),
		Comm:         comm.DefaultParams(),
		Data:         dataset.DefaultConfig(),
		Partition:    dataset.DefaultPartitionConfig(),
		TestSamples:  500,
		Model:        ml.CNNSpec(16, 16, 3, 6, 12, 3, 32, 16, 10),
		Train:        ml.DefaultTrainConfig(),
		OBU:          hw.OBUProfile(),
		ServerHW:     hw.ServerProfile(),
		RSUHW:        hw.RSUProfile(),
	}
}

// SmallConfig is a laptop-scale variant for tests and quick iteration:
// a small fleet on a compact grid learning a low-dimensional MLP task.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Grid = roadnet.GridConfig{Rows: 8, Cols: 8, Spacing: 300, StreetSpeed: 10, Irregularity: 0.1, Jitter: 20}
	cfg.Fleet = mobility.GenConfig{
		Vehicles:          24,
		Horizon:           2 * sim.Hour,
		DwellMin:          30,
		DwellMax:          240,
		OffWhenParkedProb: 0.4,
		SpeedFactorMin:    0.8,
		SpeedFactorMax:    1.0,
		InitialDwellMax:   60,
	}
	cfg.Data = dataset.Config{Classes: 6, H: 6, W: 6, C: 1, NoiseStd: 0.5, MaxShift: 1, Components: 3}
	cfg.Partition = dataset.PartitionConfig{Scheme: dataset.SchemeShards, PerAgent: 30, ShardsPerAgent: 2}
	cfg.TestSamples = 180
	cfg.Model = ml.MLPSpec(cfg.Data.Dim(), []int{24}, cfg.Data.Classes)
	cfg.Train = ml.TrainConfig{Epochs: 2, BatchSize: 10, LR: 0.05, Momentum: 0.9}
	return cfg
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TickInterval <= 0 {
		return fmt.Errorf("core: non-positive tick interval %v", c.TickInterval)
	}
	if c.Horizon < 0 {
		return fmt.Errorf("core: negative horizon %v", c.Horizon)
	}
	if c.TraceFile == "" {
		if err := c.Grid.Validate(); err != nil {
			return fmt.Errorf("core: grid: %w", err)
		}
		if err := c.Fleet.Validate(); err != nil {
			return fmt.Errorf("core: fleet: %w", err)
		}
	}
	if c.RSUCount < 0 {
		return fmt.Errorf("core: negative RSU count %d", c.RSUCount)
	}
	if err := c.Comm.Validate(); err != nil {
		return fmt.Errorf("core: comm: %w", err)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if err := c.Data.Validate(); err != nil {
		return fmt.Errorf("core: data: %w", err)
	}
	if err := c.Partition.Validate(); err != nil {
		return fmt.Errorf("core: partition: %w", err)
	}
	if c.TestSamples <= 0 {
		return fmt.Errorf("core: non-positive test sample count %d", c.TestSamples)
	}
	if c.EvalWorkers < 0 {
		return fmt.Errorf("core: negative eval worker count %d", c.EvalWorkers)
	}
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("core: model: %w", err)
	}
	if c.Model.InputDim() != c.Data.Dim() {
		return fmt.Errorf("core: model input dim %d != data dim %d", c.Model.InputDim(), c.Data.Dim())
	}
	out, err := c.Model.OutputDim()
	if err != nil {
		return fmt.Errorf("core: model: %w", err)
	}
	if out != c.Data.Classes {
		return fmt.Errorf("core: model output dim %d != class count %d", out, c.Data.Classes)
	}
	if err := c.Train.Validate(); err != nil {
		return fmt.Errorf("core: train: %w", err)
	}
	if err := c.OBU.Validate(); err != nil {
		return fmt.Errorf("core: obu: %w", err)
	}
	if err := c.ServerHW.Validate(); err != nil {
		return fmt.Errorf("core: server hw: %w", err)
	}
	if c.RSUCount > 0 {
		if err := c.RSUHW.Validate(); err != nil {
			return fmt.Errorf("core: rsu hw: %w", err)
		}
	}
	return nil
}
