package core

import (
	"roadrunner/internal/ml"
)

// accCacheLimit bounds the per-generation size of the snapshot-accuracy
// memo. Strategies evaluate a handful of live models per round, so the
// working set is tiny; the bound exists because long campaigns otherwise
// accumulate one entry per snapshot ever evaluated (snapshots are keyed by
// pointer and would be pinned forever).
const accCacheLimit = 512

// snapshotAccCache memoizes test accuracies per model snapshot with a
// bounded two-generation layout: lookups consult the current generation
// and then the previous one (promoting hits), and when the current
// generation fills up it becomes the previous generation instead of being
// discarded wholesale. Hot snapshots — the global model a strategy
// re-evaluates every round — therefore survive rotation, while snapshots
// that fell out of use are released after at most two generations, keeping
// memory bounded over arbitrarily long runs. The cache is purely a memo
// over deterministic evaluations, so hits and misses can never change a
// recorded value.
type snapshotAccCache struct {
	cur, prev map[*ml.Snapshot]float64
	limit     int
}

func newSnapshotAccCache(limit int) *snapshotAccCache {
	if limit <= 0 {
		limit = accCacheLimit
	}
	return &snapshotAccCache{
		cur:   make(map[*ml.Snapshot]float64),
		limit: limit,
	}
}

// get returns the memoized accuracy for m, promoting previous-generation
// hits into the current generation so they survive the next rotation.
func (c *snapshotAccCache) get(m *ml.Snapshot) (float64, bool) {
	if acc, ok := c.cur[m]; ok {
		return acc, true
	}
	if acc, ok := c.prev[m]; ok {
		c.put(m, acc)
		return acc, true
	}
	return 0, false
}

// put records m's accuracy, rotating generations when the current one is
// full.
func (c *snapshotAccCache) put(m *ml.Snapshot, acc float64) {
	if len(c.cur) >= c.limit {
		c.prev = c.cur
		c.cur = make(map[*ml.Snapshot]float64, c.limit)
	}
	c.cur[m] = acc
}

// size reports the total number of retained entries across generations.
func (c *snapshotAccCache) size() int { return len(c.cur) + len(c.prev) }
