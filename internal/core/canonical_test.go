package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"roadrunner/internal/comm"
	"roadrunner/internal/metrics"
)

func sampleResult(t *testing.T, wall time.Duration, counterOrder []string) *Result {
	t.Helper()
	rec := metrics.NewRecorder()
	if err := rec.Record(metrics.SeriesAccuracy, 10, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := rec.Record(metrics.SeriesAccuracy, 20, 0.5); err != nil {
		t.Fatal(err)
	}
	for _, name := range counterOrder {
		rec.Add(name, 3)
	}
	return &Result{
		Metrics:         rec,
		Comm:            map[string]comm.Stats{"v2x": {MessagesSent: 7}, "v2c": {BytesDelivered: 9}},
		End:             20,
		Wall:            wall,
		FinalAccuracy:   0.5,
		EventsProcessed: 42,
	}
}

func TestCanonicalExcludesWall(t *testing.T) {
	order := []string{metrics.CounterRounds, metrics.CounterV2CBytes}
	a, err := sampleResult(t, time.Second, order).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleResult(t, 3*time.Minute, order).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("wall time leaked into canonical bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestCanonicalSortsCountersAndComm(t *testing.T) {
	a, err := sampleResult(t, 0, []string{"b_counter", "a_counter"}).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleResult(t, 0, []string{"a_counter", "b_counter"}).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("counter touch order leaked into canonical bytes:\n%s\nvs\n%s", a, b)
	}
	text := string(a)
	if strings.Index(text, "counter a_counter") > strings.Index(text, "counter b_counter") {
		t.Fatalf("counters not sorted:\n%s", text)
	}
	if strings.Index(text, "comm v2c") > strings.Index(text, "comm v2x") {
		t.Fatalf("comm channels not sorted:\n%s", text)
	}
}

func TestCanonicalConfigJSONNormalizesInvariantFields(t *testing.T) {
	a := SmallConfig()
	b := SmallConfig()
	b.EvalWorkers = 8
	b.LogWriter = &bytes.Buffer{}
	aj, err := CanonicalConfigJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := CanonicalConfigJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("result-invariant fields leaked into canonical config:\n%s\nvs\n%s", aj, bj)
	}

	c := SmallConfig()
	c.Seed = a.Seed + 1
	cj, err := CanonicalConfigJSON(c)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(aj, cj) {
		t.Fatal("distinct seeds encoded identically")
	}
}

func TestCanonicalReflectsPayload(t *testing.T) {
	a, err := sampleResult(t, 0, []string{"n"}).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	other := sampleResult(t, 0, []string{"n"})
	other.Metrics.Add("n", 1)
	b, err := other.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("distinct counter values serialized identically")
	}
}
