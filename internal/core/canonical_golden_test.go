package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"roadrunner/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestCanonicalBytesGolden pins the canonical result encoding byte for byte
// against a checked-in golden file. The encoding is the cross-run
// reproducibility contract — determinism tests, the conformance harness,
// and the benchmark baseline all compare these bytes — so any format change
// must be an explicit decision (re-run with -update), never a side effect.
func TestCanonicalBytesGolden(t *testing.T) {
	res := sampleResult(t, 0, []string{metrics.CounterRounds, metrics.CounterV2CBytes})
	got, err := res.CanonicalBytes()
	if err != nil {
		t.Fatalf("CanonicalBytes: %v", err)
	}
	path := filepath.Join("testdata", "canonical_sample.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("canonical encoding drifted from golden file.\ngot:\n%s\nwant:\n%s\n(run 'go test ./internal/core -update' if the change is intended)",
			got, want)
	}
}
