package ml

import (
	"bytes"
	"testing"

	"roadrunner/internal/sim"
)

// paperCNN is the evaluation architecture at the repository's default
// scale (the compute-scaled CIFAR-10 stand-in).
func paperCNN() Spec { return CNNSpec(16, 16, 3, 6, 12, 3, 32, 16, 10) }

func benchExamples(b *testing.B, spec Spec, n int) []Example {
	b.Helper()
	rng := sim.NewRNG(7)
	out, err := spec.OutputDim()
	if err != nil {
		b.Fatal(err)
	}
	examples := make([]Example, n)
	for i := range examples {
		x := make([]float32, spec.InputDim())
		for j := range x {
			x[j] = float32(rng.NormFloat64())
		}
		examples[i] = Example{X: x, Label: i % out}
	}
	return examples
}

// BenchmarkTrainVehicleRetrainCNN measures one paper-style vehicle retrain:
// 80 samples x 2 epochs of momentum-SGD on the evaluation CNN. This is the
// dominant host-compute cost of an experiment.
func BenchmarkTrainVehicleRetrainCNN(b *testing.B) {
	spec := paperCNN()
	examples := benchExamples(b, spec, 80)
	cfg := DefaultTrainConfig()
	net, err := NewNetwork(spec, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Train(examples, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainVehicleRetrainMLP is the laptop-scale counterpart.
func BenchmarkTrainVehicleRetrainMLP(b *testing.B) {
	spec := MLPSpec(36, []int{24}, 6)
	examples := benchExamples(b, spec, 30)
	cfg := DefaultTrainConfig()
	net, err := NewNetwork(spec, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Train(examples, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardCNN measures inference (the per-round accuracy
// evaluation's unit of work).
func BenchmarkForwardCNN(b *testing.B) {
	spec := paperCNN()
	net, err := NewNetwork(spec, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	x := benchExamples(b, spec, 1)[0].X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFedAvg15 measures one OPP-scale aggregation (≈15 contributions).
func BenchmarkFedAvg15(b *testing.B) {
	spec := paperCNN()
	models := make([]*Snapshot, 15)
	weights := make([]float64, 15)
	for i := range models {
		n, err := NewNetwork(spec, sim.NewRNG(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		models[i] = n.Snapshot()
		weights[i] = 80
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FedAvg(models, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures model serialization (wire format).
func BenchmarkSnapshotEncode(b *testing.B) {
	n, err := NewNetwork(paperCNN(), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	snap := n.Snapshot()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := snap.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(snap.WireBytes()))
}

// BenchmarkSnapshotDecode measures model deserialization.
func BenchmarkSnapshotDecode(b *testing.B) {
	n, err := NewNetwork(paperCNN(), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	snap := n.Snapshot()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(raw)))
}
