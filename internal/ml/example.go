// Package ml is Roadrunner's ML module: a from-scratch neural-network
// library with exactly the capabilities the paper requires of it (§3 req. 2
// and §4): training models on agent-local data, testing any model against
// any data, aggregating models into new ones (Federated Averaging), and
// serializing models for exchange over simulated communication channels.
//
// The paper's prototype delegated this module to PyTorch on a GPU; here it
// is a self-contained implementation (dense, convolution, max-pooling and
// ReLU layers with manual backpropagation, softmax cross-entropy loss, and
// SGD with momentum — the paper's training configuration). Computation is
// real (models genuinely learn from the data they are given, so accuracy
// metrics have real dynamics); the simulated *duration* of training is
// modelled separately by internal/hw.
package ml

import "fmt"

// Example is one labelled training or test instance: a flat feature vector
// (for images, channel-major C×H×W) and a class label.
type Example struct {
	X     []float32
	Label int
}

// ValidateExamples checks that every example has the expected feature
// dimension and a label within [0, classes).
func ValidateExamples(examples []Example, dim, classes int) error {
	for i, ex := range examples {
		if len(ex.X) != dim {
			return fmt.Errorf("ml: example %d has dim %d, want %d", i, len(ex.X), dim)
		}
		if ex.Label < 0 || ex.Label >= classes {
			return fmt.Errorf("ml: example %d has label %d outside [0,%d)", i, ex.Label, classes)
		}
	}
	return nil
}
