package ml

import (
	"fmt"
	"math"
	"testing"

	"roadrunner/internal/sim"
)

// convCase is one randomized conv shape for the GEMM equivalence tests.
type convCase struct {
	inC, inH, inW, outC, k int
}

func randomConvCase(rng *sim.RNG) convCase {
	k := 1 + rng.Intn(3)
	return convCase{
		inC:  1 + rng.Intn(4),
		inH:  k + rng.Intn(9),
		inW:  k + rng.Intn(9),
		outC: 1 + rng.Intn(6),
		k:    k,
	}
}

func randomFill(rng *sim.RNG, s []float32) {
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
}

// maxAbsDiff returns the largest elementwise |a-b|.
func maxAbsDiff(t *testing.T, a, b []float32) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	worst := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestConvGEMMForwardMatchesReference proves the im2col+GEMM forward equals
// the retained scalar reference kernel within 1e-5 over randomized shapes.
func TestConvGEMMForwardMatchesReference(t *testing.T) {
	rng := sim.NewRNG(101)
	for trial := 0; trial < 50; trial++ {
		cc := randomConvCase(rng)
		t.Run(fmt.Sprintf("trial%d_%dx%dx%d_oc%d_k%d", trial, cc.inC, cc.inH, cc.inW, cc.outC, cc.k), func(t *testing.T) {
			c := newConv2D(cc.inC, cc.inH, cc.inW, cc.outC, cc.k)
			randomFill(rng, c.w)
			randomFill(rng, c.b)
			x := make([]float32, cc.inC*cc.inH*cc.inW)
			randomFill(rng, x)

			got := c.forward(x)
			want := referenceConvForward(c.w, c.b, x, cc.inC, cc.inH, cc.inW, cc.outC, cc.k)
			if d := maxAbsDiff(t, got, want); d > 1e-5 {
				t.Fatalf("forward diverges from reference by %g", d)
			}
		})
	}
}

// TestConvGEMMBackwardMatchesReference proves the GEMM backward (dx, dw,
// db) equals the scalar reference within 1e-5 over randomized shapes,
// including gradient accumulation across consecutive backward calls.
func TestConvGEMMBackwardMatchesReference(t *testing.T) {
	rng := sim.NewRNG(202)
	for trial := 0; trial < 50; trial++ {
		cc := randomConvCase(rng)
		t.Run(fmt.Sprintf("trial%d_%dx%dx%d_oc%d_k%d", trial, cc.inC, cc.inH, cc.inW, cc.outC, cc.k), func(t *testing.T) {
			c := newConv2D(cc.inC, cc.inH, cc.inW, cc.outC, cc.k)
			randomFill(rng, c.w)
			randomFill(rng, c.b)
			x := make([]float32, cc.inC*cc.inH*cc.inW)
			randomFill(rng, x)
			dout := make([]float32, cc.outC*(cc.inH-cc.k+1)*(cc.inW-cc.k+1))
			randomFill(rng, dout)

			c.forward(x)
			dx := c.backward(dout)
			wantDx, wantDw, wantDb := referenceConvBackward(c.w, x, dout, cc.inC, cc.inH, cc.inW, cc.outC, cc.k)
			if d := maxAbsDiff(t, dx, wantDx); d > 1e-5 {
				t.Fatalf("dx diverges from reference by %g", d)
			}
			if d := maxAbsDiff(t, c.dw, wantDw); d > 1e-5 {
				t.Fatalf("dw diverges from reference by %g", d)
			}
			if d := maxAbsDiff(t, c.db, wantDb); d > 1e-5 {
				t.Fatalf("db diverges from reference by %g", d)
			}

			// Gradients accumulate across backward calls (mini-batching):
			// a second identical backward must double dw/db exactly like
			// the reference would.
			c.forward(x)
			c.backward(dout)
			for i := range wantDw {
				wantDw[i] *= 2
			}
			for i := range wantDb {
				wantDb[i] *= 2
			}
			if d := maxAbsDiff(t, c.dw, wantDw); d > 2e-5 {
				t.Fatalf("accumulated dw diverges from reference by %g", d)
			}
			if d := maxAbsDiff(t, c.db, wantDb); d > 2e-5 {
				t.Fatalf("accumulated db diverges from reference by %g", d)
			}
		})
	}
}

// TestConvGEMMDeterministic re-runs one forward/backward on fresh layers
// and requires bitwise-identical outputs: the GEMM loop nests are fixed, so
// no reassociation may vary between runs.
func TestConvGEMMDeterministic(t *testing.T) {
	run := func() ([]float32, []float32, []float32) {
		rng := sim.NewRNG(7)
		c := newConv2D(3, 9, 8, 5, 3)
		randomFill(rng, c.w)
		randomFill(rng, c.b)
		x := make([]float32, 3*9*8)
		randomFill(rng, x)
		dout := make([]float32, 5*7*6)
		randomFill(rng, dout)
		y := append([]float32(nil), c.forward(x)...)
		dx := append([]float32(nil), c.backward(dout)...)
		dw := append([]float32(nil), c.dw...)
		return y, dx, dw
	}
	y1, dx1, dw1 := run()
	y2, dx2, dw2 := run()
	for name, pair := range map[string][2][]float32{
		"y": {y1, y2}, "dx": {dx1, dx2}, "dw": {dw1, dw2},
	} {
		a, b := pair[0], pair[1]
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%s[%d] differs bitwise between identical runs", name, i)
			}
		}
	}
}

// TestGEMMKernelsMatchNaive checks the three kernels against textbook
// triple loops on odd sizes that exercise the 4-wide remainder paths.
func TestGEMMKernelsMatchNaive(t *testing.T) {
	rng := sim.NewRNG(303)
	for trial := 0; trial < 30; trial++ {
		m, n, k := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		at := make([]float32, k*m)
		bt := make([]float32, n*k)
		randomFill(rng, a)
		randomFill(rng, b)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at[p*m+i] = a[i*k+p]
			}
		}
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bt[j*k+p] = b[p*n+j]
			}
		}
		want := make([]float32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a[i*k+p] * b[p*n+j]
				}
				want[i*n+j] = s
			}
		}
		for name, got := range map[string][]float32{
			"gemmNN": runGEMM(m, n, k, a, b, gemmNN),
			"gemmTN": runGEMM(m, n, k, at, b, gemmTN),
			"gemmNT": runGEMM(m, n, k, a, bt, gemmNT),
		} {
			if d := maxAbsDiff(t, got, want); d > 1e-5 {
				t.Fatalf("%s (m=%d n=%d k=%d) diverges from naive by %g", name, m, n, k, d)
			}
		}
	}
}

func runGEMM(m, n, k int, a, b []float32, kernel func(m, n, k int, a, b, c []float32)) []float32 {
	c := make([]float32, m*n)
	kernel(m, n, k, a, b, c)
	return c
}
