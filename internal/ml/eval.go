package ml

import "fmt"

// ConfusionMatrix counts predictions per (true class, predicted class)
// pair: m[i][j] is the number of class-i examples predicted as class j.
// It supports the paper's finer-grained accuracy analysis ("the ratio of
// correct vs. wrong predictions or a prediction's closeness to a ground
// truth", §3) beyond the scalar accuracy metric.
type ConfusionMatrix [][]int

// Confusion evaluates the network over examples and returns the confusion
// matrix. It does not mutate the network.
func (n *Network) Confusion(examples []Example) (ConfusionMatrix, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: confusion over empty example set")
	}
	if err := ValidateExamples(examples, n.spec.InputDim(), n.nOut); err != nil {
		return nil, err
	}
	m := make(ConfusionMatrix, n.nOut)
	for i := range m {
		m[i] = make([]int, n.nOut)
	}
	for _, ex := range examples {
		pred, err := n.Predict(ex.X)
		if err != nil {
			return nil, err
		}
		m[ex.Label][pred]++
	}
	return m, nil
}

// Accuracy returns the fraction of diagonal mass.
func (m ConfusionMatrix) Accuracy() float64 {
	total, correct := 0, 0
	for i, row := range m {
		for j, c := range row {
			total += c
			if i == j {
				correct += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns each class's recall (diagonal over row sum);
// classes with no examples report 0.
func (m ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		total := 0
		for _, c := range row {
			total += c
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// CoveredClasses counts classes with nonzero recall — a quick view of how
// many classes a (possibly drift-collapsed) model still recognizes.
func (m ConfusionMatrix) CoveredClasses() int {
	covered := 0
	for _, r := range m.PerClassRecall() {
		if r > 0 {
			covered++
		}
	}
	return covered
}
