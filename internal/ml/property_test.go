package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/sim"
)

// TestTrainingStaysFinite: with clipping enabled, training on arbitrary
// (even adversarially scaled) data never produces NaN or Inf weights —
// the guarantee that keeps FedAvg from spreading poison fleet-wide.
func TestTrainingStaysFiniteProperty(t *testing.T) {
	spec := MLPSpec(6, []int{8}, 3)
	prop := func(seed uint32, scaleRaw uint8, lrRaw uint8) bool {
		rng := sim.NewRNG(uint64(seed))
		scale := float32(scaleRaw%50) + 1 // feature magnitudes up to 50x
		examples := make([]Example, 24)
		for i := range examples {
			x := make([]float32, 6)
			for j := range x {
				x[j] = float32(rng.NormFloat64()) * scale
			}
			examples[i] = Example{X: x, Label: i % 3}
		}
		net, err := NewNetwork(spec, rng.Fork("init"))
		if err != nil {
			return false
		}
		cfg := TrainConfig{
			Epochs:    3,
			BatchSize: 8,
			LR:        float64(lrRaw%20+1) / 100, // up to 0.2
			Momentum:  0.9,
			ClipNorm:  4,
		}
		loss, err := net.Train(examples, cfg, rng.Fork("train"))
		if err != nil {
			return false
		}
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			return false
		}
		for _, w := range net.Snapshot().Weights {
			if math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRoundTripProperty: snapshot -> load -> snapshot is the
// identity for arbitrary weight values (including negatives and zeros).
func TestSnapshotRoundTripProperty(t *testing.T) {
	spec := MLPSpec(3, []int{4}, 2)
	count, err := spec.ParamCount()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint32) bool {
		rng := sim.NewRNG(uint64(seed))
		weights := make([]float32, count)
		for i := range weights {
			weights[i] = float32(rng.NormFloat64() * 10)
		}
		snap := &Snapshot{Spec: spec, Weights: weights}
		net, err := LoadSnapshot(snap)
		if err != nil {
			return false
		}
		back := net.Snapshot()
		for i := range weights {
			if back.Weights[i] != weights[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSoftmaxGradientSumsToZero: the softmax cross-entropy gradient always
// sums to zero (probabilities sum to one, one-hot subtracts one).
func TestSoftmaxGradientSumsToZeroProperty(t *testing.T) {
	prop := func(raw [6]int8, labelRaw uint8) bool {
		logits := make([]float32, 6)
		for i, v := range raw {
			logits[i] = float32(v) / 8
		}
		label := int(labelRaw) % 6
		d := make([]float32, 6)
		if _, err := SoftmaxCrossEntropy(logits, label, d); err != nil {
			return false
		}
		var sum float64
		for _, g := range d {
			sum += float64(g)
		}
		return math.Abs(sum) < 1e-5
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestClipGradientsNormBound: after clipping, the joint norm never exceeds
// the bound, and direction is preserved (each component scaled equally).
func TestClipGradientsProperty(t *testing.T) {
	prop := func(raw []int8, boundRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		g := make([]float32, len(raw))
		for i, v := range raw {
			g[i] = float32(v)
		}
		orig := append([]float32(nil), g...)
		bound := float64(boundRaw%50) + 0.5
		clipGradients([][]float32{g}, bound)

		var norm float64
		for _, v := range g {
			norm += float64(v) * float64(v)
		}
		norm = math.Sqrt(norm)
		if norm > bound*1.0001 {
			return false
		}
		// Direction preserved: g = c * orig for one scalar c in (0, 1].
		for i := range g {
			if orig[i] == 0 {
				if g[i] != 0 {
					return false
				}
				continue
			}
			c := float64(g[i]) / float64(orig[i])
			if c <= 0 || c > 1.0001 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
