package ml

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Snapshot is an immutable copy of a network's weights together with its
// architecture — the unit of model exchange in every learning strategy.
// When the simulated communication module "transmits a model", it is a
// Snapshot whose WireBytes determine the transfer duration; when the ML
// module "aggregates models", it averages Snapshots.
type Snapshot struct {
	Spec    Spec      `json:"spec"`
	Weights []float32 `json:"-"`
}

// Snapshot captures the network's current weights. The copy is deep: later
// training does not mutate the snapshot.
func (n *Network) Snapshot() *Snapshot {
	var total int
	groups := n.paramGroups()
	for _, g := range groups {
		total += len(g)
	}
	w := make([]float32, 0, total)
	for _, g := range groups {
		w = append(w, g...)
	}
	return &Snapshot{Spec: n.spec, Weights: w}
}

// LoadSnapshot instantiates a trainable network holding the snapshot's
// weights (deep-copied; training the result does not mutate the snapshot).
func LoadSnapshot(s *Snapshot) (*Network, error) {
	if s == nil {
		return nil, fmt.Errorf("ml: nil snapshot")
	}
	n, err := buildNetwork(s.Spec)
	if err != nil {
		return nil, err
	}
	if err := n.SetWeights(s.Weights); err != nil {
		return nil, err
	}
	return n, nil
}

// SetWeights overwrites the network's parameters from a flat vector in
// snapshot order.
func (n *Network) SetWeights(w []float32) error {
	groups := n.paramGroups()
	var total int
	for _, g := range groups {
		total += len(g)
	}
	if len(w) != total {
		return fmt.Errorf("ml: weight vector length %d, want %d", len(w), total)
	}
	off := 0
	for _, g := range groups {
		copy(g, w[off:off+len(g)])
		off += len(g)
	}
	return nil
}

// Clone returns a deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	w := make([]float32, len(s.Weights))
	copy(w, s.Weights)
	spec := s.Spec
	spec.Layers = append([]LayerSpec(nil), s.Spec.Layers...)
	return &Snapshot{Spec: spec, Weights: w}
}

// WireBytes returns the serialized size of the snapshot in bytes — the
// payload size the communication module charges for a model transfer
// (4 bytes per float32 weight plus the architecture header).
func (s *Snapshot) WireBytes() int {
	header, err := json.Marshal(s.Spec)
	if err != nil {
		header = nil // Spec is plain data; marshal cannot realistically fail
	}
	const magicAndLengths = 4 + 4 + 4 // magic, header length, weight count
	return magicAndLengths + len(header) + 4*len(s.Weights)
}

var snapshotMagic = [4]byte{'R', 'R', 'M', 'L'}

// Encode writes the snapshot in the framework's binary wire format: a
// 4-byte magic, a length-prefixed JSON spec header, and the raw float32
// weights little-endian.
func (s *Snapshot) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("ml: encode snapshot: %w", err)
	}
	header, err := json.Marshal(s.Spec)
	if err != nil {
		return fmt.Errorf("ml: encode snapshot spec: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(header))); err != nil {
		return fmt.Errorf("ml: encode snapshot header length: %w", err)
	}
	if _, err := bw.Write(header); err != nil {
		return fmt.Errorf("ml: encode snapshot header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.Weights))); err != nil {
		return fmt.Errorf("ml: encode snapshot weight count: %w", err)
	}
	buf := make([]byte, 4)
	for _, v := range s.Weights {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("ml: encode snapshot weights: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ml: encode snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot reads a snapshot in the wire format written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ml: decode snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("ml: bad snapshot magic %q", magic[:])
	}
	var headerLen uint32
	if err := binary.Read(br, binary.LittleEndian, &headerLen); err != nil {
		return nil, fmt.Errorf("ml: decode snapshot header length: %w", err)
	}
	const maxHeader = 1 << 20
	if headerLen > maxHeader {
		return nil, fmt.Errorf("ml: snapshot header length %d exceeds limit", headerLen)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("ml: decode snapshot header: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(header, &spec); err != nil {
		return nil, fmt.Errorf("ml: decode snapshot spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("ml: decode snapshot: %w", err)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("ml: decode snapshot weight count: %w", err)
	}
	want, err := spec.ParamCount()
	if err != nil {
		return nil, err
	}
	if int(count) != want {
		return nil, fmt.Errorf("ml: snapshot has %d weights, spec needs %d", count, want)
	}
	weights := make([]float32, count)
	buf := make([]byte, 4)
	for i := range weights {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("ml: decode snapshot weights: %w", err)
		}
		weights[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	return &Snapshot{Spec: spec, Weights: weights}, nil
}
