package ml

import (
	"fmt"
	"math"

	"roadrunner/internal/sim"
)

// Network is a feed-forward neural network instantiated from a Spec.
// Networks are mutable training state and not safe for concurrent use; each
// simulated agent that trains concurrently does so on its own Network.
type Network struct {
	spec   Spec
	layers []layer
	nOut   int

	dlogits []float32

	// pgroups/ggroups are the layers' parameter and gradient views,
	// collected once at build time: Train consults them several times per
	// batch, and rebuilding the slices was a measurable share of the
	// training hot path.
	pgroups [][]float32
	ggroups [][]float32

	// order is the epoch shuffle buffer, reused across Train calls.
	order []int
}

// NewNetwork builds a network from spec with He-initialized weights drawn
// from rng (biases start at zero).
func NewNetwork(spec Spec, rng *sim.RNG) (*Network, error) {
	n, err := buildNetwork(spec)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("ml: nil rng")
	}
	n.initWeights(rng)
	return n, nil
}

func buildNetwork(spec Spec) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Network{spec: spec}
	cur := shapeState{c: spec.InputC, h: spec.InputH, w: spec.InputW}
	for _, ls := range spec.Layers {
		switch ls.Kind {
		case LayerDense:
			n.layers = append(n.layers, newDense(cur.size(), ls.Out))
			cur = shapeState{c: 1, h: 1, w: ls.Out, flat: true}
		case LayerReLU:
			n.layers = append(n.layers, newReLU(cur.size()))
		case LayerConv:
			n.layers = append(n.layers, newConv2D(cur.c, cur.h, cur.w, ls.Out, ls.Kernel))
			cur = shapeState{c: ls.Out, h: cur.h - ls.Kernel + 1, w: cur.w - ls.Kernel + 1}
		case LayerPool:
			n.layers = append(n.layers, newMaxPool2(cur.c, cur.h, cur.w))
			cur = shapeState{c: cur.c, h: cur.h / 2, w: cur.w / 2}
		}
	}
	n.nOut = cur.size()
	n.dlogits = make([]float32, n.nOut)
	for _, l := range n.layers {
		n.pgroups = append(n.pgroups, l.params()...)
		n.ggroups = append(n.ggroups, l.grads()...)
	}
	return n, nil
}

// initWeights applies He initialization: each weight tensor is drawn from
// N(0, 2/fanIn), suited to ReLU networks.
func (n *Network) initWeights(rng *sim.RNG) {
	for _, l := range n.layers {
		switch v := l.(type) {
		case *dense:
			std := math.Sqrt(2 / float64(v.in))
			for i := range v.w {
				v.w[i] = float32(rng.NormFloat64() * std)
			}
		case *conv2d:
			fanIn := v.inC * v.k * v.k
			std := math.Sqrt(2 / float64(fanIn))
			for i := range v.w {
				v.w[i] = float32(rng.NormFloat64() * std)
			}
		}
	}
}

// Spec returns the architecture description.
func (n *Network) Spec() Spec { return n.spec }

// OutputDim returns the logit count.
func (n *Network) OutputDim() int { return n.nOut }

// Forward runs inference and returns the logits. The returned slice is
// owned by the network and valid until the next Forward call.
func (n *Network) Forward(x []float32) ([]float32, error) {
	if len(x) != n.spec.InputDim() {
		return nil, fmt.Errorf("ml: input dim %d, want %d", len(x), n.spec.InputDim())
	}
	cur := x
	for _, l := range n.layers {
		cur = l.forward(cur)
	}
	return cur, nil
}

// Predict returns the argmax class for x.
func (n *Network) Predict(x []float32) (int, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	return Argmax(logits), nil
}

// paramGroups returns all trainable parameter slices in deterministic
// layer order. The group list is built once at network construction; the
// slices are live views into the layers.
func (n *Network) paramGroups() [][]float32 { return n.pgroups }

func (n *Network) gradGroups() [][]float32 { return n.ggroups }

func (n *Network) zeroGrads() {
	for _, l := range n.layers {
		l.zeroGrads()
	}
}

// TrainConfig bundles the local-training hyperparameters used by learning
// strategies (the paper's experiment: 2 epochs of SGD with momentum).
type TrainConfig struct {
	Epochs    int     `json:"epochs"`
	BatchSize int     `json:"batch_size"`
	LR        float64 `json:"lr"`
	Momentum  float64 `json:"momentum"`
	// ClipNorm caps the global L2 norm of each batch gradient (0 disables
	// clipping). High-skew local retraining at aggressive effective
	// learning rates can otherwise diverge to NaN, which Federated
	// Averaging then spreads to the global model.
	ClipNorm float64 `json:"clip_norm,omitempty"`
}

// DefaultTrainConfig mirrors the paper's setup: two local epochs of
// momentum-SGD with small batches.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, ClipNorm: 4}
}

// Validate reports whether the configuration is usable.
func (c TrainConfig) Validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("ml: non-positive epochs %d", c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("ml: non-positive batch size %d", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("ml: non-positive learning rate %v", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("ml: momentum %v outside [0,1)", c.Momentum)
	case c.ClipNorm < 0:
		return fmt.Errorf("ml: negative clip norm %v", c.ClipNorm)
	default:
		return nil
	}
}

// Train runs cfg.Epochs of mini-batch SGD over examples, shuffling each
// epoch with rng, and returns the mean training loss of the final epoch.
func (n *Network) Train(examples []Example, cfg TrainConfig, rng *sim.RNG) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(examples) == 0 {
		return 0, fmt.Errorf("ml: train on empty example set")
	}
	if err := ValidateExamples(examples, n.spec.InputDim(), n.nOut); err != nil {
		return 0, err
	}
	if rng == nil {
		return 0, fmt.Errorf("ml: nil rng")
	}
	opt, err := NewSGD(cfg.LR, cfg.Momentum)
	if err != nil {
		return 0, err
	}

	if cap(n.order) < len(examples) {
		n.order = make([]int, len(examples))
	}
	order := n.order[:len(examples)]
	for i := range order {
		order[i] = i
	}
	lastEpochLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			n.zeroGrads()
			batchLoss := 0.0
			for _, idx := range order[start:end] {
				ex := examples[idx]
				logits, err := n.Forward(ex.X)
				if err != nil {
					return 0, err
				}
				loss, err := SoftmaxCrossEntropy(logits, ex.Label, n.dlogits)
				if err != nil {
					return 0, err
				}
				batchLoss += loss
				n.backward(n.dlogits)
			}
			// Average gradients over the batch.
			scale := float32(1 / float64(end-start))
			for _, g := range n.gradGroups() {
				for i := range g {
					g[i] *= scale
				}
			}
			if cfg.ClipNorm > 0 {
				clipGradients(n.gradGroups(), cfg.ClipNorm)
			}
			if err := opt.Step(n.paramGroups(), n.gradGroups()); err != nil {
				return 0, err
			}
			epochLoss += batchLoss
		}
		lastEpochLoss = epochLoss / float64(len(order))
	}
	return lastEpochLoss, nil
}

func (n *Network) backward(dlogits []float32) {
	cur := dlogits
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].backward(cur)
	}
}

// Evaluate returns the classification accuracy and mean cross-entropy loss
// over examples. It does not mutate the network.
func (n *Network) Evaluate(examples []Example) (accuracy, loss float64, err error) {
	if len(examples) == 0 {
		return 0, 0, fmt.Errorf("ml: evaluate on empty example set")
	}
	if err := ValidateExamples(examples, n.spec.InputDim(), n.nOut); err != nil {
		return 0, 0, err
	}
	correct := 0
	totalLoss := 0.0
	scratch := n.dlogits // softmax scratch; no training state lives here
	for _, ex := range examples {
		logits, err := n.Forward(ex.X)
		if err != nil {
			return 0, 0, err
		}
		if Argmax(logits) == ex.Label {
			correct++
		}
		l, err := SoftmaxCrossEntropy(logits, ex.Label, scratch)
		if err != nil {
			return 0, 0, err
		}
		totalLoss += l
	}
	return float64(correct) / float64(len(examples)), totalLoss / float64(len(examples)), nil
}

// clipGradients rescales all gradient groups so their joint L2 norm does
// not exceed maxNorm.
func clipGradients(groups [][]float32, maxNorm float64) {
	var sumSq float64
	for _, g := range groups {
		for _, v := range g {
			sumSq += float64(v) * float64(v)
		}
	}
	norm := math.Sqrt(sumSq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := float32(maxNorm / norm)
	for _, g := range groups {
		for i := range g {
			g[i] *= scale
		}
	}
}
