package ml

import "fmt"

// SGD implements stochastic gradient descent with classical momentum —
// the optimizer the paper's experiment uses ("two epochs of stochastic
// gradient descent with momentum"). The velocity state is lazily shaped to
// the parameter set on the first Step.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum is the velocity retention factor (0 disables momentum).
	Momentum float64

	velocity [][]float32
}

// NewSGD returns an optimizer with the given hyperparameters.
func NewSGD(lr, momentum float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("ml: non-positive learning rate %v", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("ml: momentum %v outside [0,1)", momentum)
	}
	return &SGD{LR: lr, Momentum: momentum}, nil
}

// Step applies one update: v = momentum*v + grad; param -= lr * v.
// params and grads must be parallel and stable across calls (the velocity
// state is indexed positionally).
func (s *SGD) Step(params, grads [][]float32) error {
	if len(params) != len(grads) {
		return fmt.Errorf("ml: sgd: %d param groups but %d grad groups", len(params), len(grads))
	}
	if s.velocity == nil {
		s.velocity = make([][]float32, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float32, len(p))
		}
	}
	if len(s.velocity) != len(params) {
		return fmt.Errorf("ml: sgd: parameter group count changed from %d to %d", len(s.velocity), len(params))
	}
	lr := float32(s.LR)
	mom := float32(s.Momentum)
	for i, p := range params {
		g := grads[i]
		v := s.velocity[i]
		if len(p) != len(g) || len(p) != len(v) {
			return fmt.Errorf("ml: sgd: group %d size mismatch (param %d, grad %d, velocity %d)",
				i, len(p), len(g), len(v))
		}
		for j := range p {
			v[j] = mom*v[j] + g[j]
			p[j] -= lr * v[j]
		}
	}
	return nil
}

// Reset clears the momentum state (used when a vehicle receives a fresh
// global model: momentum from the previous round's weights is stale).
func (s *SGD) Reset() { s.velocity = nil }
