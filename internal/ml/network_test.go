package ml

import (
	"bytes"
	"math"
	"testing"

	"roadrunner/internal/sim"
)

// blobs generates a linearly separable 2-class dataset: class 0 centered at
// (-2,...), class 1 at (+2,...), with unit noise.
func blobs(rng *sim.RNG, n, dim, classes int) []Example {
	out := make([]Example, n)
	for i := range out {
		label := i % classes
		x := make([]float32, dim)
		for d := range x {
			center := 0.0
			if d%classes == label {
				center = 2.5
			}
			x[d] = float32(center + rng.NormFloat64()*0.8)
		}
		out[i] = Example{X: x, Label: label}
	}
	return out
}

func TestNetworkLearnsSeparableData(t *testing.T) {
	rng := sim.NewRNG(42)
	train := blobs(rng, 200, 8, 4)
	test := blobs(rng, 100, 8, 4)
	n, err := NewNetwork(MLPSpec(8, []int{16}, 4), rng.Fork("init"))
	if err != nil {
		t.Fatal(err)
	}
	accBefore, _, err := n.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.05, Momentum: 0.9}
	loss, err := n.Train(train, cfg, rng.Fork("train"))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	accAfter, _, err := n.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if accAfter < 0.9 {
		t.Fatalf("accuracy after training = %v (before %v), want >= 0.9", accAfter, accBefore)
	}
	if accAfter <= accBefore {
		t.Fatalf("training did not improve accuracy: %v -> %v", accBefore, accAfter)
	}
	if math.IsNaN(loss) || loss < 0 {
		t.Fatalf("bad final loss %v", loss)
	}
}

func TestNetworkTrainingReducesLoss(t *testing.T) {
	rng := sim.NewRNG(7)
	data := blobs(rng, 100, 6, 3)
	n, err := NewNetwork(MLPSpec(6, []int{10}, 3), rng.Fork("init"))
	if err != nil {
		t.Fatal(err)
	}
	_, lossBefore, err := n.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(data, TrainConfig{Epochs: 10, BatchSize: 10, LR: 0.05, Momentum: 0.9}, rng.Fork("t")); err != nil {
		t.Fatal(err)
	}
	_, lossAfter, err := n.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if lossAfter >= lossBefore {
		t.Fatalf("loss did not decrease: %v -> %v", lossBefore, lossAfter)
	}
}

func TestNetworkDeterministicTraining(t *testing.T) {
	build := func() *Snapshot {
		rng := sim.NewRNG(5)
		data := blobs(rng, 60, 4, 2)
		n, err := NewNetwork(MLPSpec(4, []int{6}, 2), sim.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(data, TrainConfig{Epochs: 3, BatchSize: 8, LR: 0.05, Momentum: 0.9}, sim.NewRNG(11)); err != nil {
			t.Fatal(err)
		}
		return n.Snapshot()
	}
	a, b := build(), build()
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weight %d differs between identically seeded trainings", i)
		}
	}
}

func TestSnapshotRestoresWeights(t *testing.T) {
	rng := sim.NewRNG(3)
	n, err := NewNetwork(MLPSpec(4, []int{5}, 3), rng)
	if err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	// Train to change weights, then restore.
	data := blobs(rng, 40, 4, 3)
	if _, err := n.Train(data, TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.1, Momentum: 0}, rng); err != nil {
		t.Fatal(err)
	}
	after := n.Snapshot()
	if weightsClose(snap.Weights, after.Weights, 1e-9) {
		t.Fatal("training did not change weights; test is vacuous")
	}
	restored, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !weightsClose(restored.Snapshot().Weights, snap.Weights, 0) {
		t.Fatal("LoadSnapshot did not restore the exact weights")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	rng := sim.NewRNG(4)
	n, err := NewNetwork(MLPSpec(3, nil, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	before := snap.Weights[0]
	data := blobs(rng, 30, 3, 2)
	if _, err := n.Train(data, TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.2, Momentum: 0}, rng); err != nil {
		t.Fatal(err)
	}
	if snap.Weights[0] != before {
		t.Fatal("training mutated a previously taken snapshot")
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(6)
	spec := CNNSpec(12, 12, 2, 3, 4, 3, 10, 8, 5)
	n, err := NewNetwork(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if buf.Len() != snap.WireBytes() {
		t.Fatalf("encoded %d bytes, WireBytes reports %d", buf.Len(), snap.WireBytes())
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !got.Spec.Equal(&snap.Spec) {
		t.Fatal("decoded spec differs")
	}
	if !weightsClose(got.Weights, snap.Weights, 0) {
		t.Fatal("decoded weights differ")
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input decoded")
	}
	if _, err := DecodeSnapshot(bytes.NewReader([]byte("XXXX123456789"))); err == nil {
		t.Fatal("bad magic decoded")
	}
	// Valid magic, truncated rest.
	if _, err := DecodeSnapshot(bytes.NewReader([]byte("RRML"))); err == nil {
		t.Fatal("truncated input decoded")
	}
}

func TestSnapshotCloneIndependent(t *testing.T) {
	rng := sim.NewRNG(8)
	n, err := NewNetwork(MLPSpec(2, nil, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	a := n.Snapshot()
	b := a.Clone()
	b.Weights[0] += 42
	if a.Weights[0] == b.Weights[0] {
		t.Fatal("clone shares weight storage")
	}
}

func TestSetWeightsValidatesLength(t *testing.T) {
	n, err := NewNetwork(MLPSpec(2, nil, 2), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetWeights(make([]float32, 3)); err == nil {
		t.Fatal("wrong-length weight vector accepted")
	}
}

func TestLoadSnapshotRejectsBad(t *testing.T) {
	if _, err := LoadSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	bad := &Snapshot{Spec: MLPSpec(2, nil, 2), Weights: []float32{1}}
	if _, err := LoadSnapshot(bad); err == nil {
		t.Fatal("wrong-length snapshot accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	n, err := NewNetwork(MLPSpec(2, nil, 2), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	good := []Example{{X: []float32{1, 2}, Label: 0}}
	cfg := DefaultTrainConfig()

	if _, err := n.Train(nil, cfg, rng); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := n.Train(good, TrainConfig{}, rng); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := n.Train(good, cfg, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	badDim := []Example{{X: []float32{1}, Label: 0}}
	if _, err := n.Train(badDim, cfg, rng); err == nil {
		t.Fatal("wrong-dim examples accepted")
	}
	badLabel := []Example{{X: []float32{1, 2}, Label: 5}}
	if _, err := n.Train(badLabel, cfg, rng); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, _, err := n.Evaluate(nil); err == nil {
		t.Fatal("empty evaluation set accepted")
	}
}

func TestForwardValidatesDim(t *testing.T) {
	n, err := NewNetwork(MLPSpec(4, nil, 2), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Forward(make([]float32, 3)); err == nil {
		t.Fatal("wrong input dim accepted")
	}
	if _, err := n.Predict(make([]float32, 5)); err == nil {
		t.Fatal("Predict with wrong dim accepted")
	}
}

func TestNewNetworkRejectsBadSpec(t *testing.T) {
	if _, err := NewNetwork(Spec{}, sim.NewRNG(1)); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := NewNetwork(MLPSpec(2, nil, 2), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestCNNTrainsOnTinyImages(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	rng := sim.NewRNG(10)
	const h, w, c, classes = 12, 12, 1, 3
	dim := h * w * c
	// Class k = bright band at rows [k*2, k*2+2).
	gen := func(n int) []Example {
		out := make([]Example, n)
		for i := range out {
			label := i % classes
			x := make([]float32, dim)
			for row := 0; row < h; row++ {
				for col := 0; col < w; col++ {
					v := rng.NormFloat64() * 0.3
					if row >= label*2 && row < label*2+2 {
						v += 2
					}
					x[row*w+col] = float32(v)
				}
			}
			out[i] = Example{X: x, Label: label}
		}
		return out
	}
	train, test := gen(120), gen(60)
	n, err := NewNetwork(CNNSpec(h, w, c, 4, 6, 3, 16, 8, classes), rng.Fork("init"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(train, TrainConfig{Epochs: 15, BatchSize: 12, LR: 0.03, Momentum: 0.9}, rng.Fork("t")); err != nil {
		t.Fatal(err)
	}
	acc, _, err := n.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("CNN accuracy = %v, want >= 0.85 on trivially separable images", acc)
	}
}

func TestSpecHelpers(t *testing.T) {
	spec := CNNSpec(16, 16, 3, 6, 12, 3, 32, 16, 10)
	if err := spec.Validate(); err != nil {
		t.Fatalf("paper CNN spec invalid: %v", err)
	}
	out, err := spec.OutputDim()
	if err != nil || out != 10 {
		t.Fatalf("OutputDim = %d, %v", out, err)
	}
	params, err := spec.ParamCount()
	if err != nil {
		t.Fatal(err)
	}
	// conv1: 6*3*9+6=168; conv2: 12*6*9+12=660; dims: 16->14->7->5->2;
	// fc: 48*32+32=1568, 32*16+16=528, 16*10+10=170. Total 3094.
	if params != 3094 {
		t.Fatalf("ParamCount = %d, want 3094", params)
	}
	flops, err := spec.TrainFLOPs()
	if err != nil || flops <= 0 {
		t.Fatalf("TrainFLOPs = %v, %v", flops, err)
	}
	fwd, err := spec.ForwardFLOPs()
	if err != nil {
		t.Fatal(err)
	}
	if flops != 3*fwd {
		t.Fatalf("TrainFLOPs %v != 3x ForwardFLOPs %v", flops, fwd)
	}
	if spec.InputDim() != 768 {
		t.Fatalf("InputDim = %d", spec.InputDim())
	}
}

func TestSpecValidateRejectsBad(t *testing.T) {
	bad := []Spec{
		{},                                // no input
		{InputH: 4, InputW: 4, InputC: 1}, // no layers
		{InputH: 4, InputW: 4, InputC: 1, Layers: []LayerSpec{{Kind: LayerDense, Out: 0}}},
		{InputH: 4, InputW: 4, InputC: 1, Layers: []LayerSpec{{Kind: LayerConv, Out: 2, Kernel: 5}}},                             // kernel too big
		{InputH: 4, InputW: 4, InputC: 1, Layers: []LayerSpec{{Kind: LayerDense, Out: 2}, {Kind: LayerConv, Out: 2, Kernel: 1}}}, // conv after dense
		{InputH: 1, InputW: 4, InputC: 1, Layers: []LayerSpec{{Kind: LayerPool}}},                                                // pool on 1-high input
		{InputH: 4, InputW: 4, InputC: 1, Layers: []LayerSpec{{Kind: LayerKind(99)}}},                                            // unknown kind
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestSpecEqual(t *testing.T) {
	a := MLPSpec(4, []int{3}, 2)
	b := MLPSpec(4, []int{3}, 2)
	if !a.Equal(&b) {
		t.Fatal("identical specs not equal")
	}
	c := MLPSpec(4, []int{5}, 2)
	if a.Equal(&c) {
		t.Fatal("different specs equal")
	}
	d := MLPSpec(5, []int{3}, 2)
	if a.Equal(&d) {
		t.Fatal("different input dims equal")
	}
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	logits := []float32{0, 0}
	d := make([]float32, 2)
	loss, err := SoftmaxCrossEntropy(logits, 0, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(float64(d[0]+0.5)) > 1e-6 || math.Abs(float64(d[1]-0.5)) > 1e-6 {
		t.Fatalf("dlogits = %v, want [-0.5 0.5]", d)
	}
}

func TestSoftmaxCrossEntropyValidation(t *testing.T) {
	if _, err := SoftmaxCrossEntropy([]float32{1, 2}, 5, make([]float32, 2)); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := SoftmaxCrossEntropy([]float32{1, 2}, 0, make([]float32, 1)); err == nil {
		t.Fatal("bad dlogits length accepted")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	p := Softmax([]float32{1000, 1000, 999})
	sum := float32(0)
	for _, v := range p {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflow: %v", p)
		}
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax(nil) != -1 {
		t.Fatal("Argmax(nil) != -1")
	}
	if Argmax([]float32{1, 5, 3}) != 1 {
		t.Fatal("Argmax wrong")
	}
	if Argmax([]float32{2, 2}) != 0 {
		t.Fatal("Argmax tie should pick lowest index")
	}
}

func TestSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0); err == nil {
		t.Fatal("zero lr accepted")
	}
	if _, err := NewSGD(0.1, 1); err == nil {
		t.Fatal("momentum 1 accepted")
	}
	if _, err := NewSGD(0.1, -0.1); err == nil {
		t.Fatal("negative momentum accepted")
	}
	s, err := NewSGD(0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([][]float32{{1}}, nil); err == nil {
		t.Fatal("mismatched groups accepted")
	}
	if err := s.Step([][]float32{{1, 2}}, [][]float32{{1}}); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	// With constant gradient g, momentum builds velocity: after two steps
	// the parameter has moved by lr*g + lr*(m*g + g).
	s, err := NewSGD(0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := [][]float32{{0}}
	g := [][]float32{{1}}
	if err := s.Step(p, g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p[0][0]+0.1)) > 1e-7 {
		t.Fatalf("after step 1: %v, want -0.1", p[0][0])
	}
	if err := s.Step(p, g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p[0][0]+0.25)) > 1e-7 {
		t.Fatalf("after step 2: %v, want -0.25", p[0][0])
	}
	s.Reset()
	if err := s.Step(p, g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p[0][0]+0.35)) > 1e-7 {
		t.Fatalf("after reset+step: %v, want -0.35 (velocity cleared)", p[0][0])
	}
}

func TestLayerKindString(t *testing.T) {
	for k, want := range map[LayerKind]string{
		LayerDense: "dense", LayerReLU: "relu", LayerConv: "conv", LayerPool: "pool",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if LayerKind(0).String() != "unknown(0)" {
		t.Errorf("unknown kind String = %q", LayerKind(0).String())
	}
}
