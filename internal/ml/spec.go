package ml

import (
	"fmt"
)

// LayerKind enumerates the layer types the module supports.
type LayerKind int

const (
	// LayerDense is a fully connected layer.
	LayerDense LayerKind = iota + 1
	// LayerReLU is a rectified-linear activation.
	LayerReLU
	// LayerConv is a 2-D convolution (stride 1, valid padding).
	LayerConv
	// LayerPool is a 2x2 max-pool with stride 2.
	LayerPool
)

// String returns the lower-case layer name.
func (k LayerKind) String() string {
	switch k {
	case LayerDense:
		return "dense"
	case LayerReLU:
		return "relu"
	case LayerConv:
		return "conv"
	case LayerPool:
		return "pool"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// LayerSpec describes one layer. Out is the output feature count for dense
// layers and the output channel count for conv layers; Kernel is the square
// kernel size for conv layers. ReLU and pool layers carry no parameters.
type LayerSpec struct {
	Kind   LayerKind `json:"kind"`
	Out    int       `json:"out,omitempty"`
	Kernel int       `json:"kernel,omitempty"`
}

// Spec is a complete, serializable architecture description: it determines
// the network's parameter layout exactly, which is what makes snapshots of
// two agents' models aggregatable (they must share a Spec). Input images
// are channel-major: the feature vector holds InputC planes of
// InputH×InputW values.
type Spec struct {
	InputH int         `json:"input_h"`
	InputW int         `json:"input_w"`
	InputC int         `json:"input_c"`
	Layers []LayerSpec `json:"layers"`
}

// shapeState tracks the activation shape while walking a Spec.
type shapeState struct {
	c, h, w int
	flat    bool // true once a dense layer has been applied
}

func (s shapeState) size() int { return s.c * s.h * s.w }

// walk validates the spec layer by layer, invoking visit with the incoming
// shape for each layer.
func (s *Spec) walk(visit func(i int, ls LayerSpec, in shapeState) error) error {
	if s.InputH <= 0 || s.InputW <= 0 || s.InputC <= 0 {
		return fmt.Errorf("ml: spec: invalid input shape %dx%dx%d", s.InputH, s.InputW, s.InputC)
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("ml: spec: no layers")
	}
	cur := shapeState{c: s.InputC, h: s.InputH, w: s.InputW}
	for i, ls := range s.Layers {
		if visit != nil {
			if err := visit(i, ls, cur); err != nil {
				return err
			}
		}
		switch ls.Kind {
		case LayerDense:
			if ls.Out <= 0 {
				return fmt.Errorf("ml: spec layer %d: dense with out=%d", i, ls.Out)
			}
			cur = shapeState{c: 1, h: 1, w: ls.Out, flat: true}
		case LayerReLU:
			// shape unchanged
		case LayerConv:
			if cur.flat {
				return fmt.Errorf("ml: spec layer %d: conv after dense", i)
			}
			if ls.Out <= 0 || ls.Kernel <= 0 {
				return fmt.Errorf("ml: spec layer %d: conv with out=%d kernel=%d", i, ls.Out, ls.Kernel)
			}
			oh, ow := cur.h-ls.Kernel+1, cur.w-ls.Kernel+1
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("ml: spec layer %d: kernel %d too large for %dx%d input", i, ls.Kernel, cur.h, cur.w)
			}
			cur = shapeState{c: ls.Out, h: oh, w: ow}
		case LayerPool:
			if cur.flat {
				return fmt.Errorf("ml: spec layer %d: pool after dense", i)
			}
			oh, ow := cur.h/2, cur.w/2
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("ml: spec layer %d: pool on %dx%d input", i, cur.h, cur.w)
			}
			cur = shapeState{c: cur.c, h: oh, w: ow}
		default:
			return fmt.Errorf("ml: spec layer %d: unknown kind %d", i, int(ls.Kind))
		}
	}
	if cur.size() <= 0 {
		return fmt.Errorf("ml: spec: degenerate output shape")
	}
	return nil
}

// Validate checks the architecture for structural soundness.
func (s *Spec) Validate() error { return s.walk(nil) }

// InputDim returns the expected feature-vector length.
func (s *Spec) InputDim() int { return s.InputH * s.InputW * s.InputC }

// OutputDim returns the network's output dimension (the class count for a
// classifier ending in a dense layer).
func (s *Spec) OutputDim() (int, error) {
	cur := shapeState{}
	err := s.walk(func(i int, ls LayerSpec, in shapeState) error { return nil })
	if err != nil {
		return 0, err
	}
	// Re-walk to obtain the final shape (walk validated already).
	cur = shapeState{c: s.InputC, h: s.InputH, w: s.InputW}
	for _, ls := range s.Layers {
		switch ls.Kind {
		case LayerDense:
			cur = shapeState{c: 1, h: 1, w: ls.Out, flat: true}
		case LayerConv:
			cur = shapeState{c: ls.Out, h: cur.h - ls.Kernel + 1, w: cur.w - ls.Kernel + 1}
		case LayerPool:
			cur = shapeState{c: cur.c, h: cur.h / 2, w: cur.w / 2}
		}
	}
	return cur.size(), nil
}

// ParamCount returns the total number of trainable parameters.
func (s *Spec) ParamCount() (int, error) {
	total := 0
	err := s.walk(func(i int, ls LayerSpec, in shapeState) error {
		switch ls.Kind {
		case LayerDense:
			total += in.size()*ls.Out + ls.Out
		case LayerConv:
			total += ls.Out*in.c*ls.Kernel*ls.Kernel + ls.Out
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// ForwardFLOPs estimates the floating-point operations of one forward pass
// on one example (multiply and add counted separately).
func (s *Spec) ForwardFLOPs() (float64, error) {
	total := 0.0
	err := s.walk(func(i int, ls LayerSpec, in shapeState) error {
		switch ls.Kind {
		case LayerDense:
			total += 2 * float64(in.size()) * float64(ls.Out)
		case LayerConv:
			oh, ow := in.h-ls.Kernel+1, in.w-ls.Kernel+1
			total += 2 * float64(oh*ow) * float64(ls.Out) * float64(in.c*ls.Kernel*ls.Kernel)
		case LayerReLU, LayerPool:
			total += float64(in.size())
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// TrainFLOPs estimates the operations of one training step on one example.
// The backward pass costs roughly twice the forward pass (gradient w.r.t.
// inputs plus gradients w.r.t. weights), giving the standard 3x factor.
func (s *Spec) TrainFLOPs() (float64, error) {
	fwd, err := s.ForwardFLOPs()
	if err != nil {
		return 0, err
	}
	return 3 * fwd, nil
}

// Equal reports whether two specs describe the identical architecture.
func (s *Spec) Equal(o *Spec) bool {
	if s.InputH != o.InputH || s.InputW != o.InputW || s.InputC != o.InputC {
		return false
	}
	if len(s.Layers) != len(o.Layers) {
		return false
	}
	for i := range s.Layers {
		if s.Layers[i] != o.Layers[i] {
			return false
		}
	}
	return true
}

// MLPSpec builds a multi-layer perceptron over flat feature vectors:
// inputDim -> hidden[0] -> ... -> classes, with ReLU between dense layers.
func MLPSpec(inputDim int, hidden []int, classes int) Spec {
	s := Spec{InputH: 1, InputW: inputDim, InputC: 1}
	for _, h := range hidden {
		s.Layers = append(s.Layers, LayerSpec{Kind: LayerDense, Out: h}, LayerSpec{Kind: LayerReLU})
	}
	s.Layers = append(s.Layers, LayerSpec{Kind: LayerDense, Out: classes})
	return s
}

// CNNSpec builds the paper's evaluation architecture — "two convolutional
// layers with max pooling followed by three fully connected layers" — over
// h×w×c channel-major images: conv(c1,k)/ReLU/pool, conv(c2,k)/ReLU/pool,
// dense(fc1)/ReLU, dense(fc2)/ReLU, dense(classes).
func CNNSpec(h, w, c, c1, c2, kernel, fc1, fc2, classes int) Spec {
	return Spec{
		InputH: h, InputW: w, InputC: c,
		Layers: []LayerSpec{
			{Kind: LayerConv, Out: c1, Kernel: kernel},
			{Kind: LayerReLU},
			{Kind: LayerPool},
			{Kind: LayerConv, Out: c2, Kernel: kernel},
			{Kind: LayerReLU},
			{Kind: LayerPool},
			{Kind: LayerDense, Out: fc1},
			{Kind: LayerReLU},
			{Kind: LayerDense, Out: fc2},
			{Kind: LayerReLU},
			{Kind: LayerDense, Out: classes},
		},
	}
}
