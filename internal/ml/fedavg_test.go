package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/sim"
)

func snapshotWith(t *testing.T, spec Spec, seed uint64) *Snapshot {
	t.Helper()
	n, err := NewNetwork(spec, sim.NewRNG(seed))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n.Snapshot()
}

func weightsClose(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol {
			return false
		}
	}
	return true
}

func TestFedAvgSingleModelIdentity(t *testing.T) {
	spec := MLPSpec(4, []int{3}, 2)
	s := snapshotWith(t, spec, 1)
	avg, err := FedAvg([]*Snapshot{s}, []float64{80})
	if err != nil {
		t.Fatalf("FedAvg: %v", err)
	}
	if !weightsClose(avg.Weights, s.Weights, 1e-7) {
		t.Fatal("FedAvg of one model is not the identity")
	}
}

func TestFedAvgEqualWeightsIsMean(t *testing.T) {
	spec := MLPSpec(3, nil, 2)
	a := snapshotWith(t, spec, 1)
	b := snapshotWith(t, spec, 2)
	avg, err := FedAvg([]*Snapshot{a, b}, []float64{10, 10})
	if err != nil {
		t.Fatalf("FedAvg: %v", err)
	}
	for i := range avg.Weights {
		want := (a.Weights[i] + b.Weights[i]) / 2
		if math.Abs(float64(avg.Weights[i]-want)) > 1e-6 {
			t.Fatalf("weight %d = %v, want midpoint %v", i, avg.Weights[i], want)
		}
	}
}

func TestFedAvgWeighting(t *testing.T) {
	spec := MLPSpec(2, nil, 2)
	a := snapshotWith(t, spec, 1)
	b := snapshotWith(t, spec, 2)
	// All the weight on b: result must equal b.
	avg, err := FedAvg([]*Snapshot{a, b}, []float64{0, 50})
	if err != nil {
		t.Fatalf("FedAvg: %v", err)
	}
	if !weightsClose(avg.Weights, b.Weights, 1e-7) {
		t.Fatal("FedAvg with all weight on one model did not return that model")
	}
}

// TestFedAvgAssociativity is the correctness core of the paper's OPP
// strategy (Figure 3): intermediate aggregation at reporters must be
// indistinguishable from flat aggregation at the server.
func TestFedAvgAssociativity(t *testing.T) {
	spec := MLPSpec(5, []int{4}, 3)
	a := snapshotWith(t, spec, 1)
	b := snapshotWith(t, spec, 2)
	c := snapshotWith(t, spec, 3)
	da, db, dc := 80.0, 40.0, 120.0

	flat, err := FedAvg([]*Snapshot{a, b, c}, []float64{da, db, dc})
	if err != nil {
		t.Fatalf("flat FedAvg: %v", err)
	}
	inner, err := FedAvg([]*Snapshot{a, b}, []float64{da, db})
	if err != nil {
		t.Fatalf("inner FedAvg: %v", err)
	}
	nested, err := FedAvg([]*Snapshot{inner, c}, []float64{da + db, dc})
	if err != nil {
		t.Fatalf("nested FedAvg: %v", err)
	}
	if !weightsClose(flat.Weights, nested.Weights, 1e-6) {
		t.Fatal("FedAvg is not associative: intermediate aggregation diverges from flat aggregation")
	}
}

func TestFedAvgAssociativityProperty(t *testing.T) {
	spec := MLPSpec(3, nil, 2)
	snaps := make([]*Snapshot, 5)
	for i := range snaps {
		snaps[i] = snapshotWith(t, spec, uint64(i+1))
	}
	prop := func(rawAmounts [5]uint8, split uint8) bool {
		amounts := make([]float64, 5)
		for i, v := range rawAmounts {
			amounts[i] = float64(v%100) + 1
		}
		k := int(split)%3 + 1 // split point in [1,3]
		flat, err := FedAvg(snaps, amounts)
		if err != nil {
			return false
		}
		left, err := FedAvg(snaps[:k], amounts[:k])
		if err != nil {
			return false
		}
		right, err := FedAvg(snaps[k:], amounts[k:])
		if err != nil {
			return false
		}
		var leftSum, rightSum float64
		for _, v := range amounts[:k] {
			leftSum += v
		}
		for _, v := range amounts[k:] {
			rightSum += v
		}
		nested, err := FedAvg([]*Snapshot{left, right}, []float64{leftSum, rightSum})
		if err != nil {
			return false
		}
		return weightsClose(flat.Weights, nested.Weights, 1e-5)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFedAvgConvexity: every averaged weight lies within the min/max of the
// contributing weights.
func TestFedAvgConvexityProperty(t *testing.T) {
	spec := MLPSpec(4, nil, 3)
	snaps := make([]*Snapshot, 4)
	for i := range snaps {
		snaps[i] = snapshotWith(t, spec, uint64(10+i))
	}
	prop := func(rawAmounts [4]uint8) bool {
		amounts := make([]float64, 4)
		for i, v := range rawAmounts {
			amounts[i] = float64(v%50) + 1
		}
		avg, err := FedAvg(snaps, amounts)
		if err != nil {
			return false
		}
		for j := range avg.Weights {
			lo, hi := snaps[0].Weights[j], snaps[0].Weights[j]
			for _, s := range snaps[1:] {
				if s.Weights[j] < lo {
					lo = s.Weights[j]
				}
				if s.Weights[j] > hi {
					hi = s.Weights[j]
				}
			}
			if float64(avg.Weights[j]) < float64(lo)-1e-6 || float64(avg.Weights[j]) > float64(hi)+1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFedAvgRejectsBadInputs(t *testing.T) {
	spec := MLPSpec(2, nil, 2)
	s := snapshotWith(t, spec, 1)
	other := snapshotWith(t, MLPSpec(3, nil, 2), 2)

	if _, err := FedAvg(nil, nil); err == nil {
		t.Fatal("empty aggregation succeeded")
	}
	if _, err := FedAvg([]*Snapshot{s}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch succeeded")
	}
	if _, err := FedAvg([]*Snapshot{s, nil}, []float64{1, 1}); err == nil {
		t.Fatal("nil model succeeded")
	}
	if _, err := FedAvg([]*Snapshot{s, other}, []float64{1, 1}); err == nil {
		t.Fatal("architecture mismatch succeeded")
	}
	if _, err := FedAvg([]*Snapshot{s}, []float64{-1}); err == nil {
		t.Fatal("negative data amount succeeded")
	}
	if _, err := FedAvg([]*Snapshot{s}, []float64{0}); err == nil {
		t.Fatal("zero total data amount succeeded")
	}
	if _, err := FedAvg([]*Snapshot{s}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN data amount succeeded")
	}
}

func TestFedAvgDoesNotAliasInputs(t *testing.T) {
	spec := MLPSpec(2, nil, 2)
	a := snapshotWith(t, spec, 1)
	before := a.Weights[0]
	avg, err := FedAvg([]*Snapshot{a}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	avg.Weights[0] += 100
	if a.Weights[0] != before {
		t.Fatal("mutating the aggregate mutated an input snapshot")
	}
}
