package ml

import "math"

// layer is one differentiable stage of a network. Layers operate on single
// examples (flat float32 activations); batching is handled above them by
// accumulating gradients across a mini-batch before an optimizer step.
// Forward caches whatever backward needs, so a layer instance serves one
// example at a time — each simulated agent trains on its own Network clone,
// so this needs no locking.
type layer interface {
	// forward computes the layer output for input x. The returned slice is
	// owned by the layer and valid until the next forward call.
	forward(x []float32) []float32
	// backward consumes the gradient w.r.t. the layer output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the input. The
	// returned slice is owned by the layer.
	backward(dout []float32) []float32
	// params returns the trainable parameter slices (empty for stateless
	// layers). The slices are live views; mutating them updates the layer.
	params() [][]float32
	// grads returns the accumulated gradient slices, parallel to params.
	grads() [][]float32
	// zeroGrads clears the accumulated gradients.
	zeroGrads()
}

// dense is a fully connected layer: y = Wx + b, with W stored row-major
// [out][in].
type dense struct {
	in, out int
	w, b    []float32
	dw, db  []float32

	x  []float32 // cached input
	y  []float32
	dx []float32
}

func newDense(in, out int) *dense {
	return &dense{
		in: in, out: out,
		w:  make([]float32, in*out),
		b:  make([]float32, out),
		dw: make([]float32, in*out),
		db: make([]float32, out),
		y:  make([]float32, out),
		dx: make([]float32, in),
	}
}

func (d *dense) forward(x []float32) []float32 {
	d.x = x
	for o := 0; o < d.out; o++ {
		row := d.w[o*d.in : (o+1)*d.in]
		sum := d.b[o]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.y[o] = sum
	}
	return d.y
}

func (d *dense) backward(dout []float32) []float32 {
	for i := range d.dx {
		d.dx[i] = 0
	}
	for o := 0; o < d.out; o++ {
		g := dout[o]
		if g == 0 {
			continue
		}
		row := d.w[o*d.in : (o+1)*d.in]
		drow := d.dw[o*d.in : (o+1)*d.in]
		d.db[o] += g
		for i, xi := range d.x {
			drow[i] += g * xi
			d.dx[i] += row[i] * g
		}
	}
	return d.dx
}

func (d *dense) params() [][]float32 { return [][]float32{d.w, d.b} }
func (d *dense) grads() [][]float32  { return [][]float32{d.dw, d.db} }

func (d *dense) zeroGrads() {
	zero(d.dw)
	zero(d.db)
}

// relu is the rectified-linear activation. Both passes are branchless: the
// forward pass derives a per-element keep/zero bitmask from the input's
// sign and magnitude bits (activation signs are data-dependent, so a
// compare-and-branch mispredicts constantly on the training hot path) and
// the backward pass reuses the stored mask, guaranteeing the two passes
// agree on the pass-through set.
type relu struct {
	y    []float32
	dx   []float32
	mask []uint32 // all-ones where the input was positive, else zero
}

func newReLU(size int) *relu {
	return &relu{
		y:    make([]float32, size),
		dx:   make([]float32, size),
		mask: make([]uint32, size),
	}
}

func (r *relu) forward(x []float32) []float32 {
	y := r.y
	mask := r.mask
	for i, v := range x {
		b := math.Float32bits(v)
		// Sign bit of (b | -b) is set iff b != 0; clearing elements whose
		// own sign bit is set then leaves exactly the positive inputs.
		m := uint32(int32(^b&(b|(0-b))) >> 31)
		y[i] = math.Float32frombits(b & m)
		mask[i] = m
	}
	return y
}

func (r *relu) backward(dout []float32) []float32 {
	dx := r.dx
	for i, g := range dout {
		dx[i] = math.Float32frombits(math.Float32bits(g) & r.mask[i])
	}
	return r.dx
}

func (r *relu) params() [][]float32 { return nil }
func (r *relu) grads() [][]float32  { return nil }
func (r *relu) zeroGrads()          {}

func zero(s []float32) {
	for i := range s {
		s[i] = 0
	}
}
