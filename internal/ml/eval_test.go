package ml

import (
	"math"
	"testing"

	"roadrunner/internal/sim"
)

func TestConfusionMatrixConsistentWithEvaluate(t *testing.T) {
	rng := sim.NewRNG(21)
	data := blobs(rng, 150, 6, 3)
	n, err := NewNetwork(MLPSpec(6, []int{10}, 3), rng.Fork("init"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(data, TrainConfig{Epochs: 8, BatchSize: 10, LR: 0.05, Momentum: 0.9}, rng.Fork("t")); err != nil {
		t.Fatal(err)
	}
	m, err := n.Confusion(data)
	if err != nil {
		t.Fatal(err)
	}
	acc, _, err := n.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Accuracy()-acc) > 1e-12 {
		t.Fatalf("confusion accuracy %v != Evaluate accuracy %v", m.Accuracy(), acc)
	}
	total := 0
	for _, row := range m {
		for _, c := range row {
			total += c
		}
	}
	if total != len(data) {
		t.Fatalf("matrix mass %d != example count %d", total, len(data))
	}
}

func TestConfusionPerClassRecall(t *testing.T) {
	m := ConfusionMatrix{
		{8, 2}, // class 0: 80% recall
		{5, 5}, // class 1: 50% recall
	}
	recall := m.PerClassRecall()
	if recall[0] != 0.8 || recall[1] != 0.5 {
		t.Fatalf("recall = %v", recall)
	}
	if m.CoveredClasses() != 2 {
		t.Fatalf("covered = %d", m.CoveredClasses())
	}
	collapsed := ConfusionMatrix{
		{10, 0},
		{10, 0}, // model always predicts class 0
	}
	if collapsed.CoveredClasses() != 1 {
		t.Fatalf("collapsed covered = %d, want 1", collapsed.CoveredClasses())
	}
}

func TestConfusionEmptyAndInvalid(t *testing.T) {
	n, err := NewNetwork(MLPSpec(2, nil, 2), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Confusion(nil); err == nil {
		t.Fatal("empty example set accepted")
	}
	bad := []Example{{X: []float32{1}, Label: 0}}
	if _, err := n.Confusion(bad); err == nil {
		t.Fatal("wrong-dim examples accepted")
	}
	var zero ConfusionMatrix
	if zero.Accuracy() != 0 {
		t.Fatal("empty matrix accuracy != 0")
	}
	emptyRows := ConfusionMatrix{{0, 0}, {0, 0}}
	recall := emptyRows.PerClassRecall()
	if recall[0] != 0 || recall[1] != 0 {
		t.Fatalf("empty-row recall = %v", recall)
	}
}
