package ml

import (
	"math"
	"testing"

	"roadrunner/internal/sim"
)

// numericalGradCheck verifies, for every trainable parameter of the network
// (sampled if there are many), that the analytic gradient matches the
// central finite difference of the loss. This pins down the entire manual
// backpropagation implementation.
func numericalGradCheck(t *testing.T, spec Spec, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	n, err := NewNetwork(spec, rng)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	x := make([]float32, spec.InputDim())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	label := rng.Intn(n.OutputDim())

	lossAt := func() float64 {
		logits, err := n.Forward(x)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		scratch := make([]float32, len(logits))
		loss, err := SoftmaxCrossEntropy(logits, label, scratch)
		if err != nil {
			t.Fatalf("SoftmaxCrossEntropy: %v", err)
		}
		return loss
	}

	// Analytic gradients.
	n.zeroGrads()
	logits, err := n.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	dlogits := make([]float32, len(logits))
	if _, err := SoftmaxCrossEntropy(logits, label, dlogits); err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	n.backward(dlogits)

	params := n.paramGroups()
	grads := n.gradGroups()
	const eps = 1e-3
	checked := 0
	for gi := range params {
		p, g := params[gi], grads[gi]
		stride := 1
		if len(p) > 60 {
			stride = len(p) / 60
		}
		for j := 0; j < len(p); j += stride {
			orig := p[j]
			p[j] = orig + eps
			up := lossAt()
			p[j] = orig - eps
			down := lossAt()
			p[j] = orig
			numeric := (up - down) / (2 * eps)
			analytic := float64(g[j])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 2e-2 {
				t.Fatalf("group %d param %d: analytic %.6f vs numeric %.6f (rel diff %.4f)",
					gi, j, analytic, numeric, diff/scale)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("gradient check exercised no parameters")
	}
}

func TestGradCheckDenseOnly(t *testing.T) {
	numericalGradCheck(t, MLPSpec(6, nil, 4), 1)
}

func TestGradCheckMLP(t *testing.T) {
	numericalGradCheck(t, MLPSpec(10, []int{8, 6}, 3), 2)
}

func TestGradCheckConvNet(t *testing.T) {
	// Small conv net: 8x8x2 input, conv(3,k3)/relu/pool, dense.
	spec := Spec{
		InputH: 8, InputW: 8, InputC: 2,
		Layers: []LayerSpec{
			{Kind: LayerConv, Out: 3, Kernel: 3},
			{Kind: LayerReLU},
			{Kind: LayerPool},
			{Kind: LayerDense, Out: 5},
		},
	}
	numericalGradCheck(t, spec, 3)
}

func TestGradCheckPaperCNN(t *testing.T) {
	if testing.Short() {
		t.Skip("full CNN gradient check is slow")
	}
	numericalGradCheck(t, CNNSpec(12, 12, 3, 4, 6, 3, 24, 16, 10), 4)
}

func TestGradCheckInputGradient(t *testing.T) {
	// Verify the gradient w.r.t. the *input* too (needed for correct
	// backprop through stacked layers).
	rng := sim.NewRNG(5)
	spec := MLPSpec(5, []int{7}, 3)
	n, err := NewNetwork(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 5)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	label := 1
	loss := func() float64 {
		logits, err := n.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		scratch := make([]float32, len(logits))
		l, err := SoftmaxCrossEntropy(logits, label, scratch)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	n.zeroGrads()
	logits, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	dlogits := make([]float32, len(logits))
	if _, err := SoftmaxCrossEntropy(logits, label, dlogits); err != nil {
		t.Fatal(err)
	}
	cur := dlogits
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].backward(cur)
	}
	dx := cur
	const eps = 1e-3
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-float64(dx[i])) > 2e-2*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("input %d: analytic %.6f vs numeric %.6f", i, dx[i], numeric)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := newMaxPool2(1, 4, 4)
	x := []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	y := p.forward(x)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("pool output[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	dx := p.backward([]float32{1, 2, 3, 4})
	// Gradient must land exactly on the argmax positions.
	wantDx := make([]float32, 16)
	wantDx[5], wantDx[7], wantDx[13], wantDx[15] = 1, 2, 3, 4
	for i := range wantDx {
		if dx[i] != wantDx[i] {
			t.Fatalf("pool dx[%d] = %v, want %v", i, dx[i], wantDx[i])
		}
	}
}

func TestMaxPoolOddDimensionsDropTail(t *testing.T) {
	p := newMaxPool2(1, 5, 5)
	if p.outH != 2 || p.outW != 2 {
		t.Fatalf("5x5 pool output = %dx%d, want 2x2 (floor)", p.outH, p.outW)
	}
}

func TestReLUForward(t *testing.T) {
	r := newReLU(4)
	y := r.forward([]float32{-1, 0, 2, -3})
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("relu[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	dx := r.backward([]float32{10, 20, 30, 40})
	wantDx := []float32{0, 0, 30, 0}
	for i := range wantDx {
		if dx[i] != wantDx[i] {
			t.Fatalf("relu dx[%d] = %v, want %v", i, dx[i], wantDx[i])
		}
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	d := newDense(2, 2)
	copy(d.w, []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.b, []float32{10, 20})
	y := d.forward([]float32{1, 1})
	if y[0] != 13 || y[1] != 27 {
		t.Fatalf("dense forward = %v, want [13 27]", y)
	}
}

func TestConvForwardKnownValues(t *testing.T) {
	// 1 channel 3x3 input, 1 output channel, 2x2 kernel of ones, bias 1:
	// each output = sum of the 2x2 window + 1.
	c := newConv2D(1, 3, 3, 1, 2)
	for i := range c.w {
		c.w[i] = 1
	}
	c.b[0] = 1
	x := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	y := c.forward(x)
	want := []float32{1 + 2 + 4 + 5 + 1, 2 + 3 + 5 + 6 + 1, 4 + 5 + 7 + 8 + 1, 5 + 6 + 8 + 9 + 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("conv output[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}
