package ml

import (
	"fmt"
	"testing"

	"roadrunner/internal/sim"
)

// gemmShape mirrors the matrix shapes the paper CNN's two conv layers
// feed each kernel (forward, dW, dcol).
type gemmShape struct{ m, n, k int }

var convGEMMShapes = map[string][]gemmShape{
	"NN": {{6, 196, 27}, {12, 25, 54}}, // forward: outC × outN × ck
	"NT": {{6, 27, 196}, {12, 54, 25}}, // dW: outC × ck × outN
	"TN": {{27, 196, 6}, {54, 25, 12}}, // dcol: ck × outN × outC
}

func BenchmarkGEMMConvShapes(b *testing.B) {
	kernels := map[string]func(m, n, k int, a, b, c []float32){
		"NN": gemmNN, "NT": gemmNT, "TN": gemmTN,
	}
	rng := sim.NewRNG(1)
	for _, name := range []string{"NN", "NT", "TN"} {
		kernel := kernels[name]
		for _, s := range convGEMMShapes[name] {
			var aLen int
			if name == "TN" {
				aLen = s.k * s.m
			} else {
				aLen = s.m * s.k
			}
			var bLen int
			if name == "NT" {
				bLen = s.n * s.k
			} else {
				bLen = s.k * s.n
			}
			a := make([]float32, aLen)
			bb := make([]float32, bLen)
			c := make([]float32, s.m*s.n)
			randomFill(rng, a)
			randomFill(rng, bb)
			b.Run(fmt.Sprintf("%s_m%d_n%d_k%d", name, s.m, s.n, s.k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kernel(s.m, s.n, s.k, a, bb, c)
				}
			})
		}
	}
}
