package ml

// gemm.go holds the float32 matrix kernels behind the im2col convolution
// path. All kernels are scalar Go, shaped for the small, skinny matrices
// the paper CNN produces (m and k of a few dozen at most): gemmNN and
// gemmTN are 4-row broadcast (saxpy) kernels that stream B rows through
// contiguous C rows, and gemmNT is a 2×4 dot-product micro-tile with
// eight independent accumulator chains. Larger register tiles were
// measured slower here — gc spills them at these shapes. Row slices are
// hoisted so the compiler can elide bounds checks on the hot loops.
//
// Every kernel accumulates each output element over k in ascending order
// with a fixed loop nest, so results are bit-identical across runs, hosts,
// and worker counts — the (config, seed) → byte-identical-result contract
// does not tolerate reassociation that varies between executions.

// gemmNN computes C += A·B for row-major matrices: A is M×K, B is K×N and
// C is M×N. Callers that need C = A·B pre-fill C (the conv forward path
// fills it with the bias).
func gemmNN(m, n, k int, a, b, c []float32) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		c0 := c[(i+0)*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		c2 := c[(i+2)*n : (i+3)*n]
		c3 := c[(i+3)*n : (i+4)*n]
		for p := 0; p < k; p++ {
			brow := b[p*n : p*n+n]
			v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
			for j, bv := range brow {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
		}
	}
	// Remainder rows, two at a time where possible: the paper CNN's first
	// conv has m=6, so a third of its forward work lands here.
	for ; i+2 <= m; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		c0 := c[(i+0)*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		for p := 0; p < k; p++ {
			brow := b[p*n : p*n+n]
			v0, v1 := a0[p], a1[p]
			for j, bv := range brow {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
			}
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			brow := b[p*n : p*n+n]
			v := arow[p]
			for j, bv := range brow {
				crow[j] += v * bv
			}
		}
	}
}

// gemmTN computes C += Aᵀ·B where A is K×M (so Aᵀ is M×K), B is K×N and C
// is M×N, all row-major. Each step p broadcasts four contiguous A values
// a[p*m+i..i+3] against the same B row — a blocked rank-1 update.
func gemmTN(m, n, k int, a, b, c []float32) {
	for p := 0; p < k; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		i := 0
		for ; i+4 <= m; i += 4 {
			v0, v1, v2, v3 := arow[i], arow[i+1], arow[i+2], arow[i+3]
			c0 := c[(i+0)*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			c2 := c[(i+2)*n : (i+3)*n]
			c3 := c[(i+3)*n : (i+4)*n]
			for j, bv := range brow {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
		}
		for ; i+2 <= m; i += 2 {
			v0, v1 := arow[i], arow[i+1]
			c0 := c[(i+0)*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			for j, bv := range brow {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
			}
		}
		for ; i < m; i++ {
			v := arow[i]
			crow := c[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += v * bv
			}
		}
	}
}

// gemmNT computes C += A·Bᵀ where A is M×K, B is N×K and C is M×N, all
// row-major. Each C element is an ascending-k dot product of a row of A
// with a row of B; the 2×4 tile keeps eight independent accumulator
// chains in flight to hide the float add latency.
func gemmNT(m, n, k int, a, b, c []float32) {
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		c0 := c[(i+0)*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for p, av0 := range a0 {
				av1 := a1[p]
				bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			c0[j] += s00
			c0[j+1] += s01
			c0[j+2] += s02
			c0[j+3] += s03
			c1[j] += s10
			c1[j+1] += s11
			c1[j+2] += s12
			c1[j+3] += s13
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s0, s1 float32
			for p, bv := range brow {
				s0 += a0[p] * bv
				s1 += a1[p] * bv
			}
			c0[j] += s0
			c1[j] += s1
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			crow[j] += s0
			crow[j+1] += s1
			crow[j+2] += s2
			crow[j+3] += s3
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] += s
		}
	}
}

// im2col unrolls a channel-major (inC, inH, inW) activation into the
// (inC·k·k) × (outH·outW) patch matrix for a stride-1 valid convolution:
// row (ic·k+ky)·k+kx holds, for every output position, the input value the
// kernel tap (ic, ky, kx) reads. Each row is outW-long contiguous copies,
// so the unroll is pure memmove traffic.
func im2col(x []float32, inC, inH, inW, k, outH, outW int, col []float32) {
	outN := outH * outW
	ck := 0
	for ic := 0; ic < inC; ic++ {
		plane := x[ic*inH*inW : (ic+1)*inH*inW]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := col[ck*outN : (ck+1)*outN]
				for oy := 0; oy < outH; oy++ {
					src := plane[(oy+ky)*inW+kx : (oy+ky)*inW+kx+outW]
					copy(row[oy*outW:(oy+1)*outW], src)
				}
				ck++
			}
		}
	}
}

// col2im scatters the patch-matrix gradient back onto the (inC, inH, inW)
// input gradient, accumulating overlapping taps. dx must be pre-zeroed.
// Rows are visited in ascending ck order so the accumulation order into
// each dx element is fixed.
func col2im(dcol []float32, inC, inH, inW, k, outH, outW int, dx []float32) {
	outN := outH * outW
	ck := 0
	for ic := 0; ic < inC; ic++ {
		plane := dx[ic*inH*inW : (ic+1)*inH*inW]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := dcol[ck*outN : (ck+1)*outN]
				for oy := 0; oy < outH; oy++ {
					dst := plane[(oy+ky)*inW+kx : (oy+ky)*inW+kx+outW]
					src := row[oy*outW : (oy+1)*outW]
					for j, v := range src {
						dst[j] += v
					}
				}
				ck++
			}
		}
	}
}
