package ml

import (
	"fmt"
	"math"
)

// FedAvg aggregates model snapshots by weighted averaging — Federated
// Averaging as presented in McMahan et al. and quoted by the paper (§3):
// w = Σᵢ wᵢ·dᵢ / Σⱼ dⱼ, where dᵢ is the data amount model i was trained on.
//
// FedAvg is mathematically associative over (snapshot, weight) pairs:
// aggregating intermediate aggregates (carrying their summed weights)
// yields the identical result as one flat aggregation. The paper's OPP
// strategy (§5.2, Figure 3) depends on exactly this property — reporters
// pre-aggregate the models of encountered vehicles before uploading — and
// the package's property tests pin it down.
func FedAvg(models []*Snapshot, dataAmounts []float64) (*Snapshot, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("ml: fedavg over zero models")
	}
	if len(models) != len(dataAmounts) {
		return nil, fmt.Errorf("ml: fedavg: %d models but %d data amounts", len(models), len(dataAmounts))
	}
	ref := models[0]
	if ref == nil {
		return nil, fmt.Errorf("ml: fedavg: nil model at index 0")
	}
	var totalWeight float64
	for i, d := range dataAmounts {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("ml: fedavg: invalid data amount %v at index %d", d, i)
		}
		totalWeight += d
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("ml: fedavg: total data amount is zero")
	}

	out := make([]float64, len(ref.Weights)) // accumulate in float64 for stability
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("ml: fedavg: nil model at index %d", i)
		}
		if !m.Spec.Equal(&ref.Spec) {
			return nil, fmt.Errorf("ml: fedavg: model %d has a different architecture", i)
		}
		if len(m.Weights) != len(ref.Weights) {
			return nil, fmt.Errorf("ml: fedavg: model %d has %d weights, want %d", i, len(m.Weights), len(ref.Weights))
		}
		coef := dataAmounts[i] / totalWeight
		for j, w := range m.Weights {
			out[j] += coef * float64(w)
		}
	}
	weights := make([]float32, len(out))
	for j, v := range out {
		weights[j] = float32(v)
	}
	spec := ref.Spec
	spec.Layers = append([]LayerSpec(nil), ref.Spec.Layers...)
	return &Snapshot{Spec: spec, Weights: weights}, nil
}
