package ml

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// evalShardSize is the fixed shard length of EvaluateParallel's work
// decomposition. The shard grid depends only on the example count — never
// on the worker count — so the per-shard partial results, and therefore
// the folded totals, are identical no matter how many workers ran.
const evalShardSize = 64

// evalShard is one shard's partial result: the correct-prediction count
// and the example-order loss sum over the shard's half-open range.
type evalShard struct {
	correct int
	loss    float64
	err     error
}

// EvaluateParallel computes the classification accuracy and mean
// cross-entropy loss of the snapshot over examples using up to workers
// goroutines, each inferring on its own Network instance.
//
// Determinism: examples are split into fixed evalShardSize shards, each
// shard is evaluated in example order, and the per-shard partial sums are
// folded in ascending shard order. Workers only race for *which* shard
// they pull, never for how a shard is computed or folded, so the returned
// accuracy and loss are bit-identical for any worker count, including 1.
// The accuracy additionally equals serial Network.Evaluate exactly (it is
// a ratio of integers); the loss may differ from serial evaluation in the
// last bits because the shard fold groups the float additions.
func EvaluateParallel(s *Snapshot, examples []Example, workers int) (accuracy, loss float64, err error) {
	if s == nil {
		return 0, 0, fmt.Errorf("ml: nil snapshot")
	}
	if len(examples) == 0 {
		return 0, 0, fmt.Errorf("ml: evaluate on empty example set")
	}
	out, err := s.Spec.OutputDim()
	if err != nil {
		return 0, 0, err
	}
	if err := ValidateExamples(examples, s.Spec.InputDim(), out); err != nil {
		return 0, 0, err
	}

	nShards := (len(examples) + evalShardSize - 1) / evalShardSize
	if workers < 1 {
		workers = 1
	}
	if workers > nShards {
		workers = nShards
	}
	partials := make([]evalShard, nShards)

	if workers == 1 {
		net, err := LoadSnapshot(s)
		if err != nil {
			return 0, 0, err
		}
		for i := range partials {
			partials[i] = evaluateShard(net, examples, i)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			net, err := LoadSnapshot(s)
			if err != nil {
				return 0, 0, err
			}
			wg.Add(1)
			go func(w int, net *Network) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= nShards {
						return
					}
					partials[i] = evaluateShard(net, examples, i)
					if partials[i].err != nil {
						errs[w] = partials[i].err
						return
					}
				}
			}(w, net)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return 0, 0, e
			}
		}
	}

	correct := 0
	totalLoss := 0.0
	for _, p := range partials {
		if p.err != nil {
			return 0, 0, p.err
		}
		correct += p.correct
		totalLoss += p.loss
	}
	n := float64(len(examples))
	return float64(correct) / n, totalLoss / n, nil
}

// evaluateShard evaluates shard i of the fixed decomposition on net,
// accumulating in example order.
func evaluateShard(net *Network, examples []Example, i int) evalShard {
	lo := i * evalShardSize
	hi := lo + evalShardSize
	if hi > len(examples) {
		hi = len(examples)
	}
	var p evalShard
	scratch := net.dlogits
	for _, ex := range examples[lo:hi] {
		logits, err := net.Forward(ex.X)
		if err != nil {
			p.err = err
			return p
		}
		if Argmax(logits) == ex.Label {
			p.correct++
		}
		l, err := SoftmaxCrossEntropy(logits, ex.Label, scratch)
		if err != nil {
			p.err = err
			return p
		}
		p.loss += l
	}
	return p
}
