package ml

// conv2d is a 2-D convolution with stride 1 and valid padding, operating on
// channel-major (C, H, W) activations. Weights are stored flat as
// [outC][inC][k][k]; biases per output channel.
type conv2d struct {
	inC, inH, inW int
	outC, k       int
	outH, outW    int

	w, b   []float32
	dw, db []float32

	x  []float32
	y  []float32
	dx []float32
}

func newConv2D(inC, inH, inW, outC, k int) *conv2d {
	outH, outW := inH-k+1, inW-k+1
	return &conv2d{
		inC: inC, inH: inH, inW: inW,
		outC: outC, k: k,
		outH: outH, outW: outW,
		w:  make([]float32, outC*inC*k*k),
		b:  make([]float32, outC),
		dw: make([]float32, outC*inC*k*k),
		db: make([]float32, outC),
		y:  make([]float32, outC*outH*outW),
		dx: make([]float32, inC*inH*inW),
	}
}

func (c *conv2d) forward(x []float32) []float32 {
	c.x = x
	k, inW, outW := c.k, c.inW, c.outW
	for oc := 0; oc < c.outC; oc++ {
		bias := c.b[oc]
		outPlane := c.y[oc*c.outH*outW : (oc+1)*c.outH*outW]
		for oy := 0; oy < c.outH; oy++ {
			outRow := outPlane[oy*outW : (oy+1)*outW]
			for ox := range outRow {
				outRow[ox] = bias
			}
		}
		for ic := 0; ic < c.inC; ic++ {
			inPlane := x[ic*c.inH*inW : (ic+1)*c.inH*inW]
			wBase := ((oc*c.inC + ic) * k) * k
			for ky := 0; ky < k; ky++ {
				wRow := c.w[wBase+ky*k : wBase+ky*k+k]
				for oy := 0; oy < c.outH; oy++ {
					inRow := inPlane[(oy+ky)*inW:]
					outRow := outPlane[oy*outW : (oy+1)*outW]
					for kx := 0; kx < k; kx++ {
						wv := wRow[kx]
						if wv == 0 {
							continue
						}
						in := inRow[kx:]
						for ox := range outRow {
							outRow[ox] += wv * in[ox]
						}
					}
				}
			}
		}
	}
	return c.y
}

func (c *conv2d) backward(dout []float32) []float32 {
	zero(c.dx)
	k, inW, outW := c.k, c.inW, c.outW
	for oc := 0; oc < c.outC; oc++ {
		outPlane := dout[oc*c.outH*outW : (oc+1)*c.outH*outW]
		// Bias gradient.
		var db float32
		for _, g := range outPlane {
			db += g
		}
		c.db[oc] += db
		for ic := 0; ic < c.inC; ic++ {
			inPlane := c.x[ic*c.inH*inW : (ic+1)*c.inH*inW]
			dxPlane := c.dx[ic*c.inH*inW : (ic+1)*c.inH*inW]
			wBase := ((oc*c.inC + ic) * k) * k
			for ky := 0; ky < k; ky++ {
				wRow := c.w[wBase+ky*k : wBase+ky*k+k]
				dwRow := c.dw[wBase+ky*k : wBase+ky*k+k]
				for oy := 0; oy < c.outH; oy++ {
					gRow := outPlane[oy*outW : (oy+1)*outW]
					inRow := inPlane[(oy+ky)*inW:]
					dxRow := dxPlane[(oy+ky)*inW:]
					for kx := 0; kx < k; kx++ {
						var dw float32
						wv := wRow[kx]
						in := inRow[kx:]
						dx := dxRow[kx:]
						for ox, g := range gRow {
							dw += g * in[ox]
							dx[ox] += wv * g
						}
						dwRow[kx] += dw
					}
				}
			}
		}
	}
	return c.dx
}

func (c *conv2d) params() [][]float32 { return [][]float32{c.w, c.b} }
func (c *conv2d) grads() [][]float32  { return [][]float32{c.dw, c.db} }

func (c *conv2d) zeroGrads() {
	zero(c.dw)
	zero(c.db)
}

// maxpool2 is a 2x2 max-pool with stride 2 over channel-major activations.
// Odd trailing rows/columns are dropped (floor semantics), matching the
// PyTorch default the paper's prototype relied on.
type maxpool2 struct {
	c, inH, inW int
	outH, outW  int
	y           []float32
	dx          []float32
	argmax      []int // flat input index of each output's max
}

func newMaxPool2(cIn, inH, inW int) *maxpool2 {
	outH, outW := inH/2, inW/2
	return &maxpool2{
		c: cIn, inH: inH, inW: inW,
		outH: outH, outW: outW,
		y:      make([]float32, cIn*outH*outW),
		dx:     make([]float32, cIn*inH*inW),
		argmax: make([]int, cIn*outH*outW),
	}
}

func (m *maxpool2) forward(x []float32) []float32 {
	for ch := 0; ch < m.c; ch++ {
		inBase := ch * m.inH * m.inW
		outBase := ch * m.outH * m.outW
		for oy := 0; oy < m.outH; oy++ {
			for ox := 0; ox < m.outW; ox++ {
				i0 := inBase + (2*oy)*m.inW + 2*ox
				i1 := i0 + 1
				i2 := i0 + m.inW
				i3 := i2 + 1
				best, bi := x[i0], i0
				if x[i1] > best {
					best, bi = x[i1], i1
				}
				if x[i2] > best {
					best, bi = x[i2], i2
				}
				if x[i3] > best {
					best, bi = x[i3], i3
				}
				o := outBase + oy*m.outW + ox
				m.y[o] = best
				m.argmax[o] = bi
			}
		}
	}
	return m.y
}

func (m *maxpool2) backward(dout []float32) []float32 {
	zero(m.dx)
	for o, idx := range m.argmax {
		m.dx[idx] += dout[o]
	}
	return m.dx
}

func (m *maxpool2) params() [][]float32 { return nil }
func (m *maxpool2) grads() [][]float32  { return nil }
func (m *maxpool2) zeroGrads()          {}
