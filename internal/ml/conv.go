package ml

// conv2d is a 2-D convolution with stride 1 and valid padding, operating on
// channel-major (C, H, W) activations. Weights are stored flat as
// [outC][inC][k][k]; biases per output channel.
//
// Forward and backward run as im2col + GEMM (gemm.go): the input is
// unrolled once into the layer-owned col buffer, the forward pass is one
// (outC × ck)·(ck × outN) matrix product, and the backward pass is two
// products (dW = dY·colᵀ, dcol = Wᵀ·dY) plus a col2im scatter. The scratch
// buffers are allocated once at construction and reused across calls, so a
// training step allocates nothing.
type conv2d struct {
	inC, inH, inW int
	outC, k       int
	outH, outW    int

	w, b   []float32
	db, dw []float32

	x    []float32
	y    []float32
	dx   []float32
	col  []float32 // im2col patch matrix: (inC·k·k) × (outH·outW)
	dcol []float32 // gradient of col, same shape
}

func newConv2D(inC, inH, inW, outC, k int) *conv2d {
	outH, outW := inH-k+1, inW-k+1
	ckn := inC * k * k * outH * outW
	return &conv2d{
		inC: inC, inH: inH, inW: inW,
		outC: outC, k: k,
		outH: outH, outW: outW,
		w:    make([]float32, outC*inC*k*k),
		b:    make([]float32, outC),
		dw:   make([]float32, outC*inC*k*k),
		db:   make([]float32, outC),
		y:    make([]float32, outC*outH*outW),
		dx:   make([]float32, inC*inH*inW),
		col:  make([]float32, ckn),
		dcol: make([]float32, ckn),
	}
}

func (c *conv2d) forward(x []float32) []float32 {
	c.x = x
	outN := c.outH * c.outW
	ck := c.inC * c.k * c.k
	im2col(x, c.inC, c.inH, c.inW, c.k, c.outH, c.outW, c.col)
	for oc := 0; oc < c.outC; oc++ {
		bias := c.b[oc]
		row := c.y[oc*outN : (oc+1)*outN]
		for j := range row {
			row[j] = bias
		}
	}
	gemmNN(c.outC, outN, ck, c.w, c.col, c.y)
	return c.y
}

func (c *conv2d) backward(dout []float32) []float32 {
	outN := c.outH * c.outW
	ck := c.inC * c.k * c.k
	// Bias gradient: per-channel row sums of dY.
	for oc := 0; oc < c.outC; oc++ {
		var db float32
		for _, g := range dout[oc*outN : (oc+1)*outN] {
			db += g
		}
		c.db[oc] += db
	}
	// Weight gradient: dW += dY · colᵀ (col still holds this forward's
	// unrolled input).
	gemmNT(c.outC, ck, outN, dout, c.col, c.dw)
	// Input gradient: dcol = Wᵀ · dY, scattered back by col2im.
	zero(c.dcol)
	gemmTN(ck, outN, c.outC, c.w, dout, c.dcol)
	zero(c.dx)
	col2im(c.dcol, c.inC, c.inH, c.inW, c.k, c.outH, c.outW, c.dx)
	return c.dx
}

func (c *conv2d) params() [][]float32 { return [][]float32{c.w, c.b} }
func (c *conv2d) grads() [][]float32  { return [][]float32{c.dw, c.db} }

func (c *conv2d) zeroGrads() {
	zero(c.dw)
	zero(c.db)
}

// referenceConvForward is the scalar convolution kernel the GEMM path
// replaced, retained (BruteForcePairs-style) as the reference
// implementation the equivalence tests compare against. It returns a fresh
// output slice.
func referenceConvForward(w, b, x []float32, inC, inH, inW, outC, k int) []float32 {
	outH, outW := inH-k+1, inW-k+1
	y := make([]float32, outC*outH*outW)
	for oc := 0; oc < outC; oc++ {
		outPlane := y[oc*outH*outW : (oc+1)*outH*outW]
		for i := range outPlane {
			outPlane[i] = b[oc]
		}
		for ic := 0; ic < inC; ic++ {
			inPlane := x[ic*inH*inW : (ic+1)*inH*inW]
			wBase := ((oc*inC + ic) * k) * k
			for ky := 0; ky < k; ky++ {
				wRow := w[wBase+ky*k : wBase+ky*k+k]
				for oy := 0; oy < outH; oy++ {
					inRow := inPlane[(oy+ky)*inW:]
					outRow := outPlane[oy*outW : (oy+1)*outW]
					for kx := 0; kx < k; kx++ {
						wv := wRow[kx]
						in := inRow[kx:]
						for ox := range outRow {
							outRow[ox] += wv * in[ox]
						}
					}
				}
			}
		}
	}
	return y
}

// referenceConvBackward is the scalar backward kernel retained as the
// reference for the GEMM equivalence tests. It returns fresh dx, dw, db
// slices for the given upstream gradient.
func referenceConvBackward(w, x, dout []float32, inC, inH, inW, outC, k int) (dx, dw, db []float32) {
	outH, outW := inH-k+1, inW-k+1
	dx = make([]float32, inC*inH*inW)
	dw = make([]float32, outC*inC*k*k)
	db = make([]float32, outC)
	for oc := 0; oc < outC; oc++ {
		outPlane := dout[oc*outH*outW : (oc+1)*outH*outW]
		for _, g := range outPlane {
			db[oc] += g
		}
		for ic := 0; ic < inC; ic++ {
			inPlane := x[ic*inH*inW : (ic+1)*inH*inW]
			dxPlane := dx[ic*inH*inW : (ic+1)*inH*inW]
			wBase := ((oc*inC + ic) * k) * k
			for ky := 0; ky < k; ky++ {
				wRow := w[wBase+ky*k : wBase+ky*k+k]
				dwRow := dw[wBase+ky*k : wBase+ky*k+k]
				for oy := 0; oy < outH; oy++ {
					gRow := outPlane[oy*outW : (oy+1)*outW]
					inRow := inPlane[(oy+ky)*inW:]
					dxRow := dxPlane[(oy+ky)*inW:]
					for kx := 0; kx < k; kx++ {
						var acc float32
						wv := wRow[kx]
						in := inRow[kx:]
						dxs := dxRow[kx:]
						for ox, g := range gRow {
							acc += g * in[ox]
							dxs[ox] += wv * g
						}
						dwRow[kx] += acc
					}
				}
			}
		}
	}
	return dx, dw, db
}

// maxpool2 is a 2x2 max-pool with stride 2 over channel-major activations.
// Odd trailing rows/columns are dropped (floor semantics), matching the
// PyTorch default the paper's prototype relied on.
type maxpool2 struct {
	c, inH, inW int
	outH, outW  int
	y           []float32
	dx          []float32
	argmax      []int // flat input index of each output's max
}

func newMaxPool2(cIn, inH, inW int) *maxpool2 {
	outH, outW := inH/2, inW/2
	return &maxpool2{
		c: cIn, inH: inH, inW: inW,
		outH: outH, outW: outW,
		y:      make([]float32, cIn*outH*outW),
		dx:     make([]float32, cIn*inH*inW),
		argmax: make([]int, cIn*outH*outW),
	}
}

func (m *maxpool2) forward(x []float32) []float32 {
	for ch := 0; ch < m.c; ch++ {
		inBase := ch * m.inH * m.inW
		outBase := ch * m.outH * m.outW
		for oy := 0; oy < m.outH; oy++ {
			for ox := 0; ox < m.outW; ox++ {
				i0 := inBase + (2*oy)*m.inW + 2*ox
				i1 := i0 + 1
				i2 := i0 + m.inW
				i3 := i2 + 1
				best, bi := x[i0], i0
				if x[i1] > best {
					best, bi = x[i1], i1
				}
				if x[i2] > best {
					best, bi = x[i2], i2
				}
				if x[i3] > best {
					best, bi = x[i3], i3
				}
				o := outBase + oy*m.outW + ox
				m.y[o] = best
				m.argmax[o] = bi
			}
		}
	}
	return m.y
}

func (m *maxpool2) backward(dout []float32) []float32 {
	zero(m.dx)
	for o, idx := range m.argmax {
		m.dx[idx] += dout[o]
	}
	return m.dx
}

func (m *maxpool2) params() [][]float32 { return nil }
func (m *maxpool2) grads() [][]float32  { return nil }
func (m *maxpool2) zeroGrads()          {}
