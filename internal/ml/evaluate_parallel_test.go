package ml

import (
	"math"
	"testing"

	"roadrunner/internal/sim"
)

func parallelEvalFixture(t *testing.T, n int) (*Snapshot, []Example) {
	t.Helper()
	rng := sim.NewRNG(404)
	spec := MLPSpec(12, []int{16}, 4)
	net, err := NewNetwork(spec, rng)
	if err != nil {
		t.Fatalf("build network: %v", err)
	}
	examples := make([]Example, n)
	for i := range examples {
		x := make([]float32, 12)
		randomFill(rng, x)
		examples[i] = Example{X: x, Label: rng.Intn(4)}
	}
	return net.Snapshot(), examples
}

// TestEvaluateParallelWorkerCountInvariant requires bitwise-identical
// accuracy and loss across worker counts, including the serial path, and
// across repeated runs at the same worker count. Example counts straddle
// shard boundaries (partial shard, exact multiple, fewer than one shard).
func TestEvaluateParallelWorkerCountInvariant(t *testing.T) {
	for _, n := range []int{10, evalShardSize, evalShardSize * 3, 300} {
		snap, examples := parallelEvalFixture(t, n)
		accRef, lossRef, err := EvaluateParallel(snap, examples, 1)
		if err != nil {
			t.Fatalf("n=%d workers=1: %v", n, err)
		}
		for _, workers := range []int{1, 2, 4, 16} {
			for run := 0; run < 2; run++ {
				acc, loss, err := EvaluateParallel(snap, examples, workers)
				if err != nil {
					t.Fatalf("n=%d workers=%d: %v", n, workers, err)
				}
				if math.Float64bits(acc) != math.Float64bits(accRef) ||
					math.Float64bits(loss) != math.Float64bits(lossRef) {
					t.Fatalf("n=%d workers=%d run=%d: (%v, %v) differs bitwise from single-worker (%v, %v)",
						n, workers, run, acc, loss, accRef, lossRef)
				}
			}
		}
	}
}

// TestEvaluateParallelMatchesSerialEvaluate checks the parallel path
// against Network.Evaluate: accuracy must be exactly equal (integer
// ratio), loss equal within float tolerance (the shard fold regroups the
// additions).
func TestEvaluateParallelMatchesSerialEvaluate(t *testing.T) {
	snap, examples := parallelEvalFixture(t, 250)
	net, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	wantAcc, wantLoss, err := net.Evaluate(examples)
	if err != nil {
		t.Fatalf("serial evaluate: %v", err)
	}
	acc, loss, err := EvaluateParallel(snap, examples, 4)
	if err != nil {
		t.Fatalf("parallel evaluate: %v", err)
	}
	if acc != wantAcc {
		t.Fatalf("accuracy %v != serial %v", acc, wantAcc)
	}
	if math.Abs(loss-wantLoss) > 1e-9*math.Max(1, math.Abs(wantLoss)) {
		t.Fatalf("loss %v too far from serial %v", loss, wantLoss)
	}
}

// TestEvaluateParallelErrors covers the argument validation paths.
func TestEvaluateParallelErrors(t *testing.T) {
	snap, examples := parallelEvalFixture(t, 8)
	if _, _, err := EvaluateParallel(nil, examples, 2); err == nil {
		t.Fatal("want error for nil snapshot")
	}
	if _, _, err := EvaluateParallel(snap, nil, 2); err == nil {
		t.Fatal("want error for empty example set")
	}
	bad := []Example{{X: []float32{1, 2}, Label: 0}}
	if _, _, err := EvaluateParallel(snap, bad, 2); err == nil {
		t.Fatal("want error for dimension mismatch")
	}
	if acc, _, err := EvaluateParallel(snap, examples, 0); err != nil || acc < 0 || acc > 1 {
		t.Fatalf("workers=0 should clamp to 1, got acc=%v err=%v", acc, err)
	}
}
