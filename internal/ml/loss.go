package ml

import (
	"fmt"
	"math"
)

// SoftmaxCrossEntropy computes the cross-entropy loss of logits against the
// true label, together with the gradient of the loss w.r.t. the logits
// (softmax(logits) minus the one-hot label). dlogits must have the same
// length as logits; it is overwritten.
func SoftmaxCrossEntropy(logits []float32, label int, dlogits []float32) (float64, error) {
	if label < 0 || label >= len(logits) {
		return 0, fmt.Errorf("ml: label %d outside [0,%d)", label, len(logits))
	}
	if len(dlogits) != len(logits) {
		return 0, fmt.Errorf("ml: dlogits length %d != logits length %d", len(dlogits), len(logits))
	}
	// Stable softmax: subtract the max logit.
	maxLogit := logits[0]
	for _, v := range logits[1:] {
		if v > maxLogit {
			maxLogit = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxLogit))
		dlogits[i] = float32(e)
		sum += e
	}
	inv := 1 / sum
	for i := range dlogits {
		dlogits[i] = float32(float64(dlogits[i]) * inv)
	}
	p := float64(dlogits[label])
	dlogits[label] -= 1
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p), nil
}

// Softmax returns the probability vector for the logits (a fresh slice).
func Softmax(logits []float32) []float32 {
	out := make([]float32, len(logits))
	if len(logits) == 0 {
		return out
	}
	maxLogit := logits[0]
	for _, v := range logits[1:] {
		if v > maxLogit {
			maxLogit = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxLogit))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Argmax returns the index of the largest element (ties go to the lowest
// index), or -1 for an empty slice.
func Argmax(v []float32) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
