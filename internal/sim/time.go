// Package sim provides the discrete-event core simulator that Roadrunner is
// built around: a virtual clock, a deterministic event queue, and seedable
// random-number streams.
//
// The paper's architecture (§4) centers every other module — communication,
// ML, data preprocessing, and the learning-strategy logic — on a Core
// Simulator "providing the elementary functionality of creating virtual
// agents and then proceeding in discrete steps through the simulation time".
// This package is that core: it owns simulated time and event ordering, and
// nothing else. Domain concepts (vehicles, channels, models) live in the
// packages layered on top.
package sim

import (
	"fmt"
	"math"
)

// Time is an instant in simulated time, measured in seconds from the start
// of the experiment. Simulated time is completely decoupled from host
// wall-clock time: an experiment spanning hours of simulated time typically
// executes in seconds.
type Time float64

// Duration is a span of simulated time in seconds. A negative Duration is
// valid as the result of subtracting a later Time from an earlier one, but
// may not be used to schedule events.
type Duration float64

// Common durations, for readability at call sites.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from o to t.
func (t Time) Sub(o Time) Duration { return Duration(t - o) }

// Before reports whether t precedes o.
func (t Time) Before(o Time) bool { return t < o }

// After reports whether t follows o.
func (t Time) After(o Time) bool { return t > o }

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// IsValid reports whether the time is a finite, non-negative instant.
func (t Time) IsValid() bool {
	return !math.IsNaN(float64(t)) && !math.IsInf(float64(t), 0) && t >= 0
}

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats the duration as seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", float64(d)) }

// IsValid reports whether the duration is finite (negative durations are
// valid values; they are only rejected when scheduling).
func (d Duration) IsValid() bool {
	return !math.IsNaN(float64(d)) && !math.IsInf(float64(d), 0)
}

// DurationSeconds converts a plain float64 number of seconds to a Duration.
func DurationSeconds(s float64) Duration { return Duration(s) }

// TimeSeconds converts a plain float64 number of seconds to a Time.
func TimeSeconds(s float64) Time { return Time(s) }
