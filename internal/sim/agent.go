package sim

import (
	"fmt"
	"strconv"
)

// AgentID identifies a simulated agent — a vehicle, a road-side unit, or
// the cloud server (paper Figure 1). IDs are dense small integers assigned
// by the Registry, so modules can use them to index slices.
type AgentID int

// NoAgent is the zero AgentID sentinel for "no agent".
const NoAgent AgentID = -1

// String formats the ID for logs and metrics labels.
func (id AgentID) String() string { return "agent-" + strconv.Itoa(int(id)) }

// AgentKind classifies the actors a VCPS contains.
type AgentKind int

const (
	// KindVehicle is a connected car with an on-board unit capable of
	// sensing data and training models.
	KindVehicle AgentKind = iota + 1
	// KindRSU is a road-side unit: stationary, V2X-capable, wired to the
	// cloud server.
	KindRSU
	// KindCloudServer is the central server reachable over V2C.
	KindCloudServer
)

// String returns the lower-case name of the kind.
func (k AgentKind) String() string {
	switch k {
	case KindVehicle:
		return "vehicle"
	case KindRSU:
		return "rsu"
	case KindCloudServer:
		return "cloud"
	default:
		return "unknown(" + strconv.Itoa(int(k)) + ")"
	}
}

// Agent is the core simulator's view of one actor: identity, kind, power
// state, and whether its hardware unit is currently occupied by training.
// Position and data live in the mobility and dataset modules respectively.
type Agent struct {
	ID   AgentID
	Kind AgentKind

	on        bool
	busyUntil Time
}

// On reports whether the agent is powered on. Vehicles that are turned off
// "temporarily do not partake in the VCPS" (paper Figure 1): messages to or
// from them fail and they accept no training work.
func (a *Agent) On() bool { return a.on }

// Busy reports whether the agent's hardware unit is occupied (training) at
// instant t. A busy agent "may not be available for other operations"
// (paper §4).
func (a *Agent) Busy(t Time) bool { return a.on && t < a.busyUntil }

// BusyUntil returns the instant the agent's current computation finishes
// (zero if idle).
func (a *Agent) BusyUntil() Time { return a.busyUntil }

// PowerListener observes power transitions. The communication module uses
// it to fail in-flight transfers; strategies use it to react to churn.
type PowerListener func(id AgentID, on bool)

// Registry owns every agent in an experiment and their power state.
// It is not safe for concurrent use; all mutation happens on the simulation
// goroutine.
type Registry struct {
	engine    *Engine
	agents    []*Agent
	listeners []PowerListener
}

// NewRegistry returns an empty registry bound to engine (the engine supplies
// the current instant for busy bookkeeping).
func NewRegistry(engine *Engine) *Registry {
	return &Registry{engine: engine}
}

// Add creates a new agent of the given kind, initially powered off, and
// returns it. IDs are assigned densely in creation order.
func (r *Registry) Add(kind AgentKind) *Agent {
	a := &Agent{ID: AgentID(len(r.agents)), Kind: kind}
	r.agents = append(r.agents, a)
	return a
}

// Get returns the agent with the given ID, or nil if no such agent exists.
func (r *Registry) Get(id AgentID) *Agent {
	if id < 0 || int(id) >= len(r.agents) {
		return nil
	}
	return r.agents[id]
}

// Len returns the number of agents.
func (r *Registry) Len() int { return len(r.agents) }

// All returns the agents in ID order. The returned slice is shared; callers
// must not mutate it.
func (r *Registry) All() []*Agent { return r.agents }

// OfKind returns the IDs of all agents of the given kind, in ID order.
func (r *Registry) OfKind(kind AgentKind) []AgentID {
	var ids []AgentID
	for _, a := range r.agents {
		if a.Kind == kind {
			ids = append(ids, a.ID)
		}
	}
	return ids
}

// OnPowerChange registers fn to be invoked on every power transition.
func (r *Registry) OnPowerChange(fn PowerListener) {
	r.listeners = append(r.listeners, fn)
}

// SetPower switches the agent's power state, notifying listeners on an
// actual transition. Turning an agent off aborts its pending computation
// (the busy deadline is cleared); the owner of that computation learns about
// it through its power listener.
func (r *Registry) SetPower(id AgentID, on bool) error {
	a := r.Get(id)
	if a == nil {
		return fmt.Errorf("sim: set power: unknown agent %v", id)
	}
	if a.on == on {
		return nil
	}
	a.on = on
	if !on {
		a.busyUntil = 0
	}
	for _, fn := range r.listeners {
		fn(id, on)
	}
	return nil
}

// Occupy marks the agent's hardware unit busy for d starting now. It
// returns the completion instant. Occupying an agent that is off or already
// busy is an error — the caller (the ML module) must check first.
func (r *Registry) Occupy(id AgentID, d Duration) (Time, error) {
	a := r.Get(id)
	if a == nil {
		return 0, fmt.Errorf("sim: occupy: unknown agent %v", id)
	}
	if !a.on {
		return 0, fmt.Errorf("sim: occupy: agent %v is off", id)
	}
	now := r.engine.Now()
	if a.Busy(now) {
		return 0, fmt.Errorf("sim: occupy: agent %v busy until %v", id, a.busyUntil)
	}
	if !d.IsValid() || d < 0 {
		return 0, fmt.Errorf("sim: occupy: invalid duration %v", float64(d))
	}
	a.busyUntil = now.Add(d)
	return a.busyUntil, nil
}

// Release clears the agent's busy deadline early (used when a computation
// is aborted for reasons other than power-off).
func (r *Registry) Release(id AgentID) {
	if a := r.Get(id); a != nil {
		a.busyUntil = 0
	}
}
