package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random-number stream. Every stochastic decision in
// an experiment — vehicle routes, reporter selection, channel failures, data
// partitioning, weight initialization — draws from an RNG forked (directly
// or transitively) from the single experiment seed, so a configuration and a
// seed fully determine an experiment run. This determinism is what makes the
// framework usable for quick strategy iteration (paper requirement 6): a
// strategy change can be evaluated against an otherwise identical run.
//
// RNG embeds the stdlib rand.Rand over a SplitMix64 source, inheriting the
// full convenience API (Float64, Intn, Perm, Shuffle, NormFloat64, ...).
// RNG is not safe for concurrent use; fork per goroutine instead.
type RNG struct {
	*rand.Rand
	src *splitMix64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG {
	src := &splitMix64{state: seed}
	return &RNG{Rand: rand.New(src), src: src}
}

// Fork derives an independent child stream from r, namespaced by label.
// Forking with distinct labels yields statistically independent streams;
// forking with the same label twice yields distinct streams as well, because
// each fork also consumes randomness from the parent. Fork keeps module
// streams decoupled: e.g. adding a draw in the mobility generator must not
// perturb the communication module's failure sampling.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return NewRNG(h.Sum64() ^ r.src.next())
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// splitMix64 is the SplitMix64 generator (Steele, Lea & Flood 2014): tiny
// state, full 64-bit output, passes BigCrush. It implements rand.Source64.
type splitMix64 struct {
	state uint64
}

var _ rand.Source64 = (*splitMix64)(nil)

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64) Uint64() uint64 { return s.next() }

func (s *splitMix64) Int63() int64 { return int64(s.next() >> 1) }

func (s *splitMix64) Seed(seed int64) { s.state = uint64(seed) }
