package sim

import "container/heap"

// Event is a scheduled callback in simulated time. Events are created
// through Engine.Schedule / Engine.After and may be canceled before they
// fire. The zero value is not a usable Event.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among events at the same instant
	fn       func()
	canceled bool
	index    int // position in the heap, -1 once popped
}

// At returns the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event's callback from running. Canceling an event
// that already fired or was already canceled is a no-op. Cancel must only
// be called from the simulation goroutine (typically from inside another
// event callback).
func (e *Event) Cancel() { e.canceled = true }

// eventHeap is a binary min-heap ordered by (time, sequence). The sequence
// number guarantees a deterministic FIFO order for events scheduled at the
// same instant, which in turn makes whole experiment runs reproducible.
type eventHeap struct {
	items []*Event
}

var _ heap.Interface = (*eventHeap)(nil)

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return // heap.Push is only ever called with *Event; ignore misuse
	}
	ev.index = len(h.items)
	h.items = append(h.items, ev)
}

func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	h.items = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *Event) { heap.Push(h, ev) }

func (h *eventHeap) pop() *Event {
	if len(h.items) == 0 {
		return nil
	}
	ev, ok := heap.Pop(h).(*Event)
	if !ok {
		return nil
	}
	return ev
}

// peek returns the earliest event without removing it, or nil when empty.
func (h *eventHeap) peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}
