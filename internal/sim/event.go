package sim

// Event is a handle to a scheduled callback in simulated time. Events are
// created through Engine.Schedule / Engine.After and may be canceled before
// they fire. The handle is a small value: copy it freely. The zero value is
// not a usable Event (Cancel and Canceled on it are no-ops).
//
// Internally the engine stores event state in a slab of records recycled
// through a free list, so steady-state scheduling allocates nothing. A
// handle carries the generation its record had when the event was
// scheduled; once the event fires (or a canceled event is discarded) the
// record is recycled under a new generation, which renders stale handles
// inert — a late Cancel through an old handle can never touch the event
// that now occupies the slot.
type Event struct {
	eng  *Engine
	slot int32
	gen  uint32
	at   Time
}

// At returns the instant the event was scheduled to fire.
func (e Event) At() Time { return e.at }

// Canceled reports whether Cancel canceled the event while it was still
// pending. After the event has been discarded from the queue (fired, or
// canceled and swept past), it reports false.
func (e Event) Canceled() bool {
	if e.eng == nil {
		return false
	}
	return e.eng.eventCanceled(e.slot, e.gen)
}

// Cancel prevents the event's callback from running. Canceling an event
// that already fired or was already canceled is a no-op. Cancel must only
// be called from the simulation goroutine (typically from inside another
// event callback).
func (e Event) Cancel() {
	if e.eng == nil {
		return
	}
	e.eng.cancelEvent(e.slot, e.gen)
}

// eventRecord is the slab-side state of one scheduled event. Records are
// recycled through the engine's free list; gen increments at each recycle
// so stale Event handles can be told apart from the slot's current tenant.
type eventRecord struct {
	fn       func()
	at       Time
	seq      uint64
	gen      uint32
	canceled bool
}

// heapNode is one entry of the engine's 4-ary min-heap. The ordering key
// (at, seq) is stored inline so sift comparisons never chase into the slab,
// and the slot index links the node back to its record.
type heapNode struct {
	at   Time
	seq  uint64
	slot int32
}

// nodeLess orders heap nodes by (time, sequence). The sequence number
// guarantees a deterministic FIFO order for events scheduled at the same
// instant, which in turn makes whole experiment runs reproducible.
func nodeLess(a, b heapNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a monomorphic 4-ary indexed min-heap over slab slots. It
// replaces the earlier container/heap implementation: no interface boxing
// on push/pop, branch-light sifts over inline keys, and a shallower tree
// (log₄ instead of log₂ levels) that touches fewer cache lines at
// million-event pending sets. Cancellation is lazy — canceled slots stay
// queued until popped — so Pending keeps counting them, as documented.
type eventQueue struct {
	nodes []heapNode
}

func (q *eventQueue) len() int { return len(q.nodes) }

// push inserts the node and sifts it up to its (time, seq) position.
func (q *eventQueue) push(n heapNode) {
	q.nodes = append(q.nodes, n)
	h := q.nodes
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// pop removes and returns the minimum node. It must not be called on an
// empty queue.
func (q *eventQueue) pop() heapNode {
	h := q.nodes
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = heapNode{}
	h = h[:last]
	q.nodes = h
	i := 0
	for {
		c := i<<2 + 1
		if c >= len(h) {
			break
		}
		// Minimum of the up-to-four children.
		m := c
		end := c + 4
		if end > len(h) {
			end = len(h)
		}
		for j := c + 1; j < end; j++ {
			if nodeLess(h[j], h[m]) {
				m = j
			}
		}
		if !nodeLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// peek returns the earliest node without removing it; ok is false when the
// queue is empty.
func (q *eventQueue) peek() (heapNode, bool) {
	if len(q.nodes) == 0 {
		return heapNode{}, false
	}
	return q.nodes[0], true
}
