package sim

import (
	"testing"
)

// nopEvent is package-level so scheduling it captures nothing; the
// allocation test below must observe the engine's own allocations only.
func nopEvent() {}

// TestEventQueueMillionPending drives the queue to a million pending events
// with interleaved cancellations, then drains it, checking time ordering,
// FIFO at equal instants, that canceled events never fire, and that the
// processed counter accounts exactly for the survivors.
func TestEventQueueMillionPending(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event stress skipped in -short")
	}
	const n = 1_000_000
	e := NewEngine()
	rng := NewRNG(42)
	events := make([]Event, 0, n)
	order := make([]uint64, 0, n)
	fired := 0
	var lastAt Time = -1
	var lastSeq uint64
	for i := 0; i < n; i++ {
		i := i
		// ~16 events per instant on average, so FIFO ties are everywhere.
		at := Time(rng.Intn(n / 16))
		ev, err := e.Schedule(at, func() {
			if ev := events[i]; ev.At() != at {
				t.Errorf("event %d reports at=%v, scheduled %v", i, ev.At(), at)
			}
			fired++
			seq := order[i]
			if e.Now() != at {
				t.Fatalf("event %d fired at %v, scheduled %v", i, e.Now(), at)
			}
			if at < lastAt || (at == lastAt && seq <= lastSeq) {
				t.Fatalf("ordering violated: (%v,%d) after (%v,%d)", at, seq, lastAt, lastSeq)
			}
			lastAt, lastSeq = at, seq
		})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		order = append(order, uint64(i))
	}
	if e.Pending() != n {
		t.Fatalf("pending %d, want %d", e.Pending(), n)
	}
	// Cancel a third of the set, scattered across the whole pending range.
	canceled := 0
	for i := 0; i < n; i += 3 {
		events[i].Cancel()
		canceled++
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != n-canceled {
		t.Fatalf("fired %d events, want %d (%d canceled)", fired, n-canceled, canceled)
	}
	if got := e.Processed(); got != uint64(n-canceled) {
		t.Fatalf("processed counter %d, want %d", got, n-canceled)
	}
}

// TestEventQueueScheduleCancelInterleaved alternates schedule and cancel in
// waves while the clock advances, so slots recycle constantly and stale
// generations accumulate — the pattern that breaks naive slab reuse.
func TestEventQueueScheduleCancelInterleaved(t *testing.T) {
	const waves, perWave = 200, 500
	e := NewEngine()
	fired := 0
	var live []Event
	for w := 0; w < waves; w++ {
		base := e.Now()
		for i := 0; i < perWave; i++ {
			ev, err := e.Schedule(base.Add(Duration(1+i%7)), func() { fired++ })
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, ev)
		}
		// Cancel every other event from this wave and re-cancel a stale
		// handle from two waves back (must be inert).
		for i := 0; i < perWave; i += 2 {
			live[w*perWave+i].Cancel()
		}
		if w >= 2 {
			live[(w-2)*perWave].Cancel()
		}
		if err := e.Run(base.Add(3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := waves * perWave / 2
	if fired != want {
		t.Fatalf("fired %d, want %d", fired, want)
	}
}

// TestStaleHandleCannotTouchRecycledSlot pins the generation-check
// guarantee: a handle whose event already fired stays inert even after its
// slab slot has been recycled by a new event.
func TestStaleHandleCannotTouchRecycledSlot(t *testing.T) {
	e := NewEngine()
	stale, err := e.Schedule(1, nopEvent)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatal("first event did not fire")
	}
	// The freed slot is recycled by the next schedule.
	fresh, err := e.Schedule(2, nopEvent)
	if err != nil {
		t.Fatal(err)
	}
	stale.Cancel() // must not cancel the slot's new tenant
	if stale.Canceled() {
		t.Error("stale handle reports canceled")
	}
	if fresh.Canceled() {
		t.Error("stale Cancel leaked onto the recycled slot")
	}
	if !e.Step() {
		t.Fatal("recycled event did not fire; stale cancel reached it")
	}
}

// TestSteadyStateSchedulingAllocates0 pins the slab design's core claim:
// once the heap and slab have grown to the working-set size, the
// schedule→fire cycle performs zero heap allocations.
func TestSteadyStateSchedulingAllocates0(t *testing.T) {
	e := NewEngine()
	// Warm to the working-set high-water mark.
	for i := 0; i < 4096; i++ {
		if _, err := e.Schedule(Time(i), nopEvent); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1024; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.Schedule(e.Now()+4096, nopEvent); err != nil {
			t.Fatal(err)
		}
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCancelAllocates0 pins that cancellation is allocation-free too.
func TestCancelAllocates0(t *testing.T) {
	e := NewEngine()
	const window = 4096
	events := make([]Event, 0, window)
	for i := 0; i < window; i++ {
		ev, err := e.Schedule(Time(i), nopEvent)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		events[i%window].Cancel()
		i++
	})
	if allocs != 0 {
		t.Fatalf("Cancel allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFIFOAtSameInstantAtScale schedules thousands of events at one instant
// and checks they fire in exact schedule order.
func TestFIFOAtSameInstantAtScale(t *testing.T) {
	const n = 10_000
	e := NewEngine()
	next := 0
	for i := 0; i < n; i++ {
		i := i
		if _, err := e.Schedule(5, func() {
			if i != next {
				t.Fatalf("event %d fired, expected %d", i, next)
			}
			next++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("fired %d events, want %d", next, n)
	}
}
