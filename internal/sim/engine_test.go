package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if got := e.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		if _, err := e.Schedule(at, func() { order = append(order, at) }); err != nil {
			t.Fatalf("Schedule(%v): %v", at, err)
		}
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []Time{5, 10, 10, 20, 30}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

func TestEngineSameInstantIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := e.Schedule(42, func() { order = append(order, i) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (same-instant events must be FIFO)", i, got, i)
		}
	}
}

func TestEngineClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine()
	var seen Time
	if _, err := e.Schedule(123.5, func() { seen = e.Now() }); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if seen != 123.5 {
		t.Fatalf("Now() inside callback = %v, want 123.5", seen)
	}
	if e.Now() != 123.5 {
		t.Fatalf("Now() after run = %v, want 123.5", e.Now())
	}
}

func TestEngineRejectsPastEvents(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(50, func() {}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if _, err := e.Schedule(10, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("Schedule in past: err = %v, want ErrPastEvent", err)
	}
}

func TestEngineRejectsInvalidInputs(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(Time(-1), func() {}); err == nil {
		t.Fatal("Schedule(-1) succeeded, want error")
	}
	if _, err := e.Schedule(10, nil); err == nil {
		t.Fatal("Schedule(nil fn) succeeded, want error")
	}
	if _, err := e.After(Duration(-5), func() {}); err == nil {
		t.Fatal("After(-5) succeeded, want error")
	}
	if err := e.Run(Time(-1)); err == nil {
		t.Fatal("Run(-1) succeeded, want error")
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	if _, err := e.Schedule(100, func() {
		if _, err := e.After(25, func() { at = e.Now() }); err != nil {
			t.Errorf("After: %v", err)
		}
	}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 125 {
		t.Fatalf("After(25) fired at %v, want 125", at)
	}
}

func TestEngineCancelPreventsExecution(t *testing.T) {
	e := NewEngine()
	fired := false
	ev, err := e.Schedule(10, func() { fired = true })
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestEngineCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	later, err := e.Schedule(20, func() { fired = true })
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if _, err := e.Schedule(10, func() { later.Cancel() }); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Fatal("event canceled at t=10 still fired at t=20")
	}
}

func TestEngineRunHonorsHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		if _, err := e.Schedule(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := e.Run(25); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want horizon 25", e.Now())
	}
	// The remaining event survives and fires on a later Run.
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second run, want 3", len(fired))
	}
}

func TestEngineStopEndsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		if _, err := e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := e.Run(1000); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run: err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("executed %d events, want 3", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if e.Now() < 50 {
			if _, err := e.After(10, tick); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	if _, err := e.Schedule(0, tick); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(ticks) != 6 { // 0, 10, 20, 30, 40, 50
		t.Fatalf("got %d ticks (%v), want 6", len(ticks), ticks)
	}
}

func TestEngineProcessedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		if _, err := e.Schedule(Time(i), func() {}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	ev, err := e.Schedule(10, func() {})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	ev.Cancel()
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed() = %d, want 5 (canceled events don't count)", e.Processed())
	}
}

// TestEventOrderingProperty checks, for arbitrary schedules, that execution
// order always equals the stable sort of (time, insertion order).
func TestEventOrderingProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		e := NewEngine()
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, v := range raw {
			at := Time(v % 97) // force many ties
			i := i
			if _, err := e.Schedule(at, func() { got = append(got, rec{at, i}) }); err != nil {
				return false
			}
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		want := make([]rec, 0, len(raw))
		for i, v := range raw {
			want = append(want, rec{Time(v % 97), i})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
