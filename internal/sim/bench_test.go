package sim

import "testing"

// BenchmarkEventQueue measures schedule+execute throughput of the
// discrete-event core with a realistic pending-set size.
func BenchmarkEventQueue(b *testing.B) {
	e := NewEngine()
	// Pre-fill a pending window, then keep it sliding.
	for i := 0; i < 1024; i++ {
		if _, err := e.Schedule(Time(i), func() {}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Schedule(e.Now()+1024, func() {}); err != nil {
			b.Fatal(err)
		}
		e.Step()
	}
}

// BenchmarkEventCancel measures cancellation overhead.
func BenchmarkEventCancel(b *testing.B) {
	e := NewEngine()
	events := make([]Event, b.N)
	for i := range events {
		ev, err := e.Schedule(Time(i), func() {})
		if err != nil {
			b.Fatal(err)
		}
		events[i] = ev
	}
	b.ResetTimer()
	for _, ev := range events {
		ev.Cancel()
	}
}

// BenchmarkRNGUint64 measures the raw SplitMix64 stream.
func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

// BenchmarkRNGFork measures sub-stream derivation (done once per module
// and per training task).
func BenchmarkRNGFork(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Fork("task")
	}
}
