package sim

import (
	"errors"
	"fmt"
)

// ErrPastEvent is returned when an event is scheduled before the current
// simulated instant.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// ErrStopped is returned by Run when the engine was stopped explicitly.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is the discrete-event simulation core. It advances a virtual clock
// from event to event; between events no simulated time passes and no work
// happens. All methods must be called from a single goroutine — the
// customary pattern is that the experiment driver calls Run once, and all
// further Schedule/After/Cancel calls happen inside event callbacks.
//
// Event state lives in a slab (recs) recycled through a free list, and the
// pending set is a monomorphic 4-ary heap of slot indices keyed inline by
// (time, seq). Once the slab and heap have grown to a run's high-water
// mark, the schedule→fire cycle allocates nothing.
//
// The zero value is a ready-to-use engine at time 0.
type Engine struct {
	now       Time
	queue     eventQueue
	recs      []eventRecord
	free      []int32
	nextSeq   uint64
	stopped   bool
	processed uint64
}

// NewEngine returns an engine with its clock at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated instant.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued (canceled events
// still count until they are popped).
func (e *Engine) Pending() int { return e.queue.len() }

// Processed returns the number of event callbacks executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// allocSlot takes a record slot from the free list, growing the slab only
// when every slot is live.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		slot := e.free[n-1]
		e.free = e.free[:n-1]
		return slot
	}
	e.recs = append(e.recs, eventRecord{})
	return int32(len(e.recs) - 1)
}

// freeSlot recycles a record: the generation bump makes every outstanding
// handle to the old tenant inert, and dropping fn releases the callback's
// captures to the GC.
func (e *Engine) freeSlot(slot int32) {
	rec := &e.recs[slot]
	rec.fn = nil
	rec.gen++
	e.free = append(e.free, slot)
}

// cancelEvent marks the slot canceled iff the handle's generation still
// matches (i.e. the event is still pending).
func (e *Engine) cancelEvent(slot int32, gen uint32) {
	if int(slot) >= len(e.recs) {
		return
	}
	rec := &e.recs[slot]
	if rec.gen == gen {
		rec.canceled = true
	}
}

// eventCanceled reports whether the slot is still the handle's event and
// canceled.
func (e *Engine) eventCanceled(slot int32, gen uint32) bool {
	if int(slot) >= len(e.recs) {
		return false
	}
	rec := &e.recs[slot]
	return rec.gen == gen && rec.canceled
}

// Schedule queues fn to run at the absolute instant at. It returns the
// Event handle, which can be used to cancel the callback before it fires.
// Scheduling strictly before Now is an error; scheduling exactly at Now is
// allowed and runs after all previously queued events for that instant.
func (e *Engine) Schedule(at Time, fn func()) (Event, error) {
	if !at.IsValid() {
		return Event{}, fmt.Errorf("sim: invalid event time %v", float64(at))
	}
	if at < e.now {
		return Event{}, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	if fn == nil {
		return Event{}, errors.New("sim: nil event callback")
	}
	slot := e.allocSlot()
	rec := &e.recs[slot]
	rec.fn = fn
	rec.at = at
	rec.seq = e.nextSeq
	rec.canceled = false
	e.nextSeq++
	e.queue.push(heapNode{at: at, seq: rec.seq, slot: slot})
	return Event{eng: e, slot: slot, gen: rec.gen, at: at}, nil
}

// After queues fn to run d after the current instant. A negative or invalid
// d is an error.
func (e *Engine) After(d Duration, fn func()) (Event, error) {
	if !d.IsValid() || d < 0 {
		return Event{}, fmt.Errorf("sim: invalid delay %v", float64(d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Stop makes Run return after the currently executing callback completes.
// It is typically called by a learning strategy once its termination
// condition (e.g. "75 rounds completed") is met.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step pops and executes the earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (canceled events
// are discarded without executing and without being reported).
func (e *Engine) Step() bool {
	for e.queue.len() > 0 {
		n := e.queue.pop()
		rec := &e.recs[n.slot]
		fn := rec.fn
		canceled := rec.canceled
		// Recycle before running: the callback may schedule new events,
		// which can then reuse this slot without touching the free list's
		// high-water mark.
		e.freeSlot(n.slot)
		if canceled {
			continue
		}
		e.now = n.at
		e.processed++
		fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, the next
// event lies beyond until, or Stop is called. When the run ends because the
// horizon was reached, the clock is advanced to until; pending later events
// stay queued. Run returns ErrStopped if Stop ended the run, and nil
// otherwise.
func (e *Engine) Run(until Time) error {
	if !until.IsValid() {
		return fmt.Errorf("sim: invalid run horizon %v", float64(until))
	}
	if until < e.now {
		return fmt.Errorf("sim: run horizon %v before now %v", until, e.now)
	}
	for !e.stopped {
		next, ok := e.queue.peek()
		if !ok {
			return nil
		}
		if next.at > until {
			e.now = until
			return nil
		}
		e.Step()
	}
	return ErrStopped
}

// RunAll executes events until the queue drains or Stop is called, with no
// time horizon. It is mainly useful in tests.
func (e *Engine) RunAll() error {
	for !e.stopped {
		if !e.Step() {
			return nil
		}
	}
	return ErrStopped
}
