package sim

import (
	"errors"
	"fmt"
)

// ErrPastEvent is returned when an event is scheduled before the current
// simulated instant.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// ErrStopped is returned by Run when the engine was stopped explicitly.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is the discrete-event simulation core. It advances a virtual clock
// from event to event; between events no simulated time passes and no work
// happens. All methods must be called from a single goroutine — the
// customary pattern is that the experiment driver calls Run once, and all
// further Schedule/After/Cancel calls happen inside event callbacks.
//
// The zero value is a ready-to-use engine at time 0.
type Engine struct {
	now       Time
	queue     eventHeap
	nextSeq   uint64
	stopped   bool
	processed uint64
}

// NewEngine returns an engine with its clock at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated instant.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued (canceled events
// still count until they are popped).
func (e *Engine) Pending() int { return e.queue.Len() }

// Processed returns the number of event callbacks executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule queues fn to run at the absolute instant at. It returns the
// Event handle, which can be used to cancel the callback before it fires.
// Scheduling strictly before Now is an error; scheduling exactly at Now is
// allowed and runs after all previously queued events for that instant.
func (e *Engine) Schedule(at Time, fn func()) (*Event, error) {
	if !at.IsValid() {
		return nil, fmt.Errorf("sim: invalid event time %v", float64(at))
	}
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	if fn == nil {
		return nil, errors.New("sim: nil event callback")
	}
	ev := &Event{at: at, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	e.queue.push(ev)
	return ev, nil
}

// After queues fn to run d after the current instant. A negative or invalid
// d is an error.
func (e *Engine) After(d Duration, fn func()) (*Event, error) {
	if !d.IsValid() || d < 0 {
		return nil, fmt.Errorf("sim: invalid delay %v", float64(d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Stop makes Run return after the currently executing callback completes.
// It is typically called by a learning strategy once its termination
// condition (e.g. "75 rounds completed") is met.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step pops and executes the earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (canceled events
// are discarded without executing and without being reported).
func (e *Engine) Step() bool {
	for {
		ev := e.queue.pop()
		if ev == nil {
			return false
		}
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
}

// Run executes events in timestamp order until the queue is empty, the next
// event lies beyond until, or Stop is called. When the run ends because the
// horizon was reached, the clock is advanced to until; pending later events
// stay queued. Run returns ErrStopped if Stop ended the run, and nil
// otherwise.
func (e *Engine) Run(until Time) error {
	if !until.IsValid() {
		return fmt.Errorf("sim: invalid run horizon %v", float64(until))
	}
	if until < e.now {
		return fmt.Errorf("sim: run horizon %v before now %v", until, e.now)
	}
	for !e.stopped {
		next := e.queue.peek()
		if next == nil {
			return nil
		}
		if next.at > until {
			e.now = until
			return nil
		}
		e.Step()
	}
	return ErrStopped
}

// RunAll executes events until the queue drains or Stop is called, with no
// time horizon. It is mainly useful in tests.
func (e *Engine) RunAll() error {
	for !e.stopped {
		if !e.Step() {
			return nil
		}
	}
	return ErrStopped
}
