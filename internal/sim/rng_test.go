package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d (same seed must yield same stream)", i, av, bv)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestRNGForkIsDeterministic(t *testing.T) {
	mk := func() *RNG { return NewRNG(7).Fork("mobility") }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d differs between identically derived forks", i)
		}
	}
}

func TestRNGForkLabelsIndependent(t *testing.T) {
	root := NewRNG(7)
	a := root.Fork("comm")
	b := root.Fork("ml")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across differently labeled forks", same)
	}
}

func TestRNGRepeatedForkSameLabelDiffers(t *testing.T) {
	root := NewRNG(7)
	a := root.Fork("vehicle")
	b := root.Fork("vehicle")
	if a.Uint64() == b.Uint64() {
		t.Fatal("two forks with the same label produced the same first draw")
	}
}

func TestRNGForkDoesNotDisturbSiblingStreams(t *testing.T) {
	// Adding draws on one fork must not change another fork's stream: this
	// is the property that keeps module randomness decoupled.
	root1 := NewRNG(99)
	commA := root1.Fork("comm")
	mlA := root1.Fork("ml")
	_ = commA.Uint64() // consume

	root2 := NewRNG(99)
	_ = root2.Fork("comm") // same fork order, no consumption
	mlB := root2.Fork("ml")

	for i := 0; i < 50; i++ {
		if mlA.Uint64() != mlB.Uint64() {
			t.Fatalf("draw %d: ml stream perturbed by sibling comm stream usage", i)
		}
	}
}

func TestRNGFloat64InUnitInterval(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniform draws = %v, want ~0.5", n, mean)
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(11)
	if r.Bool(0) {
		t.Fatal("Bool(0) = true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) = false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v, want ~0.3", frac)
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		v := r.Range(-5, 10)
		if v < -5 || v >= 10 {
			t.Fatalf("Range(-5,10) = %v out of bounds", v)
		}
	}
}

func TestRNGIntnCoversRange(t *testing.T) {
	r := NewRNG(17)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(19)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference values for SplitMix64 with seed 1234567, from the public
	// reference implementation by Sebastiano Vigna.
	s := &splitMix64{state: 1234567}
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := s.next(); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
}
