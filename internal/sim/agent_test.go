package sim

import "testing"

func newTestRegistry(t *testing.T) (*Engine, *Registry) {
	t.Helper()
	e := NewEngine()
	return e, NewRegistry(e)
}

func TestRegistryAssignsDenseIDs(t *testing.T) {
	_, r := newTestRegistry(t)
	for i := 0; i < 5; i++ {
		a := r.Add(KindVehicle)
		if a.ID != AgentID(i) {
			t.Fatalf("agent %d got ID %v", i, a.ID)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", r.Len())
	}
}

func TestRegistryGetUnknown(t *testing.T) {
	_, r := newTestRegistry(t)
	r.Add(KindVehicle)
	if r.Get(AgentID(5)) != nil {
		t.Fatal("Get(5) returned an agent for an unknown ID")
	}
	if r.Get(NoAgent) != nil {
		t.Fatal("Get(NoAgent) returned an agent")
	}
}

func TestRegistryOfKind(t *testing.T) {
	_, r := newTestRegistry(t)
	r.Add(KindCloudServer)
	r.Add(KindVehicle)
	r.Add(KindRSU)
	r.Add(KindVehicle)
	vehicles := r.OfKind(KindVehicle)
	if len(vehicles) != 2 || vehicles[0] != 1 || vehicles[1] != 3 {
		t.Fatalf("OfKind(KindVehicle) = %v, want [1 3]", vehicles)
	}
	if got := r.OfKind(KindCloudServer); len(got) != 1 || got[0] != 0 {
		t.Fatalf("OfKind(KindCloudServer) = %v, want [0]", got)
	}
}

func TestAgentsStartPoweredOff(t *testing.T) {
	_, r := newTestRegistry(t)
	a := r.Add(KindVehicle)
	if a.On() {
		t.Fatal("new agent is on, want off")
	}
}

func TestSetPowerNotifiesListeners(t *testing.T) {
	_, r := newTestRegistry(t)
	a := r.Add(KindVehicle)
	type transition struct {
		id AgentID
		on bool
	}
	var seen []transition
	r.OnPowerChange(func(id AgentID, on bool) { seen = append(seen, transition{id, on}) })

	if err := r.SetPower(a.ID, true); err != nil {
		t.Fatalf("SetPower(on): %v", err)
	}
	if err := r.SetPower(a.ID, true); err != nil { // no transition
		t.Fatalf("SetPower(on) repeat: %v", err)
	}
	if err := r.SetPower(a.ID, false); err != nil {
		t.Fatalf("SetPower(off): %v", err)
	}
	want := []transition{{a.ID, true}, {a.ID, false}}
	if len(seen) != len(want) {
		t.Fatalf("listener saw %d transitions (%v), want %d", len(seen), seen, len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestSetPowerUnknownAgent(t *testing.T) {
	_, r := newTestRegistry(t)
	if err := r.SetPower(AgentID(7), true); err == nil {
		t.Fatal("SetPower on unknown agent succeeded")
	}
}

func TestOccupyMarksBusyForDuration(t *testing.T) {
	e, r := newTestRegistry(t)
	a := r.Add(KindVehicle)
	if err := r.SetPower(a.ID, true); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	until, err := r.Occupy(a.ID, 12)
	if err != nil {
		t.Fatalf("Occupy: %v", err)
	}
	if until != 12 {
		t.Fatalf("Occupy returned completion %v, want 12", until)
	}
	if !a.Busy(e.Now()) {
		t.Fatal("agent not busy immediately after Occupy")
	}
	if !a.Busy(11.9) {
		t.Fatal("agent not busy just before deadline")
	}
	if a.Busy(12) {
		t.Fatal("agent still busy at deadline (deadline is exclusive)")
	}
}

func TestOccupyRejectsOffOrBusy(t *testing.T) {
	_, r := newTestRegistry(t)
	a := r.Add(KindVehicle)
	if _, err := r.Occupy(a.ID, 5); err == nil {
		t.Fatal("Occupy on powered-off agent succeeded")
	}
	if err := r.SetPower(a.ID, true); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	if _, err := r.Occupy(a.ID, 5); err != nil {
		t.Fatalf("Occupy: %v", err)
	}
	if _, err := r.Occupy(a.ID, 5); err == nil {
		t.Fatal("Occupy on busy agent succeeded")
	}
	if _, err := r.Occupy(a.ID, Duration(-1)); err == nil {
		t.Fatal("Occupy with negative duration succeeded")
	}
}

func TestPowerOffClearsBusy(t *testing.T) {
	e, r := newTestRegistry(t)
	a := r.Add(KindVehicle)
	if err := r.SetPower(a.ID, true); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	if _, err := r.Occupy(a.ID, 100); err != nil {
		t.Fatalf("Occupy: %v", err)
	}
	if err := r.SetPower(a.ID, false); err != nil {
		t.Fatalf("SetPower(off): %v", err)
	}
	if a.Busy(e.Now()) {
		t.Fatal("agent busy while off")
	}
	if a.BusyUntil() != 0 {
		t.Fatalf("BusyUntil() = %v after power-off, want 0", a.BusyUntil())
	}
}

func TestReleaseClearsBusy(t *testing.T) {
	e, r := newTestRegistry(t)
	a := r.Add(KindVehicle)
	if err := r.SetPower(a.ID, true); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	if _, err := r.Occupy(a.ID, 100); err != nil {
		t.Fatalf("Occupy: %v", err)
	}
	r.Release(a.ID)
	if a.Busy(e.Now()) {
		t.Fatal("agent busy after Release")
	}
}

func TestOccupyAdvancesWithClock(t *testing.T) {
	e, r := newTestRegistry(t)
	a := r.Add(KindVehicle)
	if err := r.SetPower(a.ID, true); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	if _, err := e.Schedule(50, func() {
		if _, err := r.Occupy(a.ID, 10); err != nil {
			t.Errorf("Occupy at t=50: %v", err)
		}
	}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if a.BusyUntil() != 60 {
		t.Fatalf("BusyUntil() = %v, want 60", a.BusyUntil())
	}
}

func TestAgentKindString(t *testing.T) {
	cases := map[AgentKind]string{
		KindVehicle:     "vehicle",
		KindRSU:         "rsu",
		KindCloudServer: "cloud",
		AgentKind(0):    "unknown(0)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestAgentIDString(t *testing.T) {
	if got := AgentID(3).String(); got != "agent-3" {
		t.Fatalf("AgentID(3).String() = %q", got)
	}
}

func TestTimeHelpers(t *testing.T) {
	ti := Time(10)
	if got := ti.Add(5); got != 15 {
		t.Fatalf("Add = %v", got)
	}
	if got := Time(15).Sub(ti); got != 5 {
		t.Fatalf("Sub = %v", got)
	}
	if !ti.Before(11) || ti.Before(9) {
		t.Fatal("Before misbehaves")
	}
	if !ti.After(9) || ti.After(11) {
		t.Fatal("After misbehaves")
	}
	if Time(-1).IsValid() {
		t.Fatal("Time(-1).IsValid() = true")
	}
	if !Duration(-1).IsValid() {
		t.Fatal("Duration(-1).IsValid() = false (negative durations are valid values)")
	}
	if ti.String() != "10.000s" {
		t.Fatalf("String = %q", ti.String())
	}
	if Duration(2.5).String() != "2.500s" {
		t.Fatalf("Duration String = %q", Duration(2.5).String())
	}
	if Duration(1.5).Seconds() != 1.5 || Time(2.5).Seconds() != 2.5 {
		t.Fatal("Seconds conversion wrong")
	}
	if TimeSeconds(3) != Time(3) || DurationSeconds(4) != Duration(4) {
		t.Fatal("constructors wrong")
	}
}

func TestRegistryAll(t *testing.T) {
	_, r := newTestRegistry(t)
	r.Add(KindCloudServer)
	r.Add(KindVehicle)
	all := r.All()
	if len(all) != 2 || all[0].Kind != KindCloudServer || all[1].Kind != KindVehicle {
		t.Fatalf("All() = %v", all)
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine()
	ev, err := e.Schedule(42, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if ev.At() != 42 {
		t.Fatalf("At() = %v", ev.At())
	}
}
