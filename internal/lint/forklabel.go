package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// ForkLabel enforces the RNG.Fork contract: fork labels are constant
// strings, and no two forks in the same function reuse a label on the
// same parent stream. Labels namespace the derived streams — "adding a
// draw in the mobility generator must not perturb the communication
// module's failure sampling" (internal/sim/rng.go) — so a dynamic label
// makes stream derivation depend on runtime state, and a repeated label
// on one parent usually means a copy-pasted fork that silently couples
// two modules' randomness.
type ForkLabel struct{}

func (ForkLabel) Name() string { return "forklabel" }

func (ForkLabel) Doc() string {
	return "require constant string RNG.Fork labels, unique per parent within a function"
}

func (ForkLabel) Check(f *File) []Diagnostic {
	var diags []Diagnostic
	for _, body := range functionBodies(f.AST) {
		seen := make(map[string]token.Position) // "parent|label" -> first fork
		inspectShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Fork" || len(call.Args) != 1 {
				return true
			}
			// When the receiver's type resolves to something other than
			// RNG, the call is an unrelated Fork; with the stub importer a
			// cross-package *sim.RNG stays unresolved and is analyzed on
			// the method name alone.
			if name := f.namedReceiver(sel.X); name != "" && name != "RNG" {
				return true
			}
			label, ok := f.constString(call.Args[0])
			if !ok {
				diags = append(diags, f.diag(call.Args[0], "forklabel",
					"Fork label must be a constant string (got %s): labels statically identify module RNG streams",
					types.ExprString(call.Args[0])))
				return true
			}
			key := types.ExprString(sel.X) + "|" + label
			if first, dup := seen[key]; dup {
				diags = append(diags, f.diag(call, "forklabel",
					"duplicate Fork label %q on %s (first fork at line %d): reusing a label obscures which module owns the stream",
					label, types.ExprString(sel.X), first.Line))
				return true
			}
			seen[key] = f.Fset.Position(call.Pos())
			return true
		})
	}
	return diags
}

// namedReceiver returns the name of the receiver's (pointer-stripped)
// named type, or "" when the type did not resolve.
func (f *File) namedReceiver(recv ast.Expr) string {
	t := f.typeOf(recv)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// constString evaluates e as a compile-time string constant: a string
// literal, a named string constant, or a constant expression over those.
func (f *File) constString(e ast.Expr) (string, bool) {
	if tv, ok := f.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	// Fallback for files where type checking resolved nothing.
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return s, true
		}
	}
	return "", false
}
