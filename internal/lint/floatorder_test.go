package lint

import (
	"path/filepath"
	"testing"
)

func TestFloatOrderBad(t *testing.T) {
	diags := runRule(t, FloatOrder{}, filepath.Join("floatorder", "bad"))
	wantLines(t, diags, "floatorder",
		[]int{8, 16, 24, 32},
		[]string{
			"map iteration order is randomized",
			"map iteration order is randomized",
			"channel receive order follows worker completion",
			"map iteration order is randomized",
		})
}

func TestFloatOrderGood(t *testing.T) {
	wantNone(t, FloatOrder{}, filepath.Join("floatorder", "good"))
}

func TestFloatOrderScope(t *testing.T) {
	cases := []struct {
		rel      string
		inModule bool
		want     bool
	}{
		{"internal/core", true, true},
		{"internal/sim", true, true},
		{"internal/lint", true, false},
		{"internal/lint/testdata/floatorder/bad", true, true},
		{"cmd/roadlint", true, false},
		{"scratch", false, true},
	}
	for _, c := range cases {
		pkg := &Package{Rel: c.rel, InModule: c.inModule}
		if got := floatOrderInScope(pkg); got != c.want {
			t.Errorf("floatOrderInScope(%q, InModule=%v) = %v, want %v", c.rel, c.inModule, got, c.want)
		}
	}
}
