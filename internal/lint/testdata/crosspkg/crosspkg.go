// Package fixture imports a path that is neither in the module graph nor
// installed: the loader must fall back to an empty stub package and keep
// going, because best-effort analysis of one broken import beats failing
// the whole run.
package fixture

import "example.com/fake"

func useFake() {
	fake.Do()
}
