// Package fixture checks that maporder still recognizes maps whose key
// type comes from another package: the stub importer leaves fake.ID
// unresolved, but the field's map structure must survive type checking.
package fixture

import "example.com/fake"

type state struct {
	pending map[fake.ID]int
}

func collect(s *state) []fake.ID {
	var ids []fake.ID
	for id := range s.pending {
		ids = append(ids, id) // want: append, never sorted
	}
	return ids
}
