// Package fixture exercises maporder negatives: the canonical
// order-independent map-range patterns used across the simulator.
package fixture

import (
	"sort"
)

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below
	}
	sort.Strings(keys)
	return keys
}

type pair struct{ a, b int }

func sortPairs(ps []pair) {}

func sortedByHelper(m map[pair]bool) []pair {
	var out []pair
	for p := range m {
		out = append(out, p) // sorted by the helper below
	}
	sortPairs(out)
	return out
}

func copyCounters(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v // one write per key, any order
	}
	return out
}

func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k) // sanctioned by the spec
	}
}

func countEntries(m map[string]int) int {
	n := 0
	for range m {
		n++ // integer increment commutes
	}
	return n
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer summation commutes
	}
	return total
}

func localOnly(m map[string]int) {
	for _, v := range m {
		doubled := v * 2 // loop-local, reborn each iteration
		_ = doubled
	}
}
