// Package fixture exercises maporder positives: map-range bodies whose
// effect depends on Go's randomized iteration order.
package fixture

import "fmt"

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: append, never sorted
	}
	return keys
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want: output follows map order
	}
}

func floatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want: float summation order perturbs rounding
	}
	return total
}

func lastWriterWins(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want: nondeterministic final value
	}
	return last
}

func sends(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want: send order follows map order
	}
}

func viaField(m map[string]int, out *struct{ names []string }) {
	for k := range m {
		out.names = append(out.names, k) // want: append through a field
	}
}
