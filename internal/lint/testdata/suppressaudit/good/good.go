// Package fixture exercises suppressaudit negatives: every directive here
// suppresses a live finding, so the audit stays silent.
package fixture

import "math/rand"

// seedCorpus deliberately uses math/rand: it generates a throwaway fuzz
// corpus, not experiment draws, and the directive is exercised by the
// detrand finding on the same line.
func seedCorpus() int {
	return rand.Intn(100) //roadlint:allow detrand corpus generation, not an experiment draw
}

// seedMore places the directive on the line above the finding, the other
// sanctioned position.
func seedMore() int {
	//roadlint:allow detrand seeded corpus helper
	return rand.Intn(7)
}
