// Package fixture exercises suppressaudit positives: directives that
// suppress nothing or name rules that do not exist.
package fixture

import "fmt"

// want: stale allow — there is no detrand finding on the next line
//roadlint:allow detrand this comment outlived the code it excused
func formerlyRandom() int {
	return 4
}

func typoedRule() {
	//roadlint:allow detrnd misspelled rule name // want: unknown rule
	fmt.Println("hello")
}
