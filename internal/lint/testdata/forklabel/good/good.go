// Package fixture exercises forklabel negatives: distinct literal labels,
// named string constants, the same label on different parents, and the
// same label in different functions.
package fixture

type RNG struct{}

func (r *RNG) Fork(label string) *RNG { return r }

const labelData = "data"

func modules(root *RNG) {
	a := root.Fork("comm")
	b := root.Fork("ml")
	c := root.Fork(labelData)          // named constant is statically known
	d := root.Fork("pre-" + labelData) // constant expression, still static
	_, _, _, _ = a, b, c, d
}

func perParent(a, b *RNG) {
	_ = a.Fork("mobility")
	_ = b.Fork("mobility") // same label, different parent stream
}

func perFunctionScopeA(root *RNG) { _ = root.Fork("roadnet") }

func perFunctionScopeB(root *RNG) { _ = root.Fork("roadnet") }

type repo struct{}

func (repo) Fork(branch string) error { return nil } // unrelated Fork method

func other(r repo, name string) {
	_ = r.Fork(name) // not an RNG: out of scope
}
