// Package fixture exercises forklabel positives: dynamic labels and a
// label reused on the same parent stream within one function.
package fixture

import "fmt"

type RNG struct{}

func (r *RNG) Fork(label string) *RNG { return r }

func duplicated(root *RNG) {
	a := root.Fork("comm")
	b := root.Fork("comm") // want: duplicate label on root
	_, _ = a, b
}

func dynamic(root *RNG, i int) {
	_ = root.Fork(fmt.Sprintf("vehicle-%d", i)) // want: non-constant label
}

func concatenatedVar(root *RNG, suffix string) {
	_ = root.Fork("mobility-" + suffix) // want: non-constant label
}
