// Package fixture exercises allow-comment suppression forms.
package fixture

import "time"

func timing() {
	_ = time.Now() //roadlint:allow wallclock same-line form, with justification
	//roadlint:allow wallclock preceding-line form
	_ = time.Now()
	_ = time.Now() //roadlint:allow maporder wrong rule must not suppress wallclock
	_ = time.Now() // plain comment, must be reported
}
