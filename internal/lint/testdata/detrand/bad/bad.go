// Package fixture exercises detrand positives: package-level math/rand
// draws and ad-hoc generators, including a renamed import and the v2 API.
package fixture

import (
	"math/rand"
	mrand "math/rand"
	randv2 "math/rand/v2"
)

func draws() int {
	rand.Seed(42)         // want: global seed
	x := rand.Intn(10)    // want: global draw
	_ = rand.Float64()    // want: global draw
	rand.Shuffle(3, swap) // want: global shuffle
	return x
}

func adHoc() int {
	r := mrand.New(mrand.NewSource(1)) // want: both selectors
	return r.Intn(3)
}

func v2() uint64 {
	return randv2.Uint64() // want: v2 global draw
}

func swap(i, j int) {}
