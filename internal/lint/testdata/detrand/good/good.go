// Package fixture exercises detrand negatives: draws flowing through a
// seeded RNG value, plus a local identifier that shadows the rand import
// (fixtures are only type-checked, never compiled, so the unused import
// is deliberate).
package fixture

import "math/rand"

type RNG struct{}

func (r *RNG) Intn(n int) int   { return 0 }
func (r *RNG) Float64() float64 { return 0 }
func (r *RNG) Fork(string) *RNG { return r }

func draws(rng *RNG) int {
	_ = rng.Float64()
	return rng.Intn(10)
}

type holder struct{ Intn func(int) int }

func shadowed() int {
	rand := holder{Intn: func(int) int { return 1 }}
	return rand.Intn(2) // local value named rand, not the package
}
