// Package fixture exercises goroutinejoin positives: unjoined goroutines
// and the capture hazards.
package fixture

import "sync"

func fireAndForget(work func()) {
	go func() { // want: no provable join
		work()
	}()
}

func namedFireAndForget(w *sync.WaitGroup) {
	go w.Wait() // want: bare call spawn, no join evidence
}

func loopCapture(items []int, out chan<- int) {
	var wg sync.WaitGroup
	for _, item := range items {
		wg.Add(1)
		go func() { // want: captures loop variable item
			defer wg.Done()
			out <- item
		}()
	}
	wg.Wait()
}

func capturedScalarWrite(items []int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want: writes captured total without synchronization
		defer wg.Done()
		for _, v := range items {
			total += v
		}
	}()
	wg.Wait()
	return total
}

func capturedIncrement() {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want: n++ on captured state
		defer wg.Done()
		n++
	}()
	wg.Wait()
	_ = n
}
