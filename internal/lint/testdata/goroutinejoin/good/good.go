// Package fixture exercises goroutinejoin negatives: every sanctioned
// join and write pattern must lint clean.
package fixture

import "sync"

// waitGroupJoin is the canonical worker pool: Add before spawn, deferred
// Done, Wait in the spawning function, shard writes indexed by a
// goroutine-local variable.
func waitGroupJoin(shards int, work func(int) int) []int {
	results := make([]int, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = work(w)
		}(w)
	}
	wg.Wait()
	return results
}

// channelJoin signals completion by sending on a channel the spawner
// receives from.
func channelJoin(work func() int) int {
	out := make(chan int, 1)
	go func() {
		out <- work()
	}()
	return <-out
}

// closeJoin signals by closing a channel the spawner drains.
func closeJoin(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// mutexGuarded synchronizes captured writes with a lock.
func mutexGuarded(items []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mu.Lock()
			total += w
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return total
}

// tracker drains struct-held launches from a sibling method: field-rooted
// WaitGroups accept Wait evidence from anywhere in the file.
type tracker struct {
	launches sync.WaitGroup
}

func (t *tracker) launch(work func()) {
	t.launches.Add(1)
	go func() {
		defer t.launches.Done()
		work()
	}()
}

func (t *tracker) drain() { t.launches.Wait() }
