// Package fixture exercises floatorder negatives: deterministic
// reductions must lint clean.
package fixture

import "sort"

// sumSlice accumulates over a slice: iteration order is the index order.
func sumSlice(values []float64) float64 {
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total
}

// sumSortedKeys is the sanctioned map reduction: sort the keys, then fold
// in sorted order.
func sumSortedKeys(weights map[string]float64) float64 {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += weights[k]
	}
	return total
}

// countMap accumulates integers in map order: associative and
// commutative, explicitly sanctioned.
func countMap(weights map[string]float64) int {
	n := 0
	for range weights {
		n++
	}
	return n
}

// indexedPartials is the EvaluateParallel pattern: workers fill disjoint
// slots, the fold runs in ascending index order after the loop.
func indexedPartials(partials []float64) float64 {
	total := 0.0
	for i := 0; i < len(partials); i++ {
		total += partials[i]
	}
	return total
}

// localAccum accumulates into a variable scoped inside the loop body:
// per-iteration state, no cross-iteration order dependence.
func localAccum(weights map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(weights))
	for k, vs := range weights {
		sub := 0.0
		for _, v := range vs {
			sub += v
		}
		out[k] = sub
	}
	return out
}
