// Package fixture exercises floatorder positives: float accumulation in
// nondeterministic iteration orders.
package fixture

func sumMapValues(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w // want: float accumulation in map order
	}
	return total
}

func sumMapSpelledOut(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total = total + w // want: x = x + v spelling
	}
	return total
}

func mergeWorkerPartials(partials chan float64) float64 {
	var total float64
	for p := range partials {
		total += p // want: float accumulation in channel completion order
	}
	return total
}

func scaleInMapRange(factors map[int]float32) float32 {
	product := float32(1)
	for _, f := range factors {
		product *= f // want: float32 multiplicative accumulation in map order
	}
	return product
}
