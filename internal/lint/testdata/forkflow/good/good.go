// Package fixture exercises forkflow negatives: the sanctioned RNG
// patterns must lint clean.
package fixture

import (
	"sort"

	"roadrunner/internal/sim"
)

type worker struct {
	rng *sim.RNG
}

// newWorker forks at a stable construction point, outside any loop in
// this function.
func newWorker(root *sim.RNG) *worker {
	return &worker{rng: root.Fork("worker")}
}

// forkSortedKeys derives per-key streams in deterministic key order.
func forkSortedKeys(root *sim.RNG, weights map[string]float64) map[string]*sim.RNG {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(map[string]*sim.RNG, len(keys))
	for _, k := range keys {
		out[k] = root.Fork(k)
	}
	return out
}

// forkPerGoroutine passes a dedicated child stream as an argument: the
// goroutine owns its RNG, nothing is shared.
func forkPerGoroutine(root *sim.RNG) {
	done := make(chan struct{})
	go func(rng *sim.RNG) {
		_ = rng.Float64()
		close(done)
	}(root.Fork("child"))
	<-done
}

// localUse draws and forks on locals only.
func localUse(seed uint64) float64 {
	root := sim.NewRNG(seed)
	child := root.Fork("local")
	return child.Float64()
}
