// Package fixture exercises forkflow positives: the RNG dataflows that
// break the seed-rooted fork tree. The fixture imports the real sim
// package so every check runs against resolved cross-package types — the
// module-graph loader's whole point.
package fixture

import "roadrunner/internal/sim"

// want: package-level RNG declaration
var globalRNG = sim.NewRNG(1)

var lateGlobal *sim.RNG

type holder struct {
	rng *sim.RNG
}

func forkPerKey(root *sim.RNG, weights map[string]float64) map[string]*sim.RNG {
	out := make(map[string]*sim.RNG)
	for k := range weights {
		out[k] = root.Fork(k) // want: Fork inside range over a map
	}
	return out
}

func escapeIntoGoroutine(root *sim.RNG) {
	done := make(chan struct{})
	go func() {
		_ = root.Float64() // want: RNG captured by goroutine closure
		close(done)
	}()
	<-done
}

func escapeFieldIntoGoroutine(h *holder) {
	done := make(chan struct{})
	go func() {
		_ = h.rng.Intn(10) // want: RNG field captured by goroutine closure
		close(done)
	}()
	<-done
}

func storeGlobal(root *sim.RNG) {
	lateGlobal = root.Fork("late") // want: RNG assigned to package-level state
}

func storePerTick(hs []*holder, root *sim.RNG) {
	for i := range hs {
		hs[i].rng = root.Fork("tick") // want: forked RNG stored into a field inside a loop
	}
}
