// Package fixture exercises wallclock negatives: the pure-value time API
// (durations, constants, formatting) is deterministic and allowed.
package fixture

import "time"

const warmup = 50 * time.Millisecond

func horizon(d time.Duration) time.Duration {
	return (d + warmup).Round(time.Second)
}

func stamp(t time.Time) string { return t.Format(time.RFC3339) }
