// Package fixture exercises wallclock positives: reading and waiting on
// the host clock.
package fixture

import "time"

func timing() time.Duration {
	start := time.Now()            // want: clock read
	time.Sleep(time.Millisecond)   // want: host wait
	<-time.After(time.Millisecond) // want: host wait
	return time.Since(start)       // want: clock read
}
