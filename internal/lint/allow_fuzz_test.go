package lint

import (
	"strings"
	"testing"
	"unicode"
)

func FuzzParseAllow(f *testing.F) {
	f.Add("//roadlint:allow detrand seeded corpus")
	f.Add("//roadlint:allow detrand,wallclock two rules")
	f.Add("// roadlint:allow maporder spaced prefix")
	f.Add("//roadlint:allow")
	f.Add("//roadlint:allow ,,, degenerate list")
	f.Add("/* roadlint:allow detrand */")
	f.Add("// plain comment")
	f.Add("//roadlint:allowdetrand")
	f.Add("")
	f.Add("//roadlint:allow \x00 weird")
	f.Fuzz(func(t *testing.T, comment string) {
		rules, ok := parseAllow(comment)
		if !ok && rules != nil {
			t.Fatalf("parseAllow(%q): rules %v with ok=false", comment, rules)
		}
		if !ok {
			return
		}
		// A directive was recognized: the comment must be a line comment
		// carrying the prefix.
		if !strings.HasPrefix(comment, "//") {
			t.Fatalf("parseAllow(%q): directive recognized in a non-line comment", comment)
		}
		if !strings.Contains(comment, allowPrefix) {
			t.Fatalf("parseAllow(%q): directive recognized without the %q prefix", comment, allowPrefix)
		}
		for _, r := range rules {
			if r == "" {
				t.Fatalf("parseAllow(%q): empty rule name in %v", comment, rules)
			}
			if strings.ContainsFunc(r, unicode.IsSpace) || strings.Contains(r, ",") {
				t.Fatalf("parseAllow(%q): rule %q contains a separator", comment, r)
			}
		}
		// Parsing must be stable: reconstructing the directive from its
		// parse yields the same rule list.
		round, ok2 := parseAllow("//" + allowPrefix + " " + strings.Join(rules, ","))
		if !ok2 || strings.Join(round, ",") != strings.Join(rules, ",") {
			t.Fatalf("parseAllow(%q): reparse of %v gave %v (ok=%v)", comment, rules, round, ok2)
		}
	})
}
