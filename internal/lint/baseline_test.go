package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bdiag(file string, line int, rule, msg string) Diagnostic {
	return Diagnostic{
		Pos:  token.Position{Filename: file, Line: line, Column: 1},
		Rule: rule,
		Msg:  msg,
	}
}

func ident(s string) string { return s }

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		bdiag("b.go", 9, "wallclock", "time.Now"),
		bdiag("a.go", 3, "detrand", "rand.Intn"),
		bdiag("a.go", 3, "detrand", "rand.Intn"), // duplicate on purpose
	}
	b := NewBaseline(diags, ident)
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != baselineVersion {
		t.Fatalf("version = %d, want %d", got.Version, baselineVersion)
	}
	if len(got.Findings) != 3 {
		t.Fatalf("findings = %d, want 3", len(got.Findings))
	}
	// Entries are written in (file, line, rule, message) order.
	if got.Findings[0].File != "a.go" || got.Findings[2].File != "b.go" {
		t.Fatalf("findings out of order: %+v", got.Findings)
	}
	// Writing is canonical: a second write of the re-read baseline is
	// byte-identical.
	path2 := filepath.Join(t.TempDir(), "again.baseline")
	if err := WriteBaseline(path2, got); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatalf("re-written baseline differs:\n%s\nvs\n%s", b1, b2)
	}
	if !strings.HasSuffix(string(b1), "\n") {
		t.Fatal("baseline file has no trailing newline")
	}
}

func TestBaselineFilter(t *testing.T) {
	base := NewBaseline([]Diagnostic{
		bdiag("a.go", 3, "detrand", "rand.Intn"),
		bdiag("a.go", 4, "detrand", "rand.Intn"), // two occurrences baselined
		bdiag("gone.go", 1, "wallclock", "time.Now"),
	}, ident)

	cases := []struct {
		name     string
		diags    []Diagnostic
		kept     int
		absorbed int
		stale    int
	}{
		{
			name: "line drift still matches",
			diags: []Diagnostic{
				bdiag("a.go", 30, "detrand", "rand.Intn"),
				bdiag("a.go", 40, "detrand", "rand.Intn"),
			},
			kept: 0, absorbed: 2, stale: 1, // gone.go entry is paid debt
		},
		{
			name: "third duplicate exceeds the budget",
			diags: []Diagnostic{
				bdiag("a.go", 3, "detrand", "rand.Intn"),
				bdiag("a.go", 4, "detrand", "rand.Intn"),
				bdiag("a.go", 5, "detrand", "rand.Intn"),
			},
			kept: 1, absorbed: 2, stale: 1,
		},
		{
			name:  "different message is a new finding",
			diags: []Diagnostic{bdiag("a.go", 3, "detrand", "rand.Float64")},
			kept:  1, absorbed: 0, stale: 3,
		},
		{
			name:  "different file is a new finding",
			diags: []Diagnostic{bdiag("c.go", 3, "detrand", "rand.Intn")},
			kept:  1, absorbed: 0, stale: 3,
		},
		{
			name:  "empty run leaves all entries stale",
			diags: nil,
			kept:  0, absorbed: 0, stale: 3,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			kept, absorbed, stale := base.Filter(c.diags, ident)
			if len(kept) != c.kept || absorbed != c.absorbed || len(stale) != c.stale {
				t.Fatalf("Filter: kept=%d absorbed=%d stale=%d, want %d/%d/%d",
					len(kept), absorbed, len(stale), c.kept, c.absorbed, c.stale)
			}
		})
	}
}

func TestBaselineVersionGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("ReadBaseline accepted version 99: %v", err)
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("ReadBaseline on a missing file succeeded")
	}
}
