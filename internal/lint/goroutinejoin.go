package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// goroutineJoinScope is the default set of package prefixes GoroutineJoin
// polices: the simulation core, the campaign scheduler, the ML kernels,
// and the command binaries that drive them. Elsewhere a stray goroutine is
// a style question; here an unjoined worker outlives the run it belongs
// to, races tick state, and — worst — keeps consuming a forked RNG after
// the result has been serialized.
var goroutineJoinScope = []string{"internal/core", "internal/campaign", "internal/ml", "cmd"}

// GoroutineJoin requires every goroutine spawned in the policed packages
// to have a provable join in its spawning function, and its closure to be
// free of the two capture hazards that undermine deterministic fan-out:
//
//   - join: the closure must signal completion in a way the spawner
//     observably waits on — a sync.WaitGroup Done matched by a Wait on the
//     same receiver, or a send/close on a channel the spawning function
//     receives from. A goroutine with neither is fire-and-forget: it can
//     still be running when the run's result is read.
//   - loop variables: the closure must not capture the enclosing loop's
//     iteration variables; pass them as arguments so each worker's inputs
//     are pinned at spawn time.
//   - captured writes: the closure must not write state captured from the
//     enclosing scope unless the write is per-slot (indexed by a
//     goroutine-local variable, the disjoint-shard pattern) or the closure
//     is mutex-guarded (calls Lock/RLock).
//
// The analysis is function-local and evidence-based: it proves joins it
// can see and reports the rest. Intentionally detached goroutines carry a
// //roadlint:allow goroutinejoin comment with the justification.
type GoroutineJoin struct{}

func (GoroutineJoin) Name() string { return "goroutinejoin" }

func (GoroutineJoin) Doc() string {
	return "require a provable join (WaitGroup/channel) for goroutines in core/campaign/ml/cmd and forbid unsynchronized captures"
}

func (GoroutineJoin) Check(f *File) []Diagnostic {
	if !inScope(f.Pkg, goroutineJoinScope) {
		return nil
	}
	var diags []Diagnostic
	for _, body := range functionBodies(f.AST) {
		inspectShallow(body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			diags = append(diags, f.checkGoroutine(body, g)...)
			return true
		})
	}
	return diags
}

// inScope reports whether pkg falls under one of the policed prefixes.
// Testdata fixtures and module-less (scratch) packages are always in
// scope: they are only ever loaded by explicit request, and the scoping
// exists to bound tree-wide runs, not to blind the rules.
func inScope(pkg *Package, prefixes []string) bool {
	if !pkg.InModule || strings.Contains(pkg.Rel, "testdata") {
		return true
	}
	for _, p := range prefixes {
		if pkg.Rel == p || strings.HasPrefix(pkg.Rel, p+"/") {
			return true
		}
	}
	return false
}

// checkGoroutine applies the join and capture checks to one go statement
// spawned directly in body.
func (f *File) checkGoroutine(body *ast.BlockStmt, g *ast.GoStmt) []Diagnostic {
	var diags []Diagnostic
	lit := goroutineLit(g)
	if lit == nil {
		diags = append(diags, f.diag(g, "goroutinejoin",
			"goroutine %s has no join evidence in the spawning function; wrap it in a closure that signals a WaitGroup or channel the spawner waits on", types.ExprString(g.Call.Fun)))
		return diags
	}
	if !f.goroutineJoined(body, lit) {
		diags = append(diags, f.diag(g, "goroutinejoin",
			"goroutine has no provable join in the spawning function (no WaitGroup Done/Wait pair, no send or close on a channel the spawner receives from); an unjoined worker outlives the run"))
	}
	diags = append(diags, f.checkLoopCapture(body, g, lit)...)
	diags = append(diags, f.checkCapturedWrites(lit)...)
	return diags
}

// goroutineJoined looks for join evidence connecting lit to its spawning
// body: a WaitGroup receiver with Done inside and Wait outside, or a
// channel sent/closed inside and received outside. For WaitGroups held in
// struct fields (a Done receiver containing a selector, e.g. s.launches),
// the Wait may legitimately live in a sibling method — shutdown drains a
// tracked worker set — so field-rooted receivers accept Wait evidence from
// anywhere in the file.
func (f *File) goroutineJoined(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	done := callsSelector(lit, "Done")
	if intersects(done, callsSelector(body, "Wait")) {
		return true
	}
	var fieldDone []string
	for _, recv := range done {
		if strings.Contains(recv, ".") {
			fieldDone = append(fieldDone, recv)
		}
	}
	if len(fieldDone) > 0 && intersects(fieldDone, callsSelector(f.AST, "Wait")) {
		return true
	}
	sent := make(map[string]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			sent[types.ExprString(s.Chan)] = true
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "close" && len(s.Args) == 1 {
				sent[types.ExprString(s.Args[0])] = true
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch r := n.(type) {
		case *ast.UnaryExpr:
			if r.Op.String() == "<-" && sent[types.ExprString(r.X)] {
				joined = true
			}
		case *ast.RangeStmt:
			if sent[types.ExprString(r.X)] {
				joined = true
			}
		}
		return true
	})
	return joined
}

// intersects reports whether two receiver-expression lists share an entry.
func intersects(a, b []string) bool {
	set := make(map[string]bool, len(a))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if set[s] {
			return true
		}
	}
	return false
}

// checkLoopCapture flags closure references to iteration variables of the
// loops enclosing the go statement.
func (f *File) checkLoopCapture(body *ast.BlockStmt, g *ast.GoStmt, lit *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic
	for _, loop := range enclosingLoops(body, g) {
		for _, obj := range f.loopVarObjs(loop) {
			if f.usesObject(lit, obj) {
				diags = append(diags, f.diag(g, "goroutinejoin",
					"goroutine closure captures loop variable %s; pass it as an argument so each worker's inputs are pinned at spawn time", obj.Name()))
			}
		}
	}
	return diags
}

// checkCapturedWrites flags writes to captured state inside the goroutine
// closure, exempting per-slot indexed writes and mutex-guarded closures.
func (f *File) checkCapturedWrites(lit *ast.FuncLit) []Diagnostic {
	if len(callsSelector(lit, "Lock", "RLock")) > 0 {
		return nil // mutex-guarded closure: writes are synchronized
	}
	var diags []Diagnostic
	report := func(n ast.Node, lhs ast.Expr) {
		id, captured := f.capturedBase(lhs, lit)
		if !captured || f.indexLocalTo(lhs, lit) {
			return
		}
		name := types.ExprString(lhs)
		if id != nil {
			name = id.Name
		}
		diags = append(diags, f.diag(n, "goroutinejoin",
			"goroutine writes captured %s without synchronization; write to a slot indexed by a goroutine-local variable or guard the closure with a mutex", name))
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				report(s, lhs)
			}
		case *ast.IncDecStmt:
			report(s, s.X)
		}
		return true
	})
	return diags
}
