package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// wantLines asserts the findings' rule and exact line numbers; msgs holds
// a distinguishing substring per expected finding, in line order.
func wantLines(t *testing.T, diags []Diagnostic, rule string, want []int, msgs []string) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(want), render(diags))
	}
	for i, d := range diags {
		if d.Rule != rule {
			t.Errorf("finding %d: rule %q, want %q", i, d.Rule, rule)
		}
		if d.Pos.Line != want[i] {
			t.Errorf("finding %d: line %d, want %d (%s)", i, d.Pos.Line, want[i], d.Msg)
		}
		if msgs != nil && !strings.Contains(d.Msg, msgs[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, d.Msg, msgs[i])
		}
	}
	if t.Failed() {
		t.Fatalf("full findings:\n%s", render(diags))
	}
}

func TestForkFlowBad(t *testing.T) {
	diags := runRule(t, ForkFlow{}, filepath.Join("forkflow", "bad"))
	wantLines(t, diags, "forkflow",
		[]int{10, 12, 21, 29, 38, 45, 50},
		[]string{
			"package-level RNG globalRNG",
			"package-level RNG lateGlobal",
			"range over a map",
			"RNG root captured by goroutine",
			"RNG h.rng captured by goroutine",
			"package-level lateGlobal",
			"forked RNG stored into hs[i].rng",
		})
}

func TestForkFlowGood(t *testing.T) {
	wantNone(t, ForkFlow{}, filepath.Join("forkflow", "good"))
}
