package lint

import "testing"

func TestWallClockBad(t *testing.T) {
	diags := runRule(t, WallClock{}, "wallclock/bad")
	if len(diags) != 4 {
		t.Fatalf("got %d findings, want 4:\n%s", len(diags), render(diags))
	}
	want := []int{8, 9, 10, 11}
	for i, l := range lines(diags) {
		if l != want[i] {
			t.Fatalf("finding lines = %v, want %v", lines(diags), want)
		}
	}
}

func TestWallClockGood(t *testing.T) {
	wantNone(t, WallClock{}, "wallclock/good")
}
