package lint

import (
	"strings"
	"testing"
)

func TestDetRandBad(t *testing.T) {
	diags := runRule(t, DetRand{}, "detrand/bad")
	// Seed, Intn, Float64, Shuffle, New, NewSource, and the v2 Uint64.
	if len(diags) != 7 {
		t.Fatalf("got %d findings, want 7:\n%s", len(diags), render(diags))
	}
	wantFuncs := []string{"Seed", "Intn", "Float64", "Shuffle", "New", "NewSource", "Uint64"}
	for _, fn := range wantFuncs {
		found := false
		for _, d := range diags {
			if d.Rule != "detrand" {
				t.Fatalf("unexpected rule %q", d.Rule)
			}
			if strings.Contains(d.Msg, "."+fn) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding for rand.%s:\n%s", fn, render(diags))
		}
	}
}

func TestDetRandGood(t *testing.T) {
	wantNone(t, DetRand{}, "detrand/good")
}

// TestDetRandExemptsInternalSim lints the real internal/sim package,
// which legitimately wraps math/rand around the seeded SplitMix64 source.
func TestDetRandExemptsInternalSim(t *testing.T) {
	pkgs, err := Load("../sim")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, []Analyzer{DetRand{}}); len(diags) != 0 {
		t.Fatalf("internal/sim must be exempt, got:\n%s", render(diags))
	}
}
