package lint

import (
	"strings"
	"testing"
)

func TestMapOrderBad(t *testing.T) {
	diags := runRule(t, MapOrder{}, "maporder/bad")
	// One finding per function: unsortedKeys, emit, floatAccumulation,
	// lastWriterWins, sends, viaField.
	if len(diags) != 6 {
		t.Fatalf("got %d findings, want 6:\n%s", len(diags), render(diags))
	}
	wantFragments := []string{"append to keys", "fmt.Println", "write to total", "write to last", "channel send", "append to out.names"}
	for _, frag := range wantFragments {
		found := false
		for _, d := range diags {
			if d.Rule != "maporder" {
				t.Fatalf("unexpected rule %q", d.Rule)
			}
			if strings.Contains(d.Msg, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding matching %q:\n%s", frag, render(diags))
		}
	}
}

func TestMapOrderGood(t *testing.T) {
	wantNone(t, MapOrder{}, "maporder/good")
}

// TestMapOrderCrossPackageKey checks that a map whose key type lives in
// an unresolvable imported package is still recognized as a map.
func TestMapOrderCrossPackageKey(t *testing.T) {
	diags := runRule(t, MapOrder{}, "maporder/crosspkg")
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(diags), render(diags))
	}
	if !strings.Contains(diags[0].Msg, "append to ids") {
		t.Fatalf("unexpected finding: %s", diags[0])
	}
}
