package lint

import (
	"path/filepath"
	"testing"
)

// TestLoadResolvesCrossPackageTypes is the module-graph loader's
// acceptance check: a testdata fixture importing roadrunner/internal/sim
// must see the real *sim.RNG, not a stub — the dataflow rules are type
// questions and degrade to name heuristics without it.
func TestLoadResolvesCrossPackageTypes(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "forkflow", "good"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !pkg.InModule {
		t.Fatal("fixture under the module root should be marked InModule")
	}
	found := false
	for _, obj := range pkg.Info.Defs {
		if obj != nil && isRNGType(obj.Type()) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no object resolved to *sim.RNG: cross-package type-checking through the module graph failed")
	}
}

// TestLoadModuleGraphOnce checks that loading two fixtures reuses one
// module graph: both packages must share the same *token.FileSet, the
// observable handle of the cached module.
func TestLoadModuleGraphOnce(t *testing.T) {
	pkgs, err := Load(
		filepath.Join("testdata", "forkflow", "good"),
		filepath.Join("testdata", "floatorder", "good"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if len(pkgs[0].Files) == 0 || len(pkgs[1].Files) == 0 {
		t.Fatal("fixture package with no files")
	}
	if pkgs[0].Files[0].Fset != pkgs[1].Files[0].Fset {
		t.Fatal("fixtures loaded with distinct FileSets: module graph not shared")
	}
}

// TestLoadStubsUnresolvableImports checks the fallback chain's last link:
// an import neither in the module graph nor installed resolves to an empty
// stub package instead of failing the load.
func TestLoadStubsUnresolvableImports(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "crosspkg"))
	if err != nil {
		t.Fatalf("Load with unresolvable import: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
}
