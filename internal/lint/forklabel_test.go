package lint

import (
	"strings"
	"testing"
)

func TestForkLabelBad(t *testing.T) {
	diags := runRule(t, ForkLabel{}, "forklabel/bad")
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(diags), render(diags))
	}
	wantFragments := []string{`duplicate Fork label "comm" on root`, "fmt.Sprintf", `"mobility-" + suffix`}
	for _, frag := range wantFragments {
		found := false
		for _, d := range diags {
			if d.Rule != "forklabel" {
				t.Fatalf("unexpected rule %q", d.Rule)
			}
			if strings.Contains(d.Msg, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding matching %q:\n%s", frag, render(diags))
		}
	}
}

func TestForkLabelGood(t *testing.T) {
	wantNone(t, ForkLabel{}, "forklabel/good")
}
