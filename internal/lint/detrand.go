package lint

import (
	"go/ast"
	"strings"
)

// DetRand forbids math/rand (and math/rand/v2) outside internal/sim.
// Every stochastic draw in an experiment must flow through sim.RNG, which
// is forked — directly or transitively — from the single experiment seed;
// a package-level rand.Intn or an ad-hoc rand.New source draws from state
// the seed does not control and silently breaks run reproducibility.
// internal/sim itself is exempt: it wraps a rand.Rand over the seeded
// SplitMix64 source, which is exactly where that dependency belongs.
type DetRand struct{}

func (DetRand) Name() string { return "detrand" }

func (DetRand) Doc() string {
	return "forbid math/rand outside internal/sim; stochastic draws must flow through sim.RNG"
}

func (DetRand) Check(f *File) []Diagnostic {
	if f.Pkg.Rel == "internal/sim" || strings.HasPrefix(f.Pkg.Rel, "internal/sim/") {
		return nil
	}
	var names []string
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		names = append(names, importNames(f.AST, path)...)
	}
	if len(names) == 0 {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		for _, name := range names {
			if f.isPkgSelector(sel, name) {
				diags = append(diags, f.diag(sel, "detrand",
					"use of %s.%s: stochastic draws must flow through sim.RNG forked from the experiment seed",
					name, sel.Sel.Name))
				return false
			}
		}
		return true
	})
	return diags
}
