package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// runAudit loads a fixture and runs the audit alongside DetRand, so
// detrand directives have an active rule to be judged stale against.
func runAudit(t *testing.T, fixture string) []Diagnostic {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("Load(%s): %v", fixture, err)
	}
	return Run(pkgs, []Analyzer{DetRand{}, SuppressAudit{}})
}

func TestSuppressAuditBad(t *testing.T) {
	diags := runAudit(t, filepath.Join("suppressaudit", "bad"))
	wantLines(t, diags, "suppressaudit",
		[]int{8, 14},
		[]string{
			"stale //roadlint:allow detrand",
			`unknown rule "detrnd"`,
		})
}

func TestSuppressAuditGood(t *testing.T) {
	if diags := runAudit(t, filepath.Join("suppressaudit", "good")); len(diags) != 0 {
		t.Fatalf("unexpected findings:\n%s", render(diags))
	}
}

// TestSuppressAuditInactiveRule checks that a subset run cannot declare a
// directive stale: without DetRand active, the detrand allows in the bad
// fixture go unjudged and only the unknown-rule finding remains.
func TestSuppressAuditInactiveRule(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "suppressaudit", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{SuppressAudit{}})
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "unknown rule") {
		t.Fatalf("subset run: got findings:\n%swant only the unknown-rule finding", render(diags))
	}
}
