package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// baselineVersion is the on-disk schema version of baseline files.
const baselineVersion = 1

// BaselineEntry is one accepted finding. Line and column are recorded for
// humans; matching ignores them so the baseline survives unrelated edits
// that shift line numbers. A finding matches an entry when rule, file, and
// message agree; each entry cancels at most one finding, so duplicated
// violations need duplicated entries (and -update-baseline writes exactly
// that).
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// Baseline is a set of findings accepted as pre-existing debt: they are
// filtered from the report, so the exit-code gate only fires on new
// findings. The intended steady state is an empty baseline — every finding
// fixed or carrying a justified //roadlint:allow — with the file acting as
// a ratchet during cleanups.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineKey is the matching identity of an entry.
func baselineKey(rule, file, msg string) string {
	return rule + "\x00" + file + "\x00" + msg
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// NewBaseline builds a baseline accepting diags, with file paths mapped
// through rel (typically to module-relative form).
func NewBaseline(diags []Diagnostic, rel func(string) string) *Baseline {
	b := &Baseline{Version: baselineVersion, Findings: make([]BaselineEntry, 0, len(diags))}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{
			Rule:    d.Rule,
			File:    rel(d.Pos.Filename),
			Line:    d.Pos.Line,
			Message: d.Msg,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes b to path in canonical indented JSON with a
// trailing newline, so baselines diff cleanly under version control.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return nil
}

// Filter splits diags into findings not covered by the baseline (kept) and
// the count it absorbed. stale reports baseline entries that matched
// nothing — debt that has been paid and should be dropped from the file.
func (b *Baseline) Filter(diags []Diagnostic, rel func(string) string) (kept []Diagnostic, absorbed int, stale []BaselineEntry) {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey(e.Rule, e.File, e.Message)]++
	}
	for _, d := range diags {
		key := baselineKey(d.Rule, rel(d.Pos.Filename), d.Msg)
		if budget[key] > 0 {
			budget[key]--
			absorbed++
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.Findings {
		key := baselineKey(e.Rule, e.File, e.Message)
		if budget[key] > 0 {
			budget[key]--
			stale = append(stale, e)
		}
	}
	return kept, absorbed, stale
}
