package lint

import (
	"go/ast"
)

// WallClock forbids reading or waiting on the host clock. Simulated time
// comes from sim.Engine; a time.Now inside the simulation couples results
// to host speed, and a time.Sleep stalls the event loop without advancing
// simulated time. The only legitimate uses are harness wall-time
// measurements (how long a run took, not what it computed), which carry a
// //roadlint:allow wallclock annotation with a justification.
type WallClock struct{}

// wallClockFuncs are the time package functions that observe or wait on
// the host clock. Pure-value API (time.Duration, time.Millisecond,
// Duration.Round, ...) is deterministic and stays allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (WallClock) Name() string { return "wallclock" }

func (WallClock) Doc() string {
	return "forbid wall-clock reads (time.Now/Since/Sleep/...); simulated time comes from sim.Engine"
}

func (WallClock) Check(f *File) []Diagnostic {
	name := importName(f.AST, "time")
	if name == "" {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if wallClockFuncs[sel.Sel.Name] && f.isPkgSelector(sel, name) {
			diags = append(diags, f.diag(sel, "wallclock",
				"wall-clock %s.%s: simulation results must depend only on (config, seed); annotate harness timing with //roadlint:allow wallclock",
				name, sel.Sel.Name))
			return false
		}
		return true
	})
	return diags
}
