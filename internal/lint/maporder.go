package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags range-over-map loops whose bodies are sensitive to
// iteration order — the classic Go nondeterminism hazard in simulators:
// Go randomizes map iteration order per run, so a map range that appends
// to a slice, writes order-dependent shared state, emits output, or sends
// on a channel produces different results for identical (config, seed).
//
// Order-independent bodies are exempt, so the canonical fixes lint clean:
//
//   - collecting keys into a slice that is subsequently sorted (a call to
//     sort.*, slices.Sort*, or any function whose name contains "sort"
//     after the loop, taking the slice as an argument);
//   - per-key writes m2[k] = v indexed by the range key;
//   - delete(m, k) while ranging (explicitly sanctioned by the Go spec);
//   - integer accumulation (n++, total += v), which is commutative and
//     associative — unlike its floating-point counterpart, which is
//     flagged because summation order perturbs rounding.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }

func (MapOrder) Doc() string {
	return "flag order-sensitive bodies of range-over-map loops (append, shared writes, output)"
}

func (MapOrder) Check(f *File) []Diagnostic {
	var diags []Diagnostic
	seen := make(map[token.Pos]bool) // dedup writes inside nested map ranges
	for _, body := range functionBodies(f.AST) {
		inspectShallow(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !f.isMapRange(rs) {
				return true
			}
			for _, d := range f.checkMapRange(body, rs) {
				if !seen[d.pos] {
					seen[d.pos] = true
					diags = append(diags, d.diag)
				}
			}
			return true
		})
	}
	return diags
}

// isMapRange reports whether rs iterates a map, using type information
// when available and falling back to the syntactic make(map...) and
// map-literal forms when the operand's type did not resolve.
func (f *File) isMapRange(rs *ast.RangeStmt) bool {
	if t := f.typeOf(rs.X); t != nil {
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	switch x := ast.Unparen(rs.X).(type) {
	case *ast.CompositeLit:
		_, ok := x.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
			_, ok := x.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

type posDiag struct {
	pos  token.Pos
	diag Diagnostic
}

// checkMapRange reports the order-sensitive operations in rs's body. body
// is the innermost function body enclosing rs, scanned after the loop for
// the sorted-later exemption.
func (f *File) checkMapRange(body *ast.BlockStmt, rs *ast.RangeStmt) []posDiag {
	var out []posDiag
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, posDiag{pos: n.Pos(), diag: f.diag(n, "maporder", format, args...)})
	}
	keyObj := f.rangeKeyObj(rs)
	inspectShallow(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				var rhs ast.Expr
				if len(stmt.Rhs) == len(stmt.Lhs) {
					rhs = stmt.Rhs[i]
				}
				f.checkWrite(body, rs, keyObj, stmt.Tok, lhs, rhs, report)
			}
		case *ast.IncDecStmt:
			if f.outerWrite(rs, keyObj, stmt.X) && !f.isInteger(stmt.X) {
				report(stmt, "non-integer %s inside map iteration: result depends on iteration order", stmt.Tok)
			}
		case *ast.SendStmt:
			report(stmt, "channel send inside map iteration: message order follows the randomized map order")
		case *ast.CallExpr:
			if name, ok := outputCall(f, stmt); ok {
				report(stmt, "%s inside map iteration: output follows the randomized map order (iterate sorted keys instead)", name)
			}
		}
		return true
	})
	return out
}

// checkWrite classifies one assignment target inside a map-range body.
func (f *File) checkWrite(body *ast.BlockStmt, rs *ast.RangeStmt, keyObj types.Object,
	tok token.Token, lhs, rhs ast.Expr, report func(ast.Node, string, ...any)) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Appends get their own message and the sorted-later exemption.
	if isAppendCall(rhs) {
		if !f.outerWrite(rs, keyObj, lhs) {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && f.sortedAfter(body, rs, f.objectOf(id)) {
			return
		}
		report(lhs, "append to %s inside map iteration yields nondeterministic element order; sort the result or iterate sorted keys", types.ExprString(lhs))
		return
	}
	if !f.outerWrite(rs, keyObj, lhs) {
		return
	}
	// Commutative, associative accumulation on integers is order-independent.
	opAssign := tok != token.ASSIGN && tok != token.DEFINE
	if opAssign && f.isInteger(lhs) {
		return
	}
	report(lhs, "write to %s (declared outside the loop) inside map iteration: result depends on iteration order", types.ExprString(lhs))
}

// outerWrite reports whether lhs targets state declared outside the range
// statement. Per-key writes indexed by the range key are treated as
// order-independent and excluded.
func (f *File) outerWrite(rs *ast.RangeStmt, keyObj types.Object, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return f.declaredOutside(x, rs)
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(x.Index).(*ast.Ident); ok && keyObj != nil && f.objectOf(id) == keyObj {
			return false // m2[k] = v: one write per key, any order
		}
		return f.rootOutside(x.X, rs)
	case *ast.SelectorExpr, *ast.StarExpr:
		return f.rootOutside(lhs, rs)
	}
	return false
}

// rootOutside walks to the base identifier of a selector/index/deref
// chain and reports whether it is declared outside rs. Chains with no
// resolvable base (e.g. a call result) count as outside: the write
// escapes the loop body.
func (f *File) rootOutside(e ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return f.declaredOutside(x, rs)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return true
		}
	}
}

// declaredOutside reports whether id's declaration lies outside the range
// statement's span. Unresolved identifiers (package-level state, dot
// imports) count as outside.
func (f *File) declaredOutside(id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := f.objectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// rangeKeyObj resolves the range statement's key variable, or nil.
func (f *File) rangeKeyObj(rs *ast.RangeStmt) types.Object {
	if id, ok := rs.Key.(*ast.Ident); ok {
		return f.objectOf(id)
	}
	return nil
}

func (f *File) isInteger(e ast.Expr) bool {
	t := f.typeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// isAppendCall reports whether rhs is a call of the append builtin.
func isAppendCall(rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// sortedAfter reports whether obj is passed, after the range statement,
// to a call that sorts it: sort.*, slices.Sort*, a function whose name
// contains "sort", or a method spelled that way.
func (f *File) sortedAfter(body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || found {
			return !found
		}
		if !sortingCallee(call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && f.objectOf(id) == obj {
				found = true
				return false
			}
		}
		// Method form: keys.Sort().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && f.objectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func sortingCallee(fun ast.Expr) bool {
	switch fn := fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fn.Name), "sort")
	case *ast.SelectorExpr:
		if strings.Contains(strings.ToLower(fn.Sel.Name), "sort") {
			return true
		}
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name == "sort" || id.Name == "slices"
		}
	}
	return false
}

// outputCall recognizes calls that emit output: the fmt print family and
// the print/println builtins.
func outputCall(f *File, call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name == "print" || fn.Name == "println" {
			return fn.Name, true
		}
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		if (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) &&
			f.isPkgSelector(fn, importName(f.AST, "fmt")) {
			return "fmt." + name, true
		}
	}
	return "", false
}
