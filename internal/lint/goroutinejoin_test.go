package lint

import (
	"path/filepath"
	"testing"
)

func TestGoroutineJoinBad(t *testing.T) {
	diags := runRule(t, GoroutineJoin{}, filepath.Join("goroutinejoin", "bad"))
	wantLines(t, diags, "goroutinejoin",
		[]int{8, 14, 21, 36, 49},
		[]string{
			"no provable join",
			"no join evidence",
			"captures loop variable item",
			"writes captured total",
			"writes captured n",
		})
}

func TestGoroutineJoinGood(t *testing.T) {
	wantNone(t, GoroutineJoin{}, filepath.Join("goroutinejoin", "good"))
}

func TestGoroutineJoinScope(t *testing.T) {
	cases := []struct {
		rel      string
		inModule bool
		want     bool
	}{
		{"internal/core", true, true},
		{"internal/campaign/store", true, true},
		{"internal/ml", true, true},
		{"cmd/roadlint", true, true},
		{"internal/trace", true, false},
		{"internal/lint", true, false},
		{"internal/lint/testdata/goroutinejoin/bad", true, true},
		{"scratch", false, true},
	}
	for _, c := range cases {
		pkg := &Package{Rel: c.rel, InModule: c.inModule}
		if got := inScope(pkg, goroutineJoinScope); got != c.want {
			t.Errorf("inScope(%q, InModule=%v) = %v, want %v", c.rel, c.inModule, got, c.want)
		}
	}
}
