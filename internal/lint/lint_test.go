package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// runRule loads a testdata fixture tree and applies one analyzer.
func runRule(t *testing.T, a Analyzer, fixture string) []Diagnostic {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("Load(%s): %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%s): no packages", fixture)
	}
	return Run(pkgs, []Analyzer{a})
}

// lines extracts the diagnostic line numbers, sorted by Run already.
func lines(diags []Diagnostic) []int {
	out := make([]int, len(diags))
	for i, d := range diags {
		out[i] = d.Pos.Line
	}
	return out
}

func wantNone(t *testing.T, a Analyzer, fixture string) {
	t.Helper()
	if diags := runRule(t, a, fixture); len(diags) != 0 {
		t.Fatalf("%s on %s: unexpected findings:\n%s", a.Name(), fixture, render(diags))
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestAnalyzerSuite(t *testing.T) {
	got := make([]string, 0, 4)
	for _, a := range Analyzers() {
		if a.Doc() == "" {
			t.Errorf("%s: empty doc", a.Name())
		}
		got = append(got, a.Name())
	}
	want := []string{"detrand", "wallclock", "maporder", "forklabel", "forkflow", "goroutinejoin", "floatorder", "suppressaudit"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Analyzers() = %v, want %v", got, want)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:  token.Position{Filename: "x/y.go", Line: 12, Column: 3},
		Rule: "detrand",
		Msg:  "boom",
	}
	if got, want := d.String(), "x/y.go:12:3: detrand: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestAllowSuppression(t *testing.T) {
	diags := runRule(t, WallClock{}, "allow")
	// Same-line and preceding-line directives suppress; a directive for a
	// different rule and a plain comment do not.
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(diags), render(diags))
	}
	if got, want := lines(diags), []int{10, 11}; got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("finding lines = %v, want %v", got, want)
	}
	for _, d := range diags {
		if d.Rule != "wallclock" {
			t.Fatalf("unexpected rule %q", d.Rule)
		}
	}
}

func TestRunOrdersDiagnostics(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "wallclock", "bad"), filepath.Join("testdata", "detrand", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

func TestLoadSkipsTestdataAndTests(t *testing.T) {
	pkgs, err := Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		dirs := make([]string, len(pkgs))
		for i, p := range pkgs {
			dirs[i] = p.Dir
		}
		t.Fatalf("Load(./...) from internal/lint = %v, want just the package itself", dirs)
	}
	for _, f := range pkgs[0].Files {
		if strings.HasSuffix(f.Path, "_test.go") {
			t.Fatalf("loaded test file %s", f.Path)
		}
		if strings.Contains(f.Path, "testdata") {
			t.Fatalf("loaded fixture %s", f.Path)
		}
	}
}

func TestModuleRel(t *testing.T) {
	pkgs, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pkgs[0].Rel, "internal/lint"; got != want {
		t.Fatalf("Rel = %q, want %q", got, want)
	}
}
