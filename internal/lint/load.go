package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load resolves package patterns into parsed, best-effort type-checked
// packages. A pattern is either a directory, a single .go file, or a
// go-tool-style recursive pattern ending in "/..." (the bare "./..." lints
// everything under the current directory). Test files (_test.go) and the
// directories the go tool ignores (testdata, vendor, and names starting
// with "." or "_") are skipped: the determinism contract governs
// simulation code, while tests are free to use stdlib rand for
// testing/quick interop and wall-clock timing.
func Load(patterns ...string) ([]*Package, error) {
	dirs, singles, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	for _, file := range singles {
		pkg, err := loadFiles(fset, filepath.Dir(file), []string{file})
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expand splits patterns into package directories and single files.
func expand(patterns []string) (dirs, singles []string, err error) {
	seen := make(map[string]bool)
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "..." || strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" {
				root = "."
			}
			walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					addDir(path)
				}
				return nil
			})
			if walkErr != nil {
				return nil, nil, fmt.Errorf("lint: walk %s: %w", pat, walkErr)
			}
		case strings.HasSuffix(pat, ".go"):
			singles = append(singles, pat)
		default:
			info, statErr := os.Stat(pat)
			if statErr != nil {
				return nil, nil, fmt.Errorf("lint: %w", statErr)
			}
			if !info.IsDir() {
				return nil, nil, fmt.Errorf("lint: %s is neither a directory nor a .go file", pat)
			}
			addDir(pat)
		}
	}
	return dirs, singles, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if lintable(e) {
			return true
		}
	}
	return false
}

func lintable(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

func loadDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if lintable(e) {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return loadFiles(fset, dir, paths)
}

func loadFiles(fset *token.FileSet, dir string, paths []string) (*Package, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	pkg := &Package{
		Dir: dir,
		Rel: moduleRel(dir),
		Info: &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		},
	}
	var asts []*ast.File
	for _, path := range paths {
		parsed, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f := &File{Path: path, Fset: fset, AST: parsed, Pkg: pkg}
		f.buildAllowIndex()
		pkg.Files = append(pkg.Files, f)
		asts = append(asts, parsed)
	}
	// Best-effort type check: the stub importer satisfies every import
	// with an empty placeholder package, so cross-package references do
	// not resolve and the checker reports (swallowed) errors for them.
	// Everything declared within the package — including map-typed fields
	// and locals, the cases the analyzers care about — still gets types.
	conf := types.Config{
		Error:       func(error) {}, // keep going past unresolved symbols
		Importer:    stubImporter{pkgs: make(map[string]*types.Package)},
		FakeImportC: true,
	}
	_, _ = conf.Check(dir, fset, asts, pkg.Info)
	return pkg, nil
}

// stubImporter satisfies go/types imports with empty placeholder packages
// so analysis never needs compiled export data — the price is that
// imported symbols stay unresolved, which analyzers must tolerate.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.pkgs[path]; ok {
		return pkg, nil
	}
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	pkg := types.NewPackage(path, base)
	pkg.MarkComplete()
	s.pkgs[path] = pkg
	return pkg, nil
}

// moduleRel returns dir relative to the enclosing Go module root
// (slash-separated, "." for the root itself). When no go.mod is found the
// cleaned dir is returned unchanged, which keeps path-scoped rules inert
// rather than wrong.
func moduleRel(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	for probe := abs; ; {
		if _, err := os.Stat(filepath.Join(probe, "go.mod")); err == nil {
			rel, err := filepath.Rel(probe, abs)
			if err != nil {
				break
			}
			return filepath.ToSlash(rel)
		}
		parent := filepath.Dir(probe)
		if parent == probe {
			break
		}
		probe = parent
	}
	return filepath.ToSlash(filepath.Clean(dir))
}
