package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Load resolves package patterns into parsed, type-checked packages. A
// pattern is either a directory, a single .go file, or a go-tool-style
// recursive pattern ending in "/..." (the bare "./..." lints everything
// under the current directory). Test files (_test.go) and the directories
// the go tool ignores (testdata, vendor, and names starting with "." or
// "_") are skipped: the determinism contract governs simulation code,
// while tests are free to use stdlib rand for testing/quick interop and
// wall-clock timing.
//
// Packages inside a Go module are type-checked against the whole module
// graph: every package of the module is parsed once and checked in import
// dependency order, so cross-package types — *sim.RNG receivers,
// sync.WaitGroup fields, map types declared two packages away — resolve
// exactly. Imports outside the module (the standard library) come from
// compiled export data via go/importer, with an empty stub as the last
// resort, so analysis still never requires the lint target to build.
// Directories outside any module fall back to the historical best-effort
// per-package check with stub imports.
func Load(patterns ...string) ([]*Package, error) {
	dirs, singles, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadPackageDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	for _, file := range singles {
		pkg, err := loadSingleFile(file)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expand splits patterns into package directories and single files.
func expand(patterns []string) (dirs, singles []string, err error) {
	seen := make(map[string]bool)
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "..." || strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" {
				root = "."
			}
			walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if path != root && skipDirName(d.Name()) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					addDir(path)
				}
				return nil
			})
			if walkErr != nil {
				return nil, nil, fmt.Errorf("lint: walk %s: %w", pat, walkErr)
			}
		case strings.HasSuffix(pat, ".go"):
			singles = append(singles, pat)
		default:
			info, statErr := os.Stat(pat)
			if statErr != nil {
				return nil, nil, fmt.Errorf("lint: %w", statErr)
			}
			if !info.IsDir() {
				return nil, nil, fmt.Errorf("lint: %s is neither a directory nor a .go file", pat)
			}
			addDir(pat)
		}
	}
	return dirs, singles, nil
}

// skipDirName reports whether a directory name is one the go tool ignores.
func skipDirName(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if lintable(e) {
			return true
		}
	}
	return false
}

func lintable(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// loadPackageDir loads one requested directory, through the module graph
// when the directory sits inside a Go module.
func loadPackageDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	root := findModuleRoot(abs)
	if root == "" {
		fset := token.NewFileSet()
		return loadDirStub(fset, dir)
	}
	mod, err := getModule(root)
	if err != nil {
		return nil, err
	}
	return mod.packageFor(dir, abs)
}

// loadSingleFile loads one .go file as its own single-file package, with
// module-graph imports when the file sits inside a module.
func loadSingleFile(file string) (*Package, error) {
	dir := filepath.Dir(file)
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	root := findModuleRoot(abs)
	if root == "" {
		fset := token.NewFileSet()
		return loadFilesStub(fset, dir, []string{file})
	}
	mod, err := getModule(root)
	if err != nil {
		return nil, err
	}
	mod.mu.Lock()
	defer mod.mu.Unlock()
	return mod.checkFiles(dir, relOf(root, abs), []string{file})
}

// ---------------------------------------------------------------------------
// Module graph
// ---------------------------------------------------------------------------

// module is one fully loaded Go module: every non-test package parsed and
// type-checked in import dependency order against a shared FileSet. Module
// graphs are cached per root for the life of the process — the loader is
// an analysis snapshot, not a watcher.
type module struct {
	root string // absolute module root (directory containing go.mod)
	path string // module path from the go.mod module directive
	fset *token.FileSet

	byRel    map[string]*Package       // checked module packages by slash-relative dir
	typed    map[string]*types.Package // resolved packages by import path (module + imported)
	fallback types.Importer            // export-data importer for non-module imports

	// mu guards typed and extra for post-build on-demand loads (testdata
	// fixtures, single files): the build itself runs single-threaded under
	// the registry lock.
	mu    sync.Mutex
	extra map[string]*Package // on-demand packages by absolute dir
}

var (
	moduleMu sync.Mutex
	modules  = make(map[string]*module)
)

// getModule returns the cached graph for root, building it on first use.
func getModule(root string) (*module, error) {
	moduleMu.Lock()
	defer moduleMu.Unlock()
	if m, ok := modules[root]; ok {
		return m, nil
	}
	m, err := buildModule(root)
	if err != nil {
		return nil, err
	}
	modules[root] = m
	return m, nil
}

// rawPkg is one parsed-but-unchecked module package.
type rawPkg struct {
	rel  string
	pkg  *Package
	asts []*ast.File
	deps []string // module-internal dependency rels
}

// buildModule parses every package under root and type-checks them in
// dependency order, so each package's Info sees fully resolved imports.
func buildModule(root string) (*module, error) {
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &module{
		root:     root,
		path:     path,
		fset:     fset,
		byRel:    make(map[string]*Package),
		typed:    make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "gc", nil),
		extra:    make(map[string]*Package),
	}

	var rels []string
	walkErr := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if p != root && skipDirName(d.Name()) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rels = append(rels, relOf(root, p))
		}
		return nil
	})
	if walkErr != nil {
		return nil, fmt.Errorf("lint: walk module %s: %w", root, walkErr)
	}
	sort.Strings(rels)

	parsed := make(map[string]*rawPkg, len(rels))
	for _, rel := range rels {
		raw, err := m.parseDir(filepath.Join(root, filepath.FromSlash(rel)), rel)
		if err != nil {
			return nil, err
		}
		if raw != nil {
			parsed[rel] = raw
		}
	}

	// Depth-first over module-internal imports: dependencies check first,
	// so importers always serve an already-resolved types.Package. Cycles
	// cannot occur in compiling Go code; if one sneaks in, the in-progress
	// package simply resolves through the stub fallback.
	state := make(map[string]int) // 0 new, 1 in progress, 2 done
	var check func(rel string)
	check = func(rel string) {
		raw, ok := parsed[rel]
		if !ok || state[rel] != 0 {
			return
		}
		state[rel] = 1
		for _, dep := range raw.deps {
			check(dep)
		}
		m.checkPackage(raw)
		state[rel] = 2
	}
	for _, rel := range rels {
		check(rel)
	}
	return m, nil
}

// parseDir parses the lintable files of one module directory. Returns nil
// when the directory has no lintable files.
func (m *module) parseDir(dir, rel string) (*rawPkg, error) {
	paths, err := lintablePaths(dir)
	if err != nil || len(paths) == 0 {
		return nil, err
	}
	raw := &rawPkg{rel: rel, pkg: newPackage(dir, rel)}
	raw.pkg.InModule = true
	depSet := make(map[string]bool)
	for _, p := range paths {
		f, err := m.parseInto(raw.pkg, p)
		if err != nil {
			return nil, err
		}
		raw.asts = append(raw.asts, f)
		for _, imp := range f.Imports {
			if dep, ok := m.relForImport(importPath(imp)); ok && !depSet[dep] {
				depSet[dep] = true
				raw.deps = append(raw.deps, dep)
			}
		}
	}
	sort.Strings(raw.deps)
	return raw, nil
}

// parseInto parses one file and appends it to pkg's file list.
func (m *module) parseInto(pkg *Package, path string) (*ast.File, error) {
	parsed, err := parser.ParseFile(m.fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	f := &File{Path: path, Fset: m.fset, AST: parsed, Pkg: pkg}
	f.buildAllowIndex()
	pkg.Files = append(pkg.Files, f)
	return parsed, nil
}

// checkPackage type-checks one parsed package with module-graph imports
// and records the result for downstream importers.
func (m *module) checkPackage(raw *rawPkg) {
	conf := types.Config{
		Error:       func(error) {}, // keep going past residual errors
		Importer:    (*moduleImporter)(m),
		FakeImportC: true,
	}
	tpkg, _ := conf.Check(m.importPathFor(raw.rel), m.fset, raw.asts, raw.pkg.Info)
	if tpkg != nil {
		if !tpkg.Complete() {
			tpkg.MarkComplete()
		}
		m.typed[m.importPathFor(raw.rel)] = tpkg
	}
	m.byRel[raw.rel] = raw.pkg
}

// packageFor returns the graph package for a requested directory, loading
// on demand for directories the graph walk skips (testdata fixtures).
func (m *module) packageFor(dir, abs string) (*Package, error) {
	rel := relOf(m.root, abs)
	if pkg, ok := m.byRel[rel]; ok {
		return pkg, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pkg, ok := m.extra[abs]; ok {
		return pkg, nil
	}
	paths, err := lintablePaths(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := m.checkFiles(dir, rel, paths)
	if err != nil {
		return nil, err
	}
	if pkg != nil {
		m.extra[abs] = pkg
	}
	return pkg, nil
}

// checkFiles parses and type-checks an on-demand file set against the
// module graph. Callers hold m.mu.
func (m *module) checkFiles(dir, rel string, paths []string) (*Package, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	pkg := newPackage(dir, rel)
	pkg.InModule = true
	var asts []*ast.File
	for _, p := range paths {
		f, err := m.parseInto(pkg, p)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	conf := types.Config{
		Error:       func(error) {},
		Importer:    (*moduleImporter)(m),
		FakeImportC: true,
	}
	_, _ = conf.Check(m.importPathFor(rel), m.fset, asts, pkg.Info)
	return pkg, nil
}

// relForImport maps a module-internal import path to its directory rel.
func (m *module) relForImport(path string) (string, bool) {
	if path == m.path {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, m.path+"/"); ok {
		return rest, true
	}
	return "", false
}

// importPathFor is the inverse of relForImport.
func (m *module) importPathFor(rel string) string {
	if rel == "." {
		return m.path
	}
	return m.path + "/" + rel
}

// moduleImporter serves imports during type checking: already-checked
// module packages first, compiled export data (the standard library) next,
// and an empty stub package as the never-fails last resort.
type moduleImporter module

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if t, ok := m.typed[path]; ok {
		return t, nil
	}
	if t, err := m.fallback.Import(path); err == nil && t != nil {
		m.typed[path] = t
		return t, nil
	}
	stub := types.NewPackage(path, pathBase(path))
	stub.MarkComplete()
	m.typed[path] = stub
	return stub, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// findModuleRoot walks up from abs to the nearest directory containing a
// go.mod, or "" when there is none.
func findModuleRoot(abs string) string {
	for probe := abs; ; {
		if _, err := os.Stat(filepath.Join(probe, "go.mod")); err == nil {
			return probe
		}
		parent := filepath.Dir(probe)
		if parent == probe {
			return ""
		}
		probe = parent
	}
}

// relOf returns abs relative to root, slash-separated ("." for the root).
func relOf(root, abs string) string {
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(abs))
	}
	return filepath.ToSlash(rel)
}

// lintablePaths lists the non-test .go files of dir, sorted.
func lintablePaths(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if lintable(e) {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// newPackage allocates a Package with an empty, never-nil Info.
func newPackage(dir, rel string) *Package {
	return &Package{
		Dir: dir,
		Rel: rel,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
}

// ---------------------------------------------------------------------------
// Module-less fallback (directories outside any go.mod)
// ---------------------------------------------------------------------------

func loadDirStub(fset *token.FileSet, dir string) (*Package, error) {
	paths, err := lintablePaths(dir)
	if err != nil {
		return nil, err
	}
	return loadFilesStub(fset, dir, paths)
}

func loadFilesStub(fset *token.FileSet, dir string, paths []string) (*Package, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	pkg := newPackage(dir, filepath.ToSlash(filepath.Clean(dir)))
	var asts []*ast.File
	for _, path := range paths {
		parsed, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f := &File{Path: path, Fset: fset, AST: parsed, Pkg: pkg}
		f.buildAllowIndex()
		pkg.Files = append(pkg.Files, f)
		asts = append(asts, parsed)
	}
	conf := types.Config{
		Error:       func(error) {},
		Importer:    stubImporter{pkgs: make(map[string]*types.Package)},
		FakeImportC: true,
	}
	_, _ = conf.Check(dir, fset, asts, pkg.Info)
	return pkg, nil
}

// stubImporter satisfies go/types imports with empty placeholder packages
// so module-less analysis never needs export data — the price is that
// imported symbols stay unresolved, which analyzers must tolerate.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.pkgs[path]; ok {
		return pkg, nil
	}
	pkg := types.NewPackage(path, pathBase(path))
	pkg.MarkComplete()
	s.pkgs[path] = pkg
	return pkg, nil
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
