// Package lint implements roadlint, the project's determinism-and-
// concurrency static-analysis suite. The framework's core promise — a
// configuration and a seed fully determine an experiment run (paper
// requirement 6) — is a property of the whole codebase, not of any single
// module: one stray math/rand call, one wall-clock read inside the
// simulation, or one unsorted map iteration feeding simulation state
// silently breaks byte-identical reproducibility. roadlint makes those
// invariants machine-checked so every change lands against a correctness
// backstop.
//
// The suite is built entirely on the standard library (go/parser, go/ast,
// go/token, go/types); go.mod stays dependency-free. Analysis is
// best-effort: packages are type-checked with a stub importer that leaves
// cross-package symbols unresolved, so analyzers use type information when
// available and fall back to syntactic reasoning when it is not.
//
// Findings can be suppressed per line with an allow comment on the
// offending line or the line directly above it:
//
//	//roadlint:allow <rule>[,<rule>...] [justification]
//
// Suppressions are rule-scoped; a comment allowing wallclock does not
// silence maporder on the same line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, reported as file:line:col: rule: message.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// File is one parsed source file plus its package context.
type File struct {
	// Path is the file's path as given to the loader.
	Path string
	Fset *token.FileSet
	AST  *ast.File
	// Pkg points back to the enclosing package.
	Pkg *Package

	// allow maps line numbers to the suppression directives on that line.
	allow map[int][]*allowEntry
}

// Package groups the files of one directory with best-effort type
// information shared by all analyzers.
type Package struct {
	// Dir is the package directory as given to the loader.
	Dir string
	// Rel is Dir relative to the enclosing module root (slash-separated,
	// "." for the root package). Analyzers use it for path-scoped rules
	// such as detrand's internal/sim exemption.
	Rel string
	// InModule records whether the package was loaded through a module
	// graph. Path-scoped rules treat module-less packages (and testdata
	// fixtures) as always in scope, so scratch fixtures exercise every
	// rule family.
	InModule bool
	Files    []*File
	// Info holds partial type information: identifiers and expressions
	// whose types involve imported packages may be unresolved. Never nil.
	Info *types.Info
}

// Analyzer is one roadlint rule.
type Analyzer interface {
	// Name is the rule identifier used in diagnostics and allow comments.
	Name() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Check reports the rule's findings in one file. Suppression is
	// applied by Run, not by the analyzer.
	Check(f *File) []Diagnostic
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		DetRand{}, WallClock{}, MapOrder{}, ForkLabel{},
		ForkFlow{}, GoroutineJoin{}, FloatOrder{}, SuppressAudit{},
	}
}

// Run applies the analyzers to every file of every package, drops
// suppressed findings, and returns the rest sorted by position. When the
// analyzer set includes SuppressAudit, allow directives that suppressed
// nothing during the pass are reported as findings of their own.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	audit := false
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name()] = true
		if a.Name() == RuleSuppressAudit {
			audit = true
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, a := range analyzers {
				for _, d := range a.Check(f) {
					if !f.suppressed(d.Rule, d.Pos.Line) {
						out = append(out, d)
					}
				}
			}
		}
	}
	if audit {
		// The audit runs after every analyzer has claimed its
		// suppressions across all packages, so usage is final.
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, d := range auditAllows(f, active) {
					if !f.suppressed(d.Rule, d.Pos.Line) {
						out = append(out, d)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// diag builds a Diagnostic at the position of node n.
func (f *File) diag(n ast.Node, rule, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:  f.Fset.Position(n.Pos()),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	}
}

// typeOf returns the best-effort type of e, or nil when unresolved.
func (f *File) typeOf(e ast.Expr) types.Type {
	t := f.Pkg.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// objectOf resolves an identifier to its object, or nil.
func (f *File) objectOf(id *ast.Ident) types.Object {
	if obj := f.Pkg.Info.ObjectOf(id); obj != nil {
		return obj
	}
	return nil
}

// functionBodies returns every function body in the file — declarations
// and function literals — each paired with the node that owns it. Nested
// literals appear as their own entry, so analyzers that reason per
// function (forklabel's duplicate detection, maporder's sorted-later
// exemption) scope their state to the innermost enclosing function.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// inspectShallow walks the statements of body without descending into
// nested function literals, which own their statements for per-function
// analyses.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}

// importNames returns every local name binding the given import path in
// the file (a path may be imported more than once under different names).
// Blank imports are excluded: they cannot draw.
func importNames(file *ast.File, path string) []string {
	var names []string
	for _, imp := range file.Imports {
		p := importPath(imp)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" {
				continue
			}
			names = append(names, imp.Name.Name)
			continue
		}
		// Default name: the last path element.
		base := p
		for i := len(p) - 1; i >= 0; i-- {
			if p[i] == '/' {
				base = p[i+1:]
				break
			}
		}
		names = append(names, base)
	}
	return names
}

// importName returns the first local name binding the import path, or "".
func importName(file *ast.File, path string) string {
	if names := importNames(file, path); len(names) > 0 {
		return names[0]
	}
	return ""
}

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 && p[0] == '"' {
		p = p[1 : len(p)-1]
	}
	return p
}

// isPkgSelector reports whether sel is a selection name on the package
// bound to local name pkgName (e.g. rand.Intn with pkgName "rand"). A
// shadowing local identifier named pkgName disables the match when type
// information can prove the identifier is not a package.
func (f *File) isPkgSelector(sel *ast.SelectorExpr, pkgName string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return false
	}
	if obj := f.objectOf(id); obj != nil {
		_, isPkg := obj.(*types.PkgName)
		return isPkg
	}
	// Unresolved (stub importer): trust the name match.
	return true
}
