package lint

import (
	"fmt"
	"strings"
)

// Severity classifies a rule's findings for exit-code policy: error
// findings gate (non-zero exit), warning findings inform.
type Severity string

const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// DefaultSeverities returns the suite's default per-rule severity map:
// every determinism/concurrency rule is an error; suppressaudit defaults
// to a warning, because a stale allow is hygiene debt rather than an
// active reproducibility hazard.
func DefaultSeverities() map[string]Severity {
	sev := make(map[string]Severity)
	for _, a := range Analyzers() {
		sev[a.Name()] = SeverityError
	}
	sev[RuleSuppressAudit] = SeverityWarning
	return sev
}

// ParseSeverityOverrides parses a "rule=error,rule=warn" flag value into
// the severity map, validating rule names against the full suite.
func ParseSeverityOverrides(spec string, sev map[string]Severity) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, level, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("severity %q: want rule=error or rule=warn", part)
		}
		rule = strings.TrimSpace(rule)
		if _, known := sev[rule]; !known {
			return fmt.Errorf("severity: unknown rule %q", rule)
		}
		switch strings.TrimSpace(level) {
		case "error":
			sev[rule] = SeverityError
		case "warn", "warning":
			sev[rule] = SeverityWarning
		default:
			return fmt.Errorf("severity %q: level must be error or warn", part)
		}
	}
	return nil
}
