package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Output formats for the findings pipeline. All three render the same
// diagnostic list in the same order; paths are whatever the caller put in
// Diagnostic.Pos.Filename (cmd/roadlint normalizes them to repo-relative
// form first, so artifacts are machine-readable and host-independent).

// WriteText renders findings in the classic file:line:col: rule: message
// form, one per line.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable machine-readable finding schema.
type jsonFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Version  int           `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

// WriteJSON renders findings as one indented JSON document.
func WriteJSON(w io.Writer, diags []Diagnostic, sev map[string]Severity) error {
	report := jsonReport{Version: 1, Findings: make([]jsonFinding, 0, len(diags))}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			Rule:     d.Rule,
			Severity: string(severityOf(sev, d.Rule)),
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// SARIF 2.1.0 subset: one run, one driver, rule metadata from the
// analyzer docs, one result per finding. Enough for code-scanning upload
// and artifact archiving without pulling in a SARIF dependency.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifText         `json:"shortDescription"`
	DefaultLevel     map[string]string `json:"defaultConfiguration"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps a Severity to the SARIF result level vocabulary.
func sarifLevel(s Severity) string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with rule metadata for
// every analyzer in the suite (found or not, so rule docs travel with the
// artifact).
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []Analyzer, sev map[string]Severity) error {
	driver := sarifDriver{Name: "roadlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifText{Text: a.Doc()},
			DefaultLevel:     map[string]string{"level": sarifLevel(severityOf(sev, a.Name()))},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: make([]sarifResult, 0, len(diags))}
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Rule,
			Level:   sarifLevel(severityOf(sev, d.Rule)),
			Message: sarifText{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// severityOf resolves a rule's severity, defaulting to error for rules the
// map does not know.
func severityOf(sev map[string]Severity, rule string) Severity {
	if s, ok := sev[rule]; ok {
		return s
	}
	return SeverityError
}
