package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the dataflow vocabulary shared by the whole-program
// analyzers (forkflow, goroutinejoin, floatorder): deciding whether a type
// is the simulator's RNG, walking assignment targets to their base
// identifier, and reasoning about what a function literal captures from
// its environment. All of it leans on the module-graph loader: with
// cross-package types resolved, "is this expression a *sim.RNG" is a type
// question, not a name heuristic.

// isRNGType reports whether t is the simulator RNG stream type (sim.RNG or
// *sim.RNG), identified by its defining package path suffix so the check
// holds for any module path the repository is vendored under.
func isRNGType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "RNG" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")
}

// isRNGExpr reports whether e's resolved type is the simulator RNG.
func (f *File) isRNGExpr(e ast.Expr) bool {
	return isRNGType(f.typeOf(e))
}

// isFloat reports whether e has a float32/float64 (or derived) type.
func (f *File) isFloat(e ast.Expr) bool {
	t := f.typeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// baseIdent walks a selector/index/deref/paren chain to its base
// identifier: s.stats.Active -> s, results[idx] -> results. Returns nil
// when the chain bottoms out in something else (a call result, a
// composite literal).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether id's declaration lies inside node n's
// source span. Unresolved identifiers count as outside.
func (f *File) declaredWithin(id *ast.Ident, n ast.Node) bool {
	obj := f.objectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// capturedBase resolves the assignment target lhs to its base identifier
// and reports whether that base is captured from outside the function
// literal lit (including package-level state). A nil base counts as
// captured: the write escapes through a chain the analysis cannot root.
func (f *File) capturedBase(lhs ast.Expr, lit *ast.FuncLit) (*ast.Ident, bool) {
	id := baseIdent(lhs)
	if id == nil {
		return nil, true
	}
	if id.Name == "_" {
		return id, false
	}
	return id, !f.declaredWithin(id, lit)
}

// indexLocalTo reports whether lhs is an index expression a[i] whose index
// chain is rooted in a variable declared inside n — the per-shard /
// per-slot write pattern where concurrent workers own disjoint elements.
func (f *File) indexLocalTo(lhs ast.Expr, n ast.Node) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id := baseIdent(idx.Index)
	return id != nil && f.declaredWithin(id, n)
}

// callsSelector reports whether the subtree rooted at n contains a method
// call named one of names (e.g. Lock/RLock to approximate mutex-guarded
// sections, Done for WaitGroup completion). It returns the receiver
// expression strings of every match, for cross-referencing against the
// enclosing scope.
func callsSelector(n ast.Node, names ...string) []string {
	want := make(map[string]bool, len(names))
	for _, name := range names {
		want[name] = true
	}
	var recvs []string
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && want[sel.Sel.Name] {
			recvs = append(recvs, types.ExprString(sel.X))
		}
		return true
	})
	return recvs
}

// goroutineLit returns the function literal a go statement runs, if the
// statement spawns one directly (go func(){...}() or go (func(){...})()).
func goroutineLit(g *ast.GoStmt) *ast.FuncLit {
	lit, _ := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	return lit
}

// rangeOverMap reports whether rs iterates a map, and rangeOverChan
// whether it drains a channel, using resolved types with a syntactic
// fallback for the map case.
func (f *File) rangeOverMap(rs *ast.RangeStmt) bool { return f.isMapRange(rs) }

func (f *File) rangeOverChan(rs *ast.RangeStmt) bool {
	t := f.typeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// loopVarObjs collects the iteration-variable objects of a for or range
// statement: range key/value idents, and variables declared by a classic
// for statement's init clause.
func (f *File) loopVarObjs(loop ast.Stmt) []types.Object {
	var objs []types.Object
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := f.objectOf(id); obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	switch s := loop.(type) {
	case *ast.RangeStmt:
		if s.Key != nil {
			add(s.Key)
		}
		if s.Value != nil {
			add(s.Value)
		}
	case *ast.ForStmt:
		if init, ok := s.Init.(*ast.AssignStmt); ok {
			for _, lhs := range init.Lhs {
				add(lhs)
			}
		}
	}
	return objs
}

// usesObject reports whether the subtree rooted at n references obj.
func (f *File) usesObject(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && f.objectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// enclosingLoops returns the for/range statements of body that contain
// pos, outermost first. The walk does not descend into nested function
// literals: their loops belong to a different frame.
func enclosingLoops(body *ast.BlockStmt, n ast.Node) []ast.Stmt {
	var loops []ast.Stmt
	pos := n.Pos()
	inspectShallow(body, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if c.Pos() <= pos && pos <= c.End() {
				loops = append(loops, c.(ast.Stmt))
			}
		}
		return true
	})
	return loops
}
