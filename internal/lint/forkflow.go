package lint

import (
	"go/ast"
	"go/types"
)

// ForkFlow tracks sim.RNG values through the program and flags the flows
// that break the fork-tree discipline even when every individual Fork call
// looks fine (forklabel's territory). The determinism contract is that the
// root RNG and its forks form a tree rooted at the experiment seed, with a
// fixed consumption order; the dataflow properties below are the ways that
// tree silently degenerates at scale:
//
//   - a Fork inside a range-over-map derives child streams in randomized
//     map order, so the same (config, seed) yields different stream
//     assignments per run;
//   - an RNG captured by a goroutine closure is shared mutable state (RNG
//     is documented not concurrency-safe) and its draw interleaving
//     depends on the scheduler — fork per goroutine and pass the child as
//     an argument instead;
//   - an RNG stored in package-level state outlives the experiment that
//     seeded it and couples unrelated runs;
//   - a freshly forked RNG stored into a field from inside a loop pins a
//     per-iteration stream into state that survives tick boundaries, so
//     stream consumption starts depending on iteration history.
type ForkFlow struct{}

func (ForkFlow) Name() string { return "forkflow" }

func (ForkFlow) Doc() string {
	return "flag RNG flows that break the fork tree: forks in map ranges, RNGs captured by goroutines or stored in globals"
}

func (ForkFlow) Check(f *File) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, f.forkInMapRange()...)
	diags = append(diags, f.rngInGoroutine()...)
	diags = append(diags, f.rngInGlobal()...)
	diags = append(diags, f.forkStoredInLoop()...)
	return diags
}

// isForkCall reports whether call is RNG.Fork, by resolved receiver type
// when available and by the forklabel name heuristic when not.
func (f *File) isForkCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Fork" || len(call.Args) != 1 {
		return false
	}
	if t := f.typeOf(sel.X); t != nil {
		return isRNGType(t)
	}
	// Unresolved receiver: fall back to the named-type heuristic shared
	// with forklabel.
	name := f.namedReceiver(sel.X)
	return name == "" || name == "RNG"
}

// forkInMapRange flags Fork calls whose execution order follows a map's
// randomized iteration order.
func (f *File) forkInMapRange() []Diagnostic {
	var diags []Diagnostic
	for _, body := range functionBodies(f.AST) {
		inspectShallow(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !f.rangeOverMap(rs) {
				return true
			}
			ast.Inspect(rs.Body, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok && f.isForkCall(call) {
					diags = append(diags, f.diag(call, "forkflow",
						"RNG.Fork inside range over a map: child streams are derived in randomized iteration order; iterate sorted keys so the fork sequence is append-only"))
				}
				return true
			})
			return true
		})
	}
	return diags
}

// rngInGoroutine flags RNG values captured by goroutine closures.
func (f *File) rngInGoroutine() []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(f.AST, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit := goroutineLit(g)
		if lit == nil {
			return true
		}
		reported := make(map[string]bool)
		ast.Inspect(lit, func(c ast.Node) bool {
			e, ok := c.(ast.Expr)
			if !ok || !f.isRNGExpr(e) {
				return true
			}
			// Only variables (locals, params, fields) can be captured; a
			// *sim.RNG parameter type in the closure's signature mentions
			// RNG without capturing one, so TypeNames and PkgNames are out.
			var obj types.Object
			switch x := e.(type) {
			case *ast.Ident:
				obj = f.objectOf(x)
			case *ast.SelectorExpr:
				obj = f.objectOf(x.Sel)
			default:
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			id := baseIdent(e)
			if id == nil || f.declaredWithin(id, lit) {
				return true
			}
			name := types.ExprString(e)
			if !reported[name] {
				reported[name] = true
				diags = append(diags, f.diag(e, "forkflow",
					"RNG %s captured by goroutine closure: RNG is not safe for concurrent use and draw interleaving follows the scheduler; fork per goroutine and pass the child as an argument", name))
			}
			// Do not descend further: the selector's base would report again.
			return false
		})
		return true
	})
	return diags
}

// rngInGlobal flags RNGs stored in package-level state: declarations of
// package-level RNG variables, and assignments whose target resolves to a
// package-level object.
func (f *File) rngInGlobal() []Diagnostic {
	var diags []Diagnostic
	for _, decl := range f.AST.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := f.objectOf(name)
				if _, isVar := obj.(*types.Var); obj == nil || !isVar {
					continue
				}
				if isRNGType(obj.Type()) {
					diags = append(diags, f.diag(name, "forkflow",
						"package-level RNG %s outlives any single (config, seed) run and couples unrelated experiments; thread the RNG through the experiment instead", name.Name))
				}
			}
		}
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if !f.isRNGExpr(as.Rhs[i]) {
				continue
			}
			id := baseIdent(lhs)
			if id == nil || id.Name == "_" {
				continue
			}
			if obj := f.objectOf(id); obj != nil && isPackageLevel(obj) {
				diags = append(diags, f.diag(lhs, "forkflow",
					"RNG assigned to package-level %s: the stream escapes the (config, seed) fork tree; thread it through the experiment instead", id.Name))
			}
		}
		return true
	})
	return diags
}

// forkStoredInLoop flags freshly forked RNGs stored into fields of state
// declared outside the enclosing loop.
func (f *File) forkStoredInLoop() []Diagnostic {
	var diags []Diagnostic
	for _, body := range functionBodies(f.AST) {
		inspectShallow(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			loops := enclosingLoops(body, as)
			if len(loops) == 0 {
				return true
			}
			outer := loops[0]
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
				if !ok || !f.isForkCall(call) {
					continue
				}
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				id := baseIdent(sel)
				if id == nil {
					continue
				}
				if obj := f.objectOf(id); obj != nil && (obj.Pos() < outer.Pos() || obj.Pos() > outer.End()) {
					diags = append(diags, f.diag(lhs, "forkflow",
						"forked RNG stored into %s inside a loop: the per-iteration stream persists across tick boundaries, so consumption depends on iteration history; fork at a stable point and pass the stream down", types.ExprString(lhs)))
				}
			}
			return true
		})
	}
	return diags
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	scope := obj.Parent()
	return scope != nil && scope.Parent() == types.Universe
}
