package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatOrderInScope bounds FloatOrder to the simulation packages:
// everything under internal/ except the analyzer itself. These are the
// packages whose floats end up in canonical result bytes, where a
// reassociated sum is a determinism bug, not a rounding footnote.
// Testdata fixtures and module-less scratch packages are always in scope,
// mirroring inScope.
func floatOrderInScope(pkg *Package) bool {
	if !pkg.InModule || strings.Contains(pkg.Rel, "testdata") {
		return true
	}
	if pkg.Rel == "internal/lint" || strings.HasPrefix(pkg.Rel, "internal/lint/") {
		return false
	}
	return strings.HasPrefix(pkg.Rel, "internal/")
}

// FloatOrder flags floating-point accumulation whose grouping depends on a
// nondeterministic iteration order. Float addition is not associative:
// summing the same values in a different order perturbs the last bits, and
// the framework's byte-identical canonical results turn that perturbation
// into a reproducibility failure. Two orders are nondeterministic by
// construction:
//
//   - range over a map: Go randomizes iteration order per run, so
//     total += v inside the loop sums in a different order every time;
//   - range over a channel: values arrive in worker completion order, so
//     merging per-worker float partials as they arrive groups the sum by
//     scheduler timing. Collect partials into an indexed slice and fold in
//     ascending index order instead (the EvaluateParallel pattern).
//
// Integer accumulation is exempt everywhere: it is associative and
// commutative, which is exactly why maporder sanctions it too.
type FloatOrder struct{}

func (FloatOrder) Name() string { return "floatorder" }

func (FloatOrder) Doc() string {
	return "forbid float accumulation in map/channel iteration order; fold per-worker partials in index order"
}

func (FloatOrder) Check(f *File) []Diagnostic {
	if !floatOrderInScope(f.Pkg) {
		return nil
	}
	var diags []Diagnostic
	for _, body := range functionBodies(f.AST) {
		inspectShallow(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			var source string
			switch {
			case f.rangeOverMap(rs):
				source = "map iteration order is randomized per run"
			case f.rangeOverChan(rs):
				source = "channel receive order follows worker completion"
			default:
				return true
			}
			diags = append(diags, f.checkFloatAccum(rs, source)...)
			return true
		})
	}
	return diags
}

// accumOps are the compound assignment operators that fold the LHS into
// itself, making iteration order part of the result.
var accumOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

// checkFloatAccum reports float accumulations inside rs's body targeting
// state declared outside the loop.
func (f *File) checkFloatAccum(rs *ast.RangeStmt, source string) []Diagnostic {
	var diags []Diagnostic
	inspectShallow(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch {
		case accumOps[as.Tok]:
			for _, lhs := range as.Lhs {
				if f.floatAccumTarget(rs, lhs) {
					diags = append(diags, f.diag(as, "floatorder",
						"float accumulation into %s inside this range: %s, and float addition is not associative — collect into an indexed slice and fold in ascending order", types.ExprString(lhs), source))
				}
			}
		case as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs):
			for i, lhs := range as.Lhs {
				if f.floatAccumTarget(rs, lhs) && selfReferencing(lhs, as.Rhs[i]) {
					diags = append(diags, f.diag(as, "floatorder",
						"float accumulation into %s inside this range: %s, and float addition is not associative — collect into an indexed slice and fold in ascending order", types.ExprString(lhs), source))
				}
			}
		}
		return true
	})
	return diags
}

// floatAccumTarget reports whether lhs is a float-typed target declared
// outside the range statement.
func (f *File) floatAccumTarget(rs *ast.RangeStmt, lhs ast.Expr) bool {
	if !f.isFloat(lhs) {
		return false
	}
	id := baseIdent(lhs)
	if id == nil {
		return true // write escapes through an unrootable chain
	}
	return f.declaredOutside(id, rs)
}

// selfReferencing reports whether rhs is an arithmetic expression with lhs
// as an operand — the x = x + v spelling of accumulation.
func selfReferencing(lhs, rhs ast.Expr) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	target := types.ExprString(lhs)
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == target {
			found = true
			return false
		}
		return !found
	})
	return found
}
