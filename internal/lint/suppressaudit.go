package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// RuleSuppressAudit is the rule name of the SuppressAudit analyzer. Run
// special-cases it, so the name is shared as a constant.
const RuleSuppressAudit = "suppressaudit"

// SuppressAudit flags //roadlint:allow directives that have stopped doing
// anything: the allowed rule produced no finding on the directive's line
// (or the line below), or the directive names a rule the suite does not
// have. Stale suppressions are dangerous in the opposite direction from
// ordinary findings — they pre-forgive a violation that is not there yet,
// so the next person to introduce one lands it silently. Auditing them
// keeps the allow inventory exactly as large as the set of justified
// exceptions.
//
// The audit is driven by Run after every other analyzer has claimed its
// suppressions; Check itself reports nothing. Directives for rules outside
// the active set are skipped — a subset run (-rules detrand) cannot know
// whether a wallclock allow is stale — and directives allowing
// suppressaudit itself are exempt, ending the regress.
type SuppressAudit struct{}

func (SuppressAudit) Name() string { return RuleSuppressAudit }

func (SuppressAudit) Doc() string {
	return "flag //roadlint:allow directives that no longer suppress any finding"
}

// Check reports nothing: the audit needs the whole run's suppression usage
// and is performed by Run once every analyzer has finished.
func (SuppressAudit) Check(f *File) []Diagnostic { return nil }

// auditAllows reports the stale and unknown-rule allow directives of one
// file. active is the set of rule names this run executed.
func auditAllows(f *File, active map[string]bool) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name()] = true
	}
	lines := make([]int, 0, len(f.allow))
	for line := range f.allow {
		lines = append(lines, line)
	}
	sort.Ints(lines)
	var diags []Diagnostic
	for _, line := range lines {
		for _, e := range f.allow[line] {
			if e.rule == RuleSuppressAudit {
				continue
			}
			switch {
			case !known[e.rule]:
				diags = append(diags, f.diagAt(e.pos, RuleSuppressAudit,
					"//roadlint:allow names unknown rule %q (run roadlint -list for the rule set)", e.rule))
			case active[e.rule] && !e.used:
				diags = append(diags, f.diagAt(e.pos, RuleSuppressAudit,
					"stale //roadlint:allow %s: the directive suppresses no finding and pre-forgives future ones; delete it", e.rule))
			}
		}
	}
	return diags
}

// diagAt builds a Diagnostic at an explicit token position.
func (f *File) diagAt(pos token.Pos, rule, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:  f.Fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	}
}
