package lint

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment. The full syntax is
//
//	//roadlint:allow <rule>[,<rule>...] [justification]
//
// placed either on the diagnostic's line or on the line directly above it.
// The justification is free text and optional for the engine, but the
// project convention is one line explaining why the rule does not apply.
const allowPrefix = "roadlint:allow"

// allowEntry is one rule suppressed by one //roadlint:allow comment.
// Entries record whether they matched a finding so the suppressaudit rule
// can flag directives that no longer suppress anything.
type allowEntry struct {
	rule string
	pos  token.Pos // position of the carrying comment
	used bool      // set when the entry suppresses a finding
}

// parseAllow parses the text of one comment (including the leading "//")
// and returns the rules it suppresses. ok is false when the comment is not
// an allow directive at all; a well-formed directive with no rule names
// returns ok with an empty rule list (the directive is inert).
func parseAllow(comment string) (rules []string, ok bool) {
	if !strings.HasPrefix(comment, "//") {
		return nil, false // block comments do not carry directives
	}
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, true
	}
	for _, rule := range strings.Split(fields[0], ",") {
		rule = strings.TrimSpace(rule)
		if rule != "" {
			rules = append(rules, rule)
		}
	}
	return rules, true
}

// buildAllowIndex scans the file's comments for suppression directives and
// records which rules are allowed on which lines.
func (f *File) buildAllowIndex() {
	f.allow = make(map[int][]*allowEntry)
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			rules, ok := parseAllow(c.Text)
			if !ok {
				continue
			}
			line := f.Fset.Position(c.Pos()).Line
			for _, rule := range rules {
				f.allow[line] = append(f.allow[line], &allowEntry{rule: rule, pos: c.Pos()})
			}
		}
	}
}

// suppressed reports whether rule is allowed on line, either by a
// same-line comment or by one on the line directly above, and marks the
// matching directive as used for the suppressaudit rule.
func (f *File) suppressed(rule string, line int) bool {
	hit := false
	for _, l := range []int{line, line - 1} {
		for _, e := range f.allow[l] {
			if e.rule == rule {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}
