package lint

import (
	"strings"
)

// allowPrefix introduces a suppression comment. The full syntax is
//
//	//roadlint:allow <rule>[,<rule>...] [justification]
//
// placed either on the diagnostic's line or on the line directly above it.
// The justification is free text and optional for the engine, but the
// project convention is one line explaining why the rule does not apply.
const allowPrefix = "roadlint:allow"

// buildAllowIndex scans the file's comments for suppression directives and
// records which rules are allowed on which lines.
func (f *File) buildAllowIndex() {
	f.allow = make(map[int][]string)
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			text := c.Text
			if !strings.HasPrefix(text, "//") {
				continue // block comments do not carry directives
			}
			text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue // bare directive with no rule names: inert
			}
			line := f.Fset.Position(c.Pos()).Line
			for _, rule := range strings.Split(fields[0], ",") {
				rule = strings.TrimSpace(rule)
				if rule != "" {
					f.allow[line] = append(f.allow[line], rule)
				}
			}
		}
	}
}

// suppressed reports whether rule is allowed on line, either by a
// same-line comment or by one on the line directly above.
func (f *File) suppressed(rule string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, r := range f.allow[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}
