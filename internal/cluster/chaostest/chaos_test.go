package chaostest

import (
	"bytes"
	"fmt"
	"testing"

	"roadrunner/internal/campaign"
	"roadrunner/internal/cluster"
)

// chaosManifest is the tiny-scale workload all chaos scenarios run: two
// strategies crossed with the given seeds, 2 rounds each.
func chaosManifest(seeds ...uint64) campaign.Manifest {
	return campaign.Manifest{
		Name:   "chaos",
		Env:    campaign.EnvTiny,
		Rounds: 2,
		Strategies: []campaign.StrategySpec{
			{Kind: "fedavg"},
			{Kind: "opp"},
		},
		Seeds: seeds,
	}
}

// singleNodeReference computes the merged canonical artifact of a
// manifest on a plain single-node scheduler — the byte-level ground
// truth every cluster execution must reproduce.
func singleNodeReference(t *testing.T, m campaign.Manifest) []byte {
	t.Helper()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := campaign.NewScheduler(campaign.Options{Workers: 1, Store: store, Backoff: func(int) {}})
	c, err := campaign.NewCampaign("ref", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.RunCampaign(c); err != nil {
		t.Fatal(err)
	}
	data, err := campaign.MergedCanonicalBytes(c.Specs(), store)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runCluster assembles a 3-node harness over a fresh shared store,
// submits the manifest, runs the script to completion, and returns the
// harness plus campaign ID.
func runCluster(t *testing.T, m campaign.Manifest, cfg Config) (*Harness, string) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []NodeConfig{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}}
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	id, err := h.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(); err != nil {
		t.Fatalf("cluster run failed: %v\nlog:\n%s", err, logText(h))
	}
	return h, id
}

func logText(h *Harness) string {
	var buf bytes.Buffer
	for _, line := range h.Log() {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	return buf.String()
}

// assertHealthyFinish checks the campaign finished with zero failures
// and its merged artifact is byte-identical to the single-node
// reference.
func assertHealthyFinish(t *testing.T, h *Harness, id string, want []byte) {
	t.Helper()
	c, err := h.Coordinator().Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if !st.Done || st.Failed != 0 {
		t.Fatalf("campaign not cleanly done: %+v\nlog:\n%s", st, logText(h))
	}
	got, err := h.MergedResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged artifact differs from single-node reference (%d vs %d bytes)\nlog:\n%s",
			len(got), len(want), logText(h))
	}
}

// TestClusterKillWorkerMatchesSingleNode is the headline chaos scenario:
// a 3-node campaign loses one worker after its first completion, the
// survivors absorb the re-queued work, and the merged canonical result
// is byte-identical to a single-node run of the same manifest.
func TestClusterKillWorkerMatchesSingleNode(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1, Node: "w2"}, Do: Kill{Node: "w2"}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times", key, n)
		}
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterMidRunCrashRecovers kills a worker between the Start gate
// and its completion report — the crash-mid-run case. The orphaned
// started lease must expire, the run re-queues, a survivor executes it,
// and the run key still executes at most once (the victim never ran it).
func TestClusterMidRunCrashRecovers(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1, Node: "w3"}, Do: Kill{Node: "w3", MidRun: true}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times after mid-run crash", key, n)
		}
	}
	sawExpiry := false
	for _, line := range h.Log() {
		if bytes.Contains([]byte(line), []byte("lease-expired w3")) {
			sawExpiry = true
		}
	}
	if !sawExpiry {
		t.Fatalf("mid-run crash never expired the orphaned lease\nlog:\n%s", logText(h))
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterStealFromStalledNode stalls a node sitting on an unstarted
// backlog claim; an idle survivor must steal it instead of waiting for
// lease expiry. ConfigAffinity grants up to capacity per round, which is
// what builds the stealable backlog.
func TestClusterStealFromStalledNode(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Policy: cluster.ConfigAffinity{},
		Script: Script{
			{On: Trigger{Event: "claim", N: 1, Node: "w2"}, Do: Stall{Node: "w2", Rounds: 8}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	sawSteal := false
	for _, line := range h.Log() {
		if bytes.Contains([]byte(line), []byte(" steal ")) {
			sawSteal = true
		}
	}
	if !sawSteal {
		t.Fatalf("stalled backlog was never stolen\nlog:\n%s", logText(h))
	}
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times after steal", key, n)
		}
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterDuplicateCompleteIsIdempotent replays a completion report —
// the retried-RPC case. The coordinator must reject the duplicate as a
// stale lease and the campaign must finish byte-identical anyway.
func TestClusterDuplicateCompleteIsIdempotent(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1}, Do: DuplicateComplete{}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	if h.StaleCompletes() == 0 {
		t.Fatalf("duplicated completion was not rejected\nlog:\n%s", logText(h))
	}
}

// TestClusterCorruptEntrySelfHeals flips a byte inside a completed run's
// stored bytes; verify-on-read must evict the damaged entry and the
// merge must re-execute it, landing on the reference bytes regardless.
func TestClusterCorruptEntrySelfHeals(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1}, Do: CorruptEntry{}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	if n := h.Coordinator().Store().Corruptions(); n == 0 {
		t.Fatalf("corrupted entry was never detected\nlog:\n%s", logText(h))
	}
}

// TestClusterChaosScriptReproducible runs the identical script twice on
// fresh stores: the harness must take the identical assertion path —
// event-for-event identical logs — which is what "deterministic chaos
// harness" means. No wall-clock sleeps exist to perturb it.
func TestClusterChaosScriptReproducible(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	script := Script{
		{On: Trigger{Event: "complete", N: 2}, Do: Kill{Node: "w1"}},
		{On: Trigger{Event: "complete", N: 3}, Do: DuplicateComplete{}},
	}
	var logs [][]string
	for i := 0; i < 2; i++ {
		h, _ := runCluster(t, m, Config{Script: append(Script(nil), script...)})
		logs = append(logs, h.Log())
	}
	if len(logs[0]) != len(logs[1]) {
		t.Fatalf("log lengths differ across identical runs: %d vs %d", len(logs[0]), len(logs[1]))
	}
	for i := range logs[0] {
		if logs[0][i] != logs[1][i] {
			t.Fatalf("assertion path diverged at line %d: %q vs %q", i, logs[0][i], logs[1][i])
		}
	}
}

// TestClusterPolicySweep runs the same fault-free campaign under every
// routing policy: routing changes who executes what, never the merged
// bytes.
func TestClusterPolicySweep(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	for _, pol := range []cluster.Policy{cluster.RoundRobin{}, cluster.LeastLoaded{}, cluster.ConfigAffinity{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			h, id := runCluster(t, m, Config{Policy: pol})
			assertHealthyFinish(t, h, id, want)
		})
	}
}

// TestClusterKillInterleavingsNeverDoubleExecute enumerates the fault
// space deterministically: kill each node after each of the first three
// completions. In every interleaving the campaign completes with the
// reference bytes and no run key executes more than once — the property
// the steal-only-unstarted and start-gate rules exist to uphold.
func TestClusterKillInterleavingsNeverDoubleExecute(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	for _, node := range []string{"w1", "w2", "w3"} {
		for j := 1; j <= 3; j++ {
			for _, midRun := range []bool{false, true} {
				name := fmt.Sprintf("kill-%s-after-%d-midrun-%v", node, j, midRun)
				t.Run(name, func(t *testing.T) {
					h, id := runCluster(t, m, Config{
						Script: Script{
							{On: Trigger{Event: "complete", N: j}, Do: Kill{Node: node, MidRun: midRun}},
						},
					})
					assertHealthyFinish(t, h, id, want)
					for key, n := range h.ExecCounts() {
						if n > 1 {
							t.Fatalf("run %.8s executed %d times", key, n)
						}
					}
					checkQueueLogInvariants(t, h)
				})
			}
		}
	}
}

// checkQueueLogInvariants replays the durable queue log — the protocol's
// evidence trail — and asserts the lease rules held at every step: one
// enqueue per ref, at most one live lease per ref, claims only from
// pending, steals/expiries only against a live lease, starts and
// completes only from the live lease, and completion exactly once.
func checkQueueLogInvariants(t *testing.T, h *Harness) {
	t.Helper()
	recs, err := campaign.ReadQueueLog(h.Coordinator().Store().QueueLogPath())
	if err != nil {
		t.Fatal(err)
	}
	type refState struct {
		enqueued bool
		lease    campaign.LeaseID
		live     bool
		done     bool
	}
	refs := make(map[string]*refState)
	get := func(ref string) *refState {
		if refs[ref] == nil {
			refs[ref] = &refState{}
		}
		return refs[ref]
	}
	for i, r := range recs {
		st := get(r.Ref)
		switch r.Op {
		case "enqueue":
			if st.enqueued {
				t.Fatalf("record %d: ref %.12s enqueued twice", i, r.Ref)
			}
			st.enqueued = true
		case "claim":
			if !st.enqueued || st.live || st.done {
				t.Fatalf("record %d: claim of non-pending ref %.12s", i, r.Ref)
			}
			st.lease, st.live = r.Lease, true
		case "steal":
			if !st.live {
				t.Fatalf("record %d: steal without a live lease on %.12s", i, r.Ref)
			}
			st.lease = r.Lease
		case "expire":
			if !st.live || r.Lease != st.lease {
				t.Fatalf("record %d: expire of non-live lease %d on %.12s", i, r.Lease, r.Ref)
			}
			st.live = false
		case "start":
			if !st.live || r.Lease != st.lease {
				t.Fatalf("record %d: start from stale lease %d on %.12s", i, r.Lease, r.Ref)
			}
		case "complete":
			if !st.live || r.Lease != st.lease || st.done {
				t.Fatalf("record %d: invalid complete (lease %d) on %.12s", i, r.Lease, r.Ref)
			}
			st.live, st.done = false, true
		case "retry":
			if !st.enqueued || !st.done || st.live {
				t.Fatalf("record %d: retry of non-terminal ref %.12s", i, r.Ref)
			}
			st.done = false
		}
	}
	for ref, st := range refs {
		if !st.done {
			t.Fatalf("ref %.12s never completed in queue log", ref)
		}
	}
}
