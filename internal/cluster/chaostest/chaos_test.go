package chaostest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"roadrunner/internal/campaign"
	"roadrunner/internal/cluster"
)

// chaosManifest is the tiny-scale workload all chaos scenarios run: two
// strategies crossed with the given seeds, 2 rounds each.
func chaosManifest(seeds ...uint64) campaign.Manifest {
	return campaign.Manifest{
		Name:   "chaos",
		Env:    campaign.EnvTiny,
		Rounds: 2,
		Strategies: []campaign.StrategySpec{
			{Kind: "fedavg"},
			{Kind: "opp"},
		},
		Seeds: seeds,
	}
}

// singleNodeReference computes the merged canonical artifact of a
// manifest on a plain single-node scheduler — the byte-level ground
// truth every cluster execution must reproduce.
func singleNodeReference(t *testing.T, m campaign.Manifest) []byte {
	t.Helper()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := campaign.NewScheduler(campaign.Options{Workers: 1, Store: store, Backoff: func(int) {}})
	c, err := campaign.NewCampaign("ref", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.RunCampaign(c); err != nil {
		t.Fatal(err)
	}
	data, err := campaign.MergedCanonicalBytes(c.Specs(), store)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runCluster assembles a 3-node harness over a fresh shared store,
// submits the manifest, runs the script to completion, and returns the
// harness plus campaign ID.
func runCluster(t *testing.T, m campaign.Manifest, cfg Config) (*Harness, string) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []NodeConfig{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}}
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	id, err := h.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(); err != nil {
		t.Fatalf("cluster run failed: %v\nlog:\n%s", err, logText(h))
	}
	return h, id
}

func logText(h *Harness) string {
	var buf bytes.Buffer
	for _, line := range h.Log() {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	return buf.String()
}

// assertHealthyFinish checks the campaign finished with zero failures
// and its merged artifact is byte-identical to the single-node
// reference.
func assertHealthyFinish(t *testing.T, h *Harness, id string, want []byte) {
	t.Helper()
	c, err := h.Coordinator().Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if !st.Done || st.Failed != 0 {
		t.Fatalf("campaign not cleanly done: %+v\nlog:\n%s", st, logText(h))
	}
	got, err := h.MergedResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged artifact differs from single-node reference (%d vs %d bytes)\nlog:\n%s",
			len(got), len(want), logText(h))
	}
}

// TestClusterKillWorkerMatchesSingleNode is the headline chaos scenario:
// a 3-node campaign loses one worker after its first completion, the
// survivors absorb the re-queued work, and the merged canonical result
// is byte-identical to a single-node run of the same manifest.
func TestClusterKillWorkerMatchesSingleNode(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1, Node: "w2"}, Do: Kill{Node: "w2"}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times", key, n)
		}
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterMidRunCrashRecovers kills a worker between the Start gate
// and its completion report — the crash-mid-run case. The orphaned
// started lease must expire, the run re-queues, a survivor executes it,
// and the run key still executes at most once (the victim never ran it).
func TestClusterMidRunCrashRecovers(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1, Node: "w3"}, Do: Kill{Node: "w3", MidRun: true}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times after mid-run crash", key, n)
		}
	}
	sawExpiry := false
	for _, line := range h.Log() {
		if bytes.Contains([]byte(line), []byte("lease-expired w3")) {
			sawExpiry = true
		}
	}
	if !sawExpiry {
		t.Fatalf("mid-run crash never expired the orphaned lease\nlog:\n%s", logText(h))
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterStealFromStalledNode stalls a node sitting on an unstarted
// backlog claim; an idle survivor must steal it instead of waiting for
// lease expiry. ConfigAffinity grants up to capacity per round, which is
// what builds the stealable backlog.
func TestClusterStealFromStalledNode(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Policy: cluster.ConfigAffinity{},
		Script: Script{
			{On: Trigger{Event: "claim", N: 1, Node: "w2"}, Do: Stall{Node: "w2", Rounds: 8}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	sawSteal := false
	for _, line := range h.Log() {
		if bytes.Contains([]byte(line), []byte(" steal ")) {
			sawSteal = true
		}
	}
	if !sawSteal {
		t.Fatalf("stalled backlog was never stolen\nlog:\n%s", logText(h))
	}
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times after steal", key, n)
		}
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterDuplicateCompleteIsIdempotent replays a completion report —
// the retried-RPC case. The coordinator must reject the duplicate as a
// stale lease and the campaign must finish byte-identical anyway.
func TestClusterDuplicateCompleteIsIdempotent(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1}, Do: DuplicateComplete{}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	if h.StaleCompletes() == 0 {
		t.Fatalf("duplicated completion was not rejected\nlog:\n%s", logText(h))
	}
}

// TestClusterCorruptEntrySelfHeals flips a byte inside a completed run's
// stored bytes; verify-on-read must evict the damaged entry and the
// merge must re-execute it, landing on the reference bytes regardless.
func TestClusterCorruptEntrySelfHeals(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		Script: Script{
			{On: Trigger{Event: "complete", N: 1}, Do: CorruptEntry{}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	if n := h.Coordinator().Store().Corruptions(); n == 0 {
		t.Fatalf("corrupted entry was never detected\nlog:\n%s", logText(h))
	}
}

// TestClusterChaosScriptReproducible runs the identical script twice on
// fresh stores: the harness must take the identical assertion path —
// event-for-event identical logs — which is what "deterministic chaos
// harness" means. No wall-clock sleeps exist to perturb it.
func TestClusterChaosScriptReproducible(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	script := Script{
		{On: Trigger{Event: "complete", N: 2}, Do: Kill{Node: "w1"}},
		{On: Trigger{Event: "complete", N: 3}, Do: DuplicateComplete{}},
	}
	var logs [][]string
	for i := 0; i < 2; i++ {
		h, _ := runCluster(t, m, Config{Script: append(Script(nil), script...)})
		logs = append(logs, h.Log())
	}
	if len(logs[0]) != len(logs[1]) {
		t.Fatalf("log lengths differ across identical runs: %d vs %d", len(logs[0]), len(logs[1]))
	}
	for i := range logs[0] {
		if logs[0][i] != logs[1][i] {
			t.Fatalf("assertion path diverged at line %d: %q vs %q", i, logs[0][i], logs[1][i])
		}
	}
}

// TestClusterPolicySweep runs the same fault-free campaign under every
// routing policy: routing changes who executes what, never the merged
// bytes.
func TestClusterPolicySweep(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	for _, pol := range []cluster.Policy{cluster.RoundRobin{}, cluster.LeastLoaded{}, cluster.ConfigAffinity{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			h, id := runCluster(t, m, Config{Policy: pol})
			assertHealthyFinish(t, h, id, want)
		})
	}
}

// TestClusterKillInterleavingsNeverDoubleExecute enumerates the fault
// space deterministically: kill each node after each of the first three
// completions. In every interleaving the campaign completes with the
// reference bytes and no run key executes more than once — the property
// the steal-only-unstarted and start-gate rules exist to uphold.
func TestClusterKillInterleavingsNeverDoubleExecute(t *testing.T) {
	m := chaosManifest(1, 2)
	want := singleNodeReference(t, m)
	for _, node := range []string{"w1", "w2", "w3"} {
		for j := 1; j <= 3; j++ {
			for _, midRun := range []bool{false, true} {
				name := fmt.Sprintf("kill-%s-after-%d-midrun-%v", node, j, midRun)
				t.Run(name, func(t *testing.T) {
					h, id := runCluster(t, m, Config{
						Script: Script{
							{On: Trigger{Event: "complete", N: j}, Do: Kill{Node: node, MidRun: midRun}},
						},
					})
					assertHealthyFinish(t, h, id, want)
					for key, n := range h.ExecCounts() {
						if n > 1 {
							t.Fatalf("run %.8s executed %d times", key, n)
						}
					}
					checkQueueLogInvariants(t, h)
				})
			}
		}
	}
}

// queueLogOps collects the set of record ops in the durable queue log.
func queueLogOps(t *testing.T, h *Harness) map[string]int {
	t.Helper()
	recs, err := campaign.ReadQueueLog(h.Coordinator().Store().QueueLogPath())
	if err != nil {
		t.Fatal(err)
	}
	ops := make(map[string]int)
	for _, r := range recs {
		ops[r.Op]++
	}
	return ops
}

// TestClusterBatchedVerbsMatchSingleNode drives a fault-free campaign
// entirely through the batched protocol verbs: claims, starts, and
// completes each journal one multi-ref record per node round, and the
// merged artifact must still be byte-identical to the single-node
// reference.
func TestClusterBatchedVerbsMatchSingleNode(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{BatchVerbs: true})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times under batched verbs", key, n)
		}
	}
	checkQueueLogInvariants(t, h)
	ops := queueLogOps(t, h)
	for _, op := range []string{"enqueue-batch", "claim-batch", "start-batch", "complete-batch"} {
		if ops[op] == 0 {
			t.Fatalf("queue log never recorded %s; ops seen: %v", op, ops)
		}
	}
}

// TestClusterKillMidBatchRecovers kills a node right after it gates a
// whole batch of claims through StartRuns — every started lease in the
// batch is orphaned at once. Lease expiry must re-queue them all, the
// survivors absorb the work, and no run key executes twice.
func TestClusterKillMidBatchRecovers(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		BatchVerbs: true,
		Script: Script{
			{On: Trigger{Event: "complete", N: 1, Node: "w2"}, Do: Kill{Node: "w2", MidRun: true}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times after mid-batch kill", key, n)
		}
	}
	if !strings.Contains(logText(h), "died-mid-batch w2") {
		t.Fatalf("script never killed w2 mid-batch\nlog:\n%s", logText(h))
	}
	if !strings.Contains(logText(h), "lease-expired w2") {
		t.Fatalf("orphaned batch leases never expired\nlog:\n%s", logText(h))
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterCompactionAndRestartMidCampaign runs a batched campaign
// with an aggressive compaction threshold and restarts the coordinator
// mid-flight: the restarted queue must recover from snapshot + log tail
// (not a full-log replay), resume the campaign, and still merge to the
// single-node reference bytes.
func TestClusterCompactionAndRestartMidCampaign(t *testing.T) {
	m := chaosManifest(1, 2, 3, 4)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		BatchVerbs:   true,
		CompactEvery: 8,
		Script: Script{
			{On: Trigger{Event: "complete", N: 3}, Do: RestartCoordinator{}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times across restart", key, n)
		}
	}
	snap, err := campaign.ReadQueueSnapshot(h.Coordinator().Store().QueueSnapshotPath())
	if err != nil {
		t.Fatalf("compaction never published a snapshot: %v", err)
	}
	if snap.Gen == 0 {
		t.Fatalf("snapshot carries generation 0")
	}
	if !h.Coordinator().QueueReplayStats().UsedSnapshot {
		t.Fatalf("restarted coordinator ignored the snapshot and replayed the full log")
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterCrashDuringCompactionRecovers manufactures the crash window
// inside compaction — snapshot published, log rotation lost — and
// restarts the coordinator into it. Recovery must detect the snapshot
// generation ahead of the log, finish the rotation itself, and the
// campaign must complete byte-identical regardless.
func TestClusterCrashDuringCompactionRecovers(t *testing.T) {
	m := chaosManifest(1, 2, 3)
	want := singleNodeReference(t, m)
	h, id := runCluster(t, m, Config{
		BatchVerbs:   true,
		CompactEvery: -1, // the only snapshot is the crash-simulated one
		Script: Script{
			{On: Trigger{Event: "complete", N: 2}, Do: RestartCoordinator{CrashCompaction: true}},
		},
	})
	assertHealthyFinish(t, h, id, want)
	for key, n := range h.ExecCounts() {
		if n > 1 {
			t.Fatalf("run %.8s executed %d times across mid-compaction crash", key, n)
		}
	}
	if !h.Coordinator().QueueReplayStats().UsedSnapshot {
		t.Fatalf("recovery ignored the published snapshot")
	}
	if strings.Contains(logText(h), "restart-failed") {
		t.Fatalf("coordinator restart failed\nlog:\n%s", logText(h))
	}
	checkQueueLogInvariants(t, h)
}

// TestClusterBackpressureCapsAdmission exercises the admission cap: a
// manifest that would push outstanding work past MaxOutstanding is
// rejected whole with ErrBacklogFull (no partial enqueue, safe to
// resubmit verbatim), a fitting manifest is admitted, and completed work
// frees capacity for the previously rejected one.
func TestClusterBackpressureCapsAdmission(t *testing.T) {
	small := chaosManifest(1, 2)  // 4 runs
	big := chaosManifest(3, 4, 5) // 6 runs
	wantSmall := singleNodeReference(t, small)
	wantBig := singleNodeReference(t, big)
	h, err := New(Config{
		Dir:            t.TempDir(),
		Nodes:          []NodeConfig{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}},
		BatchVerbs:     true,
		MaxOutstanding: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	idSmall, err := h.Submit(small)
	if err != nil {
		t.Fatalf("fitting manifest rejected: %v", err)
	}
	if _, err := h.Submit(big); !errors.Is(err, cluster.ErrBacklogFull) {
		t.Fatalf("over-cap manifest: got %v, want ErrBacklogFull", err)
	}
	if err := h.Run(); err != nil {
		t.Fatalf("cluster run failed: %v\nlog:\n%s", err, logText(h))
	}
	assertHealthyFinish(t, h, idSmall, wantSmall)
	// The backlog drained; the previously rejected manifest now fits.
	idBig, err := h.Submit(big)
	if err != nil {
		t.Fatalf("resubmit after drain rejected: %v", err)
	}
	if err := h.Run(); err != nil {
		t.Fatalf("cluster run failed: %v\nlog:\n%s", err, logText(h))
	}
	assertHealthyFinish(t, h, idBig, wantBig)
	checkQueueLogInvariants(t, h)
}

// checkQueueLogInvariants replays the durable queue evidence trail —
// snapshot (if a compaction ran) plus log tail — and asserts the lease
// rules held at every step: one enqueue per ref, at most one live lease
// per ref, claims only from pending, steals/expiries only against a live
// lease, starts and completes only from the live lease, and completion
// exactly once. Batched records expand into the same per-ref transitions
// as their single-ref verbs; a lease replayed across a coordinator
// restart is invalidated exactly as recovery would invalidate it.
func checkQueueLogInvariants(t *testing.T, h *Harness) {
	t.Helper()
	store := h.Coordinator().Store()
	recs, err := campaign.ReadQueueLog(store.QueueLogPath())
	if err != nil {
		t.Fatal(err)
	}
	type refState struct {
		enqueued bool
		lease    campaign.LeaseID
		live     bool
		done     bool
	}
	refs := make(map[string]*refState)
	get := func(ref string) *refState {
		if refs[ref] == nil {
			refs[ref] = &refState{}
		}
		return refs[ref]
	}
	// A rotated log starts from its snapshot: seed per-ref state there —
	// done refs completed before the snapshot; everything else returns to
	// pending (live leases are never snapshotted).
	var haveSnap bool
	var snapGen uint64
	snap, err := campaign.ReadQueueSnapshot(store.QueueSnapshotPath())
	switch {
	case err == nil:
		haveSnap, snapGen = true, snap.Gen
		for _, it := range snap.Items {
			st := get(it.Ref)
			st.enqueued = true
			if _, done := snap.Done[it.Ref]; done {
				st.done = true
			}
		}
	case errors.Is(err, os.ErrNotExist):
	default:
		t.Fatal(err)
	}
	step := func(i int, op, ref string, lease campaign.LeaseID) {
		st := get(ref)
		switch op {
		case "enqueue":
			if st.enqueued {
				t.Fatalf("record %d: ref %.12s enqueued twice", i, ref)
			}
			st.enqueued = true
		case "claim":
			if !st.enqueued || st.live || st.done {
				t.Fatalf("record %d: claim of non-pending ref %.12s", i, ref)
			}
			st.lease, st.live = lease, true
		case "steal":
			if !st.live {
				t.Fatalf("record %d: steal without a live lease on %.12s", i, ref)
			}
			st.lease = lease
		case "expire":
			if !st.live || lease != st.lease {
				t.Fatalf("record %d: expire of non-live lease %d on %.12s", i, lease, ref)
			}
			st.live = false
		case "start":
			if !st.live || lease != st.lease {
				t.Fatalf("record %d: start from stale lease %d on %.12s", i, lease, ref)
			}
		case "complete":
			if !st.live || lease != st.lease || st.done {
				t.Fatalf("record %d: invalid complete (lease %d) on %.12s", i, lease, ref)
			}
			st.live, st.done = false, true
		case "retry":
			if !st.enqueued || !st.done || st.live {
				t.Fatalf("record %d: retry of non-terminal ref %.12s", i, ref)
			}
			st.done = false
		}
	}
	// invalidateLeases mirrors recovery: reopening the queue returns every
	// live lease's ref to pending, so post-restart claims are legal.
	invalidateLeases := func() {
		for _, st := range refs {
			st.live = false
		}
	}
	claimed := make(map[campaign.LeaseID]bool)
	seenGen := false
	for i, r := range recs {
		switch r.Op {
		case "gen":
			// The generation marker heads a rotated log; its generation must
			// match the snapshot it extends, and any records before it belong
			// to the superseded epoch recovery discarded.
			if i != 0 {
				t.Fatalf("record %d: gen marker mid-log", i)
			}
			if !haveSnap || r.Gen != snapGen {
				t.Fatalf("record %d: log generation %d does not match snapshot (have=%v gen=%d)", i, r.Gen, haveSnap, snapGen)
			}
			invalidateLeases()
		case "enqueue-batch", "claim-batch", "start-batch", "complete-batch", "expire-batch":
			base := strings.TrimSuffix(r.Op, "-batch")
			for _, e := range r.Batch {
				if base == "claim" {
					if claimed[e.Lease] {
						t.Fatalf("record %d: lease ID %d granted twice", i, e.Lease)
					}
					claimed[e.Lease] = true
					// A claim of a ref whose lease died with a previous epoch is
					// legal evidence of a coordinator restart: replay invalidated
					// the lease. Strictly-increasing lease IDs (checked above)
					// keep this from excusing genuine double grants.
					if st := get(e.Ref); st.live && !st.done {
						st.live = false
					}
				}
				step(i, base, e.Ref, e.Lease)
			}
		case "claim":
			if claimed[r.Lease] {
				t.Fatalf("record %d: lease ID %d granted twice", i, r.Lease)
			}
			claimed[r.Lease] = true
			if st := get(r.Ref); st.live && !st.done {
				st.live = false
			}
			step(i, r.Op, r.Ref, r.Lease)
		default:
			step(i, r.Op, r.Ref, r.Lease)
		}
		if r.Op == "gen" {
			seenGen = true
		}
	}
	if haveSnap && !seenGen {
		t.Fatalf("snapshot exists but the log carries no gen marker")
	}
	for ref, st := range refs {
		if !st.done {
			t.Fatalf("ref %.12s never completed in queue log", ref)
		}
	}
}
