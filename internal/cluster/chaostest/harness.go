// Package chaostest is a deterministic chaos-test harness for the
// cluster subsystem. It binds the real coordinator, durable queue,
// journals, and shared store into a single-threaded round loop that
// simulates a fleet of worker nodes, and injects faults — node kills,
// heartbeat stalls, duplicated completions, store corruption — from a
// scripted schedule keyed off the cluster's own event stream, never off
// wall-clock time. The same script against the same manifest therefore
// takes the same assertion path every run: identical event logs,
// identical tick counts, identical merged bytes.
//
// Faults trigger on events ("the 2nd complete by node w1") because event
// counts are deterministic where wall-clock sleeps are not; triggered
// actions apply at the next round boundary, so every interleaving the
// harness produces is one the real protocol can produce, and the whole
// space of (kill round × node) interleavings can be enumerated by
// looping over scripts.
package chaostest

import (
	"fmt"
	"os"
	"path/filepath"

	"roadrunner/internal/campaign"
	"roadrunner/internal/cluster"
)

// Trigger matches the Nth cluster event of a type (1-based), optionally
// filtered to one node.
type Trigger struct {
	Event string
	N     int
	Node  string
}

// Action is one scripted fault.
type Action interface {
	// Describe labels the action in the harness log.
	Describe() string
}

// Kill stops a node permanently: no more heartbeats, claims, or
// executions. With MidRun set, the node dies immediately after passing
// the Start gate on its next run — the lease is started but never
// completed, the crash-mid-run case lease expiry must recover. Under
// BatchVerbs the MidRun death lands after the node gates its whole
// backlog through one StartRuns call, orphaning every started lease in
// the batch at once — the kill-mid-batch case.
type Kill struct {
	Node   string
	MidRun bool
}

// Describe implements Action.
func (k Kill) Describe() string {
	if k.MidRun {
		return "kill-mid-run " + k.Node
	}
	return "kill " + k.Node
}

// RestartCoordinator closes the coordinator and reopens it from the
// shared store — the coordinator-crash case. The durable queue replays
// (snapshot + tail when a compaction has run), nodes re-register, and
// campaigns resume by ID. Leases granted by the dead epoch are
// invalidated by replay, so workers holding old assignments drop them at
// the Start gate.
//
// With CrashCompaction set, the restart first simulates a crash inside
// the compaction window: a snapshot is force-published and the
// pre-compaction log bytes are restored over the rotated log, leaving
// the snapshot one generation ahead of the log — recovery must detect
// the half-finished compaction and complete the rotation itself.
type RestartCoordinator struct {
	CrashCompaction bool
}

// Describe implements Action.
func (r RestartCoordinator) Describe() string {
	if r.CrashCompaction {
		return "restart-coordinator crash-mid-compaction"
	}
	return "restart-coordinator"
}

// Stall freezes a node for Rounds rounds: no heartbeats (so its leases
// age toward expiry and its unstarted claims become stealable), no
// claims, no executions. The node resumes afterwards.
type Stall struct {
	Node   string
	Rounds int
}

// Describe implements Action.
func (s Stall) Describe() string { return fmt.Sprintf("stall %s %dr", s.Node, s.Rounds) }

// DuplicateComplete replays the most recent completion report — the
// retried-RPC case. The coordinator must reject it as a stale lease and
// change nothing.
type DuplicateComplete struct{}

// Describe implements Action.
func (DuplicateComplete) Describe() string { return "duplicate-complete" }

// CorruptEntry flips a byte inside the most recently completed run's
// stored canonical bytes. The store's verify-on-read must evict the
// damaged entry and the merge must self-heal it.
type CorruptEntry struct{}

// Describe implements Action.
func (CorruptEntry) Describe() string { return "corrupt-entry" }

// Step binds a trigger to an action.
type Step struct {
	On Trigger
	Do Action
}

// Script is an ordered fault schedule.
type Script []Step

// NodeConfig declares one simulated worker.
type NodeConfig struct {
	Name string
	// Capacity is the most claims the node holds at once; claims beyond
	// the one it executes each round form its backlog (what stealing
	// targets). <= 0 selects 2.
	Capacity int
}

// Config assembles a harness.
type Config struct {
	// Dir is the shared store directory (the cluster's durable tier).
	Dir   string
	Nodes []NodeConfig
	// Policy routes claims; nil selects round-robin.
	Policy cluster.Policy
	// LeaseTTL and StealAfter follow cluster.Options; <= 0 selects the
	// harness defaults 4 and 2.
	LeaseTTL   campaign.Tick
	StealAfter campaign.Tick
	// BatchVerbs routes execution through the batched protocol verbs:
	// each node gates its whole backlog through one StartRuns call and
	// reports every outcome through one CompleteRuns call per round,
	// instead of one Start/Complete round-trip per run.
	BatchVerbs bool
	// CompactEvery and MaxOutstanding forward to cluster.Options: the
	// queue's snapshot-compaction threshold and the admission cap.
	CompactEvery   int
	MaxOutstanding int
	// MaxRounds bounds the round loop; <= 0 selects 200.
	MaxRounds int
	Script    Script
}

// workerNode is the harness's in-process stand-in for one roadrunnerd
// worker: its own store handle on the shared directory (as a separate
// process would have) and its own runner.
type workerNode struct {
	name     string
	capacity int
	runner   *cluster.Runner
	backlog  []cluster.Assignment
	alive    bool
	stalled  int
	// killMidRun arms a mid-run death: consumed at the node's next
	// execution slot, after Start and before the run.
	killMidRun bool
}

// completion remembers a reported outcome so DuplicateComplete and
// CorruptEntry can replay or damage it.
type completion struct {
	node  string
	lease campaign.LeaseID
	key   string
	out   cluster.Outcome
}

// Harness drives a simulated cluster deterministically.
type Harness struct {
	dir        string
	co         *cluster.Coordinator
	opts       cluster.Options // for RestartCoordinator re-opens
	batchVerbs bool
	nodes      map[string]*workerNode
	order      []string
	script     []scriptStep
	due        []Action
	log        []string
	execCount  map[string]int
	completes  []completion
	stale      int
	maxRounds  int
	campaigns  []string
	rounds     int
}

type scriptStep struct {
	step  Step
	seen  int
	fired bool
}

// New builds a harness: one coordinator plus one simulated worker per
// node config, each with its own store handle on the shared directory.
func New(cfg Config) (*Harness, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("chaostest: no nodes configured")
	}
	store, err := campaign.OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 4
	}
	steal := cfg.StealAfter
	if steal <= 0 {
		steal = 2
	}
	opts := cluster.Options{
		Store: store, Policy: cfg.Policy, LeaseTTL: ttl, StealAfter: steal,
		CompactEvery: cfg.CompactEvery, MaxOutstanding: cfg.MaxOutstanding,
	}
	co, err := cluster.NewCoordinator(opts)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200
	}
	h := &Harness{
		dir:        cfg.Dir,
		co:         co,
		opts:       opts,
		batchVerbs: cfg.BatchVerbs,
		nodes:      make(map[string]*workerNode),
		execCount:  make(map[string]int),
		maxRounds:  maxRounds,
	}
	for _, s := range cfg.Script {
		h.script = append(h.script, scriptStep{step: s})
	}
	co.Observe(h.observe)
	for _, nc := range cfg.Nodes {
		capacity := nc.Capacity
		if capacity <= 0 {
			capacity = 2
		}
		nodeStore, err := campaign.OpenStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		h.nodes[nc.Name] = &workerNode{
			name:     nc.Name,
			capacity: capacity,
			runner:   cluster.NewRunner(nodeStore, 2, func(int) {}),
			alive:    true,
		}
		h.order = append(h.order, nc.Name)
		co.RegisterNode(nc.Name, capacity)
	}
	return h, nil
}

// Coordinator exposes the harness's coordinator for extra assertions.
func (h *Harness) Coordinator() *cluster.Coordinator { return h.co }

// observe records every cluster event in the log and matches it against
// the script. It runs synchronously on the round loop's goroutine (the
// coordinator emits after releasing its lock), so trigger evaluation is
// single-threaded and deterministic.
func (h *Harness) observe(ev cluster.Event) {
	h.log = append(h.log, fmt.Sprintf("evt t%02d %s %s %s", ev.Tick, ev.Type, ev.Node, shortKey(ev.Key)))
	for i := range h.script {
		st := &h.script[i]
		if st.fired || st.step.On.Event != ev.Type {
			continue
		}
		if st.step.On.Node != "" && st.step.On.Node != ev.Node {
			continue
		}
		st.seen++
		n := st.step.On.N
		if n <= 0 {
			n = 1
		}
		if st.seen == n {
			st.fired = true
			h.due = append(h.due, st.step.Do)
		}
	}
}

func shortKey(key string) string {
	if len(key) > 8 {
		return key[:8]
	}
	if key == "" {
		return "-"
	}
	return key
}

// Submit registers a manifest with the coordinator and tracks it for
// completion.
func (h *Harness) Submit(m campaign.Manifest) (string, error) {
	id, err := h.co.Submit(m)
	if err != nil {
		return "", err
	}
	h.campaigns = append(h.campaigns, id)
	return id, nil
}

// Log returns the harness's ordered event/action log — the assertion
// path. Two runs of the same script over the same manifest produce
// identical logs.
func (h *Harness) Log() []string { return append([]string(nil), h.log...) }

// Rounds reports how many rounds the loop ran.
func (h *Harness) Rounds() int { return h.rounds }

// ExecCounts returns fresh (non-cached, successful) executions per run
// key across all nodes — the no-double-execution property's evidence.
func (h *Harness) ExecCounts() map[string]int {
	out := make(map[string]int, len(h.execCount))
	for k, v := range h.execCount {
		out[k] = v
	}
	return out
}

// StaleCompletes reports how many completion reports the coordinator
// rejected as stale (duplicates and post-expiry reports).
func (h *Harness) StaleCompletes() int { return h.stale }

// MergedResult renders a campaign's merged canonical artifact.
func (h *Harness) MergedResult(id string) ([]byte, error) { return h.co.MergedResult(id) }

// Close releases the coordinator's files.
func (h *Harness) Close() { h.co.Close() }

// Run drives the cluster until every submitted campaign finishes (or
// MaxRounds passes, which is an error). Each round: due faults apply,
// live nodes heartbeat, nodes with spare capacity claim work (stealing
// when the queue is dry), every live node executes one backlog item, and
// the logical clock advances one tick.
func (h *Harness) Run() error {
	for round := 1; round <= h.maxRounds; round++ {
		h.rounds = round
		h.applyDue(round)

		skip := make(map[string]bool, len(h.order))
		for _, name := range h.order {
			n := h.nodes[name]
			if !n.alive {
				skip[name] = true
				continue
			}
			if n.stalled > 0 {
				n.stalled--
				skip[name] = true
				continue
			}
			_ = h.co.Heartbeat(name)
		}
		for _, name := range h.order {
			n := h.nodes[name]
			if skip[name] {
				continue
			}
			if want := n.capacity - len(n.backlog); want > 0 {
				asgs, err := h.co.RequestWork(name, want)
				if err == nil {
					n.backlog = append(n.backlog, asgs...)
				}
			}
		}
		for _, name := range h.order {
			n := h.nodes[name]
			if skip[name] || len(n.backlog) == 0 {
				continue
			}
			if h.batchVerbs {
				h.executeBatch(n, round)
			} else {
				h.executeOne(n, round)
			}
		}
		h.co.Advance()

		if h.allDone() {
			return nil
		}
	}
	return fmt.Errorf("chaostest: campaigns unfinished after %d rounds", h.maxRounds)
}

// executeOne pops the node's oldest backlog item and runs it through the
// real execution gate: Start (stale claims are dropped unexecuted), the
// runner, then the completion report.
func (h *Harness) executeOne(n *workerNode, round int) {
	asg := n.backlog[0]
	n.backlog = n.backlog[1:]
	if err := h.co.StartRun(n.name, asg.Lease); err != nil {
		h.log = append(h.log, fmt.Sprintf("act r%02d drop-stale %s %s", round, n.name, shortKey(asg.Key)))
		return
	}
	if n.killMidRun {
		// The crash-mid-run case: the lease is started, the node dies, and
		// nothing is executed or reported. Lease expiry re-queues the run.
		n.killMidRun = false
		n.alive = false
		h.log = append(h.log, fmt.Sprintf("act r%02d died-mid-run %s %s", round, n.name, shortKey(asg.Key)))
		return
	}
	out := n.runner.Run(asg)
	if out.State == campaign.RunDone && !out.Cached {
		h.execCount[asg.Key]++
	}
	h.completes = append(h.completes, completion{node: n.name, lease: asg.Lease, key: asg.Key, out: out})
	if err := h.co.CompleteRun(n.name, asg.Lease, out); err != nil {
		h.stale++
		h.log = append(h.log, fmt.Sprintf("act r%02d complete-stale %s %s", round, n.name, shortKey(asg.Key)))
	}
}

// executeBatch drains the node's whole backlog through the batched
// protocol: one StartRuns call gates every claim (stale slots drop only
// themselves), admitted runs execute, and one CompleteRuns call reports
// every outcome — the same shape a batched roadrunnerd worker uses.
func (h *Harness) executeBatch(n *workerNode, round int) {
	batch := n.backlog
	n.backlog = nil
	leases := make([]campaign.LeaseID, len(batch))
	for i, asg := range batch {
		leases[i] = asg.Lease
	}
	startErrs := h.co.StartRuns(n.name, leases)
	if n.killMidRun {
		// The kill-mid-batch case: every lease that just passed the Start
		// gate is orphaned at once; lease expiry must recover them all.
		n.killMidRun = false
		n.alive = false
		h.log = append(h.log, fmt.Sprintf("act r%02d died-mid-batch %s %d-leases", round, n.name, len(batch)))
		return
	}
	var reports []cluster.CompletionReport
	var ran []cluster.Assignment
	for i, asg := range batch {
		if startErrs[i] != nil {
			h.log = append(h.log, fmt.Sprintf("act r%02d drop-stale %s %s", round, n.name, shortKey(asg.Key)))
			continue
		}
		out := n.runner.Run(asg)
		if out.State == campaign.RunDone && !out.Cached {
			h.execCount[asg.Key]++
		}
		h.completes = append(h.completes, completion{node: n.name, lease: asg.Lease, key: asg.Key, out: out})
		reports = append(reports, cluster.CompletionReport{Lease: asg.Lease, Outcome: out})
		ran = append(ran, asg)
	}
	for i, err := range h.co.CompleteRuns(n.name, reports) {
		if err != nil {
			h.stale++
			h.log = append(h.log, fmt.Sprintf("act r%02d complete-stale %s %s", round, n.name, shortKey(ran[i].Key)))
		}
	}
}

// restartCoordinator swaps in a fresh coordinator over the same shared
// directory: the durable queue replays, every node re-registers, and the
// submitted campaigns resume under their original IDs. With
// crashCompaction, the restart first manufactures the crash window
// inside compaction — snapshot published, log rotation lost — by
// force-compacting a direct queue handle and then restoring the
// pre-compaction log bytes.
func (h *Harness) restartCoordinator(crashCompaction bool) error {
	logPath := h.co.Store().QueueLogPath()
	h.co.Close()
	if crashCompaction {
		before, err := os.ReadFile(logPath)
		if err != nil {
			return err
		}
		q, err := campaign.OpenQueueWithOptions(logPath, campaign.QueueOptions{CompactEvery: -1})
		if err != nil {
			return err
		}
		if err := q.Compact(); err != nil {
			_ = q.Close()
			return err
		}
		if err := q.Close(); err != nil {
			return err
		}
		// Roll the log back to its pre-compaction content: the snapshot is
		// now one generation ahead, exactly the state a crash between
		// snapshot publish and log rotation leaves behind.
		if err := os.WriteFile(logPath, before, 0o644); err != nil {
			return err
		}
	}
	store, err := campaign.OpenStore(h.dir)
	if err != nil {
		return err
	}
	opts := h.opts
	opts.Store = store
	co, err := cluster.NewCoordinator(opts)
	if err != nil {
		return err
	}
	co.Observe(h.observe)
	h.co = co
	for _, name := range h.order {
		co.RegisterNode(name, h.nodes[name].capacity)
	}
	for _, id := range h.campaigns {
		if err := co.Resume(id); err != nil {
			return err
		}
	}
	return nil
}

// applyDue applies every action triggered since the previous round, in
// trigger order.
func (h *Harness) applyDue(round int) {
	due := h.due
	h.due = nil
	for _, act := range due {
		h.log = append(h.log, fmt.Sprintf("act r%02d %s", round, act.Describe()))
		switch a := act.(type) {
		case Kill:
			if n, ok := h.nodes[a.Node]; ok {
				if a.MidRun {
					n.killMidRun = true
				} else {
					n.alive = false
				}
			}
		case Stall:
			if n, ok := h.nodes[a.Node]; ok {
				n.stalled = a.Rounds
			}
		case DuplicateComplete:
			if len(h.completes) > 0 {
				last := h.completes[len(h.completes)-1]
				if err := h.co.CompleteRun(last.node, last.lease, last.out); err != nil {
					h.stale++
					h.log = append(h.log, fmt.Sprintf("act r%02d duplicate-rejected %s", round, shortKey(last.key)))
				}
			}
		case RestartCoordinator:
			if err := h.restartCoordinator(a.CrashCompaction); err != nil {
				h.log = append(h.log, fmt.Sprintf("act r%02d restart-failed %v", round, err))
			}
		case CorruptEntry:
			if len(h.completes) > 0 {
				last := h.completes[len(h.completes)-1]
				path := filepath.Join(h.dir, last.key, "result.canonical")
				if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
					data[len(data)/2] ^= 0xff
					if os.WriteFile(path, data, 0o644) == nil {
						h.log = append(h.log, fmt.Sprintf("act r%02d corrupted %s", round, shortKey(last.key)))
					}
				}
			}
		}
	}
}

// allDone reports whether every submitted campaign finished.
func (h *Harness) allDone() bool {
	for _, id := range h.campaigns {
		c, err := h.co.Campaign(id)
		if err != nil || !c.Status().Done {
			return false
		}
	}
	return true
}
