package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadrunner/internal/campaign"
)

// newTestServer mounts the coordinator API on an httptest server.
func newTestServer(t *testing.T, co *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	co.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestHTTPWorkerProtocol walks a worker through the entire coordinator
// API over real HTTP — register, heartbeat, claim, start, execute,
// complete — and checks the campaign finishes with the merged result
// served byte-identically to the coordinator's in-process view.
func TestHTTPWorkerProtocol(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	ts := newTestServer(t, co)

	client := NewClient(ts.URL, "w1")
	if err := client.Register(2); err != nil {
		t.Fatal(err)
	}
	if err := client.Heartbeat(); err != nil {
		t.Fatal(err)
	}

	// Submit over HTTP.
	manifest, err := json.Marshal(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/cluster/campaigns", "application/json", strings.NewReader(string(manifest)))
	if err != nil {
		t.Fatal(err)
	}
	var submitted campaign.Status
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, submitted.ID)
	}

	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	ran := 0
	for {
		asgs, err := client.Claims(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(asgs) == 0 {
			break
		}
		for _, asg := range asgs {
			if err := client.Start(asg.Lease); err != nil {
				t.Fatal(err)
			}
			if err := client.Complete(asg.Lease, runner.Run(asg)); err != nil {
				t.Fatal(err)
			}
			ran++
		}
	}
	if ran != 2 {
		t.Fatalf("worker ran %d assignments over HTTP, want 2", ran)
	}

	// Status reflects completion.
	var st campaign.Status
	getJSON(t, ts.URL+"/v1/cluster/campaigns/"+submitted.ID, &st)
	if !st.Done || st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("campaign status over HTTP: %+v", st)
	}

	// Nodes report the fleet.
	var fleet struct {
		Nodes []NodeStatus `json:"nodes"`
	}
	getJSON(t, ts.URL+"/v1/cluster/nodes", &fleet)
	if len(fleet.Nodes) != 1 || fleet.Nodes[0].Executed != 2 {
		t.Fatalf("fleet over HTTP: %+v", fleet.Nodes)
	}

	// The served merged artifact matches the in-process merge.
	want, err := co.MergedResult(submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := getBytes(t, ts.URL+"/v1/cluster/campaigns/"+submitted.ID+"/result")
	if string(got) != string(want) {
		t.Fatalf("served result differs from in-process merge (%d vs %d bytes)", len(got), len(want))
	}

	// Listing includes the campaign without per-run detail.
	var listing struct {
		Campaigns []campaign.Status `json:"campaigns"`
		Policy    string            `json:"policy"`
	}
	getJSON(t, ts.URL+"/v1/cluster/campaigns", &listing)
	if len(listing.Campaigns) != 1 || listing.Campaigns[0].Runs != nil || listing.Policy == "" {
		t.Fatalf("listing over HTTP: %+v", listing)
	}
}

// TestHTTPStaleLeaseMapsToConflict: a start against a revoked lease must
// surface as campaign.ErrStaleLease on the client side via HTTP 409.
func TestHTTPStaleLeaseMapsToConflict(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	ts := newTestServer(t, co)
	client := NewClient(ts.URL, "w1")
	if err := client.Register(1); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Submit(tinyClusterManifest()); err != nil {
		t.Fatal(err)
	}
	asgs, err := client.Claims(1)
	if err != nil || len(asgs) != 1 {
		t.Fatalf("claims: %v %v", asgs, err)
	}
	// Expire the claim by advancing past the lease TTL with no heartbeat.
	for i := 0; i < 8; i++ {
		co.Advance()
	}
	if err := client.Start(asgs[0].Lease); !errors.Is(err, campaign.ErrStaleLease) {
		t.Fatalf("start on expired lease err = %v, want ErrStaleLease", err)
	}
	if err := client.Complete(asgs[0].Lease, Outcome{State: campaign.RunDone}); !errors.Is(err, campaign.ErrStaleLease) {
		t.Fatalf("complete on expired lease err = %v, want ErrStaleLease", err)
	}
}

// TestHTTPResultGatedUntilDone: the merged-result endpoint must return
// 409 while the campaign is running, mirroring the single-node endpoint.
// Serving it early would drive the merge's self-heal path to execute
// runs currently leased to workers inside the handler.
func TestHTTPResultGatedUntilDone(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	ts := newTestServer(t, co)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/cluster/campaigns/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mid-campaign result status %d, want 409", resp.StatusCode)
	}
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, co, NewRunner(workerStore, 2, func(int) {}), "w1")
	if got := getBytes(t, ts.URL+"/v1/cluster/campaigns/"+id+"/result"); len(got) == 0 {
		t.Fatal("finished campaign served an empty merged result")
	}
}

// TestHTTPValidation: malformed or incomplete requests get 4xx, unknown
// campaigns 404.
func TestHTTPValidation(t *testing.T) {
	co := newTestCoordinator(t, t.TempDir())
	ts := newTestServer(t, co)
	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"bad manifest json", "/v1/cluster/campaigns", "{", http.StatusBadRequest},
		{"empty manifest", "/v1/cluster/campaigns", "{}", http.StatusBadRequest},
		{"register without node", "/v1/cluster/register", "{}", http.StatusBadRequest},
		{"heartbeat unknown node", "/v1/cluster/heartbeat", `{"node":"ghost"}`, http.StatusNotFound},
		{"claims unknown node", "/v1/cluster/claims", `{"node":"ghost"}`, http.StatusNotFound},
		{"complete without outcome", "/v1/cluster/complete", `{"node":"w1","lease":1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/cluster/campaigns/c9999-none")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign status: %d, want 404", resp.StatusCode)
	}
}

// TestHTTPEventsStreamDeliversTerminal subscribes to the merged SSE
// stream for a campaign that finishes warm from cache: the snapshot and
// terminal campaign event must arrive and the stream must close.
func TestHTTPEventsStreamDeliversTerminal(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	if _, err := co.Submit(tinyClusterManifest()); err != nil {
		t.Fatal(err)
	}
	drive(t, co, runner, "w1")

	// Warm resubmission finishes during Submit, so the stream sees the
	// snapshot (already done) and then closes on the terminal event.
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, co)
	resp, err := http.Get(ts.URL + "/v1/cluster/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	var body strings.Builder
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break // stream closed after the terminal event
		}
	}
	if !strings.Contains(body.String(), `"type":"snapshot"`) {
		t.Fatalf("stream missing snapshot: %q", body.String())
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return []byte(sb.String())
		}
	}
}
