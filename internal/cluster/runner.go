package cluster

import (
	"roadrunner/internal/campaign"
)

// Runner executes assignments on a worker node: a thin wrapper over the
// single-node scheduler so cluster workers inherit its store-first
// lookup, retry-with-backoff, panic isolation, and durable-put-before-
// report contract unchanged.
type Runner struct {
	sched *campaign.Scheduler
}

// NewRunner builds a worker-side runner against the shared store.
// MaxAttempts and Backoff follow campaign.Options semantics; the worker
// pool is one — cluster concurrency comes from running many nodes, and
// per-assignment execution stays serial so an assignment's attempts are
// ordered.
func NewRunner(store *campaign.Store, maxAttempts int, backoff func(int)) *Runner {
	return &Runner{sched: campaign.NewScheduler(campaign.Options{
		Workers:     1,
		Store:       store,
		MaxAttempts: maxAttempts,
		Backoff:     backoff,
	})}
}

// Stats exposes the underlying scheduler's accounting (the node's
// /metrics source).
func (r *Runner) Stats() campaign.Stats { return r.sched.Stats() }

// Run executes one assignment's spec and reports the outcome. A store
// hit skips execution (Cached); a fresh execution only reports done once
// its result is durable in the shared store.
func (r *Runner) Run(asg Assignment) Outcome {
	task, err := campaign.TaskForSpec(asg.Spec)
	if err != nil {
		return Outcome{State: campaign.RunFailed, Error: err.Error()}
	}
	tr := r.sched.Execute([]campaign.Task{task})[0]
	out := Outcome{Attempts: tr.Attempts}
	switch {
	case tr.Cached:
		out.State = campaign.RunCached
		out.Cached = true
	case tr.Err != nil:
		out.State = campaign.RunFailed
		out.Error = tr.Err.Error()
	default:
		out.State = campaign.RunDone
	}
	if tr.Result != nil {
		out.FinalAccuracy = tr.Result.FinalAccuracy
		out.EndS = float64(tr.Result.End)
	}
	return out
}
