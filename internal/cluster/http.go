package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"roadrunner/internal/campaign"
)

// maxBodyBytes bounds every decoded request body.
const maxBodyBytes = 1 << 20

// Routes mounts the coordinator's HTTP API on mux:
//
//	POST /v1/cluster/campaigns           submit a manifest
//	GET  /v1/cluster/campaigns           list campaign statuses
//	GET  /v1/cluster/campaigns/{id}      one campaign's status
//	GET  /v1/cluster/campaigns/{id}/events  merged SSE progress stream
//	GET  /v1/cluster/campaigns/{id}/result  merged canonical artifact (409 while running)
//	GET  /v1/cluster/nodes               fleet status
//	POST /v1/cluster/register            worker join
//	POST /v1/cluster/heartbeat           worker liveness
//	POST /v1/cluster/claims              worker work request (batched: one call grants many)
//	POST /v1/cluster/starts              execution gate (409 on stale lease)
//	POST /v1/cluster/complete            outcome report (409 on stale lease)
//
// starts and complete accept either the single-lease envelope
// ({"node","lease"} / {"node","lease","outcome"}) or the batched one
// ({"node","leases":[...]} / {"node","completes":[{"lease","outcome"},...]}).
// Batched requests always answer 200 with a per-slot results array —
// a stale lease flags only its own slot ("stale":true), never the
// siblings — while the single-lease envelope keeps the 409 contract.
// Submissions rejected by admission backpressure answer 429 with a
// Retry-After hint.
func (co *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/campaigns", co.handleSubmit)
	mux.HandleFunc("GET /v1/cluster/campaigns", co.handleList)
	mux.HandleFunc("GET /v1/cluster/campaigns/{id}", co.handleStatus)
	mux.HandleFunc("GET /v1/cluster/campaigns/{id}/events", co.handleEvents)
	mux.HandleFunc("GET /v1/cluster/campaigns/{id}/result", co.handleResult)
	mux.HandleFunc("GET /v1/cluster/nodes", co.handleNodes)
	mux.HandleFunc("POST /v1/cluster/register", co.handleRegister)
	mux.HandleFunc("POST /v1/cluster/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/claims", co.handleClaims)
	mux.HandleFunc("POST /v1/cluster/starts", co.handleStarts)
	mux.HandleFunc("POST /v1/cluster/complete", co.handleComplete)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	clusterJSON(w, status, map[string]string{"error": err.Error()})
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var m campaign.Manifest
	if err := decodeBody(w, r, &m); err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("decode manifest: %w", err))
		return
	}
	id, err := co.Submit(m)
	if err != nil {
		if errors.Is(err, ErrBacklogFull) {
			// Backpressure, not a bad request: the manifest is fine and
			// should be resubmitted verbatim once the backlog drains.
			w.Header().Set("Retry-After", "1")
			clusterError(w, http.StatusTooManyRequests, err)
			return
		}
		clusterError(w, http.StatusBadRequest, err)
		return
	}
	c, err := co.Campaign(id)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	clusterJSON(w, http.StatusAccepted, c.Status())
}

func (co *Coordinator) handleList(w http.ResponseWriter, _ *http.Request) {
	statuses := co.Campaigns()
	for i := range statuses {
		statuses[i].Runs = nil // listings stay small; detail is one GET away
	}
	clusterJSON(w, http.StatusOK, map[string]any{"campaigns": statuses, "policy": co.Policy()})
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, err := co.Campaign(r.PathValue("id"))
	if err != nil {
		clusterError(w, http.StatusNotFound, err)
		return
	}
	clusterJSON(w, http.StatusOK, c.Status())
}

// handleEvents streams the campaign's run transitions merged with the
// coordinator's cluster events (claims, steals, node deaths) as SSE. The
// stream opens with a status snapshot and closes after the campaign's
// terminal event.
func (co *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, err := co.Campaign(r.PathValue("id"))
	if err != nil {
		clusterError(w, http.StatusNotFound, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		clusterError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	runEvents, cancelRuns := c.Subscribe()
	defer cancelRuns()
	clusterEvents, cancelCluster := co.Subscribe()
	defer cancelCluster()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	writeEventSSE(w, map[string]any{"type": "snapshot", "status": c.Status()})
	fl.Flush()
	id := c.ID()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-runEvents:
			if !open {
				return // terminal campaign event delivered
			}
			writeEventSSE(w, ev)
			fl.Flush()
		case ev, open := <-clusterEvents:
			if !open {
				return
			}
			if ev.Campaign == "" || ev.Campaign == id {
				writeEventSSE(w, ev)
				fl.Flush()
			}
		}
	}
}

func writeEventSSE(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	_, _ = fmt.Fprintf(w, "data: %s\n\n", data)
}

// handleResult serves the merged canonical artifact, mirroring the
// single-node endpoint's gate: 409 until the campaign is done. Merging
// mid-campaign would let the self-heal path synchronously execute runs
// still leased to workers, double-executing them inside the handler.
func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	c, err := co.Campaign(r.PathValue("id"))
	if err != nil {
		clusterError(w, http.StatusNotFound, err)
		return
	}
	if !c.Status().Done {
		clusterError(w, http.StatusConflict, fmt.Errorf("campaign %q still running", c.ID()))
		return
	}
	data, err := co.MergedResult(c.ID())
	if err != nil {
		if errors.Is(err, ErrUnknownCampaign) {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(data)
}

func (co *Coordinator) handleNodes(w http.ResponseWriter, _ *http.Request) {
	clusterJSON(w, http.StatusOK, map[string]any{"now": co.Now(), "nodes": co.Nodes()})
}

// joinRequest is the worker-facing request envelope for register,
// heartbeat, and claims.
type joinRequest struct {
	Node     string `json:"node"`
	Capacity int    `json:"capacity,omitempty"`
	Max      int    `json:"max,omitempty"`
}

func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := decodeBody(w, r, &req); err != nil || req.Node == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("register needs a node name"))
		return
	}
	co.RegisterNode(req.Node, req.Capacity)
	clusterJSON(w, http.StatusOK, map[string]any{"node": req.Node, "now": co.Now()})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := decodeBody(w, r, &req); err != nil || req.Node == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("heartbeat needs a node name"))
		return
	}
	if err := co.Heartbeat(req.Node); err != nil {
		clusterError(w, http.StatusNotFound, err)
		return
	}
	clusterJSON(w, http.StatusOK, map[string]any{"node": req.Node, "now": co.Now()})
}

func (co *Coordinator) handleClaims(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := decodeBody(w, r, &req); err != nil || req.Node == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("claims need a node name"))
		return
	}
	asgs, err := co.RequestWork(req.Node, req.Max)
	if err != nil {
		clusterError(w, http.StatusNotFound, err)
		return
	}
	clusterJSON(w, http.StatusOK, map[string]any{"assignments": asgs})
}

// completionWire is one lease's outcome inside a batched complete.
type completionWire struct {
	Lease   campaign.LeaseID `json:"lease"`
	Outcome *Outcome         `json:"outcome"`
}

// leaseRequest is the worker-facing envelope for starts and completes.
// The single-lease fields and the batched arrays are mutually exclusive;
// a non-nil array selects the batched form.
type leaseRequest struct {
	Node      string             `json:"node"`
	Lease     campaign.LeaseID   `json:"lease,omitempty"`
	Outcome   *Outcome           `json:"outcome,omitempty"`
	Leases    []campaign.LeaseID `json:"leases,omitempty"`
	Completes []completionWire   `json:"completes,omitempty"`
}

// leaseSlot is one lease's result inside a batched starts/complete
// reply. Stale marks campaign.ErrStaleLease rejections so clients can
// drop the assignment without string-matching.
type leaseSlot struct {
	Lease campaign.LeaseID `json:"lease"`
	Error string           `json:"error,omitempty"`
	Stale bool             `json:"stale,omitempty"`
}

func leaseSlots(ids []campaign.LeaseID, errs []error) []leaseSlot {
	slots := make([]leaseSlot, len(errs))
	for i, err := range errs {
		slots[i].Lease = ids[i]
		if err != nil {
			slots[i].Error = err.Error()
			slots[i].Stale = errors.Is(err, campaign.ErrStaleLease)
		}
	}
	return slots
}

func (co *Coordinator) handleStarts(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := decodeBody(w, r, &req); err != nil || req.Node == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("start needs a node name and lease"))
		return
	}
	if req.Leases != nil {
		errs := co.StartRuns(req.Node, req.Leases)
		clusterJSON(w, http.StatusOK, map[string]any{"results": leaseSlots(req.Leases, errs)})
		return
	}
	if err := co.StartRun(req.Node, req.Lease); err != nil {
		if errors.Is(err, campaign.ErrStaleLease) {
			clusterError(w, http.StatusConflict, err)
			return
		}
		clusterError(w, http.StatusBadRequest, err)
		return
	}
	clusterJSON(w, http.StatusOK, map[string]string{"status": "started"})
}

func (co *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := decodeBody(w, r, &req); err != nil || req.Node == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("complete needs a node name, lease, and outcome"))
		return
	}
	if req.Completes != nil {
		reports := make([]CompletionReport, len(req.Completes))
		ids := make([]campaign.LeaseID, len(req.Completes))
		for i, c := range req.Completes {
			if c.Outcome == nil {
				clusterError(w, http.StatusBadRequest, fmt.Errorf("complete slot %d has no outcome", i))
				return
			}
			reports[i] = CompletionReport{Lease: c.Lease, Outcome: *c.Outcome}
			ids[i] = c.Lease
		}
		errs := co.CompleteRuns(req.Node, reports)
		clusterJSON(w, http.StatusOK, map[string]any{"results": leaseSlots(ids, errs)})
		return
	}
	if req.Outcome == nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("complete needs a node name, lease, and outcome"))
		return
	}
	if err := co.CompleteRun(req.Node, req.Lease, *req.Outcome); err != nil {
		if errors.Is(err, campaign.ErrStaleLease) {
			clusterError(w, http.StatusConflict, err)
			return
		}
		clusterError(w, http.StatusBadRequest, err)
		return
	}
	clusterJSON(w, http.StatusOK, map[string]string{"status": "completed"})
}

// Client is the worker side of the coordinator API.
type Client struct {
	base string
	node string
	hc   *http.Client
}

// NewClient builds a worker client for the coordinator at base (e.g.
// "http://127.0.0.1:8383") identifying itself as node.
func NewClient(base, node string) *Client {
	return &Client{base: base, node: node, hc: &http.Client{}}
}

// post sends a JSON body and decodes a JSON reply. A 409 maps to
// campaign.ErrStaleLease so the claim loop can drop dead assignments.
func (c *Client) post(path string, body, reply any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer func() { _, _ = io.Copy(io.Discard, resp.Body); _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusConflict {
		return campaign.ErrStaleLease
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if reply == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// Register joins the cluster with the given claim capacity.
func (c *Client) Register(capacity int) error {
	return c.post("/v1/cluster/register", joinRequest{Node: c.node, Capacity: capacity}, nil)
}

// Heartbeat refreshes liveness and extends this node's leases.
func (c *Client) Heartbeat() error {
	return c.post("/v1/cluster/heartbeat", joinRequest{Node: c.node}, nil)
}

// Claims requests up to max assignments.
func (c *Client) Claims(max int) ([]Assignment, error) {
	var reply struct {
		Assignments []Assignment `json:"assignments"`
	}
	if err := c.post("/v1/cluster/claims", joinRequest{Node: c.node, Max: max}, &reply); err != nil {
		return nil, err
	}
	return reply.Assignments, nil
}

// Start passes the execution gate for a lease. campaign.ErrStaleLease
// means the assignment was stolen or expired; drop it without executing.
func (c *Client) Start(lease campaign.LeaseID) error {
	return c.post("/v1/cluster/starts", leaseRequest{Node: c.node, Lease: lease}, nil)
}

// Complete reports an assignment's outcome.
func (c *Client) Complete(lease campaign.LeaseID, out Outcome) error {
	return c.post("/v1/cluster/complete", leaseRequest{Node: c.node, Lease: lease, Outcome: &out}, nil)
}

// slotErrors converts a batched reply's per-slot results back into
// errors aligned with the request, mapping stale slots to
// campaign.ErrStaleLease.
func slotErrors(slots []leaseSlot, want int) ([]error, error) {
	if len(slots) != want {
		return nil, fmt.Errorf("cluster: batched reply carries %d slots, want %d", len(slots), want)
	}
	errs := make([]error, len(slots))
	for i, s := range slots {
		switch {
		case s.Stale:
			errs[i] = fmt.Errorf("%w: %s", campaign.ErrStaleLease, s.Error)
		case s.Error != "":
			errs[i] = errors.New(s.Error)
		}
	}
	return errs, nil
}

// StartBatch passes a whole batch of leases through the execution gate
// in one round-trip. The returned slice aligns with leases: a stale slot
// carries campaign.ErrStaleLease (drop that assignment without
// executing) and never poisons its siblings.
func (c *Client) StartBatch(leases []campaign.LeaseID) ([]error, error) {
	if len(leases) == 0 {
		return nil, nil
	}
	var reply struct {
		Results []leaseSlot `json:"results"`
	}
	if err := c.post("/v1/cluster/starts", leaseRequest{Node: c.node, Leases: leases}, &reply); err != nil {
		return nil, err
	}
	return slotErrors(reply.Results, len(leases))
}

// CompleteBatch reports a whole batch of outcomes in one round-trip.
// The returned slice aligns with reports; per-slot semantics match
// Complete.
func (c *Client) CompleteBatch(reports []CompletionReport) ([]error, error) {
	if len(reports) == 0 {
		return nil, nil
	}
	completes := make([]completionWire, len(reports))
	for i := range reports {
		completes[i] = completionWire{Lease: reports[i].Lease, Outcome: &reports[i].Outcome}
	}
	var reply struct {
		Results []leaseSlot `json:"results"`
	}
	if err := c.post("/v1/cluster/complete", leaseRequest{Node: c.node, Completes: completes}, &reply); err != nil {
		return nil, err
	}
	return slotErrors(reply.Results, len(reports))
}
