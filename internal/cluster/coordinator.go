package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"roadrunner/internal/campaign"
)

// Options configures a Coordinator.
type Options struct {
	// Store is the shared result tier. Required: the queue log and
	// campaign journals live inside it.
	Store *campaign.Store
	// Policy routes pending runs to requesting nodes; nil selects
	// RoundRobin.
	Policy Policy
	// LeaseTTL is how many ticks a claim stays live without a heartbeat;
	// <= 0 selects 5. A node that misses LeaseTTL ticks of heartbeats is
	// also marked dead.
	LeaseTTL campaign.Tick
	// StealAfter is how many ticks an unstarted claim may sit on a node
	// before another idle node may steal it; <= 0 selects 3.
	StealAfter campaign.Tick
	// CompactEvery is the queue's snapshot-compaction threshold in
	// journal entries; 0 selects the queue default, negative disables.
	CompactEvery int
	// MaxOutstanding caps admitted-but-unfinished runs (pending+leased)
	// across all campaigns. A Submit that would push past the cap is
	// rejected with ErrBacklogFull — admission backpressure for
	// manifests that outnumber fleet capacity. <= 0 means uncapped.
	MaxOutstanding int
}

// ErrUnknownNode reports a claim or completion from a node that never
// registered (or a campaign lookup that missed).
var ErrUnknownNode = errors.New("cluster: unknown node")

// ErrUnknownCampaign reports a lookup for a campaign the coordinator
// does not hold.
var ErrUnknownCampaign = errors.New("cluster: unknown campaign")

// ErrBacklogFull reports a submission rejected by admission
// backpressure: the queue already holds MaxOutstanding unfinished runs.
// The HTTP layer maps this to 429 with a Retry-After hint; the manifest
// is safe to resubmit verbatim once the backlog drains.
var ErrBacklogFull = errors.New("cluster: backlog full")

// node is the coordinator's book-keeping for one registered worker.
type node struct {
	name     string
	capacity int
	lastSeen campaign.Tick
	alive    bool
	inflight int
	granted  int
	executed int
	cached   int
	groups   map[string]bool
}

// runningCampaign binds a submitted campaign to its journal and its
// outstanding work.
type runningCampaign struct {
	c       *campaign.Campaign
	journal *campaign.Journal
	// byRef maps each queue ref to the campaign run indices it resolves
	// (duplicate specs inside one manifest share a ref).
	byRef map[string][]int
	// groups caches each ref's config-group fingerprint for routing.
	groups map[string]string
	// remaining counts refs not yet terminal; 0 means the campaign is done.
	remaining int
}

// Coordinator owns the cluster's control plane: the durable queue,
// campaign journals, node liveness, routing, and the merged event
// stream. All methods are safe for concurrent use. Mutations collect
// events under the lock and emit them after releasing it, so observers
// (the chaos harness) may call back into the coordinator.
type Coordinator struct {
	store          *campaign.Store
	queue          *campaign.Queue
	policy         Policy
	leaseTTL       campaign.Tick
	stealAfter     campaign.Tick
	maxOutstanding int

	mu        sync.Mutex
	now       campaign.Tick
	seq       int
	nodes     map[string]*node
	campaigns map[string]*runningCampaign
	order     []string

	observers []func(Event)
	subs      map[int]chan Event
	nextSub   int
}

// NewCoordinator opens (or recovers) the coordinator state rooted in the
// store: the durable queue log is replayed, so a restarted coordinator
// finds the previous epoch's unfinished claims already re-queued.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a store")
	}
	q, err := campaign.OpenQueueWithOptions(opts.Store.QueueLogPath(), campaign.QueueOptions{CompactEvery: opts.CompactEvery})
	if err != nil {
		return nil, err
	}
	pol := opts.Policy
	if pol == nil {
		pol = RoundRobin{}
	}
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = 5
	}
	steal := opts.StealAfter
	if steal <= 0 {
		steal = 3
	}
	// A restarted coordinator must not reuse a previous epoch's campaign
	// IDs: a reminted ID would silently re-attach the new submission to
	// the old epoch's journal and queue refs. Every submission opens its
	// journal before enqueueing anything, so the journals on disk are a
	// complete record of the IDs ever minted — re-derive the sequence
	// floor from them.
	seq := 0
	if ids, err := opts.Store.JournaledCampaignIDs(); err == nil {
		for _, id := range ids {
			if n, ok := campaignSeq(id); ok && n > seq {
				seq = n
			}
		}
	}
	return &Coordinator{
		store:          opts.Store,
		queue:          q,
		policy:         pol,
		leaseTTL:       ttl,
		stealAfter:     steal,
		maxOutstanding: opts.MaxOutstanding,
		seq:            seq,
		nodes:          make(map[string]*node),
		campaigns:      make(map[string]*runningCampaign),
		subs:           make(map[int]chan Event),
	}, nil
}

// Close releases the queue log and every open campaign journal.
func (co *Coordinator) Close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, rc := range co.campaigns {
		if rc.journal != nil {
			rc.journal.Close()
			rc.journal = nil
		}
	}
	_ = co.queue.Close()
}

// Store returns the coordinator's shared result store.
func (co *Coordinator) Store() *campaign.Store { return co.store }

// QueueReplayStats reports how the coordinator's queue recovered at
// open: whether a snapshot seeded the replay and how much log tail was
// replayed on top of it.
func (co *Coordinator) QueueReplayStats() campaign.ReplayStats { return co.queue.ReplayStats() }

// Policy returns the active routing policy's name.
func (co *Coordinator) Policy() string { return co.policy.Name() }

// Now returns the current logical tick.
func (co *Coordinator) Now() campaign.Tick {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.now
}

// Subscribe registers a cluster-event listener. Sends never block the
// coordinator: a listener that stalls past the buffer loses events (the
// SSE layer resynchronizes clients from status snapshots).
func (co *Coordinator) Subscribe() (<-chan Event, func()) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ch := make(chan Event, 256)
	id := co.nextSub
	co.nextSub++
	co.subs[id] = ch
	cancel := func() {
		co.mu.Lock()
		defer co.mu.Unlock()
		if sub, ok := co.subs[id]; ok {
			delete(co.subs, id)
			close(sub)
		}
	}
	return ch, cancel
}

// Observe attaches a synchronous event callback, invoked in order after
// the emitting operation releases the coordinator lock. The chaos
// harness drives its fault schedule through this hook.
func (co *Coordinator) Observe(fn func(Event)) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.observers = append(co.observers, fn)
}

// emit delivers events after the coordinator lock is released.
func (co *Coordinator) emit(events []Event) {
	if len(events) == 0 {
		return
	}
	co.mu.Lock()
	obs := append(make([]func(Event), 0, len(co.observers)), co.observers...)
	subIDs := make([]int, 0, len(co.subs))
	for id := range co.subs {
		subIDs = append(subIDs, id)
	}
	sort.Ints(subIDs)
	chans := make([]chan Event, len(subIDs))
	for i, id := range subIDs {
		chans[i] = co.subs[id]
	}
	co.mu.Unlock()
	for _, ev := range events {
		for _, ch := range chans {
			select {
			case ch <- ev:
			default:
			}
		}
		for _, fn := range obs {
			fn(ev)
		}
	}
}

// Submit expands and registers a manifest, fanning its runs into the
// durable queue. Runs already present in the store complete immediately
// as cache hits; a manifest whose every run is cached finishes without a
// single claim.
func (co *Coordinator) Submit(m campaign.Manifest) (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("cluster: submit: %w", err)
	}
	sum := sha256.Sum256(data)
	co.mu.Lock()
	co.seq++
	id := fmt.Sprintf("c%04d-%s", co.seq, hex.EncodeToString(sum[:4]))
	co.mu.Unlock()
	if err := co.submit(id, m); err != nil {
		return "", err
	}
	return id, nil
}

// Resume re-registers a journaled campaign: the manifest re-expands to
// the identical spec list, journaled-complete runs are store hits, and
// only unfinished work re-enters the queue — the same resume protocol as
// a single-node scheduler, driven by the cluster.
func (co *Coordinator) Resume(id string) error {
	m, _, err := campaign.ReadJournal(co.store.JournalPath(id))
	if err != nil {
		return err
	}
	return co.submit(id, m)
}

func (co *Coordinator) submit(id string, m campaign.Manifest) error {
	c, err := campaign.NewCampaign(id, m)
	if err != nil {
		return err
	}

	co.mu.Lock()
	if _, dup := co.campaigns[id]; dup {
		co.mu.Unlock()
		return fmt.Errorf("cluster: campaign %s already registered", id)
	}
	rc := &runningCampaign{
		c:      c,
		byRef:  make(map[string][]int),
		groups: make(map[string]string),
	}
	specs := c.Specs()
	keys := c.Keys()

	// Pass 1 — classify every distinct ref without touching the journal
	// or the queue, so admission can reject the whole manifest before any
	// durable side effect.
	var cachedRuns []int             // run indices served from the store
	var retries []campaign.QueueItem // terminal in the queue but not servable
	var fresh []campaign.QueueItem   // refs the queue has never seen
	for i, spec := range specs {
		ref := id + "/" + keys[i]
		first := len(rc.byRef[ref]) == 0
		rc.byRef[ref] = append(rc.byRef[ref], i)
		if !first {
			continue
		}
		group, err := spec.GroupKey()
		if err != nil {
			co.mu.Unlock()
			return err
		}
		rc.groups[ref] = group
		if res, _ := co.store.Get(keys[i]); res != nil {
			cachedRuns = append(cachedRuns, i)
			continue
		}
		item := campaign.QueueItem{Ref: ref, Key: keys[i], Spec: spec}
		if _, done := co.queue.Done(ref); done {
			// The queue log says this ref already finished, but the store
			// cannot serve it (a failed run, or a done run whose entry was
			// evicted). Enqueue would be a no-op for the known ref, so clear
			// the terminal state and re-issue the work — the cluster twin of
			// single-node resume re-executing a store miss. Without this the
			// ref counts toward remaining but no lease is ever granted, and
			// the resumed campaign hangs forever.
			retries = append(retries, item)
		} else if !co.queue.Known(ref) {
			fresh = append(fresh, item)
		}
		// A known, non-terminal ref (a resumed campaign whose work is
		// still queued or leased) re-attaches without re-enqueueing.
		rc.remaining++
	}

	// Admission backpressure: count only refs this submission would add
	// to the backlog — already-outstanding refs of a resume are in.
	if adding := len(fresh) + len(retries); co.maxOutstanding > 0 && adding > 0 {
		if co.queue.Outstanding()+adding > co.maxOutstanding {
			co.mu.Unlock()
			return fmt.Errorf("%w: %d outstanding + %d submitted > cap %d",
				ErrBacklogFull, co.queue.Outstanding(), adding, co.maxOutstanding)
		}
	}

	// Pass 2 — admitted: open the journal, record the cache hits, and fan
	// the remainder into the queue under one batched append.
	j, err := co.store.OpenJournal(c)
	if err != nil {
		co.mu.Unlock()
		return err
	}
	rc.journal = j
	for _, i := range cachedRuns {
		res, _ := co.store.Get(keys[i])
		if res == nil {
			// The store entry vanished between passes; fail the submit
			// rather than silently marking a run cached without a result.
			co.mu.Unlock()
			j.Close()
			return fmt.Errorf("cluster: submit: result %s disappeared mid-admission", keys[i])
		}
		snap := c.Transition(i, campaign.RunCached, &campaign.RunUpdate{
			FinalAccuracy: res.FinalAccuracy,
			EndS:          float64(res.End),
		})
		j.RecordRun(snap)
	}
	for _, item := range retries {
		if err := co.queue.Retry(item.Ref, item.Key, item.Spec); err != nil {
			co.mu.Unlock()
			j.Close()
			return err
		}
	}
	if err := co.queue.EnqueueBatch(fresh); err != nil {
		co.mu.Unlock()
		j.Close()
		return err
	}
	var events []Event
	co.campaigns[id] = rc
	co.order = append(co.order, id)
	if rc.remaining == 0 {
		events = append(events, co.finishLocked(id, rc)...)
	}
	co.mu.Unlock()
	co.emit(events)
	return nil
}

// finishLocked closes out a campaign whose last ref went terminal.
func (co *Coordinator) finishLocked(id string, rc *runningCampaign) []Event {
	rc.c.Finish()
	if rc.journal != nil {
		rc.journal.Close()
		rc.journal = nil
	}
	return []Event{{Type: "campaign-done", Campaign: id, Tick: co.now}}
}

// RegisterNode adds (or revives) a worker. Capacity is the most runs the
// node holds claims on at once; <= 0 selects 1.
func (co *Coordinator) RegisterNode(name string, capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	co.mu.Lock()
	n, ok := co.nodes[name]
	if !ok {
		n = &node{name: name, groups: make(map[string]bool)}
		co.nodes[name] = n
	}
	n.capacity = capacity
	n.lastSeen = co.now
	n.alive = true
	ev := Event{Type: "node-join", Node: name, Tick: co.now}
	co.mu.Unlock()
	co.emit([]Event{ev})
}

// Heartbeat refreshes a node's liveness and extends its leases. A node
// that was marked dead revives (its expired claims were already
// re-queued; it simply starts claiming fresh work again).
func (co *Coordinator) Heartbeat(name string) error {
	co.mu.Lock()
	n, ok := co.nodes[name]
	if !ok {
		co.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	n.lastSeen = co.now
	var events []Event
	if !n.alive {
		n.alive = true
		events = append(events, Event{Type: "node-revived", Node: name, Tick: co.now})
	}
	co.queue.Extend(name, co.now, co.leaseTTL)
	co.mu.Unlock()
	co.emit(events)
	return nil
}

// nodeStatsLocked projects the fleet for the routing policy, sorted by
// name so policies see a deterministic view.
func (co *Coordinator) nodeStatsLocked() []NodeStats {
	names := make([]string, 0, len(co.nodes))
	for name := range co.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	stats := make([]NodeStats, len(names))
	for i, name := range names {
		n := co.nodes[name]
		groups := make([]string, 0, len(n.groups))
		for g := range n.groups {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		stats[i] = NodeStats{
			Name: n.name, Alive: n.alive,
			Inflight: n.inflight, Capacity: n.capacity,
			Granted: n.granted, Executed: n.executed, Cached: n.cached,
			Groups: groups,
		}
	}
	return stats
}

// pendingWindow bounds the queue projection handed to routing policies:
// policies rank claimable work from the front of the queue, and at
// 10^5-deep backlogs a full O(n) snapshot per work request would swamp
// the control plane for no routing benefit.
const pendingWindow = 1024

// pendingRunsLocked projects up to pendingWindow queued runs for the
// routing policy.
func (co *Coordinator) pendingRunsLocked() []PendingRun {
	items := co.queue.PendingFront(pendingWindow)
	out := make([]PendingRun, len(items))
	for i, it := range items {
		out[i] = PendingRun{Ref: it.Ref, Key: it.Key, Group: co.groupOfLocked(it.Ref)}
	}
	return out
}

func (co *Coordinator) groupOfLocked(ref string) string {
	if rc, ok := co.campaigns[campaignOfRef(ref)]; ok {
		return rc.groups[ref]
	}
	return ""
}

func campaignOfRef(ref string) string {
	for i := 0; i < len(ref); i++ {
		if ref[i] == '/' {
			return ref[:i]
		}
	}
	return ref
}

// campaignSeq parses the numeric sequence out of a coordinator-minted
// campaign ID (c%04d-%x). IDs in other formats — single-node campaigns
// share the journal directory — report ok=false.
func campaignSeq(id string) (int, bool) {
	dash := strings.IndexByte(id, '-')
	if dash < 2 || id[0] != 'c' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// RequestWork grants up to max assignments to node, routing through the
// policy and falling back to work-stealing when the queue is empty but
// another node sits on stale unstarted claims.
func (co *Coordinator) RequestWork(name string, max int) ([]Assignment, error) {
	if max <= 0 {
		max = 1
	}
	co.mu.Lock()
	n, ok := co.nodes[name]
	if !ok {
		co.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	var out []Assignment
	var events []Event
	// A work request is proof of liveness just like a heartbeat: refresh
	// the node and revive it if a heartbeat gap got it marked dead.
	n.lastSeen = co.now
	if !n.alive {
		n.alive = true
		events = append(events, Event{Type: "node-revived", Node: name, Tick: co.now})
	}
	// Pick phase: the policy ranks a bounded projection of the queue;
	// node stats are updated provisionally between picks so each pick
	// sees the fleet as if the previous grants already landed. All picks
	// then share one batched claim — one journal append and one fsync
	// whether the node asked for one run or five hundred.
	pending := co.pendingRunsLocked()
	var picks []PendingRun
	for len(picks) < max && n.inflight < n.capacity && len(pending) > 0 {
		idx := co.policy.Pick(pending, co.nodeStatsLocked(), name)
		if idx < 0 {
			break
		}
		if idx >= len(pending) {
			idx = len(pending) - 1
		}
		picks = append(picks, pending[idx])
		pending = append(pending[:idx], pending[idx+1:]...)
		n.inflight++
		n.granted++
	}
	if len(picks) > 0 {
		refs := make([]string, len(picks))
		for i, p := range picks {
			refs[i] = p.Ref
		}
		grants, err := co.queue.ClaimBatch(refs, name, co.now, co.leaseTTL)
		if err != nil {
			// Journal append failed: nothing was claimed, roll back the
			// provisional stats.
			n.inflight -= len(picks)
			n.granted -= len(picks)
		} else {
			for _, g := range grants {
				if g.Err != nil {
					n.inflight--
					n.granted--
					continue
				}
				out = append(out, Assignment{
					Campaign: campaignOfRef(g.Lease.Ref), Ref: g.Lease.Ref, Key: g.Lease.Key,
					Lease: g.Lease.ID, Spec: g.Spec,
				})
				events = append(events, Event{Type: "claim", Node: name, Campaign: campaignOfRef(g.Lease.Ref), Ref: g.Lease.Ref, Key: g.Lease.Key, Tick: co.now})
			}
		}
	}
	// Queue drained (or the policy deferred): steal the oldest unstarted
	// claims other nodes have been sitting on.
	for len(out) < max && n.inflight < n.capacity {
		asg, ev, stole := co.stealLocked(n)
		if !stole {
			break
		}
		out = append(out, asg)
		events = append(events, ev)
	}
	co.mu.Unlock()
	co.emit(events)
	return out, nil
}

// stealLocked transfers the oldest sufficiently stale, unstarted foreign
// lease to thief. Started leases are never stolen — the victim is
// executing, and the no-double-execution property must not depend on
// racing it.
func (co *Coordinator) stealLocked(thief *node) (Assignment, Event, bool) {
	for _, l := range co.queue.Leases() { // grant order: oldest first
		if l.Node == thief.name || l.Started || co.now-l.Granted < co.stealAfter {
			continue
		}
		lease, spec, err := co.queue.Steal(l.Ref, thief.name, co.now, co.leaseTTL)
		if err != nil {
			continue
		}
		if victim, ok := co.nodes[l.Node]; ok && victim.inflight > 0 {
			victim.inflight--
		}
		thief.inflight++
		thief.granted++
		asg := Assignment{
			Campaign: campaignOfRef(lease.Ref), Ref: lease.Ref, Key: lease.Key,
			Lease: lease.ID, Spec: spec,
		}
		ev := Event{Type: "steal", Node: thief.name, Campaign: asg.Campaign, Ref: lease.Ref, Key: lease.Key, Tick: co.now, Detail: "from " + l.Node}
		return asg, ev, true
	}
	return Assignment{}, Event{}, false
}

// StartRun is the single-lease execution gate; see StartRuns.
func (co *Coordinator) StartRun(name string, id campaign.LeaseID) error {
	return co.StartRuns(name, []campaign.LeaseID{id})[0]
}

// StartRuns is the execution gate: a node must pass each claimed lease
// through it before running the spec. The whole batch shares one journal
// append; each lease gets its own error slot, and ErrStaleLease in a
// slot (the claim was stolen or expired — the node drops that assignment
// without executing) never poisons its siblings. Inflight slots are NOT
// released on stale starts: every path that makes a lease stale (steal,
// expiry, completion) already freed the holder's slot exactly once.
func (co *Coordinator) StartRuns(name string, ids []campaign.LeaseID) []error {
	errs := make([]error, len(ids))
	co.mu.Lock()
	gate := make([]campaign.LeaseID, 0, len(ids))
	gateIdx := make([]int, 0, len(ids))
	for i, id := range ids {
		if held, ok := co.queue.LeaseByID(id); ok && held.Node != name {
			errs[i] = fmt.Errorf("%w: lease %d is held by %s, not %s", campaign.ErrStaleLease, id, held.Node, name)
			continue
		}
		gate = append(gate, id)
		gateIdx = append(gateIdx, i)
	}
	var events []Event
	if len(gate) > 0 {
		results, err := co.queue.StartBatch(gate)
		if err != nil {
			for _, i := range gateIdx {
				errs[i] = err
			}
		} else {
			for k, r := range results {
				if r.Err != nil {
					errs[gateIdx[k]] = r.Err
					continue
				}
				lease := r.Lease
				events = append(events, Event{Type: "start", Node: name, Campaign: campaignOfRef(lease.Ref), Ref: lease.Ref, Key: lease.Key, Tick: co.now})
				if rc, ok := co.campaigns[campaignOfRef(lease.Ref)]; ok {
					for _, i := range rc.byRef[lease.Ref] {
						rc.c.Transition(i, campaign.RunRunning, nil)
					}
				}
			}
		}
	}
	co.mu.Unlock()
	co.emit(events)
	return errs
}

// CompletionReport pairs a lease with the outcome its node produced,
// for CompleteRuns.
type CompletionReport struct {
	Lease   campaign.LeaseID
	Outcome Outcome
}

// CompleteRun records a single lease's outcome; see CompleteRuns.
func (co *Coordinator) CompleteRun(name string, id campaign.LeaseID, out Outcome) error {
	return co.CompleteRuns(name, []CompletionReport{{Lease: id, Outcome: out}})[0]
}

// CompleteRuns records a node's outcomes for started leases it holds,
// all under one journal append. A non-failed outcome whose result is
// missing from the shared store is demoted to failed — durability is
// part of the run contract, exactly as in the single-node scheduler.
// Each report gets its own error slot: stale completions (the lease
// expired mid-run and the work was re-issued, was never started, or
// belongs to another node) report ErrStaleLease in their slot, change
// nothing, and never poison the batch's valid siblings — the node's
// store Put, if any, is harmless because content addressing makes both
// writers' bytes identical.
func (co *Coordinator) CompleteRuns(name string, reports []CompletionReport) []error {
	errs := make([]error, len(reports))
	co.mu.Lock()
	var events []Event
	comps := make([]campaign.Completion, 0, len(reports))
	compIdx := make([]int, 0, len(reports))
	details := make([]string, 0, len(reports))
	for i, rep := range reports {
		if !rep.Outcome.State.Terminal() {
			errs[i] = fmt.Errorf("cluster: complete with non-terminal state %q", rep.Outcome.State)
			continue
		}
		held, ok := co.queue.LeaseByID(rep.Lease)
		if !ok || held.Node != name {
			events = append(events, Event{Type: "stale-complete", Node: name, Tick: co.now})
			errs[i] = fmt.Errorf("%w: lease %d is not held by %s", campaign.ErrStaleLease, rep.Lease, name)
			continue
		}
		state := rep.Outcome.State
		var detail string
		if state != campaign.RunFailed && !co.store.Has(held.Key) {
			state = campaign.RunFailed
			detail = "completed without a stored result"
		}
		comps = append(comps, campaign.Completion{ID: rep.Lease, State: state})
		compIdx = append(compIdx, i)
		details = append(details, detail)
	}
	if len(comps) > 0 {
		results, err := co.queue.CompleteBatch(comps)
		if err != nil {
			for _, i := range compIdx {
				errs[i] = err
			}
		} else {
			for k, r := range results {
				i := compIdx[k]
				if r.Err != nil {
					// Protocol rejection for a live, owned lease: never
					// started, or completed earlier in this batch.
					events = append(events, Event{Type: "stale-complete", Node: name, Tick: co.now})
					errs[i] = r.Err
					continue
				}
				events = append(events, co.completedLocked(name, r.Lease, comps[k].State, reports[i].Outcome, details[k])...)
			}
		}
	}
	co.mu.Unlock()
	co.emit(events)
	return errs
}

// completedLocked applies the campaign/node bookkeeping for one
// journaled completion and returns its events.
func (co *Coordinator) completedLocked(name string, lease campaign.Lease, state campaign.RunState, out Outcome, detail string) []Event {
	events := []Event{{Type: "complete", Node: name, Campaign: campaignOfRef(lease.Ref), Ref: lease.Ref, Key: lease.Key, Tick: co.now, Detail: string(state)}}
	if n, ok := co.nodes[name]; ok {
		if n.inflight > 0 {
			n.inflight--
		}
		switch {
		case out.Cached:
			n.cached++
		case state != campaign.RunFailed:
			n.executed++
		}
	}
	if rc, ok := co.campaigns[campaignOfRef(lease.Ref)]; ok {
		upd := &campaign.RunUpdate{
			Attempts:      out.Attempts,
			FinalAccuracy: out.FinalAccuracy,
			EndS:          out.EndS,
			Error:         out.Error,
		}
		if detail != "" {
			upd.Error = detail
		}
		for _, i := range rc.byRef[lease.Ref] {
			snap := rc.c.Transition(i, state, upd)
			if rc.journal != nil {
				rc.journal.RecordRun(snap)
			}
		}
		if n, ok := co.nodes[name]; ok {
			if g, has := rc.groups[lease.Ref]; has && g != "" {
				n.groups[g] = true
			}
		}
		rc.remaining--
		if rc.remaining == 0 {
			events = append(events, co.finishLocked(campaignOfRef(lease.Ref), rc)...)
		}
	}
	return events
}

// Advance moves the logical clock one tick: leases past their expiry are
// revoked (their runs re-queue at the front), and nodes silent for a
// full lease TTL are marked dead. Production calls this from a
// service-edge timer; the chaos harness calls it once per round.
func (co *Coordinator) Advance() {
	co.mu.Lock()
	co.now++
	var events []Event
	for _, l := range co.queue.ExpireLeases(co.now) {
		events = append(events, Event{Type: "lease-expired", Node: l.Node, Campaign: campaignOfRef(l.Ref), Ref: l.Ref, Key: l.Key, Tick: co.now})
		if n, ok := co.nodes[l.Node]; ok && n.inflight > 0 {
			n.inflight--
		}
		if rc, ok := co.campaigns[campaignOfRef(l.Ref)]; ok {
			for _, i := range rc.byRef[l.Ref] {
				rc.c.Transition(i, campaign.RunQueued, nil)
			}
		}
	}
	names := make([]string, 0, len(co.nodes))
	for name := range co.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := co.nodes[name]
		if n.alive && n.lastSeen+co.leaseTTL < co.now {
			n.alive = false
			events = append(events, Event{Type: "node-dead", Node: name, Tick: co.now})
		}
	}
	co.mu.Unlock()
	co.emit(events)
}

// Nodes returns the fleet's status, sorted by name.
func (co *Coordinator) Nodes() []NodeStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	names := make([]string, 0, len(co.nodes))
	for name := range co.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]NodeStatus, len(names))
	for i, name := range names {
		n := co.nodes[name]
		out[i] = NodeStatus{
			Name: n.name, Alive: n.alive, Capacity: n.capacity,
			Inflight: n.inflight, Granted: n.granted,
			Executed: n.executed, Cached: n.cached, LastSeen: n.lastSeen,
		}
	}
	return out
}

// Campaign looks up a registered campaign.
func (co *Coordinator) Campaign(id string) (*campaign.Campaign, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	rc, ok := co.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	return rc.c, nil
}

// Campaigns returns every registered campaign's status in submission
// order.
func (co *Coordinator) Campaigns() []campaign.Status {
	co.mu.Lock()
	ids := append([]string(nil), co.order...)
	rcs := make([]*runningCampaign, len(ids))
	for i, id := range ids {
		rcs[i] = co.campaigns[id]
	}
	co.mu.Unlock()
	out := make([]campaign.Status, len(rcs))
	for i, rc := range rcs {
		out[i] = rc.c.Status()
	}
	return out
}

// MergedResult renders the campaign's merged canonical artifact — a pure
// function of the manifest, byte-identical to a single-node run's.
func (co *Coordinator) MergedResult(id string) ([]byte, error) {
	co.mu.Lock()
	rc, ok := co.campaigns[id]
	co.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	return campaign.MergedCanonicalBytes(rc.c.Specs(), co.store)
}
