package cluster

import (
	"errors"
	"testing"

	"roadrunner/internal/campaign"
)

func tinyClusterManifest() campaign.Manifest {
	return campaign.Manifest{
		Name:   "cluster-tiny",
		Env:    campaign.EnvTiny,
		Rounds: 2,
		Strategies: []campaign.StrategySpec{
			{Kind: "fedavg"},
			{Kind: "opp"},
		},
		Seeds: []uint64{1},
	}
}

func newTestCoordinator(t *testing.T, dir string) *Coordinator {
	t.Helper()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// drive runs the full worker protocol — claim, start, execute, complete
// — for one node until it receives no work.
func drive(t *testing.T, co *Coordinator, runner *Runner, node string) int {
	t.Helper()
	ran := 0
	for {
		asgs, err := co.RequestWork(node, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(asgs) == 0 {
			return ran
		}
		for _, asg := range asgs {
			if err := co.StartRun(node, asg.Lease); err != nil {
				continue
			}
			if err := co.CompleteRun(node, asg.Lease, runner.Run(asg)); err != nil {
				t.Fatal(err)
			}
			ran++
		}
	}
}

// TestCoordinatorSingleWorkerLifecycle walks one node through the whole
// protocol and checks the campaign lands done with a journal that makes
// it resumable.
func TestCoordinatorSingleWorkerLifecycle(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	if ran := drive(t, co, runner, "w1"); ran != 2 {
		t.Fatalf("worker ran %d assignments, want 2", ran)
	}
	c, err := co.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if !st.Done || st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("campaign status: %+v", st)
	}
	// The journal proves both runs complete.
	_, runs, err := campaign.ReadJournal(co.Store().JournalPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("journal replay found %d runs, want 2", len(runs))
	}
	nodes := co.Nodes()
	if len(nodes) != 1 || nodes[0].Executed != 2 || nodes[0].Inflight != 0 {
		t.Fatalf("node stats: %+v", nodes)
	}
}

// TestCoordinatorCachedSubmitFinishesWithoutClaims submits a manifest
// whose every run is already in the shared store: the campaign must
// finish instantly as pure cache hits, enqueueing nothing.
func TestCoordinatorCachedSubmitFinishesWithoutClaims(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	if _, err := co.Submit(tinyClusterManifest()); err != nil {
		t.Fatal(err)
	}
	drive(t, co, runner, "w1")

	id2, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	c, err := co.Campaign(id2)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if !st.Done || st.Cached != 2 {
		t.Fatalf("warm resubmission not a pure cache pass: %+v", st)
	}
	if asgs, _ := co.RequestWork("w1", 4); len(asgs) != 0 {
		t.Fatalf("warm resubmission enqueued work: %+v", asgs)
	}
}

// TestCoordinatorResumeAfterRestart kills the coordinator mid-campaign
// and recovers on a fresh one: journal + queue log must leave only the
// unfinished run claimable, and the merged artifact must match a
// clean-run reference.
func TestCoordinatorResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 1)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	// Execute exactly one of the two runs, then "crash" the coordinator.
	asgs, err := co.RequestWork("w1", 1)
	if err != nil || len(asgs) != 1 {
		t.Fatalf("claim: %v %v", asgs, err)
	}
	if err := co.StartRun("w1", asgs[0].Lease); err != nil {
		t.Fatal(err)
	}
	if err := co.CompleteRun("w1", asgs[0].Lease, runner.Run(asgs[0])); err != nil {
		t.Fatal(err)
	}
	co.Close()

	co2 := newTestCoordinator(t, dir)
	co2.RegisterNode("w1", 1)
	if err := co2.Resume(id); err != nil {
		t.Fatal(err)
	}
	c, err := co2.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Cached != 1 || st.Done {
		t.Fatalf("resumed status before re-execution: %+v", st)
	}
	if ran := drive(t, co2, runner, "w1"); ran != 1 {
		t.Fatalf("resume re-ran %d assignments, want 1", ran)
	}
	if st := c.Status(); !st.Done || st.Failed != 0 {
		t.Fatalf("resumed campaign status: %+v", st)
	}
	got, err := co2.MergedResult(id)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the same manifest on a fresh single-node scheduler.
	refStore, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refC, err := campaign.NewCampaign("ref", tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	sched := campaign.NewScheduler(campaign.Options{Workers: 1, Store: refStore, Backoff: func(int) {}})
	if _, err := sched.RunCampaign(refC); err != nil {
		t.Fatal(err)
	}
	want, err := campaign.MergedCanonicalBytes(refC.Specs(), refStore)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed merge differs from reference (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCoordinatorDemotesUnstoredCompletion: a node reporting success
// without having published its result to the shared store is lying about
// durability; the coordinator must demote the run to failed.
func TestCoordinatorDemotesUnstoredCompletion(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 1)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	asgs, err := co.RequestWork("w1", 1)
	if err != nil || len(asgs) != 1 {
		t.Fatalf("claim: %v %v", asgs, err)
	}
	if err := co.StartRun("w1", asgs[0].Lease); err != nil {
		t.Fatal(err)
	}
	// Report done without any store publish.
	if err := co.CompleteRun("w1", asgs[0].Lease, Outcome{State: campaign.RunDone, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	c, err := co.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range c.Status().Runs {
		if run.Key == asgs[0].Key {
			if run.State != campaign.RunFailed || run.Error == "" {
				t.Fatalf("unstored completion not demoted: %+v", run)
			}
		}
	}
}

// TestCoordinatorRejectsUnknownNodes: claims and heartbeats require
// registration.
func TestCoordinatorRejectsUnknownNodes(t *testing.T) {
	co := newTestCoordinator(t, t.TempDir())
	if err := co.Heartbeat("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat err = %v", err)
	}
	if _, err := co.RequestWork("ghost", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("claim err = %v", err)
	}
	if _, err := co.Campaign("c9999-none"); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("campaign err = %v", err)
	}
}

// TestCoordinatorMarksSilentNodesDead advances the clock past the lease
// TTL without heartbeats: the node must be declared dead and revive on
// its next heartbeat.
func TestCoordinatorMarksSilentNodesDead(t *testing.T) {
	co := newTestCoordinator(t, t.TempDir())
	co.RegisterNode("w1", 1)
	events, cancel := co.Subscribe()
	defer cancel()
	for i := 0; i < 7; i++ {
		co.Advance()
	}
	nodes := co.Nodes()
	if len(nodes) != 1 || nodes[0].Alive {
		t.Fatalf("silent node still alive: %+v", nodes)
	}
	if err := co.Heartbeat("w1"); err != nil {
		t.Fatal(err)
	}
	if nodes := co.Nodes(); !nodes[0].Alive {
		t.Fatalf("heartbeat did not revive node: %+v", nodes)
	}
	var types []string
	for len(events) > 0 {
		types = append(types, (<-events).Type)
	}
	var sawDead, sawRevived bool
	for _, ty := range types {
		switch ty {
		case "node-dead":
			sawDead = true
		case "node-revived":
			sawRevived = true
		}
	}
	if !sawDead || !sawRevived {
		t.Fatalf("events %v missing node-dead/node-revived", types)
	}
}
